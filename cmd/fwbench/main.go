// Command fwbench regenerates the paper's tables and figures on the
// simulated stack.
//
// Usage:
//
//	fwbench -list
//	fwbench -run fig6          # one experiment
//	fwbench -run all           # everything, in paper order
//	fwbench -run fig6,fig7     # a comma-separated subset
//	fwbench -run chaos -artifacts out/   # write emitted artifacts (traces) to out/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	run := flag.String("run", "all", "experiment id(s) to run: all, or comma-separated ids")
	artifactDir := flag.String("artifacts", ".", "directory to write experiment artifacts into (e.g. the chaos run's Perfetto trace)")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []experiments.Experiment
	if *run == "all" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			e, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	failed := 0
	for _, e := range selected {
		fmt.Printf("### %s — %s\n\n", e.ID, e.Title)
		start := time.Now()
		res, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			failed++
			continue
		}
		fmt.Print(res.Render())
		for _, a := range res.Artifacts {
			path := filepath.Join(*artifactDir, a.Name)
			if err := os.WriteFile(path, a.Contents, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "%s: artifact %s: %v\n", e.ID, a.Name, err)
				failed++
				continue
			}
			fmt.Printf("wrote %s\n", path)
		}
		fmt.Printf("(%s wall time)\n\n", time.Since(start).Round(time.Millisecond))
	}
	if failed > 0 {
		os.Exit(1)
	}
}
