package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/platform"
)

func TestResolveFunctionBuiltin(t *testing.T) {
	fn, err := resolveFunction("", "faas-fact-python", "x", "nodejs")
	if err != nil {
		t.Fatal(err)
	}
	if fn.Name != "faas-fact-python" || fn.Lang != "python" {
		t.Fatalf("fn = %+v", fn)
	}
	if _, err := resolveFunction("", "nope", "x", "nodejs"); err == nil ||
		!strings.Contains(err.Error(), "unknown builtin") {
		t.Fatalf("err = %v", err)
	}
}

func TestResolveFunctionFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fn.fl")
	if err := os.WriteFile(path, []byte("func main(p) { return 1; }"), 0o644); err != nil {
		t.Fatal(err)
	}
	fn, err := resolveFunction(path, "", "myfn", "python")
	if err != nil {
		t.Fatal(err)
	}
	if fn.Name != "myfn" || fn.Lang != "python" || !strings.Contains(fn.Source, "return 1") {
		t.Fatalf("fn = %+v", fn)
	}
	if _, err := resolveFunction(path, "", "x", "cobol"); err == nil {
		t.Fatal("bad language accepted")
	}
	if _, err := resolveFunction(filepath.Join(dir, "missing.fl"), "", "x", "nodejs"); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, err := resolveFunction("", "", "x", "nodejs"); err == nil {
		t.Fatal("no source accepted")
	}
}

func TestResolvePlatform(t *testing.T) {
	env := platform.NewEnv(platform.EnvConfig{})
	for name, want := range map[string]string{
		"fireworks":               "fireworks",
		"openwhisk":               "openwhisk",
		"gvisor":                  "gvisor",
		"firecracker":             "firecracker",
		"firecracker+os-snapshot": "firecracker+os-snapshot",
		"isolate":                 "isolate",
	} {
		p, err := resolvePlatform(name, env)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.PlatformName() != want {
			t.Fatalf("%s -> %s", name, p.PlatformName())
		}
	}
	if _, err := resolvePlatform("lambda", env); err == nil {
		t.Fatal("unknown platform accepted")
	}
}

func TestDumpMetrics(t *testing.T) {
	env := platform.NewEnv(platform.EnvConfig{})
	p, err := resolvePlatform("fireworks", env)
	if err != nil {
		t.Fatal(err)
	}
	fn, err := resolveFunction("", "faas-fact-python", "x", "python")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Install(fn); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke(fn.Name, platform.MustParams(nil), platform.InvokeOptions{}); err != nil {
		t.Fatal(err)
	}

	var buf strings.Builder
	if err := env.Metrics.WriteFormat(&buf, "text"); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"counter vmm_snapshot_restores_total 1",
		"histogram vmm_snapshot_restore_duration count=1",
		`counter invoke_total{platform="fireworks"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("dump missing %q:\n%s", want, text)
		}
	}

	var jsonBuf strings.Builder
	if err := env.Metrics.WriteFormat(&jsonBuf, "json"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jsonBuf.String(), `"counters"`) {
		t.Error("json dump missing counters")
	}
	if err := env.Metrics.WriteFormat(&buf, "csv"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestResolveMode(t *testing.T) {
	cases := map[string]platform.StartMode{
		"auto": platform.ModeAuto, "cold": platform.ModeCold, "warm": platform.ModeWarm,
	}
	for name, want := range cases {
		got, err := resolveMode(name)
		if err != nil || got != want {
			t.Fatalf("%s -> %v, %v", name, got, err)
		}
	}
	if _, err := resolveMode("tepid"); err == nil {
		t.Fatal("unknown mode accepted")
	}
}
