// Command fwcli installs and invokes a FaaSLang serverless function on
// any of the simulated platforms, printing the latency breakdown — a
// one-shot tool for exploring how the same function behaves across
// sandboxes.
//
// Usage:
//
//	fwcli -file fn.fl -lang nodejs -params '{"n": 42}'
//	fwcli -file fn.fl -platform openwhisk -mode cold -repeat 3
//	fwcli -builtin faas-fact-python -platform firecracker -mode cold
//	fwcli -builtin faas-fact-python -repeat 5 -metrics text
//	fwcli -builtin faas-fact-python -trace-dump trace.json -profile
//	fwcli -builtin faas-fact-python -repeat 5 -watch
//	fwcli -builtin faas-fact-python -repeat 5 -insight
//	fwcli -list-builtins
//
// With -watch each invocation additionally prints a one-line memory
// telemetry sample (host resident bytes, CoW faults so far, live VMs,
// sharing efficiency) on the run's virtual timeline, and the run ends
// with the smem-style per-VM memory report plus the snapshot page
// lineage (see docs/memory.md). -timeseries-dump writes the sampled
// series as CSV for offline plotting.
//
// -insight analyzes the run's event journal after the last invocation
// and prints each trace's critical-path blame table plus the service
// graph (see docs/insight.md).
//
// -telem arms tail-based trace sampling on the run's journal
// (docs/telemetry.md): boring traces are dropped at the given keep
// rate, errors and latency outliers always survive, and the run ends
// with the keep/drop ledger. -trace-dump and -insight then see the
// sampled journal:
//
//	fwcli -builtin faas-fact-python -repeat 20 -telem seed=1,rate=0.1 -insight
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/insight"
	"repro/internal/platform"
	rt "repro/internal/runtime"
	"repro/internal/telemetry"
	"repro/internal/timeseries"
	"repro/internal/vclock"
	"repro/internal/workloads"
)

func main() {
	file := flag.String("file", "", "FaaSLang source file of the function")
	builtin := flag.String("builtin", "", "use a built-in workload by name (see -list-builtins)")
	name := flag.String("name", "fn", "function name")
	lang := flag.String("lang", "nodejs", "runtime: nodejs or python")
	params := flag.String("params", "{}", "invocation parameters (JSON object)")
	platformName := flag.String("platform", "fireworks", "fireworks, openwhisk, gvisor, firecracker, firecracker+os-snapshot, isolate")
	mode := flag.String("mode", "auto", "start mode: auto, cold, warm")
	repeat := flag.Int("repeat", 1, "number of invocations")
	listBuiltins := flag.Bool("list-builtins", false, "list built-in workloads and exit")
	verbose := flag.Bool("v", false, "print the per-event accounting log")
	metricsFmt := flag.String("metrics", "", `dump the host metrics snapshot after the run ("text" or "json")`)
	traceDump := flag.String("trace-dump", "", `write the run's event journal to this file (Chrome trace-event JSON for *.json, NDJSON otherwise)`)
	profile := flag.Bool("profile", false, "fold the run's event journal into virtual-time flame-stack lines on stderr")
	watch := flag.Bool("watch", false, "print a memory-telemetry line per invocation and the smem-style memory report after the run")
	tsDump := flag.String("timeseries-dump", "", "write the run's sampled telemetry series to this file as CSV")
	insightFlag := flag.Bool("insight", false, "print the run's critical-path blame tables and service graph after the last invocation")
	telemSpec := flag.String("telem", "", `arm tail-based trace sampling on the run's journal: "seed=N,rate=P" (docs/telemetry.md); dumps and -insight see the sampled journal and the run ends with the keep/drop ledger`)
	flag.Parse()

	if *listBuiltins {
		for _, w := range workloads.All() {
			fmt.Printf("%-24s %-16s %s\n", w.Name, w.Suite, w.Description)
		}
		return
	}

	fn, err := resolveFunction(*file, *builtin, *name, *lang)
	if err != nil {
		fatal(err)
	}
	env := platform.NewEnv(platform.EnvConfig{})
	p, err := resolvePlatform(*platformName, env)
	if err != nil {
		fatal(err)
	}
	tail, err := armTelemetry(*telemSpec, env)
	if err != nil {
		fatal(err)
	}
	startMode, err := resolveMode(*mode)
	if err != nil {
		fatal(err)
	}

	report, err := p.Install(fn)
	if err != nil {
		fatal(fmt.Errorf("install: %w", err))
	}
	fmt.Printf("installed %q on %s", fn.Name, p.PlatformName())
	if report.Duration > 0 {
		fmt.Printf(" in %v (snapshot %.0f MiB)", report.Duration, float64(report.SnapshotBytes)/(1<<20))
	}
	fmt.Println()

	paramValue, err := rt.DecodeJSON([]byte(*params))
	if err != nil {
		fatal(fmt.Errorf("params: %w", err))
	}
	// The watch timeline: one sample per invocation, advanced by each
	// request's virtual latency, so the dumped series is a pure function
	// of the workload.
	var sampler *timeseries.Sampler
	timeline := vclock.New()
	if *watch || *tsDump != "" {
		sampler = timeseries.NewSampler(env.Metrics, timeseries.DefaultCapacity)
		sampler.AddProbe("mem_sharing_efficiency", func() float64 {
			rep := env.Mem.Report()
			if rep.UsedBytes == 0 {
				return 1
			}
			return float64(rep.RSSSumBytes) / float64(rep.UsedBytes)
		})
		sampler.Sample(0)
	}
	for i := 0; i < *repeat; i++ {
		inv, err := p.Invoke(fn.Name, paramValue, platform.InvokeOptions{Mode: startMode})
		if err != nil {
			fatal(fmt.Errorf("invoke: %w", err))
		}
		fmt.Printf("#%d [%s] start-up=%v exec=%v others=%v total=%v\n",
			i+1, inv.Mode, inv.Breakdown.Startup(), inv.Breakdown.Exec(),
			inv.Breakdown.Others(), inv.Breakdown.Total())
		if sampler != nil {
			now := timeline.Advance(inv.Breakdown.Total())
			sampler.Sample(now)
			if *watch {
				rep := env.Mem.Report()
				fmt.Printf("   mem: used=%.1fMiB pss-sum=%.1fMiB cow-faults=%s live-vms=%s sharing=%.2f swapping=%v\n",
					float64(rep.UsedBytes)/(1<<20), rep.PSSSumBytes/(1<<20),
					lastValue(sampler, "mem_cow_faults_total"),
					lastValue(sampler, "vmm_live_vms"),
					rep.SharingEfficiency, rep.Swapping)
			}
		}
		if inv.Response != nil {
			fmt.Printf("   HTTP %d: %s\n", inv.Response.Status, inv.Response.Body)
		}
		if inv.Logs != "" {
			fmt.Printf("   logs: %s", inv.Logs)
		}
		if *verbose {
			for _, ev := range inv.Breakdown.Events() {
				fmt.Printf("   %-10s %-18s %v\n", ev.Phase, ev.Label, ev.Cost)
			}
		}
	}
	// Drain the tail sampler before anything reads the journal, so the
	// dumps, the profile, and -insight all see the sampled view.
	if tail != nil {
		tail.FlushAll()
		printTelemetry(tail.Stats())
	}
	if *watch {
		fmt.Println()
		env.Mem.Report().WriteText(os.Stdout)
	}
	if *tsDump != "" {
		if err := dumpTimeseries(*tsDump, sampler); err != nil {
			fatal(err)
		}
	}
	if *metricsFmt != "" {
		if err := env.Metrics.WriteFormat(os.Stdout, *metricsFmt); err != nil {
			fatal(err)
		}
	}
	if *traceDump != "" {
		if err := dumpJournal(*traceDump, env.Events.Events()); err != nil {
			fatal(err)
		}
	}
	if *profile {
		if err := events.WriteProfile(os.Stderr, env.Events.Events()); err != nil {
			fatal(fmt.Errorf("-profile: %w", err))
		}
	}
	if *insightFlag {
		printInsight(env.Events.Events(), tail)
	}
}

// armTelemetry parses the -telem spec ("seed=N,rate=P", both keys
// optional) and attaches a tail sampler to the run's journal. An empty
// spec leaves sampling off.
func armTelemetry(spec string, env *platform.Env) (*telemetry.TailSampler, error) {
	if spec == "" {
		return nil, nil
	}
	cfg := telemetry.Config{Seed: 1, KeepRate: 0.1}
	for _, field := range strings.Split(spec, ",") {
		key, value, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return nil, fmt.Errorf("-telem field %q is not key=value", field)
		}
		switch key {
		case "seed":
			n, err := strconv.ParseUint(value, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("-telem seed: %w", err)
			}
			cfg.Seed = n
		case "rate":
			r, err := strconv.ParseFloat(value, 64)
			if err != nil {
				return nil, fmt.Errorf("-telem rate: %w", err)
			}
			if r < 0 || r > 1 {
				return nil, fmt.Errorf("-telem rate %v out of [0,1]", r)
			}
			cfg.KeepRate = r
			if r == 0 {
				cfg.KeepRate = -1 // explicit 0 = keep no boring traces
			}
		default:
			return nil, fmt.Errorf("-telem has no key %q (want seed, rate)", key)
		}
	}
	tail := telemetry.New(cfg)
	tail.Attach(env.Events, env.Metrics)
	return tail, nil
}

// printTelemetry renders the tail sampler's keep/drop ledger.
func printTelemetry(st telemetry.Stats) {
	fmt.Printf("\ntelemetry: kept %d/%d traces, dropped %d events (%d bytes)\n",
		st.KeptTraces, st.DecidedTraces, st.DroppedEvents, st.DroppedBytes)
	for _, p := range st.Policies {
		fmt.Printf("   %-14s kept=%-4d dropped=%d\n", p.Policy, p.Kept, p.Dropped)
	}
}

// printInsight analyzes the run's journal and prints each trace's
// blame table plus the service graph in DOT. With tail sampling armed
// the journal is partial; the header says by how much.
func printInsight(evs []events.Event, tail *telemetry.TailSampler) {
	rep := insight.Analyze(evs)
	if tail != nil {
		st := tail.Stats()
		rep.AnnotateCoverage(int(st.KeptTraces), int(st.DecidedTraces))
	}
	fmt.Printf("\ninsight: %d events, %d traces\n", rep.EventCount, rep.TraceCount)
	if rep.Coverage != nil {
		fmt.Printf("coverage: %d/%d traces kept by tail sampling\n",
			rep.Coverage.KeptTraces, rep.Coverage.TotalTraces)
	}
	for _, ti := range rep.Traces {
		fmt.Printf("trace %d (%s) total=%v spans=%d", ti.Trace, ti.Root, ti.Total, ti.Spans)
		if ti.Faults > 0 {
			fmt.Printf(" faults=%d", ti.Faults)
		}
		if ti.Errors > 0 {
			fmt.Printf(" errors=%d", ti.Errors)
		}
		fmt.Println()
		for _, b := range ti.Blame {
			fmt.Printf("   %-28s self=%-12v total=%-12v share=%d.%d%%",
				b.Site, b.Self, b.Total, b.ShareMilli/10, b.ShareMilli%10)
			if b.Faults > 0 {
				fmt.Printf(" faults=%d", b.Faults)
			}
			fmt.Println()
		}
	}
	fmt.Println()
	if err := rep.Graph.WriteDOT(os.Stdout); err != nil {
		fatal(fmt.Errorf("-insight: %w", err))
	}
}

// lastValue renders a series' newest sample for the -watch line.
func lastValue(s *timeseries.Sampler, name string) string {
	p, ok := s.Last(name)
	if !ok {
		return "-"
	}
	return fmt.Sprintf("%.0f", p.Value)
}

// dumpTimeseries writes the run's sampled series to path as CSV.
func dumpTimeseries(path string, s *timeseries.Sampler) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("-timeseries-dump: %w", err)
	}
	if err := s.WriteCSV(f); err != nil {
		f.Close()
		return fmt.Errorf("-timeseries-dump: %w", err)
	}
	return f.Close()
}

// dumpJournal writes the host's event journal to path: Chrome
// trace-event JSON when the name ends in .json (load it in Perfetto),
// NDJSON otherwise.
func dumpJournal(path string, evs []events.Event) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("-trace-dump: %w", err)
	}
	format := "ndjson"
	if strings.HasSuffix(path, ".json") {
		format = "chrome"
	}
	if err := events.WriteFormat(f, evs, format); err != nil {
		f.Close()
		return fmt.Errorf("-trace-dump: %w", err)
	}
	return f.Close()
}

func resolveFunction(file, builtin, name, lang string) (platform.Function, error) {
	if builtin != "" {
		for _, w := range workloads.All() {
			if w.Name == builtin {
				return w.Function, nil
			}
		}
		return platform.Function{}, fmt.Errorf("unknown builtin %q (try -list-builtins)", builtin)
	}
	if file == "" {
		return platform.Function{}, fmt.Errorf("one of -file or -builtin is required")
	}
	src, err := os.ReadFile(file)
	if err != nil {
		return platform.Function{}, err
	}
	l := rt.Lang(lang)
	if l != rt.LangNode && l != rt.LangPython {
		return platform.Function{}, fmt.Errorf("unknown language %q", lang)
	}
	return platform.Function{Name: name, Source: string(src), Lang: l}, nil
}

func resolvePlatform(name string, env *platform.Env) (platform.Platform, error) {
	switch name {
	case "fireworks":
		return core.New(env, core.Options{}), nil
	case "openwhisk":
		return platform.NewOpenWhisk(env), nil
	case "gvisor":
		return platform.NewGVisor(env), nil
	case "firecracker":
		return platform.NewFirecracker(env, platform.FCNoSnapshot), nil
	case "firecracker+os-snapshot":
		return platform.NewFirecracker(env, platform.FCOSSnapshot), nil
	case "isolate":
		return platform.NewIsolate(env), nil
	default:
		return nil, fmt.Errorf("unknown platform %q", name)
	}
}

func resolveMode(mode string) (platform.StartMode, error) {
	switch mode {
	case "auto":
		return platform.ModeAuto, nil
	case "cold":
		return platform.ModeCold, nil
	case "warm":
		return platform.ModeWarm, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", mode)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fwcli:", err)
	os.Exit(1)
}
