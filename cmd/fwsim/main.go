// Command fwsim runs a Fireworks cluster behind a real HTTP gateway —
// the serverless frontend of Figure 1 over the simulated backend. It
// lets you drive installs and invocations with curl and watch fleet
// state (live microVMs, memory, snapshot store, node health) and the
// causal event journal every request records into.
//
//	fwsim -addr :8080
//
//	# install a function (deployed on every node)
//	curl -s localhost:8080/install -d '{
//	  "name": "hello",
//	  "lang": "nodejs",
//	  "source": "func main(params) { return \"hi \" + params.who; }",
//	  "default_params": {"who": "world"}
//	}'
//
//	# invoke it; the response carries the node that served it and the
//	# trace id of the request's event trail
//	curl -s localhost:8080/invoke/hello -d '{"who": "fireworks"}'
//
//	# inspect the platform
//	curl -s localhost:8080/functions
//	curl -s localhost:8080/stats
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/metrics
//	curl -s 'localhost:8080/metrics?format=json'
//
//	# telemetry: per-request virtual-time series, the smem-style fleet
//	# memory report, and the SLO watchdog's alert state
//	curl -s localhost:8080/timeseries > series.csv
//	curl -s 'localhost:8080/timeseries?format=json'
//	curl -s localhost:8080/memory
//	curl -s 'localhost:8080/memory?format=json'
//	curl -s localhost:8080/alerts
//
//	# declarative workflows (docs/workflows.md): register a DAG, run
//	# it, then inspect and replay its dead-letter queue
//	curl -s localhost:8080/workflows -d @dag.json
//	curl -s localhost:8080/workflows
//	curl -s localhost:8080/workflows/pipeline/run -d '{"text": "hi"}'
//	curl -s localhost:8080/workflows/pipeline/dlq
//	curl -s -X POST localhost:8080/workflows/pipeline/dlq/replay
//
//	# pull one request's trace, or the whole journal
//	curl -s localhost:8080/trace/1
//	curl -s 'localhost:8080/events?format=chrome' > trace.json  # open in Perfetto
//	curl -s 'localhost:8080/events?format=ndjson&limit=100'
//
//	# live-stream the journal (NDJSON long-poll; resume from the
//	# X-Next-Since header) and read the telemetry plane's own books
//	curl -s 'localhost:8080/events/stream?since=0&wait_ms=1000'
//	curl -s localhost:8080/telemetry
//
// With -metrics the gateway is skipped entirely: fwsim drives a demo
// workload across a simulated cluster and dumps the fleet-wide metrics
// snapshot (restore latencies, CoW faults, queue dwell, per-node
// placement) to stdout, then exits. -trace-dump writes the demo's
// event journal to a file (Chrome trace-event JSON when the name ends
// in .json, NDJSON otherwise) and -profile folds it into virtual-time
// flame-stack lines on stderr.
//
//	fwsim -metrics text -nodes 3 -invocations 12
//	fwsim -metrics text -trace-dump trace.json -profile
//
// With -faults the deterministic fault-injection plane is armed
// (internal/faults): the seed pins the fault schedule, the rate is the
// per-operation fault probability, and the platform runs with its
// default retry and failover policies so injected faults are mostly
// absorbed rather than surfaced.
//
//	fwsim -metrics text -faults seed=7,rate=0.05
//	fwsim -addr :8080 -faults seed=7,rate=0.01
//
// With -telem the telemetry governor is armed (docs/telemetry.md):
// completed traces run through the tail-sampling policy chain (errors,
// latency outliers, and DLQ runs always kept; the rest kept at the
// given rate, seeded), the registry enforces a per-family cardinality
// budget when card is set, and the timeseries sampler grows rollup
// tiers. GET /telemetry reports the plane's own accounting.
//
//	fwsim -addr :8080 -telem seed=1,rate=0.05,card=64
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/faults"
	"repro/internal/insight"
	"repro/internal/lang"
	"repro/internal/metrics"
	"repro/internal/msgbus"
	"repro/internal/platform"
	rt "repro/internal/runtime"
	"repro/internal/telemetry"
	"repro/internal/timeseries"
	"repro/internal/vclock"
	"repro/internal/workflow"
	"repro/internal/workloads"
)

type server struct {
	c *cluster.Cluster

	// wf is the gateway-level workflow engine: DAGs registered over
	// HTTP execute their steps through the cluster (each step is placed
	// like any other invocation) while the step/DLQ topics live on the
	// gateway's own broker.
	wf *workflow.Engine

	// timeline is the gateway's own virtual clock: each invocation
	// advances it by the request's virtual latency, giving the telemetry
	// layer a monotonic fleet timeline to sample on.
	timeline *vclock.Clock
	sampler  *timeseries.Sampler
	watchdog *timeseries.Watchdog
	requests *metrics.Counter
	failures *metrics.Counter

	// tail is the tail-based trace sampler (nil unless -telem armed):
	// it buffers per-trace state and, once a trace completes, either
	// keeps it or physically drops it from the journal
	// (docs/telemetry.md).
	tail *telemetry.TailSampler

	mu       sync.Mutex
	installs map[string]*platform.InstallReport
}

type installRequest struct {
	Name          string         `json:"name"`
	Lang          string         `json:"lang"`
	Source        string         `json:"source"`
	Entry         string         `json:"entry"`
	DefaultParams map[string]any `json:"default_params"`
}

// newServer builds a gateway over a fresh cluster. With chaos non-nil
// the fault plane arms immediately (the gateway is long-lived) and the
// platform runs with its default retry and failover policies. With
// telem non-nil the telemetry governor arms: tail-based trace sampling
// over the journal, a cardinality budget on the registry, and rollup
// tiers on the sampler.
func newServer(nodes int, chaos *faultsConfig, telem *telemConfig) *server {
	envCfg := platform.EnvConfig{}
	opts := core.Options{}
	if chaos != nil {
		envCfg.Faults = faults.DefaultPlan(chaos.seed, chaos.rate)
		opts.Retry = faults.DefaultRetryPolicy()
	}
	c := cluster.New(nodes, cluster.LeastInflight, envCfg,
		func(env *platform.Env) platform.Platform {
			return core.New(env, opts)
		})
	if chaos != nil {
		c.SetFailover(cluster.FailoverPolicy{MaxFailovers: 2})
	}
	s := &server{
		c:        c,
		timeline: vclock.New(),
		installs: make(map[string]*platform.InstallReport),
		requests: c.Metrics().Counter("gateway_requests_total"),
		failures: c.Metrics().Counter("gateway_failures_total"),
	}
	wfBus := msgbus.NewBroker()
	wfBus.Instrument(c.Metrics())
	wfOpts := workflow.Options{}
	if chaos != nil {
		wfBus.AttachFaults(envCfg.Faults)
		wfOpts.Retry = faults.DefaultRetryPolicy()
	}
	s.wf = workflow.New(wfBus, c.Journal(), c.Metrics(), clusterInvoker{c}, wfOpts)
	s.sampler = timeseries.NewSampler(c.Metrics(), timeseries.DefaultCapacity)
	if telem != nil {
		// Arm the plane before the first event: the eviction guard and
		// observer must see every trace from its first span.
		s.tail = telemetry.New(telemetry.Config{Seed: telem.seed, KeepRate: telem.keepRate()})
		s.tail.Attach(c.Journal(), c.Metrics())
		if telem.card > 0 {
			c.Metrics().SetCardinalityLimit(telem.card)
		}
		s.sampler.SetRollups(timeseries.DefaultRollups())
	}
	s.sampler.AddProbe("fleet_down_nodes", func() float64 {
		return float64(platform.DeriveFleetHealth(c.Metrics().Snapshot()).Down)
	})
	s.sampler.AddProbe("mem_sharing_efficiency", func() float64 { return s.sharingEfficiency() })
	s.watchdog = timeseries.NewWatchdog(s.sampler, c.Journal(), c.Metrics())
	s.watchdog.AddRule(timeseries.Rule{
		Name:      "invoke-success-rate",
		Ratio:     &timeseries.RatioSource{Num: "gateway_failures_total", Den: "gateway_requests_total", Complement: true, MinDen: 20},
		Op:        timeseries.AtLeast,
		Threshold: 0.99,
	})
	s.watchdog.AddRule(timeseries.Rule{
		Name:      "invoke-p99-latency",
		Value:     &timeseries.ValueSource{Series: metrics.Name("invoke_latency", "platform", "fireworks") + ".p99"},
		Op:        timeseries.AtMost,
		Threshold: float64(2 * time.Second),
	})
	s.watchdog.AddRule(timeseries.Rule{
		Name:      "fleet-availability",
		Value:     &timeseries.ValueSource{Series: "fleet_down_nodes"},
		Op:        timeseries.AtMost,
		Threshold: 0,
	})
	s.watchdog.AddRule(timeseries.Rule{
		Name:      "sharing-efficiency",
		Value:     &timeseries.ValueSource{Series: "mem_sharing_efficiency"},
		Op:        timeseries.AtLeast,
		Threshold: 1,
	})
	// The zero-time baseline sample anchors every burn-rate delta.
	s.sampler.Sample(0)
	return s
}

// clusterInvoker adapts the cluster to the workflow engine's Invoker:
// workflow steps go through normal placement (and failover, when
// armed); the serving node is recorded on the invocation's trace.
type clusterInvoker struct{ c *cluster.Cluster }

func (ci clusterInvoker) Invoke(name string, params lang.Value, opts platform.InvokeOptions) (*platform.Invocation, error) {
	inv, _, err := ci.c.Invoke(name, params, opts)
	return inv, err
}

// sharingEfficiency is the fleet-wide RSS-to-resident ratio: how many
// bytes the VMs think they have mapped per byte the hosts actually
// hold. >1 means snapshot pages are being shared (docs/memory.md);
// with no resident memory it is neutrally 1.
func (s *server) sharingEfficiency() float64 {
	var rss, used float64
	for _, n := range s.c.Nodes() {
		rep := n.Env.Mem.Report()
		rss += float64(rep.RSSSumBytes)
		used += float64(rep.UsedBytes)
	}
	if used == 0 {
		return 1
	}
	return rss / used
}

// observe folds one finished gateway request into the telemetry layer:
// the timeline advances by the request's virtual latency, the sampler
// snapshots the registry at the new time, and the watchdog evaluates
// every SLO rule there.
func (s *server) observe(latency time.Duration, failed bool) {
	s.requests.Inc()
	if failed {
		s.failures.Inc()
	}
	if latency <= 0 {
		latency = time.Microsecond // failures still move the timeline
	}
	now := s.timeline.Advance(latency)
	s.sampler.Sample(now)
	s.watchdog.Evaluate(now)
	// Decide traces that stalled without closing their root span; the
	// watchdog ran first so a just-fired alert still promotes its
	// evidence trace.
	s.tail.Flush(now)
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	metricsDump := flag.String("metrics", "", `dump mode: run a cluster demo and write the metrics snapshot to stdout ("text" or "json"), then exit`)
	nodes := flag.Int("nodes", 3, "cluster size (gateway and -metrics demo)")
	invocations := flag.Int("invocations", 12, "invocations to run in the -metrics demo")
	faultsSpec := flag.String("faults", "", `arm deterministic fault injection: "seed=N,rate=P" (rate is per-operation probability, e.g. 0.01)`)
	telemSpec := flag.String("telem", "", `arm the telemetry governor: "seed=N,rate=P[,card=K]" (rate is the probabilistic keep fraction for boring traces, card a per-family label-value budget)`)
	traceDump := flag.String("trace-dump", "", `in -metrics demo mode, write the event journal to this file (Chrome trace-event JSON for *.json, NDJSON otherwise)`)
	profile := flag.Bool("profile", false, "in -metrics demo mode, fold the event journal into virtual-time flame-stack lines on stderr")
	flag.Parse()

	chaos, err := parseFaultsSpec(*faultsSpec)
	if err != nil {
		log.Fatal(err)
	}
	telem, err := parseTelemSpec(*telemSpec)
	if err != nil {
		log.Fatal(err)
	}

	if *metricsDump != "" {
		cfg := demoConfig{
			format:      *metricsDump,
			nodes:       *nodes,
			invocations: *invocations,
			chaos:       chaos,
			traceDump:   *traceDump,
		}
		if *profile {
			cfg.profile = os.Stderr
		}
		if err := runMetricsDemo(os.Stdout, cfg); err != nil {
			log.Fatal(err)
		}
		return
	}

	if chaos != nil {
		log.Printf("fault injection armed: seed=%d rate=%g", chaos.seed, chaos.rate)
	}
	if telem != nil {
		log.Printf("telemetry governor armed: seed=%d rate=%g card=%d", telem.seed, telem.rate, telem.card)
	}
	s := newServer(*nodes, chaos, telem)
	log.Printf("fwsim gateway on http://%s (%d nodes)", *addr, *nodes)
	log.Fatal(http.ListenAndServe(*addr, s.mux()))
}

// faultsConfig is a parsed -faults flag.
type faultsConfig struct {
	seed uint64
	rate float64
}

// parseFaultsSpec parses "seed=N,rate=P" (either key optional, any
// order). An empty spec disables injection (nil config).
func parseFaultsSpec(spec string) (*faultsConfig, error) {
	if spec == "" {
		return nil, nil
	}
	cfg := &faultsConfig{seed: 1, rate: 0.01}
	for _, field := range strings.Split(spec, ",") {
		key, value, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return nil, fmt.Errorf("fwsim: -faults field %q is not key=value", field)
		}
		switch key {
		case "seed":
			n, err := strconv.ParseUint(value, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fwsim: -faults seed: %w", err)
			}
			cfg.seed = n
		case "rate":
			r, err := strconv.ParseFloat(value, 64)
			if err != nil {
				return nil, fmt.Errorf("fwsim: -faults rate: %w", err)
			}
			if r < 0 || r > 1 {
				return nil, fmt.Errorf("fwsim: -faults rate %v out of [0,1]", r)
			}
			cfg.rate = r
		default:
			return nil, fmt.Errorf("fwsim: -faults has no key %q (want seed, rate)", key)
		}
	}
	return cfg, nil
}

// telemConfig is a parsed -telem flag.
type telemConfig struct {
	seed uint64
	rate float64
	// card, when positive, is the default per-family label-value budget
	// the cardinality governor enforces on the registry.
	card int
}

// keepRate maps the CLI rate to telemetry.Config semantics: an
// explicit rate=0 means keep no boring traces (the Config encodes
// that as negative; its zero value means "default").
func (tc *telemConfig) keepRate() float64 {
	if tc.rate == 0 {
		return -1
	}
	return tc.rate
}

// parseTelemSpec parses "seed=N,rate=P[,card=K]" (every key optional,
// any order). An empty spec leaves the governor off (nil config).
func parseTelemSpec(spec string) (*telemConfig, error) {
	if spec == "" {
		return nil, nil
	}
	cfg := &telemConfig{seed: 1, rate: 0.1}
	for _, field := range strings.Split(spec, ",") {
		key, value, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return nil, fmt.Errorf("fwsim: -telem field %q is not key=value", field)
		}
		switch key {
		case "seed":
			n, err := strconv.ParseUint(value, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fwsim: -telem seed: %w", err)
			}
			cfg.seed = n
		case "rate":
			r, err := strconv.ParseFloat(value, 64)
			if err != nil {
				return nil, fmt.Errorf("fwsim: -telem rate: %w", err)
			}
			if r < 0 || r > 1 {
				return nil, fmt.Errorf("fwsim: -telem rate %v out of [0,1]", r)
			}
			cfg.rate = r
		case "card":
			k, err := strconv.Atoi(value)
			if err != nil || k < 0 {
				return nil, fmt.Errorf("fwsim: -telem card %q (want a non-negative integer)", value)
			}
			cfg.card = k
		default:
			return nil, fmt.Errorf("fwsim: -telem has no key %q (want seed, rate, card)", key)
		}
	}
	return cfg, nil
}

// mux registers the gateway's routes.
func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /install", s.handleInstall)
	mux.HandleFunc("POST /invoke/{name}", s.handleInvoke)
	mux.HandleFunc("GET /functions", s.handleFunctions)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /timeseries", s.handleTimeseries)
	mux.HandleFunc("GET /memory", s.handleMemory)
	mux.HandleFunc("GET /alerts", s.handleAlerts)
	mux.HandleFunc("GET /trace/{id}", s.handleTrace)
	mux.HandleFunc("GET /events", s.handleEvents)
	mux.HandleFunc("GET /events/stream", s.handleEventsStream)
	mux.HandleFunc("GET /telemetry", s.handleTelemetry)
	mux.HandleFunc("GET /insight/criticalpath/{trace}", s.handleInsightCriticalPath)
	mux.HandleFunc("GET /insight/servicegraph", s.handleInsightServiceGraph)
	mux.HandleFunc("GET /insight/slowest", s.handleInsightSlowest)
	mux.HandleFunc("GET /insight/report", s.handleInsightReport)
	mux.HandleFunc("POST /insight/diff", s.handleInsightDiff)
	mux.HandleFunc("DELETE /functions/{name}", s.handleRemove)
	mux.HandleFunc("GET /workflows", s.handleWorkflows)
	mux.HandleFunc("POST /workflows", s.handleWorkflowRegister)
	mux.HandleFunc("POST /workflows/{name}/run", s.handleWorkflowRun)
	mux.HandleFunc("GET /workflows/{name}/dlq", s.handleWorkflowDLQ)
	mux.HandleFunc("POST /workflows/{name}/dlq/replay", s.handleWorkflowDLQReplay)
	return mux
}

// demoConfig parameterizes the -metrics demo run.
type demoConfig struct {
	format      string
	nodes       int
	invocations int
	chaos       *faultsConfig
	// traceDump, when non-empty, is the file the demo's event journal
	// is written to after the workload (chrome for *.json, else ndjson).
	traceDump string
	// profile, when non-nil, receives the journal folded into
	// virtual-time flame-stack lines.
	profile io.Writer
}

// runMetricsDemo drives a built-in workload across a Fireworks cluster
// behind the least-inflight placement policy, then writes the shared
// registry's snapshot: restore counts and latency histograms, CoW
// faults, queue dwell, and per-node placement counters. With chaos
// non-nil the fault plane arms after the install (so the one-time
// deploy cannot fail) and the demo runs with retry + failover on;
// faulted invocations that still fail are counted, not fatal.
func runMetricsDemo(w io.Writer, cfg demoConfig) error {
	if cfg.nodes <= 0 || cfg.invocations <= 0 {
		return fmt.Errorf("fwsim: -nodes and -invocations must be positive")
	}
	envCfg := platform.EnvConfig{}
	opts := core.Options{}
	var plane *faults.Plane
	if cfg.chaos != nil {
		plane = faults.NewPlane(cfg.chaos.seed)
		envCfg.Faults = plane
		opts.Retry = faults.DefaultRetryPolicy()
	}
	c := cluster.New(cfg.nodes, cluster.LeastInflight, envCfg,
		func(env *platform.Env) platform.Platform {
			return core.New(env, opts)
		})
	if cfg.chaos != nil {
		c.SetFailover(cluster.FailoverPolicy{MaxFailovers: 2})
	}
	wl := workloads.NetLatency(rt.LangNode)
	if err := c.Install(wl.Function); err != nil {
		return err
	}
	plane.ApplyDefaultPlan(chaosRate(cfg.chaos))
	params := platform.MustParams(nil)
	failed := 0
	for i := 0; i < cfg.invocations; i++ {
		if _, _, err := c.Invoke(wl.Name, params, platform.InvokeOptions{}); err != nil {
			if cfg.chaos == nil {
				return err
			}
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "fwsim: %d/%d invocations failed despite retry+failover\n", failed, cfg.invocations)
	}
	if err := c.Metrics().WriteFormat(w, cfg.format); err != nil {
		return fmt.Errorf("fwsim: %w", err)
	}
	if cfg.traceDump != "" {
		if err := dumpJournal(cfg.traceDump, c.Journal().Events()); err != nil {
			return err
		}
	}
	if cfg.profile != nil {
		if err := events.WriteProfile(cfg.profile, c.Journal().Events()); err != nil {
			return fmt.Errorf("fwsim: -profile: %w", err)
		}
	}
	return nil
}

// dumpJournal writes the journal to path: Chrome trace-event JSON when
// the name ends in .json (load it in Perfetto), NDJSON otherwise.
func dumpJournal(path string, evs []events.Event) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("fwsim: -trace-dump: %w", err)
	}
	format := "ndjson"
	if strings.HasSuffix(path, ".json") {
		format = "chrome"
	}
	if err := events.WriteFormat(f, evs, format); err != nil {
		f.Close()
		return fmt.Errorf("fwsim: -trace-dump: %w", err)
	}
	return f.Close()
}

func chaosRate(chaos *faultsConfig) float64 {
	if chaos == nil {
		return 0
	}
	return chaos.rate
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *server) handleInstall(w http.ResponseWriter, r *http.Request) {
	var req installRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	lang := rt.Lang(req.Lang)
	if lang == "" {
		lang = rt.LangNode
	}
	report, err := s.c.InstallReported(platform.Function{
		Name:          req.Name,
		Source:        req.Source,
		Lang:          lang,
		Entry:         req.Entry,
		DefaultParams: req.DefaultParams,
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	s.installs[req.Name] = report
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, map[string]any{
		"function":       report.Function,
		"install_time":   report.Duration.String(),
		"snapshot_bytes": report.SnapshotBytes,
		"jit_compiled":   report.JITCompiled,
	})
}

func (s *server) handleInvoke(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(body) == 0 {
		body = []byte("{}")
	}
	params, err := rt.DecodeJSON(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("params: %w", err))
		return
	}
	// Every request is one trace: the gateway span roots it, and the
	// cluster/core layers nest under it all the way down to the exec.
	sc := s.c.Journal().NewScope("gateway", "POST /invoke", 0,
		events.A("function", name))
	inv, node, err := s.c.Invoke(name, params, platform.InvokeOptions{Trace: sc})
	var end time.Duration
	if inv != nil {
		end = inv.Clock.Now()
	}
	if err != nil {
		sc.Close(end, events.A("error", err.Error()))
		s.observe(end, true)
		writeJSON(w, http.StatusBadGateway, map[string]any{
			"error":    err.Error(),
			"trace_id": uint64(sc.TraceID()),
		})
		return
	}
	sc.Close(end)
	s.observe(inv.Breakdown.Total(), false)
	resultJSON, err := rt.EncodeJSON(inv.Result)
	if err != nil {
		resultJSON = []byte("null")
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"result":   json.RawMessage(resultJSON),
		"response": inv.Response,
		"latency": map[string]string{
			"start-up": inv.Breakdown.Startup().String(),
			"exec":     inv.Breakdown.Exec().String(),
			"others":   inv.Breakdown.Others().String(),
			"total":    inv.Breakdown.Total().String(),
		},
		"sandbox":  inv.SandboxID,
		"node":     node.Name,
		"trace_id": uint64(sc.TraceID()),
		"logs":     inv.Logs,
	})
}

func (s *server) handleFunctions(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	names := make([]string, 0, len(s.installs))
	for name := range s.installs {
		names = append(names, name)
	}
	s.mu.Unlock()
	sort.Strings(names)
	out := make([]map[string]any, 0, len(names))
	for _, name := range names {
		s.mu.Lock()
		rep := s.installs[name]
		s.mu.Unlock()
		out = append(out, map[string]any{
			"name":           name,
			"snapshot_bytes": rep.SnapshotBytes,
			"install_time":   rep.Duration.String(),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	var memUsed, memTotal, snapBytes uint64
	var vms, namespaces int
	swapping := false
	perNode := make([]map[string]any, 0, len(s.c.Nodes()))
	for _, n := range s.c.Nodes() {
		memUsed += n.Env.Mem.Used()
		memTotal += n.Env.Mem.Capacity()
		snapBytes += n.Env.Snaps.UsedBytes()
		vms += n.Env.HV.VMCount()
		namespaces += n.Env.Router.NamespaceCount()
		if n.Env.Mem.Swapping() {
			swapping = true
		}
		perNode = append(perNode, map[string]any{
			"name":        n.Name,
			"health":      n.Health().String(),
			"memory_used": n.Env.Mem.Used(),
			"swapping":    n.Env.Mem.Swapping(),
			"microvms":    n.Env.HV.VMCount(),
			"invocations": n.Invocations(),
		})
	}
	first := s.c.Nodes()[0]
	writeJSON(w, http.StatusOK, map[string]any{
		"host_memory_used":    memUsed,
		"host_memory_total":   memTotal,
		"swap_threshold":      first.Env.Mem.SwapThreshold(),
		"swapping":            swapping,
		"live_microvms":       vms,
		"network_namespaces":  namespaces,
		"snapshot_disk_bytes": snapBytes,
		"snapshots":           first.Env.Snaps.Names(),
		"databases":           first.Env.Couch.Names(),
		"nodes":               perNode,
	})
}

// handleHealthz serves the fleet availability view. The derivation is
// platform.DeriveFleetHealth — the same helper the SLO watchdog's
// fleet_down_nodes probe samples — so the dashboard and the alerting
// path can never disagree; 503 only when every node is down (the
// cluster absorbs anything less).
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	f := platform.DeriveFleetHealth(s.c.Metrics().Snapshot())
	code := http.StatusOK
	if f.AllDown() {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{"status": f.Status, "nodes": f.Nodes})
}

// handleTimeseries dumps the gateway sampler's full history: every
// registry counter/gauge (plus histogram count/p50/p99 derivatives and
// the fleet probes) sampled once per completed request on the virtual
// timeline. CSV by default, ?format=json for the JSON shape.
func (s *server) handleTimeseries(w http.ResponseWriter, r *http.Request) {
	format := "csv"
	contentType := "text/csv; charset=utf-8"
	switch r.URL.Query().Get("format") {
	case "", "csv":
	case "json":
		format = "json"
		contentType = "application/json"
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("timeseries: unknown format %q (want csv or json)", r.URL.Query().Get("format")))
		return
	}
	w.Header().Set("Content-Type", contentType)
	_ = s.sampler.WriteFormat(w, format)
}

// handleMemory serves the smem-style fleet memory report: per node, a
// per-VM RSS/PSS/USS table plus the snapshot page-lineage table
// (docs/memory.md). ?format=json returns the structured reports.
func (s *server) handleMemory(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" {
		out := make([]map[string]any, 0, len(s.c.Nodes()))
		for _, n := range s.c.Nodes() {
			out = append(out, map[string]any{"node": n.Name, "report": n.Env.Mem.Report()})
		}
		writeJSON(w, http.StatusOK, out)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, n := range s.c.Nodes() {
		fmt.Fprintf(w, "### %s\n", n.Name)
		n.Env.Mem.Report().WriteText(w)
		fmt.Fprintln(w)
	}
}

// handleAlerts serves the SLO watchdog state: every alert fired so far
// (each carrying the journal ref of its alert instant and the causal
// link GET /trace/{id} resolves), the rules currently in violation,
// and the declared contracts.
func (s *server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	rules := make([]string, 0)
	for _, rule := range s.watchdog.Rules() {
		rules = append(rules, rule.String())
	}
	firing := s.watchdog.Firing()
	if firing == nil {
		firing = []string{}
	}
	alerts := s.watchdog.Alerts()
	if alerts == nil {
		alerts = []timeseries.Alert{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"rules":  rules,
		"firing": firing,
		"alerts": alerts,
	})
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// An unknown format is a client error, matching the /events limit
	// validation — a typo must not silently fall back to text.
	format := "text"
	contentType := "text/plain; charset=utf-8"
	switch r.URL.Query().Get("format") {
	case "", "text":
	case "json":
		format = "json"
		contentType = "application/json"
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("metrics: unknown format %q (want text or json)", r.URL.Query().Get("format")))
		return
	}
	w.Header().Set("Content-Type", contentType)
	_ = s.c.Metrics().WriteFormat(w, format)
}

func (s *server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("trace id: %w", err))
		return
	}
	evs := s.c.Journal().Trace(events.TraceID(id))
	if len(evs) == 0 {
		writeError(w, http.StatusNotFound, fmt.Errorf("trace %d: no events", id))
		return
	}
	s.writeEvents(w, r, evs)
}

func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	evs := s.c.Journal().Events()
	if limitStr := r.URL.Query().Get("limit"); limitStr != "" {
		// A limit must be a positive integer; zero, negatives, and
		// garbage are client errors, not silent defaults.
		limit, err := strconv.Atoi(limitStr)
		if err != nil || limit <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("events: bad limit %q (want a positive integer)", limitStr))
			return
		}
		evs = s.c.Journal().Tail(limit)
	}
	s.writeEvents(w, r, evs)
}

// handleEventsStream long-polls the journal as NDJSON: events with
// Seq > since (?since=N, default 0 = everything) are written one JSON
// object per line, and the X-Next-Since header carries the highest Seq
// served so the client can resume exactly where it left off. With
// ?wait_ms=N the request blocks up to that long for new events before
// returning an empty body. The stream is post-sampling by
// construction: the tail sampler physically drops non-kept traces from
// the journal, so they never reach a streaming client.
func (s *server) handleEventsStream(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var since uint64
	if str := q.Get("since"); str != "" {
		v, err := strconv.ParseUint(str, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("stream: bad since %q (want a sequence number)", str))
			return
		}
		since = v
	}
	wait := time.Duration(0)
	if str := q.Get("wait_ms"); str != "" {
		ms, err := strconv.Atoi(str)
		if err != nil || ms < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("stream: bad wait_ms %q (want a non-negative integer)", str))
			return
		}
		const maxWait = 30 * time.Second
		wait = time.Duration(ms) * time.Millisecond
		if wait > maxWait {
			wait = maxWait
		}
	}
	deadline := time.Now().Add(wait)
	var fresh []events.Event
	for {
		fresh = fresh[:0]
		for _, e := range s.c.Journal().Events() {
			if e.Seq > since {
				fresh = append(fresh, e)
			}
		}
		if len(fresh) > 0 || !time.Now().Before(deadline) {
			break
		}
		select {
		case <-r.Context().Done():
			return
		case <-time.After(10 * time.Millisecond):
		}
	}
	next := since
	if len(fresh) > 0 {
		next = fresh[len(fresh)-1].Seq
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Next-Since", strconv.FormatUint(next, 10))
	_ = events.WriteNDJSON(w, fresh)
}

// handleTelemetry serves the telemetry plane's self-accounting: the
// tail sampler's keep/drop ledger (null when -telem is off), the
// registry's cardinality audit (TopK families by live series), the
// timeseries sampler's resident memory, and the journal's occupancy.
func (s *server) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	k := 10
	if str := r.URL.Query().Get("k"); str != "" {
		v, err := strconv.Atoi(str)
		if err != nil || v <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("telemetry: bad k %q (want a positive integer)", str))
			return
		}
		k = v
	}
	var tail any
	if s.tail != nil {
		tail = s.tail.Stats()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"tail_sampling": tail,
		"cardinality":   s.c.Metrics().CardinalityAudit(k),
		"sampler":       s.sampler.Stats(),
		"journal": map[string]any{
			"events":  s.c.Journal().Len(),
			"dropped": s.c.Journal().Dropped(),
			"shards":  s.c.Journal().Shards(),
		},
	})
}

// handleInsightCriticalPath serves one trace's critical-path analysis:
// the ranked blame table and the root→leaf path of dominant spans.
func (s *server) handleInsightCriticalPath(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("trace"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("insight: trace id: %w", err))
		return
	}
	ti, ok := insight.AnalyzeTrace(s.c.Journal().Trace(events.TraceID(id)))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("insight: trace %d: no events", id))
		return
	}
	insight.CountReport(s.c.Metrics(), "criticalpath")
	writeJSON(w, http.StatusOK, ti)
}

// handleInsightServiceGraph serves the component graph with per-edge
// RED stats, as json (default), dot, or mermaid.
func (s *server) handleInsightServiceGraph(w http.ResponseWriter, r *http.Request) {
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "json"
	}
	contentType := "application/json"
	if format == "dot" || format == "mermaid" {
		contentType = "text/plain; charset=utf-8"
	}
	g := insight.Analyze(s.c.Journal().Events()).Graph
	var buf strings.Builder
	if err := g.WriteFormat(&buf, format); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	insight.CountReport(s.c.Metrics(), "servicegraph")
	w.Header().Set("Content-Type", contentType)
	_, _ = io.WriteString(w, buf.String())
}

// handleInsightSlowest serves the k slowest traces with their critical
// paths — the tail-latency exemplar report.
func (s *server) handleInsightSlowest(w http.ResponseWriter, r *http.Request) {
	k := 5
	if kStr := r.URL.Query().Get("k"); kStr != "" {
		v, err := strconv.Atoi(kStr)
		if err != nil || v <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("insight: bad k %q (want a positive integer)", kStr))
			return
		}
		k = v
	}
	rep := insight.Analyze(s.c.Journal().Events())
	insight.CountReport(s.c.Metrics(), "slowest")
	writeJSON(w, http.StatusOK, rep.Slowest(k))
}

// handleInsightReport serves the full analysis — every trace's
// critical path plus the service graph — the artifact /insight/diff
// compares.
func (s *server) handleInsightReport(w http.ResponseWriter, r *http.Request) {
	rep := insight.Analyze(s.c.Journal().Events())
	if s.tail != nil {
		// The journal is tail-sampled: say how partial the report is.
		st := s.tail.Stats()
		rep.AnnotateCoverage(int(st.KeptTraces), int(st.DecidedTraces))
	}
	insight.CountReport(s.c.Metrics(), "report")
	writeJSON(w, http.StatusOK, rep)
}

// handleInsightDiff compares two insight reports POSTed as
// {"a": <report>, "b": <report>} and attributes the delta to blame
// sites and graph edges.
func (s *server) handleInsightDiff(w http.ResponseWriter, r *http.Request) {
	var req struct {
		A *insight.Report `json:"a"`
		B *insight.Report `json:"b"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("insight: diff body: %w", err))
		return
	}
	if req.A == nil || req.B == nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("insight: diff needs both \"a\" and \"b\" reports"))
		return
	}
	insight.CountReport(s.c.Metrics(), "diff")
	writeJSON(w, http.StatusOK, insight.Diff(req.A, req.B))
}

// writeEvents renders a slice of journal events per the request's
// format parameter: ndjson (default) or chrome (Perfetto-loadable).
func (s *server) writeEvents(w http.ResponseWriter, r *http.Request, evs []events.Event) {
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "ndjson"
	}
	contentType := "application/x-ndjson"
	if format == "chrome" {
		contentType = "application/json"
	}
	var buf strings.Builder
	if err := events.WriteFormat(&buf, evs, format); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Content-Type", contentType)
	_, _ = io.WriteString(w, buf.String())
}

// handleWorkflows lists every registered workflow: its DAG (step ids,
// functions, dependencies, conditions) and current DLQ depth.
func (s *server) handleWorkflows(w http.ResponseWriter, r *http.Request) {
	out := make([]map[string]any, 0)
	for _, name := range s.wf.Workflows() {
		spec := s.wf.Spec(name)
		if spec == nil {
			continue
		}
		steps := make([]map[string]any, 0, len(spec.Steps))
		for _, st := range spec.Steps {
			entry := map[string]any{"id": st.ID, "function": st.Function}
			if len(st.After) > 0 {
				entry["after"] = st.After
			}
			if st.When != nil {
				entry["when"] = st.When
			}
			steps = append(steps, entry)
		}
		dlq, err := s.wf.DLQ(name)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		out = append(out, map[string]any{
			"name":      name,
			"steps":     steps,
			"dlq_depth": len(dlq),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleWorkflowRegister registers a workflow DAG from its JSON spec
// (docs/workflows.md documents the format).
func (s *server) handleWorkflowRegister(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	spec, err := workflow.ParseSpec(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.wf.Register(spec); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{
		"workflow": spec.Name,
		"steps":    len(spec.Steps),
	})
}

// runSummary renders one workflow run for an HTTP response: status,
// per-step delivery state, and the trace id of the run's single
// end-to-end journal trace.
func (s *server) runSummary(run *workflow.Run) map[string]any {
	steps := make([]map[string]any, 0)
	for _, st := range run.Steps(s.wf) {
		entry := map[string]any{
			"id":       st.ID,
			"function": st.Function,
			"status":   st.Status,
			"attempts": st.Attempts,
		}
		if st.Error != "" {
			entry["error"] = st.Error
		}
		steps = append(steps, entry)
	}
	return map[string]any{
		"run":      run.ID,
		"workflow": run.Workflow,
		"status":   run.Status,
		"steps":    steps,
		"trace_id": uint64(run.TraceID()),
		"latency": map[string]string{
			"start-up": run.Invocation.Breakdown.Startup().String(),
			"exec":     run.Invocation.Breakdown.Exec().String(),
			"others":   run.Invocation.Breakdown.Others().String(),
			"total":    run.Invocation.Breakdown.Total().String(),
		},
	}
}

// handleWorkflowRun executes a registered workflow with the request
// body as input and returns the finished run (completed or stalled —
// stalled runs park their dead steps on the workflow's DLQ).
func (s *server) handleWorkflowRun(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if s.wf.Spec(name) == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("workflow %q: not registered", name))
		return
	}
	var input map[string]any
	if err := json.NewDecoder(r.Body).Decode(&input); err != nil && err != io.EOF {
		writeError(w, http.StatusBadRequest, fmt.Errorf("input: %w", err))
		return
	}
	run, err := s.wf.Run(name, input, s.timeline.Now())
	if err != nil {
		s.observe(0, true)
		writeJSON(w, http.StatusBadGateway, map[string]any{"error": err.Error()})
		return
	}
	s.observe(run.Invocation.Breakdown.Total(), run.Status != workflow.RunCompleted)
	status := http.StatusOK
	if run.Status != workflow.RunCompleted {
		status = http.StatusBadGateway
	}
	writeJSON(w, status, s.runSummary(run))
}

// handleWorkflowDLQ lists the workflow's parked dead letters.
func (s *server) handleWorkflowDLQ(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	recs, err := s.wf.DLQ(name)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	if recs == nil {
		recs = []workflow.DLQRecord{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"workflow": name,
		"depth":    len(recs),
		"records":  recs,
	})
}

// handleWorkflowDLQReplay redelivers every parked dead letter and
// resumes the stalled runs (e.g. after redeploying a fixed function).
func (s *server) handleWorkflowDLQReplay(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if s.wf.Spec(name) == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("workflow %q: not registered", name))
		return
	}
	runs, err := s.wf.ReplayDLQ(name, s.timeline.Now())
	if err != nil {
		writeError(w, http.StatusBadGateway, err)
		return
	}
	out := make([]map[string]any, 0, len(runs))
	for _, run := range runs {
		s.observe(run.Invocation.Breakdown.Total(), run.Status != workflow.RunCompleted)
		out = append(out, s.runSummary(run))
	}
	writeJSON(w, http.StatusOK, map[string]any{"workflow": name, "replayed": out})
}

func (s *server) handleRemove(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.c.Remove(name); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	s.mu.Lock()
	delete(s.installs, name)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]string{"removed": name})
}
