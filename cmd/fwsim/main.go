// Command fwsim runs a Fireworks platform behind a real HTTP gateway —
// the serverless frontend of Figure 1 over the simulated backend. It
// lets you drive installs and invocations with curl and watch host
// state (live microVMs, memory, snapshot store).
//
//	fwsim -addr :8080
//
//	# install a function
//	curl -s localhost:8080/install -d '{
//	  "name": "hello",
//	  "lang": "nodejs",
//	  "source": "func main(params) { return \"hi \" + params.who; }",
//	  "default_params": {"who": "world"}
//	}'
//
//	# invoke it
//	curl -s localhost:8080/invoke/hello -d '{"who": "fireworks"}'
//
//	# inspect the platform
//	curl -s localhost:8080/functions
//	curl -s localhost:8080/stats
//	curl -s localhost:8080/metrics
//	curl -s 'localhost:8080/metrics?format=json'
//
// With -metrics the gateway is skipped entirely: fwsim drives a demo
// workload across a simulated cluster and dumps the fleet-wide metrics
// snapshot (restore latencies, CoW faults, queue dwell, per-node
// placement) to stdout, then exits.
//
//	fwsim -metrics text -nodes 3 -invocations 12
//
// With -faults the deterministic fault-injection plane is armed
// (internal/faults): the seed pins the fault schedule, the rate is the
// per-operation fault probability, and the platform runs with its
// default retry and failover policies so injected faults are mostly
// absorbed rather than surfaced.
//
//	fwsim -metrics text -faults seed=7,rate=0.05
//	fwsim -addr :8080 -faults seed=7,rate=0.01
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/platform"
	rt "repro/internal/runtime"
	"repro/internal/workloads"
)

type server struct {
	env *platform.Env
	fw  *core.Framework

	mu       sync.Mutex
	installs map[string]*platform.InstallReport
}

type installRequest struct {
	Name          string         `json:"name"`
	Lang          string         `json:"lang"`
	Source        string         `json:"source"`
	Entry         string         `json:"entry"`
	DefaultParams map[string]any `json:"default_params"`
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	metricsDump := flag.String("metrics", "", `dump mode: run a cluster demo and write the metrics snapshot to stdout ("text" or "json"), then exit`)
	nodes := flag.Int("nodes", 3, "cluster size for the -metrics demo")
	invocations := flag.Int("invocations", 12, "invocations to run in the -metrics demo")
	faultsSpec := flag.String("faults", "", `arm deterministic fault injection: "seed=N,rate=P" (rate is per-operation probability, e.g. 0.01)`)
	flag.Parse()

	chaos, err := parseFaultsSpec(*faultsSpec)
	if err != nil {
		log.Fatal(err)
	}

	if *metricsDump != "" {
		if err := runMetricsDemo(os.Stdout, *metricsDump, *nodes, *invocations, chaos); err != nil {
			log.Fatal(err)
		}
		return
	}

	envCfg := platform.EnvConfig{}
	opts := core.Options{}
	if chaos != nil {
		// The gateway is long-lived, so the plane arms immediately and
		// the platform runs with retries on.
		envCfg.Faults = faults.DefaultPlan(chaos.seed, chaos.rate)
		opts.Retry = faults.DefaultRetryPolicy()
		log.Printf("fault injection armed: seed=%d rate=%g", chaos.seed, chaos.rate)
	}
	s := &server{
		env:      platform.NewEnv(envCfg),
		installs: make(map[string]*platform.InstallReport),
	}
	s.fw = core.New(s.env, opts)

	log.Printf("fwsim gateway on http://%s", *addr)
	log.Fatal(http.ListenAndServe(*addr, s.mux()))
}

// faultsConfig is a parsed -faults flag.
type faultsConfig struct {
	seed uint64
	rate float64
}

// parseFaultsSpec parses "seed=N,rate=P" (either key optional, any
// order). An empty spec disables injection (nil config).
func parseFaultsSpec(spec string) (*faultsConfig, error) {
	if spec == "" {
		return nil, nil
	}
	cfg := &faultsConfig{seed: 1, rate: 0.01}
	for _, field := range strings.Split(spec, ",") {
		key, value, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return nil, fmt.Errorf("fwsim: -faults field %q is not key=value", field)
		}
		switch key {
		case "seed":
			n, err := strconv.ParseUint(value, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fwsim: -faults seed: %w", err)
			}
			cfg.seed = n
		case "rate":
			r, err := strconv.ParseFloat(value, 64)
			if err != nil {
				return nil, fmt.Errorf("fwsim: -faults rate: %w", err)
			}
			if r < 0 || r > 1 {
				return nil, fmt.Errorf("fwsim: -faults rate %v out of [0,1]", r)
			}
			cfg.rate = r
		default:
			return nil, fmt.Errorf("fwsim: -faults has no key %q (want seed, rate)", key)
		}
	}
	return cfg, nil
}

// mux registers the gateway's routes.
func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /install", s.handleInstall)
	mux.HandleFunc("POST /invoke/{name}", s.handleInvoke)
	mux.HandleFunc("GET /functions", s.handleFunctions)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("DELETE /functions/{name}", s.handleRemove)
	return mux
}

// runMetricsDemo drives a built-in workload across a Fireworks cluster
// behind the least-inflight placement policy, then writes the shared
// registry's snapshot: restore counts and latency histograms, CoW
// faults, queue dwell, and per-node placement counters. With chaos
// non-nil the fault plane arms after the install (so the one-time
// deploy cannot fail) and the demo runs with retry + failover on;
// faulted invocations that still fail are counted, not fatal.
func runMetricsDemo(w io.Writer, format string, nodes, invocations int, chaos *faultsConfig) error {
	if nodes <= 0 || invocations <= 0 {
		return fmt.Errorf("fwsim: -nodes and -invocations must be positive")
	}
	envCfg := platform.EnvConfig{}
	opts := core.Options{}
	var plane *faults.Plane
	if chaos != nil {
		plane = faults.NewPlane(chaos.seed)
		envCfg.Faults = plane
		opts.Retry = faults.DefaultRetryPolicy()
	}
	c := cluster.New(nodes, cluster.LeastInflight, envCfg,
		func(env *platform.Env) platform.Platform {
			return core.New(env, opts)
		})
	if chaos != nil {
		c.SetFailover(cluster.FailoverPolicy{MaxFailovers: 2})
	}
	wl := workloads.NetLatency(rt.LangNode)
	if err := c.Install(wl.Function); err != nil {
		return err
	}
	plane.ApplyDefaultPlan(chaosRate(chaos))
	params := platform.MustParams(nil)
	failed := 0
	for i := 0; i < invocations; i++ {
		if _, _, err := c.Invoke(wl.Name, params, platform.InvokeOptions{}); err != nil {
			if chaos == nil {
				return err
			}
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "fwsim: %d/%d invocations failed despite retry+failover\n", failed, invocations)
	}
	if err := c.Metrics().WriteFormat(w, format); err != nil {
		return fmt.Errorf("fwsim: %w", err)
	}
	return nil
}

func chaosRate(chaos *faultsConfig) float64 {
	if chaos == nil {
		return 0
	}
	return chaos.rate
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *server) handleInstall(w http.ResponseWriter, r *http.Request) {
	var req installRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	lang := rt.Lang(req.Lang)
	if lang == "" {
		lang = rt.LangNode
	}
	report, err := s.fw.Install(platform.Function{
		Name:          req.Name,
		Source:        req.Source,
		Lang:          lang,
		Entry:         req.Entry,
		DefaultParams: req.DefaultParams,
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	s.installs[req.Name] = report
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, map[string]any{
		"function":       report.Function,
		"install_time":   report.Duration.String(),
		"snapshot_bytes": report.SnapshotBytes,
		"jit_compiled":   report.JITCompiled,
	})
}

func (s *server) handleInvoke(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(body) == 0 {
		body = []byte("{}")
	}
	params, err := rt.DecodeJSON(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("params: %w", err))
		return
	}
	inv, err := s.fw.Invoke(name, params, platform.InvokeOptions{})
	if err != nil {
		writeError(w, http.StatusBadGateway, err)
		return
	}
	resultJSON, err := rt.EncodeJSON(inv.Result)
	if err != nil {
		resultJSON = []byte("null")
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"result":   json.RawMessage(resultJSON),
		"response": inv.Response,
		"latency": map[string]string{
			"start-up": inv.Breakdown.Startup().String(),
			"exec":     inv.Breakdown.Exec().String(),
			"others":   inv.Breakdown.Others().String(),
			"total":    inv.Breakdown.Total().String(),
		},
		"sandbox": inv.SandboxID,
		"logs":    inv.Logs,
	})
}

func (s *server) handleFunctions(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	names := make([]string, 0, len(s.installs))
	for name := range s.installs {
		names = append(names, name)
	}
	s.mu.Unlock()
	sort.Strings(names)
	out := make([]map[string]any, 0, len(names))
	for _, name := range names {
		s.mu.Lock()
		rep := s.installs[name]
		s.mu.Unlock()
		out = append(out, map[string]any{
			"name":           name,
			"snapshot_bytes": rep.SnapshotBytes,
			"install_time":   rep.Duration.String(),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"host_memory_used":    s.env.Mem.Used(),
		"host_memory_total":   s.env.Mem.Capacity(),
		"swap_threshold":      s.env.Mem.SwapThreshold(),
		"swapping":            s.env.Mem.Swapping(),
		"live_microvms":       s.env.HV.VMCount(),
		"network_namespaces":  s.env.Router.NamespaceCount(),
		"snapshot_disk_bytes": s.env.Snaps.UsedBytes(),
		"snapshots":           s.env.Snaps.Names(),
		"databases":           s.env.Couch.Names(),
	})
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// Any format other than json renders text, so the endpoint never
	// 500s on a stray query parameter.
	format := "text"
	contentType := "text/plain; charset=utf-8"
	if r.URL.Query().Get("format") == "json" {
		format = "json"
		contentType = "application/json"
	}
	w.Header().Set("Content-Type", contentType)
	_ = s.env.Metrics.WriteFormat(w, format)
}

func (s *server) handleRemove(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.fw.Remove(name); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	s.mu.Lock()
	delete(s.installs, name)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]string{"removed": name})
}
