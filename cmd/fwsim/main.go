// Command fwsim runs a Fireworks cluster behind a real HTTP gateway —
// the serverless frontend of Figure 1 over the simulated backend. It
// lets you drive installs and invocations with curl and watch fleet
// state (live microVMs, memory, snapshot store, node health) and the
// causal event journal every request records into.
//
//	fwsim -addr :8080
//
//	# install a function (deployed on every node)
//	curl -s localhost:8080/install -d '{
//	  "name": "hello",
//	  "lang": "nodejs",
//	  "source": "func main(params) { return \"hi \" + params.who; }",
//	  "default_params": {"who": "world"}
//	}'
//
//	# invoke it; the response carries the node that served it and the
//	# trace id of the request's event trail
//	curl -s localhost:8080/invoke/hello -d '{"who": "fireworks"}'
//
//	# inspect the platform
//	curl -s localhost:8080/functions
//	curl -s localhost:8080/stats
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/metrics
//	curl -s 'localhost:8080/metrics?format=json'
//
//	# pull one request's trace, or the whole journal
//	curl -s localhost:8080/trace/1
//	curl -s 'localhost:8080/events?format=chrome' > trace.json  # open in Perfetto
//	curl -s 'localhost:8080/events?format=ndjson&limit=100'
//
// With -metrics the gateway is skipped entirely: fwsim drives a demo
// workload across a simulated cluster and dumps the fleet-wide metrics
// snapshot (restore latencies, CoW faults, queue dwell, per-node
// placement) to stdout, then exits. -trace-dump writes the demo's
// event journal to a file (Chrome trace-event JSON when the name ends
// in .json, NDJSON otherwise) and -profile folds it into virtual-time
// flame-stack lines on stderr.
//
//	fwsim -metrics text -nodes 3 -invocations 12
//	fwsim -metrics text -trace-dump trace.json -profile
//
// With -faults the deterministic fault-injection plane is armed
// (internal/faults): the seed pins the fault schedule, the rate is the
// per-operation fault probability, and the platform runs with its
// default retry and failover policies so injected faults are mostly
// absorbed rather than surfaced.
//
//	fwsim -metrics text -faults seed=7,rate=0.05
//	fwsim -addr :8080 -faults seed=7,rate=0.01
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/platform"
	rt "repro/internal/runtime"
	"repro/internal/workloads"
)

type server struct {
	c *cluster.Cluster

	mu       sync.Mutex
	installs map[string]*platform.InstallReport
}

type installRequest struct {
	Name          string         `json:"name"`
	Lang          string         `json:"lang"`
	Source        string         `json:"source"`
	Entry         string         `json:"entry"`
	DefaultParams map[string]any `json:"default_params"`
}

// newServer builds a gateway over a fresh cluster. With chaos non-nil
// the fault plane arms immediately (the gateway is long-lived) and the
// platform runs with its default retry and failover policies.
func newServer(nodes int, chaos *faultsConfig) *server {
	envCfg := platform.EnvConfig{}
	opts := core.Options{}
	if chaos != nil {
		envCfg.Faults = faults.DefaultPlan(chaos.seed, chaos.rate)
		opts.Retry = faults.DefaultRetryPolicy()
	}
	c := cluster.New(nodes, cluster.LeastInflight, envCfg,
		func(env *platform.Env) platform.Platform {
			return core.New(env, opts)
		})
	if chaos != nil {
		c.SetFailover(cluster.FailoverPolicy{MaxFailovers: 2})
	}
	return &server{c: c, installs: make(map[string]*platform.InstallReport)}
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	metricsDump := flag.String("metrics", "", `dump mode: run a cluster demo and write the metrics snapshot to stdout ("text" or "json"), then exit`)
	nodes := flag.Int("nodes", 3, "cluster size (gateway and -metrics demo)")
	invocations := flag.Int("invocations", 12, "invocations to run in the -metrics demo")
	faultsSpec := flag.String("faults", "", `arm deterministic fault injection: "seed=N,rate=P" (rate is per-operation probability, e.g. 0.01)`)
	traceDump := flag.String("trace-dump", "", `in -metrics demo mode, write the event journal to this file (Chrome trace-event JSON for *.json, NDJSON otherwise)`)
	profile := flag.Bool("profile", false, "in -metrics demo mode, fold the event journal into virtual-time flame-stack lines on stderr")
	flag.Parse()

	chaos, err := parseFaultsSpec(*faultsSpec)
	if err != nil {
		log.Fatal(err)
	}

	if *metricsDump != "" {
		cfg := demoConfig{
			format:      *metricsDump,
			nodes:       *nodes,
			invocations: *invocations,
			chaos:       chaos,
			traceDump:   *traceDump,
		}
		if *profile {
			cfg.profile = os.Stderr
		}
		if err := runMetricsDemo(os.Stdout, cfg); err != nil {
			log.Fatal(err)
		}
		return
	}

	if chaos != nil {
		log.Printf("fault injection armed: seed=%d rate=%g", chaos.seed, chaos.rate)
	}
	s := newServer(*nodes, chaos)
	log.Printf("fwsim gateway on http://%s (%d nodes)", *addr, *nodes)
	log.Fatal(http.ListenAndServe(*addr, s.mux()))
}

// faultsConfig is a parsed -faults flag.
type faultsConfig struct {
	seed uint64
	rate float64
}

// parseFaultsSpec parses "seed=N,rate=P" (either key optional, any
// order). An empty spec disables injection (nil config).
func parseFaultsSpec(spec string) (*faultsConfig, error) {
	if spec == "" {
		return nil, nil
	}
	cfg := &faultsConfig{seed: 1, rate: 0.01}
	for _, field := range strings.Split(spec, ",") {
		key, value, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return nil, fmt.Errorf("fwsim: -faults field %q is not key=value", field)
		}
		switch key {
		case "seed":
			n, err := strconv.ParseUint(value, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fwsim: -faults seed: %w", err)
			}
			cfg.seed = n
		case "rate":
			r, err := strconv.ParseFloat(value, 64)
			if err != nil {
				return nil, fmt.Errorf("fwsim: -faults rate: %w", err)
			}
			if r < 0 || r > 1 {
				return nil, fmt.Errorf("fwsim: -faults rate %v out of [0,1]", r)
			}
			cfg.rate = r
		default:
			return nil, fmt.Errorf("fwsim: -faults has no key %q (want seed, rate)", key)
		}
	}
	return cfg, nil
}

// mux registers the gateway's routes.
func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /install", s.handleInstall)
	mux.HandleFunc("POST /invoke/{name}", s.handleInvoke)
	mux.HandleFunc("GET /functions", s.handleFunctions)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /trace/{id}", s.handleTrace)
	mux.HandleFunc("GET /events", s.handleEvents)
	mux.HandleFunc("DELETE /functions/{name}", s.handleRemove)
	return mux
}

// demoConfig parameterizes the -metrics demo run.
type demoConfig struct {
	format      string
	nodes       int
	invocations int
	chaos       *faultsConfig
	// traceDump, when non-empty, is the file the demo's event journal
	// is written to after the workload (chrome for *.json, else ndjson).
	traceDump string
	// profile, when non-nil, receives the journal folded into
	// virtual-time flame-stack lines.
	profile io.Writer
}

// runMetricsDemo drives a built-in workload across a Fireworks cluster
// behind the least-inflight placement policy, then writes the shared
// registry's snapshot: restore counts and latency histograms, CoW
// faults, queue dwell, and per-node placement counters. With chaos
// non-nil the fault plane arms after the install (so the one-time
// deploy cannot fail) and the demo runs with retry + failover on;
// faulted invocations that still fail are counted, not fatal.
func runMetricsDemo(w io.Writer, cfg demoConfig) error {
	if cfg.nodes <= 0 || cfg.invocations <= 0 {
		return fmt.Errorf("fwsim: -nodes and -invocations must be positive")
	}
	envCfg := platform.EnvConfig{}
	opts := core.Options{}
	var plane *faults.Plane
	if cfg.chaos != nil {
		plane = faults.NewPlane(cfg.chaos.seed)
		envCfg.Faults = plane
		opts.Retry = faults.DefaultRetryPolicy()
	}
	c := cluster.New(cfg.nodes, cluster.LeastInflight, envCfg,
		func(env *platform.Env) platform.Platform {
			return core.New(env, opts)
		})
	if cfg.chaos != nil {
		c.SetFailover(cluster.FailoverPolicy{MaxFailovers: 2})
	}
	wl := workloads.NetLatency(rt.LangNode)
	if err := c.Install(wl.Function); err != nil {
		return err
	}
	plane.ApplyDefaultPlan(chaosRate(cfg.chaos))
	params := platform.MustParams(nil)
	failed := 0
	for i := 0; i < cfg.invocations; i++ {
		if _, _, err := c.Invoke(wl.Name, params, platform.InvokeOptions{}); err != nil {
			if cfg.chaos == nil {
				return err
			}
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "fwsim: %d/%d invocations failed despite retry+failover\n", failed, cfg.invocations)
	}
	if err := c.Metrics().WriteFormat(w, cfg.format); err != nil {
		return fmt.Errorf("fwsim: %w", err)
	}
	if cfg.traceDump != "" {
		if err := dumpJournal(cfg.traceDump, c.Journal().Events()); err != nil {
			return err
		}
	}
	if cfg.profile != nil {
		if err := events.WriteProfile(cfg.profile, c.Journal().Events()); err != nil {
			return fmt.Errorf("fwsim: -profile: %w", err)
		}
	}
	return nil
}

// dumpJournal writes the journal to path: Chrome trace-event JSON when
// the name ends in .json (load it in Perfetto), NDJSON otherwise.
func dumpJournal(path string, evs []events.Event) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("fwsim: -trace-dump: %w", err)
	}
	format := "ndjson"
	if strings.HasSuffix(path, ".json") {
		format = "chrome"
	}
	if err := events.WriteFormat(f, evs, format); err != nil {
		f.Close()
		return fmt.Errorf("fwsim: -trace-dump: %w", err)
	}
	return f.Close()
}

func chaosRate(chaos *faultsConfig) float64 {
	if chaos == nil {
		return 0
	}
	return chaos.rate
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *server) handleInstall(w http.ResponseWriter, r *http.Request) {
	var req installRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	lang := rt.Lang(req.Lang)
	if lang == "" {
		lang = rt.LangNode
	}
	report, err := s.c.InstallReported(platform.Function{
		Name:          req.Name,
		Source:        req.Source,
		Lang:          lang,
		Entry:         req.Entry,
		DefaultParams: req.DefaultParams,
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	s.installs[req.Name] = report
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, map[string]any{
		"function":       report.Function,
		"install_time":   report.Duration.String(),
		"snapshot_bytes": report.SnapshotBytes,
		"jit_compiled":   report.JITCompiled,
	})
}

func (s *server) handleInvoke(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(body) == 0 {
		body = []byte("{}")
	}
	params, err := rt.DecodeJSON(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("params: %w", err))
		return
	}
	// Every request is one trace: the gateway span roots it, and the
	// cluster/core layers nest under it all the way down to the exec.
	sc := s.c.Journal().NewScope("gateway", "POST /invoke", 0,
		events.A("function", name))
	inv, node, err := s.c.Invoke(name, params, platform.InvokeOptions{Trace: sc})
	var end time.Duration
	if inv != nil {
		end = inv.Clock.Now()
	}
	if err != nil {
		sc.Close(end, events.A("error", err.Error()))
		writeJSON(w, http.StatusBadGateway, map[string]any{
			"error":    err.Error(),
			"trace_id": uint64(sc.TraceID()),
		})
		return
	}
	sc.Close(end)
	resultJSON, err := rt.EncodeJSON(inv.Result)
	if err != nil {
		resultJSON = []byte("null")
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"result":   json.RawMessage(resultJSON),
		"response": inv.Response,
		"latency": map[string]string{
			"start-up": inv.Breakdown.Startup().String(),
			"exec":     inv.Breakdown.Exec().String(),
			"others":   inv.Breakdown.Others().String(),
			"total":    inv.Breakdown.Total().String(),
		},
		"sandbox":  inv.SandboxID,
		"node":     node.Name,
		"trace_id": uint64(sc.TraceID()),
		"logs":     inv.Logs,
	})
}

func (s *server) handleFunctions(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	names := make([]string, 0, len(s.installs))
	for name := range s.installs {
		names = append(names, name)
	}
	s.mu.Unlock()
	sort.Strings(names)
	out := make([]map[string]any, 0, len(names))
	for _, name := range names {
		s.mu.Lock()
		rep := s.installs[name]
		s.mu.Unlock()
		out = append(out, map[string]any{
			"name":           name,
			"snapshot_bytes": rep.SnapshotBytes,
			"install_time":   rep.Duration.String(),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	var memUsed, memTotal, snapBytes uint64
	var vms, namespaces int
	swapping := false
	perNode := make([]map[string]any, 0, len(s.c.Nodes()))
	for _, n := range s.c.Nodes() {
		memUsed += n.Env.Mem.Used()
		memTotal += n.Env.Mem.Capacity()
		snapBytes += n.Env.Snaps.UsedBytes()
		vms += n.Env.HV.VMCount()
		namespaces += n.Env.Router.NamespaceCount()
		if n.Env.Mem.Swapping() {
			swapping = true
		}
		perNode = append(perNode, map[string]any{
			"name":        n.Name,
			"health":      n.Health().String(),
			"memory_used": n.Env.Mem.Used(),
			"swapping":    n.Env.Mem.Swapping(),
			"microvms":    n.Env.HV.VMCount(),
			"invocations": n.Invocations(),
		})
	}
	first := s.c.Nodes()[0]
	writeJSON(w, http.StatusOK, map[string]any{
		"host_memory_used":    memUsed,
		"host_memory_total":   memTotal,
		"swap_threshold":      first.Env.Mem.SwapThreshold(),
		"swapping":            swapping,
		"live_microvms":       vms,
		"network_namespaces":  namespaces,
		"snapshot_disk_bytes": snapBytes,
		"snapshots":           first.Env.Snaps.Names(),
		"databases":           first.Env.Couch.Names(),
		"nodes":               perNode,
	})
}

// healthzPayload folds a metrics snapshot's node_state gauges into the
// /healthz response: per-node health plus an overall status, 503 only
// when every node is down (the cluster can absorb anything less).
func healthzPayload(snap metrics.Snapshot) (int, map[string]any) {
	nodes := map[string]string{}
	total, down := 0, 0
	for _, g := range snap.Gauges {
		name, ok := strings.CutPrefix(g.Name, `node_state{node="`)
		if !ok {
			continue
		}
		name, ok = strings.CutSuffix(name, `"}`)
		if !ok {
			continue
		}
		total++
		h := cluster.Health(g.Value)
		if h == cluster.Down {
			down++
		}
		nodes[name] = h.String()
	}
	status := "ok"
	code := http.StatusOK
	switch {
	case total > 0 && down == total:
		status = "down"
		code = http.StatusServiceUnavailable
	case down > 0:
		status = "degraded"
	}
	return code, map[string]any{"status": status, "nodes": nodes}
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	code, payload := healthzPayload(s.c.Metrics().Snapshot())
	writeJSON(w, code, payload)
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// Any format other than json renders text, so the endpoint never
	// 500s on a stray query parameter.
	format := "text"
	contentType := "text/plain; charset=utf-8"
	if r.URL.Query().Get("format") == "json" {
		format = "json"
		contentType = "application/json"
	}
	w.Header().Set("Content-Type", contentType)
	_ = s.c.Metrics().WriteFormat(w, format)
}

func (s *server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("trace id: %w", err))
		return
	}
	evs := s.c.Journal().Trace(events.TraceID(id))
	if len(evs) == 0 {
		writeError(w, http.StatusNotFound, fmt.Errorf("trace %d: no events", id))
		return
	}
	s.writeEvents(w, r, evs)
}

func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	evs := s.c.Journal().Events()
	if limitStr := r.URL.Query().Get("limit"); limitStr != "" {
		limit, err := strconv.Atoi(limitStr)
		if err != nil || limit < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("events: bad limit %q", limitStr))
			return
		}
		evs = s.c.Journal().Tail(limit)
	}
	s.writeEvents(w, r, evs)
}

// writeEvents renders a slice of journal events per the request's
// format parameter: ndjson (default) or chrome (Perfetto-loadable).
func (s *server) writeEvents(w http.ResponseWriter, r *http.Request, evs []events.Event) {
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "ndjson"
	}
	contentType := "application/x-ndjson"
	if format == "chrome" {
		contentType = "application/json"
	}
	var buf strings.Builder
	if err := events.WriteFormat(&buf, evs, format); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Content-Type", contentType)
	_, _ = io.WriteString(w, buf.String())
}

func (s *server) handleRemove(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.c.Remove(name); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	s.mu.Lock()
	delete(s.installs, name)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]string{"removed": name})
}
