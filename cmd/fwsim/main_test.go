package main

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/platform"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	s := newServer(2, nil, nil)
	ts := httptest.NewServer(s.mux())
	t.Cleanup(ts.Close)
	return ts
}

func post(t *testing.T, url, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

const installBody = `{
  "name": "hello",
  "lang": "nodejs",
  "source": "func main(params) { return \"hi \" + params.who; }",
  "default_params": {"who": "world"}
}`

func TestInstallAndInvokeOverHTTP(t *testing.T) {
	ts := newTestServer(t)
	status, out := post(t, ts.URL+"/install", installBody)
	if status != http.StatusCreated {
		t.Fatalf("install status = %d: %v", status, out)
	}
	if out["function"] != "hello" || out["snapshot_bytes"].(float64) == 0 {
		t.Fatalf("install response: %v", out)
	}

	status, out = post(t, ts.URL+"/invoke/hello", `{"who": "fireworks"}`)
	if status != http.StatusOK {
		t.Fatalf("invoke status = %d: %v", status, out)
	}
	if out["result"] != "hi fireworks" {
		t.Fatalf("result = %v", out["result"])
	}
	latency := out["latency"].(map[string]any)
	if latency["start-up"] == "" || latency["total"] == "" {
		t.Fatalf("latency missing: %v", latency)
	}
	if out["node"] == "" {
		t.Fatalf("no serving node in response: %v", out)
	}
	if out["trace_id"].(float64) == 0 {
		t.Fatalf("no trace id in response: %v", out)
	}
}

func TestInstallErrorsOverHTTP(t *testing.T) {
	ts := newTestServer(t)
	status, out := post(t, ts.URL+"/install", `{"name": "bad", "source": "func ("}`)
	if status != http.StatusBadRequest {
		t.Fatalf("status = %d", status)
	}
	if out["error"] == "" {
		t.Fatalf("no error body: %v", out)
	}
	status, _ = post(t, ts.URL+"/install", `{broken json`)
	if status != http.StatusBadRequest {
		t.Fatalf("bad JSON status = %d", status)
	}
}

func TestInvokeUnknownOverHTTP(t *testing.T) {
	ts := newTestServer(t)
	status, out := post(t, ts.URL+"/invoke/ghost", `{}`)
	if status != http.StatusBadGateway {
		t.Fatalf("status = %d: %v", status, out)
	}
	// Even a failed request gets a trace.
	if out["trace_id"].(float64) == 0 {
		t.Fatalf("failed invoke carries no trace id: %v", out)
	}
}

func TestFunctionsAndStatsEndpoints(t *testing.T) {
	ts := newTestServer(t)
	post(t, ts.URL+"/install", installBody)

	status, body := get(t, ts.URL+"/functions")
	if status != http.StatusOK {
		t.Fatalf("functions status = %d", status)
	}
	var fns []map[string]any
	if err := json.Unmarshal(body, &fns); err != nil {
		t.Fatal(err)
	}
	if len(fns) != 1 || fns[0]["name"] != "hello" {
		t.Fatalf("functions = %v", fns)
	}

	_, body = get(t, ts.URL+"/stats")
	var st map[string]any
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st["snapshot_disk_bytes"].(float64) == 0 {
		t.Fatalf("stats = %v", st)
	}
	if st["live_microvms"].(float64) != 0 {
		t.Fatal("VMs leaked between requests")
	}
	nodes := st["nodes"].([]any)
	if len(nodes) != 2 {
		t.Fatalf("stats nodes = %v", nodes)
	}
}

func TestHealthzEndpoint(t *testing.T) {
	ts := newTestServer(t)
	status, body := get(t, ts.URL+"/healthz")
	if status != http.StatusOK {
		t.Fatalf("healthz status = %d", status)
	}
	var hz map[string]any
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatal(err)
	}
	if hz["status"] != "ok" {
		t.Fatalf("healthz = %v", hz)
	}
	nodes := hz["nodes"].(map[string]any)
	if nodes["node-00"] != "healthy" || nodes["node-01"] != "healthy" {
		t.Fatalf("healthz nodes = %v", nodes)
	}
}

// TestHealthzStates pins /healthz to the shared fleet-health
// derivation (platform.DeriveFleetHealth) that the watchdog probe also
// consumes: 503 only when every node is down.
func TestHealthzStates(t *testing.T) {
	snap := metrics.Snapshot{Gauges: []metrics.GaugeSnapshot{
		{Name: `node_state{node="node-00"}`, Value: 2},
		{Name: `node_state{node="node-01"}`, Value: 2},
		{Name: `other_gauge`, Value: 5},
	}}
	f := platform.DeriveFleetHealth(snap)
	if !f.AllDown() || f.Status != "down" {
		t.Fatalf("all-down fleet = %+v", f)
	}
	snap.Gauges[0].Value = 0
	f = platform.DeriveFleetHealth(snap)
	if f.AllDown() || f.Status != "degraded" {
		t.Fatalf("degraded fleet = %+v", f)
	}
}

func TestTimeseriesEndpoint(t *testing.T) {
	ts := newTestServer(t)
	post(t, ts.URL+"/install", installBody)
	post(t, ts.URL+"/invoke/hello", `{"who": "a"}`)
	post(t, ts.URL+"/invoke/hello", `{"who": "b"}`)

	status, body := get(t, ts.URL+"/timeseries")
	if status != http.StatusOK {
		t.Fatalf("timeseries status = %d", status)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	// Baseline sample at t=0 plus one sample per invocation.
	if len(lines) != 4 {
		t.Fatalf("timeseries rows = %d:\n%s", len(lines), body)
	}
	header := lines[0]
	// Labeled names are CSV-quoted in the header ("" escapes quotes).
	for _, want := range []string{
		"ts_ns", "gateway_requests_total", "fleet_down_nodes",
		"mem_sharing_efficiency", `invoke_latency{platform=""fireworks""}.p99`,
	} {
		if !strings.Contains(header, want) {
			t.Errorf("timeseries header missing %q:\n%s", want, header)
		}
	}

	status, body = get(t, ts.URL+"/timeseries?format=json")
	if status != http.StatusOK {
		t.Fatalf("timeseries json status = %d", status)
	}
	var dump struct {
		Series []struct {
			Name   string     `json:"name"`
			Points [][]string `json:"points"`
		} `json:"series"`
	}
	if err := json.Unmarshal(body, &dump); err != nil {
		t.Fatalf("timeseries json does not parse: %v", err)
	}
	found := false
	for _, s := range dump.Series {
		if s.Name == "gateway_requests_total" {
			found = true
			if len(s.Points) != 3 || s.Points[2][1] != "2" {
				t.Fatalf("gateway_requests_total points = %v", s.Points)
			}
		}
	}
	if !found {
		t.Fatal("timeseries json missing gateway_requests_total")
	}
}

func TestMemoryEndpoint(t *testing.T) {
	ts := newTestServer(t)
	post(t, ts.URL+"/install", installBody)
	post(t, ts.URL+"/invoke/hello", `{"who": "a"}`)

	status, body := get(t, ts.URL+"/memory")
	if status != http.StatusOK {
		t.Fatalf("memory status = %d", status)
	}
	text := string(body)
	for _, want := range []string{"### node-00", "### node-01", "PSS", "snapshot page lineage"} {
		if !strings.Contains(text, want) {
			t.Errorf("memory report missing %q:\n%s", want, text)
		}
	}

	status, body = get(t, ts.URL+"/memory?format=json")
	if status != http.StatusOK {
		t.Fatalf("memory json status = %d", status)
	}
	var reports []struct {
		Node   string         `json:"node"`
		Report mem.HostReport `json:"report"`
	}
	if err := json.Unmarshal(body, &reports); err != nil {
		t.Fatalf("memory json does not parse: %v", err)
	}
	if len(reports) != 2 {
		t.Fatalf("memory json nodes = %d", len(reports))
	}
	for _, r := range reports {
		if !r.Report.PSSPageExact {
			t.Fatalf("node %s PSS sum is not page-exact: %+v", r.Node, r.Report)
		}
	}
}

func TestAlertsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	status, body := get(t, ts.URL+"/alerts")
	if status != http.StatusOK {
		t.Fatalf("alerts status = %d", status)
	}
	var out struct {
		Rules  []string         `json:"rules"`
		Firing []string         `json:"firing"`
		Alerts []map[string]any `json:"alerts"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("alerts json does not parse: %v", err)
	}
	if len(out.Rules) != 4 {
		t.Fatalf("default rules = %v", out.Rules)
	}
	if len(out.Firing) != 0 || len(out.Alerts) != 0 {
		t.Fatalf("alerts on a fresh gateway: %s", body)
	}
	wantRule := "invoke-success-rate >= 0.99 over all history"
	found := false
	for _, r := range out.Rules {
		if r == wantRule {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing rule %q in %v", wantRule, out.Rules)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	post(t, ts.URL+"/install", installBody)
	post(t, ts.URL+"/invoke/hello", `{"who": "fireworks"}`)

	_, body := get(t, ts.URL+"/metrics")
	text := string(body)
	for _, want := range []string{
		"vmm_snapshot_restores_total 1",
		"histogram vmm_snapshot_restore_duration",
		"mem_cow_faults_total",
		"histogram msgbus_dwell",
		`invoke_total{platform="fireworks"} 1`,
		"events_recorded_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("text dump missing %q:\n%s", want, text)
		}
	}

	_, body = get(t, ts.URL+"/metrics?format=json")
	var snap map[string]any
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if _, ok := snap["counters"]; !ok {
		t.Fatalf("json dump missing counters: %v", snap)
	}
}

func TestTraceAndEventsEndpoints(t *testing.T) {
	ts := newTestServer(t)
	post(t, ts.URL+"/install", installBody)
	_, out := post(t, ts.URL+"/invoke/hello", `{"who": "fireworks"}`)
	traceID := int(out["trace_id"].(float64))

	// The request's trace is retrievable by id and spans gateway,
	// cluster, and core.
	status, body := get(t, ts.URL+"/trace/"+strconv.Itoa(traceID))
	if status != http.StatusOK {
		t.Fatalf("trace status = %d: %s", status, body)
	}
	text := string(body)
	for _, want := range []string{`"gateway"`, `"cluster"`, `"core"`, `"msgbus"`, `"vmm"`} {
		if !strings.Contains(text, want) {
			t.Errorf("trace missing component %s:\n%s", want, text)
		}
	}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("trace line does not parse: %v: %s", err, sc.Text())
		}
	}

	status, _ = get(t, ts.URL+"/trace/999999")
	if status != http.StatusNotFound {
		t.Fatalf("unknown trace status = %d", status)
	}
	status, _ = get(t, ts.URL+"/trace/bogus")
	if status != http.StatusBadRequest {
		t.Fatalf("bad trace id status = %d", status)
	}

	// Chrome export parses and carries trace events.
	status, body = get(t, ts.URL+"/events?format=chrome")
	if status != http.StatusOK {
		t.Fatalf("events status = %d", status)
	}
	var chrome struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &chrome); err != nil {
		t.Fatalf("chrome export does not parse: %v", err)
	}
	if len(chrome.TraceEvents) == 0 {
		t.Fatal("chrome export is empty")
	}

	// limit bounds the NDJSON dump.
	status, body = get(t, ts.URL+"/events?limit=3")
	if status != http.StatusOK {
		t.Fatalf("events limit status = %d", status)
	}
	if n := strings.Count(string(body), "\n"); n != 3 {
		t.Fatalf("limit=3 returned %d lines", n)
	}
	status, _ = get(t, ts.URL+"/events?format=xml")
	if status != http.StatusBadRequest {
		t.Fatalf("unknown format status = %d", status)
	}
}

func TestMetricsDemoDump(t *testing.T) {
	var buf strings.Builder
	if err := runMetricsDemo(&buf, demoConfig{format: "text", nodes: 3, invocations: 6}); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	// The acceptance surface of the dump: restore count + latency
	// histogram, CoW faults, per-node placement, and queue dwell.
	for _, want := range []string{
		"counter vmm_snapshot_restores_total 6",
		"histogram vmm_snapshot_restore_duration count=6",
		"mem_cow_faults_total",
		`cluster_node_invocations_total{node="node-00"}`,
		`cluster_node_invocations_total{node="node-01"}`,
		`cluster_node_invocations_total{node="node-02"}`,
		"histogram msgbus_dwell count=6",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("demo dump missing %q:\n%s", want, text)
		}
	}

	var jsonBuf strings.Builder
	if err := runMetricsDemo(&jsonBuf, demoConfig{format: "json", nodes: 2, invocations: 2}); err != nil {
		t.Fatal(err)
	}
	var snap map[string]any
	if err := json.Unmarshal([]byte(jsonBuf.String()), &snap); err != nil {
		t.Fatalf("json dump does not parse: %v", err)
	}

	if err := runMetricsDemo(io.Discard, demoConfig{format: "yaml", nodes: 1, invocations: 1}); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestMetricsDemoTraceDumpAndProfile(t *testing.T) {
	dir := t.TempDir()
	chromePath := filepath.Join(dir, "trace.json")
	var profile strings.Builder
	cfg := demoConfig{
		format: "text", nodes: 2, invocations: 3,
		traceDump: chromePath, profile: &profile,
	}
	if err := runMetricsDemo(io.Discard, cfg); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(chromePath)
	if err != nil {
		t.Fatal(err)
	}
	var chrome struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &chrome); err != nil {
		t.Fatalf("trace dump does not parse: %v", err)
	}
	if len(chrome.TraceEvents) == 0 {
		t.Fatal("trace dump is empty")
	}
	if !strings.Contains(profile.String(), "core:invoke") {
		t.Fatalf("profile has no invoke frames:\n%s", profile.String())
	}

	// A non-.json name gets NDJSON.
	ndPath := filepath.Join(dir, "trace.ndjson")
	cfg = demoConfig{format: "text", nodes: 1, invocations: 1, traceDump: ndPath}
	if err := runMetricsDemo(io.Discard, cfg); err != nil {
		t.Fatal(err)
	}
	nd, err := os.ReadFile(ndPath)
	if err != nil {
		t.Fatal(err)
	}
	var first map[string]any
	line, _, _ := strings.Cut(string(nd), "\n")
	if err := json.Unmarshal([]byte(line), &first); err != nil {
		t.Fatalf("ndjson dump first line does not parse: %v", err)
	}
}

func TestParseFaultsSpec(t *testing.T) {
	if cfg, err := parseFaultsSpec(""); cfg != nil || err != nil {
		t.Fatalf("empty spec = %v, %v; want nil, nil", cfg, err)
	}
	cfg, err := parseFaultsSpec("seed=9,rate=0.25")
	if err != nil || cfg.seed != 9 || cfg.rate != 0.25 {
		t.Fatalf("full spec = %+v, %v", cfg, err)
	}
	cfg, err = parseFaultsSpec("rate=0.5")
	if err != nil || cfg.seed != 1 || cfg.rate != 0.5 {
		t.Fatalf("rate-only spec = %+v, %v", cfg, err)
	}
	for _, bad := range []string{"seed", "seed=x", "rate=2", "burst=1"} {
		if _, err := parseFaultsSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestMetricsDemoWithFaults(t *testing.T) {
	var buf strings.Builder
	cfg := demoConfig{format: "text", nodes: 2, invocations: 20,
		chaos: &faultsConfig{seed: 7, rate: 0.1}}
	if err := runMetricsDemo(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "faults_injected_total{") {
		t.Fatalf("faulted demo dump has no injected faults:\n%s", buf.String())
	}
}

func TestRemoveEndpoint(t *testing.T) {
	ts := newTestServer(t)
	post(t, ts.URL+"/install", installBody)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/functions/hello", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status = %d", resp.StatusCode)
	}
	status, _ := post(t, ts.URL+"/invoke/hello", `{}`)
	if status != http.StatusBadGateway {
		t.Fatalf("invoke after delete = %d", status)
	}
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/functions/hello", nil)
	resp, _ = http.DefaultClient.Do(req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double delete = %d", resp.StatusCode)
	}
}

// wfSpecBody is a two-step chain whose second step maps the first
// step's output into its input (docs/workflows.md format).
const wfSpecBody = `{
  "name": "greet-chain",
  "steps": [
    {"id": "classify", "function": "hello"},
    {"id": "echo", "function": "echo", "after": ["classify"],
     "input": {"msg": "$steps.classify"}}
  ]
}`

func TestWorkflowEndpoints(t *testing.T) {
	ts := newTestServer(t)
	post(t, ts.URL+"/install", installBody)
	status, out := post(t, ts.URL+"/install", `{
	  "name": "echo",
	  "lang": "nodejs",
	  "source": "func main(params) { return params.msg; }",
	  "default_params": {"msg": "prime"}
	}`)
	if status != http.StatusCreated {
		t.Fatalf("install echo = %d: %v", status, out)
	}

	// Register the DAG, list it back.
	status, out = post(t, ts.URL+"/workflows", wfSpecBody)
	if status != http.StatusCreated || out["workflow"] != "greet-chain" {
		t.Fatalf("register = %d: %v", status, out)
	}
	status, body := get(t, ts.URL+"/workflows")
	if status != http.StatusOK {
		t.Fatalf("list = %d", status)
	}
	var listed []map[string]any
	if err := json.Unmarshal(body, &listed); err != nil {
		t.Fatal(err)
	}
	if len(listed) != 1 || listed[0]["name"] != "greet-chain" || listed[0]["dlq_depth"].(float64) != 0 {
		t.Fatalf("workflow list: %v", listed)
	}

	// Run it: both steps complete and the run's trace resolves.
	status, out = post(t, ts.URL+"/workflows/greet-chain/run", `{"who": "workflow"}`)
	if status != http.StatusOK || out["status"] != "completed" {
		t.Fatalf("run = %d: %v", status, out)
	}
	steps := out["steps"].([]any)
	if len(steps) != 2 {
		t.Fatalf("steps: %v", steps)
	}
	for _, s := range steps {
		if s.(map[string]any)["status"] != "completed" {
			t.Fatalf("step not completed: %v", s)
		}
	}
	traceID := out["trace_id"].(float64)
	if traceID == 0 {
		t.Fatalf("run has no trace id: %v", out)
	}
	status, body = get(t, ts.URL+"/trace/"+strconv.FormatUint(uint64(traceID), 10))
	if status != http.StatusOK || !strings.Contains(string(body), `"workflow"`) {
		t.Fatalf("trace %v = %d:\n%s", traceID, status, body)
	}

	// Bad registrations and unknown names are client errors.
	if status, _ = post(t, ts.URL+"/workflows", wfSpecBody); status != http.StatusBadRequest {
		t.Fatalf("duplicate register = %d", status)
	}
	if status, _ = post(t, ts.URL+"/workflows", `{"name": "", "steps": []}`); status != http.StatusBadRequest {
		t.Fatalf("invalid register = %d", status)
	}
	if status, _ = post(t, ts.URL+"/workflows/ghost/run", `{}`); status != http.StatusNotFound {
		t.Fatalf("unknown run = %d", status)
	}
	if status, _ = get(t, ts.URL+"/workflows/ghost/dlq"); status != http.StatusNotFound {
		t.Fatalf("unknown dlq = %d", status)
	}
}

func TestWorkflowDLQOverHTTP(t *testing.T) {
	ts := newTestServer(t)
	// "fixme" is not deployed yet: the step dead-letters and the run
	// stalls (the gateway engine is fail-fast without -faults).
	status, out := post(t, ts.URL+"/workflows", `{
	  "name": "frail",
	  "steps": [{"id": "only", "function": "fixme"}]
	}`)
	if status != http.StatusCreated {
		t.Fatalf("register = %d: %v", status, out)
	}
	status, out = post(t, ts.URL+"/workflows/frail/run", `{}`)
	if status != http.StatusBadGateway || out["status"] != "stalled" {
		t.Fatalf("poisoned run = %d: %v", status, out)
	}

	status, body := get(t, ts.URL+"/workflows/frail/dlq")
	if status != http.StatusOK {
		t.Fatalf("dlq = %d", status)
	}
	var dlq map[string]any
	if err := json.Unmarshal(body, &dlq); err != nil {
		t.Fatal(err)
	}
	if dlq["depth"].(float64) != 1 {
		t.Fatalf("dlq depth: %v", dlq)
	}
	rec := dlq["records"].([]any)[0].(map[string]any)
	if rec["step"] != "only" || rec["function"] != "fixme" {
		t.Fatalf("dlq record: %v", rec)
	}

	// Deploy the missing function, replay the dead letters: the
	// stalled run resumes and completes, and the queue drains.
	status, out = post(t, ts.URL+"/install", `{
	  "name": "fixme",
	  "lang": "nodejs",
	  "source": "func main(params) { return \"fixed\"; }"
	}`)
	if status != http.StatusCreated {
		t.Fatalf("install fixme = %d: %v", status, out)
	}
	status, out = post(t, ts.URL+"/workflows/frail/dlq/replay", "")
	if status != http.StatusOK {
		t.Fatalf("replay = %d: %v", status, out)
	}
	replayed := out["replayed"].([]any)
	if len(replayed) != 1 || replayed[0].(map[string]any)["status"] != "completed" {
		t.Fatalf("replayed runs: %v", replayed)
	}
	if _, body := get(t, ts.URL+"/workflows/frail/dlq"); !strings.Contains(string(body), `"depth": 0`) {
		t.Fatalf("dlq not drained:\n%s", body)
	}
}

func TestEventsLimitValidationAndContentType(t *testing.T) {
	ts := newTestServer(t)
	post(t, ts.URL+"/install", installBody)
	post(t, ts.URL+"/invoke/hello", `{"who": "x"}`)

	// NDJSON responses carry the NDJSON content type.
	resp, err := http.Get(ts.URL + "/events?limit=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("events content type = %q, want application/x-ndjson", ct)
	}

	// Non-positive and garbage limits are client errors, not silent
	// defaults.
	for _, bad := range []string{"0", "-1", "bogus", "1.5"} {
		status, body := get(t, ts.URL+"/events?limit="+bad)
		if status != http.StatusBadRequest {
			t.Errorf("limit=%s status = %d, want 400: %s", bad, status, body)
		}
	}
}

func TestInsightEndpoints(t *testing.T) {
	ts := newTestServer(t)
	post(t, ts.URL+"/install", installBody)
	var traceID int
	for i := 0; i < 3; i++ {
		_, out := post(t, ts.URL+"/invoke/hello", `{"who": "x"}`)
		traceID = int(out["trace_id"].(float64))
	}

	// Critical path: blame table present, top entry is a real site,
	// shares of the path steps are sane.
	status, body := get(t, ts.URL+"/insight/criticalpath/"+strconv.Itoa(traceID))
	if status != http.StatusOK {
		t.Fatalf("criticalpath status = %d: %s", status, body)
	}
	var ti struct {
		Root  string `json:"root"`
		Total int64  `json:"total_ns"`
		Path  []map[string]any
		Blame []struct {
			Site   string `json:"site"`
			SelfNS int64  `json:"self_ns"`
		} `json:"blame"`
	}
	if err := json.Unmarshal(body, &ti); err != nil {
		t.Fatalf("criticalpath does not parse: %v", err)
	}
	if ti.Root != "gateway:POST /invoke" || ti.Total <= 0 {
		t.Errorf("criticalpath root=%q total=%d", ti.Root, ti.Total)
	}
	if len(ti.Blame) == 0 || !strings.Contains(ti.Blame[0].Site, ":") {
		t.Errorf("blame table: %+v", ti.Blame)
	}
	for i := 1; i < len(ti.Blame); i++ {
		if ti.Blame[i].SelfNS > ti.Blame[i-1].SelfNS {
			t.Errorf("blame not ranked: %+v", ti.Blame)
		}
	}
	if status, _ := get(t, ts.URL+"/insight/criticalpath/bogus"); status != http.StatusBadRequest {
		t.Errorf("bad trace id status = %d", status)
	}
	if status, _ := get(t, ts.URL+"/insight/criticalpath/999999"); status != http.StatusNotFound {
		t.Errorf("unknown trace status = %d", status)
	}

	// Service graph formats.
	status, body = get(t, ts.URL+"/insight/servicegraph?format=dot")
	if status != http.StatusOK || !strings.HasPrefix(string(body), "digraph insight {") {
		t.Errorf("dot graph status=%d:\n%s", status, body)
	}
	if !strings.Contains(string(body), `"gateway" -> "cluster"`) {
		t.Errorf("dot graph missing gateway→cluster edge:\n%s", body)
	}
	status, body = get(t, ts.URL+"/insight/servicegraph?format=mermaid")
	if status != http.StatusOK || !strings.HasPrefix(string(body), "graph LR") {
		t.Errorf("mermaid graph status=%d:\n%s", status, body)
	}
	status, body = get(t, ts.URL+"/insight/servicegraph")
	if status != http.StatusOK {
		t.Fatalf("json graph status = %d", status)
	}
	var graph struct {
		Nodes []map[string]any `json:"nodes"`
		Edges []map[string]any `json:"edges"`
	}
	if err := json.Unmarshal(body, &graph); err != nil {
		t.Fatalf("graph does not parse: %v", err)
	}
	if len(graph.Nodes) == 0 || len(graph.Edges) == 0 {
		t.Errorf("graph empty: %d nodes %d edges", len(graph.Nodes), len(graph.Edges))
	}
	if status, _ := get(t, ts.URL+"/insight/servicegraph?format=xml"); status != http.StatusBadRequest {
		t.Errorf("unknown graph format status = %d", status)
	}

	// Slowest-K.
	status, body = get(t, ts.URL+"/insight/slowest?k=2")
	if status != http.StatusOK {
		t.Fatalf("slowest status = %d", status)
	}
	var slow []struct {
		Trace int   `json:"trace"`
		Total int64 `json:"total_ns"`
	}
	if err := json.Unmarshal(body, &slow); err != nil {
		t.Fatalf("slowest does not parse: %v", err)
	}
	if len(slow) != 2 || slow[0].Total < slow[1].Total {
		t.Errorf("slowest(2) = %+v", slow)
	}
	for _, bad := range []string{"0", "-3", "x"} {
		if status, _ := get(t, ts.URL+"/insight/slowest?k="+bad); status != http.StatusBadRequest {
			t.Errorf("slowest k=%s status = %d, want 400", bad, status)
		}
	}

	// Full report and self-diff (zero delta).
	status, body = get(t, ts.URL+"/insight/report")
	if status != http.StatusOK {
		t.Fatalf("report status = %d", status)
	}
	diffBody := `{"a": ` + string(body) + `, "b": ` + string(body) + `}`
	status, out := post(t, ts.URL+"/insight/diff", diffBody)
	if status != http.StatusOK {
		t.Fatalf("diff status = %d: %v", status, out)
	}
	if out["delta_ns"].(float64) != 0 {
		t.Errorf("self-diff delta = %v, want 0", out["delta_ns"])
	}
	if status, _ := post(t, ts.URL+"/insight/diff", `{"a": null}`); status != http.StatusBadRequest {
		t.Errorf("half-empty diff status = %d", status)
	}
}

func TestHistogramExemplarsResolveToTraces(t *testing.T) {
	ts := newTestServer(t)
	post(t, ts.URL+"/install", installBody)
	for i := 0; i < 3; i++ {
		post(t, ts.URL+"/invoke/hello", `{"who": "x"}`)
	}

	_, body := get(t, ts.URL+"/metrics?format=json")
	var snap struct {
		Histograms []struct {
			Name      string `json:"name"`
			Count     uint64 `json:"count"`
			Exemplars []struct {
				Trace uint64 `json:"trace"`
			} `json:"exemplars"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("metrics JSON does not parse: %v", err)
	}
	checked := 0
	for _, h := range snap.Histograms {
		if h.Count == 0 || len(h.Exemplars) == 0 {
			continue
		}
		checked++
		for _, ex := range h.Exemplars {
			if ex.Trace == 0 {
				t.Errorf("%s: zero exemplar trace", h.Name)
				continue
			}
			status, _ := get(t, ts.URL+"/trace/"+strconv.FormatUint(ex.Trace, 10))
			if status != http.StatusOK {
				t.Errorf("%s: exemplar trace %d not resolvable (%d)", h.Name, ex.Trace, status)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no histogram carried exemplars")
	}
	// The core invoke-path histograms must all carry them.
	for _, want := range []string{"invoke_latency", "fireworks_install_duration", "vmm_snapshot_restore_duration"} {
		found := false
		for _, h := range snap.Histograms {
			if strings.HasPrefix(h.Name, want) && len(h.Exemplars) > 0 {
				found = true
			}
		}
		if !found {
			t.Errorf("histogram %s* carries no exemplars", want)
		}
	}
}
