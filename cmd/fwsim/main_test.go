package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/platform"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	s := &server{
		env:      platform.NewEnv(platform.EnvConfig{}),
		installs: make(map[string]*platform.InstallReport),
	}
	s.fw = core.New(s.env, core.Options{})
	ts := httptest.NewServer(s.mux())
	t.Cleanup(ts.Close)
	return ts
}

func post(t *testing.T, url, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

const installBody = `{
  "name": "hello",
  "lang": "nodejs",
  "source": "func main(params) { return \"hi \" + params.who; }",
  "default_params": {"who": "world"}
}`

func TestInstallAndInvokeOverHTTP(t *testing.T) {
	ts := newTestServer(t)
	status, out := post(t, ts.URL+"/install", installBody)
	if status != http.StatusCreated {
		t.Fatalf("install status = %d: %v", status, out)
	}
	if out["function"] != "hello" || out["snapshot_bytes"].(float64) == 0 {
		t.Fatalf("install response: %v", out)
	}

	status, out = post(t, ts.URL+"/invoke/hello", `{"who": "fireworks"}`)
	if status != http.StatusOK {
		t.Fatalf("invoke status = %d: %v", status, out)
	}
	if out["result"] != "hi fireworks" {
		t.Fatalf("result = %v", out["result"])
	}
	latency := out["latency"].(map[string]any)
	if latency["start-up"] == "" || latency["total"] == "" {
		t.Fatalf("latency missing: %v", latency)
	}
}

func TestInstallErrorsOverHTTP(t *testing.T) {
	ts := newTestServer(t)
	status, out := post(t, ts.URL+"/install", `{"name": "bad", "source": "func ("}`)
	if status != http.StatusBadRequest {
		t.Fatalf("status = %d", status)
	}
	if out["error"] == "" {
		t.Fatalf("no error body: %v", out)
	}
	status, _ = post(t, ts.URL+"/install", `{broken json`)
	if status != http.StatusBadRequest {
		t.Fatalf("bad JSON status = %d", status)
	}
}

func TestInvokeUnknownOverHTTP(t *testing.T) {
	ts := newTestServer(t)
	status, out := post(t, ts.URL+"/invoke/ghost", `{}`)
	if status != http.StatusBadGateway {
		t.Fatalf("status = %d: %v", status, out)
	}
}

func TestFunctionsAndStatsEndpoints(t *testing.T) {
	ts := newTestServer(t)
	post(t, ts.URL+"/install", installBody)

	resp, err := http.Get(ts.URL + "/functions")
	if err != nil {
		t.Fatal(err)
	}
	var fns []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&fns); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(fns) != 1 || fns[0]["name"] != "hello" {
		t.Fatalf("functions = %v", fns)
	}

	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st["snapshot_disk_bytes"].(float64) == 0 {
		t.Fatalf("stats = %v", st)
	}
	if st["live_microvms"].(float64) != 0 {
		t.Fatal("VMs leaked between requests")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	post(t, ts.URL+"/install", installBody)
	post(t, ts.URL+"/invoke/hello", `{"who": "fireworks"}`)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"vmm_snapshot_restores_total 1",
		"histogram vmm_snapshot_restore_duration",
		"mem_cow_faults_total",
		"histogram msgbus_dwell",
		`invoke_total{platform="fireworks"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("text dump missing %q:\n%s", want, text)
		}
	}

	resp, err = http.Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, ok := snap["counters"]; !ok {
		t.Fatalf("json dump missing counters: %v", snap)
	}
}

func TestMetricsDemoDump(t *testing.T) {
	var buf strings.Builder
	if err := runMetricsDemo(&buf, "text", 3, 6, nil); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	// The acceptance surface of the dump: restore count + latency
	// histogram, CoW faults, per-node placement, and queue dwell.
	for _, want := range []string{
		"counter vmm_snapshot_restores_total 6",
		"histogram vmm_snapshot_restore_duration count=6",
		"mem_cow_faults_total",
		`cluster_node_invocations_total{node="node-00"}`,
		`cluster_node_invocations_total{node="node-01"}`,
		`cluster_node_invocations_total{node="node-02"}`,
		"histogram msgbus_dwell count=6",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("demo dump missing %q:\n%s", want, text)
		}
	}

	var jsonBuf strings.Builder
	if err := runMetricsDemo(&jsonBuf, "json", 2, 2, nil); err != nil {
		t.Fatal(err)
	}
	var snap map[string]any
	if err := json.Unmarshal([]byte(jsonBuf.String()), &snap); err != nil {
		t.Fatalf("json dump does not parse: %v", err)
	}

	if err := runMetricsDemo(io.Discard, "yaml", 1, 1, nil); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestParseFaultsSpec(t *testing.T) {
	if cfg, err := parseFaultsSpec(""); cfg != nil || err != nil {
		t.Fatalf("empty spec = %v, %v; want nil, nil", cfg, err)
	}
	cfg, err := parseFaultsSpec("seed=9,rate=0.25")
	if err != nil || cfg.seed != 9 || cfg.rate != 0.25 {
		t.Fatalf("full spec = %+v, %v", cfg, err)
	}
	cfg, err = parseFaultsSpec("rate=0.5")
	if err != nil || cfg.seed != 1 || cfg.rate != 0.5 {
		t.Fatalf("rate-only spec = %+v, %v", cfg, err)
	}
	for _, bad := range []string{"seed", "seed=x", "rate=2", "burst=1"} {
		if _, err := parseFaultsSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestMetricsDemoWithFaults(t *testing.T) {
	var buf strings.Builder
	if err := runMetricsDemo(&buf, "text", 2, 20, &faultsConfig{seed: 7, rate: 0.1}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "faults_injected_total{") {
		t.Fatalf("faulted demo dump has no injected faults:\n%s", buf.String())
	}
}

func TestRemoveEndpoint(t *testing.T) {
	ts := newTestServer(t)
	post(t, ts.URL+"/install", installBody)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/functions/hello", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status = %d", resp.StatusCode)
	}
	status, _ := post(t, ts.URL+"/invoke/hello", `{}`)
	if status != http.StatusBadGateway {
		t.Fatalf("invoke after delete = %d", status)
	}
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/functions/hello", nil)
	resp, _ = http.DefaultClient.Do(req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double delete = %d", resp.StatusCode)
	}
}
