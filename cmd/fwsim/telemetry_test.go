package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// newTelemServer builds a gateway with the telemetry governor armed:
// keep no boring traces (rate=0), cardinality budget of card.
func newTelemServer(t *testing.T, card int) *httptest.Server {
	t.Helper()
	s := newServer(2, nil, &telemConfig{seed: 7, rate: 0, card: card})
	ts := httptest.NewServer(s.mux())
	t.Cleanup(ts.Close)
	return ts
}

// Endpoint hygiene: /metrics and /timeseries reject unknown formats
// with 400 instead of silently falling back, matching the /events
// limit validation.
func TestStrictFormatValidation(t *testing.T) {
	ts := newTestServer(t)
	for _, url := range []string{
		ts.URL + "/metrics?format=xml",
		ts.URL + "/timeseries?format=prometheus",
	} {
		status, body := get(t, url)
		if status != http.StatusBadRequest {
			t.Fatalf("GET %s = %d, want 400 (%s)", url, status, body)
		}
		if !strings.Contains(string(body), "unknown format") {
			t.Fatalf("GET %s error body = %s", url, body)
		}
	}
	// The valid spellings still work, including the explicit defaults.
	for _, url := range []string{
		ts.URL + "/metrics", ts.URL + "/metrics?format=text", ts.URL + "/metrics?format=json",
		ts.URL + "/timeseries", ts.URL + "/timeseries?format=csv", ts.URL + "/timeseries?format=json",
	} {
		if status, _ := get(t, url); status != http.StatusOK {
			t.Fatalf("GET %s = %d, want 200", url, status)
		}
	}
}

func TestEventsStreamEndpoint(t *testing.T) {
	ts := newTestServer(t)
	if status, _ := post(t, ts.URL+"/install", installBody); status != http.StatusCreated {
		t.Fatal("install failed")
	}
	if status, _ := post(t, ts.URL+"/invoke/hello", `{}`); status != http.StatusOK {
		t.Fatal("invoke failed")
	}

	resp, err := http.Get(ts.URL + "/events/stream")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type = %q", ct)
	}
	lines := strings.Split(strings.TrimRight(body, "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("stream served %d events, want several", len(lines))
	}
	next, err := strconv.ParseUint(resp.Header.Get("X-Next-Since"), 10, 64)
	if err != nil || next == 0 {
		t.Fatalf("X-Next-Since = %q", resp.Header.Get("X-Next-Since"))
	}
	// Every line is a JSON event with seq > 0, in ascending order.
	var lastSeq uint64
	for _, line := range lines {
		var ev struct {
			Seq uint64 `json:"seq"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("stream line %q: %v", line, err)
		}
		if ev.Seq <= lastSeq {
			t.Fatalf("stream seq not ascending: %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
	}
	if lastSeq != next {
		t.Fatalf("X-Next-Since = %d, last line seq = %d", next, lastSeq)
	}

	// Resuming from the cursor with no new activity returns nothing.
	resp2, err := http.Get(ts.URL + "/events/stream?since=" + strconv.FormatUint(next, 10))
	if err != nil {
		t.Fatal(err)
	}
	if body2 := readAll(t, resp2); body2 != "" {
		t.Fatalf("resumed stream not empty: %q", body2)
	}
	if got := resp2.Header.Get("X-Next-Since"); got != strconv.FormatUint(next, 10) {
		t.Fatalf("idle cursor moved: %q", got)
	}

	for _, bad := range []string{"?since=abc", "?wait_ms=-1", "?wait_ms=x"} {
		if status, _ := get(t, ts.URL+"/events/stream"+bad); status != http.StatusBadRequest {
			t.Fatalf("stream%s = %d, want 400", bad, status)
		}
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			return sb.String()
		}
	}
}

// An armed governor drops boring traces from the journal (404 on
// /trace) while error traces stay resolvable — the causal-link
// guarantee the telem experiment asserts fleet-wide.
func TestTelemetryGovernorOverHTTP(t *testing.T) {
	ts := newTelemServer(t, 0)
	if status, _ := post(t, ts.URL+"/install", installBody); status != http.StatusCreated {
		t.Fatal("install failed")
	}
	status, out := post(t, ts.URL+"/invoke/hello", `{}`)
	if status != http.StatusOK {
		t.Fatal("invoke failed")
	}
	boring := uint64(out["trace_id"].(float64))
	status, out = post(t, ts.URL+"/invoke/no-such-fn", `{}`)
	if status != http.StatusBadGateway {
		t.Fatalf("bad invoke = %d", status)
	}
	errored := uint64(out["trace_id"].(float64))

	if status, _ := get(t, ts.URL+"/trace/"+strconv.FormatUint(boring, 10)); status != http.StatusNotFound {
		t.Fatalf("boring trace still resolvable: %d", status)
	}
	if status, _ := get(t, ts.URL+"/trace/"+strconv.FormatUint(errored, 10)); status != http.StatusOK {
		t.Fatalf("error trace dropped: %d", status)
	}

	// The sampled insight report annotates its coverage.
	_, body := get(t, ts.URL+"/insight/report")
	var rep struct {
		Coverage *struct {
			Kept  int `json:"kept_traces"`
			Total int `json:"total_traces"`
		} `json:"coverage"`
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Coverage == nil || rep.Coverage.Total < 2 || rep.Coverage.Kept < 1 {
		t.Fatalf("insight coverage = %+v", rep.Coverage)
	}
}

func TestTelemetryEndpoint(t *testing.T) {
	ts := newTelemServer(t, 2)
	if status, _ := post(t, ts.URL+"/install", installBody); status != http.StatusCreated {
		t.Fatal("install failed")
	}
	for i := 0; i < 3; i++ {
		if status, _ := post(t, ts.URL+"/invoke/hello", `{}`); status != http.StatusOK {
			t.Fatal("invoke failed")
		}
	}
	_, body := get(t, ts.URL+"/telemetry")
	var out struct {
		Tail *struct {
			Decided int64 `json:"decided_traces"`
			Dropped int64 `json:"dropped_traces"`
			Bytes   int64 `json:"dropped_bytes"`
		} `json:"tail_sampling"`
		Cardinality struct {
			TotalSeries int `json:"total_series"`
		} `json:"cardinality"`
		Sampler struct {
			Series      int `json:"series"`
			TierBuckets int `json:"tier_buckets"`
		} `json:"sampler"`
		Journal struct {
			Events int `json:"events"`
			Shards int `json:"shards"`
		} `json:"journal"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("telemetry JSON: %v\n%s", err, body)
	}
	// At least the 3 invocations decided and dropped; install-time
	// traces may add to the count.
	if out.Tail == nil || out.Tail.Decided < 3 || out.Tail.Dropped < 3 || out.Tail.Bytes == 0 {
		t.Fatalf("tail accounting = %+v", out.Tail)
	}
	if out.Cardinality.TotalSeries == 0 {
		t.Fatalf("cardinality audit empty:\n%s", body)
	}
	if out.Sampler.Series == 0 || out.Sampler.TierBuckets == 0 {
		t.Fatalf("sampler stats = %+v (rollups not armed?)", out.Sampler)
	}
	if out.Journal.Shards == 0 {
		t.Fatalf("journal stats missing:\n%s", body)
	}
	if status, _ := get(t, ts.URL+"/telemetry?k=0"); status != http.StatusBadRequest {
		t.Fatal("bad k accepted")
	}

	// Without -telem the plane reports null tail sampling.
	plain := newTestServer(t)
	_, body = get(t, plain.URL+"/telemetry")
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(body, &probe); err != nil {
		t.Fatal(err)
	}
	if string(probe["tail_sampling"]) != "null" {
		t.Fatalf("unarmed tail_sampling = %s", probe["tail_sampling"])
	}
}

func TestParseTelemSpec(t *testing.T) {
	if cfg, err := parseTelemSpec(""); cfg != nil || err != nil {
		t.Fatalf("empty spec: %v %v", cfg, err)
	}
	cfg, err := parseTelemSpec("seed=9,rate=0.25,card=32")
	if err != nil || cfg.seed != 9 || cfg.rate != 0.25 || cfg.card != 32 {
		t.Fatalf("full spec: %+v %v", cfg, err)
	}
	if cfg.keepRate() != 0.25 {
		t.Fatalf("keepRate = %v", cfg.keepRate())
	}
	cfg, err = parseTelemSpec("rate=0")
	if err != nil || cfg.keepRate() != -1 {
		t.Fatalf("rate=0 should map to keep-none: %+v %v", cfg, err)
	}
	for _, bad := range []string{"seed", "seed=x", "rate=2", "rate=-0.1", "card=-1", "zap=1"} {
		if _, err := parseTelemSpec(bad); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
}
