package main

import "strings"

// BenchEntry is one benchmark the gate knows about. Every Benchmark*
// function in the repo root's bench_test.go must be listed here — the
// manifest hygiene test (manifest_test.go) fails the build otherwise,
// so a new benchmark cannot be added without deciding whether the gate
// watches it.
type BenchEntry struct {
	// Name is the benchmark function name, or "Func/sub" for a
	// sub-benchmark run via b.Run.
	Name string
	// Gate marks the hot-path set: these run on every `benchgate`
	// invocation and are compared against the committed baseline.
	// Ungated entries are acknowledged (the manifest is the complete
	// inventory) but only run with -all.
	Gate bool
}

// manifest inventories every benchmark in bench_test.go. The gated
// subset is the simulator's own hot path — invocation, snapshot
// restore, and the contention benchmarks guarding the sharded
// registry/journal and the batched message bus.
var manifest = []BenchEntry{
	// Paper-figure experiment benchmarks: deterministic virtual-time
	// replays, tracked for inventory but not gated (each runs a whole
	// experiment; wall time is dominated by workload construction).
	{Name: "BenchmarkTable1Matrix"},
	{Name: "BenchmarkTable2Workloads"},
	{Name: "BenchmarkSnapshotCreation"},
	{Name: "BenchmarkFig6NodeFaaSdom"},
	{Name: "BenchmarkFig7PythonFaaSdom"},
	{Name: "BenchmarkFig9RealWorld"},
	{Name: "BenchmarkFig10Consolidation"},
	{Name: "BenchmarkFig11FactorPerf"},
	{Name: "BenchmarkFig12FactorMemory"},
	{Name: "BenchmarkWildTrace"},
	{Name: "BenchmarkAblationREAP"},
	{Name: "BenchmarkAblationSnapBudget"},
	{Name: "BenchmarkAblationDeopt"},
	{Name: "BenchmarkClusterScale"},

	// Hot-path microbenchmarks: gated.
	{Name: "BenchmarkFireworksInvoke", Gate: true},
	{Name: "BenchmarkFireworksWarmResumeInvoke", Gate: true},
	{Name: "BenchmarkFirecrackerColdInvoke"},
	{Name: "BenchmarkInterpreterTier"},
	{Name: "BenchmarkJITTier"},
	{Name: "BenchmarkSnapshotRestore", Gate: true},
	{Name: "BenchmarkPSSAccounting"},

	// Content-addressed store benchmarks: gated, including the derived
	// flat/delta fetch ratios (virtual time and bytes moved) and the
	// demand/replay restore speedup.
	{Name: "BenchmarkRestoreDelta/flat", Gate: true},
	{Name: "BenchmarkRestoreDelta/delta", Gate: true},
	{Name: "BenchmarkPrefetchReplay/demand", Gate: true},
	{Name: "BenchmarkPrefetchReplay/replay", Gate: true},

	// Harness contention benchmarks: gated, including the derived
	// sharded/flat and batch/single speedups.
	{Name: "BenchmarkMetricsParallel/flat", Gate: true},
	{Name: "BenchmarkMetricsParallel/sharded", Gate: true},
	{Name: "BenchmarkJournalParallel/flat", Gate: true},
	{Name: "BenchmarkJournalParallel/sharded", Gate: true},
	{Name: "BenchmarkMsgbusBatch/single", Gate: true},
	{Name: "BenchmarkMsgbusBatch/batch", Gate: true},

	// Workflow engine: gated, including the derived hand-wired vs
	// declarative virtual-cost ratio (the engine's composition overhead
	// must stay in the imperative chain's envelope).
	{Name: "BenchmarkWorkflowChain/handwired", Gate: true},
	{Name: "BenchmarkWorkflowChain/declarative", Gate: true},

	// Insight engine: gated — critical-path analysis over a 10k-event
	// journal must stay cheap enough to run inside request handlers.
	{Name: "BenchmarkCriticalPath", Gate: true},

	// Telemetry plane: gated, including the derived full-vs-sampled
	// NDJSON byte ratio — the tail sampler must keep delivering the
	// >=5x journal reduction the telem experiment claims.
	{Name: "BenchmarkTailSampling/full", Gate: true},
	{Name: "BenchmarkTailSampling/sampled", Gate: true},
}

// gatedPattern returns the -bench regexp selecting the gated set (or
// every manifest entry with all=true).
func gatedPattern(all bool) string {
	seen := map[string]bool{}
	pat := "^("
	first := true
	for _, e := range manifest {
		if !e.Gate && !all {
			continue
		}
		top, _, _ := strings.Cut(e.Name, "/")
		if seen[top] {
			continue
		}
		seen[top] = true
		if !first {
			pat += "|"
		}
		pat += top
		first = false
	}
	return pat + ")$"
}
