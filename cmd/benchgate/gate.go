package main

import (
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// BenchResult is one benchmark's measurements as recorded in
// BENCH_simharness.json.
type BenchResult struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	AllocsOp   float64 `json:"allocs_per_op,omitempty"`
	BytesOp    float64 `json:"bytes_per_op,omitempty"`
	// Custom carries `b.ReportMetric` extras, e.g. ns_virtual/op for
	// the virtual-time experiment benchmarks or records/op for the
	// msgbus batch benchmark.
	Custom map[string]float64 `json:"custom,omitempty"`
}

// Report is the schema of BENCH_simharness.json. Derived holds
// machine-comparable ratios (speedups and throughput) computed from
// the raw results; ratios of two numbers from the same run cancel out
// most of the host's absolute speed, so they gate much tighter than
// raw ns/op.
type Report struct {
	GoVersion  string             `json:"go_version"`
	GOOS       string             `json:"goos"`
	GOARCH     string             `json:"goarch"`
	CPU        string             `json:"cpu,omitempty"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	Benchtime  string             `json:"benchtime"`
	Results    []BenchResult      `json:"results"`
	Derived    map[string]float64 `json:"derived"`
}

func (r *Report) result(name string) *BenchResult {
	for i := range r.Results {
		if r.Results[i].Name == name {
			return &r.Results[i]
		}
	}
	return nil
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkMetricsParallel/sharded-4   10362654   45.85 ns/op   1 B/op   0 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

// parseBenchOutput extracts results from `go test -bench` output.
// The trailing -N GOMAXPROCS suffix is stripped from names so reports
// compare across machines with different core counts.
func parseBenchOutput(out string) []BenchResult {
	var results []BenchResult
	for _, line := range strings.Split(out, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		r := BenchResult{Name: m[1], Iterations: iters}
		fields := strings.Fields(m[3])
		// Metrics come as value/unit pairs: `45.85 ns/op 1 B/op ...`.
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesOp = v
			case "allocs/op":
				r.AllocsOp = v
			default:
				if r.Custom == nil {
					r.Custom = map[string]float64{}
				}
				r.Custom[unit] = v
			}
		}
		results = append(results, r)
	}
	return results
}

// derive computes the report's derived ratios:
//
//   - sim_invokes_per_wall_sec: how many simulated invocations the
//     harness replays per wall-clock second (1e9 / ns_per_op of
//     BenchmarkFireworksInvoke) — the headline "is the simulator still
//     fast" number.
//   - metrics_parallel_speedup, journal_parallel_speedup: flat-lock
//     baseline ns/op ÷ sharded ns/op.
//   - msgbus_batch_speedup: per-record produce/consume ns/op ÷ batched
//     ns/op.
func derive(r *Report) {
	r.Derived = map[string]float64{}
	if b := r.result("BenchmarkFireworksInvoke"); b != nil && b.NsPerOp > 0 {
		r.Derived["sim_invokes_per_wall_sec"] = 1e9 / b.NsPerOp
	}
	ratio := func(key, num, den string) {
		n, d := r.result(num), r.result(den)
		if n != nil && d != nil && d.NsPerOp > 0 {
			r.Derived[key] = n.NsPerOp / d.NsPerOp
		}
	}
	ratio("metrics_parallel_speedup", "BenchmarkMetricsParallel/flat", "BenchmarkMetricsParallel/sharded")
	ratio("journal_parallel_speedup", "BenchmarkJournalParallel/flat", "BenchmarkJournalParallel/sharded")
	ratio("msgbus_batch_speedup", "BenchmarkMsgbusBatch/single", "BenchmarkMsgbusBatch/batch")
	// Virtual-time and virtual-bytes ratios are deterministic (the
	// simulator charges fixed costs on the virtual clock), so they gate
	// much tighter than wall-clock numbers.
	custom := func(key, unit, num, den string) {
		n, d := r.result(num), r.result(den)
		if n != nil && d != nil && d.Custom[unit] > 0 {
			r.Derived[key] = n.Custom[unit] / d.Custom[unit]
		}
	}
	custom("restore_delta_speedup", "ns_virtual/op", "BenchmarkRestoreDelta/flat", "BenchmarkRestoreDelta/delta")
	custom("restore_delta_bytes_ratio", "vbytes/op", "BenchmarkRestoreDelta/flat", "BenchmarkRestoreDelta/delta")
	custom("prefetch_replay_speedup", "ns_virtual/op", "BenchmarkPrefetchReplay/demand", "BenchmarkPrefetchReplay/replay")
	custom("workflow_chain_speedup", "ns_virtual/op", "BenchmarkWorkflowChain/handwired", "BenchmarkWorkflowChain/declarative")
	custom("tail_sampling_reduction", "vbytes/op", "BenchmarkTailSampling/full", "BenchmarkTailSampling/sampled")
}

// Tolerances bound how far a fresh run may drift from the committed
// baseline before the gate fails.
type Tolerances struct {
	// MaxNsRatio bounds fresh ns/op ÷ baseline ns/op. Wall time moves
	// with the host, so this band is generous; the committed baseline
	// mainly guards against order-of-magnitude regressions.
	MaxNsRatio float64
	// MaxAllocRatio bounds fresh allocs/op ÷ baseline allocs/op (after
	// AllocSlack). Allocation counts are hardware-independent, so this
	// band is tight.
	MaxAllocRatio float64
	// AllocSlack is an absolute allowance added to the baseline before
	// the ratio check, so a 0→1 allocs/op change on a tiny benchmark
	// does not divide by zero (and a 2→3 change on a small one does
	// not read as 1.5x).
	AllocSlack float64
	// MinSpeedups gates the derived ratios: each key must be at least
	// its value in the fresh report. The msgbus batch win is
	// algorithmic and holds everywhere; the sharded registry/journal
	// wins grow with core count, so their floors are set as
	// "never meaningfully slower than the flat baseline".
	MinSpeedups map[string]float64
}

func defaultTolerances() Tolerances {
	return Tolerances{
		MaxNsRatio:    3.0,
		MaxAllocRatio: 1.25,
		AllocSlack:    4,
		MinSpeedups: map[string]float64{
			// Lock-free read index: faster than the flat RLock path
			// even single-threaded; grows with cores.
			"metrics_parallel_speedup": 1.2,
			// Atomic ID allocation vs all-on-one-mutex: parity
			// single-core, wins with real parallelism. Floor guards
			// against reintroducing a global lock.
			"journal_parallel_speedup": 0.8,
			// Amortized lock acquisition: algorithmic, holds on any
			// machine.
			"msgbus_batch_speedup": 1.3,
			// Virtual-clock ratios: deterministic by construction, so
			// the floors sit just under the designed values. A delta
			// fetch must move far fewer bytes (and cost far less) than
			// the faithful whole-image arm, and a replayed restore must
			// beat demand paging.
			"restore_delta_speedup":     5.0,
			"restore_delta_bytes_ratio": 5.0,
			"prefetch_replay_speedup":   1.1,
			// Declarative DAG execution vs the hand-wired invoke()
			// chain, in virtual time: near-parity by design (~1.0). The
			// floor catches the engine growing a per-step virtual cost
			// the imperative chain does not pay.
			"workflow_chain_speedup": 0.9,
			// Tail sampling at keep-rate 0.05 over the 256-trace storm
			// keeps ~7 error traces plus ~5% probabilistic — the
			// exported bytes shrink >10x by construction; the floor
			// sits at the experiment's headline claim.
			"tail_sampling_reduction": 5.0,
		},
	}
}

// Violation is one gate failure.
type Violation struct {
	Name   string
	Detail string
}

func (v Violation) String() string { return v.Name + ": " + v.Detail }

// compare checks a fresh report against the committed baseline. Only
// gated manifest entries participate. A gated benchmark missing from
// either report is itself a violation — silently dropping a benchmark
// must not pass the gate.
func compare(baseline, fresh *Report, tol Tolerances) []Violation {
	var vs []Violation
	for _, e := range manifest {
		if !e.Gate {
			continue
		}
		bb, fb := baseline.result(e.Name), fresh.result(e.Name)
		if bb == nil {
			vs = append(vs, Violation{e.Name, "missing from baseline (regenerate with -write)"})
			continue
		}
		if fb == nil {
			vs = append(vs, Violation{e.Name, "missing from fresh run"})
			continue
		}
		if bb.NsPerOp > 0 && fb.NsPerOp > tol.MaxNsRatio*bb.NsPerOp {
			vs = append(vs, Violation{e.Name, fmt.Sprintf(
				"ns/op regressed: %.0f -> %.0f (> %.2gx baseline)",
				bb.NsPerOp, fb.NsPerOp, tol.MaxNsRatio)})
		}
		if allowed := (bb.AllocsOp + tol.AllocSlack) * tol.MaxAllocRatio; fb.AllocsOp > allowed {
			vs = append(vs, Violation{e.Name, fmt.Sprintf(
				"allocs/op regressed: %.0f -> %.0f (> %.0f allowed)",
				bb.AllocsOp, fb.AllocsOp, allowed)})
		}
	}
	keys := make([]string, 0, len(tol.MinSpeedups))
	for k := range tol.MinSpeedups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		min := tol.MinSpeedups[k]
		got, ok := fresh.Derived[k]
		if !ok {
			vs = append(vs, Violation{k, "derived ratio missing from fresh run"})
			continue
		}
		if got < min {
			vs = append(vs, Violation{k, fmt.Sprintf("%.2fx, want >= %.2fx", got, min)})
		}
	}
	return vs
}

func readReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func writeReport(path string, r *Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
