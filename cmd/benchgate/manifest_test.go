package main

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var benchFuncRe = regexp.MustCompile(`(?m)^func (Benchmark\w+)\(b \*testing\.B\)`)

// TestManifestCoversAllBenchmarks is the benchmark-hygiene gate: every
// Benchmark* function in the repo root's bench_test.go must appear in
// the manifest (directly, or as the prefix of its sub-benchmark
// entries). Adding a benchmark without deciding whether benchgate
// watches it fails here.
func TestManifestCoversAllBenchmarks(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("..", "..", "bench_test.go"))
	if err != nil {
		t.Fatalf("reading bench_test.go: %v", err)
	}
	inManifest := map[string]bool{}
	for _, e := range manifest {
		top, _, _ := strings.Cut(e.Name, "/")
		inManifest[top] = true
	}
	var missing []string
	declared := map[string]bool{}
	for _, m := range benchFuncRe.FindAllStringSubmatch(string(src), -1) {
		name := m[1]
		declared[name] = true
		if !inManifest[name] {
			missing = append(missing, name)
		}
	}
	if len(declared) == 0 {
		t.Fatal("no Benchmark* functions found in bench_test.go — regexp drift?")
	}
	if len(missing) > 0 {
		t.Errorf("benchmarks missing from cmd/benchgate manifest: %v\n"+
			"add each to manifest.go (Gate: true if it guards a hot path)", missing)
	}
	// And the reverse: a manifest entry whose function is gone is dead
	// weight that would silently never run.
	for top := range inManifest {
		if !declared[top] {
			t.Errorf("manifest entry %s has no Benchmark function in bench_test.go", top)
		}
	}
}
