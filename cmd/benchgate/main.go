// Command benchgate is the benchmark regression gate: it runs the
// repo's hot-path benchmarks, writes the measurements to a JSON report
// (BENCH_simharness.json), and compares them against the committed
// baseline, failing with a nonzero exit on regression.
//
// Usage:
//
//	go run ./cmd/benchgate                  # run gated set, compare to baseline
//	go run ./cmd/benchgate -write           # refresh the committed baseline
//	go run ./cmd/benchgate -benchtime 100ms # quicker, noisier (CI uses this)
//	go run ./cmd/benchgate -all             # also run the ungated inventory
//
// Raw ns/op comparisons use a generous band (hardware differs across
// machines); allocs/op and the derived speedup ratios gate tightly,
// because both are nearly hardware-independent. See docs/benchmarking.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
)

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_simharness.json", "committed baseline to compare against")
		outPath      = flag.String("out", "", "write the fresh report here (default: only the baseline on -write)")
		write        = flag.Bool("write", false, "write the fresh report as the new baseline instead of comparing")
		benchtime    = flag.String("benchtime", "1s", "go test -benchtime per benchmark")
		count        = flag.Int("count", 1, "go test -count")
		all          = flag.Bool("all", false, "run every manifest benchmark, not just the gated set")
		maxNsRatio   = flag.Float64("max-ns-ratio", 0, "override ns/op tolerance (fresh/baseline)")
		maxAllocs    = flag.Float64("max-alloc-ratio", 0, "override allocs/op tolerance (fresh/baseline)")
	)
	flag.Parse()

	fresh, err := runBenchmarks(*benchtime, *count, *all)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}

	if *outPath != "" {
		if err := writeReport(*outPath, fresh); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *outPath)
	}

	if *write {
		if err := writeReport(*baselinePath, fresh); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(1)
		}
		fmt.Println("wrote baseline", *baselinePath)
		printSummary(fresh)
		return
	}

	baseline, err := readReport(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: no baseline (%v); generate one with -write\n", err)
		os.Exit(1)
	}
	tol := defaultTolerances()
	if *maxNsRatio > 0 {
		tol.MaxNsRatio = *maxNsRatio
	}
	if *maxAllocs > 0 {
		tol.MaxAllocRatio = *maxAllocs
	}
	printSummary(fresh)
	if vs := compare(baseline, fresh, tol); len(vs) > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d violation(s):\n", len(vs))
		for _, v := range vs {
			fmt.Fprintln(os.Stderr, "  -", v)
		}
		os.Exit(1)
	}
	fmt.Println("benchgate: ok")
}

// runBenchmarks shells out to `go test -bench` for the selected set
// and parses the output into a report.
func runBenchmarks(benchtime string, count int, all bool) (*Report, error) {
	args := []string{
		"test", "-run", "^$",
		"-bench", gatedPattern(all),
		"-benchtime", benchtime,
		"-benchmem",
		fmt.Sprintf("-count=%d", count),
		".",
	}
	cmd := exec.Command("go", args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, out)
	}
	results := parseBenchOutput(string(out))
	if len(results) == 0 {
		return nil, fmt.Errorf("no benchmark results parsed from:\n%s", out)
	}
	r := &Report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPU:        cpuModel(string(out)),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchtime:  benchtime,
		Results:    dedupeBest(results),
	}
	derive(r)
	return r, nil
}

// dedupeBest keeps the fastest run per benchmark when -count > 1.
func dedupeBest(results []BenchResult) []BenchResult {
	best := map[string]int{}
	var out []BenchResult
	for _, r := range results {
		if i, ok := best[r.Name]; ok {
			if r.NsPerOp < out[i].NsPerOp {
				out[i] = r
			}
			continue
		}
		best[r.Name] = len(out)
		out = append(out, r)
	}
	return out
}

// cpuModel extracts the `cpu:` header go test prints.
func cpuModel(out string) string {
	for _, line := range strings.Split(out, "\n") {
		if rest, ok := strings.CutPrefix(line, "cpu: "); ok {
			return strings.TrimSpace(rest)
		}
	}
	return ""
}

func printSummary(r *Report) {
	if v, ok := r.Derived["sim_invokes_per_wall_sec"]; ok {
		fmt.Printf("sim invokes/wall-sec: %.0f\n", v)
	}
	for _, k := range []string{"metrics_parallel_speedup", "journal_parallel_speedup", "msgbus_batch_speedup", "workflow_chain_speedup"} {
		if v, ok := r.Derived[k]; ok {
			fmt.Printf("%s: %.2fx\n", k, v)
		}
	}
}
