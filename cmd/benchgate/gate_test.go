package main

import (
	"strings"
	"testing"
)

// sampleReport builds a healthy report covering every gated manifest
// entry, with derived ratios above their floors.
func sampleReport() *Report {
	r := &Report{Benchtime: "1s"}
	for _, e := range manifest {
		if !e.Gate {
			continue
		}
		r.Results = append(r.Results, BenchResult{
			Name: e.Name, Iterations: 1000, NsPerOp: 1000, AllocsOp: 10, BytesOp: 256,
		})
	}
	// Make the ratio numerators slower than their denominators so the
	// derived speedups clear their floors.
	r.result("BenchmarkMetricsParallel/flat").NsPerOp = 2000
	r.result("BenchmarkJournalParallel/flat").NsPerOp = 1100
	r.result("BenchmarkMsgbusBatch/single").NsPerOp = 1700
	// The content-addressed store ratios derive from virtual-clock
	// custom metrics, not wall-clock ns/op.
	r.result("BenchmarkRestoreDelta/flat").Custom = map[string]float64{"ns_virtual/op": 190e6, "vbytes/op": 230e6}
	r.result("BenchmarkRestoreDelta/delta").Custom = map[string]float64{"ns_virtual/op": 13e6, "vbytes/op": 10e6}
	r.result("BenchmarkPrefetchReplay/demand").Custom = map[string]float64{"ns_virtual/op": 10.4e6}
	r.result("BenchmarkPrefetchReplay/replay").Custom = map[string]float64{"ns_virtual/op": 7.6e6}
	// The workflow chain ratio is near-parity by design.
	r.result("BenchmarkWorkflowChain/handwired").Custom = map[string]float64{"ns_virtual/op": 25e6}
	r.result("BenchmarkWorkflowChain/declarative").Custom = map[string]float64{"ns_virtual/op": 24.8e6}
	// Tail sampling shrinks the exported journal bytes >10x.
	r.result("BenchmarkTailSampling/full").Custom = map[string]float64{"vbytes/op": 1.11e5}
	r.result("BenchmarkTailSampling/sampled").Custom = map[string]float64{"vbytes/op": 9.2e3}
	derive(r)
	return r
}

func TestCompareIdenticalPasses(t *testing.T) {
	base := sampleReport()
	fresh := sampleReport()
	if vs := compare(base, fresh, defaultTolerances()); len(vs) != 0 {
		t.Fatalf("identical reports should pass, got violations: %v", vs)
	}
}

// TestCompareFailsOnSyntheticRegression feeds the gate a fresh report
// with deliberately regressed numbers and requires it to fail — the
// gate's reason to exist.
func TestCompareFailsOnSyntheticRegression(t *testing.T) {
	base := sampleReport()

	t.Run("ns_per_op", func(t *testing.T) {
		fresh := sampleReport()
		fresh.result("BenchmarkFireworksInvoke").NsPerOp *= 10 // way past the 3x band
		vs := compare(base, fresh, defaultTolerances())
		if !hasViolation(vs, "BenchmarkFireworksInvoke", "ns/op") {
			t.Fatalf("10x ns/op regression not caught: %v", vs)
		}
	})

	t.Run("allocs_per_op", func(t *testing.T) {
		fresh := sampleReport()
		fresh.result("BenchmarkSnapshotRestore").AllocsOp *= 3
		vs := compare(base, fresh, defaultTolerances())
		if !hasViolation(vs, "BenchmarkSnapshotRestore", "allocs/op") {
			t.Fatalf("3x allocs/op regression not caught: %v", vs)
		}
	})

	t.Run("speedup_collapse", func(t *testing.T) {
		// A refactor that reintroduces the flat lock shows up as the
		// sharded arm slowing to (or past) the baseline arm.
		fresh := sampleReport()
		fresh.result("BenchmarkMsgbusBatch/batch").NsPerOp = fresh.result("BenchmarkMsgbusBatch/single").NsPerOp
		derive(fresh)
		vs := compare(base, fresh, defaultTolerances())
		if !hasViolation(vs, "msgbus_batch_speedup", "want >=") {
			t.Fatalf("collapsed msgbus speedup not caught: %v", vs)
		}
	})

	t.Run("delta_fetch_collapse", func(t *testing.T) {
		// A regression that refetches the whole image (losing the chunk
		// delta) shows up as the delta arm's virtual cost and bytes
		// climbing to the flat arm's.
		fresh := sampleReport()
		flat := fresh.result("BenchmarkRestoreDelta/flat").Custom
		fresh.result("BenchmarkRestoreDelta/delta").Custom = map[string]float64{
			"ns_virtual/op": flat["ns_virtual/op"], "vbytes/op": flat["vbytes/op"]}
		derive(fresh)
		vs := compare(base, fresh, defaultTolerances())
		if !hasViolation(vs, "restore_delta_speedup", "want >=") ||
			!hasViolation(vs, "restore_delta_bytes_ratio", "want >=") {
			t.Fatalf("collapsed delta fetch not caught: %v", vs)
		}
	})

	t.Run("prefetch_collapse", func(t *testing.T) {
		fresh := sampleReport()
		fresh.result("BenchmarkPrefetchReplay/replay").Custom["ns_virtual/op"] =
			fresh.result("BenchmarkPrefetchReplay/demand").Custom["ns_virtual/op"]
		derive(fresh)
		vs := compare(base, fresh, defaultTolerances())
		if !hasViolation(vs, "prefetch_replay_speedup", "want >=") {
			t.Fatalf("collapsed prefetch speedup not caught: %v", vs)
		}
	})

	t.Run("tail_sampling_collapse", func(t *testing.T) {
		// A sampler that stops dropping traces exports as many bytes
		// as the unsampled arm.
		fresh := sampleReport()
		fresh.result("BenchmarkTailSampling/sampled").Custom["vbytes/op"] =
			fresh.result("BenchmarkTailSampling/full").Custom["vbytes/op"]
		derive(fresh)
		vs := compare(base, fresh, defaultTolerances())
		if !hasViolation(vs, "tail_sampling_reduction", "want >=") {
			t.Fatalf("collapsed tail-sampling reduction not caught: %v", vs)
		}
	})

	t.Run("missing_benchmark", func(t *testing.T) {
		fresh := sampleReport()
		keep := fresh.Results[:0]
		for _, b := range fresh.Results {
			if b.Name != "BenchmarkSnapshotRestore" {
				keep = append(keep, b)
			}
		}
		fresh.Results = keep
		vs := compare(base, fresh, defaultTolerances())
		if !hasViolation(vs, "BenchmarkSnapshotRestore", "missing") {
			t.Fatalf("dropped benchmark not caught: %v", vs)
		}
	})
}

// TestCompareToleratesHardwareDrift checks the band is wide enough for
// a slower CI machine: 2x wall-clock drift with identical allocation
// behavior must pass.
func TestCompareToleratesHardwareDrift(t *testing.T) {
	base := sampleReport()
	fresh := sampleReport()
	for i := range fresh.Results {
		fresh.Results[i].NsPerOp *= 2
	}
	derive(fresh) // ratios cancel the uniform slowdown
	if vs := compare(base, fresh, defaultTolerances()); len(vs) != 0 {
		t.Fatalf("uniform 2x slowdown should pass (ratios cancel), got: %v", vs)
	}
}

func TestParseBenchOutput(t *testing.T) {
	out := `
goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFireworksInvoke 	      96	   3934138 ns/op	  12598878 ns_virtual/op	  388027 B/op	    8655 allocs/op
BenchmarkMetricsParallel/sharded-4      	10362654	        45.85 ns/op	       1 B/op	       0 allocs/op
BenchmarkMsgbusBatch/batch          	   28704	     11332 ns/op	        64.00 records/op	   25792 B/op	      85 allocs/op
PASS
ok  	repro	1.860s
`
	results := parseBenchOutput(out)
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(results), results)
	}
	inv := results[0]
	if inv.Name != "BenchmarkFireworksInvoke" || inv.NsPerOp != 3934138 || inv.AllocsOp != 8655 {
		t.Errorf("bad invoke parse: %+v", inv)
	}
	if inv.Custom["ns_virtual/op"] != 12598878 {
		t.Errorf("custom metric lost: %+v", inv.Custom)
	}
	// The -4 GOMAXPROCS suffix must be stripped.
	if results[1].Name != "BenchmarkMetricsParallel/sharded" {
		t.Errorf("suffix not stripped: %q", results[1].Name)
	}
	if results[2].Custom["records/op"] != 64 {
		t.Errorf("records/op lost: %+v", results[2].Custom)
	}
}

func TestDerive(t *testing.T) {
	r := sampleReport()
	if got := r.Derived["sim_invokes_per_wall_sec"]; got != 1e9/1000 {
		t.Errorf("sim_invokes_per_wall_sec = %v, want 1e6", got)
	}
	if got := r.Derived["metrics_parallel_speedup"]; got != 2.0 {
		t.Errorf("metrics_parallel_speedup = %v, want 2.0", got)
	}
}

func TestGatedPattern(t *testing.T) {
	pat := gatedPattern(false)
	for _, want := range []string{"BenchmarkFireworksInvoke", "BenchmarkMetricsParallel", "BenchmarkMsgbusBatch"} {
		if !strings.Contains(pat, want) {
			t.Errorf("gated pattern missing %s: %s", want, pat)
		}
	}
	if strings.Contains(pat, "BenchmarkTable1Matrix") {
		t.Errorf("ungated benchmark in gated pattern: %s", pat)
	}
	if !strings.Contains(gatedPattern(true), "BenchmarkTable1Matrix") {
		t.Errorf("-all pattern missing ungated benchmark")
	}
	// Sub-benchmarks of one function must not repeat the function name.
	if n := strings.Count(pat, "BenchmarkMetricsParallel"); n != 1 {
		t.Errorf("BenchmarkMetricsParallel appears %d times in pattern", n)
	}
}

func hasViolation(vs []Violation, name, detail string) bool {
	for _, v := range vs {
		if v.Name == name && strings.Contains(v.Detail, detail) {
			return true
		}
	}
	return false
}
