// Command memcheck validates a memory-timeline CSV exported by the
// telemetry layer (fwbench -run memtl, fwcli -timeseries-dump, or
// GET /timeseries): the file must parse as CSV with a ts_ns-first
// header, carry the mem_used_bytes series, hold at least two samples,
// and keep virtual time strictly increasing. It is the sanity gate
// behind `make mem-demo` — cheap enough for CI, strict enough to catch
// a broken exporter before a human plots the file.
//
//	memcheck memory-timeline-fireworks.csv
package main

import (
	"encoding/csv"
	"fmt"
	"os"
	"strconv"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: memcheck <memory-timeline.csv>")
		os.Exit(2)
	}
	path := os.Args[1]
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	if len(rows) < 3 {
		fatal(fmt.Errorf("%s: %d rows; want a header and at least two samples", path, len(rows)))
	}
	header := rows[0]
	if len(header) == 0 || header[0] != "ts_ns" {
		fatal(fmt.Errorf("%s: first header column is %q, want ts_ns", path, header))
	}
	usedCol := -1
	for i, name := range header {
		if name == "mem_used_bytes" {
			usedCol = i
		}
	}
	if usedCol < 0 {
		fatal(fmt.Errorf("%s: no mem_used_bytes column in header", path))
	}
	prev := int64(-1)
	for i, row := range rows[1:] {
		ts, err := strconv.ParseInt(row[0], 10, 64)
		if err != nil {
			fatal(fmt.Errorf("%s: row %d ts_ns %q: %w", path, i+1, row[0], err))
		}
		if ts <= prev {
			fatal(fmt.Errorf("%s: row %d ts_ns %d does not advance past %d", path, i+1, ts, prev))
		}
		prev = ts
		if cell := row[usedCol]; cell != "" {
			if _, err := strconv.ParseFloat(cell, 64); err != nil {
				fatal(fmt.Errorf("%s: row %d mem_used_bytes %q: %w", path, i+1, cell, err))
			}
		}
	}
	fmt.Printf("memcheck: %s ok (%d samples, %d series)\n", path, len(rows)-1, len(header)-1)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "memcheck:", err)
	os.Exit(1)
}
