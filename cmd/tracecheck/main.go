// Command tracecheck validates a Chrome trace-event JSON file: the
// file must parse as JSON and carry a non-empty traceEvents array whose
// events have the mandatory phase field. It is the sanity gate behind
// `make trace-demo` — cheap enough for CI, strict enough to catch a
// broken exporter before a human loads the file in Perfetto.
//
//	tracecheck trace.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck <trace.json>")
		os.Exit(2)
	}
	path := os.Args[1]
	raw, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	if !json.Valid(raw) {
		fatal(fmt.Errorf("%s: not valid JSON", path))
	}
	var doc struct {
		TraceEvents []struct {
			Phase string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	if len(doc.TraceEvents) == 0 {
		fatal(fmt.Errorf("%s: traceEvents is empty", path))
	}
	for i, e := range doc.TraceEvents {
		if e.Phase == "" {
			fatal(fmt.Errorf("%s: traceEvents[%d] has no ph field", path, i))
		}
	}
	fmt.Printf("tracecheck: %s ok (%d events)\n", path, len(doc.TraceEvents))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracecheck:", err)
	os.Exit(1)
}
