// Package repro's root benchmarks regenerate every table and figure of
// the paper's evaluation as Go benchmarks (one per artifact), plus
// fine-grained microbenchmarks of the paths the paper's claims rest on:
// snapshot restore vs cold boot, interpreter vs JIT execution, and CoW
// page accounting.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// The experiment benchmarks report virtual-time metrics (ns_virtual/op
// style custom metrics) alongside wall-clock numbers; the printed
// figures themselves come from `go run ./cmd/fwbench -run all`.
package repro_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/lang"
	"repro/internal/lang/bytecode"
	"repro/internal/lang/jit"
	"repro/internal/lang/vm"
	"repro/internal/platform"
	"repro/internal/runtime"
	"repro/internal/vclock"
	"repro/internal/vmm"
	"repro/internal/workloads"
)

// benchExperiment runs one full experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	exp, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := exp.Run()
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range res.Checks {
			if !c.Pass {
				b.Fatalf("%s: shape check %q failed (paper %s, measured %s)",
					id, c.Name, c.Expected, c.Measured)
			}
		}
	}
}

// --- One benchmark per table/figure (deliverable d) ---

func BenchmarkTable1Matrix(b *testing.B)       { benchExperiment(b, "table1") }
func BenchmarkTable2Workloads(b *testing.B)    { benchExperiment(b, "table2") }
func BenchmarkSnapshotCreation(b *testing.B)   { benchExperiment(b, "snaptime") }
func BenchmarkFig6NodeFaaSdom(b *testing.B)    { benchExperiment(b, "fig6") }
func BenchmarkFig7PythonFaaSdom(b *testing.B)  { benchExperiment(b, "fig7") }
func BenchmarkFig9RealWorld(b *testing.B)      { benchExperiment(b, "fig9") }
func BenchmarkFig10Consolidation(b *testing.B) { benchExperiment(b, "fig10") }
func BenchmarkFig11FactorPerf(b *testing.B)    { benchExperiment(b, "fig11") }
func BenchmarkFig12FactorMemory(b *testing.B)  { benchExperiment(b, "fig12") }

// Extension experiments (beyond the paper's figures).
func BenchmarkWildTrace(b *testing.B)          { benchExperiment(b, "wild") }
func BenchmarkAblationREAP(b *testing.B)       { benchExperiment(b, "reap") }
func BenchmarkAblationSnapBudget(b *testing.B) { benchExperiment(b, "snapbudget") }
func BenchmarkAblationDeopt(b *testing.B)      { benchExperiment(b, "deopt") }
func BenchmarkClusterScale(b *testing.B)       { benchExperiment(b, "scale") }

// --- Microbenchmarks of the mechanisms under the figures ---

// BenchmarkFireworksInvoke measures the full Fireworks invoke path
// (queue produce, snapshot restore, netns setup, param fetch, JITted
// execution) and reports the virtual latency as a custom metric.
func BenchmarkFireworksInvoke(b *testing.B) {
	env := platform.NewEnv(platform.EnvConfig{})
	fw := core.New(env, core.Options{})
	w := workloads.Fact(runtime.LangNode)
	if _, err := fw.Install(w.Function); err != nil {
		b.Fatal(err)
	}
	params := platform.MustParams(map[string]any{"n": 9999991, "rounds": 1})
	b.ResetTimer()
	var virtual int64
	for i := 0; i < b.N; i++ {
		inv, err := fw.Invoke(w.Name, params, platform.InvokeOptions{})
		if err != nil {
			b.Fatal(err)
		}
		virtual += int64(inv.Breakdown.Total())
	}
	b.ReportMetric(float64(virtual)/float64(b.N), "ns_virtual/op")
}

// BenchmarkFireworksWarmResumeInvoke measures the opt-in warm-pool
// path: after the first request seeds the pool, every iteration
// warm-resumes the same paused clone instead of restoring the snapshot
// — the direct comparison point for BenchmarkFireworksInvoke's
// restore-per-request default.
func BenchmarkFireworksWarmResumeInvoke(b *testing.B) {
	env := platform.NewEnv(platform.EnvConfig{})
	fw := core.New(env, core.Options{WarmPool: true})
	w := workloads.Fact(runtime.LangNode)
	if _, err := fw.Install(w.Function); err != nil {
		b.Fatal(err)
	}
	params := platform.MustParams(map[string]any{"n": 9999991, "rounds": 1})
	// Seed the pool so every timed iteration hits the warm path.
	if _, err := fw.Invoke(w.Name, params, platform.InvokeOptions{}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var virtual int64
	for i := 0; i < b.N; i++ {
		inv, err := fw.Invoke(w.Name, params, platform.InvokeOptions{})
		if err != nil {
			b.Fatal(err)
		}
		virtual += int64(inv.Breakdown.Total())
	}
	b.StopTimer()
	if got := env.Metrics.Counter("fireworks_warm_resume_total").Value(); got < int64(b.N) {
		b.Fatalf("warm resumes = %d, want >= %d (pool missed)", got, b.N)
	}
	b.ReportMetric(float64(virtual)/float64(b.N), "ns_virtual/op")
}

// BenchmarkFirecrackerColdInvoke is the baseline the 133x claim is
// measured against.
func BenchmarkFirecrackerColdInvoke(b *testing.B) {
	env := platform.NewEnv(platform.EnvConfig{})
	p := platform.NewFirecracker(env, platform.FCNoSnapshot)
	w := workloads.Fact(runtime.LangNode)
	if _, err := p.Install(w.Function); err != nil {
		b.Fatal(err)
	}
	params := platform.MustParams(map[string]any{"n": 9999991, "rounds": 1})
	b.ResetTimer()
	var virtual int64
	for i := 0; i < b.N; i++ {
		inv, err := p.Invoke(w.Name, params, platform.InvokeOptions{Mode: platform.ModeCold})
		if err != nil {
			b.Fatal(err)
		}
		virtual += int64(inv.Breakdown.Total())
		b.StopTimer()
		if err := p.Remove(w.Name); err != nil {
			b.Fatal(err)
		}
		if _, err := p.Install(w.Function); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	b.ReportMetric(float64(virtual)/float64(b.N), "ns_virtual/op")
}

// BenchmarkInterpreter and BenchmarkJIT measure the two FaaSLang
// execution tiers on the same hot loop (real wall-clock speed of the
// simulator itself).
const hotLoopSrc = `
func hot(n) {
  let total = 0;
  let i = 0;
  while (i < n) {
    total = total + i * i;
    i = i + 1;
  }
  return total;
}
`

func setupTier(b *testing.B, compiled bool) (*vm.VM, *bytecode.Closure) {
	b.Helper()
	mod, err := bytecode.CompileSource(hotLoopSrc)
	if err != nil {
		b.Fatal(err)
	}
	v := vm.New(nil)
	engine := jit.NewEngine(jit.Config{})
	v.JIT = engine
	if _, err := v.RunModule(mod); err != nil {
		b.Fatal(err)
	}
	cl := v.Globals["hot"].(*bytecode.Closure)
	if compiled {
		engine.Compile(cl.Fn, nil)
	}
	return v, cl
}

func BenchmarkInterpreterTier(b *testing.B) {
	v, cl := setupTier(b, false)
	args := []lang.Value{int64(1000)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.CallValue(cl, args); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJITTier(b *testing.B) {
	v, cl := setupTier(b, true)
	args := []lang.Value{int64(1000)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.CallValue(cl, args); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotRestore isolates the hypervisor restore path.
func BenchmarkSnapshotRestore(b *testing.B) {
	env := platform.NewEnv(platform.EnvConfig{})
	fw := core.New(env, core.Options{})
	w := workloads.NetLatency(runtime.LangNode)
	if _, err := fw.Install(w.Function); err != nil {
		b.Fatal(err)
	}
	snap, err := env.Snaps.Get(w.Name)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clock := vclock.New()
		vm_, err := env.HV.Restore(snap, vmm.RestoreOptions{}, clock)
		if err != nil {
			b.Fatal(err)
		}
		if err := vm_.Stop(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPSSAccounting stresses the page-sharing arithmetic behind
// Figures 10 and 12: map + dirty + PSS over many spaces.
func BenchmarkPSSAccounting(b *testing.B) {
	env := platform.NewEnv(platform.EnvConfig{})
	region := env.Mem.NewRegion("bench", "heap", 4096)
	spaces := make([]spaceLike, 0, 64)
	for i := 0; i < 64; i++ {
		s := env.Mem.NewSpace("s")
		s.MapRegion(region)
		s.DirtyPages(region, i*8)
		spaces = append(spaces, s)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sum float64
		for _, s := range spaces {
			sum += s.PSS()
		}
		if sum <= 0 {
			b.Fatal("no PSS")
		}
	}
}

type spaceLike interface{ PSS() float64 }
