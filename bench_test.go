// Package repro's root benchmarks regenerate every table and figure of
// the paper's evaluation as Go benchmarks (one per artifact), plus
// fine-grained microbenchmarks of the paths the paper's claims rest on:
// snapshot restore vs cold boot, interpreter vs JIT execution, and CoW
// page accounting.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// The experiment benchmarks report virtual-time metrics (ns_virtual/op
// style custom metrics) alongside wall-clock numbers; the printed
// figures themselves come from `go run ./cmd/fwbench -run all`.
package repro_test

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/experiments"
	"repro/internal/insight"
	"repro/internal/lang"
	"repro/internal/lang/bytecode"
	"repro/internal/lang/jit"
	"repro/internal/lang/vm"
	"repro/internal/metrics"
	"repro/internal/msgbus"
	"repro/internal/platform"
	"repro/internal/runtime"
	"repro/internal/telemetry"
	"repro/internal/vclock"
	"repro/internal/vmm"
	"repro/internal/workflow"
	"repro/internal/workloads"
)

// benchExperiment runs one full experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	exp, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := exp.Run()
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range res.Checks {
			if !c.Pass {
				b.Fatalf("%s: shape check %q failed (paper %s, measured %s)",
					id, c.Name, c.Expected, c.Measured)
			}
		}
	}
}

// --- One benchmark per table/figure (deliverable d) ---

func BenchmarkTable1Matrix(b *testing.B)       { benchExperiment(b, "table1") }
func BenchmarkTable2Workloads(b *testing.B)    { benchExperiment(b, "table2") }
func BenchmarkSnapshotCreation(b *testing.B)   { benchExperiment(b, "snaptime") }
func BenchmarkFig6NodeFaaSdom(b *testing.B)    { benchExperiment(b, "fig6") }
func BenchmarkFig7PythonFaaSdom(b *testing.B)  { benchExperiment(b, "fig7") }
func BenchmarkFig9RealWorld(b *testing.B)      { benchExperiment(b, "fig9") }
func BenchmarkFig10Consolidation(b *testing.B) { benchExperiment(b, "fig10") }
func BenchmarkFig11FactorPerf(b *testing.B)    { benchExperiment(b, "fig11") }
func BenchmarkFig12FactorMemory(b *testing.B)  { benchExperiment(b, "fig12") }

// Extension experiments (beyond the paper's figures).
func BenchmarkWildTrace(b *testing.B)          { benchExperiment(b, "wild") }
func BenchmarkAblationREAP(b *testing.B)       { benchExperiment(b, "reap") }
func BenchmarkAblationSnapBudget(b *testing.B) { benchExperiment(b, "snapbudget") }
func BenchmarkAblationDeopt(b *testing.B)      { benchExperiment(b, "deopt") }
func BenchmarkClusterScale(b *testing.B)       { benchExperiment(b, "scale") }

// --- Microbenchmarks of the mechanisms under the figures ---

// BenchmarkFireworksInvoke measures the full Fireworks invoke path
// (queue produce, snapshot restore, netns setup, param fetch, JITted
// execution) and reports the virtual latency as a custom metric.
func BenchmarkFireworksInvoke(b *testing.B) {
	env := platform.NewEnv(platform.EnvConfig{})
	fw := core.New(env, core.Options{})
	w := workloads.Fact(runtime.LangNode)
	if _, err := fw.Install(w.Function); err != nil {
		b.Fatal(err)
	}
	params := platform.MustParams(map[string]any{"n": 9999991, "rounds": 1})
	b.ResetTimer()
	var virtual int64
	for i := 0; i < b.N; i++ {
		inv, err := fw.Invoke(w.Name, params, platform.InvokeOptions{})
		if err != nil {
			b.Fatal(err)
		}
		virtual += int64(inv.Breakdown.Total())
	}
	b.ReportMetric(float64(virtual)/float64(b.N), "ns_virtual/op")
}

// BenchmarkFireworksWarmResumeInvoke measures the opt-in warm-pool
// path: after the first request seeds the pool, every iteration
// warm-resumes the same paused clone instead of restoring the snapshot
// — the direct comparison point for BenchmarkFireworksInvoke's
// restore-per-request default.
func BenchmarkFireworksWarmResumeInvoke(b *testing.B) {
	env := platform.NewEnv(platform.EnvConfig{})
	fw := core.New(env, core.Options{WarmPool: true})
	w := workloads.Fact(runtime.LangNode)
	if _, err := fw.Install(w.Function); err != nil {
		b.Fatal(err)
	}
	params := platform.MustParams(map[string]any{"n": 9999991, "rounds": 1})
	// Seed the pool so every timed iteration hits the warm path.
	if _, err := fw.Invoke(w.Name, params, platform.InvokeOptions{}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var virtual int64
	for i := 0; i < b.N; i++ {
		inv, err := fw.Invoke(w.Name, params, platform.InvokeOptions{})
		if err != nil {
			b.Fatal(err)
		}
		virtual += int64(inv.Breakdown.Total())
	}
	b.StopTimer()
	if got := env.Metrics.Counter("fireworks_warm_resume_total").Value(); got < int64(b.N) {
		b.Fatalf("warm resumes = %d, want >= %d (pool missed)", got, b.N)
	}
	b.ReportMetric(float64(virtual)/float64(b.N), "ns_virtual/op")
}

// BenchmarkFirecrackerColdInvoke is the baseline the 133x claim is
// measured against.
func BenchmarkFirecrackerColdInvoke(b *testing.B) {
	env := platform.NewEnv(platform.EnvConfig{})
	p := platform.NewFirecracker(env, platform.FCNoSnapshot)
	w := workloads.Fact(runtime.LangNode)
	if _, err := p.Install(w.Function); err != nil {
		b.Fatal(err)
	}
	params := platform.MustParams(map[string]any{"n": 9999991, "rounds": 1})
	b.ResetTimer()
	var virtual int64
	for i := 0; i < b.N; i++ {
		inv, err := p.Invoke(w.Name, params, platform.InvokeOptions{Mode: platform.ModeCold})
		if err != nil {
			b.Fatal(err)
		}
		virtual += int64(inv.Breakdown.Total())
		b.StopTimer()
		if err := p.Remove(w.Name); err != nil {
			b.Fatal(err)
		}
		if _, err := p.Install(w.Function); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	b.ReportMetric(float64(virtual)/float64(b.N), "ns_virtual/op")
}

// BenchmarkInterpreter and BenchmarkJIT measure the two FaaSLang
// execution tiers on the same hot loop (real wall-clock speed of the
// simulator itself).
const hotLoopSrc = `
func hot(n) {
  let total = 0;
  let i = 0;
  while (i < n) {
    total = total + i * i;
    i = i + 1;
  }
  return total;
}
`

func setupTier(b *testing.B, compiled bool) (*vm.VM, *bytecode.Closure) {
	b.Helper()
	mod, err := bytecode.CompileSource(hotLoopSrc)
	if err != nil {
		b.Fatal(err)
	}
	v := vm.New(nil)
	engine := jit.NewEngine(jit.Config{})
	v.JIT = engine
	if _, err := v.RunModule(mod); err != nil {
		b.Fatal(err)
	}
	cl := v.Globals["hot"].(*bytecode.Closure)
	if compiled {
		engine.Compile(cl.Fn, nil)
	}
	return v, cl
}

func BenchmarkInterpreterTier(b *testing.B) {
	v, cl := setupTier(b, false)
	args := []lang.Value{int64(1000)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.CallValue(cl, args); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJITTier(b *testing.B) {
	v, cl := setupTier(b, true)
	args := []lang.Value{int64(1000)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.CallValue(cl, args); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotRestore isolates the hypervisor restore path.
func BenchmarkSnapshotRestore(b *testing.B) {
	env := platform.NewEnv(platform.EnvConfig{})
	fw := core.New(env, core.Options{})
	w := workloads.NetLatency(runtime.LangNode)
	if _, err := fw.Install(w.Function); err != nil {
		b.Fatal(err)
	}
	snap, err := env.Snaps.Get(w.Name)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clock := vclock.New()
		vm_, err := env.HV.Restore(snap, vmm.RestoreOptions{}, clock)
		if err != nil {
			b.Fatal(err)
		}
		if err := vm_.Stop(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRestoreDelta measures pulling an evicted image back from
// remote storage two ways: "flat" is the faithful pre-chunking arm
// (no local pool to delta against — every byte of the image moves, as
// the store did before content addressing), "delta" transfers only the
// chunks missing from the local pool, which still holds the shared
// base-runtime image. Both report the deterministic virtual fetch cost
// and the bytes moved; benchgate derives the speedup and bytes ratio.
func BenchmarkRestoreDelta(b *testing.B) {
	w := workloads.NetLatency(runtime.LangNode)
	setup := func(b *testing.B) *platform.Env {
		b.Helper()
		env := platform.NewEnv(platform.EnvConfig{RemoteSnapshotStorage: true})
		fw := core.New(env, core.Options{})
		if _, err := fw.Install(w.Function); err != nil {
			b.Fatal(err)
		}
		// Evict the function image; the shared base stays resident.
		env.Snaps.Remove(w.Name)
		return env
	}
	b.Run("flat", func(b *testing.B) {
		env := setup(b)
		var virtual int64
		var moved uint64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			clock := vclock.New()
			snap, err := env.RemoteSnaps.Fetch(w.Name, clock)
			if err != nil {
				b.Fatal(err)
			}
			virtual += int64(clock.Now())
			moved = snap.TotalBytes()
		}
		b.ReportMetric(float64(virtual)/float64(b.N), "ns_virtual/op")
		b.ReportMetric(float64(moved), "vbytes/op")
	})
	b.Run("delta", func(b *testing.B) {
		env := setup(b)
		var virtual int64
		var moved uint64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			clock := vclock.New()
			snap, err := env.RemoteSnaps.FetchTraced(w.Name, env.Snaps, clock, nil)
			if err != nil {
				b.Fatal(err)
			}
			virtual += int64(clock.Now())
			moved = chunk.BytesOf(env.Snaps.MissingChunks(snap.Manifest().Chunks()))
		}
		b.ReportMetric(float64(virtual)/float64(b.N), "ns_virtual/op")
		b.ReportMetric(float64(moved), "vbytes/op")
	})
}

// BenchmarkPrefetchReplay measures the hypervisor restore path with and
// without a recorded working set: "demand" pages the resident set in
// fault by fault, "replay" prefetches the chunks and pages the first
// restore recorded (REAP's record-and-replay applied to post-JIT
// snapshots). Virtual restore cost is deterministic; benchgate derives
// the replay speedup.
func BenchmarkPrefetchReplay(b *testing.B) {
	env := platform.NewEnv(platform.EnvConfig{})
	fw := core.New(env, core.Options{REAPPrefetch: true})
	w := workloads.Fact(runtime.LangNode)
	if _, err := fw.Install(w.Function); err != nil {
		b.Fatal(err)
	}
	// The first invoke demand-pages and records the working set.
	params := platform.MustParams(map[string]any{"n": 9999991, "rounds": 1})
	if _, err := fw.Invoke(w.Name, params, platform.InvokeOptions{}); err != nil {
		b.Fatal(err)
	}
	snap, err := env.Snaps.Get(w.Name)
	if err != nil {
		b.Fatal(err)
	}
	rec := snap.WorkingSet()
	if rec == nil {
		b.Fatal("first invoke left no working-set record")
	}
	restore := func(b *testing.B, opts vmm.RestoreOptions) {
		b.Helper()
		var virtual int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			clock := vclock.New()
			v, err := env.HV.Restore(snap, opts, clock)
			if err != nil {
				b.Fatal(err)
			}
			virtual += int64(clock.Now())
			b.StopTimer()
			if err := v.Stop(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
		b.ReportMetric(float64(virtual)/float64(b.N), "ns_virtual/op")
	}
	b.Run("demand", func(b *testing.B) { restore(b, vmm.RestoreOptions{}) })
	b.Run("replay", func(b *testing.B) { restore(b, vmm.RestoreOptions{Prefetch: rec}) })
}

// BenchmarkPSSAccounting stresses the page-sharing arithmetic behind
// Figures 10 and 12: map + dirty + PSS over many spaces.
func BenchmarkPSSAccounting(b *testing.B) {
	env := platform.NewEnv(platform.EnvConfig{})
	region := env.Mem.NewRegion("bench", "heap", 4096)
	spaces := make([]spaceLike, 0, 64)
	for i := 0; i < 64; i++ {
		s := env.Mem.NewSpace("s")
		s.MapRegion(region)
		s.DirtyPages(region, i*8)
		spaces = append(spaces, s)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sum float64
		for _, s := range spaces {
			sum += s.PSS()
		}
		if sum <= 0 {
			b.Fatal("no PSS")
		}
	}
}

type spaceLike interface{ PSS() float64 }

// --- Harness contention benchmarks (sharded vs flat-lock baseline) ---
//
// These stress the simulator's own hot paths under b.RunParallel,
// comparing the sharded packages against faithful copies of the
// pre-shard layouts: a registry whose every lookup takes one global
// RWMutex read-lock, and a journal whose append, trace-ID, and span-ID
// paths all funnel through one mutex. The copies live below
// (flatLockRegistry, flatLockJournal) so the baseline stays measurable
// after the real packages moved on. cmd/benchgate records both numbers
// in BENCH_simharness.json and gates the sharded/flat ratio, so a
// refactor that quietly reintroduces a global lock fails CI.

// flatLockRegistry is the pre-shard metrics registry: three maps
// behind one RWMutex, every instrument lookup paying a read-lock
// acquire/release on a shared cache line. Instrument internals match
// internal/metrics (atomic counters and gauges, mutexed histogram), so
// the benchmark isolates the lookup path — the part the shards and
// lock-free reads replaced.
type flatLockRegistry struct {
	mu         sync.RWMutex
	counters   map[string]*flatCounter
	gauges     map[string]*flatGauge
	histograms map[string]*flatHistogram
}

type flatCounter struct{ v atomic.Int64 }

func (c *flatCounter) Inc() { c.v.Add(1) }

type flatGauge struct{ v atomic.Int64 }

func (g *flatGauge) Add(d int64) { g.v.Add(d) }

type flatHistogram struct {
	mu      sync.Mutex
	bounds  []float64
	counts  []uint64
	count   uint64
	sum     float64
	min     float64
	max     float64
	samples []float64 // ring of the most recent flatMaxSamples
	next    int
}

const flatMaxSamples = 1 << 16 // matches internal/metrics maxSamples

func (h *flatHistogram) ObserveDuration(d time.Duration) {
	v := float64(d)
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	if len(h.samples) < flatMaxSamples {
		h.samples = append(h.samples, v)
	} else {
		h.samples[h.next] = v
		h.next = (h.next + 1) % flatMaxSamples
	}
}

func newFlatLockRegistry() *flatLockRegistry {
	return &flatLockRegistry{
		counters:   make(map[string]*flatCounter),
		gauges:     make(map[string]*flatGauge),
		histograms: make(map[string]*flatHistogram),
	}
}

func (r *flatLockRegistry) Counter(name string) *flatCounter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &flatCounter{}
		r.counters[name] = c
	}
	return c
}

func (r *flatLockRegistry) Gauge(name string) *flatGauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &flatGauge{}
		r.gauges[name] = g
	}
	return g
}

func (r *flatLockRegistry) Histogram(name string) *flatHistogram {
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		bounds := metrics.DefaultLatencyBuckets()
		h = &flatHistogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
		r.histograms[name] = h
	}
	return h
}

// BenchmarkMetricsParallel hammers registry lookups the way a fleet of
// nodes does — per-node labeled counters and histograms resolved by
// name on every operation. "flat" is the pre-shard global-RWMutex
// registry; "sharded" is internal/metrics with its lock-free striped
// lookups.
func BenchmarkMetricsParallel(b *testing.B) {
	const nodes = 64
	counterNames := make([]string, nodes)
	histNames := make([]string, nodes)
	for i := range counterNames {
		node := fmt.Sprintf("node-%02d", i)
		counterNames[i] = metrics.Name("cluster_node_invocations_total", "node", node)
		histNames[i] = metrics.Name("cluster_place_duration", "node", node)
	}
	b.Run("flat", func(b *testing.B) {
		reg := newFlatLockRegistry()
		for i := range counterNames {
			reg.Counter(counterNames[i]).Inc()
			reg.Histogram(histNames[i]).ObserveDuration(time.Microsecond)
		}
		var gid atomic.Int64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := int(gid.Add(1)) * 7919 // spread goroutines across names
			for pb.Next() {
				reg.Counter(counterNames[i%nodes]).Inc()
				reg.Gauge(counterNames[(i+1)%nodes]).Add(1)
				if i%8 == 0 {
					reg.Histogram(histNames[i%nodes]).ObserveDuration(time.Duration(i))
				}
				i++
			}
		})
	})
	b.Run("sharded", func(b *testing.B) {
		reg := metrics.NewRegistry()
		for i := range counterNames {
			reg.Counter(counterNames[i]).Inc()
			reg.Histogram(histNames[i]).ObserveDuration(time.Microsecond)
		}
		var gid atomic.Int64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := int(gid.Add(1)) * 7919
			for pb.Next() {
				reg.Counter(counterNames[i%nodes]).Inc()
				reg.Gauge(counterNames[(i+1)%nodes]).Add(1)
				if i%8 == 0 {
					reg.Histogram(histNames[i%nodes]).ObserveDuration(time.Duration(i))
				}
				i++
			}
		})
	})
}

// flatLockJournal is the pre-shard event journal: one mutex guards the
// ring, the sequence counter, and both ID allocators, so every span
// begin pays two lock round-trips (span ID + append) on the same
// mutex every other goroutine is fighting for.
type flatLockJournal struct {
	mu        sync.Mutex
	buf       []events.Event
	start, n  int
	seq       uint64
	nextTrace uint64
	nextSpan  uint64
}

func (j *flatLockJournal) append(e events.Event) {
	j.mu.Lock()
	j.seq++
	e.Seq = j.seq
	if j.n == len(j.buf) {
		j.start = (j.start + 1) % len(j.buf)
		j.n--
	}
	j.buf[(j.start+j.n)%len(j.buf)] = e
	j.n++
	j.mu.Unlock()
}

func (j *flatLockJournal) newTraceID() events.TraceID {
	j.mu.Lock()
	j.nextTrace++
	id := events.TraceID(j.nextTrace)
	j.mu.Unlock()
	return id
}

func (j *flatLockJournal) newSpanID() events.SpanID {
	j.mu.Lock()
	j.nextSpan++
	id := events.SpanID(j.nextSpan)
	j.mu.Unlock()
	return id
}

// flatScope mirrors the pre-shard events.Scope (heap stack slice, no
// inline buffer) over flatLockJournal.
type flatScope struct {
	j     *flatLockJournal
	trace events.TraceID
	stack []events.SpanID
	node  string
}

func (j *flatLockJournal) newScope(component, name string, ts time.Duration) *flatScope {
	s := &flatScope{j: j, trace: j.newTraceID()}
	s.begin(component, name, ts)
	return s
}

func (s *flatScope) parent() events.SpanID {
	if len(s.stack) == 0 {
		return 0
	}
	return s.stack[len(s.stack)-1]
}

func (s *flatScope) begin(component, name string, ts time.Duration) {
	id := s.j.newSpanID()
	s.j.append(events.Event{
		TS: ts, Trace: s.trace, Span: id, Parent: s.parent(), Kind: events.KindBegin,
		Component: component, Name: name, Node: s.node,
	})
	s.stack = append(s.stack, id)
}

func (s *flatScope) instant(component, name string, ts time.Duration) {
	id := s.j.newSpanID()
	s.j.append(events.Event{
		TS: ts, Trace: s.trace, Span: id, Parent: s.parent(), Kind: events.KindInstant,
		Component: component, Name: name, Node: s.node,
	})
}

func (s *flatScope) close(ts time.Duration) {
	for len(s.stack) > 0 {
		id := s.stack[len(s.stack)-1]
		s.stack = s.stack[:len(s.stack)-1]
		s.j.append(events.Event{
			TS: ts, Trace: s.trace, Span: id, Parent: s.parent(), Kind: events.KindEnd,
			Node: s.node,
		})
	}
}

// BenchmarkJournalParallel appends per-invocation traces from many
// nodes into one shared journal — the cluster storm access pattern.
// "flat" is the pre-shard single-mutex journal (IDs and appends all on
// one lock); "sharded" is internal/events with atomic ID allocation
// and per-node ring stripes.
func BenchmarkJournalParallel(b *testing.B) {
	const nodes = 16
	nodeNames := make([]string, nodes)
	for i := range nodeNames {
		nodeNames[i] = fmt.Sprintf("node-%02d", i)
	}
	b.Run("flat", func(b *testing.B) {
		j := &flatLockJournal{buf: make([]events.Event, events.DefaultCapacity)}
		var gid atomic.Int64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			g := int(gid.Add(1))
			node := nodeNames[g%nodes]
			i := 0
			for pb.Next() {
				sc := j.newScope("core", "invoke", time.Duration(i))
				sc.node = node
				sc.instant("vmm", "restore", time.Duration(i))
				sc.close(time.Duration(i + 1))
				i++
			}
		})
	})
	b.Run("sharded", func(b *testing.B) {
		j := events.NewJournal(events.DefaultCapacity)
		var gid atomic.Int64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			g := int(gid.Add(1))
			node := nodeNames[g%nodes]
			i := 0
			for pb.Next() {
				sc := j.NewScope("core", "invoke", time.Duration(i))
				sc.SetNode(node)
				sc.Instant("vmm", "restore", time.Duration(i))
				sc.Close(time.Duration(i + 1))
				i++
			}
		})
	})
}

// BenchmarkMsgbusBatch compares the per-record produce/consume path
// against the batched API on the same 64-record workload: one topic
// per iteration (the invoke path's per-instance topic lifecycle),
// 64 records in, 64 records out.
func BenchmarkMsgbusBatch(b *testing.B) {
	const batch = 64
	value := []byte(`{"n":9999991,"rounds":1}`)
	b.Run("single", func(b *testing.B) {
		broker := msgbus.NewBroker()
		for i := 0; i < b.N; i++ {
			if err := broker.CreateTopic("t", 1); err != nil {
				b.Fatal(err)
			}
			for k := 0; k < batch; k++ {
				if _, _, err := broker.ProduceAt("t", "k", value, time.Duration(k)); err != nil {
					b.Fatal(err)
				}
			}
			for k := 0; k < batch; k++ {
				if _, err := broker.ConsumeAt("t", 0, int64(k)); err != nil {
					b.Fatal(err)
				}
			}
			broker.DeleteTopic("t")
		}
		b.ReportMetric(float64(batch), "records/op")
	})
	b.Run("batch", func(b *testing.B) {
		broker := msgbus.NewBroker()
		recs := make([]msgbus.BatchRecord, batch)
		for k := range recs {
			recs[k] = msgbus.BatchRecord{Key: "k", Value: value}
		}
		for i := 0; i < b.N; i++ {
			if err := broker.CreateTopic("t", 1); err != nil {
				b.Fatal(err)
			}
			if _, err := broker.ProduceBatchAt("t", recs, 0); err != nil {
				b.Fatal(err)
			}
			if msgs, err := broker.ConsumeFrom("t", 0, 0, batch); err != nil || len(msgs) != batch {
				b.Fatalf("consumed %d, err %v", len(msgs), err)
			}
			broker.DeleteTopic("t")
		}
		b.ReportMetric(float64(batch), "records/op")
	})
}

// BenchmarkWorkflowChain compares the hand-wired Alexa chain (the
// frontend function dispatching to a skill via nested invoke()) against
// the same two-function chain run declaratively by the workflow engine
// (classifier step, conditional branch, bus-delivered step messages).
// Both arms report the deterministic virtual end-to-end latency;
// benchgate derives workflow_chain_speedup (hand-wired ÷ declarative)
// and floors it — the declarative engine must stay in the same virtual
// cost envelope as the imperative chain it replaces.
func BenchmarkWorkflowChain(b *testing.B) {
	req := map[string]any{"text": "alexa tell me a fun fact"}
	b.Run("handwired", func(b *testing.B) {
		env := platform.NewEnv(platform.EnvConfig{})
		fw := core.New(env, core.Options{})
		apps := workloads.AlexaSkills()
		for i := len(apps) - 1; i >= 0; i-- {
			if _, err := fw.Install(apps[i].Function); err != nil {
				b.Fatal(err)
			}
		}
		params := platform.MustParams(req)
		var virtual int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			inv, err := fw.Invoke(workloads.NameAlexaFrontend, params, platform.InvokeOptions{})
			if err != nil {
				b.Fatal(err)
			}
			virtual += int64(inv.Breakdown.Total())
		}
		b.ReportMetric(float64(virtual)/float64(b.N), "ns_virtual/op")
	})
	b.Run("declarative", func(b *testing.B) {
		env := platform.NewEnv(platform.EnvConfig{})
		fw := core.New(env, core.Options{})
		apps := append(workloads.AlexaSkills(), workloads.WorkflowFunctions()...)
		for i := len(apps) - 1; i >= 0; i-- {
			if _, err := fw.Install(apps[i].Function); err != nil {
				b.Fatal(err)
			}
		}
		eng := workflow.New(env.Bus, env.Events, env.Metrics, fw, workflow.Options{})
		if err := eng.Register(workloads.AlexaWorkflow()); err != nil {
			b.Fatal(err)
		}
		var virtual int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run, err := eng.Run("alexa", req, 0)
			if err != nil {
				b.Fatal(err)
			}
			if run.Status != workflow.RunCompleted {
				b.Fatalf("run status %q", run.Status)
			}
			virtual += int64(run.Invocation.Breakdown.Total())
		}
		b.ReportMetric(float64(virtual)/float64(b.N), "ns_virtual/op")
	})
}

// --- Insight engine (critical-path analysis cost) ---

// benchInsightJournal builds a deterministic synthetic journal of just
// over 10k events: invocation-shaped traces (gateway → cluster → core →
// six stages, one bus instant) with varied stage costs.
func benchInsightJournal() []events.Event {
	j := events.NewJournal(0)
	ts := time.Duration(0)
	const traces = 530 // 19 events each → ~10k
	for i := 0; i < traces; i++ {
		sc := j.NewScope("gateway", "POST /invoke", ts)
		sc.Begin("cluster", "request", ts)
		sc.SetNode(fmt.Sprintf("node-%02d", i%3))
		sc.Begin("core", "invoke", ts)
		for _, stage := range []string{"snapshot-get", "restore-or-reuse", "netns", "runtime-revive", "execute", "release"} {
			sc.Begin("core", stage, ts)
			ts += time.Duration(50+i%97) * time.Microsecond
			if stage == "execute" {
				sc.Instant("msgbus", "produce", ts, events.A("topic", "bench"))
			}
			sc.End(ts)
		}
		sc.End(ts)
		sc.End(ts)
		sc.Close(ts)
	}
	return j.Events()
}

// BenchmarkCriticalPath measures full insight analysis — span-tree
// reconstruction, critical paths, blame tables, and the service graph —
// over a 10k-event journal.
func BenchmarkCriticalPath(b *testing.B) {
	evs := benchInsightJournal()
	var traces int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := insight.Analyze(evs)
		traces = rep.TraceCount
	}
	b.ReportMetric(float64(len(evs)), "events/op")
	if traces != 530 {
		b.Fatalf("analyzed %d traces, want 530", traces)
	}
}

// benchStormJournal replays a deterministic storm of 256 small traces
// into j: one root scope and one child span each, an error attr on
// every 37th trace, identical per-trace latencies so the tail
// sampler's latency-outlier policy stays quiet and only the error and
// probabilistic policies decide keeps.
func benchStormJournal(j *events.Journal) {
	var ts time.Duration
	for i := 0; i < 256; i++ {
		sc := j.NewScope("gateway", "invoke", ts, events.A("fn", "bench"))
		sc.SetNode(fmt.Sprintf("node-%d", i%4))
		sc.Begin("core", "execute", ts)
		ts += 120 * time.Microsecond
		if i%37 == 0 {
			sc.Instant("core", "result", ts, events.A("error", "boom"))
		}
		sc.End(ts)
		sc.Close(ts)
		ts += 10 * time.Microsecond
	}
}

// BenchmarkTailSampling exports the storm journal as NDJSON with and
// without the tail sampler armed, reporting the export size as
// vbytes/op. benchgate derives tail_sampling_reduction = full/sampled
// and enforces the >=5x byte-reduction claim of the telem experiment
// at microbenchmark granularity.
func BenchmarkTailSampling(b *testing.B) {
	run := func(b *testing.B, armed bool) {
		var exported int
		for i := 0; i < b.N; i++ {
			j := events.NewJournal(1 << 15)
			var tail *telemetry.TailSampler
			if armed {
				tail = telemetry.New(telemetry.Config{Seed: 1, KeepRate: 0.05})
				tail.Attach(j, metrics.NewRegistry())
			}
			benchStormJournal(j)
			if tail != nil {
				tail.FlushAll()
				if st := tail.Stats(); st.DecidedTraces != 256 {
					b.Fatalf("decided %d traces, want 256", st.DecidedTraces)
				}
			}
			var buf bytes.Buffer
			if err := events.WriteNDJSON(&buf, j.Events()); err != nil {
				b.Fatal(err)
			}
			exported = buf.Len()
		}
		if exported == 0 {
			b.Fatal("empty export")
		}
		b.ReportMetric(float64(exported), "vbytes/op")
	}
	b.Run("full", func(b *testing.B) { run(b, false) })
	b.Run("sampled", func(b *testing.B) { run(b, true) })
}
