package core
