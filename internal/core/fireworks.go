// Package core implements FIREWORKS, the paper's contribution: a
// serverless platform built on VM-level post-JIT snapshots.
//
// Install phase (§3.2-§3.3): the code annotator instruments the user
// function; a microVM boots, the runtime loads the annotated module,
// __fireworks_jit() primes and JIT-compiles every user function, and
// __fireworks_snapshot() asks the hypervisor to capture the whole guest
// — kernel, runtime, libraries, heap, and JITted machine code — right
// before the function entry point.
//
// Invoke phase (§3.4-§3.6): the invoker produces the arguments to a
// per-instance Kafka topic, sets the instance identity in MMDS, restores
// the snapshot into a fresh microVM inside its own network namespace
// (identical guest IPs are isolated by per-VM NAT), and execution
// resumes at __fireworks_continue(): fetch parameters, run the
// already-JITted entry. There is no cold/warm distinction — every start
// is a snapshot resume.
package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/annotate"
	"repro/internal/events"
	"repro/internal/faults"
	"repro/internal/lang"
	"repro/internal/lifecycle"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/msgbus"
	"repro/internal/platform"
	"repro/internal/runtime"
	"repro/internal/sandbox"
	"repro/internal/snapshot"
	"repro/internal/trace"
	"repro/internal/vclock"
	"repro/internal/vmm"
)

// snapshotWorkingSetBytes is the resident set a restored snapshot
// faults in before the entry point can run; it drives the ~12 ms
// Fireworks start-up.
const snapshotWorkingSetBytes = 36 << 20

// Options configures a Framework.
type Options struct {
	// REAPPrefetch enables REAP-style record-and-prefetch on restore
	// (paper §7: complementary optimization). The first restore of a
	// snapshot demand-pages and records the working set actually
	// touched (resident prefix + pages dirtied by execution, from the
	// host's fault telemetry); later restores replay the record with
	// sequential reads instead of random demand faults.
	REAPPrefetch bool
	// RetainInstances keeps restored microVMs alive after their
	// invocation completes — required by the consolidation experiments
	// (§5.4), which pack hundreds of live microVMs onto the host.
	// When both RetainInstances and WarmPool are set, RetainInstances
	// wins: instances are kept, not pooled.
	RetainInstances bool
	// WarmPool keeps the microVM of a finished invocation paused in
	// the shared lifecycle pool and warm-resumes it for the next
	// invocation of the same function instead of restoring the
	// snapshot again. Off by default: the paper's §3.4 model is that
	// every start is a snapshot resume — the pool is an opt-in
	// optimization layered on top.
	WarmPool bool
	// PoolKeepAlive bounds how long a pooled VM stays warm on the
	// workload timeline (InvokeOptions.At); zero keeps it forever.
	// Only meaningful with WarmPool.
	PoolKeepAlive time.Duration
	// PoolCapacity bounds pooled VMs per function (zero = unbounded).
	// Only meaningful with WarmPool.
	PoolCapacity int
	// Retry guards the invocation pipeline's fallible stages (remote
	// fetch, parameter produce/consume, snapshot restore, install boot)
	// against transient faults. The zero value keeps the paper's
	// fail-fast behavior: one attempt, no backoff. When Permanent is
	// left nil, only errors faults.IsTransient recognizes are retried —
	// real failures (unknown function, image gone, store wedged) still
	// fail immediately.
	Retry faults.RetryPolicy
}

// Framework is the Fireworks serverless platform.
type Framework struct {
	env     *platform.Env
	opts    Options
	profile sandbox.Profile
	// pool holds idle paused microVMs when Options.WarmPool is on.
	pool *lifecycle.Pool[*Instance]
	// warmResumes counts invocations served by a pooled VM resume
	// instead of a snapshot restore.
	warmResumes *metrics.Counter
	// retrier guards fallible pipeline stages per Options.Retry; nil
	// when retries are disabled (every stage runs exactly once).
	retrier *faults.Retrier
	// bootRetrier guards the install-time kernel boot: same policy but
	// no per-attempt deadline or budget — a healthy boot costs seconds,
	// far above the invoke path's deadline.
	bootRetrier *faults.Retrier

	mu        sync.Mutex
	fns       map[string]*installed
	instances map[string][]*Instance
	nextFcID  int
}

type installed struct {
	fn        platform.Function
	annotated *annotate.Result
	template  *runtime.SnapshotTemplate
	report    *platform.InstallReport
}

// Instance is one live microVM serving (or having served) an
// invocation.
type Instance struct {
	FcID  string
	Topic string
	VM    *vmm.MicroVM
	rt    *runtime.Runtime
	// binding is the guest's host bridge; pooled reuse rebinds it to
	// the next invocation instead of reinstalling from scratch.
	binding *platform.NativeBinding
	// heapDirtied records that the CoW heap/JIT dirtying of the shared
	// snapshot image was already accounted for this VM; warm reruns
	// redirty the same private pages.
	heapDirtied bool
}

// SustainDirty models a long-running instance dirtying additional guest
// memory over time (page cache, logging, repeated invocations); the
// consolidation experiment uses it to reproduce §5.4's measured
// footprints.
func (i *Instance) SustainDirty(bytes uint64) { i.VM.DirtyDuringExecution(bytes) }

// New creates a Fireworks framework on the shared host environment.
func New(env *platform.Env, opts Options) *Framework {
	f := &Framework{
		env:       env,
		opts:      opts,
		profile:   sandbox.Profiles(sandbox.ClassFirecracker),
		fns:       make(map[string]*installed),
		instances: make(map[string][]*Instance),
	}
	f.pool = lifecycle.NewPool(lifecycle.PoolConfig[*Instance]{
		TTL:      opts.PoolKeepAlive,
		Capacity: opts.PoolCapacity,
		OnEvict:  f.discardInstance,
	})
	f.pool.Instrument(env.Metrics, "fireworks")
	f.warmResumes = env.Metrics.Counter("fireworks_warm_resume_total")
	if opts.Retry.MaxAttempts > 1 {
		pol := opts.Retry
		if pol.Permanent == nil {
			pol.Permanent = func(err error) bool { return !faults.IsTransient(err) }
		}
		f.retrier = faults.NewRetrier(pol, env.Metrics)
		bootPol := pol
		bootPol.AttemptTimeout = 0
		bootPol.Budget = 0
		f.bootRetrier = faults.NewRetrier(bootPol, env.Metrics)
	}
	return f
}

// PlatformName implements platform.Platform.
func (f *Framework) PlatformName() string { return "fireworks" }

// Install implements platform.Platform: annotate, boot, load, JIT,
// snapshot (Figure 2 steps 1-4). The report's Duration is the paper's
// §5.1 "post-JIT snapshot creation time" plus package installation.
func (f *Framework) Install(fn platform.Function) (*platform.InstallReport, error) {
	if err := platform.Validate(&fn); err != nil {
		return nil, err
	}
	ann, err := annotate.Annotate(fn.Source, annotate.Options{Entry: fn.EntryName()})
	if err != nil {
		return nil, err
	}

	clock := vclock.New()
	sc := f.env.Events.NewScope("core", "install", clock.Now(), events.A("function", fn.Name))
	// Close ends every span still open, so early-return error paths
	// leave no dangling journal spans.
	defer func() { sc.Close(clock.Now()) }()
	// ① Create a microVM ready for a runtime.
	sc.Begin("core", "boot", clock.Now())
	vm, err := f.env.HV.CreateVM(vmm.DefaultConfig(), clock)
	if err != nil {
		return nil, err
	}
	sc.SetVM(vm.ID)
	if err := f.bootRetrier.DoTraced(clock, sc, "kernel-boot", func() error { return vm.BootKernelTraced(clock, sc) }); err != nil {
		return nil, err
	}
	rt := runtime.New(fn.Lang, clock)
	rt.Boot()
	// Package installation (npm/pip) dominates install time for
	// Node.js (§5.1).
	clock.Advance(rt.Model.PackageInstall)
	sc.End(clock.Now())

	// Host bridge for the install phase: priming mode suppresses
	// externally visible effects; the snapshot request captures the
	// guest at the exact point §3.3 specifies.
	report := &platform.InstallReport{Function: fn.Name}
	inst := &installed{fn: fn, annotated: ann, report: report}
	installInv := platform.NewInvocation(fn.Name)
	installInv.Clock = clock
	// Chain invocations run during priming nest under the install trace.
	installInv.Trace = sc
	binding := &platform.NativeBinding{
		Profile: f.profile,
		FS:      vm.FS,
		Couch:   f.env.Couch,
		Inv:     installInv,
		Priming: true,
		// Priming runs real chains when the callee is already
		// installed; missing callees resolve to null.
		Invoke: func(child string, childParams lang.Value, parent *platform.Invocation) (*platform.Invocation, error) {
			return f.Invoke(child, childParams, platform.InvokeOptions{Parent: parent})
		},
	}
	binding.Install(rt)
	f.installFireworksNatives(rt, &fireworksBridge{
		defaultParams: fn.DefaultParams,
		snapshotRequest: func() error {
			return f.takeSnapshot(inst, vm, rt, clock, sc)
		},
	})

	// ② ③ Load the annotated module and run the JIT driver.
	sc.Begin("core", "jit-prime", clock.Now())
	if err := rt.LoadModule(ann.Source); err != nil {
		_ = vm.Stop()
		return nil, err
	}
	if _, err := rt.Call("__fireworks_jit"); err != nil {
		_ = vm.Stop()
		return nil, fmt.Errorf("fireworks: install priming of %q: %w", fn.Name, err)
	}
	// The @jit annotations force compilation of every user function the
	// language's JIT supports, not only those the priming run made hot.
	rt.ForceJITAll()
	report.JITCompiled = rt.Engine.CompiledFunctions()
	sc.End(clock.Now())

	// ④ The annotated code requests the snapshot right before the
	// original entry point.
	sc.Begin("core", "snapshot-capture", clock.Now())
	if _, err := rt.Call("__fireworks_snapshot"); err != nil {
		_ = vm.Stop()
		return nil, fmt.Errorf("fireworks: snapshot of %q: %w", fn.Name, err)
	}
	sc.End(clock.Now())
	if inst.template == nil {
		_ = vm.Stop()
		return nil, fmt.Errorf("fireworks: %q never requested its snapshot", fn.Name)
	}
	if err := vm.Stop(); err != nil {
		return nil, err
	}

	report.Duration = clock.Now()
	f.env.Metrics.Counter("fireworks_install_total").Inc()
	f.env.Metrics.Histogram("fireworks_install_duration").
		ObserveDurationExemplar(report.Duration, uint64(sc.TraceID()), clock.Now())
	f.mu.Lock()
	f.fns[fn.Name] = inst
	f.mu.Unlock()
	return report, nil
}

// codeHash fingerprints a function's deployed code (FNV-1a over the
// language, entry point, and source). It is the {code_hash} half of the
// snapshot content key: redeploying changed code changes the hash, so
// the stale image is invalidated instead of silently reused.
func codeHash(fn platform.Function) string {
	var h uint64 = 14695981039346656037
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
		h ^= 0xff
		h *= 1099511628211
	}
	mix(string(fn.Lang))
	mix(fn.EntryName())
	mix(fn.Source)
	return fmt.Sprintf("%012x", h&0xffffffffffff)
}

// BaseImageName keys the shared base-runtime (post-load) image one per
// language: every function snapshot of that language is a delta over
// it in the chunked store.
func BaseImageName(lang runtime.Lang) string { return "base/" + string(lang) }

// takeSnapshot captures guest state and memory at the snapshot point,
// storing the image as a content-addressed delta over the shared
// base-runtime image (kernel + runtime + libraries chunks are keyed by
// language, so the pool holds them once per language; only the
// function's private heap/JIT chunks — keyed {function_id}_{code_hash}
// — add bytes).
func (f *Framework) takeSnapshot(inst *installed, vm *vmm.MicroVM, rt *runtime.Runtime, clock *vclock.Clock, sc *events.Scope) error {
	template, err := rt.SnapshotTemplate()
	if err != nil {
		return err
	}
	foot := rt.Footprint()
	lang := inst.fn.Lang
	contentKey := fmt.Sprintf("%s_%s", inst.fn.Name, codeHash(inst.fn))
	baseName := BaseImageName(lang)
	baseSpecs := []vmm.RegionSpec{
		{Kind: mem.KindKernel, Bytes: vmm.CostKernelBytes, Content: "base:kernel"},
		{Kind: mem.KindRuntime, Bytes: foot.RuntimeImage, Content: "base:runtime:" + string(lang)},
		{Kind: mem.KindLibrary, Bytes: foot.Libraries, Content: "base:lib:" + string(lang)},
	}
	// Register the shared base image once per language: a real capture
	// of the post-load guest (kernel, runtime, libraries — no function
	// state), whose chunks every later function snapshot dedups
	// against.
	if !f.env.Snaps.Has(baseName) {
		base, berr := f.env.HV.TakeSnapshotTraced(vm, vmm.SnapPostLoad, baseSpecs, snapshotWorkingSetBytes, nil, clock, sc)
		if berr != nil {
			return berr
		}
		base.ContentKey = "base_" + string(lang)
		sc.Instant("vmm", "snapshot", clock.Now(),
			events.A("vm", vm.ID), events.A("snapshot", base.ID), events.A("image", baseName))
		if perr := f.env.Snaps.Put(baseName, base); perr != nil {
			return f.classifyPutError(baseName, perr)
		}
		if f.env.RemoteSnaps != nil {
			f.env.RemoteSnaps.UploadTraced(baseName, base, clock, sc)
		}
	}
	// Region order matters: execution dirties heap pages first. The
	// heap (and JIT-code) regions carry the function's private content
	// class; the kernel/runtime/library regions repeat the base classes
	// and therefore cost nothing in the chunk pool.
	specs := []vmm.RegionSpec{
		{Kind: mem.KindHeap, Bytes: foot.ModuleCode + rt.Model.HeapPerInvokeBytes + inst.fn.DirtyBytesPerRun, Content: "fn:" + contentKey},
	}
	specs = append(specs, baseSpecs...)
	if foot.JITCode > 0 {
		specs = append(specs, vmm.RegionSpec{Kind: mem.KindJITCode, Bytes: foot.JITCode, Content: "fn:" + contentKey})
	}
	snap, err := f.env.HV.TakeSnapshotTraced(vm, vmm.SnapPostJIT, specs, snapshotWorkingSetBytes, template, clock, sc)
	if err != nil {
		return err
	}
	snap.ContentKey = contentKey
	snap.BaseKey = baseName
	sc.Instant("vmm", "snapshot", clock.Now(),
		events.A("vm", vm.ID), events.A("snapshot", snap.ID))
	if err := f.env.Snaps.Put(inst.fn.Name, snap); err != nil {
		return f.classifyPutError(inst.fn.Name, err)
	}
	// With remote storage configured, the install also uploads the
	// image, so later local evictions cost a network fetch instead of a
	// reinstall (§6). Base chunks are already remote (uploaded above),
	// so this transfer moves only the function's delta.
	if f.env.RemoteSnaps != nil {
		f.env.RemoteSnaps.UploadTraced(inst.fn.Name, snap, clock, sc)
	}
	inst.template = template
	inst.report.SnapshotBytes = snap.TotalBytes()
	return nil
}

// classifyPutError distinguishes the two ways a snapshot store Put
// fails: wedged (every resident image is pinned by in-flight
// invocations — backpressure, counted separately) versus plain
// capacity (image larger than the budget). Both keep the original
// error in the chain so errors.Is(err, snapshot.ErrAllPinned) still
// identifies the wedged case.
func (f *Framework) classifyPutError(name string, err error) error {
	if errors.Is(err, snapshot.ErrAllPinned) {
		f.env.Metrics.Counter("fireworks_store_wedged_total").Inc()
		return fmt.Errorf("fireworks: %q: snapshot store wedged (every resident image pinned): %w", name, err)
	}
	return fmt.Errorf("fireworks: %q: snapshot store rejected image: %w", name, err)
}

// invokeStatePool recycles invokeState across invocations: the state
// never escapes Invoke (stage and cleanup closures referencing it all
// run inside Pipeline.Run), so it is reset and returned when the
// pipeline settles.
var invokeStatePool = sync.Pool{New: func() any { return new(invokeState) }}

// invokeState threads one invocation's accumulating state through the
// pipeline stages.
type invokeState struct {
	inst *installed
	// snap is the local (or re-fetched) snapshot image; snapErr defers
	// a lookup failure when a pooled warm VM might serve the request
	// without the image.
	snap    *vmm.Snapshot
	snapErr error
	// pinned marks that this invocation holds a Store pin on the
	// image. The flag (not a bare Unpin) guards against double-release:
	// pins are counted globally, so an extra Unpin would release
	// another invocation's pin.
	pinned      bool
	fcID        string
	topic       string
	instance    *Instance
	warm        bool
	startupMark time.Duration
}

// Invoke implements platform.Platform (Figure 2 steps 5-8). StartMode
// is ignored: Fireworks always resumes the post-JIT snapshot (or, with
// Options.WarmPool, warm-resumes a pooled paused clone).
//
// The flow is a lifecycle.Pipeline: each stage registers teardown for
// the resources it created, so any failure unwinds exactly the
// acquired set — no leaked topic, pin, or running microVM.
func (f *Framework) Invoke(name string, params lang.Value, opts platform.InvokeOptions) (*platform.Invocation, error) {
	f.mu.Lock()
	inst, ok := f.fns[name]
	f.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("fireworks: no function %q", name)
	}
	inv := opts.Parent
	if inv == nil {
		inv = platform.NewInvocation(name)
		inv.Trace = opts.Trace
	}
	// Trace context: nest under the caller's scope (gateway, cluster,
	// or a chain parent) when one is open, else root a fresh trace.
	sc := inv.Trace
	var entryDepth int
	if sc == nil {
		sc = f.env.Events.NewScope("core", "invoke", inv.Clock.Now(), events.A("function", name))
		inv.Trace = sc
	} else {
		entryDepth = sc.OpenSpans()
		sc.Begin("core", "invoke", inv.Clock.Now(), events.A("function", name))
	}
	// finishScope closes the invoke span (and, defensively, anything a
	// failed stage left open under it).
	finishScope := func(ferr error) {
		now := inv.Clock.Now()
		for sc.OpenSpans() > entryDepth+1 {
			sc.End(now)
		}
		if ferr != nil {
			sc.End(now, events.A("error", ferr.Error()))
		} else {
			sc.End(now, events.A("mode", inv.Mode.String()))
		}
	}
	// traced wraps a pipeline stage in a journal span named after it.
	traced := func(stageName string, fn func(cl *lifecycle.Cleanup) error) func(cl *lifecycle.Cleanup) error {
		return func(cl *lifecycle.Cleanup) error {
			sc.Begin("core", stageName, inv.Clock.Now())
			err := fn(cl)
			if err != nil {
				sc.End(inv.Clock.Now(), events.A("error", err.Error()))
			} else {
				sc.End(inv.Clock.Now())
			}
			return err
		}
	}

	st := invokeStatePool.Get().(*invokeState)
	*st = invokeState{inst: inst}
	defer func() {
		*st = invokeState{}
		invokeStatePool.Put(st)
	}()
	pl := lifecycle.NewPipeline().
		Stage("snapshot-get", traced("snapshot-get", func(cl *lifecycle.Cleanup) error {
			return f.stageSnapshot(st, name, inv, cl)
		})).
		Stage("topic-produce", traced("topic-produce", func(cl *lifecycle.Cleanup) error {
			return f.stageTopic(st, name, params, inv, cl)
		})).
		Stage("restore-or-reuse", traced("restore-or-reuse", func(cl *lifecycle.Cleanup) error {
			return f.stageRestore(st, name, inv, opts, cl)
		})).
		Stage("netns", traced("netns", func(cl *lifecycle.Cleanup) error {
			return f.stageNetns(st, inv, cl)
		})).
		Stage("runtime-revive", traced("runtime-revive", func(cl *lifecycle.Cleanup) error {
			return f.stageRevive(st, inv, cl)
		})).
		Stage("execute", traced("execute", func(cl *lifecycle.Cleanup) error {
			return f.stageExecute(st, name, inv, cl)
		})).
		Stage("release", traced("release", func(cl *lifecycle.Cleanup) error {
			return f.stageRelease(st, name, inv, opts, cl)
		}))
	if err := pl.Run(); err != nil {
		platform.ObserveInvokeError(f.env.Metrics, "fireworks")
		f.env.Metrics.Counter(metrics.Name("fireworks_stage_failures_total", "stage", pl.Failed())).Inc()
		finishScope(err)
		// An execute (or release) failure still yields the invocation
		// with its breakdown for diagnosis; start-up failures do not.
		if failed := pl.Failed(); failed == "execute" || failed == "release" {
			return inv, err
		}
		return nil, err
	}
	// Chained child invocations accumulate into the parent's breakdown;
	// only the top-level request is a platform invocation.
	if opts.Parent == nil {
		platform.ObserveInvocation(f.env.Metrics, "fireworks", inv)
	}
	finishScope(nil)
	return inv, nil
}

// stageSnapshot resolves the function's snapshot image, falling back to
// remote storage after a local eviction, and pins it against eviction
// for the rest of the pipeline.
func (f *Framework) stageSnapshot(st *invokeState, name string, inv *platform.Invocation, cl *lifecycle.Cleanup) error {
	snap, err := f.env.Snaps.Get(name)
	if err != nil && f.env.RemoteSnaps != nil {
		// Local eviction: pull the image from remote storage (charged
		// to this invocation's start-up) and repopulate the cache.
		inv.Trace.Instant("snapshot", "store-miss", inv.Clock.Now(), events.A("image", name))
		fetchMark := inv.Clock.Now()
		err = f.retrier.DoTraced(inv.Clock, inv.Trace, "remote-fetch", func() error {
			var ferr error
			snap, ferr = f.env.RemoteSnaps.FetchTraced(name, f.env.Snaps, inv.Clock, inv.Trace)
			return ferr
		})
		if err == nil {
			f.env.Metrics.Counter("fireworks_remote_fetch_total").Inc()
			inv.Breakdown.Add(trace.PhaseStartup, "snapshot-remote-fetch", inv.Clock.Since(fetchMark))
			if perr := f.env.Snaps.Put(name, snap); perr != nil {
				return f.classifyPutError(name, perr)
			}
		}
	}
	if err != nil {
		err = fmt.Errorf("fireworks: %q: %w (reinstall to regenerate)", name, err)
		if f.opts.WarmPool && !f.opts.RetainInstances && f.pool.Count(name) > 0 {
			// A pooled warm VM may serve the request without the
			// image; defer the failure to the restore stage.
			st.snapErr = err
			return nil
		}
		return err
	}
	st.snap = snap
	if perr := f.env.Snaps.Pin(name); perr == nil {
		st.pinned = true
		cl.Defer(func() {
			if st.pinned {
				st.pinned = false
				f.env.Snaps.Unpin(name)
			}
		})
	}
	return nil
}

// stageTopic creates the per-instance topic and produces the arguments
// to it before the clone resumes (step ⑤).
func (f *Framework) stageTopic(st *invokeState, name string, params lang.Value, inv *platform.Invocation, cl *lifecycle.Cleanup) error {
	f.mu.Lock()
	f.nextFcID++
	st.fcID = fmt.Sprintf("fc%06d", f.nextFcID)
	f.mu.Unlock()
	st.topic = fmt.Sprintf("fw-%s-%s", name, st.fcID)
	if err := f.env.Bus.CreateTopic(st.topic, 1); err != nil {
		return err
	}
	topic := st.topic
	cl.Defer(func() { f.env.Bus.DeleteTopic(topic) })
	paramJSON, err := runtime.EncodeJSON(params)
	if err != nil {
		return fmt.Errorf("fireworks: params: %w", err)
	}
	// Stamp the record with this invocation's clock position so the
	// stamped consume after restore measures queue dwell (§3.6), and
	// with the trace scope so the consume event links back to the
	// produce across the restore boundary.
	if err := f.retrier.DoTraced(inv.Clock, inv.Trace, "param-produce", func() error {
		_, _, perr := f.env.Bus.ProduceTracedAt(st.topic, st.fcID, paramJSON, inv.Clock.Now(), inv.Trace)
		return perr
	}); err != nil {
		return err
	}
	inv.ChargeOther("param-queue", f.profile.NetOpBase+platform.PerKB(f.profile, len(paramJSON)))
	return nil
}

// stageRestore provides the microVM: a warm resume of a pooled clone
// when Options.WarmPool has one, otherwise a fresh snapshot restore
// (step ⑦). On the fresh path the "startup" span stays open across the
// netns and revive stages and is closed by whichever stage finishes
// (or fails) it.
func (f *Framework) stageRestore(st *invokeState, name string, inv *platform.Invocation, opts platform.InvokeOptions, cl *lifecycle.Cleanup) error {
	st.startupMark = inv.Clock.Now()
	if f.opts.WarmPool && !f.opts.RetainInstances {
		if pooled, ok := f.pool.Acquire(name, opts.At); ok {
			cl.Defer(func() {
				if pooled.VM.State() != vmm.StateStopped {
					_ = pooled.VM.Stop()
				}
			})
			inv.Breakdown.BeginSpan("startup", trace.PhaseStartup, st.startupMark)
			inv.Trace.SetVM(pooled.VM.ID)
			inv.StartSpan("core", "warm-resume", trace.PhaseStartup)
			err := pooled.VM.ResumeWarmTraced(inv.Clock, inv.Trace)
			inv.FinishSpan()
			if err != nil {
				inv.Breakdown.EndSpan(inv.Clock.Now())
				return err
			}
			pooled.FcID = st.fcID
			pooled.Topic = st.topic
			pooled.VM.SetMMDS("fcID", st.fcID)
			pooled.VM.SetMMDS("topic", st.topic)
			inv.Breakdown.Add(trace.PhaseStartup, "warm-resume", inv.Clock.Since(st.startupMark))
			inv.Breakdown.EndSpan(inv.Clock.Now())
			f.warmResumes.Inc()
			st.instance = pooled
			st.warm = true
			return nil
		}
	}
	if st.snapErr != nil {
		// The image lookup failed and no pooled VM can cover for it.
		return st.snapErr
	}
	inv.Breakdown.BeginSpan("startup", trace.PhaseStartup, st.startupMark)
	inv.StartSpan("core", "vm-restore", trace.PhaseStartup)
	// A restore that exceeds the per-attempt deadline (a latency-spike
	// fault) leaves a running clone behind; the discard hook stops it
	// before the retry restores a fresh one.
	ropts := vmm.RestoreOptions{}
	if f.opts.REAPPrefetch {
		// Replay the recorded working set when one exists (captured on
		// this snapshot's first restored invocation); the first restore
		// demand-pages and records.
		if ropts.Prefetch = st.snap.WorkingSet(); ropts.Prefetch != nil {
			f.env.Metrics.Counter("fireworks_prefetch_replays_total").Inc()
		}
	}
	var vm *vmm.MicroVM
	err := f.retrier.DoWithDiscardTraced(inv.Clock, inv.Trace, "vm-restore", func() error {
		restored, rerr := f.env.HV.RestoreTraced(st.snap, ropts, inv.Clock, inv.Trace)
		if rerr != nil {
			return rerr
		}
		vm = restored
		return nil
	}, func() {
		if vm != nil {
			_ = vm.Stop()
			vm = nil
		}
	})
	inv.FinishSpan()
	if err != nil {
		inv.Breakdown.EndSpan(inv.Clock.Now())
		return err
	}
	inv.Trace.SetVM(vm.ID)
	cl.Defer(func() {
		if vm.State() != vmm.StateStopped {
			_ = vm.Stop()
		}
	})
	st.instance = &Instance{FcID: st.fcID, Topic: st.topic, VM: vm}
	return nil
}

// stageNetns joins the clone to its network namespace and publishes its
// identity over MMDS (step ⑥). Pooled warm VMs keep their namespace —
// part of the warm-resume win.
func (f *Framework) stageNetns(st *invokeState, inv *platform.Invocation, cl *lifecycle.Cleanup) error {
	if st.warm {
		return nil
	}
	vm := st.instance.VM
	inv.StartSpan("core", "netns-setup", trace.PhaseStartup)
	err := f.env.HV.SetupNetwork(vm, st.snap.GuestIP, inv.Clock)
	inv.FinishSpan()
	if err != nil {
		inv.Breakdown.EndSpan(inv.Clock.Now())
		return err
	}
	vm.SetMMDS("fcID", st.fcID)
	vm.SetMMDS("topic", st.topic)
	return nil
}

// stageRevive rebuilds (fresh restore) or rebinds (pooled reuse) the
// guest runtime and its host bridge.
func (f *Framework) stageRevive(st *invokeState, inv *platform.Invocation, cl *lifecycle.Cleanup) error {
	if st.warm {
		// The runtime survived inside the paused VM; rebind its host
		// bridge to this invocation. The fireworks natives capture the
		// invocation and VM, so they must be reinstalled.
		st.instance.rt.SetClock(inv.Clock)
		st.instance.binding.Rebind(inv)
		f.installFireworksNatives(st.instance.rt, f.invokeBridge(st, inv))
		return nil
	}
	vm := st.instance.VM
	template := st.snap.GuestState.(*runtime.SnapshotTemplate)
	inv.StartSpan("core", "runtime-revive", trace.PhaseStartup)
	rt, err := runtime.NewFromSnapshot(template, inv.Clock)
	inv.FinishSpan()
	if err != nil {
		inv.Breakdown.EndSpan(inv.Clock.Now())
		return err
	}
	restoreSpan := inv.Clock.Since(st.startupMark)
	inv.Breakdown.Add(trace.PhaseStartup, "snapshot-restore", restoreSpan)
	inv.Breakdown.EndSpan(inv.Clock.Now())
	f.env.Metrics.Histogram("fireworks_restore_duration").
		ObserveDurationExemplar(restoreSpan, uint64(inv.Trace.TraceID()), inv.Clock.Now())

	binding := &platform.NativeBinding{
		Profile: f.profile,
		FS:      vm.FS,
		Couch:   f.env.Couch,
		Inv:     inv,
		Invoke: func(child string, childParams lang.Value, parent *platform.Invocation) (*platform.Invocation, error) {
			return f.Invoke(child, childParams, platform.InvokeOptions{Parent: parent})
		},
	}
	binding.Install(rt)
	f.installFireworksNatives(rt, f.invokeBridge(st, inv))
	st.instance.rt = rt
	st.instance.binding = binding
	return nil
}

// invokeBridge builds the per-invocation guest bridge: the fetchParams
// closure captures this invocation and VM (why pooled reuse reinstalls
// the natives instead of keeping the old ones).
func (f *Framework) invokeBridge(st *invokeState, inv *platform.Invocation) *fireworksBridge {
	vm := st.instance.VM
	return &fireworksBridge{
		defaultParams: st.inst.fn.DefaultParams,
		fetchParams: func() (lang.Value, error) {
			// The resumed clone identifies itself via MMDS, then reads
			// exactly one message from its topic (kafkacat -o -1 -c 1).
			inv.ChargeOther("mmds", vmm.CostMMDSAccess)
			topicName, ok := vm.MMDS("topic")
			if !ok {
				return nil, fmt.Errorf("fireworks: MMDS has no topic")
			}
			var msg msgbus.Message
			err := f.retrier.DoTraced(inv.Clock, inv.Trace, "param-fetch", func() error {
				m, cerr := f.env.Bus.ConsumeLatestTracedAt(topicName, inv.Clock.Now(), inv.Trace)
				if cerr != nil {
					return cerr
				}
				msg = m
				return nil
			})
			if err != nil {
				return nil, err
			}
			inv.ChargeOther("param-fetch", f.profile.NetOpBase+platform.PerKB(f.profile, len(msg.Value)))
			return runtime.DecodeJSON(msg.Value)
		},
	}
}

// stageExecute resumes the guest at the post-snapshot continuation
// (step ⑧).
func (f *Framework) stageExecute(st *invokeState, name string, inv *platform.Invocation, cl *lifecycle.Cleanup) error {
	rt := st.instance.rt
	attributedBefore := inv.Breakdown.Total()
	mark := inv.Clock.Now()
	inv.StartSpan("core", "exec", trace.PhaseExec)
	result, err := rt.Call("__fireworks_continue")
	span := inv.Clock.Since(mark)
	inv.FinishSpan()
	inv.Breakdown.Add(trace.PhaseExec, "exec", span-(inv.Breakdown.Total()-attributedBefore))
	if err != nil {
		return fmt.Errorf("fireworks: %s: %w", name, err)
	}
	inv.Result = result
	inv.Response = responseOrDefault(inv, result, f.profile)
	inv.Logs += rt.Stdout.String()
	rt.Stdout.Reset()
	inv.Mode = platform.ModeWarm // every Fireworks start behaves like (better than) warm
	inv.SandboxID = st.instance.VM.ID
	return nil
}

// stageRelease accounts copy-on-write dirtying, drops the snapshot pin,
// and disposes of the instance: retained, pooled for warm resume, or
// stopped. The topic is deleted even when the stop fails — the fix for
// the historical leak where a failed Stop left the topic behind.
func (f *Framework) stageRelease(st *invokeState, name string, inv *platform.Invocation, opts platform.InvokeOptions, cl *lifecycle.Cleanup) error {
	instance := st.instance
	vm := instance.VM
	rt := instance.rt
	if !instance.heapDirtied {
		// Execution dirties the heap pages of the shared image (CoW).
		vm.DirtyKind(mem.KindHeap, rt.Model.HeapPerInvokeBytes+st.inst.fn.DirtyBytesPerRun)
		// Numba re-links its duplicated MCJIT modules on resume, CoW-
		// splitting the JIT-code pages — the reason §5.5.2 sees no
		// post-JIT memory win for Python.
		if rt.Model.JITCodeDuplication > 1 {
			vm.DirtyKind(mem.KindJITCode, rt.JITCodeBytes())
		}
		instance.heapDirtied = true
	}
	if f.opts.REAPPrefetch && !st.warm && st.snap != nil && st.snap.WorkingSet() == nil {
		// First restored invocation of this snapshot: capture the REAP
		// working-set record from the fault telemetry now that
		// execution has dirtied its pages. Later restores replay it.
		rec := st.snap.RecordWorkingSet(vm)
		inv.Trace.Instant("snapshot", "ws-record", inv.Clock.Now(),
			events.A("image", name),
			events.A("chunks", fmt.Sprint(len(rec.ChunkIDs))),
			events.A("bytes", fmt.Sprint(rec.Bytes)))
	}
	if st.pinned {
		st.pinned = false
		f.env.Snaps.Unpin(name)
	}
	switch {
	case f.opts.RetainInstances:
		f.mu.Lock()
		f.instances[name] = append(f.instances[name], instance)
		f.mu.Unlock()
	case f.opts.WarmPool:
		// The topic is per-invocation: delete it before pooling so an
		// idle VM holds no queue. Pause, then park; a VM that cannot
		// pause is broken and dropped.
		f.env.Bus.DeleteTopic(instance.Topic)
		instance.Topic = ""
		if err := vm.Pause(); err != nil {
			_ = vm.Stop()
			return nil
		}
		inv.Trace.Instant("vmm", "pause", inv.Clock.Now(), events.A("vm", vm.ID))
		f.pool.Release(name, instance, opts.At)
	default:
		stopErr := vm.Stop()
		f.env.Bus.DeleteTopic(instance.Topic)
		if stopErr != nil {
			return stopErr
		}
		inv.Trace.Instant("vmm", "stop", inv.Clock.Now(), events.A("vm", vm.ID))
	}
	return nil
}

// discardInstance is the pool's eviction teardown: stop the microVM and
// delete any leftover topic.
func (f *Framework) discardInstance(in *Instance) {
	if in.VM.State() != vmm.StateStopped {
		_ = in.VM.Stop()
	}
	if in.Topic != "" {
		f.env.Bus.DeleteTopic(in.Topic)
	}
}

// ExpireIdle implements platform.Platform: reap pooled VMs idle past
// Options.PoolKeepAlive at workload-timeline position now.
func (f *Framework) ExpireIdle(now time.Duration) int {
	return f.pool.ExpireIdle(now)
}

// WarmCount implements platform.Platform: the idle pool size for a
// function.
func (f *Framework) WarmCount(name string) int {
	return f.pool.Count(name)
}

// Remove implements platform.Platform.
func (f *Framework) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.fns[name]; !ok {
		return fmt.Errorf("fireworks: no function %q", name)
	}
	for _, instance := range f.instances[name] {
		if err := instance.VM.Stop(); err != nil {
			return err
		}
		f.env.Bus.DeleteTopic(instance.Topic)
	}
	delete(f.instances, name)
	for _, pooled := range f.pool.DrainKey(name) {
		if err := pooled.VM.Stop(); err != nil {
			return err
		}
		if pooled.Topic != "" {
			f.env.Bus.DeleteTopic(pooled.Topic)
		}
	}
	f.env.Snaps.Remove(name)
	if f.env.RemoteSnaps != nil {
		f.env.RemoteSnaps.Delete(name)
	}
	delete(f.fns, name)
	return nil
}

// Spaces returns the address spaces of the function's retained and
// pooled instances (implements the experiment harness's
// MemoryReporter).
func (f *Framework) Spaces(name string) []*mem.Space {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []*mem.Space
	for _, instance := range f.instances[name] {
		out = append(out, instance.VM.Space())
	}
	for _, pooled := range f.pool.Guests(name) {
		out = append(out, pooled.VM.Space())
	}
	return out
}

// Instances returns the retained live instances of a function.
func (f *Framework) Instances(name string) []*Instance {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]*Instance{}, f.instances[name]...)
}

// StopInstances tears down all retained instances of a function.
func (f *Framework) StopInstances(name string) error {
	f.mu.Lock()
	instances := f.instances[name]
	delete(f.instances, name)
	f.mu.Unlock()
	for _, instance := range instances {
		if err := instance.VM.Stop(); err != nil {
			return err
		}
		f.env.Bus.DeleteTopic(instance.Topic)
	}
	return nil
}

// RegenerateSnapshot re-runs the install phase for a function,
// replacing its snapshot image. The paper's §6 proposes periodic
// regeneration to restore address-space layout entropy across clones.
func (f *Framework) RegenerateSnapshot(name string) (*platform.InstallReport, error) {
	f.mu.Lock()
	inst, ok := f.fns[name]
	f.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("fireworks: no function %q", name)
	}
	return f.Install(inst.fn)
}

// SnapshotInfo reports a function's snapshot size and sharer count.
func (f *Framework) SnapshotInfo(name string) (bytes uint64, sharers int, err error) {
	snap, err := f.env.Snaps.Get(name)
	if err != nil {
		return 0, 0, err
	}
	return snap.TotalBytes(), snap.Sharers(), nil
}

// fireworksBridge holds the install/invoke host callbacks exposed to
// the guest as __fireworks_* natives.
type fireworksBridge struct {
	defaultParams   map[string]any
	snapshotRequest func() error
	fetchParams     func() (lang.Value, error)
}

// installFireworksNatives binds the Fireworks host bridge into a guest.
func (f *Framework) installFireworksNatives(rt *runtime.Runtime, bridge *fireworksBridge) {
	natives := map[string]*lang.Native{
		"__fireworks_default_params": {
			Name: "__fireworks_default_params", Arity: 0,
			Fn: func(args []lang.Value) (lang.Value, error) {
				return platform.ParamsValue(bridge.defaultParams)
			},
		},
		"__fireworks_snapshot_request": {
			Name: "__fireworks_snapshot_request", Arity: 0,
			Fn: func(args []lang.Value) (lang.Value, error) {
				if bridge.snapshotRequest == nil {
					// Restored clones resume *after* the snapshot point;
					// the request is a no-op there.
					return nil, nil
				}
				return nil, bridge.snapshotRequest()
			},
		},
		"__fireworks_fetch_params": {
			Name: "__fireworks_fetch_params", Arity: 0,
			Fn: func(args []lang.Value) (lang.Value, error) {
				if bridge.fetchParams == nil {
					// During install the driver never reaches the fetch
					// (the host stops after the snapshot), but keep a
					// sane default for direct __fireworks_main runs.
					return platform.ParamsValue(bridge.defaultParams)
				}
				return bridge.fetchParams()
			},
		},
	}
	rt.InstallNatives(natives)
}

// responseOrDefault wraps a function result as the delivered response
// when the guest did not call http_respond itself.
func responseOrDefault(inv *platform.Invocation, result lang.Value, profile sandbox.Profile) *platform.Response {
	if inv.Response != nil {
		return inv.Response
	}
	body := lang.Format(result)
	inv.ChargeOther("response", profile.NetOpBase+platform.PerKB(profile, len(body)))
	return &platform.Response{Status: 200, Body: body}
}

// Statically assert the Platform contract.
var _ platform.Platform = (*Framework)(nil)
