package core_test

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/platform"
	"repro/internal/runtime"
	"repro/internal/snapshot"
	"repro/internal/workloads"
)

// faultyEnv builds an Env with a fault plane armed (no profiles yet —
// tests script faults explicitly) and a Framework with retries on.
func faultyEnv(t *testing.T, retry faults.RetryPolicy) (*platform.Env, *core.Framework, *faults.Plane) {
	t.Helper()
	plane := faults.NewPlane(1)
	env := platform.NewEnv(platform.EnvConfig{
		RemoteSnapshotStorage: true,
		Faults:                plane,
	})
	return env, core.New(env, core.Options{Retry: retry}), plane
}

func TestRetryMasksInjectedRestoreFault(t *testing.T) {
	env, fw, plane := faultyEnv(t, faults.DefaultRetryPolicy())
	w := workloads.Fact(runtime.LangNode)
	if _, err := fw.Install(w.Function); err != nil {
		t.Fatal(err)
	}
	// The next two restore attempts fail; the third succeeds.
	plane.Enqueue(faults.SiteVMMRestore, faults.KindError, faults.KindError)
	inv, err := fw.Invoke(w.Name, platform.MustParams(map[string]any{"n": 10, "rounds": 1}), platform.InvokeOptions{})
	if err != nil {
		t.Fatalf("retries did not mask injected restore faults: %v", err)
	}
	if inv.Result == nil {
		t.Fatal("no result")
	}
	if got := env.Metrics.Counter("retries_total").Value(); got < 2 {
		t.Fatalf("retries_total = %d, want >= 2", got)
	}
	if env.HV.VMCount() != 0 {
		t.Fatalf("%d VMs alive after retried invoke", env.HV.VMCount())
	}
}

func TestNoRetriesFailsFastOnInjectedFault(t *testing.T) {
	_, fw, plane := faultyEnv(t, faults.RetryPolicy{})
	w := workloads.Fact(runtime.LangNode)
	if _, err := fw.Install(w.Function); err != nil {
		t.Fatal(err)
	}
	plane.Enqueue(faults.SiteVMMRestore, faults.KindError)
	_, err := fw.Invoke(w.Name, platform.MustParams(map[string]any{"n": 10, "rounds": 1}), platform.InvokeOptions{})
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("err = %v, want injected fault surfaced", err)
	}
}

func TestPermanentErrorNotRetriedByPipeline(t *testing.T) {
	env, fw, _ := faultyEnv(t, faults.DefaultRetryPolicy())
	// No function installed: a permanent "no function" error must come
	// back without consuming any retry budget.
	_, err := fw.Invoke("ghost", platform.MustParams(nil), platform.InvokeOptions{})
	if err == nil {
		t.Fatal("invoke of uninstalled function succeeded")
	}
	if got := env.Metrics.Counter("retries_total").Value(); got != 0 {
		t.Fatalf("retries_total = %d for a permanent error", got)
	}
}

func TestRetryMasksInjectedRemoteFetchFault(t *testing.T) {
	env, fw, plane := faultyEnv(t, faults.DefaultRetryPolicy())
	w := workloads.Fact(runtime.LangNode)
	if _, err := fw.Install(w.Function); err != nil {
		t.Fatal(err)
	}
	// Evict the local image so the next invoke must hit remote storage,
	// then poison the first fetch attempt.
	env.Snaps.Remove(w.Name)
	plane.Enqueue(faults.SiteRemoteFetch, faults.KindCorruption)
	if _, err := fw.Invoke(w.Name, platform.MustParams(map[string]any{"n": 10, "rounds": 1}), platform.InvokeOptions{}); err != nil {
		t.Fatalf("retry did not mask corrupted fetch: %v", err)
	}
	if got := env.Metrics.Counter("snapshot_remote_fetches_total").Value(); got < 1 {
		t.Fatalf("snapshot_remote_fetches_total = %d, want >= 1", got)
	}
	if got := env.Metrics.Counter("fireworks_remote_fetch_total").Value(); got != 1 {
		t.Fatalf("fireworks_remote_fetch_total = %d, want 1", got)
	}
}

func TestStoreWedgedSurfacedDistinctly(t *testing.T) {
	plane := faults.NewPlane(1)
	w := workloads.Fact(runtime.LangNode)
	wedge := workloads.NetLatency(runtime.LangNode)
	// A budget that fits the base image plus exactly one function delta
	// wedges as soon as that function is pinned and a second one needs
	// the space (the base itself is never evictable while its delta is
	// resident).
	env := platform.NewEnv(platform.EnvConfig{
		SnapshotDiskBudget:    oneDeltaBudget(t, w.Function, wedge.Function),
		RemoteSnapshotStorage: true,
		Faults:                plane,
	})
	fw := core.New(env, core.Options{})
	if _, err := fw.Install(w.Function); err != nil {
		t.Fatal(err)
	}
	if err := env.Snaps.Pin(w.Name); err != nil {
		t.Fatal(err)
	}
	defer env.Snaps.Unpin(w.Name)
	_, err := fw.Install(wedge.Function)
	if !errors.Is(err, snapshot.ErrAllPinned) {
		t.Fatalf("err = %v, want ErrAllPinned in chain", err)
	}
	if got := env.Metrics.Counter("fireworks_store_wedged_total").Value(); got != 1 {
		t.Fatalf("fireworks_store_wedged_total = %d, want 1", got)
	}
}
