package core_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/runtime"
	"repro/internal/workloads"
)

// leakCheck asserts the environment is fully drained: no live microVMs,
// no network namespaces, no stray parameter topics beyond installs.
func leakCheck(t *testing.T, env *platform.Env) {
	t.Helper()
	if n := env.HV.VMCount(); n != 0 {
		t.Errorf("%d microVMs leaked", n)
	}
	if n := env.Router.NamespaceCount(); n != 0 {
		t.Errorf("%d network namespaces leaked", n)
	}
}

func TestGuestCrashCleansUp(t *testing.T) {
	env, fw := newFW(t, core.Options{})
	if _, err := fw.Install(platform.Function{
		Name:   "crasher",
		Source: `func main(params) { let x = params.d; return 1 / x; }`,
		Lang:   runtime.LangNode,
		// Priming must survive: default params avoid the crash.
		DefaultParams: map[string]any{"d": 1},
	}); err != nil {
		t.Fatal(err)
	}
	_, err := fw.Invoke("crasher", platform.MustParams(map[string]any{"d": 0}), platform.InvokeOptions{})
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("err = %v", err)
	}
	leakCheck(t, env)
	// The platform stays healthy: the next (valid) request works.
	inv, err := fw.Invoke("crasher", platform.MustParams(map[string]any{"d": 2}), platform.InvokeOptions{})
	if err != nil || inv.Result != int64(0) {
		t.Fatalf("recovery invoke: %v, %v", inv, err)
	}
	leakCheck(t, env)
}

func TestChainChildCrashCleansUpBothVMs(t *testing.T) {
	env, fw := newFW(t, core.Options{})
	if _, err := fw.Install(platform.Function{
		Name:          "child",
		Source:        `func main(params) { let l = []; return l[params.i]; }`,
		Lang:          runtime.LangNode,
		DefaultParams: map[string]any{"i": -1}, // priming: l[-1] of empty also fails...
	}); err == nil {
		// Priming runs main(default) which crashes -> install must fail
		// cleanly, not wedge the framework.
		t.Fatal("install of always-crashing function unexpectedly succeeded")
	}
	leakCheck(t, env)

	// A child that is fine when primed but crashes on demand.
	if _, err := fw.Install(platform.Function{
		Name:          "child",
		Source:        `func main(params) { if (params.boom == true) { return [][0]; } return "ok"; }`,
		Lang:          runtime.LangNode,
		DefaultParams: map[string]any{"boom": false},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Install(platform.Function{
		Name:          "parent",
		Source:        `func main(params) { return invoke("child", params); }`,
		Lang:          runtime.LangNode,
		DefaultParams: map[string]any{"boom": false},
	}); err != nil {
		t.Fatal(err)
	}
	_, err := fw.Invoke("parent", platform.MustParams(map[string]any{"boom": true}), platform.InvokeOptions{})
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("err = %v", err)
	}
	leakCheck(t, env)
}

func TestInstallFailuresLeaveNoResidue(t *testing.T) {
	env, fw := newFW(t, core.Options{})
	cases := []struct {
		name string
		fn   platform.Function
	}{
		{"syntax", platform.Function{Name: "bad", Source: "func main(", Lang: runtime.LangNode}},
		{"noEntry", platform.Function{Name: "bad", Source: "func other(p) { return p; }", Lang: runtime.LangNode}},
		{"primingCrash", platform.Function{Name: "bad",
			Source: `func main(params) { return 1 % 0; }`, Lang: runtime.LangNode}},
		{"reservedName", platform.Function{Name: "bad",
			Source: "func __fireworks_jit() {}\nfunc main(p) { return p; }", Lang: runtime.LangNode}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := fw.Install(tc.fn); err == nil {
				t.Fatal("install succeeded")
			}
			leakCheck(t, env)
			if env.Snaps.Has("bad") {
				t.Fatal("failed install left a snapshot")
			}
			if _, err := fw.Invoke("bad", platform.MustParams(nil), platform.InvokeOptions{}); err == nil {
				t.Fatal("failed install is invokable")
			}
		})
	}
}

func TestIPPoolExhaustionFailsCleanly(t *testing.T) {
	// A pool of 2 external IPs: the third concurrent instance cannot
	// get a namespace; the invoke must fail without leaking its VM,
	// its topic, or the queue message.
	env := platform.NewEnv(platform.EnvConfig{ExternalIPPool: 2})
	fw := core.New(env, core.Options{RetainInstances: true})
	w := workloads.NetLatency(runtime.LangNode)
	if _, err := fw.Install(w.Function); err != nil {
		t.Fatal(err)
	}
	params := platform.MustParams(nil)
	for i := 0; i < 2; i++ {
		if _, err := fw.Invoke(w.Name, params, platform.InvokeOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	_, err := fw.Invoke(w.Name, params, platform.InvokeOptions{})
	if err == nil || !strings.Contains(err.Error(), "exhausted") {
		t.Fatalf("err = %v", err)
	}
	// Two healthy instances remain; the failed one left nothing behind.
	if env.HV.VMCount() != 2 {
		t.Fatalf("VMs = %d, want the 2 healthy instances", env.HV.VMCount())
	}
	if err := fw.StopInstances(w.Name); err != nil {
		t.Fatal(err)
	}
	leakCheck(t, env)
	// With capacity released, invocation works again.
	if _, err := fw.Invoke(w.Name, params, platform.InvokeOptions{}); err != nil {
		t.Fatalf("post-recovery invoke: %v", err)
	}
}

func TestInstallSnapshotTooLargeForBudget(t *testing.T) {
	// A budget smaller than a single image: install must fail and tear
	// its VM down.
	env := platform.NewEnv(platform.EnvConfig{SnapshotDiskBudget: 50 << 20})
	fw := core.New(env, core.Options{})
	w := workloads.NetLatency(runtime.LangNode)
	_, err := fw.Install(w.Function)
	if err == nil || !strings.Contains(err.Error(), "exceeds store budget") {
		t.Fatalf("err = %v", err)
	}
	leakCheck(t, env)
}

// TestSoakMixedPlatforms is a deterministic soak: hundreds of mixed
// invocations (cold, warm, resumed, chained, failing) across platforms
// sharing one host, followed by a global leak check and the PSS
// conservation invariant.
func TestSoakMixedPlatforms(t *testing.T) {
	if testing.Short() {
		t.Skip("soak in -short mode")
	}
	env := platform.NewEnv(platform.EnvConfig{})
	fw := core.New(env, core.Options{})
	ow := platform.NewOpenWhisk(env)

	fact := workloads.Fact(runtime.LangNode)
	if _, err := fw.Install(fact.Function); err != nil {
		t.Fatal(err)
	}
	if _, err := ow.Install(fact.Function); err != nil {
		t.Fatal(err)
	}
	crash := platform.Function{
		Name:          "sometimes",
		Source:        `func main(params) { if (params.i % 7 == 3) { return 1 / 0; } return params.i; }`,
		Lang:          runtime.LangNode,
		DefaultParams: map[string]any{"i": 0},
	}
	if _, err := fw.Install(crash); err != nil {
		t.Fatal(err)
	}

	factParams := platform.MustParams(map[string]any{"n": 9999991, "rounds": 1})
	failures := 0
	for i := 0; i < 150; i++ {
		switch i % 3 {
		case 0:
			if _, err := fw.Invoke(fact.Name, factParams, platform.InvokeOptions{}); err != nil {
				t.Fatalf("iter %d fireworks: %v", i, err)
			}
		case 1:
			if _, err := ow.Invoke(fact.Name, factParams, platform.InvokeOptions{}); err != nil {
				t.Fatalf("iter %d openwhisk: %v", i, err)
			}
		case 2:
			_, err := fw.Invoke("sometimes",
				platform.MustParams(map[string]any{"i": i}), platform.InvokeOptions{})
			if i%7 == 3 && err == nil {
				t.Fatalf("iter %d should have failed", i)
			}
			if i%7 != 3 && err != nil {
				t.Fatalf("iter %d: %v", i, err)
			}
			if err != nil {
				failures++
			}
		}
	}
	if failures == 0 {
		t.Fatal("soak never exercised the failure path")
	}
	// Fireworks leaves nothing; OpenWhisk holds only its warm pool.
	if n := env.HV.VMCount(); n != 0 {
		t.Fatalf("%d microVMs alive after soak", n)
	}
	if n := env.Router.NamespaceCount(); n != 0 {
		t.Fatalf("%d namespaces alive after soak", n)
	}
	// The host still accounts for the warm container's memory and
	// nothing else unaccounted: removing the container drains it.
	if err := ow.Remove(fact.Name); err != nil {
		t.Fatal(err)
	}
	if used := env.Mem.Used(); used != 0 {
		t.Fatalf("%d bytes unaccounted after teardown", used)
	}
}
