package core_test

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/runtime"
	"repro/internal/snapshot"
	"repro/internal/workloads"
)

// busTopics returns the broker's live topic count; Fireworks topics are
// per-invocation, so outside RetainInstances the steady state is zero.
func busTopics(env *platform.Env) int { return env.Bus.TopicCount() }

func TestWarmPoolReusesInstance(t *testing.T) {
	env, fw := newFW(t, core.Options{WarmPool: true})
	w := workloads.Fact(runtime.LangNode)
	if _, err := fw.Install(w.Function); err != nil {
		t.Fatal(err)
	}
	params := platform.MustParams(map[string]any{"n": 101, "rounds": 1})
	first, err := fw.Invoke(w.Name, params, platform.InvokeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fw.WarmCount(w.Name) != 1 {
		t.Fatalf("pool holds %d after first invoke, want 1", fw.WarmCount(w.Name))
	}
	if busTopics(env) != 0 {
		t.Fatalf("%d topics alive while instance pooled, want 0", busTopics(env))
	}
	second, err := fw.Invoke(w.Name, params, platform.InvokeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if second.SandboxID != first.SandboxID {
		t.Fatalf("pooled reuse changed sandbox: %s -> %s", first.SandboxID, second.SandboxID)
	}
	if second.Result != first.Result {
		t.Fatalf("results differ across reuse: %v vs %v", first.Result, second.Result)
	}
	if got := env.Metrics.Counter("fireworks_warm_resume_total").Value(); got != 1 {
		t.Fatalf("fireworks_warm_resume_total = %d, want 1", got)
	}
	if got := env.Metrics.Counter("vmm_warm_resumes_total").Value(); got != 1 {
		t.Fatalf("vmm_warm_resumes_total = %d, want 1", got)
	}
	hits := env.Metrics.Counter(metrics.Name("lifecycle_pool_hits_total", "platform", "fireworks"))
	if hits.Value() != 1 {
		t.Fatalf("pool hits = %d, want 1", hits.Value())
	}
	// The warm path skips restore and netns: only one namespace was ever
	// created and it is still held by the pooled VM.
	if env.Router.NamespaceCount() != 1 {
		t.Fatalf("namespaces = %d, want the pooled VM's 1", env.Router.NamespaceCount())
	}
	if err := fw.Remove(w.Name); err != nil {
		t.Fatal(err)
	}
	leakCheck(t, env)
	if busTopics(env) != 0 {
		t.Fatalf("%d topics alive after Remove", busTopics(env))
	}
}

func TestWarmPoolKeepAliveExpiry(t *testing.T) {
	env, fw := newFW(t, core.Options{WarmPool: true, PoolKeepAlive: 10 * time.Minute})
	w := workloads.Fact(runtime.LangNode)
	if _, err := fw.Install(w.Function); err != nil {
		t.Fatal(err)
	}
	params := platform.MustParams(map[string]any{"n": 101, "rounds": 1})
	if _, err := fw.Invoke(w.Name, params, platform.InvokeOptions{At: 0}); err != nil {
		t.Fatal(err)
	}
	if n := fw.ExpireIdle(5 * time.Minute); n != 0 {
		t.Fatalf("reaped %d within keep-alive, want 0", n)
	}
	if fw.WarmCount(w.Name) != 1 {
		t.Fatal("pooled VM gone before its keep-alive")
	}
	if n := fw.ExpireIdle(11 * time.Minute); n != 1 {
		t.Fatalf("reaped %d past keep-alive, want 1", n)
	}
	if fw.WarmCount(w.Name) != 0 {
		t.Fatal("expired VM still pooled")
	}
	leakCheck(t, env)
	// Acquire also expires lazily: a request far past the keep-alive
	// must restore fresh, not resume a stale VM.
	if _, err := fw.Invoke(w.Name, params, platform.InvokeOptions{At: 30 * time.Minute}); err != nil {
		t.Fatal(err)
	}
	inv, err := fw.Invoke(w.Name, params, platform.InvokeOptions{At: 55 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	_ = inv
	if got := env.Metrics.Counter("fireworks_warm_resume_total").Value(); got != 0 {
		t.Fatalf("stale pool entries served %d warm resumes", got)
	}
}

func TestWarmPoolCapacityBoundsResidency(t *testing.T) {
	env, fw := newFW(t, core.Options{WarmPool: true, PoolCapacity: 1})
	w := workloads.Fact(runtime.LangNode)
	if _, err := fw.Install(w.Function); err != nil {
		t.Fatal(err)
	}
	params := platform.MustParams(map[string]any{"n": 101, "rounds": 1})
	const parallel = 6
	var wg sync.WaitGroup
	errs := make(chan error, parallel)
	for i := 0; i < parallel; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := fw.Invoke(w.Name, params, platform.InvokeOptions{}); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if fw.WarmCount(w.Name) != 1 {
		t.Fatalf("pool holds %d, want capacity 1", fw.WarmCount(w.Name))
	}
	// Rejected releases were stopped, not leaked: only the pooled VM
	// remains live, and no per-invocation topic survived.
	if env.HV.VMCount() != 1 {
		t.Fatalf("VMs = %d, want the 1 pooled", env.HV.VMCount())
	}
	if busTopics(env) != 0 {
		t.Fatalf("%d topics leaked", busTopics(env))
	}
	if err := fw.Remove(w.Name); err != nil {
		t.Fatal(err)
	}
	leakCheck(t, env)
}

func TestWarmPoolCrashDropsPooledVM(t *testing.T) {
	env, fw := newFW(t, core.Options{WarmPool: true})
	if _, err := fw.Install(platform.Function{
		Name:          "crasher",
		Source:        `func main(params) { let x = params.d; return 1 / x; }`,
		Lang:          runtime.LangNode,
		DefaultParams: map[string]any{"d": 1},
	}); err != nil {
		t.Fatal(err)
	}
	// Seed the pool with a healthy run, then crash inside the pooled VM:
	// the pipeline unwind must stop it and delete the topic.
	if _, err := fw.Invoke("crasher", platform.MustParams(map[string]any{"d": 2}), platform.InvokeOptions{}); err != nil {
		t.Fatal(err)
	}
	if fw.WarmCount("crasher") != 1 {
		t.Fatal("pool not seeded")
	}
	_, err := fw.Invoke("crasher", platform.MustParams(map[string]any{"d": 0}), platform.InvokeOptions{})
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("err = %v", err)
	}
	if fw.WarmCount("crasher") != 0 {
		t.Fatal("crashed VM returned to the pool")
	}
	leakCheck(t, env)
	if busTopics(env) != 0 {
		t.Fatalf("%d topics leaked by crashed warm invoke", busTopics(env))
	}
	// The platform recovers with a fresh restore.
	if _, err := fw.Invoke("crasher", platform.MustParams(map[string]any{"d": 2}), platform.InvokeOptions{}); err != nil {
		t.Fatal(err)
	}
}

// TestFailedInvocationLeaksNothing proves the satellite fix: whatever
// stage an invocation dies in, no msgbus topic and no running microVM
// survives it.
func TestFailedInvocationLeaksNothing(t *testing.T) {
	t.Run("executeCrash", func(t *testing.T) {
		env, fw := newFW(t, core.Options{})
		if _, err := fw.Install(platform.Function{
			Name:          "crasher",
			Source:        `func main(params) { return 1 % params.m; }`,
			Lang:          runtime.LangNode,
			DefaultParams: map[string]any{"m": 1},
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := fw.Invoke("crasher", platform.MustParams(map[string]any{"m": 0}), platform.InvokeOptions{}); err == nil {
			t.Fatal("crash survived")
		}
		leakCheck(t, env)
		if busTopics(env) != 0 {
			t.Fatalf("%d topics leaked by execute failure", busTopics(env))
		}
	})
	t.Run("netnsExhausted", func(t *testing.T) {
		// Two retained instances hold the only external IPs; the third
		// invocation fails at netns setup after its topic was created.
		env := platform.NewEnv(platform.EnvConfig{ExternalIPPool: 2})
		fw := core.New(env, core.Options{RetainInstances: true})
		w := workloads.NetLatency(runtime.LangNode)
		if _, err := fw.Install(w.Function); err != nil {
			t.Fatal(err)
		}
		params := platform.MustParams(nil)
		for i := 0; i < 2; i++ {
			if _, err := fw.Invoke(w.Name, params, platform.InvokeOptions{}); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := fw.Invoke(w.Name, params, platform.InvokeOptions{}); err == nil {
			t.Fatal("third invoke got a namespace")
		}
		// Only the two retained instances' topics remain; the failed
		// invocation's topic and VM are gone.
		if busTopics(env) != 2 {
			t.Fatalf("topics = %d, want the 2 retained", busTopics(env))
		}
		if env.HV.VMCount() != 2 {
			t.Fatalf("VMs = %d, want the 2 retained", env.HV.VMCount())
		}
		if err := fw.StopInstances(w.Name); err != nil {
			t.Fatal(err)
		}
		leakCheck(t, env)
		if busTopics(env) != 0 {
			t.Fatalf("%d topics after StopInstances", busTopics(env))
		}
	})
	t.Run("snapshotEvicted", func(t *testing.T) {
		a := workloads.Fact(runtime.LangNode)
		b := workloads.NetLatency(runtime.LangNode)
		env := platform.NewEnv(platform.EnvConfig{
			SnapshotDiskBudget: oneDeltaBudget(t, a.Function, b.Function),
		})
		fw := core.New(env, core.Options{})
		if _, err := fw.Install(a.Function); err != nil {
			t.Fatal(err)
		}
		if _, err := fw.Install(b.Function); err != nil {
			t.Fatal(err)
		}
		if _, err := fw.Invoke(a.Name, platform.MustParams(nil), platform.InvokeOptions{}); err == nil {
			t.Fatal("evicted function invoked")
		}
		leakCheck(t, env)
		if busTopics(env) != 0 {
			t.Fatalf("%d topics leaked by snapshot-get failure", busTopics(env))
		}
	})
}

// TestConcurrentWarmPoolInvocations is the -race regression test: many
// goroutines share one warm pool; reuse happens (hit counter > 0), no
// instance serves two invocations at once, and nothing leaks.
func TestConcurrentWarmPoolInvocations(t *testing.T) {
	env, fw := newFW(t, core.Options{WarmPool: true})
	w := workloads.Fact(runtime.LangNode)
	if _, err := fw.Install(w.Function); err != nil {
		t.Fatal(err)
	}
	const workers = 16
	const rounds = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers*rounds)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(n int64) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				inv, err := fw.Invoke(w.Name,
					platform.MustParams(map[string]any{"n": 95 + n, "rounds": 1}),
					platform.InvokeOptions{})
				if err != nil {
					errs <- err
					return
				}
				if inv.Result == nil {
					errs <- errors.New("nil result")
					return
				}
			}
		}(int64(i))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := env.Metrics.Counter("fireworks_warm_resume_total").Value(); got == 0 {
		t.Fatal("concurrent invocations never reused the pool")
	}
	if busTopics(env) != 0 {
		t.Fatalf("%d topics leaked", busTopics(env))
	}
	// Every live VM is pooled (paused), none running.
	if env.HV.VMCount() != fw.WarmCount(w.Name) {
		t.Fatalf("VMs = %d but pool holds %d", env.HV.VMCount(), fw.WarmCount(w.Name))
	}
	if err := fw.Remove(w.Name); err != nil {
		t.Fatal(err)
	}
	leakCheck(t, env)
}

// TestConcurrentRetainInstances races parallel invokes with
// RetainInstances on: every invocation must retain exactly one live
// instance and keep its topic until StopInstances.
func TestConcurrentRetainInstances(t *testing.T) {
	env, fw := newFW(t, core.Options{RetainInstances: true})
	w := workloads.Fact(runtime.LangNode)
	if _, err := fw.Install(w.Function); err != nil {
		t.Fatal(err)
	}
	const parallel = 12
	var wg sync.WaitGroup
	errs := make(chan error, parallel)
	for i := 0; i < parallel; i++ {
		wg.Add(1)
		go func(n int64) {
			defer wg.Done()
			if _, err := fw.Invoke(w.Name,
				platform.MustParams(map[string]any{"n": 95 + n, "rounds": 1}),
				platform.InvokeOptions{}); err != nil {
				errs <- err
			}
		}(int64(i))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := len(fw.Instances(w.Name)); got != parallel {
		t.Fatalf("retained %d instances, want %d", got, parallel)
	}
	if busTopics(env) != parallel {
		t.Fatalf("topics = %d, want one per retained instance", busTopics(env))
	}
	if err := fw.StopInstances(w.Name); err != nil {
		t.Fatal(err)
	}
	leakCheck(t, env)
	if busTopics(env) != 0 {
		t.Fatalf("%d topics after StopInstances", busTopics(env))
	}
}

// TestPinnedImageBlocksEvictionMidRestore: while an invocation holds a
// pin on its image (simulating a concurrent mid-restore), the remote
// re-fetch of another function cannot evict it — the Put fails with
// ErrAllPinned and the failed invocation leaks nothing. Releasing the
// pin lets the re-fetch succeed.
func TestPinnedImageBlocksEvictionMidRestore(t *testing.T) {
	a := workloads.Fact(runtime.LangNode)
	b := workloads.NetLatency(runtime.LangNode)
	env := platform.NewEnv(platform.EnvConfig{
		SnapshotDiskBudget:    oneDeltaBudget(t, a.Function, b.Function), // one delta at a time
		RemoteSnapshotStorage: true,
	})
	fw := core.New(env, core.Options{})
	if _, err := fw.Install(a.Function); err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Install(b.Function); err != nil {
		t.Fatal(err)
	}
	// b's install evicted a locally; b is the only resident image. Pin
	// it the way a concurrent invocation mid-restore would.
	if err := env.Snaps.Pin(b.Name); err != nil {
		t.Fatal(err)
	}
	_, err := fw.Invoke(a.Name, platform.MustParams(map[string]any{"n": 35, "rounds": 1}), platform.InvokeOptions{})
	if !errors.Is(err, snapshot.ErrAllPinned) {
		t.Fatalf("err = %v, want ErrAllPinned", err)
	}
	leakCheck(t, env)
	if busTopics(env) != 0 {
		t.Fatalf("%d topics leaked", busTopics(env))
	}
	env.Snaps.Unpin(b.Name)
	if _, err := fw.Invoke(a.Name, platform.MustParams(map[string]any{"n": 35, "rounds": 1}), platform.InvokeOptions{}); err != nil {
		t.Fatalf("invoke after unpin: %v", err)
	}
	if env.RemoteSnaps.Fetches() < 2 {
		t.Fatalf("fetches = %d, want one per attempt", env.RemoteSnaps.Fetches())
	}
}

// TestConcurrentEvictionPressure thrashes two functions whose images
// cannot coexist locally, under -race: the only acceptable failure is
// ErrAllPinned (an in-use image cannot be evicted), and the host drains
// completely afterwards.
func TestConcurrentEvictionPressure(t *testing.T) {
	a := workloads.Fact(runtime.LangNode)
	b := workloads.NetLatency(runtime.LangNode)
	env := platform.NewEnv(platform.EnvConfig{
		SnapshotDiskBudget:    oneDeltaBudget(t, a.Function, b.Function),
		RemoteSnapshotStorage: true,
	})
	fw := core.New(env, core.Options{})
	if _, err := fw.Install(a.Function); err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Install(b.Function); err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const rounds = 4
	var wg sync.WaitGroup
	errs := make(chan error, workers*rounds)
	for i := 0; i < workers; i++ {
		name := a.Name
		params := platform.MustParams(map[string]any{"n": 35, "rounds": 1})
		if i%2 == 1 {
			name = b.Name
			params = platform.MustParams(nil)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if _, err := fw.Invoke(name, params, platform.InvokeOptions{}); err != nil {
					errs <- err
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if !errors.Is(err, snapshot.ErrAllPinned) {
			t.Fatal(err)
		}
	}
	leakCheck(t, env)
	if busTopics(env) != 0 {
		t.Fatalf("%d topics leaked", busTopics(env))
	}
	// Both functions still work serially once the pressure is gone.
	if _, err := fw.Invoke(a.Name, platform.MustParams(map[string]any{"n": 35, "rounds": 1}), platform.InvokeOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Invoke(b.Name, platform.MustParams(nil), platform.InvokeOptions{}); err != nil {
		t.Fatal(err)
	}
}
