package core_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/runtime"
	"repro/internal/workloads"
)

func newFW(t *testing.T, opts core.Options) (*platform.Env, *core.Framework) {
	t.Helper()
	env := platform.NewEnv(platform.EnvConfig{})
	return env, core.New(env, opts)
}

// probeDeltaSizes installs both workloads into a throwaway unbounded
// env and measures, in chunk-pool bytes, the shared base-runtime image
// and each function's private delta. Budget-sensitive tests derive
// their store budgets from these instead of hardcoding image sizes:
// under content dedup the pool cost of a second same-language function
// is its delta, not another full image.
func probeDeltaSizes(t *testing.T, a, b platform.Function) (base, da, db uint64) {
	t.Helper()
	env := platform.NewEnv(platform.EnvConfig{})
	fw := core.New(env, core.Options{})
	if _, err := fw.Install(a); err != nil {
		t.Fatal(err)
	}
	u1 := env.Snaps.UsedBytes()
	baseSnap, err := env.Snaps.Get(core.BaseImageName(a.Lang))
	if err != nil {
		t.Fatal(err)
	}
	base = baseSnap.Manifest().UniqueBytes()
	da = u1 - base
	if _, err := fw.Install(b); err != nil {
		t.Fatal(err)
	}
	db = env.Snaps.UsedBytes() - u1
	if base == 0 || da == 0 || db == 0 {
		t.Fatalf("degenerate probe: base=%d da=%d db=%d", base, da, db)
	}
	return base, da, db
}

// oneDeltaBudget returns a store budget that admits the shared base
// image plus either function's delta, but not both deltas at once — the
// chunked-store analog of the old "budget fits one image at a time".
func oneDeltaBudget(t *testing.T, a, b platform.Function) uint64 {
	t.Helper()
	base, da, db := probeDeltaSizes(t, a, b)
	return base + da + db - 1
}

func TestInstallCreatesPostJITSnapshot(t *testing.T) {
	env, fw := newFW(t, core.Options{})
	w := workloads.Fact(runtime.LangPython)
	report, err := fw.Install(w.Function)
	if err != nil {
		t.Fatal(err)
	}
	if report.SnapshotBytes == 0 {
		t.Fatal("no snapshot bytes recorded")
	}
	if len(report.JITCompiled) == 0 {
		t.Fatal("install compiled nothing; post-JIT snapshot is empty of code")
	}
	if !env.Snaps.Has(w.Name) {
		t.Fatal("snapshot not in store")
	}
	if report.Duration <= 0 {
		t.Fatal("install charged no time")
	}
	// §5.1: snapshot creation (excluding package install / priming) is
	// sub-second; whole install includes pip and stays within seconds.
	if report.Duration > 30*time.Second {
		t.Fatalf("install took %v, implausible", report.Duration)
	}
	// Install must not leak the install VM.
	if env.HV.VMCount() != 0 {
		t.Fatalf("%d VMs alive after install", env.HV.VMCount())
	}
}

func TestInvokeResumesSnapshot(t *testing.T) {
	env, fw := newFW(t, core.Options{})
	w := workloads.Fact(runtime.LangNode)
	if _, err := fw.Install(w.Function); err != nil {
		t.Fatal(err)
	}
	inv, err := fw.Invoke(w.Name, platform.MustParams(map[string]any{"n": 101, "rounds": 3}), platform.InvokeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if inv.Result == nil {
		t.Fatal("no result")
	}
	if inv.Response == nil || inv.Response.Status != 200 {
		t.Fatalf("bad response: %+v", inv.Response)
	}
	if !strings.Contains(inv.Response.Body, "factored 3 ints") {
		t.Fatalf("unexpected body %q", inv.Response.Body)
	}
	// Start-up must be snapshot-scale (~12 ms), nowhere near a boot.
	if su := inv.Breakdown.Startup(); su > 50*time.Millisecond || su <= 0 {
		t.Fatalf("startup = %v, want ~12ms", su)
	}
	if inv.Breakdown.Exec() <= 0 {
		t.Fatal("no exec time recorded")
	}
	// Default: instances are torn down after the invocation.
	if env.HV.VMCount() != 0 {
		t.Fatalf("%d VMs alive after invoke", env.HV.VMCount())
	}
}

func TestInvokeUsesJITFromSnapshot(t *testing.T) {
	// The same workload on Fireworks (post-JIT) must execute
	// dramatically faster than a Python cold start on a baseline,
	// because the snapshot contains Numba-compiled code.
	env := platform.NewEnv(platform.EnvConfig{})
	fw := core.New(env, core.Options{})
	fc := platform.NewFirecracker(env, platform.FCNoSnapshot)
	w := workloads.Fact(runtime.LangPython)
	if _, err := fw.Install(w.Function); err != nil {
		t.Fatal(err)
	}
	if _, err := fc.Install(w.Function); err != nil {
		t.Fatal(err)
	}
	params := platform.MustParams(map[string]any{"n": 9999991, "rounds": 10})
	fwInv, err := fw.Invoke(w.Name, params, platform.InvokeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fcInv, err := fc.Invoke(w.Name, params, platform.InvokeOptions{Mode: platform.ModeCold})
	if err != nil {
		t.Fatal(err)
	}
	if fwInv.Result != fcInv.Result {
		t.Fatalf("results differ: fireworks=%v firecracker=%v", fwInv.Result, fcInv.Result)
	}
	execRatio := float64(fcInv.Breakdown.Exec()) / float64(fwInv.Breakdown.Exec())
	if execRatio < 5 {
		t.Fatalf("python exec speedup = %.1fx, want >5x (interp vs Numba-JITted)", execRatio)
	}
	startRatio := float64(fcInv.Breakdown.Startup()) / float64(fwInv.Breakdown.Startup())
	if startRatio < 30 {
		t.Fatalf("startup speedup = %.1fx, want >30x (boot vs snapshot restore)", startRatio)
	}
}

func TestRetainInstancesSharesMemory(t *testing.T) {
	env, fw := newFW(t, core.Options{RetainInstances: true})
	w := workloads.Fact(runtime.LangNode)
	if _, err := fw.Install(w.Function); err != nil {
		t.Fatal(err)
	}
	params := platform.MustParams(map[string]any{"n": 101, "rounds": 2})
	const n = 8
	for i := 0; i < n; i++ {
		if _, err := fw.Invoke(w.Name, params, platform.InvokeOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	instances := fw.Instances(w.Name)
	if len(instances) != n {
		t.Fatalf("retained %d instances, want %d", len(instances), n)
	}
	_, sharers, err := fw.SnapshotInfo(w.Name)
	if err != nil {
		t.Fatal(err)
	}
	if sharers != n {
		t.Fatalf("snapshot sharers = %d, want %d", sharers, n)
	}
	// PSS of a sharing instance must be far below its RSS.
	sp := instances[0].VM.Space()
	if pss, rss := sp.PSS(), sp.RSS(); pss > 0.6*float64(rss) {
		t.Fatalf("PSS %.0f not much below RSS %d; snapshot pages not shared", pss, rss)
	}
	if err := fw.StopInstances(w.Name); err != nil {
		t.Fatal(err)
	}
	if env.HV.VMCount() != 0 {
		t.Fatalf("%d VMs alive after StopInstances", env.HV.VMCount())
	}
}

func TestFunctionChainsShareBreakdown(t *testing.T) {
	env, fw := newFW(t, core.Options{})
	_ = env
	for _, w := range workloads.AlexaSkills() {
		// Install skills before the frontend so priming chains resolve.
		defer func(name string) { _ = fw.Remove(name) }(w.Name)
	}
	apps := workloads.AlexaSkills()
	for i := len(apps) - 1; i >= 0; i-- { // skills first, frontend last
		if _, err := fw.Install(apps[i].Function); err != nil {
			t.Fatalf("install %s: %v", apps[i].Name, err)
		}
	}
	inv, err := fw.Invoke(workloads.NameAlexaFrontend,
		platform.MustParams(map[string]any{"text": "remind me about the dentist", "action": "add",
			"id": "d1", "item": "dentist", "place": "clinic", "url": "https://cal/d1"}),
		platform.InvokeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(inv.Response.Body, "reminder") {
		t.Fatalf("frontend did not dispatch to reminder: %s", inv.Response.Body)
	}
	// The chain ran two functions; combined start-up covers two resumes.
	if inv.Breakdown.Startup() < 15*time.Millisecond {
		t.Fatalf("chain startup %v too small for two snapshot resumes", inv.Breakdown.Startup())
	}
}

func TestSnapshotEvictionSurfacesError(t *testing.T) {
	a := workloads.Fact(runtime.LangNode)
	b := workloads.NetLatency(runtime.LangNode)
	env := platform.NewEnv(platform.EnvConfig{
		SnapshotDiskBudget: oneDeltaBudget(t, a.Function, b.Function),
	})
	fw := core.New(env, core.Options{})
	if _, err := fw.Install(a.Function); err != nil {
		t.Fatal(err)
	}
	// Installing b evicts a: the budget fits the shared base image plus
	// one function delta, not two.
	if _, err := fw.Install(b.Function); err != nil {
		t.Fatal(err)
	}
	if env.Snaps.Evictions() == 0 {
		t.Fatal("no evictions under a tight budget")
	}
	_, err := fw.Invoke(a.Name, platform.MustParams(nil), platform.InvokeOptions{})
	if err == nil || !strings.Contains(err.Error(), "reinstall") {
		t.Fatalf("err = %v, want eviction error", err)
	}
	// Reinstall regenerates the snapshot and invocation works again.
	if _, err := fw.RegenerateSnapshot(a.Name); err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Invoke(a.Name, platform.MustParams(map[string]any{"n": 35, "rounds": 1}), platform.InvokeOptions{}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentInvocations(t *testing.T) {
	// Many goroutines resume the same snapshot at once: unique fcIDs,
	// unique topics, isolated namespaces, correct results.
	env, fw := newFW(t, core.Options{})
	w := workloads.Fact(runtime.LangNode)
	if _, err := fw.Install(w.Function); err != nil {
		t.Fatal(err)
	}
	const parallel = 24
	var wg sync.WaitGroup
	errs := make(chan error, parallel)
	sandboxes := make(chan string, parallel)
	for i := 0; i < parallel; i++ {
		wg.Add(1)
		go func(n int64) {
			defer wg.Done()
			inv, err := fw.Invoke(w.Name,
				platform.MustParams(map[string]any{"n": 95 + n, "rounds": 1}),
				platform.InvokeOptions{})
			if err != nil {
				errs <- err
				return
			}
			if inv.Result == nil {
				errs <- fmt.Errorf("nil result")
				return
			}
			sandboxes <- inv.SandboxID
		}(int64(i))
	}
	wg.Wait()
	close(errs)
	close(sandboxes)
	for err := range errs {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for id := range sandboxes {
		if seen[id] {
			t.Fatalf("sandbox %s served two invocations", id)
		}
		seen[id] = true
	}
	if env.HV.VMCount() != 0 {
		t.Fatalf("%d VMs leaked", env.HV.VMCount())
	}
	if env.Router.NamespaceCount() != 0 {
		t.Fatalf("%d namespaces leaked", env.Router.NamespaceCount())
	}
}

func TestRegenerateSnapshotChangesLayoutSeed(t *testing.T) {
	// §6: clones of one snapshot share their address-space layout;
	// periodic regeneration restores entropy across generations.
	env, fw := newFW(t, core.Options{})
	w := workloads.NetLatency(runtime.LangNode)
	if _, err := fw.Install(w.Function); err != nil {
		t.Fatal(err)
	}
	first, err := env.Snaps.Get(w.Name)
	if err != nil {
		t.Fatal(err)
	}
	if first.LayoutSeed == 0 {
		t.Fatal("no layout seed")
	}
	if _, err := fw.RegenerateSnapshot(w.Name); err != nil {
		t.Fatal(err)
	}
	second, err := env.Snaps.Get(w.Name)
	if err != nil {
		t.Fatal(err)
	}
	if second == first {
		t.Fatal("regeneration kept the old image")
	}
	if second.LayoutSeed == first.LayoutSeed {
		t.Fatal("regenerated snapshot has the same layout (no fresh ASLR)")
	}
	// The function still works after regeneration.
	if _, err := fw.Invoke(w.Name, platform.MustParams(nil), platform.InvokeOptions{}); err != nil {
		t.Fatal(err)
	}
}

func TestRemoteStorageServesEvictedSnapshots(t *testing.T) {
	// §6 extension: with remote object storage behind the bounded local
	// store, an evicted snapshot costs a network fetch, not an error or
	// a reinstall — and with the content-addressed store, the fetch
	// moves only the function's delta: the base-runtime chunks are
	// still resident locally.
	a := workloads.Fact(runtime.LangNode)
	b := workloads.NetLatency(runtime.LangNode)
	env := platform.NewEnv(platform.EnvConfig{
		SnapshotDiskBudget:    oneDeltaBudget(t, a.Function, b.Function),
		RemoteSnapshotStorage: true,
	})
	fw := core.New(env, core.Options{})
	if _, err := fw.Install(a.Function); err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Install(b.Function); err != nil {
		t.Fatal(err)
	}
	if env.Snaps.Has(a.Name) {
		t.Fatal("a should be locally evicted by b's install")
	}
	inv, err := fw.Invoke(a.Name, platform.MustParams(map[string]any{"n": 35, "rounds": 1}),
		platform.InvokeOptions{})
	if err != nil {
		t.Fatalf("evicted function failed despite remote storage: %v", err)
	}
	// The fetch shows up in start-up — but as a delta transfer (a few
	// MiB of function heap/JIT), well below the ~200 ms a full
	// ~230 MiB image would cost.
	if su := inv.Breakdown.Startup(); su < 15*time.Millisecond || su > 100*time.Millisecond {
		t.Fatalf("startup with delta remote fetch = %v, want tens of ms", su)
	}
	if env.RemoteSnaps.Fetches() != 1 {
		t.Fatalf("fetches = %d", env.RemoteSnaps.Fetches())
	}
	// The image is cached locally again: the next invoke is faster
	// still (no fetch)...
	inv2, err := fw.Invoke(a.Name, platform.MustParams(map[string]any{"n": 35, "rounds": 1}),
		platform.InvokeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if inv2.Breakdown.Startup() > 50*time.Millisecond {
		t.Fatalf("second startup = %v, want local-resume speed", inv2.Breakdown.Startup())
	}
	if inv2.Breakdown.Startup() >= inv.Breakdown.Startup() {
		t.Fatalf("local resume %v not faster than fetch-assisted start %v",
			inv2.Breakdown.Startup(), inv.Breakdown.Startup())
	}
	// ...and b was evicted in turn, retrievable remotely as well.
	if _, err := fw.Invoke(b.Name, platform.MustParams(nil), platform.InvokeOptions{}); err != nil {
		t.Fatal(err)
	}
	// Remove cleans the remote copy too.
	if err := fw.Remove(a.Name); err != nil {
		t.Fatal(err)
	}
	if env.RemoteSnaps.Has(a.Name) {
		t.Fatal("remote copy survived Remove")
	}
}

func TestREAPPrefetchSpeedsRestore(t *testing.T) {
	// Record-and-prefetch semantics: the first restored invocation
	// demand-pages and records the working set; the second replays the
	// record with sequential reads and starts faster. A framework
	// without REAPPrefetch never records and every restore costs the
	// same.
	envA, fwA := newFW(t, core.Options{})
	envB, fwB := newFW(t, core.Options{REAPPrefetch: true})
	_ = envA
	w := workloads.NetLatency(runtime.LangNode)
	if _, err := fwA.Install(w.Function); err != nil {
		t.Fatal(err)
	}
	if _, err := fwB.Install(w.Function); err != nil {
		t.Fatal(err)
	}
	p := platform.MustParams(nil)
	a1, err := fwA.Invoke(w.Name, p, platform.InvokeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := fwA.Invoke(w.Name, p, platform.InvokeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if a2.Breakdown.Startup() != a1.Breakdown.Startup() {
		t.Fatalf("without REAP, startups differ: %v vs %v",
			a1.Breakdown.Startup(), a2.Breakdown.Startup())
	}
	b1, err := fwB.Invoke(w.Name, p, platform.InvokeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The first restore has no record yet: demand paging, same cost as
	// the non-REAP framework.
	if b1.Breakdown.Startup() != a1.Breakdown.Startup() {
		t.Fatalf("first REAP startup %v != demand-paged %v (record should not exist yet)",
			b1.Breakdown.Startup(), a1.Breakdown.Startup())
	}
	b2, err := fwB.Invoke(w.Name, p, platform.InvokeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if b2.Breakdown.Startup() >= b1.Breakdown.Startup() {
		t.Fatalf("REAP replay startup %v not faster than recording run %v",
			b2.Breakdown.Startup(), b1.Breakdown.Startup())
	}
	if got := envB.Metrics.Counter("fireworks_prefetch_replays_total").Value(); got != 1 {
		t.Fatalf("fireworks_prefetch_replays_total = %d, want 1", got)
	}
}
