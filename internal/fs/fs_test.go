package fs

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestWriteRead(t *testing.T) {
	m := NewMemFS()
	if err := m.WriteFile("/a/b/c.txt", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	data, err := m.ReadFile("/a/b/c.txt")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hello" {
		t.Fatalf("read %q", data)
	}
	// Paths normalize.
	if _, err := m.ReadFile("a/b/../b/c.txt"); err != nil {
		t.Fatalf("normalized path: %v", err)
	}
}

func TestReadMissing(t *testing.T) {
	m := NewMemFS()
	_, err := m.ReadFile("/nope")
	if !errors.Is(err, ErrNotExist) {
		t.Fatalf("err = %v", err)
	}
}

func TestOverwrite(t *testing.T) {
	m := NewMemFS()
	m.WriteFile("/f", []byte("one"))
	m.WriteFile("/f", []byte("two"))
	data, _ := m.ReadFile("/f")
	if string(data) != "two" {
		t.Fatalf("read %q", data)
	}
}

func TestAppend(t *testing.T) {
	m := NewMemFS()
	m.Append("/log", []byte("a"))
	m.Append("/log", []byte("b"))
	data, _ := m.ReadFile("/log")
	if string(data) != "ab" {
		t.Fatalf("read %q", data)
	}
}

func TestWriteOverDirFails(t *testing.T) {
	m := NewMemFS()
	m.Mkdir("/dir")
	if err := m.WriteFile("/dir", []byte("x")); !errors.Is(err, ErrIsDir) {
		t.Fatalf("err = %v", err)
	}
	if _, err := m.ReadFile("/dir"); !errors.Is(err, ErrIsDir) {
		t.Fatalf("read dir err = %v", err)
	}
}

func TestFileAsDirFails(t *testing.T) {
	m := NewMemFS()
	m.WriteFile("/f", []byte("x"))
	if err := m.WriteFile("/f/child", []byte("y")); !errors.Is(err, ErrNotDir) {
		t.Fatalf("err = %v", err)
	}
}

func TestStat(t *testing.T) {
	m := NewMemFS()
	m.WriteFile("/x/file", []byte("12345"))
	info, err := m.Stat("/x/file")
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "file" || info.Size != 5 || info.IsDir {
		t.Fatalf("info = %+v", info)
	}
	dir, err := m.Stat("/x")
	if err != nil || !dir.IsDir {
		t.Fatalf("dir stat = %+v err %v", dir, err)
	}
}

func TestRemove(t *testing.T) {
	m := NewMemFS()
	m.WriteFile("/f", []byte("x"))
	if err := m.Remove("/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReadFile("/f"); !errors.Is(err, ErrNotExist) {
		t.Fatal("file still present")
	}
	if err := m.Remove("/f"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("double remove err = %v", err)
	}
	// Non-empty directory refuses removal.
	m.WriteFile("/d/f", []byte("x"))
	if err := m.Remove("/d"); err == nil {
		t.Fatal("removed non-empty dir")
	}
}

func TestReadDir(t *testing.T) {
	m := NewMemFS()
	m.WriteFile("/d/b", []byte("1"))
	m.WriteFile("/d/a", []byte("22"))
	m.Mkdir("/d/sub")
	infos, err := m.ReadDir("/d")
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 3 {
		t.Fatalf("entries = %d", len(infos))
	}
	// Lexical order.
	if infos[0].Name != "a" || infos[1].Name != "b" || infos[2].Name != "sub" {
		t.Fatalf("order: %+v", infos)
	}
	if !infos[2].IsDir {
		t.Fatal("sub not a dir")
	}
}

func TestTotalBytes(t *testing.T) {
	m := NewMemFS()
	m.WriteFile("/a", make([]byte, 100))
	m.WriteFile("/d/b", make([]byte, 50))
	if m.TotalBytes() != 150 {
		t.Fatalf("TotalBytes = %d", m.TotalBytes())
	}
}

func TestWriteFileCopiesData(t *testing.T) {
	m := NewMemFS()
	buf := []byte("abc")
	m.WriteFile("/f", buf)
	buf[0] = 'X'
	data, _ := m.ReadFile("/f")
	if string(data) != "abc" {
		t.Fatal("stored data aliases caller buffer")
	}
	data[0] = 'Y'
	again, _ := m.ReadFile("/f")
	if string(again) != "abc" {
		t.Fatal("returned data aliases stored buffer")
	}
}

// TestWriteReadRoundTripProperty: anything written is read back intact
// under arbitrary (valid) names and contents.
func TestWriteReadRoundTripProperty(t *testing.T) {
	m := NewMemFS()
	f := func(name string, content []byte) bool {
		if name == "" {
			return true
		}
		// Build a safe single-segment path from arbitrary input.
		path := "/p-" + sanitize(name)
		if err := m.WriteFile(path, content); err != nil {
			return false
		}
		got, err := m.ReadFile(path)
		if err != nil {
			return false
		}
		return string(got) == string(content)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func sanitize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s) && i < 40; i++ {
		c := s[i]
		if c == '/' || c == 0 || c == '.' {
			c = '_'
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		out = append(out, 'x')
	}
	return string(out)
}
