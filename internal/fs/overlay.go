package fs

import (
	"errors"
	"fmt"
	"sync"
)

// Overlay is an overlayfs-style union filesystem: reads fall through from
// a writable upper layer to a read-only lower layer; writes always go to
// the upper layer (copy-up for appends); deletions of lower files are
// recorded as whiteouts. This models how an OpenWhisk container layers a
// writable scratch directory over the shared runtime image.
type Overlay struct {
	mu        sync.RWMutex
	upper     *MemFS
	lower     FS
	whiteouts map[string]bool
}

// NewOverlay returns an overlay with a fresh upper layer over lower.
func NewOverlay(lower FS) *Overlay {
	return &Overlay{
		upper:     NewMemFS(),
		lower:     lower,
		whiteouts: make(map[string]bool),
	}
}

// Upper returns the writable upper layer (e.g. to measure how much
// private data the container accumulated).
func (o *Overlay) Upper() *MemFS { return o.upper }

// WriteFile implements FS: writes always land in the upper layer.
func (o *Overlay) WriteFile(p string, data []byte) error {
	o.mu.Lock()
	delete(o.whiteouts, normalize(p))
	o.mu.Unlock()
	return o.upper.WriteFile(p, data)
}

// ReadFile implements FS.
func (o *Overlay) ReadFile(p string) ([]byte, error) {
	if o.deleted(p) {
		return nil, fmt.Errorf("read %s: %w", p, ErrNotExist)
	}
	data, err := o.upper.ReadFile(p)
	if err == nil {
		return data, nil
	}
	if !errors.Is(err, ErrNotExist) {
		return nil, err
	}
	return o.lower.ReadFile(p)
}

// Append implements FS, performing copy-up when the file only exists in
// the lower layer.
func (o *Overlay) Append(p string, data []byte) error {
	if o.deleted(p) {
		o.mu.Lock()
		delete(o.whiteouts, normalize(p))
		o.mu.Unlock()
		return o.upper.WriteFile(p, data)
	}
	if _, err := o.upper.Stat(p); errors.Is(err, ErrNotExist) {
		if lowerData, lerr := o.lower.ReadFile(p); lerr == nil {
			if werr := o.upper.WriteFile(p, lowerData); werr != nil {
				return werr
			}
		}
	}
	return o.upper.Append(p, data)
}

// Stat implements FS.
func (o *Overlay) Stat(p string) (FileInfo, error) {
	if o.deleted(p) {
		return FileInfo{}, fmt.Errorf("stat %s: %w", p, ErrNotExist)
	}
	info, err := o.upper.Stat(p)
	if err == nil {
		return info, nil
	}
	if !errors.Is(err, ErrNotExist) {
		return FileInfo{}, err
	}
	return o.lower.Stat(p)
}

// Remove implements FS. Removing a lower-layer file records a whiteout.
func (o *Overlay) Remove(p string) error {
	if o.deleted(p) {
		return fmt.Errorf("remove %s: %w", p, ErrNotExist)
	}
	upperErr := o.upper.Remove(p)
	_, lowerErr := o.lower.Stat(p)
	if lowerErr == nil {
		o.mu.Lock()
		o.whiteouts[normalize(p)] = true
		o.mu.Unlock()
		return nil
	}
	if upperErr != nil {
		return fmt.Errorf("remove %s: %w", p, ErrNotExist)
	}
	return nil
}

// Mkdir implements FS: directories are created in the upper layer.
func (o *Overlay) Mkdir(p string) error { return o.upper.Mkdir(p) }

// ReadDir implements FS, merging upper and lower entries (upper wins).
func (o *Overlay) ReadDir(p string) ([]FileInfo, error) {
	merged := make(map[string]FileInfo)
	if lowerEntries, err := o.lower.ReadDir(p); err == nil {
		for _, e := range lowerEntries {
			if !o.deleted(normalize(p) + "/" + e.Name) {
				merged[e.Name] = e
			}
		}
	}
	upperEntries, upperErr := o.upper.ReadDir(p)
	if upperErr == nil {
		for _, e := range upperEntries {
			merged[e.Name] = e
		}
	}
	if len(merged) == 0 && upperErr != nil {
		if _, err := o.lower.Stat(p); err != nil {
			return nil, upperErr
		}
	}
	out := make([]FileInfo, 0, len(merged))
	for _, e := range merged {
		out = append(out, e)
	}
	sortFileInfos(out)
	return out, nil
}

func (o *Overlay) deleted(p string) bool {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.whiteouts[normalize(p)]
}

func normalize(p string) string {
	parts := splitPath(p)
	if len(parts) == 0 {
		return "/"
	}
	return "/" + joinParts(parts)
}

func joinParts(parts []string) string {
	out := parts[0]
	for _, p := range parts[1:] {
		out += "/" + p
	}
	return out
}

func sortFileInfos(infos []FileInfo) {
	for i := 1; i < len(infos); i++ {
		for j := i; j > 0 && infos[j].Name < infos[j-1].Name; j-- {
			infos[j], infos[j-1] = infos[j-1], infos[j]
		}
	}
}
