// Package fs implements the in-memory virtual filesystem used by
// simulated guests and containers: a plain hierarchical FS plus an
// overlay filesystem (upper/lower with copy-up) matching how OpenWhisk
// containers layer a writable upper directory over a read-only image.
//
// The package stores data only; I/O *cost* is charged by the sandbox
// layer, which knows whether an operation crosses a 9p boundary
// (microVM), a Sentry/Gofer relay (gVisor), or goes straight to the host
// page cache (container).
package fs

import (
	"errors"
	"fmt"
	"path"
	"sort"
	"strings"
	"sync"
)

// Errors returned by filesystem operations.
var (
	ErrNotExist = errors.New("fs: file does not exist")
	ErrExist    = errors.New("fs: file already exists")
	ErrIsDir    = errors.New("fs: is a directory")
	ErrNotDir   = errors.New("fs: not a directory")
	ErrReadOnly = errors.New("fs: read-only filesystem")
)

// FileInfo describes a file or directory.
type FileInfo struct {
	Name  string
	Size  int64
	IsDir bool
}

// FS is the interface implemented by both the plain in-memory filesystem
// and the overlay filesystem.
type FS interface {
	// WriteFile creates or replaces the file at p with data, creating
	// parent directories as needed.
	WriteFile(p string, data []byte) error
	// ReadFile returns the contents of the file at p.
	ReadFile(p string) ([]byte, error)
	// Append appends data to the file at p, creating it if absent.
	Append(p string, data []byte) error
	// Stat describes the file or directory at p.
	Stat(p string) (FileInfo, error)
	// Remove deletes the file at p (not directories).
	Remove(p string) error
	// Mkdir creates the directory at p and any missing parents.
	Mkdir(p string) error
	// ReadDir lists the directory at p in lexical order.
	ReadDir(p string) ([]FileInfo, error)
}

// node is a file or directory in a MemFS.
type node struct {
	name     string
	isDir    bool
	data     []byte
	children map[string]*node
}

// MemFS is a plain in-memory filesystem. It is safe for concurrent use.
type MemFS struct {
	mu   sync.RWMutex
	root *node
}

// NewMemFS returns an empty filesystem with a root directory.
func NewMemFS() *MemFS {
	return &MemFS{root: &node{name: "/", isDir: true, children: make(map[string]*node)}}
}

// clean normalizes p to a rooted, slash-separated path and splits it.
func splitPath(p string) []string {
	p = path.Clean("/" + p)
	if p == "/" {
		return nil
	}
	return strings.Split(strings.TrimPrefix(p, "/"), "/")
}

func (m *MemFS) lookup(parts []string) (*node, error) {
	n := m.root
	for _, part := range parts {
		if !n.isDir {
			return nil, ErrNotDir
		}
		child, ok := n.children[part]
		if !ok {
			return nil, ErrNotExist
		}
		n = child
	}
	return n, nil
}

// mkdirAll walks/creates directories for parts and returns the last dir.
func (m *MemFS) mkdirAll(parts []string) (*node, error) {
	n := m.root
	for _, part := range parts {
		if !n.isDir {
			return nil, ErrNotDir
		}
		child, ok := n.children[part]
		if !ok {
			child = &node{name: part, isDir: true, children: make(map[string]*node)}
			n.children[part] = child
		}
		n = child
	}
	if !n.isDir {
		return nil, ErrNotDir
	}
	return n, nil
}

// WriteFile implements FS.
func (m *MemFS) WriteFile(p string, data []byte) error {
	parts := splitPath(p)
	if len(parts) == 0 {
		return ErrIsDir
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	dir, err := m.mkdirAll(parts[:len(parts)-1])
	if err != nil {
		return err
	}
	name := parts[len(parts)-1]
	if existing, ok := dir.children[name]; ok && existing.isDir {
		return ErrIsDir
	}
	dir.children[name] = &node{name: name, data: append([]byte(nil), data...)}
	return nil
}

// ReadFile implements FS.
func (m *MemFS) ReadFile(p string) ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	n, err := m.lookup(splitPath(p))
	if err != nil {
		return nil, fmt.Errorf("read %s: %w", p, err)
	}
	if n.isDir {
		return nil, ErrIsDir
	}
	return append([]byte(nil), n.data...), nil
}

// Append implements FS.
func (m *MemFS) Append(p string, data []byte) error {
	parts := splitPath(p)
	if len(parts) == 0 {
		return ErrIsDir
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	dir, err := m.mkdirAll(parts[:len(parts)-1])
	if err != nil {
		return err
	}
	name := parts[len(parts)-1]
	n, ok := dir.children[name]
	if !ok {
		n = &node{name: name}
		dir.children[name] = n
	}
	if n.isDir {
		return ErrIsDir
	}
	n.data = append(n.data, data...)
	return nil
}

// Stat implements FS.
func (m *MemFS) Stat(p string) (FileInfo, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	n, err := m.lookup(splitPath(p))
	if err != nil {
		return FileInfo{}, fmt.Errorf("stat %s: %w", p, err)
	}
	return FileInfo{Name: n.name, Size: int64(len(n.data)), IsDir: n.isDir}, nil
}

// Remove implements FS.
func (m *MemFS) Remove(p string) error {
	parts := splitPath(p)
	if len(parts) == 0 {
		return ErrIsDir
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	dir, err := m.lookup(parts[:len(parts)-1])
	if err != nil {
		return err
	}
	name := parts[len(parts)-1]
	n, ok := dir.children[name]
	if !ok {
		return ErrNotExist
	}
	if n.isDir && len(n.children) > 0 {
		return fmt.Errorf("remove %s: directory not empty", p)
	}
	delete(dir.children, name)
	return nil
}

// Mkdir implements FS.
func (m *MemFS) Mkdir(p string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, err := m.mkdirAll(splitPath(p))
	return err
}

// ReadDir implements FS.
func (m *MemFS) ReadDir(p string) ([]FileInfo, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	n, err := m.lookup(splitPath(p))
	if err != nil {
		return nil, fmt.Errorf("readdir %s: %w", p, err)
	}
	if !n.isDir {
		return nil, ErrNotDir
	}
	infos := make([]FileInfo, 0, len(n.children))
	for _, c := range n.children {
		infos = append(infos, FileInfo{Name: c.name, Size: int64(len(c.data)), IsDir: c.isDir})
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos, nil
}

// TotalBytes returns the sum of all file sizes, used to model disk usage
// of snapshot files and container images.
func (m *MemFS) TotalBytes() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var total int64
	var walk func(n *node)
	walk = func(n *node) {
		total += int64(len(n.data))
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(m.root)
	return total
}
