package fs

import (
	"errors"
	"testing"
)

func newOverlayWithLower(t *testing.T) (*Overlay, *MemFS) {
	t.Helper()
	lower := NewMemFS()
	if err := lower.WriteFile("/etc/conf", []byte("base-conf")); err != nil {
		t.Fatal(err)
	}
	if err := lower.WriteFile("/app/code.js", []byte("module")); err != nil {
		t.Fatal(err)
	}
	return NewOverlay(lower), lower
}

func TestOverlayReadThrough(t *testing.T) {
	o, _ := newOverlayWithLower(t)
	data, err := o.ReadFile("/etc/conf")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "base-conf" {
		t.Fatalf("read %q", data)
	}
}

func TestOverlayWriteShadowsLower(t *testing.T) {
	o, lower := newOverlayWithLower(t)
	o.WriteFile("/etc/conf", []byte("custom"))
	data, _ := o.ReadFile("/etc/conf")
	if string(data) != "custom" {
		t.Fatalf("read %q", data)
	}
	// Lower layer untouched.
	base, _ := lower.ReadFile("/etc/conf")
	if string(base) != "base-conf" {
		t.Fatal("lower layer mutated")
	}
}

func TestOverlayCopyUpOnAppend(t *testing.T) {
	o, lower := newOverlayWithLower(t)
	if err := o.Append("/etc/conf", []byte("+extra")); err != nil {
		t.Fatal(err)
	}
	data, _ := o.ReadFile("/etc/conf")
	if string(data) != "base-conf+extra" {
		t.Fatalf("read %q", data)
	}
	base, _ := lower.ReadFile("/etc/conf")
	if string(base) != "base-conf" {
		t.Fatal("append leaked into lower layer")
	}
}

func TestOverlayWhiteout(t *testing.T) {
	o, lower := newOverlayWithLower(t)
	if err := o.Remove("/etc/conf"); err != nil {
		t.Fatal(err)
	}
	if _, err := o.ReadFile("/etc/conf"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("read after whiteout: %v", err)
	}
	if _, err := o.Stat("/etc/conf"); !errors.Is(err, ErrNotExist) {
		t.Fatal("stat after whiteout")
	}
	// Lower file still exists underneath.
	if _, err := lower.ReadFile("/etc/conf"); err != nil {
		t.Fatal("lower file disappeared")
	}
	// Re-creating the file clears the whiteout.
	o.WriteFile("/etc/conf", []byte("reborn"))
	data, err := o.ReadFile("/etc/conf")
	if err != nil || string(data) != "reborn" {
		t.Fatalf("reborn read: %q %v", data, err)
	}
}

func TestOverlayAppendAfterWhiteout(t *testing.T) {
	o, _ := newOverlayWithLower(t)
	o.Remove("/etc/conf")
	// Append to a whiteout starts fresh, not from the lower content.
	o.Append("/etc/conf", []byte("new"))
	data, _ := o.ReadFile("/etc/conf")
	if string(data) != "new" {
		t.Fatalf("read %q", data)
	}
}

func TestOverlayRemoveUpperOnly(t *testing.T) {
	o, _ := newOverlayWithLower(t)
	o.WriteFile("/tmp/scratch", []byte("x"))
	if err := o.Remove("/tmp/scratch"); err != nil {
		t.Fatal(err)
	}
	if _, err := o.ReadFile("/tmp/scratch"); !errors.Is(err, ErrNotExist) {
		t.Fatal("upper file still readable")
	}
	if err := o.Remove("/tmp/scratch"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("double remove: %v", err)
	}
}

func TestOverlayReadDirMerges(t *testing.T) {
	o, _ := newOverlayWithLower(t)
	o.WriteFile("/etc/local", []byte("upper"))
	infos, err := o.ReadDir("/etc")
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("entries = %v", infos)
	}
	if infos[0].Name != "conf" || infos[1].Name != "local" {
		t.Fatalf("order: %v", infos)
	}
	// Whiteouts hide lower entries from listings.
	o.Remove("/etc/conf")
	infos, _ = o.ReadDir("/etc")
	if len(infos) != 1 || infos[0].Name != "local" {
		t.Fatalf("after whiteout: %v", infos)
	}
}

func TestOverlayUpperShadowsInReadDir(t *testing.T) {
	o, _ := newOverlayWithLower(t)
	o.WriteFile("/app/code.js", []byte("patched-module!"))
	infos, err := o.ReadDir("/app")
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Size != int64(len("patched-module!")) {
		t.Fatalf("infos = %v", infos)
	}
}

func TestOverlayStatFallsThrough(t *testing.T) {
	o, _ := newOverlayWithLower(t)
	info, err := o.Stat("/app/code.js")
	if err != nil || info.Size != int64(len("module")) {
		t.Fatalf("stat: %+v %v", info, err)
	}
}
