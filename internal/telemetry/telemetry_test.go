package telemetry

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/events"
	"repro/internal/metrics"
)

func newArmed(t *testing.T, cfg Config, shards int) (*TailSampler, *events.Journal, *metrics.Registry) {
	t.Helper()
	j := events.NewJournalShards(1<<12, shards)
	reg := metrics.NewRegistry()
	ts := New(cfg)
	ts.Attach(j, reg)
	return ts, j, reg
}

// closeTrace runs one whole trace: root begin at t0, root end at t1.
func closeTrace(j *events.Journal, t0, t1 time.Duration, attrs ...events.Attr) events.TraceID {
	sc := j.NewScope("core", "invoke", t0)
	sc.Close(t1, attrs...)
	return sc.TraceID()
}

func TestErrorTraceAlwaysKept(t *testing.T) {
	ts, j, reg := newArmed(t, Config{Seed: 1, KeepRate: -1}, 16)
	id := closeTrace(j, 0, time.Millisecond, events.A("error", "boom"))
	if len(j.Trace(id)) == 0 {
		t.Fatal("errored trace was dropped")
	}
	if got := reg.Counter(metrics.Name("telemetry_traces_total", "decision", "keep", "policy", PolicyError)).Value(); got != 1 {
		t.Fatalf("keep{error} = %d, want 1", got)
	}
	st := ts.Stats()
	if st.KeptTraces != 1 || st.DroppedTraces != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFaultTraceAlwaysKept(t *testing.T) {
	_, j, _ := newArmed(t, Config{Seed: 1, KeepRate: -1}, 16)
	sc := j.NewScope("core", "invoke", 0)
	sc.Instant("faults", "vmm-restore", 1, events.A("kind", "latency"))
	sc.Close(time.Millisecond)
	if len(j.Trace(sc.TraceID())) == 0 {
		t.Fatal("faulted trace was dropped")
	}
}

func TestDLQTraceAlwaysKept(t *testing.T) {
	_, j, reg := newArmed(t, Config{Seed: 1, KeepRate: -1}, 16)
	sc := j.NewScope("workflow", "run", 0)
	sc.Instant("workflow", "step-dead", 1, events.A("step", "parse"))
	sc.Close(time.Millisecond)
	if len(j.Trace(sc.TraceID())) == 0 {
		t.Fatal("DLQ trace was dropped")
	}
	if got := reg.Counter(metrics.Name("telemetry_traces_total", "decision", "keep", "policy", PolicyDLQ)).Value(); got != 1 {
		t.Fatalf("keep{dlq} = %d, want 1", got)
	}
}

func TestBoringTracesDropPhysically(t *testing.T) {
	ts, j, reg := newArmed(t, Config{Seed: 7, KeepRate: -1}, 16)
	var ids []events.TraceID
	for i := 0; i < 20; i++ {
		ids = append(ids, closeTrace(j, 0, time.Millisecond))
	}
	for _, id := range ids {
		if len(j.Trace(id)) != 0 {
			t.Fatalf("boring trace %d survived KeepRate=0", id)
		}
	}
	st := ts.Stats()
	if st.DroppedTraces != 20 || st.DroppedEvents != 40 || st.DroppedBytes == 0 {
		t.Fatalf("stats = %+v", st)
	}
	dropped := reg.Counter(metrics.Name("telemetry_traces_total", "decision", "drop", "policy", PolicyProbabilistic)).Value()
	if dropped != 20 {
		t.Fatalf("drop{probabilistic} = %d, want 20", dropped)
	}
	bytesC := reg.Counter(metrics.Name("telemetry_dropped_bytes_total", "policy", PolicyProbabilistic)).Value()
	if bytesC != st.DroppedBytes {
		t.Fatalf("dropped bytes counter %d != stats %d", bytesC, st.DroppedBytes)
	}
}

func TestProbabilisticKeepIsSeededAndOrderFree(t *testing.T) {
	run := func(seed uint64) map[int]bool {
		_, j, _ := newArmed(t, Config{Seed: seed, KeepRate: 0.3}, 16)
		kept := map[int]bool{}
		for i := 0; i < 200; i++ {
			id := closeTrace(j, 0, time.Millisecond)
			kept[i] = len(j.Trace(id)) > 0
		}
		return kept
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at trace %d", i)
		}
	}
	c := run(43)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced the identical keep set")
	}
	keptCount := 0
	for _, k := range a {
		if k {
			keptCount++
		}
	}
	// 30% keep rate over 200 traces: a loose band catches a broken hash.
	if keptCount < 30 || keptCount > 110 {
		t.Fatalf("kept %d of 200 at rate 0.3", keptCount)
	}
}

func TestLatencyOutlierKept(t *testing.T) {
	cfg := Config{Seed: 1, KeepRate: -1, MinSiteSamples: 16, LatencyQuantile: 99}
	_, j, reg := newArmed(t, cfg, 16)
	// Arm the site threshold with uniform 1ms roots.
	for i := 0; i < 32; i++ {
		closeTrace(j, 0, time.Millisecond)
	}
	slow := closeTrace(j, 0, 100*time.Millisecond)
	if len(j.Trace(slow)) == 0 {
		t.Fatal("latency outlier was dropped")
	}
	if got := reg.Counter(metrics.Name("telemetry_traces_total", "decision", "keep", "policy", PolicyLatency)).Value(); got != 1 {
		t.Fatalf("keep{latency} = %d, want 1", got)
	}
	// An unarmed site (too few samples) must not flag outliers.
	sc := j.NewScope("gateway", "request", 0)
	sc.Close(time.Second)
	if len(j.Trace(sc.TraceID())) != 0 {
		t.Fatal("unarmed site flagged a latency outlier")
	}
}

func TestAlertPromotesPendingTrace(t *testing.T) {
	_, j, reg := newArmed(t, Config{Seed: 1, KeepRate: -1}, 16)
	sc := j.NewScope("core", "invoke", 0)
	// Watchdog names the still-open trace as alert evidence.
	j.InstantLinked("slo", "alert", time.Millisecond,
		events.Ref{Trace: sc.TraceID(), Span: sc.Current().Span}, events.A("rule", "p99"))
	sc.Close(2 * time.Millisecond)
	if len(j.Trace(sc.TraceID())) == 0 {
		t.Fatal("alert-linked trace was dropped")
	}
	if got := reg.Counter(metrics.Name("telemetry_traces_total", "decision", "keep", "policy", PolicyError)).Value(); got != 1 {
		t.Fatalf("keep{error} = %d, want 1", got)
	}
}

func TestTimeoutFlushDecidesStalledTraces(t *testing.T) {
	ts, j, _ := newArmed(t, Config{Seed: 1, KeepRate: -1, Timeout: time.Second}, 16)
	sc := j.NewScope("core", "invoke", 0)
	sc.Instant("core", "mark", time.Millisecond) // never closes its root
	stalled := sc.TraceID()
	ts.Flush(500 * time.Millisecond)
	if st := ts.Stats(); st.PendingTraces != 1 {
		t.Fatalf("flushed too early: %+v", st)
	}
	ts.Flush(2 * time.Second)
	st := ts.Stats()
	if st.PendingTraces != 0 || st.DroppedTraces != 1 {
		t.Fatalf("timeout flush: %+v", st)
	}
	if len(j.Trace(stalled)) != 0 {
		t.Fatal("timed-out boring trace still resident")
	}
	// A stalled trace with an error still lands on the error policy.
	sc2 := j.NewScope("core", "invoke", 3*time.Second)
	sc2.Instant("core", "mark", 3*time.Second, events.A("error", "lost"))
	ts.Flush(time.Hour)
	if len(j.Trace(sc2.TraceID())) == 0 {
		t.Fatal("timed-out errored trace was dropped")
	}
}

func TestFlushAllDrains(t *testing.T) {
	ts, j, _ := newArmed(t, Config{Seed: 1, KeepRate: -1}, 16)
	for i := 0; i < 5; i++ {
		sc := j.NewScope("core", "invoke", 0)
		sc.Instant("core", "mark", 1)
		_ = sc // roots stay open
	}
	ts.FlushAll()
	if st := ts.Stats(); st.PendingTraces != 0 || st.DecidedTraces != 5 {
		t.Fatalf("FlushAll: %+v", st)
	}
}

// The acceptance property: the sampled export is a pure function of
// (workload, seed) — journal shard layout must not show through.
func TestSampledExportShardLayoutInvariant(t *testing.T) {
	dump := func(shards int) []byte {
		ts, j, _ := newArmed(t, Config{Seed: 99, KeepRate: 0.2}, shards)
		for i := 0; i < 100; i++ {
			sc := j.NewScope("core", "invoke", 0)
			sc.SetNode([]string{"node-01", "node-02", "node-03"}[i%3])
			sc.Begin("vmm", "restore", time.Microsecond)
			if i%17 == 0 {
				sc.Instant("faults", "vmm-restore", 2*time.Microsecond, events.A("kind", "error"))
			}
			sc.End(3 * time.Microsecond)
			sc.Close(time.Duration(i%7+1) * time.Millisecond)
		}
		ts.FlushAll()
		var buf bytes.Buffer
		if err := events.WriteNDJSON(&buf, j.Events()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	flat, sharded := dump(1), dump(16)
	if !bytes.Equal(flat, sharded) {
		t.Fatalf("sampled NDJSON differs across shard layouts: %d vs %d bytes", len(flat), len(sharded))
	}
	if len(flat) == 0 {
		t.Fatal("sampled export is empty")
	}
}

// Under ring pressure the armed sampler's eviction guard protects
// pending traces; decided traces are evicted first.
func TestArmedSamplerGuardsPendingTraces(t *testing.T) {
	j := events.NewJournalShards(16, 1)
	ts := New(Config{Seed: 1, KeepRate: 1}) // keep everything: isolate eviction behavior
	ts.Attach(j, nil)
	open := j.NewScope("core", "invoke", 0)
	open.Begin("vmm", "restore", 1)
	for i := 0; i < 30; i++ {
		closeTrace(j, 0, time.Millisecond) // decided (kept) traces fill the ring
	}
	if got := len(j.Trace(open.TraceID())); got != 2 {
		t.Fatalf("pending trace lost events under pressure: %d, want 2", got)
	}
}

func TestNilAndDetach(t *testing.T) {
	var ts *TailSampler
	ts.ObserveEvent(events.Event{})
	ts.Flush(0)
	ts.FlushAll()
	_ = ts.Stats()

	armed, j, _ := newArmed(t, Config{Seed: 1, KeepRate: -1}, 4)
	armed.Detach()
	id := closeTrace(j, 0, time.Millisecond)
	if len(j.Trace(id)) == 0 {
		t.Fatal("detached sampler still dropped a trace")
	}
}
