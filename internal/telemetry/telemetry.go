// Package telemetry is the scale governor of the observability plane:
// it decides, after the fact, which traces are worth keeping.
//
// PRs 1–9 built full-fidelity telemetry — every span of every invoke
// lands in the journal, every label value gets a metric series. That
// is the right default for a 300-invocation chaos storm and exactly
// wrong for a million-user one: the measurement machinery must not
// cost more than the thing it measures. The TailSampler here buffers
// per-trace state until a trace completes (its root span ends, or a
// virtual-clock timeout expires) and then applies an ordered policy
// chain:
//
//  1. error — always keep traces that carried an error attr, had a
//     fault injected, or were named as the causal evidence of an SLO
//     alert;
//  2. latency — always keep traces whose root latency exceeds the
//     per-site p99-derived threshold (site = the root span's
//     component:name);
//  3. dlq — always keep workflow runs that dead-lettered a step;
//  4. probabilistic — keep a deterministic fraction of the rest:
//     SplitMix64 over TraceID and seed, the internal/faults style, so
//     the keep set is a pure function of (workload, seed) and is
//     independent of observation order.
//
// Dropped traces are physically removed from the journal (see
// events.DropTrace), so exports, /trace lookups, and insight reports
// run over O(kept) events — and, because the decision function is
// deterministic, two same-seed runs export byte-identical sampled
// journals even across different journal shard layouts.
//
// The sampler also installs an eviction guard on the journal: under
// ring pressure the journal evicts decided traces before the spans of
// traces still awaiting their decision, closing the PR 6 caveat where
// a full stripe could silently drop the begin of an open trace.
package telemetry

import (
	"sort"
	"sync"
	"time"

	"repro/internal/events"
	"repro/internal/metrics"
)

// Policy names, in chain order. They label telemetry_traces_total and
// telemetry_dropped_bytes_total.
const (
	PolicyError         = "error"
	PolicyLatency       = "latency"
	PolicyDLQ           = "dlq"
	PolicyProbabilistic = "probabilistic"
)

// Config parameterizes a TailSampler. The zero value is usable:
// defaults fill in on New.
type Config struct {
	// Seed drives the probabilistic policy. Same seed, same workload,
	// same keep set.
	Seed uint64
	// KeepRate is the probabilistic keep fraction for traces no
	// always-keep policy claims: 0 means the default 0.1, negative
	// means keep none (always-keep policies still apply).
	KeepRate float64
	// LatencyQuantile is the per-site percentile (0–100) a root
	// latency must exceed to be kept by the latency policy
	// (default 99).
	LatencyQuantile float64
	// MinSiteSamples is how many root latencies a site must have
	// contributed before its latency threshold arms (default 32) —
	// the first requests of a site must not all read as outliers.
	MinSiteSamples int
	// SiteWindow bounds the per-site latency sample ring
	// (default 512).
	SiteWindow int
	// Timeout force-decides a trace that stopped emitting without
	// closing its root span, measured on the virtual clock from its
	// last event (default 30s virtual). Timed-out traces go through
	// the same policy chain.
	Timeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.KeepRate == 0 {
		c.KeepRate = 0.1
	} else if c.KeepRate < 0 {
		c.KeepRate = 0
	}
	if c.LatencyQuantile <= 0 {
		c.LatencyQuantile = 99
	}
	if c.MinSiteSamples <= 0 {
		c.MinSiteSamples = 32
	}
	if c.SiteWindow <= 0 {
		c.SiteWindow = 512
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	return c
}

// traceState is what the sampler buffers per in-flight trace: not the
// events themselves (the journal already holds those) but the few bits
// the policy chain needs.
type traceState struct {
	root    events.SpanID
	site    string
	firstTS time.Duration
	lastTS  time.Duration
	open    int
	events  int
	started bool
	errored bool
	faulted bool
	alerted bool
	dlq     bool
}

// siteRing is a bounded ring of root latencies for one site, from
// which the latency policy derives its threshold.
type siteRing struct {
	buf   []time.Duration
	start int
	n     int
}

func (s *siteRing) push(d time.Duration) {
	if s.n == len(s.buf) {
		s.start = (s.start + 1) % len(s.buf)
		s.n--
	}
	s.buf[(s.start+s.n)%len(s.buf)] = d
	s.n++
}

// quantile returns the q-th percentile (0–100) of the ring, nearest-
// rank over a sorted copy — deterministic for a deterministic ring.
func (s *siteRing) quantile(q float64) time.Duration {
	if s.n == 0 {
		return 0
	}
	vals := make([]time.Duration, s.n)
	for i := 0; i < s.n; i++ {
		vals[i] = s.buf[(s.start+i)%len(s.buf)]
	}
	sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
	idx := int(float64(s.n-1)*q/100 + 0.5)
	if idx >= s.n {
		idx = s.n - 1
	}
	return vals[idx]
}

// policyCounts is the per-policy ledger behind Stats.
type policyCounts struct {
	kept, dropped int64
	droppedEvents int64
	droppedBytes  int64
}

// TailSampler buffers per-trace state from a journal and applies the
// policy chain when each trace completes. Attach it with Attach; drive
// timeouts with Flush (or FlushAll at end of run). Safe for concurrent
// use, with the same determinism caveat as internal/faults: a
// sequential workload reproduces decisions exactly; concurrent traces
// decide independently (the probabilistic hash is order-free) but
// latency thresholds see sites in observation order.
type TailSampler struct {
	cfg Config
	j   *events.Journal
	reg *metrics.Registry

	mu      sync.Mutex
	traces  map[events.TraceID]*traceState
	order   []events.TraceID // pending traces, first-seen order (deterministic flush)
	sites   map[string]*siteRing
	policy  map[string]*policyCounts
	decided int64

	// active mirrors "trace has undecided state" lock-free for the
	// journal's eviction guard, which runs under shard locks and must
	// not take t.mu (the sampler holds t.mu while calling DropTrace,
	// which takes shard locks — the mirror breaks the cycle).
	active sync.Map // events.TraceID -> struct{}
}

// New returns a detached sampler; call Attach to arm it on a journal.
func New(cfg Config) *TailSampler {
	return &TailSampler{
		cfg:    cfg.withDefaults(),
		traces: make(map[events.TraceID]*traceState),
		sites:  make(map[string]*siteRing),
		policy: make(map[string]*policyCounts),
	}
}

// Attach arms the sampler: it becomes the journal's observer and
// eviction guard and registers its counters on reg (a private registry
// when nil, so callers without one still get Stats).
func (t *TailSampler) Attach(j *events.Journal, reg *metrics.Registry) {
	if t == nil || j == nil {
		return
	}
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	t.mu.Lock()
	t.j = j
	t.reg = reg
	t.mu.Unlock()
	j.SetEvictionGuard(func(id events.TraceID) bool {
		_, ok := t.active.Load(id)
		return ok
	})
	j.SetObserver(t)
}

// Detach disarms the sampler, leaving pending traces undecided.
func (t *TailSampler) Detach() {
	if t == nil {
		return
	}
	t.mu.Lock()
	j := t.j
	t.mu.Unlock()
	if j != nil {
		j.SetObserver(nil)
		j.SetEvictionGuard(nil)
	}
}

// decision is one completed trace's verdict, executed outside t.mu.
type decision struct {
	id     events.TraceID
	policy string
	keep   bool
}

// ObserveEvent implements events.Observer. It runs on the appending
// goroutine after the journal released its shard lock.
func (t *TailSampler) ObserveEvent(e events.Event) {
	if t == nil {
		return
	}
	if e.Trace == 0 {
		// Traceless instants (watchdog alerts, fleet marks) are never
		// sampled away — but an SLO alert's causal link promotes its
		// evidence trace to always-keep while that trace is pending.
		if e.Kind == events.KindInstant && e.Component == "slo" && e.Link.Trace != 0 {
			t.mu.Lock()
			if st := t.traces[e.Link.Trace]; st != nil {
				st.alerted = true
			}
			t.mu.Unlock()
		}
		return
	}
	t.mu.Lock()
	st := t.traces[e.Trace]
	if st == nil {
		st = &traceState{firstTS: e.TS, lastTS: e.TS}
		t.traces[e.Trace] = st
		t.order = append(t.order, e.Trace)
		t.active.Store(e.Trace, struct{}{})
	}
	if e.TS > st.lastTS {
		st.lastTS = e.TS
	}
	st.events++
	for _, a := range e.Attrs {
		if a.Key == "error" {
			st.errored = true
		}
	}
	var done *decision
	switch e.Kind {
	case events.KindBegin:
		st.open++
		if !st.started {
			st.started = true
			st.root = e.Span
			st.site = e.Component + ":" + e.Name
		}
	case events.KindEnd:
		if st.open > 0 {
			st.open--
		}
		if st.started && e.Span == st.root {
			d := t.decideLocked(e.Trace, st)
			done = &d
		}
	case events.KindInstant:
		switch {
		case e.Component == "faults":
			st.faulted = true
		case e.Component == "workflow" && e.Name == "step-dead":
			st.dlq = true
		}
	}
	t.mu.Unlock()
	if done != nil {
		t.execute(*done)
	}
}

// decideLocked runs the policy chain for a completed trace, retires
// its state, and feeds the site latency ring. Caller holds t.mu; the
// returned decision is executed after unlock (DropTrace takes journal
// shard locks).
func (t *TailSampler) decideLocked(id events.TraceID, st *traceState) decision {
	latency := st.lastTS - st.firstTS
	var d decision
	d.id = id
	switch {
	case st.errored || st.faulted || st.alerted:
		d.policy, d.keep = PolicyError, true
	case t.latencyOutlierLocked(st.site, latency):
		d.policy, d.keep = PolicyLatency, true
	case st.dlq:
		d.policy, d.keep = PolicyDLQ, true
	default:
		d.policy = PolicyProbabilistic
		d.keep = keepFraction(uint64(id), t.cfg.Seed) < t.cfg.KeepRate
	}
	// Feed the site ring after the check: a spike must not raise its
	// own bar. Error traces contribute too — their latency is real.
	if st.site != "" {
		ring := t.sites[st.site]
		if ring == nil {
			ring = &siteRing{buf: make([]time.Duration, t.cfg.SiteWindow)}
			t.sites[st.site] = ring
		}
		ring.push(latency)
	}
	delete(t.traces, id)
	t.decided++
	return d
}

// latencyOutlierLocked reports whether latency exceeds the site's
// armed threshold. Sites with fewer than MinSiteSamples completed
// roots have no threshold yet.
func (t *TailSampler) latencyOutlierLocked(site string, latency time.Duration) bool {
	ring := t.sites[site]
	if ring == nil || ring.n < t.cfg.MinSiteSamples {
		return false
	}
	return latency > ring.quantile(t.cfg.LatencyQuantile)
}

// execute applies one decision: account it, and for drops physically
// remove the trace from the journal. Runs without t.mu held (DropTrace
// takes shard locks; the eviction guard takes none).
func (t *TailSampler) execute(d decision) {
	t.active.Delete(d.id)
	var removed int
	var bytes int64
	if !d.keep {
		removed, bytes = t.j.DropTrace(d.id)
	}
	t.mu.Lock()
	pc := t.policy[d.policy]
	if pc == nil {
		pc = &policyCounts{}
		t.policy[d.policy] = pc
	}
	if d.keep {
		pc.kept++
	} else {
		pc.dropped++
		pc.droppedEvents += int64(removed)
		pc.droppedBytes += bytes
	}
	reg := t.reg
	t.mu.Unlock()
	dec := "keep"
	if !d.keep {
		dec = "drop"
	}
	reg.Counter(metrics.Name("telemetry_traces_total", "decision", dec, "policy", d.policy)).Inc()
	if !d.keep {
		reg.Counter(metrics.Name("telemetry_dropped_bytes_total", "policy", d.policy)).Add(bytes)
	}
}

// Flush force-decides every pending trace whose last event is at least
// Timeout behind now on the virtual clock — the terminal path for
// traces that died without closing their root. Call it from the same
// loop that advances the clock.
func (t *TailSampler) Flush(now time.Duration) {
	t.flush(func(st *traceState) bool { return now-st.lastTS >= t.cfg.Timeout })
}

// FlushAll decides every pending trace regardless of age — the
// end-of-run drain before a final export.
func (t *TailSampler) FlushAll() {
	t.flush(func(*traceState) bool { return true })
}

func (t *TailSampler) flush(due func(*traceState) bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	var done []decision
	live := t.order[:0]
	for _, id := range t.order {
		st := t.traces[id]
		if st == nil {
			continue // already decided
		}
		if due(st) {
			done = append(done, t.decideLocked(id, st))
			continue
		}
		live = append(live, id)
	}
	t.order = live
	t.mu.Unlock()
	for _, d := range done {
		t.execute(d)
	}
}

// keepFraction maps (trace, seed) onto [0, 1) with the SplitMix64
// finalizer internal/vclock.Rand uses — stateless, so the keep set
// does not depend on the order traces complete in.
func keepFraction(trace, seed uint64) float64 {
	z := trace ^ seed
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// PolicyStats is one policy's slice of the ledger.
type PolicyStats struct {
	Policy        string `json:"policy"`
	Kept          int64  `json:"kept"`
	Dropped       int64  `json:"dropped"`
	DroppedEvents int64  `json:"dropped_events"`
	DroppedBytes  int64  `json:"dropped_bytes"`
}

// Stats is the sampler's self-accounting: what /telemetry serves and
// the telem experiment asserts over.
type Stats struct {
	PendingTraces int64         `json:"pending_traces"`
	DecidedTraces int64         `json:"decided_traces"`
	KeptTraces    int64         `json:"kept_traces"`
	DroppedTraces int64         `json:"dropped_traces"`
	DroppedEvents int64         `json:"dropped_events"`
	DroppedBytes  int64         `json:"dropped_bytes"`
	Policies      []PolicyStats `json:"policies"`
}

// Stats returns a copy of the ledger; Policies sort by name so the
// JSON rendering is byte-stable.
func (t *TailSampler) Stats() Stats {
	var s Stats
	if t == nil {
		return s
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s.PendingTraces = int64(len(t.traces))
	s.DecidedTraces = t.decided
	names := make([]string, 0, len(t.policy))
	for name := range t.policy {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pc := t.policy[name]
		s.Policies = append(s.Policies, PolicyStats{
			Policy: name, Kept: pc.kept, Dropped: pc.dropped,
			DroppedEvents: pc.droppedEvents, DroppedBytes: pc.droppedBytes,
		})
		s.KeptTraces += pc.kept
		s.DroppedTraces += pc.dropped
		s.DroppedEvents += pc.droppedEvents
		s.DroppedBytes += pc.droppedBytes
	}
	return s
}
