// Package chunk implements content-addressed chunking of snapshot
// images. An image is split into fixed-size chunks; each chunk's
// identity is a deterministic hash of its content class (what the bytes
// are: a kernel page range, a language runtime, one function's
// JIT-compiled heap), so two images built from the same content produce
// the same chunk IDs and a chunk pool stores the shared bytes once.
// A post-JIT function snapshot then lives in the store as a *delta*
// over the shared base-runtime image: only the chunks whose class is
// unique to the function (keyed {function_id}_{code_hash}) add bytes.
//
// Chunk IDs are pure functions of (class, kind, ordinal, index) — the
// same FNV-1a + SplitMix64 whitening the address-space layout seed
// uses — so same-seed simulation runs produce byte-identical manifests
// and the dedup accounting is reproducible.
package chunk

// Size is the fixed chunk granularity. 4 MiB balances dedup precision
// against manifest length: a ~230 MiB post-JIT image is ~58 chunks, and
// a function's private heap+JIT delta is a handful of them. The last
// chunk of each region is partial, so a manifest's chunk sizes sum
// exactly to the image's byte size.
const Size = 4 << 20

// Chunk is one fixed-size (or trailing partial) piece of a snapshot
// image.
type Chunk struct {
	// ID is the content hash: equal IDs mean equal bytes, shareable
	// across images in a pool.
	ID uint64
	// Bytes is the chunk length: Size, except for the last chunk of a
	// region.
	Bytes uint64
	// Class is the content class the chunk was cut from (e.g.
	// "base:kernel" or "fn:hello_d1fa5c"), kept for observability.
	Class string
}

// Region describes one contiguous content run of an image to chunk: a
// content class (shared across images with identical content), the
// memory kind for observability, and the byte length.
type Region struct {
	Class string
	Kind  string
	Bytes uint64
}

// ID hashes a chunk identity: FNV-1a over class and kind, the region's
// ordinal (distinguishing repeated (class, kind) runs within one
// image), and the chunk index, whitened by SplitMix64.
func ID(class, kind string, ordinal, index int) uint64 {
	var h uint64 = 14695981039346656037
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
		h ^= 0xff // separator so ("ab","c") != ("a","bc")
		h *= 1099511628211
	}
	mix(class)
	mix(kind)
	h ^= uint64(ordinal)<<32 | uint64(uint32(index))
	h += 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}

// Manifest is the ordered chunk list of one image, plus the per-region
// ranges so fault telemetry (which works in region-relative pages) can
// be mapped back to chunks.
type Manifest struct {
	chunks  []Chunk
	regions []regionRange
	total   uint64
}

type regionRange struct {
	start, count int
}

// Build chunks an image described by its content regions, in order.
func Build(regions []Region) *Manifest {
	m := &Manifest{}
	seen := map[[2]string]int{}
	for _, reg := range regions {
		key := [2]string{reg.Class, reg.Kind}
		ordinal := seen[key]
		seen[key] = ordinal + 1
		start := len(m.chunks)
		remaining := reg.Bytes
		for index := 0; remaining > 0; index++ {
			b := uint64(Size)
			if remaining < b {
				b = remaining
			}
			m.chunks = append(m.chunks, Chunk{
				ID:    ID(reg.Class, reg.Kind, ordinal, index),
				Bytes: b,
				Class: reg.Class,
			})
			remaining -= b
		}
		m.regions = append(m.regions, regionRange{start: start, count: len(m.chunks) - start})
		m.total += reg.Bytes
	}
	return m
}

// Chunks returns the manifest's chunks in image layout order.
func (m *Manifest) Chunks() []Chunk { return append([]Chunk(nil), m.chunks...) }

// Len returns the chunk count.
func (m *Manifest) Len() int { return len(m.chunks) }

// TotalBytes returns the image size (the sum of all chunk sizes).
func (m *Manifest) TotalBytes() uint64 { return m.total }

// Regions returns how many content regions the manifest was built from.
func (m *Manifest) Regions() int { return len(m.regions) }

// RegionChunks returns the chunks of the i-th content region, in order.
// The returned slice aliases the manifest; callers must not mutate it.
func (m *Manifest) RegionChunks(i int) []Chunk {
	r := m.regions[i]
	return m.chunks[r.start : r.start+r.count]
}

// UniqueBytes returns the pool footprint of the manifest alone: the sum
// of chunk sizes counting each distinct chunk ID once.
func (m *Manifest) UniqueBytes() uint64 {
	seen := make(map[uint64]struct{}, len(m.chunks))
	var total uint64
	for _, c := range m.chunks {
		if _, ok := seen[c.ID]; ok {
			continue
		}
		seen[c.ID] = struct{}{}
		total += c.Bytes
	}
	return total
}

// Delta returns the chunks of m not present in base — the bytes a store
// already holding base would need to admit m.
func (m *Manifest) Delta(base *Manifest) []Chunk {
	if base == nil {
		return m.Chunks()
	}
	in := make(map[uint64]struct{}, len(base.chunks))
	for _, c := range base.chunks {
		in[c.ID] = struct{}{}
	}
	var out []Chunk
	for _, c := range m.chunks {
		if _, ok := in[c.ID]; !ok {
			out = append(out, c)
		}
	}
	return out
}

// BytesOf sums the sizes of a chunk slice.
func BytesOf(chunks []Chunk) uint64 {
	var total uint64
	for _, c := range chunks {
		total += c.Bytes
	}
	return total
}
