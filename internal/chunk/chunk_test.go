package chunk

import "testing"

func TestBuildSizesSumExactly(t *testing.T) {
	m := Build([]Region{
		{Class: "base:kernel", Kind: "kernel", Bytes: 103 << 20},
		{Class: "fn:hello_ab", Kind: "heap", Bytes: 11<<20 + 137}, // not chunk-aligned
	})
	if m.TotalBytes() != (103<<20)+(11<<20)+137 {
		t.Fatalf("TotalBytes = %d", m.TotalBytes())
	}
	var sum uint64
	for _, c := range m.Chunks() {
		if c.Bytes == 0 || c.Bytes > Size {
			t.Fatalf("chunk size %d out of range", c.Bytes)
		}
		sum += c.Bytes
	}
	if sum != m.TotalBytes() {
		t.Fatalf("chunk sizes sum to %d, want %d", sum, m.TotalBytes())
	}
	if m.Regions() != 2 {
		t.Fatalf("Regions = %d", m.Regions())
	}
	if got := len(m.RegionChunks(0)) + len(m.RegionChunks(1)); got != m.Len() {
		t.Fatalf("region chunks %d != total %d", got, m.Len())
	}
}

func TestIDsDeterministicAndClassSensitive(t *testing.T) {
	a := Build([]Region{{Class: "base:runtime:node", Kind: "runtime", Bytes: 64 << 20}})
	b := Build([]Region{{Class: "base:runtime:node", Kind: "runtime", Bytes: 64 << 20}})
	for i := range a.Chunks() {
		if a.Chunks()[i].ID != b.Chunks()[i].ID {
			t.Fatalf("same class produced different IDs at chunk %d", i)
		}
	}
	c := Build([]Region{{Class: "base:runtime:python", Kind: "runtime", Bytes: 64 << 20}})
	if a.Chunks()[0].ID == c.Chunks()[0].ID {
		t.Fatal("different classes produced the same chunk ID")
	}
	// Two runs of the same (class, kind) within one image must not
	// self-collide: the ordinal distinguishes them.
	d := Build([]Region{
		{Class: "x", Kind: "heap", Bytes: Size},
		{Class: "x", Kind: "heap", Bytes: Size},
	})
	if d.UniqueBytes() != 2*Size {
		t.Fatalf("repeated region self-deduped: unique %d", d.UniqueBytes())
	}
}

func TestDeltaOverBase(t *testing.T) {
	base := Build([]Region{
		{Class: "base:kernel", Kind: "kernel", Bytes: 100 << 20},
		{Class: "base:runtime:node", Kind: "runtime", Bytes: 64 << 20},
	})
	fn := Build([]Region{
		{Class: "fn:hello_ab", Kind: "heap", Bytes: 12 << 20},
		{Class: "base:kernel", Kind: "kernel", Bytes: 100 << 20},
		{Class: "base:runtime:node", Kind: "runtime", Bytes: 64 << 20},
	})
	delta := fn.Delta(base)
	if got := BytesOf(delta); got != 12<<20 {
		t.Fatalf("delta = %d bytes, want the 12 MiB function heap", got)
	}
	for _, c := range delta {
		if c.Class != "fn:hello_ab" {
			t.Fatalf("delta contains base chunk of class %q", c.Class)
		}
	}
	if got := BytesOf(fn.Delta(nil)); got != fn.TotalBytes() {
		t.Fatalf("delta over nil = %d, want full image %d", got, fn.TotalBytes())
	}
}
