package lang

import "fmt"

// maxCopyDepth bounds DeepCopy against pathological or cyclic data.
const maxCopyDepth = 64

// DeepCopy clones a FaaSLang value so that mutations of the copy never
// affect the original. It is how snapshot restores give every resumed
// microVM its own copy-on-write view of guest state: immutable values
// (numbers, strings, functions) are shared, mutable containers are
// copied. Host natives are shared as-is (the framework re-binds them per
// instance anyway).
func DeepCopy(v Value) (Value, error) { return deepCopy(v, 0) }

func deepCopy(v Value, depth int) (Value, error) {
	if depth > maxCopyDepth {
		return nil, fmt.Errorf("lang: DeepCopy depth limit exceeded (cyclic value?)")
	}
	switch v := v.(type) {
	case nil, bool, int64, float64, string, *Native:
		return v, nil
	case *List:
		items := make([]Value, len(v.Items))
		for i, item := range v.Items {
			c, err := deepCopy(item, depth+1)
			if err != nil {
				return nil, err
			}
			items[i] = c
		}
		return &List{Items: items}, nil
	case *Map:
		m := NewMap()
		for k, item := range v.Items {
			c, err := deepCopy(item, depth+1)
			if err != nil {
				return nil, err
			}
			m.Items[k] = c
		}
		return m, nil
	default:
		// Function values (closures) and other opaque types are
		// immutable from the guest's perspective; share them.
		return v, nil
	}
}

// DeepCopyGlobals clones a globals map, skipping natives when
// skipNatives is set (the framework re-installs host bindings on
// restore, mirroring how a resumed VM re-reads MMDS).
func DeepCopyGlobals(globals map[string]Value, skipNatives bool) (map[string]Value, error) {
	out := make(map[string]Value, len(globals))
	for k, v := range globals {
		if skipNatives {
			if _, isNative := v.(*Native); isNative {
				continue
			}
		}
		c, err := DeepCopy(v)
		if err != nil {
			return nil, fmt.Errorf("global %q: %w", k, err)
		}
		out[k] = c
	}
	return out, nil
}
