// Package jit is FaaSLang's optimizing execution tier. It compiles
// bytecode functions into direct-threaded Go closures with speculative
// integer fast paths and entry type guards derived from the runtime
// profile; a guard failure de-optimizes the call back to the
// interpreter, exactly the V8/Numba behaviour the paper's §6 discusses.
//
// The engine implements vm.JITBackend: the interpreter reports calls and
// loop back-edges, and the engine tiers functions up according to a
// per-runtime policy (Node.js compiles any hot function; Python compiles
// only @jit-annotated functions, mirroring Numba). Compilation cost and
// de-optimization penalties are charged through hooks so the simulation
// layer can account virtual time and JIT code memory.
package jit

import (
	"sync"

	"repro/internal/lang"
	"repro/internal/lang/bytecode"
	"repro/internal/lang/vm"
)

// Config controls tier-up policy and cost accounting.
type Config struct {
	// CallThreshold tiers a function up once it has been called this
	// many times. Zero or negative disables call-count tier-up.
	CallThreshold int64
	// LoopThreshold tiers a function up once its loops have executed
	// this many back-edges. Zero or negative disables loop tier-up.
	LoopThreshold int64
	// AnnotatedOnly restricts compilation to functions decorated with
	// @jit — the Numba model used for the Python runtime personality.
	AnnotatedOnly bool
	// OnCompile is invoked when a function is compiled, with its
	// bytecode instruction count (the basis for virtual compile time
	// and machine-code size accounting). May be nil.
	OnCompile func(fn *bytecode.Function, instructions int)
	// OnDeopt is invoked when compiled code bails out to the
	// interpreter. May be nil.
	OnDeopt func(fn *bytecode.Function)
}

// Engine is a per-guest JIT compiler and code cache.
type Engine struct {
	cfg Config

	mu       sync.Mutex
	cache    map[*bytecode.Function]*compiledFunc
	codeSize int64
	compiles int64
	deopts   int64
}

// NewEngine returns an engine with the given policy.
func NewEngine(cfg Config) *Engine {
	return &Engine{cfg: cfg, cache: make(map[*bytecode.Function]*compiledFunc)}
}

// bytesPerInstr models the machine-code expansion factor of one bytecode
// instruction (x86-64 TurboFan/Numba output averages tens of bytes per
// bytecode op).
const bytesPerInstr = 48

// CodeSize returns the total bytes of simulated machine code resident in
// the engine's code cache.
func (e *Engine) CodeSize() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.codeSize
}

// Compiles returns how many functions the engine has compiled, and
// Deopts how many guard bailouts occurred.
func (e *Engine) Compiles() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.compiles
}

// Deopts returns the number of de-optimization bailouts so far.
func (e *Engine) Deopts() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.deopts
}

// CompiledFunctions returns the names of functions currently in the
// code cache, for tests and introspection.
func (e *Engine) CompiledFunctions() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	names := make([]string, 0, len(e.cache))
	for fn := range e.cache {
		names = append(names, fn.Name)
	}
	return names
}

// Lookup implements vm.JITBackend.
func (e *Engine) Lookup(fn *bytecode.Function) vm.Compiled {
	e.mu.Lock()
	defer e.mu.Unlock()
	if c, ok := e.cache[fn]; ok {
		return c
	}
	return nil
}

// OnCall implements vm.JITBackend: tier up when the call threshold hits.
func (e *Engine) OnCall(v *vm.VM, fn *bytecode.Function, prof *vm.Profile) {
	if e.cfg.CallThreshold > 0 && prof.Calls >= e.cfg.CallThreshold {
		e.Compile(fn, prof)
	}
}

// OnLoopBack implements vm.JITBackend: tier up on hot loops.
func (e *Engine) OnLoopBack(v *vm.VM, fn *bytecode.Function, prof *vm.Profile) {
	if e.cfg.LoopThreshold > 0 && prof.LoopBackEdges >= e.cfg.LoopThreshold {
		e.Compile(fn, prof)
	}
}

// OnDeopt implements vm.JITBackend.
func (e *Engine) OnDeopt(v *vm.VM, fn *bytecode.Function) {
	e.mu.Lock()
	e.deopts++
	e.mu.Unlock()
	v.Profile(fn).Deopts++
	if e.cfg.OnDeopt != nil {
		e.cfg.OnDeopt(fn)
	}
}

// Compile compiles fn (idempotently) with guards from the profile. It is
// also called directly by __fireworks_jit to force compilation at
// install time.
func (e *Engine) Compile(fn *bytecode.Function, prof *vm.Profile) {
	if e.cfg.AnnotatedOnly && !fn.HasAnnotation("jit") {
		return
	}
	e.mu.Lock()
	if _, ok := e.cache[fn]; ok {
		e.mu.Unlock()
		return
	}
	// Entry guards: specialize on the profiled signature only when it
	// has been monomorphic so far; otherwise compile a generic version.
	var guards []lang.Type
	if prof != nil && prof.Stable && prof.ArgTypes != nil {
		guards = append([]lang.Type(nil), prof.ArgTypes...)
	}
	c := compile(fn, guards)
	e.cache[fn] = c
	e.codeSize += int64(len(fn.Code) * bytesPerInstr)
	e.compiles++
	e.mu.Unlock()
	if e.cfg.OnCompile != nil {
		e.cfg.OnCompile(fn, len(fn.Code))
	}
}

// CloneWithCache returns a new engine that starts with this engine's
// code cache (compiled code is immutable and safely shared) but its own
// policy and accounting hooks. This is how a restored VM snapshot
// "contains" the install-time JITted code: each clone gets an engine
// pre-populated with the snapshot's machine code, with zero compiles
// charged.
func (e *Engine) CloneWithCache(cfg Config) *Engine {
	e.mu.Lock()
	defer e.mu.Unlock()
	clone := NewEngine(cfg)
	for fn, c := range e.cache {
		clone.cache[fn] = c
	}
	clone.codeSize = e.codeSize
	// The clone holds the same compiled functions; the count drives
	// resident JIT-code accounting (Numba module overhead), so it
	// travels with the cache.
	clone.compiles = e.compiles
	return clone
}

// Invalidate drops a function from the code cache (used when repeated
// deopts make the specialization unprofitable).
func (e *Engine) Invalidate(fn *bytecode.Function) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.cache[fn]; ok {
		delete(e.cache, fn)
		e.codeSize -= int64(len(fn.Code) * bytesPerInstr)
	}
}

var _ vm.JITBackend = (*Engine)(nil)
