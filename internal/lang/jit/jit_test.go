package jit_test

import (
	"strings"
	"testing"

	"repro/internal/lang"
	"repro/internal/lang/bytecode"
	"repro/internal/lang/jit"
	"repro/internal/lang/vm"
)

type tierMeter struct {
	perTier map[vm.Tier]int
}

func (m *tierMeter) Charge(tier vm.Tier, cat bytecode.Category, n int) {
	if m.perTier == nil {
		m.perTier = make(map[vm.Tier]int)
	}
	m.perTier[tier] += n
}

func setup(t *testing.T, src string, cfg jit.Config) (*vm.VM, *jit.Engine, *tierMeter) {
	t.Helper()
	mod, err := bytecode.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	meter := &tierMeter{}
	v := vm.New(meter)
	engine := jit.NewEngine(cfg)
	v.JIT = engine
	if _, err := v.RunModule(mod); err != nil {
		t.Fatal(err)
	}
	return v, engine, meter
}

const hotSrc = `
func hot(n) {
  let total = 0;
  let i = 0;
  while (i < n) {
    i = i + 1;
    total = total + i * i;
  }
  return total;
}
`

func wantHot(n int64) int64 {
	var total int64
	for i := int64(1); i <= n; i++ {
		total += i * i
	}
	return total
}

func TestTierUpByCallCount(t *testing.T) {
	v, engine, meter := setup(t, hotSrc, jit.Config{CallThreshold: 3})
	fn := v.Globals["hot"].(*bytecode.Closure)
	for i := 0; i < 5; i++ {
		got, err := v.CallValue(fn, []lang.Value{int64(50)})
		if err != nil {
			t.Fatal(err)
		}
		if got != wantHot(50) {
			t.Fatalf("call %d: got %v, want %v", i, got, wantHot(50))
		}
	}
	if engine.Compiles() != 1 {
		t.Fatalf("Compiles = %d, want 1", engine.Compiles())
	}
	if meter.perTier[vm.TierJIT] == 0 {
		t.Fatal("no JIT-tier charges after tier-up")
	}
}

func TestTierUpByLoopThreshold(t *testing.T) {
	v, engine, _ := setup(t, hotSrc, jit.Config{LoopThreshold: 100})
	fn := v.Globals["hot"].(*bytecode.Closure)
	// One long-running call crosses the loop threshold mid-execution;
	// the compiled code is used from the *next* call (no OSR).
	if _, err := v.CallValue(fn, []lang.Value{int64(500)}); err != nil {
		t.Fatal(err)
	}
	if engine.Compiles() != 1 {
		t.Fatalf("Compiles = %d, want 1 after hot loop", engine.Compiles())
	}
	got, err := v.CallValue(fn, []lang.Value{int64(500)})
	if err != nil {
		t.Fatal(err)
	}
	if got != wantHot(500) {
		t.Fatalf("jitted result = %v, want %v", got, wantHot(500))
	}
}

func TestInterpAndJITAgree(t *testing.T) {
	// The same source must produce identical results in both tiers.
	src := hotSrc + `
func mix(n) {
  let l = [];
  let i = 0;
  while (i < n) {
    l = l + [i * 2];
    i = i + 1;
  }
  let m = {"sum": 0};
  for (x in l) { m["sum"] = m["sum"] + x; }
  return m.sum;
}
`
	interp, _, _ := setup(t, src, jit.Config{})
	jitted, engine, _ := setup(t, src, jit.Config{CallThreshold: 1})
	for _, fname := range []string{"hot", "mix"} {
		for _, n := range []int64{0, 1, 7, 40} {
			a, err := interp.CallValue(interp.Globals[fname], []lang.Value{n})
			if err != nil {
				t.Fatal(err)
			}
			b, err := jitted.CallValue(jitted.Globals[fname], []lang.Value{n})
			if err != nil {
				t.Fatal(err)
			}
			if !lang.Equal(a, b) {
				t.Errorf("%s(%d): interp=%v jit=%v", fname, n, a, b)
			}
		}
	}
	if engine.Compiles() == 0 {
		t.Fatal("JIT never compiled")
	}
}

func TestAnnotatedOnlyPolicy(t *testing.T) {
	src := `
@jit(cache=true)
func fast(n) { return n * 2; }
func slow(n) { return n * 2; }
`
	v, engine, _ := setup(t, src, jit.Config{CallThreshold: 1, AnnotatedOnly: true})
	for i := 0; i < 3; i++ {
		if _, err := v.CallValue(v.Globals["fast"], []lang.Value{int64(i)}); err != nil {
			t.Fatal(err)
		}
		if _, err := v.CallValue(v.Globals["slow"], []lang.Value{int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	names := engine.CompiledFunctions()
	if len(names) != 1 || names[0] != "fast" {
		t.Fatalf("compiled %v, want only [fast]", names)
	}
}

func TestDeoptOnTypeGuardFailure(t *testing.T) {
	src := `func poly(x) { return x + x; }`
	v, engine, _ := setup(t, src, jit.Config{CallThreshold: 1})
	fn := v.Globals["poly"].(*bytecode.Closure)
	// Warm up with ints: profile is monomorphic [int], guards are [int].
	for i := 0; i < 3; i++ {
		if _, err := v.CallValue(fn, []lang.Value{int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if engine.Compiles() != 1 {
		t.Fatalf("Compiles = %d", engine.Compiles())
	}
	// A string argument trips the entry guard and de-optimizes; the
	// interpreter still computes the right answer.
	got, err := v.CallValue(fn, []lang.Value{"ab"})
	if err != nil {
		t.Fatal(err)
	}
	if got != "abab" {
		t.Fatalf("poly(\"ab\") = %v", got)
	}
	if engine.Deopts() != 1 {
		t.Fatalf("Deopts = %d, want 1", engine.Deopts())
	}
	if v.Profile(fn.Fn).Deopts != 1 {
		t.Fatalf("profile deopts = %d", v.Profile(fn.Fn).Deopts)
	}
}

func TestForceCompile(t *testing.T) {
	// __fireworks_jit-style forced compilation: compile before any call.
	mod, err := bytecode.CompileSource(hotSrc)
	if err != nil {
		t.Fatal(err)
	}
	meter := &tierMeter{}
	v := vm.New(meter)
	var compiled []string
	engine := jit.NewEngine(jit.Config{
		OnCompile: func(fn *bytecode.Function, instrs int) {
			compiled = append(compiled, fn.Name)
			if instrs <= 0 {
				t.Errorf("OnCompile instrs = %d", instrs)
			}
		},
	})
	v.JIT = engine
	if _, err := v.RunModule(mod); err != nil {
		t.Fatal(err)
	}
	fn := v.Globals["hot"].(*bytecode.Closure)
	engine.Compile(fn.Fn, nil) // generic compile, no guards
	if len(compiled) != 1 || compiled[0] != "hot" {
		t.Fatalf("compiled = %v", compiled)
	}
	// First call runs straight in the JIT tier (post-JIT snapshot case).
	got, err := v.CallValue(fn, []lang.Value{int64(10)})
	if err != nil {
		t.Fatal(err)
	}
	if got != wantHot(10) {
		t.Fatalf("got %v", got)
	}
	if meter.perTier[vm.TierInterp] > 5 {
		// The interpreter should not have executed the function body
		// (a few charges can come from module-level code).
		t.Fatalf("interp charges = %d; function should run JITted", meter.perTier[vm.TierInterp])
	}
	if engine.CodeSize() == 0 {
		t.Fatal("CodeSize = 0 after compile")
	}
}

func TestInvalidate(t *testing.T) {
	v, engine, _ := setup(t, hotSrc, jit.Config{CallThreshold: 1})
	fn := v.Globals["hot"].(*bytecode.Closure)
	for i := 0; i < 2; i++ {
		if _, err := v.CallValue(fn, []lang.Value{int64(5)}); err != nil {
			t.Fatal(err)
		}
	}
	if engine.Lookup(fn.Fn) == nil {
		t.Fatal("not compiled")
	}
	engine.Invalidate(fn.Fn)
	if engine.Lookup(fn.Fn) != nil {
		t.Fatal("still in cache after Invalidate")
	}
	if engine.CodeSize() != 0 {
		t.Fatalf("CodeSize = %d after Invalidate", engine.CodeSize())
	}
}

// TestEveryOpcodeInCompiledCode force-compiles a function whose body
// exercises every bytecode opcode the translator handles — literals,
// logicals, unaries, containers, iteration, closures, globals — and
// checks it against the interpreter.
func TestEveryOpcodeInCompiledCode(t *testing.T) {
	src := `
let gCounter = 0;

func kitchenSink(n, s) {
  gCounter = gCounter + 1;            // LOADG/STOREG
  let flag = true && !false;          // TRUE/FALSE/NOT/DUP/JMPF
  let nothing = null;                 // NULL
  let neg = -n;                       // NEG
  let negf = -1.5;                    // float NEG
  let both = (n > 0 || s == "x");     // JMPT
  let l = [n, n * 2, "tail"];         // MKLIST
  let m = {"a": n, "b": {"inner": s}};// MKMAP nested
  m["c"] = l[0] + l[1];               // INDEX/SETIDX int fast path
  m["b"]["inner"] = s + "!";          // generic SETIDX
  l[-1] = "rewritten";                // slow-path list index (negative)
  let total = 0;
  for (x in l) {                      // ITER/NEXT over list
    if (x == "rewritten") { total = total + 1; } else { total = total + x; }
  }
  for (k in m) {                      // ITER over map keys
    if (k == "a") { total = total + 5; } else { total = total + 1; }
  }
  for (ch in "ab") {                  // ITER over string
    if (ch == "a") { total = total + 2; } else { total = total + 3; }
  }
  let i = 0;
  while (i < 3) {                     // LOOP
    i = i + 1;
    if (i == 2) { continue; }
    if (i > 5) { break; }
  }
  // CLOSURE: anonymous functions see globals, not enclosing locals.
  let adder = func(x) { return x + gCounter; };
  total = total + adder(10);
  let quotient = n / 2;               // DIV
  let rem = n % 3;                    // MOD
  let diff = n - 1;                   // SUB (int fast)
  let prod = n * 1.5;                 // MUL (mixed)
  let cmp = 0;
  if (n <= 100 && n >= -100 && n < 1000 && n > -1000) { cmp = 1; } // LTE/GTE/LT/GT
  if (flag && both && nothing == null) { total = total + cmp; }
  return total + quotient + rem + diff + prod + m["c"];
}
`
	check := func(jitted bool, n int64, s string) (any, error) {
		mod, err := bytecode.CompileSource(src)
		if err != nil {
			return nil, err
		}
		v := vm.New(nil)
		engine := jit.NewEngine(jit.Config{})
		v.JIT = engine
		if _, err := v.RunModule(mod); err != nil {
			return nil, err
		}
		if jitted {
			engine.Compile(mod.Function("kitchenSink"), nil)
		}
		return v.CallValue(v.Globals["kitchenSink"], []lang.Value{n, s})
	}
	for _, tc := range []struct {
		n int64
		s string
	}{{4, "x"}, {0, ""}, {-7, "long-string"}, {99, "x"}} {
		iv, ierr := check(false, tc.n, tc.s)
		jv, jerr := check(true, tc.n, tc.s)
		// The function must actually execute — an agreed-upon error
		// would silently gut this test.
		if ierr != nil || jerr != nil {
			t.Fatalf("n=%d s=%q: interp err %v, jit err %v", tc.n, tc.s, ierr, jerr)
		}
		if !lang.Equal(iv, jv) {
			t.Fatalf("n=%d s=%q: interp %v, jit %v", tc.n, tc.s, iv, jv)
		}
	}
	// With "len" absent, the compiled global load must fail identically.
	mod, err := bytecode.CompileSource(`func f() { return missingGlobal; }`)
	if err != nil {
		t.Fatal(err)
	}
	v := vm.New(nil)
	engine := jit.NewEngine(jit.Config{})
	v.JIT = engine
	if _, err := v.RunModule(mod); err != nil {
		t.Fatal(err)
	}
	engine.Compile(mod.Function("f"), nil)
	if _, err := v.CallValue(v.Globals["f"], nil); err == nil ||
		!strings.Contains(err.Error(), "undefined variable") {
		t.Fatalf("jit undefined-global err = %v", err)
	}
}

// TestJITRuntimeErrorsMatchInterpreter checks the compiled tier's error
// paths (division by zero, bad index, non-iterable) behave like the
// interpreter's.
func TestJITRuntimeErrorsMatchInterpreter(t *testing.T) {
	cases := []string{
		`func f() { return 1 / 0; }`,
		`func f() { return 5 % 0; }`,
		`func f() { let l = [1]; return l[9]; }`,
		`func f() { let l = [1]; l[9] = 2; }`,
		`func f() { for (x in 42) {} }`,
		`func f() { return -"s"; }`,
		`func f() { return {"a": 1}[5]; }`,
		`func f() { let x = 5; return x(); }`,
	}
	for _, src := range cases {
		run := func(jitted bool) error {
			mod, err := bytecode.CompileSource(src)
			if err != nil {
				t.Fatalf("%s: %v", src, err)
			}
			v := vm.New(nil)
			engine := jit.NewEngine(jit.Config{})
			v.JIT = engine
			if _, err := v.RunModule(mod); err != nil {
				return err
			}
			if jitted {
				engine.Compile(mod.Function("f"), nil)
			}
			_, err = v.CallValue(v.Globals["f"], nil)
			return err
		}
		ierr, jerr := run(false), run(true)
		if ierr == nil || jerr == nil {
			t.Errorf("%s: expected both tiers to fail (interp %v, jit %v)", src, ierr, jerr)
		}
	}
}

func TestRecursionInJITTedCode(t *testing.T) {
	src := `func fib(n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }`
	v, engine, _ := setup(t, src, jit.Config{CallThreshold: 2})
	fn := v.Globals["fib"].(*bytecode.Closure)
	got, err := v.CallValue(fn, []lang.Value{int64(15)})
	if err != nil {
		t.Fatal(err)
	}
	if got != int64(610) {
		t.Fatalf("fib(15) = %v", got)
	}
	if engine.Compiles() != 1 {
		t.Fatalf("Compiles = %d", engine.Compiles())
	}
}
