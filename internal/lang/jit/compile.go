package jit

import (
	"fmt"

	"repro/internal/lang"
	"repro/internal/lang/bytecode"
	"repro/internal/lang/vm"
)

// state is the register file of one compiled-function activation.
type state struct {
	v      *vm.VM
	locals []lang.Value
	stack  []lang.Value
	pc     int
	done   bool
	ret    lang.Value
	err    error
}

func (s *state) push(v lang.Value) { s.stack = append(s.stack, v) }

func (s *state) pop() lang.Value {
	v := s.stack[len(s.stack)-1]
	s.stack = s.stack[:len(s.stack)-1]
	return v
}

func (s *state) fail(line int, err error) {
	s.err = fmt.Errorf("line %d: %w", line, err)
	s.done = true
}

// step executes one translated instruction and advances s.pc.
type step func(s *state)

// compiledFunc is the JITted form of one function: a direct-threaded
// slice of closures plus the entry type guards it was specialized for.
type compiledFunc struct {
	fn     *bytecode.Function
	guards []lang.Type
	steps  []step
	cats   []bytecode.Category
}

// Run implements vm.Compiled.
func (c *compiledFunc) Run(v *vm.VM, args []lang.Value) (lang.Value, bool, error) {
	if c.guards != nil {
		if len(args) != len(c.guards) {
			return nil, true, nil
		}
		for i := range args {
			if lang.TypeOf(args[i]) != c.guards[i] {
				return nil, true, nil
			}
		}
	}
	s := &state{
		v:      v,
		locals: make([]lang.Value, c.fn.NumLocals),
		stack:  make([]lang.Value, 0, 16),
	}
	copy(s.locals, args)
	meter := v.Meter
	for !s.done {
		if s.pc >= len(c.steps) {
			break // fall off the end: implicit return null
		}
		if err := v.CountStep(); err != nil {
			return nil, false, err
		}
		meter.Charge(vm.TierJIT, c.cats[s.pc], 1)
		c.steps[s.pc](s)
	}
	if s.err != nil {
		return nil, false, fmt.Errorf("jit %s: %w", c.fn.Name, s.err)
	}
	return s.ret, false, nil
}

// compile translates fn's bytecode into direct-threaded closures.
func compile(fn *bytecode.Function, guards []lang.Type) *compiledFunc {
	c := &compiledFunc{
		fn:     fn,
		guards: guards,
		steps:  make([]step, len(fn.Code)),
		cats:   make([]bytecode.Category, len(fn.Code)),
	}
	for i, ins := range fn.Code {
		c.cats[i] = bytecode.CategoryOf(ins.Op)
		c.steps[i] = translate(fn, ins)
	}
	return c
}

func translate(fn *bytecode.Function, ins bytecode.Instr) step {
	a := ins.A
	line := ins.Line
	switch ins.Op {
	case bytecode.OpConst:
		v := fn.Consts[a]
		return func(s *state) { s.push(v); s.pc++ }
	case bytecode.OpNull:
		return func(s *state) { s.push(nil); s.pc++ }
	case bytecode.OpTrue:
		return func(s *state) { s.push(true); s.pc++ }
	case bytecode.OpFalse:
		return func(s *state) { s.push(false); s.pc++ }
	case bytecode.OpPop:
		return func(s *state) { s.pop(); s.pc++ }
	case bytecode.OpDup:
		return func(s *state) { s.push(s.stack[len(s.stack)-1]); s.pc++ }
	case bytecode.OpLoadLocal:
		return func(s *state) { s.push(s.locals[a]); s.pc++ }
	case bytecode.OpStoreLocal:
		return func(s *state) { s.locals[a] = s.pop(); s.pc++ }
	case bytecode.OpLoadGlobal:
		name := fn.Consts[a].(string)
		return func(s *state) {
			v, ok := s.v.Globals[name]
			if !ok {
				s.fail(line, fmt.Errorf("undefined variable %q", name))
				return
			}
			s.push(v)
			s.pc++
		}
	case bytecode.OpStoreGlobal:
		name := fn.Consts[a].(string)
		return func(s *state) { s.v.Globals[name] = s.pop(); s.pc++ }

	case bytecode.OpAdd:
		return func(s *state) {
			right := s.pop()
			left := s.pop()
			// Speculative integer fast path — the common case in the
			// numeric benchmarks the JIT exists for.
			if li, ok := left.(int64); ok {
				if ri, ok := right.(int64); ok {
					s.push(li + ri)
					s.pc++
					return
				}
			}
			v, err := vm.BinaryOp(bytecode.OpAdd, left, right)
			if err != nil {
				s.fail(line, err)
				return
			}
			s.push(v)
			s.pc++
		}
	case bytecode.OpSub:
		return intFastBinop(bytecode.OpSub, line, func(a, b int64) int64 { return a - b })
	case bytecode.OpMul:
		return intFastBinop(bytecode.OpMul, line, func(a, b int64) int64 { return a * b })
	case bytecode.OpDiv, bytecode.OpMod:
		op := ins.Op
		return func(s *state) {
			right := s.pop()
			left := s.pop()
			v, err := vm.BinaryOp(op, left, right)
			if err != nil {
				s.fail(line, err)
				return
			}
			s.push(v)
			s.pc++
		}
	case bytecode.OpLt:
		return intFastCompare(bytecode.OpLt, line, func(a, b int64) bool { return a < b })
	case bytecode.OpLte:
		return intFastCompare(bytecode.OpLte, line, func(a, b int64) bool { return a <= b })
	case bytecode.OpGt:
		return intFastCompare(bytecode.OpGt, line, func(a, b int64) bool { return a > b })
	case bytecode.OpGte:
		return intFastCompare(bytecode.OpGte, line, func(a, b int64) bool { return a >= b })
	case bytecode.OpEq:
		return func(s *state) {
			right := s.pop()
			left := s.pop()
			s.push(lang.Equal(left, right))
			s.pc++
		}
	case bytecode.OpNeq:
		return func(s *state) {
			right := s.pop()
			left := s.pop()
			s.push(!lang.Equal(left, right))
			s.pc++
		}
	case bytecode.OpNeg:
		return func(s *state) {
			switch n := s.pop().(type) {
			case int64:
				s.push(-n)
			case float64:
				s.push(-n)
			default:
				s.fail(line, fmt.Errorf("cannot negate %s", lang.TypeOf(n)))
				return
			}
			s.pc++
		}
	case bytecode.OpNot:
		return func(s *state) { s.push(!lang.Truthy(s.pop())); s.pc++ }

	case bytecode.OpJump, bytecode.OpLoop:
		return func(s *state) { s.pc = a }
	case bytecode.OpJumpIfFalse:
		return func(s *state) {
			if !lang.Truthy(s.pop()) {
				s.pc = a
			} else {
				s.pc++
			}
		}
	case bytecode.OpJumpIfTrue:
		return func(s *state) {
			if lang.Truthy(s.pop()) {
				s.pc = a
			} else {
				s.pc++
			}
		}

	case bytecode.OpCall:
		return func(s *state) {
			args := make([]lang.Value, a)
			for i := a - 1; i >= 0; i-- {
				args[i] = s.pop()
			}
			callee := s.pop()
			v, err := s.v.CallValue(callee, args)
			if err != nil {
				s.err = err
				s.done = true
				return
			}
			s.push(v)
			s.pc++
		}
	case bytecode.OpReturn:
		return func(s *state) {
			s.ret = s.pop()
			s.done = true
		}

	case bytecode.OpMakeList:
		return func(s *state) {
			items := make([]lang.Value, a)
			for i := a - 1; i >= 0; i-- {
				items[i] = s.pop()
			}
			s.push(&lang.List{Items: items})
			s.pc++
		}
	case bytecode.OpMakeMap:
		return func(s *state) {
			m := lang.NewMap()
			pairs := make([]lang.Value, 2*a)
			for i := 2*a - 1; i >= 0; i-- {
				pairs[i] = s.pop()
			}
			for i := 0; i < a; i++ {
				key, ok := pairs[2*i].(string)
				if !ok {
					s.fail(line, fmt.Errorf("map key must be string, got %s", lang.TypeOf(pairs[2*i])))
					return
				}
				m.Items[key] = pairs[2*i+1]
			}
			s.push(m)
			s.pc++
		}
	case bytecode.OpIndex:
		return func(s *state) {
			key := s.pop()
			container := s.pop()
			// Fast path: list[int], the inner-loop access pattern of the
			// matrix benchmarks.
			if l, ok := container.(*lang.List); ok {
				if i, ok := key.(int64); ok && i >= 0 && i < int64(len(l.Items)) {
					s.push(l.Items[i])
					s.pc++
					return
				}
			}
			v, err := vm.Index(container, key)
			if err != nil {
				s.fail(line, err)
				return
			}
			s.push(v)
			s.pc++
		}
	case bytecode.OpSetIndex:
		return func(s *state) {
			val := s.pop()
			key := s.pop()
			container := s.pop()
			if l, ok := container.(*lang.List); ok {
				if i, ok := key.(int64); ok && i >= 0 && i < int64(len(l.Items)) {
					l.Items[i] = val
					s.pc++
					return
				}
			}
			if err := vm.SetIndex(container, key, val); err != nil {
				s.fail(line, err)
				return
			}
			s.pc++
		}
	case bytecode.OpIterNew:
		return func(s *state) {
			it, err := vm.NewIter(s.pop())
			if err != nil {
				s.fail(line, err)
				return
			}
			s.push(it)
			s.pc++
		}
	case bytecode.OpIterNext:
		return func(s *state) {
			it := s.stack[len(s.stack)-1].(*vm.Iter)
			if item, ok := it.Next(); ok {
				s.push(item)
				s.pc++
			} else {
				s.pop()
				s.pc = a
			}
		}
	case bytecode.OpClosure:
		inner := fn.Consts[a].(*bytecode.Function)
		return func(s *state) { s.push(&bytecode.Closure{Fn: inner}); s.pc++ }
	default:
		op := ins.Op
		return func(s *state) { s.fail(line, fmt.Errorf("unknown opcode %s", op)) }
	}
}

// intFastBinop builds a step with a speculative int64 fast path and a
// generic fallback through the shared interpreter semantics.
func intFastBinop(op bytecode.Op, line int, fast func(a, b int64) int64) step {
	return func(s *state) {
		right := s.pop()
		left := s.pop()
		if li, ok := left.(int64); ok {
			if ri, ok := right.(int64); ok {
				s.push(fast(li, ri))
				s.pc++
				return
			}
		}
		v, err := vm.BinaryOp(op, left, right)
		if err != nil {
			s.fail(line, err)
			return
		}
		s.push(v)
		s.pc++
	}
}

func intFastCompare(op bytecode.Op, line int, fast func(a, b int64) bool) step {
	return func(s *state) {
		right := s.pop()
		left := s.pop()
		if li, ok := left.(int64); ok {
			if ri, ok := right.(int64); ok {
				s.push(fast(li, ri))
				s.pc++
				return
			}
		}
		v, err := vm.BinaryOp(op, left, right)
		if err != nil {
			s.fail(line, err)
			return
		}
		s.push(v)
		s.pc++
	}
}
