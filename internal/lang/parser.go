package lang

import (
	"fmt"
	"strconv"
)

// Parser builds an AST from a token stream using recursive descent with
// Pratt-style operator precedence for expressions.
type Parser struct {
	toks []Token
	pos  int
}

// Parse parses a complete FaaSLang module.
func Parse(src string) (*Program, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	prog := &Program{}
	for !p.at(TokenEOF) {
		stmt, err := p.statement()
		if err != nil {
			return nil, err
		}
		prog.Stmts = append(prog.Stmts, stmt)
	}
	return prog, nil
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) at(t TokenType) bool { return p.cur().Type == t }

func (p *Parser) expect(t TokenType) (Token, error) {
	if !p.at(t) {
		return Token{}, fmt.Errorf("lang: %s: expected %s, found %s %q",
			p.cur().Pos(), t, p.cur().Type, p.cur().Literal)
	}
	return p.next(), nil
}

// eatSemi consumes an optional statement-terminating semicolon.
func (p *Parser) eatSemi() {
	if p.at(TokenSemi) {
		p.next()
	}
}

// ---- Statements ----

func (p *Parser) statement() (Stmt, error) {
	switch p.cur().Type {
	case TokenAt, TokenFunc:
		return p.funcDecl()
	case TokenLet:
		return p.letStmt()
	case TokenIf:
		return p.ifStmt()
	case TokenWhile:
		return p.whileStmt()
	case TokenFor:
		return p.forInStmt()
	case TokenReturn:
		tok := p.next()
		var val Expr
		if !p.at(TokenSemi) && !p.at(TokenRBrace) && !p.at(TokenEOF) {
			var err error
			val, err = p.expression()
			if err != nil {
				return nil, err
			}
		}
		p.eatSemi()
		return &ReturnStmt{base: base{tok}, Value: val}, nil
	case TokenBreak:
		tok := p.next()
		p.eatSemi()
		return &BreakStmt{base{tok}}, nil
	case TokenContinue:
		tok := p.next()
		p.eatSemi()
		return &ContinueStmt{base{tok}}, nil
	case TokenLBrace:
		return p.block()
	default:
		return p.simpleStmt()
	}
}

// simpleStmt parses either an assignment (x = e, c[i] = e) or a bare
// expression statement.
func (p *Parser) simpleStmt() (Stmt, error) {
	tok := p.cur()
	lhs, err := p.expression()
	if err != nil {
		return nil, err
	}
	if p.at(TokenAssign) {
		p.next()
		switch lhs.(type) {
		case *Ident, *IndexExpr:
		default:
			return nil, fmt.Errorf("lang: %s: invalid assignment target", tok.Pos())
		}
		rhs, err := p.expression()
		if err != nil {
			return nil, err
		}
		p.eatSemi()
		return &AssignStmt{base: base{tok}, Target: lhs, Value: rhs}, nil
	}
	p.eatSemi()
	return &ExprStmt{base: base{tok}, X: lhs}, nil
}

func (p *Parser) annotations() ([]Annotation, error) {
	var anns []Annotation
	for p.at(TokenAt) {
		p.next()
		nameTok, err := p.expect(TokenIdent)
		if err != nil {
			return nil, err
		}
		ann := Annotation{Name: nameTok.Literal, Args: map[string]string{}}
		if p.at(TokenLParen) {
			p.next()
			for !p.at(TokenRParen) {
				keyTok, err := p.expect(TokenIdent)
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(TokenAssign); err != nil {
					return nil, err
				}
				valTok := p.next()
				switch valTok.Type {
				case TokenTrue, TokenFalse, TokenInt, TokenFloat, TokenString, TokenIdent:
					ann.Args[keyTok.Literal] = valTok.Literal
				default:
					return nil, fmt.Errorf("lang: %s: bad annotation value %q", valTok.Pos(), valTok.Literal)
				}
				if p.at(TokenComma) {
					p.next()
				}
			}
			if _, err := p.expect(TokenRParen); err != nil {
				return nil, err
			}
		}
		anns = append(anns, ann)
	}
	return anns, nil
}

func (p *Parser) funcDecl() (Stmt, error) {
	anns, err := p.annotations()
	if err != nil {
		return nil, err
	}
	tok, err := p.expect(TokenFunc)
	if err != nil {
		return nil, err
	}
	nameTok, err := p.expect(TokenIdent)
	if err != nil {
		return nil, err
	}
	params, err := p.paramList()
	if err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &FuncDecl{
		base:        base{tok},
		Name:        nameTok.Literal,
		Params:      params,
		Body:        body,
		Annotations: anns,
	}, nil
}

func (p *Parser) paramList() ([]string, error) {
	if _, err := p.expect(TokenLParen); err != nil {
		return nil, err
	}
	var params []string
	for !p.at(TokenRParen) {
		tok, err := p.expect(TokenIdent)
		if err != nil {
			return nil, err
		}
		params = append(params, tok.Literal)
		if p.at(TokenComma) {
			p.next()
		} else {
			break
		}
	}
	if _, err := p.expect(TokenRParen); err != nil {
		return nil, err
	}
	return params, nil
}

func (p *Parser) letStmt() (Stmt, error) {
	tok := p.next() // let
	nameTok, err := p.expect(TokenIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokenAssign); err != nil {
		return nil, err
	}
	val, err := p.expression()
	if err != nil {
		return nil, err
	}
	p.eatSemi()
	return &LetStmt{base: base{tok}, Name: nameTok.Literal, Value: val}, nil
}

func (p *Parser) ifStmt() (Stmt, error) {
	tok := p.next() // if
	if _, err := p.expect(TokenLParen); err != nil {
		return nil, err
	}
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokenRParen); err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	stmt := &IfStmt{base: base{tok}, Cond: cond, Then: then}
	if p.at(TokenElse) {
		elseTok := p.next()
		if p.at(TokenIf) {
			inner, err := p.ifStmt()
			if err != nil {
				return nil, err
			}
			stmt.Else = &Block{base: base{elseTok}, Stmts: []Stmt{inner}}
		} else {
			blk, err := p.block()
			if err != nil {
				return nil, err
			}
			stmt.Else = blk
		}
	}
	return stmt, nil
}

func (p *Parser) whileStmt() (Stmt, error) {
	tok := p.next() // while
	if _, err := p.expect(TokenLParen); err != nil {
		return nil, err
	}
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokenRParen); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{base: base{tok}, Cond: cond, Body: body}, nil
}

func (p *Parser) forInStmt() (Stmt, error) {
	tok := p.next() // for
	if _, err := p.expect(TokenLParen); err != nil {
		return nil, err
	}
	varTok, err := p.expect(TokenIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokenIn); err != nil {
		return nil, err
	}
	iter, err := p.expression()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokenRParen); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &ForInStmt{base: base{tok}, Var: varTok.Literal, Iterable: iter, Body: body}, nil
}

func (p *Parser) block() (*Block, error) {
	tok, err := p.expect(TokenLBrace)
	if err != nil {
		return nil, err
	}
	blk := &Block{base: base{tok}}
	for !p.at(TokenRBrace) && !p.at(TokenEOF) {
		stmt, err := p.statement()
		if err != nil {
			return nil, err
		}
		blk.Stmts = append(blk.Stmts, stmt)
	}
	if _, err := p.expect(TokenRBrace); err != nil {
		return nil, err
	}
	return blk, nil
}

// ---- Expressions (Pratt) ----

// Binding powers, low to high.
const (
	precLowest  = iota
	precOr      // ||
	precAnd     // &&
	precEquals  // == !=
	precCompare // < <= > >=
	precSum     // + -
	precProduct // * / %
	precUnary   // -x !x
	precCall    // f(x) a[i] a.b
)

var precedences = map[TokenType]int{
	TokenOr:       precOr,
	TokenAnd:      precAnd,
	TokenEq:       precEquals,
	TokenNotEq:    precEquals,
	TokenLt:       precCompare,
	TokenLtEq:     precCompare,
	TokenGt:       precCompare,
	TokenGtEq:     precCompare,
	TokenPlus:     precSum,
	TokenMinus:    precSum,
	TokenStar:     precProduct,
	TokenSlash:    precProduct,
	TokenPercent:  precProduct,
	TokenLParen:   precCall,
	TokenLBracket: precCall,
	TokenDot:      precCall,
}

func (p *Parser) expression() (Expr, error) { return p.parseExpr(precLowest) }

func (p *Parser) parseExpr(minPrec int) (Expr, error) {
	left, err := p.prefix()
	if err != nil {
		return nil, err
	}
	for {
		prec, ok := precedences[p.cur().Type]
		if !ok || prec <= minPrec {
			return left, nil
		}
		left, err = p.infix(left)
		if err != nil {
			return nil, err
		}
	}
}

func (p *Parser) prefix() (Expr, error) {
	tok := p.cur()
	switch tok.Type {
	case TokenIdent:
		p.next()
		return &Ident{base: base{tok}, Name: tok.Literal}, nil
	case TokenInt:
		p.next()
		v, err := strconv.ParseInt(tok.Literal, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("lang: %s: bad int literal %q: %v", tok.Pos(), tok.Literal, err)
		}
		return &IntLit{base: base{tok}, Value: v}, nil
	case TokenFloat:
		p.next()
		v, err := strconv.ParseFloat(tok.Literal, 64)
		if err != nil {
			return nil, fmt.Errorf("lang: %s: bad float literal %q: %v", tok.Pos(), tok.Literal, err)
		}
		return &FloatLit{base: base{tok}, Value: v}, nil
	case TokenString:
		p.next()
		return &StringLit{base: base{tok}, Value: tok.Literal}, nil
	case TokenTrue, TokenFalse:
		p.next()
		return &BoolLit{base: base{tok}, Value: tok.Type == TokenTrue}, nil
	case TokenNull:
		p.next()
		return &NullLit{base{tok}}, nil
	case TokenMinus, TokenBang:
		p.next()
		x, err := p.parseExpr(precUnary)
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{base: base{tok}, Op: tok.Type, X: x}, nil
	case TokenLParen:
		p.next()
		x, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokenRParen); err != nil {
			return nil, err
		}
		return x, nil
	case TokenLBracket:
		p.next()
		lit := &ListLit{base: base{tok}}
		for !p.at(TokenRBracket) {
			item, err := p.expression()
			if err != nil {
				return nil, err
			}
			lit.Items = append(lit.Items, item)
			if p.at(TokenComma) {
				p.next()
			} else {
				break
			}
		}
		if _, err := p.expect(TokenRBracket); err != nil {
			return nil, err
		}
		return lit, nil
	case TokenLBrace:
		p.next()
		lit := &MapLit{base: base{tok}}
		for !p.at(TokenRBrace) {
			key, err := p.expression()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokenColon); err != nil {
				return nil, err
			}
			val, err := p.expression()
			if err != nil {
				return nil, err
			}
			lit.Keys = append(lit.Keys, key)
			lit.Values = append(lit.Values, val)
			if p.at(TokenComma) {
				p.next()
			} else {
				break
			}
		}
		if _, err := p.expect(TokenRBrace); err != nil {
			return nil, err
		}
		return lit, nil
	case TokenFunc:
		p.next()
		params, err := p.paramList()
		if err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &FuncLit{base: base{tok}, Params: params, Body: body}, nil
	}
	return nil, fmt.Errorf("lang: %s: unexpected %s %q in expression", tok.Pos(), tok.Type, tok.Literal)
}

func (p *Parser) infix(left Expr) (Expr, error) {
	tok := p.cur()
	switch tok.Type {
	case TokenLParen:
		p.next()
		call := &CallExpr{base: base{tok}, Fn: left}
		for !p.at(TokenRParen) {
			arg, err := p.expression()
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, arg)
			if p.at(TokenComma) {
				p.next()
			} else {
				break
			}
		}
		if _, err := p.expect(TokenRParen); err != nil {
			return nil, err
		}
		return call, nil
	case TokenLBracket:
		p.next()
		idx, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokenRBracket); err != nil {
			return nil, err
		}
		return &IndexExpr{base: base{tok}, X: left, Index: idx}, nil
	case TokenDot:
		p.next()
		field, err := p.expect(TokenIdent)
		if err != nil {
			return nil, err
		}
		// m.field is sugar for m["field"].
		return &IndexExpr{
			base:  base{tok},
			X:     left,
			Index: &StringLit{base: base{field}, Value: field.Literal},
		}, nil
	default:
		p.next()
		right, err := p.parseExpr(precedences[tok.Type])
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{base: base{tok}, Op: tok.Type, Left: left, Right: right}, nil
	}
}
