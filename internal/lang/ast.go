package lang

// Node is the interface implemented by every AST node.
type Node interface {
	node()
	// Pos returns the "line:col" position of the node's first token.
	Pos() string
}

// Stmt is a statement node; Expr an expression node.
type Stmt interface {
	Node
	stmt()
}

type Expr interface {
	Node
	expr()
}

type base struct{ Tok Token }

func (b base) node()       {}
func (b base) Pos() string { return b.Tok.Pos() }

// Program is a parsed FaaSLang module: an ordered list of top-level
// statements. Function declarations define globals; other statements run
// at module load time.
type Program struct {
	Stmts []Stmt
}

// Annotation is a decorator attached to a function declaration, e.g.
// @jit(cache=true). Args maps argument names to their literal text.
type Annotation struct {
	Name string
	Args map[string]string
}

// ---- Statements ----

// FuncDecl declares a named function, optionally decorated.
type FuncDecl struct {
	base
	Name        string
	Params      []string
	Body        *Block
	Annotations []Annotation
}

// LetStmt declares and initializes a new variable.
type LetStmt struct {
	base
	Name  string
	Value Expr
}

// AssignStmt assigns to a variable or an index target.
type AssignStmt struct {
	base
	Target Expr // *Ident or *IndexExpr
	Value  Expr
}

// IfStmt is if/else; Else may be nil or contain another IfStmt ("else if").
type IfStmt struct {
	base
	Cond Expr
	Then *Block
	Else *Block
}

// WhileStmt loops while Cond is truthy.
type WhileStmt struct {
	base
	Cond Expr
	Body *Block
}

// ForInStmt iterates a list's items or a map's keys.
type ForInStmt struct {
	base
	Var      string
	Iterable Expr
	Body     *Block
}

// ReturnStmt returns from the enclosing function; Value may be nil.
type ReturnStmt struct {
	base
	Value Expr
}

// BreakStmt and ContinueStmt control the innermost loop.
type BreakStmt struct{ base }
type ContinueStmt struct{ base }

// ExprStmt evaluates an expression for its side effects.
type ExprStmt struct {
	base
	X Expr
}

// Block is a braced list of statements.
type Block struct {
	base
	Stmts []Stmt
}

func (*FuncDecl) stmt()     {}
func (*LetStmt) stmt()      {}
func (*AssignStmt) stmt()   {}
func (*IfStmt) stmt()       {}
func (*WhileStmt) stmt()    {}
func (*ForInStmt) stmt()    {}
func (*ReturnStmt) stmt()   {}
func (*BreakStmt) stmt()    {}
func (*ContinueStmt) stmt() {}
func (*ExprStmt) stmt()     {}
func (*Block) stmt()        {}

// ---- Expressions ----

// Ident references a variable or global by name.
type Ident struct {
	base
	Name string
}

// IntLit, FloatLit, StringLit, BoolLit, NullLit are literals.
type IntLit struct {
	base
	Value int64
}

type FloatLit struct {
	base
	Value float64
}

type StringLit struct {
	base
	Value string
}

type BoolLit struct {
	base
	Value bool
}

type NullLit struct{ base }

// ListLit is [a, b, c]; MapLit is {"k": v, ...}.
type ListLit struct {
	base
	Items []Expr
}

type MapLit struct {
	base
	Keys   []Expr
	Values []Expr
}

// BinaryExpr applies an infix operator.
type BinaryExpr struct {
	base
	Op    TokenType
	Left  Expr
	Right Expr
}

// UnaryExpr applies a prefix operator (- or !).
type UnaryExpr struct {
	base
	Op TokenType
	X  Expr
}

// CallExpr calls a function value with arguments.
type CallExpr struct {
	base
	Fn   Expr
	Args []Expr
}

// IndexExpr is container[key]; also produced by the m.field sugar
// (rewritten to m["field"] by the parser).
type IndexExpr struct {
	base
	X     Expr
	Index Expr
}

// FuncLit is an anonymous function expression.
type FuncLit struct {
	base
	Params []string
	Body   *Block
}

func (*Ident) expr()      {}
func (*IntLit) expr()     {}
func (*FloatLit) expr()   {}
func (*StringLit) expr()  {}
func (*BoolLit) expr()    {}
func (*NullLit) expr()    {}
func (*ListLit) expr()    {}
func (*MapLit) expr()     {}
func (*BinaryExpr) expr() {}
func (*UnaryExpr) expr()  {}
func (*CallExpr) expr()   {}
func (*IndexExpr) expr()  {}
func (*FuncLit) expr()    {}

// Functions returns the top-level function declarations of a program in
// source order, which the Fireworks annotator uses to decide what to
// decorate with @jit.
func (p *Program) Functions() []*FuncDecl {
	var fns []*FuncDecl
	for _, s := range p.Stmts {
		if fd, ok := s.(*FuncDecl); ok {
			fns = append(fns, fd)
		}
	}
	return fns
}

// Function returns the top-level function with the given name, or nil.
func (p *Program) Function(name string) *FuncDecl {
	for _, fd := range p.Functions() {
		if fd.Name == name {
			return fd
		}
	}
	return nil
}

// HasAnnotation reports whether the declaration carries the named
// decorator.
func (f *FuncDecl) HasAnnotation(name string) bool {
	for _, a := range f.Annotations {
		if a.Name == name {
			return true
		}
	}
	return false
}
