package lang

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	toks, err := Tokenize(`func main(params) { let x = 1.5; return x >= 2 && !done; }`)
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenType{
		TokenFunc, TokenIdent, TokenLParen, TokenIdent, TokenRParen, TokenLBrace,
		TokenLet, TokenIdent, TokenAssign, TokenFloat, TokenSemi,
		TokenReturn, TokenIdent, TokenGtEq, TokenInt, TokenAnd, TokenBang, TokenIdent, TokenSemi,
		TokenRBrace, TokenEOF,
	}
	if len(toks) != len(want) {
		t.Fatalf("token count %d, want %d: %v", len(toks), len(want), toks)
	}
	for i, w := range want {
		if toks[i].Type != w {
			t.Errorf("token %d = %s, want %s", i, toks[i].Type, w)
		}
	}
}

func TestTokenizeComments(t *testing.T) {
	toks, err := Tokenize("// c++ style\n# python style\nlet x = 1;")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Type != TokenLet {
		t.Fatalf("comments not skipped: %v", toks[0])
	}
	if toks[0].Line != 3 {
		t.Fatalf("line tracking: %d", toks[0].Line)
	}
}

func TestTokenizeStrings(t *testing.T) {
	toks, err := Tokenize(`"a\nb" 'single' "esc\"q"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Literal != "a\nb" || toks[1].Literal != "single" || toks[2].Literal != `esc"q` {
		t.Fatalf("literals: %q %q %q", toks[0].Literal, toks[1].Literal, toks[2].Literal)
	}
}

func TestTokenizeErrors(t *testing.T) {
	for _, src := range []string{`"unterminated`, `"bad\q"`, "§", "&x", "|y"} {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("Tokenize(%q) succeeded", src)
		}
	}
}

func TestParseProgramShape(t *testing.T) {
	src := `
@jit(cache=true)
func main(params) {
  let l = [1, 2, 3];
  for (x in l) {
    if (x % 2 == 0) { continue; } else { print(x); }
  }
  while (false) { break; }
  return {"n": len(l), "f": func(a) { return a; }};
}
let g = main({});
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Stmts) != 2 {
		t.Fatalf("stmts = %d", len(prog.Stmts))
	}
	fd := prog.Function("main")
	if fd == nil {
		t.Fatal("main not found")
	}
	if !fd.HasAnnotation("jit") {
		t.Fatal("annotation lost")
	}
	if fd.Annotations[0].Args["cache"] != "true" {
		t.Fatalf("annotation args: %+v", fd.Annotations[0].Args)
	}
	if len(prog.Functions()) != 1 {
		t.Fatalf("functions = %d", len(prog.Functions()))
	}
}

func TestParsePrecedence(t *testing.T) {
	prog, err := Parse("let x = 1 + 2 * 3 < 7 == true || false;")
	if err != nil {
		t.Fatal(err)
	}
	let := prog.Stmts[0].(*LetStmt)
	// Top-level operator must be ||.
	or, ok := let.Value.(*BinaryExpr)
	if !ok || or.Op != TokenOr {
		t.Fatalf("top op: %T", let.Value)
	}
	eq := or.Left.(*BinaryExpr)
	if eq.Op != TokenEq {
		t.Fatalf("next op: %v", eq.Op)
	}
	lt := eq.Left.(*BinaryExpr)
	if lt.Op != TokenLt {
		t.Fatalf("compare op: %v", lt.Op)
	}
	sum := lt.Left.(*BinaryExpr)
	if sum.Op != TokenPlus {
		t.Fatalf("sum op: %v", sum.Op)
	}
	prod := sum.Right.(*BinaryExpr)
	if prod.Op != TokenStar {
		t.Fatalf("product op: %v", prod.Op)
	}
}

func TestParseDotSugar(t *testing.T) {
	prog, err := Parse("let v = m.field;")
	if err != nil {
		t.Fatal(err)
	}
	idx := prog.Stmts[0].(*LetStmt).Value.(*IndexExpr)
	if lit, ok := idx.Index.(*StringLit); !ok || lit.Value != "field" {
		t.Fatalf("dot sugar produced %T", idx.Index)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"func {",
		"let = 3;",
		"if x { }",
		"func f(a b) {}",
		"let x = ;",
		"1 + 2 = 3;",
		"for (x of l) {}",
		"@jit(cache=) func f() {}",
		"let m = {1: 2};", // non-colon... actually int keys parse; see below
	}
	for _, src := range cases[:8] {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestTypeOfAndTruthy(t *testing.T) {
	cases := []struct {
		v      Value
		ty     Type
		truthy bool
	}{
		{nil, TNull, false},
		{true, TBool, true},
		{false, TBool, false},
		{int64(0), TInt, false},
		{int64(3), TInt, true},
		{0.0, TFloat, false},
		{2.5, TFloat, true},
		{"", TString, false},
		{"x", TString, true},
		{NewList(), TList, false},
		{NewList(int64(1)), TList, true},
		{NewMap(), TMap, false},
		{&Native{Name: "f"}, TFunc, true},
	}
	for _, tc := range cases {
		if got := TypeOf(tc.v); got != tc.ty {
			t.Errorf("TypeOf(%v) = %v, want %v", tc.v, got, tc.ty)
		}
		if got := Truthy(tc.v); got != tc.truthy {
			t.Errorf("Truthy(%v) = %v, want %v", tc.v, got, tc.truthy)
		}
	}
}

func TestEqualStructural(t *testing.T) {
	a := NewList(int64(1), "x", NewList(int64(2)))
	b := NewList(int64(1), "x", NewList(int64(2)))
	if !Equal(a, b) {
		t.Fatal("structurally equal lists differ")
	}
	b.Items[2].(*List).Items[0] = int64(3)
	if Equal(a, b) {
		t.Fatal("different lists equal")
	}
	m1, m2 := NewMap(), NewMap()
	m1.Set("k", int64(1))
	m2.Set("k", int64(1))
	if !Equal(m1, m2) {
		t.Fatal("equal maps differ")
	}
	m2.Set("extra", nil)
	if Equal(m1, m2) {
		t.Fatal("maps with different sizes equal")
	}
	if !Equal(int64(2), 2.0) || !Equal(2.0, int64(2)) {
		t.Fatal("cross-numeric equality failed")
	}
	if Equal(int64(1), "1") {
		t.Fatal("int equals string")
	}
}

func TestFormat(t *testing.T) {
	m := NewMap()
	m.Set("b", int64(2))
	m.Set("a", "s")
	cases := []struct {
		v    Value
		want string
	}{
		{nil, "null"},
		{true, "true"},
		{int64(-3), "-3"},
		{2.5, "2.5"},
		{"plain", "plain"},
		{NewList(int64(1), "x"), `[1, "x"]`},
		{m, `{"a": "s", "b": 2}`},
	}
	for _, tc := range cases {
		if got := Format(tc.v); got != tc.want {
			t.Errorf("Format(%v) = %q, want %q", tc.v, got, tc.want)
		}
	}
}

func TestDeepCopyIndependence(t *testing.T) {
	m := NewMap()
	inner := NewList(int64(1))
	m.Set("l", inner)
	c, err := DeepCopy(m)
	if err != nil {
		t.Fatal(err)
	}
	inner.Items[0] = int64(99)
	copied := c.(*Map).Get("l").(*List)
	if copied.Items[0] != int64(1) {
		t.Fatal("copy shares mutable state")
	}
}

func TestDeepCopyGlobalsSkipsNatives(t *testing.T) {
	globals := map[string]Value{
		"data":  NewList(int64(1)),
		"print": &Native{Name: "print"},
	}
	copied, err := DeepCopyGlobals(globals, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := copied["print"]; ok {
		t.Fatal("native survived skipNatives")
	}
	if _, ok := copied["data"]; !ok {
		t.Fatal("data lost")
	}
	keep, err := DeepCopyGlobals(globals, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := keep["print"]; !ok {
		t.Fatal("native dropped without skipNatives")
	}
}

func TestDeepCopyCycleGuard(t *testing.T) {
	l := NewList()
	l.Items = append(l.Items, l) // cycle
	if _, err := DeepCopy(l); err == nil || !strings.Contains(err.Error(), "depth") {
		t.Fatalf("cycle err = %v", err)
	}
}

// Property: Equal(v, DeepCopy(v)) for generated scalar/list/map values.
func TestDeepCopyEqualProperty(t *testing.T) {
	f := func(ints []int64, strs []string) bool {
		l := NewList()
		m := NewMap()
		for i, n := range ints {
			l.Items = append(l.Items, n)
			if i < len(strs) {
				m.Set(strs[i], n)
			}
		}
		root := NewMap()
		root.Set("l", l)
		root.Set("m", m)
		c, err := DeepCopy(root)
		if err != nil {
			return false
		}
		return Equal(root, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
