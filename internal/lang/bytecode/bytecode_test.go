package bytecode

import (
	"strings"
	"testing"

	"repro/internal/lang"
)

func compileOne(t *testing.T, src string) *Module {
	t.Helper()
	mod, err := CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

func TestCompileFunctionShape(t *testing.T) {
	mod := compileOne(t, `
func add(a, b) { return a + b; }
func main(params) { return add(1, 2); }
`)
	if len(mod.Functions) != 2 {
		t.Fatalf("functions = %d", len(mod.Functions))
	}
	add := mod.Function("add")
	if add == nil {
		t.Fatal("add missing")
	}
	if len(add.Params) != 2 || add.NumLocals < 2 {
		t.Fatalf("add shape: params=%v locals=%d", add.Params, add.NumLocals)
	}
	// add body: LOADL 0, LOADL 1, ADD, RET + implicit null/RET.
	ops := opsOf(add)
	want := []Op{OpLoadLocal, OpLoadLocal, OpAdd, OpReturn, OpNull, OpReturn}
	if !equalOps(ops, want) {
		t.Fatalf("add code = %v, want %v\n%s", ops, want, Disassemble(add))
	}
	if mod.Function("missing") != nil {
		t.Fatal("phantom function")
	}
}

func opsOf(f *Function) []Op {
	out := make([]Op, len(f.Code))
	for i, ins := range f.Code {
		out[i] = ins.Op
	}
	return out
}

func equalOps(a, b []Op) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestConstantDeduplication(t *testing.T) {
	mod := compileOne(t, `func f() { return 7 + 7 + 7; }`)
	f := mod.Function("f")
	count := 0
	for _, c := range f.Consts {
		if c == int64(7) {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("constant 7 appears %d times", count)
	}
}

func TestLoopCompilesBackEdge(t *testing.T) {
	mod := compileOne(t, `func f() { let i = 0; while (i < 3) { i = i + 1; } }`)
	f := mod.Function("f")
	hasLoop := false
	for _, ins := range f.Code {
		if ins.Op == OpLoop {
			hasLoop = true
			if ins.A < 0 || ins.A >= len(f.Code) {
				t.Fatalf("loop target %d out of range", ins.A)
			}
		}
	}
	if !hasLoop {
		t.Fatal("no back edge emitted")
	}
}

func TestJumpTargetsInRange(t *testing.T) {
	mod := compileOne(t, `
func f(n) {
  let acc = 0;
  for (x in [1, 2, 3]) {
    if (x == 2 && n > 0) { continue; }
    if (x == 3 || n < 0) { break; }
    acc = acc + x;
  }
  while (acc > 100) { acc = acc - 1; }
  return acc;
}
`)
	f := mod.Function("f")
	for pc, ins := range f.Code {
		switch ins.Op {
		case OpJump, OpJumpIfFalse, OpJumpIfTrue, OpLoop, OpIterNext:
			if ins.A < 0 || ins.A > len(f.Code) {
				t.Fatalf("pc %d: %s target %d out of [0,%d]", pc, ins.Op, ins.A, len(f.Code))
			}
		}
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		src, sub string
	}{
		{`return 3;`, "return outside function"},
		{`break;`, "break outside loop"},
		{`continue;`, "continue outside loop"},
	}
	for _, tc := range cases {
		if _, err := CompileSource(tc.src); err == nil || !strings.Contains(err.Error(), tc.sub) {
			t.Errorf("CompileSource(%q) err = %v, want %q", tc.src, err, tc.sub)
		}
	}
}

func TestAnnotationsPreserved(t *testing.T) {
	mod := compileOne(t, `
@jit(cache=true)
func hot() { return 1; }
func cold() { return 2; }
`)
	if !mod.Function("hot").HasAnnotation("jit") {
		t.Fatal("hot lost annotation")
	}
	if mod.Function("cold").HasAnnotation("jit") {
		t.Fatal("cold gained annotation")
	}
}

func TestTotalInstructions(t *testing.T) {
	mod := compileOne(t, `func f() { return 1; } let x = f();`)
	if mod.TotalInstructions() <= 0 {
		t.Fatal("no instructions counted")
	}
	sum := len(mod.TopLevel.Code)
	for _, f := range mod.Functions {
		sum += len(f.Code)
	}
	if mod.TotalInstructions() != sum {
		t.Fatalf("TotalInstructions = %d, want %d", mod.TotalInstructions(), sum)
	}
}

func TestCategoryOf(t *testing.T) {
	cases := map[Op]Category{
		OpAdd: CatArith, OpLt: CatArith, OpNeg: CatArith,
		OpIndex: CatIndex, OpMakeMap: CatIndex,
		OpCall:      CatCall,
		OpLoadLocal: CatOther, OpJump: CatOther, OpReturn: CatOther,
	}
	for op, want := range cases {
		if got := CategoryOf(op); got != want {
			t.Errorf("CategoryOf(%s) = %v, want %v", op, got, want)
		}
	}
}

func TestDisassembleReadable(t *testing.T) {
	mod := compileOne(t, `func f(a) { return a + 1; }`)
	dis := Disassemble(mod.Function("f"))
	for _, want := range []string{"func f(a)", "LOADL", "ADD", "RET"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dis)
		}
	}
}

func TestClosureValue(t *testing.T) {
	mod := compileOne(t, `func f() { return 0; }`)
	cl := &Closure{Fn: mod.Function("f")}
	if lang.TypeOf(cl) != lang.TFunc {
		t.Fatalf("TypeOf(closure) = %v", lang.TypeOf(cl))
	}
	if cl.String() != "<func f>" {
		t.Fatalf("String = %q", cl.String())
	}
}

func TestNestedFunctionDecl(t *testing.T) {
	mod := compileOne(t, `
func outer() {
  func inner(x) { return x * 2; }
  return inner(21);
}
`)
	// inner is not a top-level module function...
	if mod.Function("inner") != nil {
		t.Fatal("nested function leaked to module level")
	}
	// ...but outer carries it as a closure constant.
	found := false
	for _, c := range mod.Function("outer").Consts {
		if fn, ok := c.(*Function); ok && fn.Name == "inner" {
			found = true
		}
	}
	if !found {
		t.Fatal("inner not compiled into outer's constants")
	}
}
