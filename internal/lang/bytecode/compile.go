package bytecode

import (
	"fmt"

	"repro/internal/lang"
)

// Compile lowers a parsed program to a Module.
func Compile(prog *lang.Program) (*Module, error) {
	c := &compiler{fn: &Function{Name: "__main__"}}
	c.pushScope()
	mod := &Module{}
	for _, stmt := range prog.Stmts {
		if fd, ok := stmt.(*lang.FuncDecl); ok {
			fn, err := compileFunction(fd.Name, fd.Params, fd.Body, fd.Annotations)
			if err != nil {
				return nil, err
			}
			mod.Functions = append(mod.Functions, fn)
			// Top-level code binds the function into the globals.
			idx := c.constant(fn)
			c.emit(lineOf(fd), OpClosure, idx)
			c.emit(lineOf(fd), OpStoreGlobal, c.constant(fd.Name))
			continue
		}
		if err := c.stmt(stmt); err != nil {
			return nil, err
		}
	}
	c.emit(0, OpNull, 0)
	c.emit(0, OpReturn, 0)
	c.fn.NumLocals = c.maxLocals
	mod.TopLevel = c.fn
	return mod, nil
}

// CompileSource parses and compiles FaaSLang source text.
func CompileSource(src string) (*Module, error) {
	prog, err := lang.Parse(src)
	if err != nil {
		return nil, err
	}
	return Compile(prog)
}

func compileFunction(name string, params []string, body *lang.Block, anns []lang.Annotation) (*Function, error) {
	c := &compiler{fn: &Function{Name: name, Params: params, Annotations: anns}, inFunction: true}
	c.pushScope()
	for _, p := range params {
		c.declareLocal(p)
	}
	if err := c.stmt(body); err != nil {
		return nil, err
	}
	// Implicit "return null" at the end of every function.
	c.emit(0, OpNull, 0)
	c.emit(0, OpReturn, 0)
	c.fn.NumLocals = c.maxLocals
	return c.fn, nil
}

type scope struct {
	names map[string]int
}

type loopCtx struct {
	start          int
	breakPatches   []int
	continueTarget int // -1 until known (for-in patches later)
	contPatches    []int
}

type compiler struct {
	fn         *Function
	scopes     []*scope
	nextLocal  int
	maxLocals  int
	loops      []*loopCtx
	inFunction bool
}

func lineOf(n lang.Node) int {
	// Positions are "line:col" strings; we only keep line numbers in
	// bytecode for error messages, parsed lazily here.
	var line int
	fmt.Sscanf(n.Pos(), "%d", &line)
	return line
}

func (c *compiler) emit(line int, op Op, a int) int {
	c.fn.Code = append(c.fn.Code, Instr{Op: op, A: a, Line: line})
	return len(c.fn.Code) - 1
}

func (c *compiler) patch(at, target int) { c.fn.Code[at].A = target }

func (c *compiler) here() int { return len(c.fn.Code) }

func (c *compiler) constant(v lang.Value) int {
	for i, existing := range c.fn.Consts {
		// Only deduplicate simple scalar constants; functions and
		// containers are identity-distinct.
		switch existing.(type) {
		case string, int64, float64, bool:
			if existing == v {
				return i
			}
		}
	}
	c.fn.Consts = append(c.fn.Consts, v)
	return len(c.fn.Consts) - 1
}

func (c *compiler) pushScope() {
	c.scopes = append(c.scopes, &scope{names: make(map[string]int)})
}

func (c *compiler) popScope() {
	top := c.scopes[len(c.scopes)-1]
	c.nextLocal -= len(top.names)
	c.scopes = c.scopes[:len(c.scopes)-1]
}

func (c *compiler) declareLocal(name string) int {
	top := c.scopes[len(c.scopes)-1]
	slot := c.nextLocal
	top.names[name] = slot
	c.nextLocal++
	if c.nextLocal > c.maxLocals {
		c.maxLocals = c.nextLocal
	}
	return slot
}

// resolve returns the local slot for name, or -1 if it is a global.
func (c *compiler) resolve(name string) int {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if slot, ok := c.scopes[i].names[name]; ok {
			return slot
		}
	}
	return -1
}

// ---- Statements ----

func (c *compiler) stmt(s lang.Stmt) error {
	switch s := s.(type) {
	case *lang.Block:
		c.pushScope()
		for _, inner := range s.Stmts {
			if err := c.stmt(inner); err != nil {
				return err
			}
		}
		c.popScope()
		return nil

	case *lang.LetStmt:
		if err := c.expr(s.Value); err != nil {
			return err
		}
		if c.inFunction {
			slot := c.declareLocal(s.Name)
			c.emit(lineOf(s), OpStoreLocal, slot)
		} else {
			c.emit(lineOf(s), OpStoreGlobal, c.constant(s.Name))
		}
		return nil

	case *lang.AssignStmt:
		switch target := s.Target.(type) {
		case *lang.Ident:
			if err := c.expr(s.Value); err != nil {
				return err
			}
			if slot := c.resolve(target.Name); slot >= 0 {
				c.emit(lineOf(s), OpStoreLocal, slot)
			} else {
				c.emit(lineOf(s), OpStoreGlobal, c.constant(target.Name))
			}
			return nil
		case *lang.IndexExpr:
			if err := c.expr(target.X); err != nil {
				return err
			}
			if err := c.expr(target.Index); err != nil {
				return err
			}
			if err := c.expr(s.Value); err != nil {
				return err
			}
			c.emit(lineOf(s), OpSetIndex, 0)
			return nil
		default:
			return fmt.Errorf("bytecode: %s: invalid assignment target", s.Pos())
		}

	case *lang.IfStmt:
		if err := c.expr(s.Cond); err != nil {
			return err
		}
		jumpElse := c.emit(lineOf(s), OpJumpIfFalse, -1)
		if err := c.stmt(s.Then); err != nil {
			return err
		}
		if s.Else != nil {
			jumpEnd := c.emit(lineOf(s), OpJump, -1)
			c.patch(jumpElse, c.here())
			if err := c.stmt(s.Else); err != nil {
				return err
			}
			c.patch(jumpEnd, c.here())
		} else {
			c.patch(jumpElse, c.here())
		}
		return nil

	case *lang.WhileStmt:
		start := c.here()
		loop := &loopCtx{start: start, continueTarget: start}
		c.loops = append(c.loops, loop)
		if err := c.expr(s.Cond); err != nil {
			return err
		}
		exit := c.emit(lineOf(s), OpJumpIfFalse, -1)
		if err := c.stmt(s.Body); err != nil {
			return err
		}
		c.emit(lineOf(s), OpLoop, start)
		c.patch(exit, c.here())
		for _, at := range loop.breakPatches {
			c.patch(at, c.here())
		}
		c.loops = c.loops[:len(c.loops)-1]
		return nil

	case *lang.ForInStmt:
		if err := c.expr(s.Iterable); err != nil {
			return err
		}
		c.emit(lineOf(s), OpIterNew, 0)
		start := c.here()
		loop := &loopCtx{start: start, continueTarget: start}
		c.loops = append(c.loops, loop)
		next := c.emit(lineOf(s), OpIterNext, -1)
		c.pushScope()
		var slot int
		if c.inFunction {
			slot = c.declareLocal(s.Var)
			c.emit(lineOf(s), OpStoreLocal, slot)
		} else {
			c.emit(lineOf(s), OpStoreGlobal, c.constant(s.Var))
		}
		if err := c.stmt(s.Body); err != nil {
			return err
		}
		c.popScope()
		c.emit(lineOf(s), OpLoop, start)
		c.patch(next, c.here())
		for _, at := range loop.breakPatches {
			c.patch(at, c.here())
		}
		c.loops = c.loops[:len(c.loops)-1]
		return nil

	case *lang.ReturnStmt:
		if !c.inFunction {
			return fmt.Errorf("bytecode: %s: return outside function", s.Pos())
		}
		if s.Value != nil {
			if err := c.expr(s.Value); err != nil {
				return err
			}
		} else {
			c.emit(lineOf(s), OpNull, 0)
		}
		c.emit(lineOf(s), OpReturn, 0)
		return nil

	case *lang.BreakStmt:
		if len(c.loops) == 0 {
			return fmt.Errorf("bytecode: %s: break outside loop", s.Pos())
		}
		loop := c.loops[len(c.loops)-1]
		loop.breakPatches = append(loop.breakPatches, c.emit(lineOf(s), OpJump, -1))
		return nil

	case *lang.ContinueStmt:
		if len(c.loops) == 0 {
			return fmt.Errorf("bytecode: %s: continue outside loop", s.Pos())
		}
		loop := c.loops[len(c.loops)-1]
		c.emit(lineOf(s), OpLoop, loop.continueTarget)
		return nil

	case *lang.ExprStmt:
		if err := c.expr(s.X); err != nil {
			return err
		}
		c.emit(lineOf(s), OpPop, 0)
		return nil

	case *lang.FuncDecl:
		// Nested function declarations become local/global bindings.
		fn, err := compileFunction(s.Name, s.Params, s.Body, s.Annotations)
		if err != nil {
			return err
		}
		c.emit(lineOf(s), OpClosure, c.constant(fn))
		if c.inFunction {
			slot := c.declareLocal(s.Name)
			c.emit(lineOf(s), OpStoreLocal, slot)
		} else {
			c.emit(lineOf(s), OpStoreGlobal, c.constant(s.Name))
		}
		return nil

	default:
		return fmt.Errorf("bytecode: %s: unsupported statement %T", s.Pos(), s)
	}
}

// ---- Expressions ----

func (c *compiler) expr(e lang.Expr) error {
	switch e := e.(type) {
	case *lang.IntLit:
		c.emit(lineOf(e), OpConst, c.constant(e.Value))
	case *lang.FloatLit:
		c.emit(lineOf(e), OpConst, c.constant(e.Value))
	case *lang.StringLit:
		c.emit(lineOf(e), OpConst, c.constant(e.Value))
	case *lang.BoolLit:
		if e.Value {
			c.emit(lineOf(e), OpTrue, 0)
		} else {
			c.emit(lineOf(e), OpFalse, 0)
		}
	case *lang.NullLit:
		c.emit(lineOf(e), OpNull, 0)
	case *lang.Ident:
		if slot := c.resolve(e.Name); slot >= 0 {
			c.emit(lineOf(e), OpLoadLocal, slot)
		} else {
			c.emit(lineOf(e), OpLoadGlobal, c.constant(e.Name))
		}
	case *lang.ListLit:
		for _, item := range e.Items {
			if err := c.expr(item); err != nil {
				return err
			}
		}
		c.emit(lineOf(e), OpMakeList, len(e.Items))
	case *lang.MapLit:
		for i := range e.Keys {
			if err := c.expr(e.Keys[i]); err != nil {
				return err
			}
			if err := c.expr(e.Values[i]); err != nil {
				return err
			}
		}
		c.emit(lineOf(e), OpMakeMap, len(e.Keys))
	case *lang.UnaryExpr:
		if err := c.expr(e.X); err != nil {
			return err
		}
		switch e.Op {
		case lang.TokenMinus:
			c.emit(lineOf(e), OpNeg, 0)
		case lang.TokenBang:
			c.emit(lineOf(e), OpNot, 0)
		default:
			return fmt.Errorf("bytecode: %s: bad unary op %s", e.Pos(), e.Op)
		}
	case *lang.BinaryExpr:
		switch e.Op {
		case lang.TokenAnd:
			// a && b: if !a, result is a; else result is b.
			if err := c.expr(e.Left); err != nil {
				return err
			}
			c.emit(lineOf(e), OpDup, 0)
			end := c.emit(lineOf(e), OpJumpIfFalse, -1)
			c.emit(lineOf(e), OpPop, 0)
			if err := c.expr(e.Right); err != nil {
				return err
			}
			c.patch(end, c.here())
			return nil
		case lang.TokenOr:
			if err := c.expr(e.Left); err != nil {
				return err
			}
			c.emit(lineOf(e), OpDup, 0)
			end := c.emit(lineOf(e), OpJumpIfTrue, -1)
			c.emit(lineOf(e), OpPop, 0)
			if err := c.expr(e.Right); err != nil {
				return err
			}
			c.patch(end, c.here())
			return nil
		}
		if err := c.expr(e.Left); err != nil {
			return err
		}
		if err := c.expr(e.Right); err != nil {
			return err
		}
		ops := map[lang.TokenType]Op{
			lang.TokenPlus: OpAdd, lang.TokenMinus: OpSub,
			lang.TokenStar: OpMul, lang.TokenSlash: OpDiv, lang.TokenPercent: OpMod,
			lang.TokenEq: OpEq, lang.TokenNotEq: OpNeq,
			lang.TokenLt: OpLt, lang.TokenLtEq: OpLte,
			lang.TokenGt: OpGt, lang.TokenGtEq: OpGte,
		}
		op, ok := ops[e.Op]
		if !ok {
			return fmt.Errorf("bytecode: %s: bad binary op %s", e.Pos(), e.Op)
		}
		c.emit(lineOf(e), op, 0)
	case *lang.IndexExpr:
		if err := c.expr(e.X); err != nil {
			return err
		}
		if err := c.expr(e.Index); err != nil {
			return err
		}
		c.emit(lineOf(e), OpIndex, 0)
	case *lang.CallExpr:
		if err := c.expr(e.Fn); err != nil {
			return err
		}
		for _, arg := range e.Args {
			if err := c.expr(arg); err != nil {
				return err
			}
		}
		c.emit(lineOf(e), OpCall, len(e.Args))
	case *lang.FuncLit:
		fn, err := compileFunction("<anon>", e.Params, e.Body, nil)
		if err != nil {
			return err
		}
		c.emit(lineOf(e), OpClosure, c.constant(fn))
	default:
		return fmt.Errorf("bytecode: %s: unsupported expression %T", e.Pos(), e)
	}
	return nil
}
