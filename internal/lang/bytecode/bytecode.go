// Package bytecode compiles FaaSLang ASTs to a compact stack-machine
// bytecode. The same bytecode is executed by the profiling interpreter
// (lang/vm) and is the input to the optimizing tier (lang/jit); keeping
// one compiled form with two execution tiers mirrors how V8 runs
// Ignition bytecode until TurboFan produces optimized code.
package bytecode

import (
	"fmt"
	"strings"

	"repro/internal/lang"
)

// Op is a bytecode opcode.
type Op uint8

// Opcodes. Instructions carry one integer operand A whose meaning
// depends on the opcode (constant index, local slot, jump target, or
// argument count).
const (
	OpConst       Op = iota // push Consts[A]
	OpNull                  // push null
	OpTrue                  // push true
	OpFalse                 // push false
	OpPop                   // discard top of stack
	OpLoadLocal             // push locals[A]
	OpStoreLocal            // locals[A] = pop
	OpLoadGlobal            // push globals[Consts[A].(string)]
	OpStoreGlobal           // globals[Consts[A].(string)] = pop
	OpAdd                   // binary +
	OpSub                   // binary -
	OpMul                   // binary *
	OpDiv                   // binary /
	OpMod                   // binary %
	OpEq                    // ==
	OpNeq                   // !=
	OpLt                    // <
	OpLte                   // <=
	OpGt                    // >
	OpGte                   // >=
	OpNeg                   // unary -
	OpNot                   // unary !
	OpJump                  // pc = A
	OpJumpIfFalse           // if !truthy(pop) pc = A
	OpJumpIfTrue            // if truthy(pop) pc = A
	OpDup                   // duplicate top of stack
	OpLoop                  // pc = A (back edge; counted by the profiler)
	OpCall                  // call with A args; callee below args
	OpReturn                // return pop (or null if stack empty at base)
	OpMakeList              // pop A items, push list
	OpMakeMap               // pop A (key,value) pairs, push map
	OpIndex                 // pop key, container; push container[key]
	OpSetIndex              // pop value, key, container; container[key] = value
	OpIterNew               // pop iterable, push iterator
	OpIterNext              // if iterator (at top) has next: push item; else pop iterator and pc = A
	OpClosure               // push closure over Consts[A].(*Function)
)

var opNames = map[Op]string{
	OpConst: "CONST", OpNull: "NULL", OpTrue: "TRUE", OpFalse: "FALSE",
	OpPop: "POP", OpLoadLocal: "LOADL", OpStoreLocal: "STOREL",
	OpLoadGlobal: "LOADG", OpStoreGlobal: "STOREG",
	OpAdd: "ADD", OpSub: "SUB", OpMul: "MUL", OpDiv: "DIV", OpMod: "MOD",
	OpEq: "EQ", OpNeq: "NEQ", OpLt: "LT", OpLte: "LTE", OpGt: "GT", OpGte: "GTE",
	OpNeg: "NEG", OpNot: "NOT",
	OpJump: "JMP", OpJumpIfFalse: "JMPF", OpJumpIfTrue: "JMPT", OpDup: "DUP",
	OpLoop: "LOOP", OpCall: "CALL", OpReturn: "RET",
	OpMakeList: "MKLIST", OpMakeMap: "MKMAP",
	OpIndex: "INDEX", OpSetIndex: "SETIDX",
	OpIterNew: "ITER", OpIterNext: "NEXT", OpClosure: "CLOSURE",
}

// String returns the opcode mnemonic.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("OP(%d)", uint8(o))
}

// Category classifies an opcode for the virtual cost model: arithmetic,
// container indexing, calls, and everything else have different
// interpreted-vs-JITted cost ratios (see internal/runtime).
type Category uint8

// Cost categories.
const (
	CatOther Category = iota
	CatArith
	CatIndex
	CatCall
)

// CategoryOf returns the cost category of an opcode.
func CategoryOf(o Op) Category {
	switch o {
	case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpNeg,
		OpEq, OpNeq, OpLt, OpLte, OpGt, OpGte:
		return CatArith
	case OpIndex, OpSetIndex, OpMakeList, OpMakeMap:
		return CatIndex
	case OpCall:
		return CatCall
	default:
		return CatOther
	}
}

// Instr is one bytecode instruction.
type Instr struct {
	Op   Op
	A    int
	Line int
}

// Function is a compiled FaaSLang function.
type Function struct {
	Name        string
	Params      []string
	NumLocals   int
	Code        []Instr
	Consts      []lang.Value
	Annotations []lang.Annotation
}

// HasAnnotation reports whether the compiled function carries the named
// decorator (e.g. "jit").
func (f *Function) HasAnnotation(name string) bool {
	for _, a := range f.Annotations {
		if a.Name == name {
			return true
		}
	}
	return false
}

// Closure is a callable FaaSLang function value. FaaSLang functions do
// not capture lexical environments (only globals and locals), so a
// closure is just its compiled function; the type exists so function
// values are distinct from raw *Function constants.
type Closure struct {
	Fn *Function
}

// FaaSLangType marks closures as function values for lang.TypeOf.
func (*Closure) FaaSLangType() lang.Type { return lang.TFunc }

// String implements fmt.Stringer for debugging output.
func (c *Closure) String() string { return fmt.Sprintf("<func %s>", c.Fn.Name) }

// Module is a compiled FaaSLang program: top-level code (function
// definitions plus module-level statements) and the functions it
// defines.
type Module struct {
	// TopLevel runs at module load; it stores each declared function
	// into the globals and executes module-level statements.
	TopLevel *Function
	// Functions lists the module's named functions in source order.
	Functions []*Function
}

// Function returns the named function, or nil.
func (m *Module) Function(name string) *Function {
	for _, f := range m.Functions {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// TotalInstructions returns the instruction count across the module,
// which the runtime uses to model JIT compilation time and machine-code
// size.
func (m *Module) TotalInstructions() int {
	n := len(m.TopLevel.Code)
	for _, f := range m.Functions {
		n += len(f.Code)
	}
	return n
}

// Disassemble renders a function's bytecode for debugging and tests.
func Disassemble(f *Function) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s(%s) locals=%d\n", f.Name, strings.Join(f.Params, ", "), f.NumLocals)
	for i, ins := range f.Code {
		fmt.Fprintf(&sb, "  %4d  %-8s", i, ins.Op)
		switch ins.Op {
		case OpConst, OpLoadGlobal, OpStoreGlobal, OpClosure:
			fmt.Fprintf(&sb, " %d (%s)", ins.A, lang.Format(f.Consts[ins.A]))
		case OpLoadLocal, OpStoreLocal, OpJump, OpJumpIfFalse, OpJumpIfTrue,
			OpLoop, OpCall, OpMakeList, OpMakeMap, OpIterNext:
			fmt.Fprintf(&sb, " %d", ins.A)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
