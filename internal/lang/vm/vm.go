// Package vm executes FaaSLang bytecode. It is the baseline execution
// tier (the "interpreter" in the paper's terminology): every instruction
// is dispatched dynamically and charged to a cost meter at
// interpreter-tier rates. The VM also collects the runtime profile (call
// counts, loop back-edges, observed argument types) that drives tier-up
// decisions in the JIT backend, and it is the de-optimization target
// when JITted code's type guards fail.
package vm

import (
	"errors"
	"fmt"

	"repro/internal/lang"
	"repro/internal/lang/bytecode"
)

// Tier identifies which execution tier is charging cost.
type Tier uint8

// Execution tiers.
const (
	TierInterp Tier = iota
	TierJIT
)

// String returns the tier name.
func (t Tier) String() string {
	if t == TierJIT {
		return "jit"
	}
	return "interp"
}

// CostMeter receives per-instruction virtual cost charges. The runtime
// layer maps (tier, category) pairs to calibrated virtual durations.
type CostMeter interface {
	Charge(tier Tier, cat bytecode.Category, n int)
}

// NopMeter discards all charges (used by unit tests of pure semantics).
type NopMeter struct{}

// Charge implements CostMeter.
func (NopMeter) Charge(Tier, bytecode.Category, int) {}

// Compiled is optimized code produced by a JIT backend for one function.
type Compiled interface {
	// Run executes the compiled function. deopt=true means an entry
	// type-guard failed and the caller must fall back to the
	// interpreter for this call.
	Run(v *VM, args []lang.Value) (result lang.Value, deopt bool, err error)
}

// JITBackend is the optimizing tier's hook into the VM.
type JITBackend interface {
	// Lookup returns compiled code for fn, or nil.
	Lookup(fn *bytecode.Function) Compiled
	// OnCall is invoked on every function entry with the current
	// profile, letting the backend trigger compilation.
	OnCall(v *VM, fn *bytecode.Function, prof *Profile)
	// OnLoopBack is invoked on every loop back-edge.
	OnLoopBack(v *VM, fn *bytecode.Function, prof *Profile)
	// OnDeopt is invoked when compiled code bails out to the
	// interpreter, letting the backend charge the de-optimization
	// penalty and update its caches.
	OnDeopt(v *VM, fn *bytecode.Function)
}

// ErrTooManySteps guards against runaway guest code.
var ErrTooManySteps = errors.New("vm: execution step limit exceeded")

// DefaultMaxSteps bounds one VM's total executed instructions.
const DefaultMaxSteps = int64(2_000_000_000)

// VM is one FaaSLang execution context (one guest's runtime).
type VM struct {
	Globals  map[string]lang.Value
	Meter    CostMeter
	JIT      JITBackend
	MaxSteps int64

	steps    int64
	profiles map[*bytecode.Function]*Profile
	depth    int
}

// maxCallDepth bounds recursion in guest code.
const maxCallDepth = 512

// New returns a VM with empty globals and the given meter (nil means
// NopMeter).
func New(meter CostMeter) *VM {
	if meter == nil {
		meter = NopMeter{}
	}
	return &VM{
		Globals:  make(map[string]lang.Value),
		Meter:    meter,
		MaxSteps: DefaultMaxSteps,
		profiles: make(map[*bytecode.Function]*Profile),
	}
}

// Steps returns the total number of bytecode instructions executed by
// the interpreter tier so far.
func (v *VM) Steps() int64 { return v.steps }

// Profile returns (creating if needed) the profile of fn.
func (v *VM) Profile(fn *bytecode.Function) *Profile {
	p, ok := v.profiles[fn]
	if !ok {
		p = &Profile{}
		v.profiles[fn] = p
	}
	return p
}

// RunModule executes a module's top level, defining its functions and
// running its module-level statements.
func (v *VM) RunModule(mod *bytecode.Module) (lang.Value, error) {
	return v.runFunction(mod.TopLevel, nil)
}

// CallValue calls any callable FaaSLang value with args. It is the
// single call dispatcher used by the interpreter, JITted code, and host
// natives alike, so tier transitions happen in exactly one place.
func (v *VM) CallValue(fnVal lang.Value, args []lang.Value) (lang.Value, error) {
	switch fn := fnVal.(type) {
	case *lang.Native:
		if fn.Arity >= 0 && len(args) != fn.Arity {
			return nil, fmt.Errorf("vm: %s expects %d args, got %d", fn.Name, fn.Arity, len(args))
		}
		return fn.Fn(args)
	case *bytecode.Closure:
		return v.callClosure(fn, args)
	default:
		return nil, fmt.Errorf("vm: value of type %s is not callable", lang.TypeOf(fnVal))
	}
}

func (v *VM) callClosure(cl *bytecode.Closure, args []lang.Value) (lang.Value, error) {
	fn := cl.Fn
	if len(args) != len(fn.Params) {
		return nil, fmt.Errorf("vm: %s expects %d args, got %d", fn.Name, len(fn.Params), len(args))
	}
	prof := v.Profile(fn)
	prof.RecordCall(args)
	if v.JIT != nil {
		v.JIT.OnCall(v, fn, prof)
		if comp := v.JIT.Lookup(fn); comp != nil {
			result, deopt, err := comp.Run(v, args)
			if !deopt {
				return result, err
			}
			v.JIT.OnDeopt(v, fn)
		}
	}
	return v.runFunction(fn, args)
}

// Iter drives for-in loops over lists (items), maps (sorted keys), and
// strings (runes). It is shared by the interpreter and the JIT tier.
type Iter struct {
	items []lang.Value
	idx   int
}

// NewIter returns an iterator over v, or an error for non-iterables.
func NewIter(v lang.Value) (*Iter, error) {
	switch v := v.(type) {
	case *lang.List:
		return &Iter{items: v.Items}, nil
	case *lang.Map:
		keys := v.SortedKeys()
		items := make([]lang.Value, len(keys))
		for i, k := range keys {
			items[i] = k
		}
		return &Iter{items: items}, nil
	case string:
		items := make([]lang.Value, 0, len(v))
		for _, r := range v {
			items = append(items, string(r))
		}
		return &Iter{items: items}, nil
	default:
		return nil, fmt.Errorf("vm: cannot iterate %s", lang.TypeOf(v))
	}
}

// Next returns the next item, or ok=false when exhausted.
func (it *Iter) Next() (lang.Value, bool) {
	if it.idx >= len(it.items) {
		return nil, false
	}
	v := it.items[it.idx]
	it.idx++
	return v, true
}

// CountStep increments the executed-instruction counter on behalf of a
// non-interpreter tier and reports whether the step limit was exceeded.
func (v *VM) CountStep() error {
	v.steps++
	if v.steps > v.MaxSteps {
		return ErrTooManySteps
	}
	return nil
}

// runFunction interprets fn's bytecode. args may be nil for the module
// top level.
func (v *VM) runFunction(fn *bytecode.Function, args []lang.Value) (result lang.Value, err error) {
	if v.depth >= maxCallDepth {
		return nil, fmt.Errorf("vm: call depth limit (%d) exceeded in %s", maxCallDepth, fn.Name)
	}
	v.depth++
	defer func() { v.depth-- }()

	locals := make([]lang.Value, fn.NumLocals)
	copy(locals, args)
	stack := make([]lang.Value, 0, 16)
	push := func(val lang.Value) { stack = append(stack, val) }
	pop := func() lang.Value {
		val := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return val
	}

	code := fn.Code
	prof := v.Profile(fn)
	for pc := 0; pc < len(code); {
		ins := code[pc]
		v.steps++
		if v.steps > v.MaxSteps {
			return nil, fmt.Errorf("%w (in %s)", ErrTooManySteps, fn.Name)
		}
		v.Meter.Charge(TierInterp, bytecode.CategoryOf(ins.Op), 1)

		switch ins.Op {
		case bytecode.OpConst:
			push(fn.Consts[ins.A])
		case bytecode.OpNull:
			push(nil)
		case bytecode.OpTrue:
			push(true)
		case bytecode.OpFalse:
			push(false)
		case bytecode.OpPop:
			pop()
		case bytecode.OpDup:
			push(stack[len(stack)-1])
		case bytecode.OpLoadLocal:
			push(locals[ins.A])
		case bytecode.OpStoreLocal:
			locals[ins.A] = pop()
		case bytecode.OpLoadGlobal:
			name := fn.Consts[ins.A].(string)
			val, ok := v.Globals[name]
			if !ok {
				return nil, fmt.Errorf("vm: line %d: undefined variable %q", ins.Line, name)
			}
			push(val)
		case bytecode.OpStoreGlobal:
			v.Globals[fn.Consts[ins.A].(string)] = pop()
		case bytecode.OpAdd, bytecode.OpSub, bytecode.OpMul, bytecode.OpDiv, bytecode.OpMod,
			bytecode.OpEq, bytecode.OpNeq, bytecode.OpLt, bytecode.OpLte, bytecode.OpGt, bytecode.OpGte:
			right := pop()
			left := pop()
			val, err := BinaryOp(ins.Op, left, right)
			if err != nil {
				return nil, fmt.Errorf("vm: line %d: %w", ins.Line, err)
			}
			push(val)
		case bytecode.OpNeg:
			val := pop()
			switch n := val.(type) {
			case int64:
				push(-n)
			case float64:
				push(-n)
			default:
				return nil, fmt.Errorf("vm: line %d: cannot negate %s", ins.Line, lang.TypeOf(val))
			}
		case bytecode.OpNot:
			push(!lang.Truthy(pop()))
		case bytecode.OpJump:
			pc = ins.A
			continue
		case bytecode.OpLoop:
			prof.LoopBackEdges++
			if v.JIT != nil {
				v.JIT.OnLoopBack(v, fn, prof)
			}
			pc = ins.A
			continue
		case bytecode.OpJumpIfFalse:
			if !lang.Truthy(pop()) {
				pc = ins.A
				continue
			}
		case bytecode.OpJumpIfTrue:
			if lang.Truthy(pop()) {
				pc = ins.A
				continue
			}
		case bytecode.OpCall:
			argc := ins.A
			callArgs := make([]lang.Value, argc)
			for i := argc - 1; i >= 0; i-- {
				callArgs[i] = pop()
			}
			callee := pop()
			val, err := v.CallValue(callee, callArgs)
			if err != nil {
				return nil, err
			}
			push(val)
		case bytecode.OpReturn:
			return pop(), nil
		case bytecode.OpMakeList:
			n := ins.A
			items := make([]lang.Value, n)
			for i := n - 1; i >= 0; i-- {
				items[i] = pop()
			}
			push(&lang.List{Items: items})
		case bytecode.OpMakeMap:
			n := ins.A
			m := lang.NewMap()
			pairs := make([]lang.Value, 2*n)
			for i := 2*n - 1; i >= 0; i-- {
				pairs[i] = pop()
			}
			for i := 0; i < n; i++ {
				key, ok := pairs[2*i].(string)
				if !ok {
					return nil, fmt.Errorf("vm: line %d: map key must be string, got %s", ins.Line, lang.TypeOf(pairs[2*i]))
				}
				m.Items[key] = pairs[2*i+1]
			}
			push(m)
		case bytecode.OpIndex:
			key := pop()
			container := pop()
			val, err := Index(container, key)
			if err != nil {
				return nil, fmt.Errorf("vm: line %d: %w", ins.Line, err)
			}
			push(val)
		case bytecode.OpSetIndex:
			val := pop()
			key := pop()
			container := pop()
			if err := SetIndex(container, key, val); err != nil {
				return nil, fmt.Errorf("vm: line %d: %w", ins.Line, err)
			}
		case bytecode.OpIterNew:
			it, err := NewIter(pop())
			if err != nil {
				return nil, fmt.Errorf("vm: line %d: %w", ins.Line, err)
			}
			push(it)
		case bytecode.OpIterNext:
			it := stack[len(stack)-1].(*Iter)
			if item, ok := it.Next(); ok {
				push(item)
			} else {
				pop() // discard exhausted iterator
				pc = ins.A
				continue
			}
		case bytecode.OpClosure:
			push(&bytecode.Closure{Fn: fn.Consts[ins.A].(*bytecode.Function)})
		default:
			return nil, fmt.Errorf("vm: line %d: unknown opcode %s", ins.Line, ins.Op)
		}
		pc++
	}
	return nil, nil
}
