package vm

import (
	"fmt"

	"repro/internal/lang"
	"repro/internal/lang/bytecode"
)

// BinaryOp implements FaaSLang binary operator semantics. It is shared
// verbatim by the interpreter and the JIT tier's generic slow path, so
// the two tiers cannot diverge semantically.
func BinaryOp(op bytecode.Op, left, right lang.Value) (lang.Value, error) {
	switch op {
	case bytecode.OpAdd:
		switch l := left.(type) {
		case int64:
			switch r := right.(type) {
			case int64:
				return l + r, nil
			case float64:
				return float64(l) + r, nil
			}
		case float64:
			switch r := right.(type) {
			case int64:
				return l + float64(r), nil
			case float64:
				return l + r, nil
			}
		case string:
			if r, ok := right.(string); ok {
				return l + r, nil
			}
			// String concatenation coerces the right side, matching the
			// JavaScript-flavored semantics of the benchmark sources.
			return l + lang.Format(right), nil
		case *lang.List:
			if r, ok := right.(*lang.List); ok {
				items := make([]lang.Value, 0, len(l.Items)+len(r.Items))
				items = append(items, l.Items...)
				items = append(items, r.Items...)
				return &lang.List{Items: items}, nil
			}
		}
		return nil, opTypeError("+", left, right)
	case bytecode.OpSub:
		return numericOp(left, right, "-",
			func(a, b int64) (lang.Value, error) { return a - b, nil },
			func(a, b float64) (lang.Value, error) { return a - b, nil })
	case bytecode.OpMul:
		return numericOp(left, right, "*",
			func(a, b int64) (lang.Value, error) { return a * b, nil },
			func(a, b float64) (lang.Value, error) { return a * b, nil })
	case bytecode.OpDiv:
		return numericOp(left, right, "/",
			func(a, b int64) (lang.Value, error) {
				if b == 0 {
					return nil, fmt.Errorf("division by zero")
				}
				return a / b, nil
			},
			func(a, b float64) (lang.Value, error) { return a / b, nil })
	case bytecode.OpMod:
		return numericOp(left, right, "%",
			func(a, b int64) (lang.Value, error) {
				if b == 0 {
					return nil, fmt.Errorf("modulo by zero")
				}
				return a % b, nil
			},
			func(a, b float64) (lang.Value, error) {
				return nil, fmt.Errorf("modulo of floats")
			})
	case bytecode.OpEq:
		return lang.Equal(left, right), nil
	case bytecode.OpNeq:
		return !lang.Equal(left, right), nil
	case bytecode.OpLt, bytecode.OpLte, bytecode.OpGt, bytecode.OpGte:
		cmp, err := compare(left, right)
		if err != nil {
			return nil, err
		}
		switch op {
		case bytecode.OpLt:
			return cmp < 0, nil
		case bytecode.OpLte:
			return cmp <= 0, nil
		case bytecode.OpGt:
			return cmp > 0, nil
		default:
			return cmp >= 0, nil
		}
	}
	return nil, fmt.Errorf("unsupported binary op %s", op)
}

func numericOp(left, right lang.Value, name string,
	intFn func(a, b int64) (lang.Value, error),
	floatFn func(a, b float64) (lang.Value, error),
) (lang.Value, error) {
	switch l := left.(type) {
	case int64:
		switch r := right.(type) {
		case int64:
			return intFn(l, r)
		case float64:
			return floatFn(float64(l), r)
		}
	case float64:
		switch r := right.(type) {
		case int64:
			return floatFn(l, float64(r))
		case float64:
			return floatFn(l, r)
		}
	}
	return nil, opTypeError(name, left, right)
}

func compare(left, right lang.Value) (int, error) {
	switch l := left.(type) {
	case int64:
		switch r := right.(type) {
		case int64:
			switch {
			case l < r:
				return -1, nil
			case l > r:
				return 1, nil
			}
			return 0, nil
		case float64:
			return compareFloats(float64(l), r), nil
		}
	case float64:
		switch r := right.(type) {
		case int64:
			return compareFloats(l, float64(r)), nil
		case float64:
			return compareFloats(l, r), nil
		}
	case string:
		if r, ok := right.(string); ok {
			switch {
			case l < r:
				return -1, nil
			case l > r:
				return 1, nil
			}
			return 0, nil
		}
	}
	return 0, fmt.Errorf("cannot compare %s and %s", lang.TypeOf(left), lang.TypeOf(right))
}

func compareFloats(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func opTypeError(op string, left, right lang.Value) error {
	return fmt.Errorf("unsupported operand types for %s: %s and %s",
		op, lang.TypeOf(left), lang.TypeOf(right))
}

// Index implements container[key] for lists (int index, negative wraps),
// maps (string key, missing yields null), and strings (int index).
func Index(container, key lang.Value) (lang.Value, error) {
	switch c := container.(type) {
	case *lang.List:
		idx, ok := key.(int64)
		if !ok {
			return nil, fmt.Errorf("list index must be int, got %s", lang.TypeOf(key))
		}
		n := int64(len(c.Items))
		if idx < 0 {
			idx += n
		}
		if idx < 0 || idx >= n {
			return nil, fmt.Errorf("list index %d out of range (len %d)", idx, n)
		}
		return c.Items[idx], nil
	case *lang.Map:
		k, ok := key.(string)
		if !ok {
			return nil, fmt.Errorf("map key must be string, got %s", lang.TypeOf(key))
		}
		return c.Items[k], nil
	case string:
		idx, ok := key.(int64)
		if !ok {
			return nil, fmt.Errorf("string index must be int, got %s", lang.TypeOf(key))
		}
		n := int64(len(c))
		if idx < 0 {
			idx += n
		}
		if idx < 0 || idx >= n {
			return nil, fmt.Errorf("string index %d out of range (len %d)", idx, n)
		}
		return string(c[idx]), nil
	default:
		return nil, fmt.Errorf("cannot index %s", lang.TypeOf(container))
	}
}

// SetIndex implements container[key] = value for lists and maps.
func SetIndex(container, key, value lang.Value) error {
	switch c := container.(type) {
	case *lang.List:
		idx, ok := key.(int64)
		if !ok {
			return fmt.Errorf("list index must be int, got %s", lang.TypeOf(key))
		}
		n := int64(len(c.Items))
		if idx < 0 {
			idx += n
		}
		if idx < 0 || idx >= n {
			return fmt.Errorf("list index %d out of range (len %d)", idx, n)
		}
		c.Items[idx] = value
		return nil
	case *lang.Map:
		k, ok := key.(string)
		if !ok {
			return fmt.Errorf("map key must be string, got %s", lang.TypeOf(key))
		}
		c.Items[k] = value
		return nil
	default:
		return fmt.Errorf("cannot index-assign %s", lang.TypeOf(container))
	}
}
