package vm_test

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/lang"
	"repro/internal/lang/bytecode"
	"repro/internal/lang/jit"
	"repro/internal/lang/vm"
)

func TestBinaryOpSemantics(t *testing.T) {
	l := lang.NewList(int64(1))
	cases := []struct {
		op    bytecode.Op
		a, b  lang.Value
		want  lang.Value
		isErr bool
	}{
		// Addition across types.
		{bytecode.OpAdd, int64(2), int64(3), int64(5), false},
		{bytecode.OpAdd, int64(2), 0.5, 2.5, false},
		{bytecode.OpAdd, 0.5, int64(2), 2.5, false},
		{bytecode.OpAdd, 1.5, 2.5, 4.0, false},
		{bytecode.OpAdd, "a", "b", "ab", false},
		{bytecode.OpAdd, "n=", int64(7), "n=7", false},
		{bytecode.OpAdd, "v=", true, "v=true", false},
		{bytecode.OpAdd, lang.NewList(int64(1)), lang.NewList(int64(2)), nil, false}, // checked below
		{bytecode.OpAdd, int64(1), "s", nil, true},
		{bytecode.OpAdd, nil, int64(1), nil, true},
		// Subtraction/multiplication/division.
		{bytecode.OpSub, int64(7), 0.5, 6.5, false},
		{bytecode.OpSub, "a", "b", nil, true},
		{bytecode.OpMul, 1.5, int64(4), 6.0, false},
		{bytecode.OpMul, l, int64(2), nil, true},
		{bytecode.OpDiv, int64(7), int64(2), int64(3), false},
		{bytecode.OpDiv, 7.0, 2.0, 3.5, false},
		{bytecode.OpDiv, int64(7), 2.0, 3.5, false},
		{bytecode.OpDiv, int64(1), int64(0), nil, true},
		{bytecode.OpDiv, 1.0, 0.0, positiveInf(), false}, // IEEE semantics for floats
		{bytecode.OpMod, int64(7), int64(3), int64(1), false},
		{bytecode.OpMod, int64(7), int64(0), nil, true},
		{bytecode.OpMod, 7.5, 2.0, nil, true},
		// Comparisons.
		{bytecode.OpLt, int64(1), 1.5, true, false},
		{bytecode.OpLt, 1.5, int64(1), false, false},
		{bytecode.OpGte, 2.0, 2.0, true, false},
		{bytecode.OpLte, "abc", "abd", true, false},
		{bytecode.OpGt, "b", "a", true, false},
		{bytecode.OpLt, "a", int64(1), nil, true},
		{bytecode.OpLt, true, false, nil, true},
		// Equality never errors.
		{bytecode.OpEq, int64(1), "1", false, false},
		{bytecode.OpNeq, nil, nil, false, false},
		{bytecode.OpEq, true, true, true, false},
	}
	for _, tc := range cases {
		got, err := vm.BinaryOp(tc.op, tc.a, tc.b)
		if tc.isErr {
			if err == nil {
				t.Errorf("%v %s %v: expected error, got %v", tc.a, tc.op, tc.b, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("%v %s %v: %v", tc.a, tc.op, tc.b, err)
			continue
		}
		if tc.want != nil && !lang.Equal(got, tc.want) {
			t.Errorf("%v %s %v = %v, want %v", tc.a, tc.op, tc.b, got, tc.want)
		}
	}
	// List concatenation produces a fresh list.
	a, b := lang.NewList(int64(1)), lang.NewList(int64(2))
	sum, err := vm.BinaryOp(bytecode.OpAdd, a, b)
	if err != nil {
		t.Fatal(err)
	}
	cat := sum.(*lang.List)
	if len(cat.Items) != 2 {
		t.Fatalf("concat = %v", lang.Format(cat))
	}
	a.Items[0] = int64(99)
	if cat.Items[0] == int64(99) {
		t.Fatal("concatenated list aliases its input")
	}
}

func positiveInf() float64 {
	one, zero := 1.0, 0.0
	return one / zero
}

func TestIndexSemantics(t *testing.T) {
	l := lang.NewList("a", "b", "c")
	m := lang.NewMap()
	m.Set("k", int64(7))
	cases := []struct {
		container, key lang.Value
		want           lang.Value
		isErr          bool
	}{
		{l, int64(0), "a", false},
		{l, int64(2), "c", false},
		{l, int64(-1), "c", false}, // negative wraps
		{l, int64(-3), "a", false},
		{l, int64(3), nil, true},
		{l, int64(-4), nil, true},
		{l, "x", nil, true},
		{m, "k", int64(7), false},
		{m, "missing", nil, false}, // missing map key reads null
		{m, int64(1), nil, true},
		{"hello", int64(1), "e", false},
		{"hello", int64(-1), "o", false},
		{"hello", int64(9), nil, true},
		{int64(5), int64(0), nil, true},
	}
	for _, tc := range cases {
		got, err := vm.Index(tc.container, tc.key)
		if tc.isErr {
			if err == nil {
				t.Errorf("Index(%v, %v): expected error", tc.container, tc.key)
			}
			continue
		}
		if err != nil {
			t.Errorf("Index(%v, %v): %v", tc.container, tc.key, err)
			continue
		}
		if !lang.Equal(got, tc.want) {
			t.Errorf("Index(%v, %v) = %v, want %v", tc.container, tc.key, got, tc.want)
		}
	}
}

func TestSetIndexSemantics(t *testing.T) {
	l := lang.NewList(int64(1), int64(2))
	if err := vm.SetIndex(l, int64(-1), int64(9)); err != nil {
		t.Fatal(err)
	}
	if l.Items[1] != int64(9) {
		t.Fatal("negative index assignment")
	}
	if err := vm.SetIndex(l, int64(2), int64(0)); err == nil {
		t.Fatal("out-of-range assignment succeeded")
	}
	if err := vm.SetIndex(l, "x", int64(0)); err == nil {
		t.Fatal("string index on list succeeded")
	}
	m := lang.NewMap()
	if err := vm.SetIndex(m, "k", "v"); err != nil {
		t.Fatal(err)
	}
	if m.Get("k") != "v" {
		t.Fatal("map assignment lost")
	}
	if err := vm.SetIndex(m, int64(1), "v"); err == nil {
		t.Fatal("int key on map succeeded")
	}
	if err := vm.SetIndex("str", int64(0), "x"); err == nil {
		t.Fatal("string assignment succeeded")
	}
}

// TestTiersAgreeOnRandomPrograms generates random arithmetic programs
// and checks the interpreter and the JIT produce identical results (or
// identical error-ness) — the central correctness property behind the
// post-JIT snapshot: execution tier must never change semantics.
func TestTiersAgreeOnRandomPrograms(t *testing.T) {
	type spec struct {
		Seed   uint16
		A, B   int16
		FltRaw uint8
	}
	run := func(src string, jitted bool, args ...lang.Value) (lang.Value, error) {
		mod, err := bytecode.CompileSource(src)
		if err != nil {
			return nil, err
		}
		v := vm.New(nil)
		if jitted {
			engine := jit.NewEngine(jit.Config{})
			v.JIT = engine
			if _, err := v.RunModule(mod); err != nil {
				return nil, err
			}
			engine.Compile(mod.Function("f"), nil)
		} else {
			if _, err := v.RunModule(mod); err != nil {
				return nil, err
			}
		}
		return v.CallValue(v.Globals["f"], args)
	}
	f := func(s spec) bool {
		src := randomProgram(uint64(s.Seed))
		a, b := int64(s.A), int64(s.B)
		flt := float64(s.FltRaw) / 16.0
		iv, ierr := run(src, false, a, b, flt)
		jv, jerr := run(src, true, a, b, flt)
		if (ierr == nil) != (jerr == nil) {
			t.Logf("error disagreement on seed %d:\n%s\ninterp: %v\njit: %v", s.Seed, src, ierr, jerr)
			return false
		}
		if ierr != nil {
			return true
		}
		if !lang.Equal(iv, jv) {
			t.Logf("value disagreement on seed %d:\n%s\ninterp: %v\njit: %v", s.Seed, src, iv, jv)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// randomProgram builds a deterministic random function f(a, b, x) from
// a seed: nested arithmetic, comparisons, conditionals, bounded loops,
// and list/map traffic.
func randomProgram(seed uint64) string {
	next := func() uint64 {
		seed += 0x9e3779b97f4a7c15
		z := seed
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	var expr func(depth int) string
	expr = func(depth int) string {
		if depth <= 0 {
			switch next() % 5 {
			case 0:
				return "a"
			case 1:
				return "b"
			case 2:
				return "x"
			case 3:
				return fmt.Sprintf("%d", int64(next()%19)-9)
			default:
				return fmt.Sprintf("%d.5", next()%7)
			}
		}
		ops := []string{"+", "-", "*", "<", "<=", ">", ">=", "==", "!="}
		op := ops[next()%uint64(len(ops))]
		left, right := expr(depth-1), expr(depth-1)
		if op == "<" || op == ">" || op == "<=" || op == ">=" {
			// Comparison operands must be numeric; comparisons yield
			// bools, which cannot nest into arithmetic, so wrap them
			// in a conditional value.
			return fmt.Sprintf("pick((%s) %s (%s), 1, 0)", left, op, right)
		}
		if op == "==" || op == "!=" {
			return fmt.Sprintf("pick((%s) %s (%s), 2, 3)", left, op, right)
		}
		return fmt.Sprintf("((%s) %s (%s))", left, op, right)
	}
	body := &strings.Builder{}
	fmt.Fprintf(body, "func pick(c, t, e) { if (c) { return t; } return e; }\n")
	fmt.Fprintf(body, "func f(a, b, x) {\n")
	fmt.Fprintf(body, "  let acc = 0;\n  let l = [a, b, 2, 3];\n  let m = {\"v\": x};\n")
	loops := int(next()%3) + 1
	for i := 0; i < loops; i++ {
		fmt.Fprintf(body, "  let i%d = 0;\n  while (i%d < %d) {\n", i, i, next()%5+1)
		fmt.Fprintf(body, "    acc = acc + %s;\n", expr(int(next()%3)+1))
		fmt.Fprintf(body, "    l[i%d %% 4] = acc;\n", i)
		fmt.Fprintf(body, "    m[\"k\" + i%d] = acc;\n", i)
		fmt.Fprintf(body, "    i%d = i%d + 1;\n  }\n", i, i)
	}
	fmt.Fprintf(body, "  for (v in l) { if (v != null) { acc = acc + pick(v == 2, 1, 0); } }\n")
	fmt.Fprintf(body, "  for (k in m) { acc = acc + 1; }\n")
	fmt.Fprintf(body, "  return acc + m.v;\n}\n")
	return body.String()
}
