package vm

import "repro/internal/lang"

// Profile is the runtime type feedback collected for one function. The
// JIT backend uses it to decide when to tier up and which argument types
// to specialize (and guard) on.
type Profile struct {
	// Calls counts function entries (both tiers).
	Calls int64
	// LoopBackEdges counts interpreter loop back-edges, the classic
	// "hot loop" tier-up signal.
	LoopBackEdges int64
	// ArgTypes is the argument type signature observed on the first
	// call; Stable is false once a later call disagrees (polymorphic
	// call site — the JIT then guards on the dominant signature and
	// deopts on mismatch).
	ArgTypes []lang.Type
	Stable   bool
	// Deopts counts how many times compiled code for this function
	// bailed back to the interpreter.
	Deopts int64
}

// RecordCall updates the profile for a call with the given arguments.
func (p *Profile) RecordCall(args []lang.Value) {
	p.Calls++
	if p.ArgTypes == nil {
		p.ArgTypes = make([]lang.Type, len(args))
		for i, a := range args {
			p.ArgTypes[i] = lang.TypeOf(a)
		}
		p.Stable = true
		return
	}
	if !p.Stable {
		return
	}
	if len(args) != len(p.ArgTypes) {
		p.Stable = false
		return
	}
	for i, a := range args {
		if lang.TypeOf(a) != p.ArgTypes[i] {
			p.Stable = false
			return
		}
	}
}

// Signature returns the recorded argument types (nil before any call).
func (p *Profile) Signature() []lang.Type { return p.ArgTypes }

// Matches reports whether args conform to the recorded signature.
func (p *Profile) Matches(args []lang.Value) bool {
	if p.ArgTypes == nil || len(args) != len(p.ArgTypes) {
		return false
	}
	for i, a := range args {
		if lang.TypeOf(a) != p.ArgTypes[i] {
			return false
		}
	}
	return true
}
