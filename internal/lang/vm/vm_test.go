package vm_test

import (
	"strings"
	"testing"

	"repro/internal/lang"
	"repro/internal/lang/bytecode"
	"repro/internal/lang/vm"
)

// run compiles src, executes its module top level, and calls fn(args...)
// if fn is non-empty.
func run(t *testing.T, src, fn string, args ...lang.Value) lang.Value {
	t.Helper()
	v, val, err := tryRun(src, fn, args...)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	_ = v
	return val
}

func tryRun(src, fn string, args ...lang.Value) (*vm.VM, lang.Value, error) {
	mod, err := bytecode.CompileSource(src)
	if err != nil {
		return nil, nil, err
	}
	v := vm.New(nil)
	if _, err := v.RunModule(mod); err != nil {
		return nil, nil, err
	}
	if fn == "" {
		return v, nil, nil
	}
	val, err := v.CallValue(v.Globals[fn], args)
	return v, val, err
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		expr string
		want lang.Value
	}{
		{"1 + 2", int64(3)},
		{"7 - 10", int64(-3)},
		{"6 * 7", int64(42)},
		{"7 / 2", int64(3)},
		{"7 % 3", int64(1)},
		{"1.5 + 2", float64(3.5)},
		{"3 * 1.5", float64(4.5)},
		{"-5 + 2", int64(-3)},
		{"2 < 3", true},
		{"2 >= 3", false},
		{"1 == 1.0", true},
		{"1 != 2", true},
		{"\"a\" + \"b\"", "ab"},
		{"\"n=\" + 42", "n=42"},
		{"true && false", false},
		{"true || false", true},
		{"!true", false},
	}
	for _, tc := range cases {
		src := "func f() { return " + tc.expr + "; }"
		got := run(t, src, "f")
		if !lang.Equal(got, tc.want) {
			t.Errorf("%s = %v (%T), want %v", tc.expr, got, got, tc.want)
		}
	}
}

func TestShortCircuit(t *testing.T) {
	src := `
let hits = 0;
func bump() { hits = hits + 1; return true; }
func f() {
  let a = false && bump();
  let b = true || bump();
  return a == false && b == true;
}
`
	v, val, err := tryRun(src, "f")
	if err != nil {
		t.Fatal(err)
	}
	if val != true {
		t.Fatalf("short-circuit result = %v", val)
	}
	if hits := v.Globals["hits"]; hits != int64(0) {
		t.Fatalf("bump ran %v times; short-circuit failed", hits)
	}
}

func TestControlFlow(t *testing.T) {
	src := `
func fib(n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
func sumTo(n) {
  let total = 0;
  let i = 1;
  while (i <= n) {
    total = total + i;
    i = i + 1;
  }
  return total;
}
func firstOver(limit) {
  let i = 0;
  while (true) {
    i = i + 1;
    if (i * i > limit) { break; }
  }
  return i;
}
func sumOdd(n) {
  let total = 0;
  let i = 0;
  while (i < n) {
    i = i + 1;
    if (i % 2 == 0) { continue; }
    total = total + i;
  }
  return total;
}
`
	if got := run(t, src, "fib", int64(10)); got != int64(55) {
		t.Errorf("fib(10) = %v", got)
	}
	if got := run(t, src, "sumTo", int64(100)); got != int64(5050) {
		t.Errorf("sumTo(100) = %v", got)
	}
	if got := run(t, src, "firstOver", int64(100)); got != int64(11) {
		t.Errorf("firstOver(100) = %v", got)
	}
	if got := run(t, src, "sumOdd", int64(10)); got != int64(25) {
		t.Errorf("sumOdd(10) = %v", got)
	}
}

func TestForIn(t *testing.T) {
	src := `
func sumList(l) {
  let total = 0;
  for (x in l) { total = total + x; }
  return total;
}
func joinKeys(m) {
  let out = "";
  for (k in m) { out = out + k; }
  return out;
}
`
	got := run(t, src, "sumList", lang.NewList(int64(1), int64(2), int64(3)))
	if got != int64(6) {
		t.Errorf("sumList = %v", got)
	}
	m := lang.NewMap()
	m.Set("b", int64(1))
	m.Set("a", int64(2))
	m.Set("c", int64(3))
	if got := run(t, src, "joinKeys", m); got != "abc" {
		t.Errorf("joinKeys = %v (map iteration must be sorted)", got)
	}
}

func TestListsAndMaps(t *testing.T) {
	src := `
func f() {
  let l = [1, 2, 3];
  l[0] = 10;
  let m = {"x": 1, "y": {"z": 5}};
  m["x"] = l[0] + l[1];
  return m.x + m.y.z + l[-1];
}
`
	if got := run(t, src, "f"); got != int64(20) {
		t.Errorf("f() = %v, want 20", got)
	}
}

func TestFuncValues(t *testing.T) {
	src := `
func apply(f, x) { return f(x); }
func f() {
  let double = func(x) { return x * 2; };
  return apply(double, 21);
}
`
	if got := run(t, src, "f"); got != int64(42) {
		t.Errorf("f() = %v", got)
	}
}

func TestNativeFunctions(t *testing.T) {
	mod, err := bytecode.CompileSource(`func f(x) { return add1(x) * 2; }`)
	if err != nil {
		t.Fatal(err)
	}
	v := vm.New(nil)
	v.Globals["add1"] = &lang.Native{
		Name:  "add1",
		Arity: 1,
		Fn: func(args []lang.Value) (lang.Value, error) {
			return args[0].(int64) + 1, nil
		},
	}
	if _, err := v.RunModule(mod); err != nil {
		t.Fatal(err)
	}
	got, err := v.CallValue(v.Globals["f"], []lang.Value{int64(20)})
	if err != nil {
		t.Fatal(err)
	}
	if got != int64(42) {
		t.Errorf("f(20) = %v", got)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"div0", `func f() { return 1 / 0; }`, "division by zero"},
		{"badIndex", `func f() { let l = [1]; return l[5]; }`, "out of range"},
		{"badType", `func f() { return [1] * 2; }`, "unsupported operand"},
		{"undefVar", `func f() { return nope; }`, "undefined variable"},
		{"notCallable", `func f() { let x = 3; return x(); }`, "not callable"},
		{"badIter", `func f() { for (x in 5) {} }`, "cannot iterate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := tryRun(tc.src, "f")
			if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantSub)
			}
		})
	}
}

func TestArityMismatch(t *testing.T) {
	_, _, err := tryRun(`func f(a, b) { return a; } func g() { return f(1); }`, "g")
	if err == nil || !strings.Contains(err.Error(), "expects 2 args") {
		t.Fatalf("err = %v", err)
	}
}

func TestRecursionDepthLimit(t *testing.T) {
	_, _, err := tryRun(`func f(n) { return f(n + 1); }`, "f", int64(0))
	if err == nil || !strings.Contains(err.Error(), "call depth") {
		t.Fatalf("err = %v", err)
	}
}

func TestStepLimit(t *testing.T) {
	mod, err := bytecode.CompileSource(`func f() { while (true) {} }`)
	if err != nil {
		t.Fatal(err)
	}
	v := vm.New(nil)
	v.MaxSteps = 10_000
	if _, err := v.RunModule(mod); err != nil {
		t.Fatal(err)
	}
	if _, err := v.CallValue(v.Globals["f"], nil); err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Fatalf("err = %v, want step limit", err)
	}
}

func TestProfileCollection(t *testing.T) {
	mod, err := bytecode.CompileSource(`
func hot(x) {
  let i = 0;
  while (i < 10) { i = i + 1; }
  return x;
}`)
	if err != nil {
		t.Fatal(err)
	}
	v := vm.New(nil)
	if _, err := v.RunModule(mod); err != nil {
		t.Fatal(err)
	}
	cl := v.Globals["hot"].(*bytecode.Closure)
	for i := 0; i < 5; i++ {
		if _, err := v.CallValue(cl, []lang.Value{int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	prof := v.Profile(cl.Fn)
	if prof.Calls != 5 {
		t.Errorf("Calls = %d, want 5", prof.Calls)
	}
	if prof.LoopBackEdges != 50 {
		t.Errorf("LoopBackEdges = %d, want 50", prof.LoopBackEdges)
	}
	if !prof.Stable || len(prof.ArgTypes) != 1 || prof.ArgTypes[0] != lang.TInt {
		t.Errorf("profile signature = %+v, want stable [int]", prof)
	}
	// A string argument makes the profile polymorphic.
	if _, err := v.CallValue(cl, []lang.Value{"s"}); err != nil {
		t.Fatal(err)
	}
	if prof.Stable {
		t.Error("profile still stable after type change")
	}
}

func TestMeterCharges(t *testing.T) {
	mod, err := bytecode.CompileSource(`func f() { let t = 0; let i = 0; while (i < 100) { i = i + 1; t = t + i; } return t; }`)
	if err != nil {
		t.Fatal(err)
	}
	meter := &countMeter{}
	v := vm.New(meter)
	if _, err := v.RunModule(mod); err != nil {
		t.Fatal(err)
	}
	if _, err := v.CallValue(v.Globals["f"], nil); err != nil {
		t.Fatal(err)
	}
	if meter.counts[bytecode.CatArith] == 0 || meter.counts[bytecode.CatOther] == 0 {
		t.Fatalf("meter not charged: %+v", meter.counts)
	}
	if meter.tiers[vm.TierJIT] != 0 {
		t.Fatalf("JIT tier charged without a JIT backend")
	}
}

type countMeter struct {
	counts map[bytecode.Category]int
	tiers  map[vm.Tier]int
}

func (m *countMeter) Charge(tier vm.Tier, cat bytecode.Category, n int) {
	if m.counts == nil {
		m.counts = make(map[bytecode.Category]int)
		m.tiers = make(map[vm.Tier]int)
	}
	m.counts[cat] += n
	m.tiers[tier] += n
}
