package lang

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Value is a FaaSLang runtime value. The dynamic types are:
//
//	nil        — null
//	bool       — booleans
//	int64      — integers
//	float64    — floats
//	string     — strings
//	*List      — mutable lists
//	*Map       — mutable string-keyed maps
//	*Native    — host (builtin) functions
//
// Bytecode closures are defined in lang/bytecode (they need the compiled
// chunk type) and also flow through Value.
type Value = any

// List is a mutable FaaSLang list.
type List struct {
	Items []Value
}

// NewList returns a list holding items.
func NewList(items ...Value) *List { return &List{Items: items} }

// Map is a mutable string-keyed FaaSLang map.
type Map struct {
	Items map[string]Value
}

// NewMap returns an empty map.
func NewMap() *Map { return &Map{Items: make(map[string]Value)} }

// Get returns the value for key, or nil when absent.
func (m *Map) Get(key string) Value { return m.Items[key] }

// Set stores the value for key.
func (m *Map) Set(key string, v Value) { m.Items[key] = v }

// SortedKeys returns the map's keys in lexical order (deterministic
// iteration for for-in loops and printing).
func (m *Map) SortedKeys() []string {
	keys := make([]string, 0, len(m.Items))
	for k := range m.Items {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Native is a builtin function provided by the host runtime.
type Native struct {
	Name string
	// Arity is the required argument count, or -1 for variadic.
	Arity int
	Fn    func(args []Value) (Value, error)
}

// Type is a compact dynamic-type tag used for JIT type feedback and
// guard checks.
type Type uint8

// Dynamic type tags.
const (
	TNull Type = iota
	TBool
	TInt
	TFloat
	TString
	TList
	TMap
	TFunc
	TOther
)

var typeNames = [...]string{"null", "bool", "int", "float", "string", "list", "map", "func", "other"}

// String returns the type tag's name.
func (t Type) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return "invalid"
}

// TypeName is implemented by function-like values defined outside this
// package (bytecode closures) so TypeOf can classify them.
type TypeName interface{ FaaSLangType() Type }

// TypeOf returns the dynamic type tag of v.
func TypeOf(v Value) Type {
	switch v := v.(type) {
	case nil:
		return TNull
	case bool:
		return TBool
	case int64:
		return TInt
	case float64:
		return TFloat
	case string:
		return TString
	case *List:
		return TList
	case *Map:
		return TMap
	case *Native:
		return TFunc
	case TypeName:
		return v.FaaSLangType()
	default:
		return TOther
	}
}

// Truthy reports FaaSLang truthiness: null and false are falsy, zero
// numbers and empty strings/containers are falsy, all else truthy.
func Truthy(v Value) bool {
	switch v := v.(type) {
	case nil:
		return false
	case bool:
		return v
	case int64:
		return v != 0
	case float64:
		return v != 0
	case string:
		return v != ""
	case *List:
		return len(v.Items) > 0
	case *Map:
		return len(v.Items) > 0
	default:
		return true
	}
}

// Equal reports FaaSLang equality: numbers compare across int/float,
// lists and maps compare structurally.
func Equal(a, b Value) bool {
	switch av := a.(type) {
	case nil:
		return b == nil
	case bool:
		bv, ok := b.(bool)
		return ok && av == bv
	case int64:
		switch bv := b.(type) {
		case int64:
			return av == bv
		case float64:
			return float64(av) == bv
		}
		return false
	case float64:
		switch bv := b.(type) {
		case int64:
			return av == float64(bv)
		case float64:
			return av == bv
		}
		return false
	case string:
		bv, ok := b.(string)
		return ok && av == bv
	case *List:
		bv, ok := b.(*List)
		if !ok || len(av.Items) != len(bv.Items) {
			return false
		}
		for i := range av.Items {
			if !Equal(av.Items[i], bv.Items[i]) {
				return false
			}
		}
		return true
	case *Map:
		bv, ok := b.(*Map)
		if !ok || len(av.Items) != len(bv.Items) {
			return false
		}
		for k, v := range av.Items {
			bvv, ok := bv.Items[k]
			if !ok || !Equal(v, bvv) {
				return false
			}
		}
		return true
	default:
		return a == b
	}
}

// Format renders a value the way FaaSLang's print and str builtins do.
func Format(v Value) string {
	switch v := v.(type) {
	case nil:
		return "null"
	case bool:
		if v {
			return "true"
		}
		return "false"
	case int64:
		return strconv.FormatInt(v, 10)
	case float64:
		return strconv.FormatFloat(v, 'g', -1, 64)
	case string:
		return v
	case *List:
		var sb strings.Builder
		sb.WriteByte('[')
		for i, item := range v.Items {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(formatQuoted(item))
		}
		sb.WriteByte(']')
		return sb.String()
	case *Map:
		var sb strings.Builder
		sb.WriteByte('{')
		for i, k := range v.SortedKeys() {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "%q: %s", k, formatQuoted(v.Items[k]))
		}
		sb.WriteByte('}')
		return sb.String()
	case *Native:
		return fmt.Sprintf("<native %s>", v.Name)
	default:
		return fmt.Sprintf("%v", v)
	}
}

// formatQuoted is Format except strings render quoted, for container
// elements.
func formatQuoted(v Value) string {
	if s, ok := v.(string); ok {
		return strconv.Quote(s)
	}
	return Format(v)
}
