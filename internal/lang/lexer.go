package lang

import (
	"fmt"
	"strings"
)

// Lexer turns FaaSLang source text into tokens. Comments run from "//"
// or "#" to end of line; both styles appear in the paper's examples
// (Node.js-style and Python-style sources).
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (l *Lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peekAt(off int) byte {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *Lexer) advance() byte {
	ch := l.src[l.pos]
	l.pos++
	if ch == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return ch
}

func (l *Lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		ch := l.peek()
		switch {
		case ch == ' ' || ch == '\t' || ch == '\r' || ch == '\n':
			l.advance()
		case ch == '#':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case ch == '/' && l.peekAt(1) == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

func isLetter(ch byte) bool {
	return ch == '_' || ('a' <= ch && ch <= 'z') || ('A' <= ch && ch <= 'Z')
}

func isDigit(ch byte) bool { return '0' <= ch && ch <= '9' }

// Next returns the next token, or an EOF token at end of input.
func (l *Lexer) Next() (Token, error) {
	l.skipSpaceAndComments()
	line, col := l.line, l.col
	if l.pos >= len(l.src) {
		return Token{Type: TokenEOF, Line: line, Col: col}, nil
	}
	ch := l.peek()

	switch {
	case isLetter(ch):
		start := l.pos
		for l.pos < len(l.src) && (isLetter(l.peek()) || isDigit(l.peek())) {
			l.advance()
		}
		word := l.src[start:l.pos]
		if kw, ok := keywords[word]; ok {
			return Token{Type: kw, Literal: word, Line: line, Col: col}, nil
		}
		return Token{Type: TokenIdent, Literal: word, Line: line, Col: col}, nil

	case isDigit(ch):
		start := l.pos
		isFloat := false
		for l.pos < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
		if l.peek() == '.' && isDigit(l.peekAt(1)) {
			isFloat = true
			l.advance()
			for l.pos < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		}
		lit := l.src[start:l.pos]
		if isFloat {
			return Token{Type: TokenFloat, Literal: lit, Line: line, Col: col}, nil
		}
		return Token{Type: TokenInt, Literal: lit, Line: line, Col: col}, nil

	case ch == '"' || ch == '\'':
		quote := l.advance()
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return Token{}, fmt.Errorf("lang: %d:%d: unterminated string", line, col)
			}
			c := l.advance()
			if c == quote {
				break
			}
			if c == '\\' {
				if l.pos >= len(l.src) {
					return Token{}, fmt.Errorf("lang: %d:%d: unterminated escape", line, col)
				}
				esc := l.advance()
				switch esc {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case 'r':
					sb.WriteByte('\r')
				case '\\', '"', '\'':
					sb.WriteByte(esc)
				default:
					return Token{}, fmt.Errorf("lang: %d:%d: bad escape \\%c", l.line, l.col, esc)
				}
				continue
			}
			sb.WriteByte(c)
		}
		return Token{Type: TokenString, Literal: sb.String(), Line: line, Col: col}, nil
	}

	mk := func(t TokenType, lit string) (Token, error) {
		return Token{Type: t, Literal: lit, Line: line, Col: col}, nil
	}
	two := func(next byte, ifTwo TokenType, litTwo string, ifOne TokenType, litOne string) (Token, error) {
		l.advance()
		if l.peek() == next {
			l.advance()
			return mk(ifTwo, litTwo)
		}
		return mk(ifOne, litOne)
	}

	switch ch {
	case '=':
		return two('=', TokenEq, "==", TokenAssign, "=")
	case '!':
		return two('=', TokenNotEq, "!=", TokenBang, "!")
	case '<':
		return two('=', TokenLtEq, "<=", TokenLt, "<")
	case '>':
		return two('=', TokenGtEq, ">=", TokenGt, ">")
	case '&':
		if l.peekAt(1) == '&' {
			l.advance()
			l.advance()
			return mk(TokenAnd, "&&")
		}
		return Token{}, fmt.Errorf("lang: %d:%d: unexpected '&'", line, col)
	case '|':
		if l.peekAt(1) == '|' {
			l.advance()
			l.advance()
			return mk(TokenOr, "||")
		}
		return Token{}, fmt.Errorf("lang: %d:%d: unexpected '|'", line, col)
	case '+':
		l.advance()
		return mk(TokenPlus, "+")
	case '-':
		l.advance()
		return mk(TokenMinus, "-")
	case '*':
		l.advance()
		return mk(TokenStar, "*")
	case '/':
		l.advance()
		return mk(TokenSlash, "/")
	case '%':
		l.advance()
		return mk(TokenPercent, "%")
	case '(':
		l.advance()
		return mk(TokenLParen, "(")
	case ')':
		l.advance()
		return mk(TokenRParen, ")")
	case '{':
		l.advance()
		return mk(TokenLBrace, "{")
	case '}':
		l.advance()
		return mk(TokenRBrace, "}")
	case '[':
		l.advance()
		return mk(TokenLBracket, "[")
	case ']':
		l.advance()
		return mk(TokenRBracket, "]")
	case ',':
		l.advance()
		return mk(TokenComma, ",")
	case ';':
		l.advance()
		return mk(TokenSemi, ";")
	case ':':
		l.advance()
		return mk(TokenColon, ":")
	case '.':
		l.advance()
		return mk(TokenDot, ".")
	case '@':
		l.advance()
		return mk(TokenAt, "@")
	}
	return Token{}, fmt.Errorf("lang: %d:%d: unexpected character %q", line, col, ch)
}

// Tokenize lexes the whole input, returning the token stream including a
// trailing EOF token.
func Tokenize(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		tok, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, tok)
		if tok.Type == TokenEOF {
			return toks, nil
		}
	}
}
