// Package lang implements FaaSLang, the small dynamic language that
// simulated serverless functions are written in. It provides the lexer,
// parser, AST, and runtime values; bytecode compilation and execution
// live in the lang/bytecode, lang/vm, and lang/jit subpackages.
//
// FaaSLang exists because the paper's core claim — snapshotting a VM
// *after* JIT compilation — needs a runtime in which interpreted and
// JIT-compiled execution are genuinely different execution paths that
// can be profiled, tiered, force-compiled, and de-optimized. The
// language is deliberately small (dynamically typed, first-class
// functions, lists/maps, decorators for @jit annotations) but complete
// enough to express the FaaSdom and ServerlessBench workloads.
package lang

import "fmt"

// TokenType classifies a lexical token.
type TokenType int

// Token types.
const (
	TokenEOF TokenType = iota
	TokenIdent
	TokenInt
	TokenFloat
	TokenString

	// Keywords.
	TokenFunc
	TokenLet
	TokenIf
	TokenElse
	TokenWhile
	TokenFor
	TokenIn
	TokenReturn
	TokenBreak
	TokenContinue
	TokenTrue
	TokenFalse
	TokenNull

	// Operators and punctuation.
	TokenAssign   // =
	TokenPlus     // +
	TokenMinus    // -
	TokenStar     // *
	TokenSlash    // /
	TokenPercent  // %
	TokenEq       // ==
	TokenNotEq    // !=
	TokenLt       // <
	TokenLtEq     // <=
	TokenGt       // >
	TokenGtEq     // >=
	TokenAnd      // &&
	TokenOr       // ||
	TokenBang     // !
	TokenLParen   // (
	TokenRParen   // )
	TokenLBrace   // {
	TokenRBrace   // }
	TokenLBracket // [
	TokenRBracket // ]
	TokenComma    // ,
	TokenSemi     // ;
	TokenColon    // :
	TokenDot      // .
	TokenAt       // @
)

var tokenNames = map[TokenType]string{
	TokenEOF:      "EOF",
	TokenIdent:    "identifier",
	TokenInt:      "int literal",
	TokenFloat:    "float literal",
	TokenString:   "string literal",
	TokenFunc:     "func",
	TokenLet:      "let",
	TokenIf:       "if",
	TokenElse:     "else",
	TokenWhile:    "while",
	TokenFor:      "for",
	TokenIn:       "in",
	TokenReturn:   "return",
	TokenBreak:    "break",
	TokenContinue: "continue",
	TokenTrue:     "true",
	TokenFalse:    "false",
	TokenNull:     "null",
	TokenAssign:   "=",
	TokenPlus:     "+",
	TokenMinus:    "-",
	TokenStar:     "*",
	TokenSlash:    "/",
	TokenPercent:  "%",
	TokenEq:       "==",
	TokenNotEq:    "!=",
	TokenLt:       "<",
	TokenLtEq:     "<=",
	TokenGt:       ">",
	TokenGtEq:     ">=",
	TokenAnd:      "&&",
	TokenOr:       "||",
	TokenBang:     "!",
	TokenLParen:   "(",
	TokenRParen:   ")",
	TokenLBrace:   "{",
	TokenRBrace:   "}",
	TokenLBracket: "[",
	TokenRBracket: "]",
	TokenComma:    ",",
	TokenSemi:     ";",
	TokenColon:    ":",
	TokenDot:      ".",
	TokenAt:       "@",
}

// String returns a human-readable name for the token type.
func (t TokenType) String() string {
	if s, ok := tokenNames[t]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(t))
}

var keywords = map[string]TokenType{
	"func":     TokenFunc,
	"let":      TokenLet,
	"if":       TokenIf,
	"else":     TokenElse,
	"while":    TokenWhile,
	"for":      TokenFor,
	"in":       TokenIn,
	"return":   TokenReturn,
	"break":    TokenBreak,
	"continue": TokenContinue,
	"true":     TokenTrue,
	"false":    TokenFalse,
	"null":     TokenNull,
}

// Token is one lexical token with its source position.
type Token struct {
	Type    TokenType
	Literal string
	Line    int
	Col     int
}

// Pos renders the token's position as "line:col".
func (t Token) Pos() string { return fmt.Sprintf("%d:%d", t.Line, t.Col) }
