package msgbus

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/events"
	"repro/internal/faults"
	"repro/internal/metrics"
)

func batchOf(n int, key string) []BatchRecord {
	recs := make([]BatchRecord, n)
	for i := range recs {
		recs[i] = BatchRecord{Key: key, Value: []byte(fmt.Sprintf("v%03d", i))}
	}
	return recs
}

// TestProduceBatchFIFO checks the batched path preserves the
// per-partition FIFO contract: offsets are contiguous in batch order
// and a batched consume returns the records in that order.
func TestProduceBatchFIFO(t *testing.T) {
	b := NewBroker()
	if err := b.CreateTopic("jobs", 1); err != nil {
		t.Fatal(err)
	}
	offsets, err := b.ProduceBatchAt("jobs", batchOf(10, "k"), time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	for i, off := range offsets {
		if off != int64(i) {
			t.Fatalf("offsets not contiguous from 0: %v", offsets)
		}
	}
	msgs, err := b.ConsumeFrom("jobs", 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 10 {
		t.Fatalf("consumed %d messages, want 10", len(msgs))
	}
	for i, m := range msgs {
		if want := fmt.Sprintf("v%03d", i); !bytes.Equal(m.Value, []byte(want)) {
			t.Errorf("message %d = %q, want %q", i, m.Value, want)
		}
		if m.Offset != int64(i) {
			t.Errorf("message %d has offset %d", i, m.Offset)
		}
	}
}

// TestProduceBatchMultiPartition routes a mixed-key batch across
// partitions and checks each partition sees its records contiguously,
// in batch order, with offsets reported per record.
func TestProduceBatchMultiPartition(t *testing.T) {
	b := NewBroker()
	if err := b.CreateTopic("jobs", 4); err != nil {
		t.Fatal(err)
	}
	recs := make([]BatchRecord, 32)
	for i := range recs {
		recs[i] = BatchRecord{Key: fmt.Sprintf("key-%d", i%8), Value: []byte(fmt.Sprintf("v%03d", i))}
	}
	offsets, err := b.ProduceBatch("jobs", recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(offsets) != len(recs) {
		t.Fatalf("%d offsets for %d records", len(offsets), len(recs))
	}
	// Replay each partition and match every batch record exactly once,
	// in batch order within its partition.
	matched := 0
	for part := 0; part < 4; part++ {
		msgs, err := b.ConsumeFrom("jobs", part, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		last := -1
		for _, m := range msgs {
			idx := -1
			for i, r := range recs {
				if bytes.Equal(m.Value, []byte(fmt.Sprintf("v%03d", i))) && r.Key == m.Key {
					idx = i
					break
				}
			}
			if idx < 0 {
				t.Fatalf("partition %d has unexpected message %q", part, m.Value)
			}
			if idx <= last {
				t.Errorf("partition %d violates batch order: record %d after %d", part, idx, last)
			}
			last = idx
			if offsets[idx] != m.Offset {
				t.Errorf("record %d: reported offset %d, stored %d", idx, offsets[idx], m.Offset)
			}
			matched++
		}
	}
	if matched != len(recs) {
		t.Errorf("matched %d of %d records across partitions", matched, len(recs))
	}
}

// TestProduceBatchAllOrNothing arms one produce fault and checks the
// whole batch fails with no partial append — then succeeds once the
// fault is consumed.
func TestProduceBatchAllOrNothing(t *testing.T) {
	b := NewBroker()
	if err := b.CreateTopic("jobs", 2); err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	b.Instrument(reg)
	plane := faults.NewPlane(7)
	b.AttachFaults(plane)
	plane.Enqueue(faults.SiteBusProduce, faults.KindError)

	if _, err := b.ProduceBatch("jobs", batchOf(8, "k")); err == nil {
		t.Fatal("batch with armed fault succeeded")
	}
	for part := 0; part < 2; part++ {
		msgs, err := b.ConsumeFrom("jobs", part, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(msgs) != 0 {
			t.Fatalf("failed batch left %d records in partition %d", len(msgs), part)
		}
	}
	if got := reg.Counter("msgbus_produced_total").Value(); got != 0 {
		t.Errorf("produced counter = %d after failed batch, want 0", got)
	}

	offsets, err := b.ProduceBatch("jobs", batchOf(8, "k"))
	if err != nil {
		t.Fatalf("batch after fault drained: %v", err)
	}
	if len(offsets) != 8 {
		t.Fatalf("got %d offsets, want 8", len(offsets))
	}
	if got := reg.Counter("msgbus_produced_total").Value(); got != 8 {
		t.Errorf("produced counter = %d, want 8", got)
	}
}

// TestConsumeFromBounds pins the batched read's edge cases: offset at
// the log end is an empty read, past the end is ErrBadOffset, and max
// truncates.
func TestConsumeFromBounds(t *testing.T) {
	b := NewBroker()
	if err := b.CreateTopic("jobs", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := b.ProduceBatch("jobs", batchOf(5, "k")); err != nil {
		t.Fatal(err)
	}
	msgs, err := b.ConsumeFrom("jobs", 0, 5, 0)
	if err != nil || len(msgs) != 0 {
		t.Errorf("read at log end: %d msgs, err %v; want empty, nil", len(msgs), err)
	}
	if _, err := b.ConsumeFrom("jobs", 0, 6, 0); !errors.Is(err, ErrBadOffset) {
		t.Errorf("read past log end: %v, want ErrBadOffset", err)
	}
	msgs, err = b.ConsumeFrom("jobs", 0, 1, 2)
	if err != nil || len(msgs) != 2 {
		t.Fatalf("bounded read: %d msgs, err %v; want 2, nil", len(msgs), err)
	}
	if msgs[0].Offset != 1 || msgs[1].Offset != 2 {
		t.Errorf("bounded read offsets %d,%d; want 1,2", msgs[0].Offset, msgs[1].Offset)
	}
}

// TestConcurrentBatchProducers races batch producers on one topic and
// checks every batch stayed contiguous per partition and nothing was
// lost or double-assigned. Run with -race this also exercises the
// per-partition locking of the batched path.
func TestConcurrentBatchProducers(t *testing.T) {
	b := NewBroker()
	if err := b.CreateTopic("jobs", 1); err != nil {
		t.Fatal(err)
	}
	const (
		producers = 8
		perBatch  = 16
		batches   = 10
	)
	var wg sync.WaitGroup
	offsetSets := make([][][]int64, producers)
	for g := 0; g < producers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for n := 0; n < batches; n++ {
				offs, err := b.ProduceBatchAt("jobs", batchOf(perBatch, "k"), time.Duration(n))
				if err != nil {
					t.Error(err)
					return
				}
				offsetSets[g] = append(offsetSets[g], offs)
			}
		}(g)
	}
	wg.Wait()

	total := producers * perBatch * batches
	msgs, err := b.ConsumeFrom("jobs", 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != total {
		t.Fatalf("partition has %d records, want %d", len(msgs), total)
	}
	seen := make(map[int64]bool, total)
	for _, offs := range offsetSets {
		for _, batch := range offs {
			for i := 1; i < len(batch); i++ {
				if batch[i] != batch[i-1]+1 {
					t.Fatalf("batch offsets not contiguous: %v", batch)
				}
			}
			for _, off := range batch {
				if seen[off] {
					t.Fatalf("offset %d assigned twice", off)
				}
				seen[off] = true
			}
		}
	}
	if len(seen) != total {
		t.Errorf("%d distinct offsets, want %d", len(seen), total)
	}
}

// TestConsumeFromTracedAt checks the traced batched consume: one
// "consume-batch" journal event per non-empty read (linked back to the
// producer's batch event), dwell recorded per stamped record, one
// msgbus.consume fault consultation per call, and no event on an empty
// poll.
func TestConsumeFromTracedAt(t *testing.T) {
	b := NewBroker()
	if err := b.CreateTopic("jobs", 1); err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	b.Instrument(reg)
	journal := events.NewJournal(0)
	sc := journal.NewScope("test", "batch-read", 0)

	if _, err := b.ProduceBatchTracedAt("jobs", batchOf(4, "k"), time.Millisecond, sc); err != nil {
		t.Fatal(err)
	}
	msgs, err := b.ConsumeFromTracedAt("jobs", 0, 0, 0, 3*time.Millisecond, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 4 {
		t.Fatalf("consumed %d messages, want 4", len(msgs))
	}
	var produceRef events.Ref
	var batchEvents []events.Event
	for _, e := range journal.Events() {
		switch e.Name {
		case "produce-batch":
			produceRef = events.Ref{Trace: e.Trace, Span: e.Span}
		case "consume-batch":
			batchEvents = append(batchEvents, e)
		}
	}
	if len(batchEvents) != 1 {
		t.Fatalf("journal has %d consume-batch events, want 1", len(batchEvents))
	}
	if batchEvents[0].Link != produceRef {
		t.Errorf("consume-batch link = %+v, want the produce-batch ref %+v", batchEvents[0].Link, produceRef)
	}
	count := ""
	for _, a := range batchEvents[0].Attrs {
		if a.Key == "count" {
			count = a.Value
		}
	}
	if count != "4" {
		t.Errorf("consume-batch count attr = %q, want 4", count)
	}
	if got := reg.Histogram("msgbus_dwell").Count(); got != 4 {
		t.Errorf("dwell observations = %d, want one per record", got)
	}

	// An empty poll at the log end records no journal event.
	before := journal.Len()
	if _, err := b.ConsumeFromTracedAt("jobs", 0, 4, 0, 4*time.Millisecond, sc); err != nil {
		t.Fatal(err)
	}
	if journal.Len() != before {
		t.Errorf("empty traced poll appended %d events", journal.Len()-before)
	}

	// The consume site is consulted once per call: a single armed fault
	// fails the whole poll, and the next poll succeeds.
	plane := faults.NewPlane(11)
	b.AttachFaults(plane)
	plane.Enqueue(faults.SiteBusConsume, faults.KindError)
	if _, err := b.ConsumeFromTracedAt("jobs", 0, 0, 0, 5*time.Millisecond, sc); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("armed consume fault: err %v, want ErrInjected", err)
	}
	msgs, err = b.ConsumeFromTracedAt("jobs", 0, 0, 0, 6*time.Millisecond, sc)
	if err != nil || len(msgs) != 4 {
		t.Fatalf("poll after fault drained: %d msgs, err %v", len(msgs), err)
	}
}
