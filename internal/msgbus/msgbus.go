// Package msgbus implements the Kafka-like message bus Fireworks uses as
// its parameter passer (§3.6): before resuming a snapshot, the platform
// produces the invocation arguments to a per-function-instance topic; the
// resumed guest consumes exactly one message from the latest offset
// (the paper shells out to `kafkacat -o -1 -c 1`).
//
// The broker supports multiple topics, partitioned append-only logs,
// offset-based consumption, and blocking "latest" reads, which is the
// subset of Kafka the platform depends on.
package msgbus

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/events"
	"repro/internal/faults"
	"repro/internal/metrics"
)

// Errors returned by the broker.
var (
	ErrNoTopic   = errors.New("msgbus: topic does not exist")
	ErrBadOffset = errors.New("msgbus: offset out of range")
	ErrEmpty     = errors.New("msgbus: topic is empty")
)

// Message is one record in a topic partition.
type Message struct {
	Topic     string
	Partition int
	Offset    int64
	Key       string
	Value     []byte
	// ProducedAt is the producer's virtual-clock position when the
	// record was appended (see ProduceAt); stamped reports whether it
	// was set, so dwell time is only measured for stamped records.
	ProducedAt time.Duration
	stamped    bool
	// Produced is the journal reference of the producer's "produce"
	// event (zero when the producer was untraced). A traced consume
	// links its event back to it — the causal produce→consume edge.
	Produced events.Ref
}

// Broker is an in-process message bus. It is safe for concurrent use.
type Broker struct {
	mu     sync.Mutex
	topics map[string]*topic

	// Observability (nil-safe; see Instrument).
	depth    *metrics.Gauge
	produced *metrics.Counter
	consumed *metrics.Counter
	dwell    *metrics.Histogram

	// faults, when attached, injects failures at the msgbus.produce and
	// msgbus.consume sites (nil-safe). The broker has no invocation
	// clock, so only error-class faults make sense here.
	faults *faults.Plane
}

// AttachFaults arms the broker's fault-injection sites.
func (b *Broker) AttachFaults(p *faults.Plane) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.faults = p
}

// Instrument attaches the broker to a metrics registry: queue depth
// across all topics, produced/consumed counters, and the queue dwell
// histogram (virtual time a record waits between ProduceAt and a
// stamped consume — the §3.6 parameter-passing cost the paper folds
// into "others").
func (b *Broker) Instrument(reg *metrics.Registry) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.depth = reg.Gauge("msgbus_queue_depth")
	b.produced = reg.Counter("msgbus_produced_total")
	b.consumed = reg.Counter("msgbus_consumed_total")
	b.dwell = reg.Histogram("msgbus_dwell")
}

type topic struct {
	name       string
	partitions []*partition
}

type partition struct {
	mu      sync.Mutex
	cond    *sync.Cond
	records []Message
}

func newPartition() *partition {
	p := &partition{}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// NewBroker returns an empty broker.
func NewBroker() *Broker {
	return &Broker{topics: make(map[string]*topic)}
}

// CreateTopic creates a topic with the given number of partitions.
// Creating an existing topic is a no-op if the partition count matches.
func (b *Broker) CreateTopic(name string, partitions int) error {
	if partitions <= 0 {
		return fmt.Errorf("msgbus: topic %q needs at least one partition", name)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if t, ok := b.topics[name]; ok {
		if len(t.partitions) != partitions {
			return fmt.Errorf("msgbus: topic %q exists with %d partitions", name, len(t.partitions))
		}
		return nil
	}
	t := &topic{name: name}
	for i := 0; i < partitions; i++ {
		t.partitions = append(t.partitions, newPartition())
	}
	b.topics[name] = t
	return nil
}

// DeleteTopic removes a topic and all its records.
func (b *Broker) DeleteTopic(name string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if t, ok := b.topics[name]; ok {
		var records int64
		for _, p := range t.partitions {
			p.mu.Lock()
			records += int64(len(p.records))
			p.mu.Unlock()
		}
		b.depth.Add(-records)
	}
	delete(b.topics, name)
}

// TopicCount reports how many topics exist. The lifecycle tests use it
// to prove no per-invocation topic outlives its invocation.
func (b *Broker) TopicCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.topics)
}

// HasTopic reports whether the topic exists.
func (b *Broker) HasTopic(name string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, ok := b.topics[name]
	return ok
}

func (b *Broker) topic(name string) (*topic, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	t, ok := b.topics[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTopic, name)
	}
	return t, nil
}

// partitionFor hashes a key onto one of the topic's partitions (FNV-1a),
// or partition 0 for an empty key.
func (t *topic) partitionFor(key string) *partition {
	if key == "" || len(t.partitions) == 1 {
		return t.partitions[0]
	}
	var h uint32 = 2166136261
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return t.partitions[h%uint32(len(t.partitions))]
}

// Produce appends a record and returns its partition and offset.
func (b *Broker) Produce(topicName, key string, value []byte) (partitionID int, offset int64, err error) {
	return b.produce(topicName, key, value, 0, false, nil)
}

// ProduceAt is Produce with the producer's virtual-clock position; the
// record is stamped so a later stamped consume can measure queue dwell
// on the same clock.
func (b *Broker) ProduceAt(topicName, key string, value []byte, at time.Duration) (partitionID int, offset int64, err error) {
	return b.produce(topicName, key, value, at, true, nil)
}

// ProduceTracedAt is ProduceAt under an event scope: the append emits a
// "produce" event and the record carries the event's journal reference,
// so the eventual consumer's event links back to this produce.
func (b *Broker) ProduceTracedAt(topicName, key string, value []byte, at time.Duration, sc *events.Scope) (partitionID int, offset int64, err error) {
	return b.produce(topicName, key, value, at, true, sc)
}

func (b *Broker) produce(topicName, key string, value []byte, at time.Duration, stamped bool, sc *events.Scope) (partitionID int, offset int64, err error) {
	if err := b.faults.InjectTraced(faults.SiteBusProduce, nil, sc, at); err != nil {
		return 0, 0, fmt.Errorf("msgbus: produce to %q: %w", topicName, err)
	}
	t, err := b.topic(topicName)
	if err != nil {
		return 0, 0, err
	}
	p := t.partitionFor(key)
	for i, cand := range t.partitions {
		if cand == p {
			partitionID = i
			break
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	offset = int64(len(p.records))
	ref := sc.Instant("msgbus", "produce", at,
		events.A("topic", topicName), events.A("offset", strconv.FormatInt(offset, 10)))
	p.records = append(p.records, Message{
		Topic:      topicName,
		Partition:  partitionID,
		Offset:     offset,
		Key:        key,
		Value:      append([]byte(nil), value...),
		ProducedAt: at,
		stamped:    stamped,
		Produced:   ref,
	})
	b.produced.Inc()
	b.depth.Add(1)
	p.cond.Broadcast()
	return partitionID, offset, nil
}

// BatchRecord is one record of a batched produce.
type BatchRecord struct {
	Key   string
	Value []byte
}

// ProduceBatch appends a batch of records to one topic under a single
// broker-lock acquisition and one lock acquisition per touched
// partition (unstamped; see ProduceBatchAt).
func (b *Broker) ProduceBatch(topicName string, recs []BatchRecord) (offsets []int64, err error) {
	return b.produceBatch(topicName, recs, 0, false, nil)
}

// ProduceBatchAt is ProduceBatch with the producer's virtual-clock
// position; every record in the batch is stamped with it.
func (b *Broker) ProduceBatchAt(topicName string, recs []BatchRecord, at time.Duration) (offsets []int64, err error) {
	return b.produceBatch(topicName, recs, at, true, nil)
}

// ProduceBatchTracedAt is ProduceBatchAt under an event scope: the
// batch emits ONE "produce-batch" journal event (not one per record)
// and every record carries its reference, so consumes still link back
// causally while the journal cost is amortized across the batch.
func (b *Broker) ProduceBatchTracedAt(topicName string, recs []BatchRecord, at time.Duration, sc *events.Scope) (offsets []int64, err error) {
	return b.produceBatch(topicName, recs, at, true, sc)
}

// produceBatch amortizes lock acquisition across a batch while
// preserving the unbatched path's semantics:
//
//   - fault sites: the msgbus.produce site is consulted once per
//     record (same seeded schedule as N single produces); any injected
//     fault fails the whole batch before a single record lands, so a
//     partial batch is never visible.
//   - FIFO: records land in their partitions in batch order, and the
//     whole batch appends atomically per partition — records of one
//     batch are contiguous in each partition's log.
func (b *Broker) produceBatch(topicName string, recs []BatchRecord, at time.Duration, stamped bool, sc *events.Scope) ([]int64, error) {
	if len(recs) == 0 {
		return nil, nil
	}
	for range recs {
		if err := b.faults.InjectTraced(faults.SiteBusProduce, nil, sc, at); err != nil {
			return nil, fmt.Errorf("msgbus: produce batch to %q: %w", topicName, err)
		}
	}
	t, err := b.topic(topicName)
	if err != nil {
		return nil, err
	}
	ref := sc.Instant("msgbus", "produce-batch", at,
		events.A("topic", topicName), events.A("count", strconv.Itoa(len(recs))))
	// Group record indexes by partition so each partition lock is
	// taken exactly once.
	partIdx := make(map[*partition]int, len(t.partitions))
	for i, p := range t.partitions {
		partIdx[p] = i
	}
	byPart := make(map[*partition][]int)
	for i, rec := range recs {
		p := t.partitionFor(rec.Key)
		byPart[p] = append(byPart[p], i)
	}
	offsets := make([]int64, len(recs))
	for _, p := range t.partitions {
		idxs := byPart[p]
		if len(idxs) == 0 {
			continue
		}
		p.mu.Lock()
		base := int64(len(p.records))
		for k, i := range idxs {
			offsets[i] = base + int64(k)
			p.records = append(p.records, Message{
				Topic:      topicName,
				Partition:  partIdx[p],
				Offset:     offsets[i],
				Key:        recs[i].Key,
				Value:      append([]byte(nil), recs[i].Value...),
				ProducedAt: at,
				stamped:    stamped,
				Produced:   ref,
			})
		}
		p.cond.Broadcast()
		p.mu.Unlock()
	}
	b.produced.Add(int64(len(recs)))
	b.depth.Add(int64(len(recs)))
	return offsets, nil
}

// ConsumeFrom returns up to max records of a partition starting at
// offset, under a single lock acquisition — the batched counterpart of
// repeated ConsumeAt calls. It returns ErrBadOffset when offset is past
// the log end (offset == len is an empty, error-free read).
func (b *Broker) ConsumeFrom(topicName string, partitionID int, offset int64, max int) ([]Message, error) {
	return b.consumeFrom(topicName, partitionID, offset, max, 0, false, nil)
}

// ConsumeFromAt is ConsumeFrom with the consumer's virtual-clock
// position: queue dwell is recorded once per stamped record, exactly as
// repeated single consumes would.
func (b *Broker) ConsumeFromAt(topicName string, partitionID int, offset int64, max int, at time.Duration) ([]Message, error) {
	return b.consumeFrom(topicName, partitionID, offset, max, at, true, nil)
}

// consumeFrom is the shared batch-read path. When sc is non-nil, dwell
// observations carry the scope's trace as their exemplar.
func (b *Broker) consumeFrom(topicName string, partitionID int, offset int64, max int, at time.Duration, clocked bool, sc *events.Scope) ([]Message, error) {
	t, err := b.topic(topicName)
	if err != nil {
		return nil, err
	}
	if partitionID < 0 || partitionID >= len(t.partitions) {
		return nil, fmt.Errorf("msgbus: topic %q has no partition %d", topicName, partitionID)
	}
	p := t.partitions[partitionID]
	p.mu.Lock()
	defer p.mu.Unlock()
	if offset < 0 || offset > int64(len(p.records)) {
		return nil, fmt.Errorf("%w: %d of %d", ErrBadOffset, offset, len(p.records))
	}
	end := int64(len(p.records))
	if max > 0 && offset+int64(max) < end {
		end = offset + int64(max)
	}
	out := append([]Message(nil), p.records[offset:end]...)
	if clocked {
		for _, m := range out {
			if m.stamped && at >= m.ProducedAt {
				b.dwell.ObserveDurationExemplar(at-m.ProducedAt, uint64(sc.TraceID()), at)
			}
		}
	}
	b.consumed.Add(int64(len(out)))
	return out, nil
}

// ConsumeFromTracedAt is ConsumeFromAt under an event scope, the
// consume-side symmetry of ProduceBatchTracedAt: the msgbus.consume
// fault site is consulted once for the whole batch (a consumer group
// poll fails or succeeds as a unit), and a non-empty read emits ONE
// "consume-batch" journal event — causally linked to the first
// record's produce event — instead of one event per record. Queue
// dwell is still recorded per stamped record.
func (b *Broker) ConsumeFromTracedAt(topicName string, partitionID int, offset int64, max int, at time.Duration, sc *events.Scope) ([]Message, error) {
	if err := b.faults.InjectTraced(faults.SiteBusConsume, nil, sc, at); err != nil {
		return nil, fmt.Errorf("msgbus: consume from %q: %w", topicName, err)
	}
	msgs, err := b.consumeFrom(topicName, partitionID, offset, max, at, true, sc)
	if err != nil {
		return nil, err
	}
	if len(msgs) > 0 {
		sc.InstantLinked("msgbus", "consume-batch", at, msgs[0].Produced,
			events.A("topic", topicName),
			events.A("offset", strconv.FormatInt(offset, 10)),
			events.A("count", strconv.Itoa(len(msgs))))
	}
	return msgs, nil
}

// ConsumeAt returns the record at the given offset of a partition.
func (b *Broker) ConsumeAt(topicName string, partitionID int, offset int64) (Message, error) {
	t, err := b.topic(topicName)
	if err != nil {
		return Message{}, err
	}
	if partitionID < 0 || partitionID >= len(t.partitions) {
		return Message{}, fmt.Errorf("msgbus: topic %q has no partition %d", topicName, partitionID)
	}
	p := t.partitions[partitionID]
	p.mu.Lock()
	defer p.mu.Unlock()
	if offset < 0 || offset >= int64(len(p.records)) {
		return Message{}, fmt.Errorf("%w: %d of %d", ErrBadOffset, offset, len(p.records))
	}
	return p.records[offset], nil
}

// ConsumeLatest returns the most recent record in partition 0, the
// semantics of `kafkacat -C -o -1 -c 1`. It returns ErrEmpty when the
// partition has no records.
func (b *Broker) ConsumeLatest(topicName string) (Message, error) {
	return b.consumeLatest(topicName, 0, nil)
}

func (b *Broker) consumeLatest(topicName string, at time.Duration, sc *events.Scope) (Message, error) {
	if err := b.faults.InjectTraced(faults.SiteBusConsume, nil, sc, at); err != nil {
		return Message{}, fmt.Errorf("msgbus: consume from %q: %w", topicName, err)
	}
	t, err := b.topic(topicName)
	if err != nil {
		return Message{}, err
	}
	p := t.partitions[0]
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.records) == 0 {
		return Message{}, fmt.Errorf("%w: %q", ErrEmpty, topicName)
	}
	b.consumed.Inc()
	return p.records[len(p.records)-1], nil
}

// ConsumeLatestAt is ConsumeLatest with the consumer's virtual-clock
// position. When the returned record was produced with ProduceAt on
// the same clock, the elapsed queue dwell is recorded.
func (b *Broker) ConsumeLatestAt(topicName string, at time.Duration) (Message, error) {
	return b.ConsumeLatestTracedAt(topicName, at, nil)
}

// ConsumeLatestTracedAt is ConsumeLatestAt under an event scope: the
// read emits a "consume" event causally linked to the record's
// "produce" event (when the producer was traced).
func (b *Broker) ConsumeLatestTracedAt(topicName string, at time.Duration, sc *events.Scope) (Message, error) {
	msg, err := b.consumeLatest(topicName, at, sc)
	if err != nil {
		return msg, err
	}
	if msg.stamped && at >= msg.ProducedAt {
		b.dwell.ObserveDurationExemplar(at-msg.ProducedAt, uint64(sc.TraceID()), at)
	}
	sc.InstantLinked("msgbus", "consume", at, msg.Produced,
		events.A("topic", topicName), events.A("offset", strconv.FormatInt(msg.Offset, 10)))
	return msg, nil
}

// WaitLatest blocks until the partition has a record at or past minCount
// records, then returns the newest. It is used when the resumed guest
// can race the producer.
func (b *Broker) WaitLatest(topicName string, minCount int) (Message, error) {
	t, err := b.topic(topicName)
	if err != nil {
		return Message{}, err
	}
	p := t.partitions[0]
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.records) < minCount {
		p.cond.Wait()
	}
	b.consumed.Inc()
	return p.records[len(p.records)-1], nil
}

// Len returns the number of records across all partitions of a topic.
func (b *Broker) Len(topicName string) (int, error) {
	t, err := b.topic(topicName)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, p := range t.partitions {
		p.mu.Lock()
		total += len(p.records)
		p.mu.Unlock()
	}
	return total, nil
}
