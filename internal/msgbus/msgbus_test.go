package msgbus

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestProduceConsume(t *testing.T) {
	b := NewBroker()
	if err := b.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	part, off, err := b.Produce("t", "k", []byte("v0"))
	if err != nil {
		t.Fatal(err)
	}
	if part != 0 || off != 0 {
		t.Fatalf("part=%d off=%d", part, off)
	}
	_, off2, _ := b.Produce("t", "k", []byte("v1"))
	if off2 != 1 {
		t.Fatalf("second offset = %d", off2)
	}
	msg, err := b.ConsumeAt("t", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(msg.Value) != "v0" || msg.Offset != 0 {
		t.Fatalf("msg = %+v", msg)
	}
}

func TestConsumeLatestSemantics(t *testing.T) {
	// kafkacat -o -1 -c 1: read exactly the newest record.
	b := NewBroker()
	b.CreateTopic("params", 1)
	if _, err := b.ConsumeLatest("params"); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty topic err = %v", err)
	}
	b.Produce("params", "", []byte("old"))
	b.Produce("params", "", []byte("new"))
	msg, err := b.ConsumeLatest("params")
	if err != nil {
		t.Fatal(err)
	}
	if string(msg.Value) != "new" {
		t.Fatalf("latest = %q", msg.Value)
	}
	// Consuming again still returns the newest (no offset commit).
	again, _ := b.ConsumeLatest("params")
	if string(again.Value) != "new" {
		t.Fatal("latest changed without produce")
	}
}

func TestMissingTopic(t *testing.T) {
	b := NewBroker()
	if _, _, err := b.Produce("nope", "", nil); !errors.Is(err, ErrNoTopic) {
		t.Fatalf("err = %v", err)
	}
	if _, err := b.ConsumeLatest("nope"); !errors.Is(err, ErrNoTopic) {
		t.Fatalf("err = %v", err)
	}
}

func TestBadOffset(t *testing.T) {
	b := NewBroker()
	b.CreateTopic("t", 1)
	b.Produce("t", "", []byte("x"))
	if _, err := b.ConsumeAt("t", 0, 5); !errors.Is(err, ErrBadOffset) {
		t.Fatalf("err = %v", err)
	}
	if _, err := b.ConsumeAt("t", 3, 0); err == nil {
		t.Fatal("bad partition accepted")
	}
}

func TestCreateTopicIdempotent(t *testing.T) {
	b := NewBroker()
	if err := b.CreateTopic("t", 2); err != nil {
		t.Fatal(err)
	}
	if err := b.CreateTopic("t", 2); err != nil {
		t.Fatalf("idempotent create failed: %v", err)
	}
	if err := b.CreateTopic("t", 3); err == nil {
		t.Fatal("partition-count change accepted")
	}
	if err := b.CreateTopic("zero", 0); err == nil {
		t.Fatal("zero partitions accepted")
	}
}

func TestDeleteTopic(t *testing.T) {
	b := NewBroker()
	b.CreateTopic("t", 1)
	b.Produce("t", "", []byte("x"))
	b.DeleteTopic("t")
	if b.HasTopic("t") {
		t.Fatal("topic survives delete")
	}
}

func TestKeyPartitioningIsStable(t *testing.T) {
	b := NewBroker()
	b.CreateTopic("t", 4)
	first, _, err := b.Produce("t", "stable-key", []byte("a"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		p, _, _ := b.Produce("t", "stable-key", []byte("b"))
		if p != first {
			t.Fatalf("key moved partition: %d vs %d", p, first)
		}
	}
}

func TestLen(t *testing.T) {
	b := NewBroker()
	b.CreateTopic("t", 3)
	for i := 0; i < 10; i++ {
		b.Produce("t", fmt.Sprintf("k%d", i), []byte("x"))
	}
	n, err := b.Len("t")
	if err != nil || n != 10 {
		t.Fatalf("Len = %d, %v", n, err)
	}
}

func TestWaitLatestBlocksUntilProduce(t *testing.T) {
	b := NewBroker()
	b.CreateTopic("t", 1)
	done := make(chan Message, 1)
	go func() {
		msg, err := b.WaitLatest("t", 1)
		if err != nil {
			t.Error(err)
		}
		done <- msg
	}()
	b.Produce("t", "", []byte("arrived"))
	msg := <-done
	if string(msg.Value) != "arrived" {
		t.Fatalf("msg = %q", msg.Value)
	}
}

func TestConcurrentProducers(t *testing.T) {
	b := NewBroker()
	b.CreateTopic("t", 1)
	var wg sync.WaitGroup
	const producers, each = 8, 100
	for i := 0; i < producers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < each; j++ {
				if _, _, err := b.Produce("t", "", []byte{byte(id)}); err != nil {
					t.Error(err)
				}
			}
		}(i)
	}
	wg.Wait()
	n, _ := b.Len("t")
	if n != producers*each {
		t.Fatalf("Len = %d, want %d (lost records)", n, producers*each)
	}
	// Offsets are dense and ordered.
	for off := int64(0); off < int64(n); off++ {
		msg, err := b.ConsumeAt("t", 0, off)
		if err != nil || msg.Offset != off {
			t.Fatalf("offset %d: %+v %v", off, msg, err)
		}
	}
}

// TestProduceConsumeRoundTripProperty: every produced value is readable
// at the returned (partition, offset) and matches.
func TestProduceConsumeRoundTripProperty(t *testing.T) {
	b := NewBroker()
	b.CreateTopic("q", 3)
	f := func(key string, value []byte) bool {
		part, off, err := b.Produce("q", key, value)
		if err != nil {
			return false
		}
		msg, err := b.ConsumeAt("q", part, off)
		if err != nil {
			return false
		}
		return string(msg.Value) == string(value) && msg.Key == key
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
