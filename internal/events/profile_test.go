package events

import (
	"bytes"
	"testing"
	"time"
)

func TestFoldStacksChargesInnermost(t *testing.T) {
	j := NewJournal(0)
	sc := j.NewScope("core", "invoke", 0)
	sc.Begin("core", "restore-or-reuse", 10*time.Microsecond)
	sc.Begin("vmm", "vm-restore", 20*time.Microsecond)
	sc.End(50 * time.Microsecond) // 30µs in core:invoke;core:restore-or-reuse;vmm:vm-restore
	sc.End(60 * time.Microsecond) // 10µs in core:invoke;core:restore-or-reuse
	sc.Close(100 * time.Microsecond)

	charged := FoldStacks(j.Events())
	want := map[string]time.Duration{
		"core:invoke":                                      10*time.Microsecond + 40*time.Microsecond,
		"core:invoke;core:restore-or-reuse":                10*time.Microsecond + 10*time.Microsecond,
		"core:invoke;core:restore-or-reuse;vmm:vm-restore": 30 * time.Microsecond,
	}
	for p, d := range want {
		if charged[p] != d {
			t.Errorf("charged[%q] = %v, want %v (all: %v)", p, charged[p], d, charged)
		}
	}
	if len(charged) != len(want) {
		t.Errorf("extra paths: %v", charged)
	}
}

func TestFoldStacksIgnoresClockRestart(t *testing.T) {
	j := NewJournal(0)
	sc := j.NewScope("cluster", "request", 0)
	sc.Instant("cluster", "place", 40*time.Microsecond)
	sc.Instant("cluster", "failover", 0) // restarted clock — charge nothing backwards
	sc.Instant("cluster", "place", 15*time.Microsecond)
	sc.Close(30 * time.Microsecond)

	charged := FoldStacks(j.Events())
	// 40µs before the restart; the backwards jump charges nothing and
	// rebases; then 15µs (0→15) and 15µs (15→30) after it.
	if got := charged["cluster:request"]; got != 70*time.Microsecond {
		t.Fatalf("charged = %v, want 70µs", got)
	}
}

func TestWriteProfileStableOutput(t *testing.T) {
	j := NewJournal(0)
	sc := j.NewScope("core", "invoke", 0)
	sc.Begin("core", "execute", 5*time.Microsecond)
	sc.End(9 * time.Microsecond)
	sc.Close(10 * time.Microsecond)

	var a, b bytes.Buffer
	if err := WriteProfile(&a, j.Events()); err != nil {
		t.Fatal(err)
	}
	if err := WriteProfile(&b, j.Events()); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("profile output is not stable")
	}
	want := "core:invoke 6\ncore:invoke;core:execute 4\n"
	if a.String() != want {
		t.Fatalf("profile =\n%s\nwant\n%s", a.String(), want)
	}
}

func TestFoldStacksSkipsTracelessEvents(t *testing.T) {
	j := NewJournal(0)
	j.Instant("faults", "vmm.boot", 5*time.Microsecond)
	if charged := FoldStacks(j.Events()); len(charged) != 0 {
		t.Fatalf("traceless events charged %v", charged)
	}
}
