package events

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// FoldStacks folds the journal into flame-stack lines: for every span
// path (`component:name;component:name;...`), the virtual microseconds
// charged while that path was the innermost open stack, summed across
// all traces. The output is the folded-stack format flamegraph.pl and
// speedscope consume — one `path count` line, sorted by path.
//
// Time is charged to the stack open at the moment it elapses: between
// consecutive events of a trace, the interval goes to the path as of
// the earlier event. Clock restarts inside a trace (failover attempts)
// charge nothing for the backwards jump.
func FoldStacks(evs []Event) map[string]time.Duration {
	type frame struct{ label string }
	type state struct {
		stack []frame
		last  time.Duration
		seen  bool
	}
	states := map[TraceID]*state{}
	charged := map[string]time.Duration{}

	path := func(st *state) string {
		if len(st.stack) == 0 {
			return ""
		}
		parts := make([]string, len(st.stack))
		for i, f := range st.stack {
			parts[i] = f.label
		}
		return strings.Join(parts, ";")
	}

	for _, e := range evs {
		if e.Trace == 0 {
			continue
		}
		st := states[e.Trace]
		if st == nil {
			st = &state{}
			states[e.Trace] = st
		}
		if st.seen {
			if d := e.TS - st.last; d > 0 {
				if p := path(st); p != "" {
					charged[p] += d
				}
			}
		}
		// A backwards jump (failover attempt restarting its clock at
		// zero) charges nothing and rebases, so the attempt's own
		// forward progress is charged from its start.
		st.last = e.TS
		st.seen = true
		switch e.Kind {
		case KindBegin:
			st.stack = append(st.stack, frame{label: frameLabel(e)})
		case KindEnd:
			if len(st.stack) > 0 {
				st.stack = st.stack[:len(st.stack)-1]
			}
		}
	}
	return charged
}

// frameLabel renders one stack frame, sanitizing the separator
// characters of the folded format.
func frameLabel(e Event) string {
	l := e.Name
	if e.Component != "" {
		l = e.Component + ":" + e.Name
	}
	l = strings.ReplaceAll(l, ";", "_")
	l = strings.ReplaceAll(l, " ", "_")
	return l
}

// WriteProfile renders the folded stacks as `path <µs>` lines sorted
// by path — ready for flamegraph.pl / speedscope, and byte-stable.
func WriteProfile(w io.Writer, evs []Event) error {
	charged := FoldStacks(evs)
	paths := make([]string, 0, len(charged))
	for p := range charged {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if _, err := fmt.Fprintf(w, "%s %d\n", p, charged[p].Microseconds()); err != nil {
			return err
		}
	}
	return nil
}
