package events

import (
	"bytes"
	"testing"
)

// Without a guard, ring pressure evicts the shard's oldest event even
// when it belongs to a trace that is still open — the PR 6 caveat.
func TestEvictionWithoutGuardDropsOpenTrace(t *testing.T) {
	j := NewJournalShards(8, 1)
	sc := j.NewScope("core", "invoke", 0)
	root := sc.TraceID()
	for i := 0; i < 20; i++ {
		j.Instant("noise", "tick", 0)
	}
	if got := len(j.Trace(root)); got != 0 {
		t.Fatalf("expected the open trace's begin to be evicted without a guard, still have %d events", got)
	}
	if j.Dropped() == 0 {
		t.Fatal("expected overflow drops to be counted")
	}
}

// With an eviction guard — the regression fix — a full shard evicts
// the oldest unguarded event, so an open trace keeps its spans under
// ring pressure.
func TestEvictionGuardProtectsOpenTrace(t *testing.T) {
	j := NewJournalShards(8, 1)
	sc := j.NewScope("core", "invoke", 0)
	root := sc.TraceID()
	j.SetEvictionGuard(func(id TraceID) bool { return id == root })
	sc.Begin("vmm", "restore", 1)
	for i := 0; i < 40; i++ {
		j.Instant("noise", "tick", 0)
	}
	tr := j.Trace(root)
	if len(tr) != 2 {
		t.Fatalf("guarded trace lost events under ring pressure: have %d, want 2", len(tr))
	}
	if tr[0].Kind != KindBegin || tr[0].Component != "core" {
		t.Fatalf("root begin not preserved: %+v", tr[0])
	}
	// Noise instants were evicted instead, and counted.
	if j.Dropped() == 0 {
		t.Fatal("expected unguarded events to be evicted")
	}
	// Once the guard stops protecting the trace, eviction reaches it
	// again (no permanent pinning).
	j.SetEvictionGuard(func(TraceID) bool { return false })
	for i := 0; i < 20; i++ {
		j.Instant("noise", "tick", 0)
	}
	if got := len(j.Trace(root)); got != 0 {
		t.Fatalf("unguarded trace should be evictable again, still have %d events", got)
	}
}

// When every resident event is guarded, eviction falls back to plain
// oldest-first: bounded memory wins over retention.
func TestEvictionGuardFullRingFallsBack(t *testing.T) {
	j := NewJournalShards(4, 1)
	j.SetEvictionGuard(func(TraceID) bool { return true })
	sc := j.NewScope("core", "invoke", 0)
	for i := 0; i < 10; i++ {
		sc.Instant("core", "mark", 0)
	}
	if j.Len() != 4 {
		t.Fatalf("ring should stay at capacity, have %d", j.Len())
	}
	if j.Dropped() != 10-3 {
		t.Fatalf("dropped = %d, want %d", j.Dropped(), 10-3)
	}
}

func TestDropTraceRemovesEventsAndCountsBytes(t *testing.T) {
	j := NewJournalShards(64, 4)
	keepSc := j.NewScope("core", "keep", 0)
	keepSc.Instant("core", "mark", 1)
	keepSc.Close(2)
	dropSc := j.NewScope("core", "drop", 0)
	dropSc.Instant("core", "mark", 1)
	dropSc.Close(2)

	var want int64
	for _, e := range j.Trace(dropSc.TraceID()) {
		want += int64(EncodedSize(e))
	}
	removed, bytesDropped := j.DropTrace(dropSc.TraceID())
	if removed != 3 {
		t.Fatalf("removed = %d, want 3", removed)
	}
	if bytesDropped != want || bytesDropped == 0 {
		t.Fatalf("bytes = %d, want %d (nonzero)", bytesDropped, want)
	}
	if len(j.Trace(dropSc.TraceID())) != 0 {
		t.Fatal("dropped trace still resident")
	}
	if got := len(j.Trace(keepSc.TraceID())); got != 3 {
		t.Fatalf("kept trace disturbed: %d events, want 3", got)
	}
	// The exports see only survivors.
	var nd bytes.Buffer
	if err := WriteNDJSON(&nd, j.Events()); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(nd.Bytes(), []byte(`"name":"drop"`)) {
		t.Fatal("dropped trace leaked into NDJSON export")
	}
	// Dropped() counts ring overflow, not sampler drops.
	if j.Dropped() != 0 {
		t.Fatalf("DropTrace must not count as overflow drops, got %d", j.Dropped())
	}
}

type recordingObserver struct{ seen []Event }

func (r *recordingObserver) ObserveEvent(e Event) { r.seen = append(r.seen, e) }

func TestObserverSeesEveryAppend(t *testing.T) {
	j := NewJournal(0)
	obs := &recordingObserver{}
	j.SetObserver(obs)
	sc := j.NewScope("core", "invoke", 0)
	sc.Instant("core", "mark", 1)
	sc.Close(2)
	j.Instant("slo", "alert", 3)
	if len(obs.seen) != 4 {
		t.Fatalf("observer saw %d events, want 4", len(obs.seen))
	}
	if obs.seen[0].Kind != KindBegin || obs.seen[0].Seq != 1 {
		t.Fatalf("first observed event wrong: %+v", obs.seen[0])
	}
	j.SetObserver(nil)
	j.Instant("slo", "alert", 4)
	if len(obs.seen) != 4 {
		t.Fatal("detached observer still saw events")
	}
}
