package events

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// chromeDoc mirrors the wrapper WriteChromeTrace emits.
type chromeDoc struct {
	TraceEvents []struct {
		Name  string            `json:"name"`
		Cat   string            `json:"cat"`
		Phase string            `json:"ph"`
		TS    float64           `json:"ts"`
		PID   int               `json:"pid"`
		TID   int               `json:"tid"`
		ID    uint64            `json:"id"`
		BP    string            `json:"bp"`
		Args  map[string]string `json:"args"`
	} `json:"traceEvents"`
}

func buildChromeFixture() []Event {
	j := NewJournal(0)
	sc := j.NewScope("gateway", "req", 0)
	sc.SetNode("node-01")
	sc.Begin("core", "invoke", 2*time.Microsecond)
	sc.SetVM("fw-0001")
	ref := sc.Instant("msgbus", "produce", 4*time.Microsecond)
	sc.InstantLinked("msgbus", "consume", 6*time.Microsecond, ref)
	sc.End(8 * time.Microsecond)
	sc.Close(10 * time.Microsecond)

	// Second trace with a clock restart mid-trace (failover shape).
	sc2 := j.NewScope("cluster", "request", 0)
	sc2.SetNode("node-00")
	sc2.Instant("cluster", "place", 3*time.Microsecond)
	sc2.Instant("cluster", "failover", 0) // clock restarted
	sc2.Close(5 * time.Microsecond)
	return j.Events()
}

func decodeChrome(t *testing.T, evs []Event) chromeDoc {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, evs); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("chrome export is not valid JSON")
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestChromeTraceStructure(t *testing.T) {
	doc := decodeChrome(t, buildChromeFixture())
	var byPhase = map[string]int{}
	for _, e := range doc.TraceEvents {
		byPhase[e.Phase]++
	}
	if byPhase["B"] != 3 || byPhase["E"] != 3 {
		t.Fatalf("B/E counts = %d/%d, want 3/3", byPhase["B"], byPhase["E"])
	}
	if byPhase["i"] != 4 {
		t.Fatalf("instants = %d, want 4", byPhase["i"])
	}
	if byPhase["s"] != 1 || byPhase["f"] != 1 {
		t.Fatalf("flow s/f = %d/%d, want 1/1", byPhase["s"], byPhase["f"])
	}
	if byPhase["M"] == 0 {
		t.Fatal("no metadata events")
	}

	// One pid per node: host=1, node-00=2, node-01=3 (sorted).
	var procNames = map[int]string{}
	for _, e := range doc.TraceEvents {
		if e.Phase == "M" && e.Name == "process_name" {
			procNames[e.PID] = e.Args["name"]
		}
	}
	if procNames[1] != "host" || procNames[2] != "node-00" || procNames[3] != "node-01" {
		t.Fatalf("process names = %v", procNames)
	}

	// Flow source and sink share cat/name/id; sink carries bp=e.
	var src, sink *struct {
		Name  string            `json:"name"`
		Cat   string            `json:"cat"`
		Phase string            `json:"ph"`
		TS    float64           `json:"ts"`
		PID   int               `json:"pid"`
		TID   int               `json:"tid"`
		ID    uint64            `json:"id"`
		BP    string            `json:"bp"`
		Args  map[string]string `json:"args"`
	}
	for i := range doc.TraceEvents {
		e := &doc.TraceEvents[i]
		if e.Phase == "s" {
			src = e
		}
		if e.Phase == "f" {
			sink = e
		}
	}
	if src.Name != sink.Name || src.Cat != sink.Cat || src.ID != sink.ID {
		t.Fatalf("flow pair mismatch: %+v vs %+v", src, sink)
	}
	if sink.BP != "e" {
		t.Fatalf("flow sink bp = %q, want e", sink.BP)
	}
}

func TestChromeTraceMonotonicWithinTrack(t *testing.T) {
	doc := decodeChrome(t, buildChromeFixture())
	// Non-metadata timestamps must be globally non-decreasing in
	// emission order within each trace's events, and B/E must nest: an
	// E never precedes its B on the same track.
	begin := map[string]float64{}
	for _, e := range doc.TraceEvents {
		switch e.Phase {
		case "B":
			begin[e.Name] = e.TS
		case "E":
			if b, ok := begin[e.Name]; ok && e.TS < b {
				t.Fatalf("span %q ends (%v) before it begins (%v)", e.Name, e.TS, b)
			}
		}
	}
	// The restarted-clock instant must not travel back in time.
	var place, failover float64 = -1, -1
	for _, e := range doc.TraceEvents {
		if e.Name == "cluster:place" {
			place = e.TS
		}
		if e.Name == "cluster:failover" {
			failover = e.TS
		}
	}
	if failover < place {
		t.Fatalf("failover ts %v precedes place ts %v despite clock restart clamp", failover, place)
	}
}

func TestChromeTraceSerializesTraces(t *testing.T) {
	doc := decodeChrome(t, buildChromeFixture())
	// Trace 2's first event must start after trace 1's last (plus gap),
	// so traces don't overlay at t=0.
	var trace1Max, trace2Min float64 = 0, 1e18
	for _, e := range doc.TraceEvents {
		switch e.Name {
		case "gateway:req":
			if e.TS > trace1Max {
				trace1Max = e.TS
			}
		case "cluster:request":
			if e.TS < trace2Min {
				trace2Min = e.TS
			}
		}
	}
	if trace2Min <= trace1Max {
		t.Fatalf("traces overlap: trace1 max %v, trace2 min %v", trace1Max, trace2Min)
	}
}

func TestChromeEndUsesBeginTrack(t *testing.T) {
	j := NewJournal(0)
	sc := j.NewScope("core", "invoke", 0)
	sc.SetVM("fw-0001") // VM changes after the span opened
	sc.Close(time.Microsecond)
	doc := decodeChrome(t, j.Events())
	var bTID, eTID = -1, -2
	for _, e := range doc.TraceEvents {
		if e.Name == "core:invoke" && e.Phase == "B" {
			bTID = e.TID
		}
		if e.Phase == "E" {
			eTID = e.TID
		}
	}
	if bTID != eTID {
		t.Fatalf("E landed on tid %d, B on tid %d — B/E must share a track", eTID, bTID)
	}
}
