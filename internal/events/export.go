package events

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// lineEvent is the NDJSON wire form of an Event. Fields marshal in
// struct order with omitted zeros, so the dump is byte-stable for a
// given journal.
type lineEvent struct {
	Seq       uint64            `json:"seq"`
	TSNS      int64             `json:"ts_ns"`
	Trace     TraceID           `json:"trace,omitempty"`
	Span      SpanID            `json:"span"`
	Parent    SpanID            `json:"parent,omitempty"`
	Kind      Kind              `json:"kind"`
	Component string            `json:"component,omitempty"`
	Name      string            `json:"name,omitempty"`
	Node      string            `json:"node,omitempty"`
	VM        string            `json:"vm,omitempty"`
	LinkTrace TraceID           `json:"link_trace,omitempty"`
	LinkSpan  SpanID            `json:"link_span,omitempty"`
	Attrs     map[string]string `json:"attrs,omitempty"`
}

func toLine(e Event) lineEvent {
	le := lineEvent{
		Seq: e.Seq, TSNS: int64(e.TS), Trace: e.Trace, Span: e.Span,
		Parent: e.Parent, Kind: e.Kind, Component: e.Component,
		Name: e.Name, Node: e.Node, VM: e.VM,
		LinkTrace: e.Link.Trace, LinkSpan: e.Link.Span,
	}
	if len(e.Attrs) > 0 {
		le.Attrs = make(map[string]string, len(e.Attrs))
		for _, a := range e.Attrs {
			le.Attrs[a.Key] = a.Value
		}
	}
	return le
}

// WriteNDJSON renders events one JSON object per line. The encoding is
// deterministic (ordered struct fields; attr maps are small and Go's
// encoder sorts map keys), so two same-seed runs dump identical bytes —
// the property the replay test pins down.
func WriteNDJSON(w io.Writer, evs []Event) error {
	for _, e := range evs {
		b, err := json.Marshal(toLine(e))
		if err != nil {
			return err
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// EncodedSize reports the NDJSON-encoded size of one event in bytes,
// trailing newline included — the unit of the telemetry plane's
// dropped-bytes accounting, so "bytes saved" matches what an export
// would actually have written.
func EncodedSize(e Event) int {
	b, err := json.Marshal(toLine(e))
	if err != nil {
		return 0
	}
	return len(b) + 1
}

// chromeEvent is one entry of the Chrome trace-event format
// (the "JSON Array Format" Perfetto and chrome://tracing load).
type chromeEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat,omitempty"`
	Phase string            `json:"ph"`
	TS    float64           `json:"ts"` // microseconds
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Scope string            `json:"s,omitempty"`
	ID    uint64            `json:"id,omitempty"`
	BP    string            `json:"bp,omitempty"`
	Args  map[string]string `json:"args,omitempty"`
}

// traceGap separates serialized traces on the Chrome timeline. Every
// invocation clock starts at zero, so traces are laid end to end in
// first-seen order rather than stacked on top of each other.
const traceGap = time.Millisecond

// WriteChromeTrace renders events as Chrome trace-event JSON:
// one pid per node (pid 1 = the host/control plane), one tid per VM
// (tid 1 = the node's control plane), virtual-time microseconds.
//
// Two normalizations bridge the journal's per-invocation clocks to the
// format's single timeline: within a trace, timestamps are clamped
// monotonic (a failover attempt restarts its clock at zero; the clamp
// shifts it forward past the failed attempt), and across traces each
// trace is offset to start after the previous one ends.
func WriteChromeTrace(w io.Writer, evs []Event) error {
	// pid per node, in sorted-name order for stable output.
	nodeSet := map[string]bool{}
	vmSet := map[string]bool{}
	for _, e := range evs {
		if e.Node != "" {
			nodeSet[e.Node] = true
		}
		if e.VM != "" {
			vmSet[e.VM] = true
		}
	}
	nodes := sortedKeys(nodeSet)
	vms := sortedKeys(vmSet)
	pid := map[string]int{"": 1}
	for i, n := range nodes {
		pid[n] = 2 + i
	}
	tid := map[string]int{"": 1}
	for i, v := range vms {
		tid[v] = 2 + i
	}

	var out []chromeEvent
	meta := func(ph, name string, p, t int, label string) {
		ce := chromeEvent{Name: name, Phase: ph, PID: p, TID: t,
			Args: map[string]string{"name": label}}
		out = append(out, ce)
	}
	meta("M", "process_name", 1, 0, "host")
	for _, n := range nodes {
		meta("M", "process_name", pid[n], 0, n)
	}
	for p := 1; p <= 1+len(nodes); p++ {
		meta("M", "thread_name", p, 1, "control-plane")
		for _, v := range vms {
			meta("M", "thread_name", p, tid[v], v)
		}
	}

	// Normalize timestamps: per-trace monotonic clamp, then serialize
	// traces along the timeline in first-seen order.
	type traceState struct {
		base     time.Duration // timeline position where this trace starts
		shift    time.Duration // current clamp shift within the trace
		lastNorm time.Duration // last in-trace normalized ts
		maxNorm  time.Duration
	}
	states := map[TraceID]*traceState{}
	var nextBase time.Duration
	norm := make([]time.Duration, len(evs))
	for i, e := range evs {
		st := states[e.Trace]
		if st == nil {
			st = &traceState{base: nextBase, shift: -e.TS}
			states[e.Trace] = st
		}
		n := e.TS + st.shift
		if n < st.lastNorm {
			// Clock restarted (failover attempt): shift forward.
			st.shift += st.lastNorm - n
			n = st.lastNorm
		}
		st.lastNorm = n
		if n > st.maxNorm {
			st.maxNorm = n
		}
		if st.base+st.maxNorm+traceGap > nextBase {
			nextBase = st.base + st.maxNorm + traceGap
		}
		norm[i] = st.base + n
	}

	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

	// B events remember their pid/tid so the matching E lands on the
	// same track even if the scope moved node/VM mid-span.
	type track struct{ pid, tid int }
	spanTrack := map[SpanID]track{}
	// First occurrence of each span, for flow-link sources.
	spanFirst := map[Ref]int{}
	for i, e := range evs {
		r := Ref{Trace: e.Trace, Span: e.Span}
		if _, ok := spanFirst[r]; !ok {
			spanFirst[r] = i
		}
	}

	flowID := uint64(0)
	for i, e := range evs {
		p, t := pid[e.Node], tid[e.VM]
		name := e.Name
		if e.Component != "" {
			name = e.Component + ":" + e.Name
		}
		args := attrArgs(e)
		switch e.Kind {
		case KindBegin:
			spanTrack[e.Span] = track{p, t}
			out = append(out, chromeEvent{Name: name, Cat: e.Component,
				Phase: "B", TS: us(norm[i]), PID: p, TID: t, Args: args})
		case KindEnd:
			if tr, ok := spanTrack[e.Span]; ok {
				p, t = tr.pid, tr.tid
			}
			out = append(out, chromeEvent{Name: name, Phase: "E",
				TS: us(norm[i]), PID: p, TID: t, Args: args})
		case KindInstant:
			out = append(out, chromeEvent{Name: name, Cat: e.Component,
				Phase: "i", TS: us(norm[i]), PID: p, TID: t, Scope: "t", Args: args})
		}
		if !e.Link.IsZero() {
			if src, ok := spanFirst[e.Link]; ok {
				flowID++
				se := evs[src]
				sp, stid := pid[se.Node], tid[se.VM]
				out = append(out,
					chromeEvent{Name: "link", Cat: "flow", Phase: "s",
						TS: us(norm[src]), PID: sp, TID: stid, ID: flowID},
					chromeEvent{Name: "link", Cat: "flow", Phase: "f",
						TS: us(norm[i]), PID: p, TID: t, ID: flowID, BP: "e"})
			}
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{out})
}

func attrArgs(e Event) map[string]string {
	if len(e.Attrs) == 0 {
		return nil
	}
	m := make(map[string]string, len(e.Attrs))
	for _, a := range e.Attrs {
		m[a.Key] = a.Value
	}
	return m
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// WriteFormat dispatches between the journal's export formats:
// "ndjson" and "chrome".
func WriteFormat(w io.Writer, evs []Event, format string) error {
	switch format {
	case "ndjson":
		return WriteNDJSON(w, evs)
	case "chrome":
		return WriteChromeTrace(w, evs)
	default:
		return fmt.Errorf("events: unknown export format %q (want ndjson or chrome)", format)
	}
}
