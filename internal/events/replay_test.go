package events_test

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/faults"
	"repro/internal/platform"
	rt "repro/internal/runtime"
	"repro/internal/workloads"
)

// replaySeed/replayRate pin a fault schedule that exercises retries and
// at least one cluster failover across the run (the schedule is
// deterministic, so the assertions below are stable). The restore site
// is made latency-heavy so spiked attempts blow the retry budget and
// surface as transient errors the cluster fails over; node crashes are
// disabled so the fleet never goes fully down.
const (
	replaySeed        = 7
	replayRate        = 0.05
	replayInvocations = 30
)

// runSeeded drives a seeded faulted workload through the full stack —
// gateway scope, cluster placement, core pipeline — exactly as fwsim
// does, and returns the journal's NDJSON dump plus the cluster and the
// per-request trace ids.
func runSeeded(t *testing.T) ([]byte, *cluster.Cluster, []events.TraceID) {
	t.Helper()
	plane := faults.NewPlane(replaySeed)
	c := cluster.New(3, cluster.RoundRobin, platform.EnvConfig{Faults: plane},
		func(env *platform.Env) platform.Platform {
			return core.New(env, core.Options{Retry: faults.DefaultRetryPolicy()})
		})
	c.SetFailover(cluster.FailoverPolicy{MaxFailovers: 2})
	wl := workloads.NetLatency(rt.LangNode)
	if err := c.Install(wl.Function); err != nil {
		t.Fatal(err)
	}
	plane.ApplyDefaultPlan(replayRate)
	plane.SetProfile(faults.SiteVMMRestore, faults.Profile{ErrorRate: 0.1, LatencyRate: 0.4})
	plane.SetProfile(faults.SiteClusterNode, faults.Profile{})
	params := platform.MustParams(nil)
	traces := make([]events.TraceID, 0, replayInvocations)
	for i := 0; i < replayInvocations; i++ {
		sc := c.Journal().NewScope("gateway", "POST /invoke", 0,
			events.A("function", wl.Name))
		// Cold starts keep every request on the snapshot-restore path,
		// where the seeded schedule injects its spikes.
		inv, _, err := c.Invoke(wl.Name, params,
			platform.InvokeOptions{Mode: platform.ModeCold, Trace: sc})
		var end time.Duration
		if inv != nil {
			end = inv.Clock.Now()
		}
		if err != nil {
			sc.Close(end, events.A("error", err.Error()))
		} else {
			sc.Close(end)
		}
		traces = append(traces, sc.TraceID())
	}
	var buf bytes.Buffer
	if err := events.WriteNDJSON(&buf, c.Journal().Events()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), c, traces
}

// TestReplayDeterminism is the tentpole's acceptance bar: two runs with
// the same seed produce byte-identical NDJSON journal dumps.
func TestReplayDeterminism(t *testing.T) {
	first, _, _ := runSeeded(t)
	second, _, _ := runSeeded(t)
	if !bytes.Equal(first, second) {
		a, b := string(first), string(second)
		max := 400
		if len(a) > max {
			a = a[:max]
		}
		if len(b) > max {
			b = b[:max]
		}
		t.Fatalf("same-seed journal dumps diverge:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}

// TestSingleTraceSpansStack verifies one request's trace reaches every
// layer: the gateway root, cluster placement, the core pipeline, a
// causally linked msgbus produce→consume pair, a vmm start (restore or
// warm resume), and the exec span.
func TestSingleTraceSpansStack(t *testing.T) {
	_, c, traces := runSeeded(t)
	j := c.Journal()

	// Find a successful trace (has an exec span); the faulted schedule
	// leaves most requests healthy.
	var evs []events.Event
	for _, id := range traces {
		te := j.Trace(id)
		for _, e := range te {
			if e.Component == "core" && e.Name == "exec" {
				evs = te
				break
			}
		}
		if evs != nil {
			break
		}
	}
	if evs == nil {
		t.Fatal("no successful trace in the run")
	}

	has := func(component, name string) bool {
		for _, e := range evs {
			if e.Component == component && e.Name == name {
				return true
			}
		}
		return false
	}
	for _, want := range [][2]string{
		{"gateway", "POST /invoke"},
		{"cluster", "request"},
		{"cluster", "place"},
		{"core", "invoke"},
		{"core", "exec"},
		{"msgbus", "produce"},
		{"msgbus", "consume"},
	} {
		if !has(want[0], want[1]) {
			t.Errorf("trace missing %s:%s", want[0], want[1])
		}
	}
	// A vmm start appears as either a snapshot restore or a warm-pool
	// resume, depending on where in the run this request landed.
	if !has("vmm", "restore") && !has("vmm", "warm-resume") {
		t.Error("trace has no vmm restore or warm-resume")
	}

	// The consume is causally linked to the produce that fed it, and
	// the link resolves inside the same trace.
	linked := false
	for _, e := range evs {
		if e.Component == "msgbus" && e.Name == "consume" {
			if e.Link.IsZero() {
				t.Error("consume event has no causal link")
				continue
			}
			for _, p := range j.Trace(e.Link.Trace) {
				if p.Span == e.Link.Span && p.Component == "msgbus" && p.Name == "produce" {
					linked = true
				}
			}
		}
	}
	if !linked {
		t.Error("no consume links back to a produce event")
	}
}

// TestFailoverLinksReplacement verifies that when the seeded schedule
// forces a failover, the failover instant links back to the failed
// placement attempt in the same trace.
func TestFailoverLinksReplacement(t *testing.T) {
	_, c, _ := runSeeded(t)
	if c.Metrics().Counter("failovers_total").Value() == 0 {
		t.Fatalf("seed %d injected no failovers; pick a stormier schedule", replaySeed)
	}
	j := c.Journal()
	found := false
	for _, e := range j.Events() {
		if e.Component != "cluster" || e.Name != "failover" {
			continue
		}
		found = true
		if e.Link.IsZero() {
			t.Fatal("failover event has no causal link")
		}
		resolved := false
		for _, p := range j.Trace(e.Link.Trace) {
			if p.Span == e.Link.Span && p.Component == "cluster" && p.Name == "place" {
				resolved = true
			}
		}
		if !resolved {
			t.Fatal("failover link does not resolve to a placement event")
		}
		if e.Link.Trace != e.Trace {
			t.Fatal("failover links outside its own trace")
		}
	}
	if !found {
		t.Fatal("failovers counted but no failover event recorded")
	}
}
