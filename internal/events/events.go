// Package events is the causal event journal of the simulated stack:
// a concurrency-safe, bounded ring buffer of timestamped events on the
// virtual clock, from which per-request traces, Perfetto-loadable
// Chrome trace files, and virtual-time flame profiles are derived.
//
// Every event carries a TraceID (one end-to-end request), a SpanID, and
// the parent span it nests under; causal links can additionally cross
// traces and components — a msgbus record carries its producer's span
// reference so the consume event links back to the produce, and a
// cluster failover links the re-placement to the failed attempt.
//
// Like the metrics registry and the fault plane, the journal is a pure
// function of the workload and the seed: IDs are allocated in
// operation order and timestamps come from virtual clocks, so a
// sequential run with a fixed seed reproduces the NDJSON dump byte for
// byte. (Concurrent invocations interleave appends in goroutine
// schedule order — the same caveat internal/faults documents.)
//
// The journal is sharded per node: appends hash the event's Node name
// onto independently locked rings, so a fleet of nodes recording into
// one shared journal does not serialize on a single mutex. Sequence
// numbers stay journal-wide (an atomic counter), and Events() merges
// the shards back into sequence order, so exports are byte-identical
// to the flat single-ring layout for the same workload —
// NewJournalShards(capacity, 1) keeps the flat layout available as the
// benchmark baseline. The one observable difference is eviction under
// overflow: a full shard evicts its own oldest event rather than the
// globally oldest (capacity is divided across shards), an approximation
// that only shows once a run overflows the ring. With an eviction
// guard installed (SetEvictionGuard — a tail sampler protecting its
// still-open traces) a full shard skips guarded traces and evicts the
// oldest unguarded event instead.
package events

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// TraceID identifies one end-to-end request; 0 means "no trace"
// (a global event outside any request).
type TraceID uint64

// SpanID identifies one span (or instant) within the journal. IDs are
// unique journal-wide, not per trace.
type SpanID uint64

// Ref names a span in a journal — the currency of causal links. The
// zero Ref links to nothing.
type Ref struct {
	Trace TraceID
	Span  SpanID
}

// IsZero reports whether the ref links to nothing.
func (r Ref) IsZero() bool { return r.Trace == 0 && r.Span == 0 }

// Kind classifies an event.
type Kind string

// Event kinds. Begin/End delimit a span; Instant is a zero-width mark
// (which still gets its own SpanID so later events can link to it).
const (
	KindBegin   Kind = "begin"
	KindEnd     Kind = "end"
	KindInstant Kind = "instant"
)

// Attr is one key=value annotation on an event. Attrs are ordered (a
// slice, not a map) so the journal's exports are byte-stable.
type Attr struct {
	Key   string
	Value string
}

// A builds an Attr; it keeps emission sites compact.
func A(key, value string) Attr { return Attr{Key: key, Value: value} }

// Event is one record in the journal.
type Event struct {
	// Seq is the journal-wide append sequence number (1-based).
	Seq uint64
	// TS is the virtual-clock position of the emitting invocation.
	// Clocks are per-invocation, so TS is monotonic within one trace
	// segment but restarts across requests (and across failover
	// attempts); exporters normalize where their format requires it.
	TS time.Duration
	// Trace/Span/Parent place the event in its request's span tree.
	Trace  TraceID
	Span   SpanID
	Parent SpanID
	Kind   Kind
	// Component names the emitting subsystem (core, cluster, msgbus,
	// vmm, snapshot, faults, retry, gateway).
	Component string
	Name      string
	// Node and VM locate the event in the fleet (Perfetto: one pid per
	// node, one tid per VM; empty = the host / control plane).
	Node string
	VM   string
	// Link is a causal reference to another span (produce→consume,
	// failed attempt→failover re-placement). Zero when unlinked.
	Link  Ref
	Attrs []Attr
}

// DefaultCapacity is the journal's default ring size.
const DefaultCapacity = 1 << 16

// DefaultShards is the per-node stripe count of NewJournal — sized for
// the simulated fleets the cluster experiments run (dozens of nodes).
const DefaultShards = 16

// Observer sees every event as it is appended — the hook a tail
// sampler uses to track trace liveness without polling the rings.
// ObserveEvent runs on the appending goroutine after the shard lock is
// released, so an observer may call back into the journal (DropTrace,
// Trace, …) but must tolerate concurrent appends.
type Observer interface {
	ObserveEvent(e Event)
}

// Journal is the bounded event ring of one simulated deployment (a
// host, or a whole cluster sharing one journal via EnvConfig). When
// full, the oldest events are dropped and counted. A nil *Journal is
// valid and records nothing, so components emit unconditionally.
type Journal struct {
	shards    []journalShard
	mask      uint32
	seq       atomic.Uint64
	nextTrace atomic.Uint64
	nextSpan  atomic.Uint64

	recorded atomic.Pointer[metrics.Counter]
	droppedC atomic.Pointer[metrics.Counter]

	obs   atomic.Pointer[Observer]
	guard atomic.Pointer[func(TraceID) bool]
}

// journalShard is one independently locked event ring; appends hash
// the event's Node name here, so each simulated node contends only
// with itself (and the host events sharing its stripe).
type journalShard struct {
	mu      sync.Mutex
	buf     []Event
	start   int // index of the oldest event
	n       int // events resident
	dropped uint64
	_       [24]byte // keep neighboring shard mutexes off one cache line
}

// NewJournal returns a journal holding at most capacity events
// (DefaultCapacity when <= 0) striped over DefaultShards rings.
func NewJournal(capacity int) *Journal {
	return NewJournalShards(capacity, DefaultShards)
}

// NewJournalShards returns a journal with an explicit stripe count
// (rounded up to a power of two; n <= 1 yields the flat single-ring
// layout the contention benchmarks use as their baseline). The total
// capacity is divided across the stripes.
func NewJournalShards(capacity, n int) *Journal {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if n < 1 {
		n = DefaultShards
	}
	pow := 1
	for pow < n {
		pow <<= 1
	}
	per := (capacity + pow - 1) / pow
	if per < 1 {
		per = 1
	}
	j := &Journal{shards: make([]journalShard, pow), mask: uint32(pow - 1)}
	for i := range j.shards {
		j.shards[i].buf = make([]Event, per)
	}
	return j
}

// Shards reports the journal's stripe count.
func (j *Journal) Shards() int {
	if j == nil {
		return 0
	}
	return len(j.shards)
}

// shard maps a node name onto its stripe (FNV-1a; "" — the host /
// control plane — hashes like any other name).
func (j *Journal) shard(node string) *journalShard {
	var h uint32 = 2166136261
	for i := 0; i < len(node); i++ {
		h ^= uint32(node[i])
		h *= 16777619
	}
	return &j.shards[h&j.mask]
}

// Instrument attaches the journal to a metrics registry:
// events_recorded_total and events_dropped_total.
func (j *Journal) Instrument(reg *metrics.Registry) {
	if j == nil {
		return
	}
	j.recorded.Store(reg.Counter("events_recorded_total"))
	j.droppedC.Store(reg.Counter("events_dropped_total"))
}

// SetObserver installs (or, with nil, removes) the journal's single
// observer. The observer sees every subsequent append.
func (j *Journal) SetObserver(o Observer) {
	if j == nil {
		return
	}
	if o == nil {
		j.obs.Store(nil)
		return
	}
	j.obs.Store(&o)
}

// SetEvictionGuard installs the predicate consulted when a full shard
// must evict: active(trace) == true protects that trace's events, so
// ring pressure falls on completed traces first. A tail sampler
// installs one so spans of still-open traces cannot be lost before
// their keep/drop decision. The guard runs under the shard lock and
// must not call back into the journal. Nil removes the guard,
// restoring plain oldest-first eviction.
func (j *Journal) SetEvictionGuard(active func(TraceID) bool) {
	if j == nil {
		return
	}
	if active == nil {
		j.guard.Store(nil)
		return
	}
	j.guard.Store(&active)
}

// append records an event, assigning its sequence number.
func (j *Journal) append(e Event) {
	if j == nil {
		return
	}
	j.appendTo(j.shard(e.Node), &e)
}

// appendTo is append with the stripe already resolved — scopes cache
// their stripe so steady-state emission skips the node hash. The event
// is passed by pointer purely to avoid copying the ~200-byte struct an
// extra time; appendTo copies it into the ring and retains nothing.
func (j *Journal) appendTo(s *journalShard, e *Event) {
	e.Seq = j.seq.Add(1)
	s.mu.Lock()
	if s.n == len(s.buf) {
		j.evictOne(s)
	}
	s.buf[(s.start+s.n)%len(s.buf)] = *e
	s.n++
	s.mu.Unlock()
	j.recorded.Load().Inc()
	if op := j.obs.Load(); op != nil {
		(*op).ObserveEvent(*e)
	}
}

// evictOne frees one slot in a full shard ring; the caller holds s.mu.
// Without a guard the shard's oldest event goes. With a guard the
// oldest event of an inactive trace goes instead (traceless events
// count as inactive), so a still-open trace keeps its spans; when every
// resident event is protected the shard falls back to plain oldest —
// bounded memory beats perfect retention.
func (j *Journal) evictOne(s *journalShard) {
	victim := 0
	if gp := j.guard.Load(); gp != nil {
		active := *gp
		for k := 0; k < s.n; k++ {
			e := &s.buf[(s.start+k)%len(s.buf)]
			if e.Trace == 0 || !active(e.Trace) {
				victim = k
				break
			}
		}
	}
	// Shift the events older than the victim forward one slot and
	// advance start: survivors keep their relative order.
	for k := victim; k > 0; k-- {
		s.buf[(s.start+k)%len(s.buf)] = s.buf[(s.start+k-1)%len(s.buf)]
	}
	s.start = (s.start + 1) % len(s.buf)
	s.n--
	s.dropped++
	j.droppedC.Load().Inc()
}

// DropTrace removes every resident event of one trace and reports how
// many events (and how many NDJSON-encoded bytes, trailing newlines
// included) were discarded — the accounting a tail sampler charges its
// dropped-bytes counters with. Dropping is physical: Events(), Trace(),
// and every exporter see only survivors, so a sampled journal costs
// O(kept). Sampler drops are deliberate, so they do not count into
// Dropped() or events_dropped_total, which measure ring-overflow loss.
func (j *Journal) DropTrace(id TraceID) (removed int, bytes int64) {
	if j == nil || id == 0 {
		return 0, 0
	}
	for i := range j.shards {
		s := &j.shards[i]
		s.mu.Lock()
		kept := 0
		for k := 0; k < s.n; k++ {
			e := s.buf[(s.start+k)%len(s.buf)]
			if e.Trace == id {
				removed++
				bytes += int64(EncodedSize(e))
				continue
			}
			s.buf[(s.start+kept)%len(s.buf)] = e
			kept++
		}
		s.n = kept
		s.mu.Unlock()
	}
	return removed, bytes
}

// newTraceID allocates a fresh trace ID.
func (j *Journal) newTraceID() TraceID {
	if j == nil {
		return 0
	}
	return TraceID(j.nextTrace.Add(1))
}

// newSpanID allocates a fresh span ID.
func (j *Journal) newSpanID() SpanID {
	if j == nil {
		return 0
	}
	return SpanID(j.nextSpan.Add(1))
}

// Len reports how many events are resident.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	total := 0
	for i := range j.shards {
		s := &j.shards[i]
		s.mu.Lock()
		total += s.n
		s.mu.Unlock()
	}
	return total
}

// Dropped reports how many events the rings have evicted.
func (j *Journal) Dropped() uint64 {
	if j == nil {
		return 0
	}
	var total uint64
	for i := range j.shards {
		s := &j.shards[i]
		s.mu.Lock()
		total += s.dropped
		s.mu.Unlock()
	}
	return total
}

// Events returns a copy of the resident events in append order: the
// shards merge back into one stream ordered by journal-wide sequence
// number, so the result is identical to a flat single-ring journal fed
// the same workload.
func (j *Journal) Events() []Event {
	if j == nil {
		return nil
	}
	var out []Event
	for i := range j.shards {
		s := &j.shards[i]
		s.mu.Lock()
		for k := 0; k < s.n; k++ {
			out = append(out, s.buf[(s.start+k)%len(s.buf)])
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}

// Tail returns a copy of the newest n resident events in append order
// (all of them when n <= 0 or n exceeds the resident count).
func (j *Journal) Tail(n int) []Event {
	evs := j.Events()
	if n > 0 && n < len(evs) {
		evs = evs[len(evs)-n:]
	}
	return evs
}

// Trace returns the resident events of one trace in append order.
func (j *Journal) Trace(id TraceID) []Event {
	if j == nil || id == 0 {
		return nil
	}
	var out []Event
	for _, e := range j.Events() {
		if e.Trace == id {
			out = append(out, e)
		}
	}
	return out
}

// Instant records a global (traceless) event — used by components that
// fire outside any request context. Returns the instant's Ref so later
// events may still link to it.
func (j *Journal) Instant(component, name string, ts time.Duration, attrs ...Attr) Ref {
	return j.InstantLinked(component, name, ts, Ref{}, attrs...)
}

// InstantLinked is the journal-level Instant carrying a causal link to
// another span — how a traceless observer (the SLO watchdog) points its
// alert at the in-trace evidence that triggered it. A zero link
// degrades to a plain instant.
func (j *Journal) InstantLinked(component, name string, ts time.Duration, link Ref, attrs ...Attr) Ref {
	if j == nil {
		return Ref{}
	}
	id := j.newSpanID()
	j.append(Event{
		TS: ts, Span: id, Kind: KindInstant,
		Component: component, Name: name, Link: link, Attrs: attrs,
	})
	return Ref{Span: id}
}

// Scope is one request's handle into the journal: it owns a TraceID
// and a stack of open spans, so emission sites only name what happened
// and the scope supplies trace, parent, node, and VM context. Like
// trace.Breakdown it is owned by a single invocation and is not safe
// for concurrent use. A nil *Scope is valid and records nothing.
type Scope struct {
	j     *Journal
	trace TraceID
	stack []SpanID
	node  string
	vm    string
	// shard is the stripe of the scope's current node, cached so
	// steady-state emission pays the node hash once per SetNode instead
	// of once per event.
	shard *journalShard
	// stackBuf inlines the open-span stack for typical nesting depths,
	// so a scope costs one allocation instead of two.
	stackBuf [4]SpanID
}

// NewScope opens a new trace rooted at a span named name, beginning at
// virtual time ts. A nil journal yields a nil scope (which records
// nothing), so callers never branch.
func (j *Journal) NewScope(component, name string, ts time.Duration, attrs ...Attr) *Scope {
	if j == nil {
		return nil
	}
	s := &Scope{j: j, trace: j.newTraceID(), shard: j.shard("")}
	s.stack = s.stackBuf[:0]
	s.Begin(component, name, ts, attrs...)
	return s
}

// TraceID returns the scope's trace ID (0 for a nil scope).
func (s *Scope) TraceID() TraceID {
	if s == nil {
		return 0
	}
	return s.trace
}

// Current returns a Ref to the innermost open span — what a record
// carries so a later consumer can link back to its producer.
func (s *Scope) Current() Ref {
	if s == nil || len(s.stack) == 0 {
		return Ref{}
	}
	return Ref{Trace: s.trace, Span: s.stack[len(s.stack)-1]}
}

// SetNode attributes subsequent events to a cluster node (Perfetto
// pid). The cluster layer sets it at placement time.
func (s *Scope) SetNode(name string) {
	if s != nil {
		s.node = name
		s.shard = s.j.shard(name)
	}
}

// SetVM attributes subsequent events to a microVM (Perfetto tid).
// Empty means the control plane.
func (s *Scope) SetVM(id string) {
	if s != nil {
		s.vm = id
	}
}

// Begin opens a span nested under the innermost open one.
func (s *Scope) Begin(component, name string, ts time.Duration, attrs ...Attr) {
	if s == nil {
		return
	}
	id := s.j.newSpanID()
	e := Event{
		TS: ts, Trace: s.trace, Span: id, Parent: s.parent(), Kind: KindBegin,
		Component: component, Name: name, Node: s.node, VM: s.vm, Attrs: attrs,
	}
	s.j.appendTo(s.shard, &e)
	s.stack = append(s.stack, id)
}

// End closes the innermost open span. Ending with nothing open is a
// no-op (unlike Breakdown.EndSpan the journal is best-effort: a lost
// event must never take the platform down).
func (s *Scope) End(ts time.Duration, attrs ...Attr) {
	if s == nil || len(s.stack) == 0 {
		return
	}
	id := s.stack[len(s.stack)-1]
	s.stack = s.stack[:len(s.stack)-1]
	// End events do not repeat the Begin's component/name — consumers
	// resolve them by span ID.
	e := Event{
		TS: ts, Trace: s.trace, Span: id, Parent: s.parent(), Kind: KindEnd,
		Node: s.node, VM: s.vm, Attrs: attrs,
	}
	s.j.appendTo(s.shard, &e)
}

// Instant records a zero-width event under the innermost open span and
// returns its Ref for causal linking.
func (s *Scope) Instant(component, name string, ts time.Duration, attrs ...Attr) Ref {
	return s.InstantLinked(component, name, ts, Ref{}, attrs...)
}

// InstantLinked is Instant carrying a causal link to another span
// (a zero link degrades to a plain instant).
func (s *Scope) InstantLinked(component, name string, ts time.Duration, link Ref, attrs ...Attr) Ref {
	if s == nil {
		return Ref{}
	}
	id := s.j.newSpanID()
	e := Event{
		TS: ts, Trace: s.trace, Span: id, Parent: s.parent(), Kind: KindInstant,
		Component: component, Name: name, Node: s.node, VM: s.vm, Link: link, Attrs: attrs,
	}
	s.j.appendTo(s.shard, &e)
	return Ref{Trace: s.trace, Span: id}
}

// Close ends every span still open, innermost first — the root last.
// Callers that own the trace root call it exactly once at the end of
// the request.
func (s *Scope) Close(ts time.Duration, attrs ...Attr) {
	if s == nil {
		return
	}
	for len(s.stack) > 1 {
		s.End(ts)
	}
	s.End(ts, attrs...)
}

// OpenSpans reports how many spans the scope currently has open.
func (s *Scope) OpenSpans() int {
	if s == nil {
		return 0
	}
	return len(s.stack)
}

func (s *Scope) parent() SpanID {
	if len(s.stack) == 0 {
		return 0
	}
	return s.stack[len(s.stack)-1]
}
