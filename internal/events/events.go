// Package events is the causal event journal of the simulated stack:
// a concurrency-safe, bounded ring buffer of timestamped events on the
// virtual clock, from which per-request traces, Perfetto-loadable
// Chrome trace files, and virtual-time flame profiles are derived.
//
// Every event carries a TraceID (one end-to-end request), a SpanID, and
// the parent span it nests under; causal links can additionally cross
// traces and components — a msgbus record carries its producer's span
// reference so the consume event links back to the produce, and a
// cluster failover links the re-placement to the failed attempt.
//
// Like the metrics registry and the fault plane, the journal is a pure
// function of the workload and the seed: IDs are allocated in
// operation order and timestamps come from virtual clocks, so a
// sequential run with a fixed seed reproduces the NDJSON dump byte for
// byte. (Concurrent invocations interleave appends in goroutine
// schedule order — the same caveat internal/faults documents.)
package events

import (
	"sync"
	"time"

	"repro/internal/metrics"
)

// TraceID identifies one end-to-end request; 0 means "no trace"
// (a global event outside any request).
type TraceID uint64

// SpanID identifies one span (or instant) within the journal. IDs are
// unique journal-wide, not per trace.
type SpanID uint64

// Ref names a span in a journal — the currency of causal links. The
// zero Ref links to nothing.
type Ref struct {
	Trace TraceID
	Span  SpanID
}

// IsZero reports whether the ref links to nothing.
func (r Ref) IsZero() bool { return r.Trace == 0 && r.Span == 0 }

// Kind classifies an event.
type Kind string

// Event kinds. Begin/End delimit a span; Instant is a zero-width mark
// (which still gets its own SpanID so later events can link to it).
const (
	KindBegin   Kind = "begin"
	KindEnd     Kind = "end"
	KindInstant Kind = "instant"
)

// Attr is one key=value annotation on an event. Attrs are ordered (a
// slice, not a map) so the journal's exports are byte-stable.
type Attr struct {
	Key   string
	Value string
}

// A builds an Attr; it keeps emission sites compact.
func A(key, value string) Attr { return Attr{Key: key, Value: value} }

// Event is one record in the journal.
type Event struct {
	// Seq is the journal-wide append sequence number (1-based).
	Seq uint64
	// TS is the virtual-clock position of the emitting invocation.
	// Clocks are per-invocation, so TS is monotonic within one trace
	// segment but restarts across requests (and across failover
	// attempts); exporters normalize where their format requires it.
	TS time.Duration
	// Trace/Span/Parent place the event in its request's span tree.
	Trace  TraceID
	Span   SpanID
	Parent SpanID
	Kind   Kind
	// Component names the emitting subsystem (core, cluster, msgbus,
	// vmm, snapshot, faults, retry, gateway).
	Component string
	Name      string
	// Node and VM locate the event in the fleet (Perfetto: one pid per
	// node, one tid per VM; empty = the host / control plane).
	Node string
	VM   string
	// Link is a causal reference to another span (produce→consume,
	// failed attempt→failover re-placement). Zero when unlinked.
	Link  Ref
	Attrs []Attr
}

// DefaultCapacity is the journal's default ring size.
const DefaultCapacity = 1 << 16

// Journal is the bounded event ring of one simulated deployment (a
// host, or a whole cluster sharing one journal via EnvConfig). When
// full, the oldest events are dropped and counted. A nil *Journal is
// valid and records nothing, so components emit unconditionally.
type Journal struct {
	mu        sync.Mutex
	buf       []Event
	start     int // index of the oldest event
	n         int // events resident
	seq       uint64
	nextTrace uint64
	nextSpan  uint64
	dropped   uint64

	recorded *metrics.Counter
	droppedC *metrics.Counter
}

// NewJournal returns a journal holding at most capacity events
// (DefaultCapacity when <= 0).
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Journal{buf: make([]Event, capacity)}
}

// Instrument attaches the journal to a metrics registry:
// events_recorded_total and events_dropped_total.
func (j *Journal) Instrument(reg *metrics.Registry) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.recorded = reg.Counter("events_recorded_total")
	j.droppedC = reg.Counter("events_dropped_total")
}

// append records an event, assigning its sequence number.
func (j *Journal) append(e Event) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.seq++
	e.Seq = j.seq
	if j.n == len(j.buf) {
		// Ring full: overwrite the oldest.
		j.start = (j.start + 1) % len(j.buf)
		j.n--
		j.dropped++
		j.droppedC.Inc()
	}
	j.buf[(j.start+j.n)%len(j.buf)] = e
	j.n++
	j.recorded.Inc()
	j.mu.Unlock()
}

// newTraceID allocates a fresh trace ID.
func (j *Journal) newTraceID() TraceID {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	j.nextTrace++
	id := TraceID(j.nextTrace)
	j.mu.Unlock()
	return id
}

// newSpanID allocates a fresh span ID.
func (j *Journal) newSpanID() SpanID {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	j.nextSpan++
	id := SpanID(j.nextSpan)
	j.mu.Unlock()
	return id
}

// Len reports how many events are resident.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.n
}

// Dropped reports how many events the ring has evicted.
func (j *Journal) Dropped() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dropped
}

// Events returns a copy of the resident events in append order.
func (j *Journal) Events() []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Event, 0, j.n)
	for i := 0; i < j.n; i++ {
		out = append(out, j.buf[(j.start+i)%len(j.buf)])
	}
	return out
}

// Tail returns a copy of the newest n resident events in append order
// (all of them when n <= 0 or n exceeds the resident count).
func (j *Journal) Tail(n int) []Event {
	evs := j.Events()
	if n > 0 && n < len(evs) {
		evs = evs[len(evs)-n:]
	}
	return evs
}

// Trace returns the resident events of one trace in append order.
func (j *Journal) Trace(id TraceID) []Event {
	if j == nil || id == 0 {
		return nil
	}
	var out []Event
	for _, e := range j.Events() {
		if e.Trace == id {
			out = append(out, e)
		}
	}
	return out
}

// Instant records a global (traceless) event — used by components that
// fire outside any request context. Returns the instant's Ref so later
// events may still link to it.
func (j *Journal) Instant(component, name string, ts time.Duration, attrs ...Attr) Ref {
	return j.InstantLinked(component, name, ts, Ref{}, attrs...)
}

// InstantLinked is the journal-level Instant carrying a causal link to
// another span — how a traceless observer (the SLO watchdog) points its
// alert at the in-trace evidence that triggered it. A zero link
// degrades to a plain instant.
func (j *Journal) InstantLinked(component, name string, ts time.Duration, link Ref, attrs ...Attr) Ref {
	if j == nil {
		return Ref{}
	}
	id := j.newSpanID()
	j.append(Event{
		TS: ts, Span: id, Kind: KindInstant,
		Component: component, Name: name, Link: link, Attrs: attrs,
	})
	return Ref{Span: id}
}

// Scope is one request's handle into the journal: it owns a TraceID
// and a stack of open spans, so emission sites only name what happened
// and the scope supplies trace, parent, node, and VM context. Like
// trace.Breakdown it is owned by a single invocation and is not safe
// for concurrent use. A nil *Scope is valid and records nothing.
type Scope struct {
	j     *Journal
	trace TraceID
	stack []SpanID
	node  string
	vm    string
}

// NewScope opens a new trace rooted at a span named name, beginning at
// virtual time ts. A nil journal yields a nil scope (which records
// nothing), so callers never branch.
func (j *Journal) NewScope(component, name string, ts time.Duration, attrs ...Attr) *Scope {
	if j == nil {
		return nil
	}
	s := &Scope{j: j, trace: j.newTraceID()}
	s.Begin(component, name, ts, attrs...)
	return s
}

// TraceID returns the scope's trace ID (0 for a nil scope).
func (s *Scope) TraceID() TraceID {
	if s == nil {
		return 0
	}
	return s.trace
}

// Current returns a Ref to the innermost open span — what a record
// carries so a later consumer can link back to its producer.
func (s *Scope) Current() Ref {
	if s == nil || len(s.stack) == 0 {
		return Ref{}
	}
	return Ref{Trace: s.trace, Span: s.stack[len(s.stack)-1]}
}

// SetNode attributes subsequent events to a cluster node (Perfetto
// pid). The cluster layer sets it at placement time.
func (s *Scope) SetNode(name string) {
	if s != nil {
		s.node = name
	}
}

// SetVM attributes subsequent events to a microVM (Perfetto tid).
// Empty means the control plane.
func (s *Scope) SetVM(id string) {
	if s != nil {
		s.vm = id
	}
}

// Begin opens a span nested under the innermost open one.
func (s *Scope) Begin(component, name string, ts time.Duration, attrs ...Attr) {
	if s == nil {
		return
	}
	id := s.j.newSpanID()
	s.j.append(Event{
		TS: ts, Trace: s.trace, Span: id, Parent: s.parent(), Kind: KindBegin,
		Component: component, Name: name, Node: s.node, VM: s.vm, Attrs: attrs,
	})
	s.stack = append(s.stack, id)
}

// End closes the innermost open span. Ending with nothing open is a
// no-op (unlike Breakdown.EndSpan the journal is best-effort: a lost
// event must never take the platform down).
func (s *Scope) End(ts time.Duration, attrs ...Attr) {
	if s == nil || len(s.stack) == 0 {
		return
	}
	id := s.stack[len(s.stack)-1]
	s.stack = s.stack[:len(s.stack)-1]
	// End events do not repeat the Begin's component/name — consumers
	// resolve them by span ID.
	s.j.append(Event{
		TS: ts, Trace: s.trace, Span: id, Parent: s.parent(), Kind: KindEnd,
		Node: s.node, VM: s.vm, Attrs: attrs,
	})
}

// Instant records a zero-width event under the innermost open span and
// returns its Ref for causal linking.
func (s *Scope) Instant(component, name string, ts time.Duration, attrs ...Attr) Ref {
	return s.InstantLinked(component, name, ts, Ref{}, attrs...)
}

// InstantLinked is Instant carrying a causal link to another span
// (a zero link degrades to a plain instant).
func (s *Scope) InstantLinked(component, name string, ts time.Duration, link Ref, attrs ...Attr) Ref {
	if s == nil {
		return Ref{}
	}
	id := s.j.newSpanID()
	s.j.append(Event{
		TS: ts, Trace: s.trace, Span: id, Parent: s.parent(), Kind: KindInstant,
		Component: component, Name: name, Node: s.node, VM: s.vm, Link: link, Attrs: attrs,
	})
	return Ref{Trace: s.trace, Span: id}
}

// Close ends every span still open, innermost first — the root last.
// Callers that own the trace root call it exactly once at the end of
// the request.
func (s *Scope) Close(ts time.Duration, attrs ...Attr) {
	if s == nil {
		return
	}
	for len(s.stack) > 1 {
		s.End(ts)
	}
	s.End(ts, attrs...)
}

// OpenSpans reports how many spans the scope currently has open.
func (s *Scope) OpenSpans() int {
	if s == nil {
		return 0
	}
	return len(s.stack)
}

func (s *Scope) parent() SpanID {
	if len(s.stack) == 0 {
		return 0
	}
	return s.stack[len(s.stack)-1]
}
