package events

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestShardedConcurrentAppends hammers one journal from many
// node-homed goroutines while readers keep calling Events(), then
// checks nothing was lost: every append is present exactly once and
// sequence numbers are unique. Under -race this pins down the sharded
// append path and the atomic ID allocators.
func TestShardedConcurrentAppends(t *testing.T) {
	// Capacity splits across stripes (1<<18 / 16 = 16384 per stripe);
	// the root Begin of every scope lands on the host ("") stripe
	// before SetNode, so one stripe must absorb all 4000 begins plus
	// any colliding nodes' events without evicting.
	j := NewJournal(1 << 18)
	const (
		goroutines = 8
		perG       = 500
	)

	stop := make(chan struct{})
	var readerDone sync.WaitGroup
	readerDone.Add(1)
	go func() {
		defer readerDone.Done()
		for {
			select {
			case <-stop:
				return
			default:
				evs := j.Events()
				for i := 1; i < len(evs); i++ {
					if evs[i].Seq <= evs[i-1].Seq {
						t.Error("Events() not seq-sorted")
						return
					}
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			node := fmt.Sprintf("node-%02d", g)
			for i := 0; i < perG; i++ {
				sc := j.NewScope("core", "invoke", time.Duration(i))
				sc.SetNode(node)
				sc.Instant("vmm", "restore", time.Duration(i))
				sc.Close(time.Duration(i + 1))
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	readerDone.Wait()

	// Each iteration appends 3 events: begin, instant, end.
	want := goroutines * perG * 3
	evs := j.Events()
	if len(evs) != want {
		t.Fatalf("journal has %d events, want %d", len(evs), want)
	}
	if j.Len() != want {
		t.Errorf("Len() = %d, want %d", j.Len(), want)
	}
	if j.Dropped() != 0 {
		t.Errorf("Dropped() = %d, want 0", j.Dropped())
	}
	seqs := make(map[uint64]bool, len(evs))
	for _, e := range evs {
		if seqs[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seqs[e.Seq] = true
	}
	// Per-goroutine trace IDs must be unique too.
	traces := map[TraceID]int{}
	for _, e := range evs {
		if e.Kind == KindBegin && e.Component == "core" {
			traces[e.Trace]++
		}
	}
	if len(traces) != goroutines*perG {
		t.Errorf("%d distinct traces, want %d", len(traces), goroutines*perG)
	}
}

// seedJournal replays a fixed multi-node workload single-threaded —
// the deterministic-simulation shape whose exports must be
// byte-stable.
func seedJournal(j *Journal) {
	ts := time.Duration(0)
	for i := 0; i < 200; i++ {
		node := fmt.Sprintf("node-%02d", i%5)
		sc := j.NewScope("core", "invoke", ts, A("fn", fmt.Sprintf("f%d", i%3)))
		sc.SetNode(node)
		sc.SetVM(fmt.Sprintf("vm-%d", i%4))
		sc.Begin("vmm", "restore", ts+time.Microsecond)
		sc.Instant("mem", "cow-fault", ts+2*time.Microsecond)
		sc.End(ts + 3*time.Microsecond)
		sc.Close(ts + 5*time.Microsecond)
		ts += 10 * time.Microsecond
	}
	// Host-level (nodeless) instants interleave with node events.
	j.Instant("cluster", "rebalance", ts)
}

// TestGoldenExportShardInvariance pins the tentpole invariant: the
// same single-threaded workload recorded into a single-stripe journal
// and into the default sharded journal must export byte-identical
// NDJSON and Chrome-trace artifacts. The ordered merge by journal-wide
// Seq makes shard count invisible.
func TestGoldenExportShardInvariance(t *testing.T) {
	flat := NewJournalShards(DefaultCapacity, 1)
	sharded := NewJournal(DefaultCapacity)
	if flat.Shards() != 1 || sharded.Shards() != DefaultShards {
		t.Fatalf("shard counts: flat %d, sharded %d", flat.Shards(), sharded.Shards())
	}
	seedJournal(flat)
	seedJournal(sharded)

	for _, format := range []string{"ndjson", "chrome"} {
		var fb, sb bytes.Buffer
		if err := WriteFormat(&fb, flat.Events(), format); err != nil {
			t.Fatal(err)
		}
		if err := WriteFormat(&sb, sharded.Events(), format); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(fb.Bytes(), sb.Bytes()) {
			t.Errorf("%s export differs between 1 and %d shards (flat %d bytes, sharded %d bytes)",
				format, DefaultShards, fb.Len(), sb.Len())
		}
	}
}

// TestShardedRingDropsPerStripe documents the sharded journal's
// eviction approximation: capacity splits across stripes and each
// stripe evicts its own oldest, so total retention stays bounded by
// the requested capacity while per-node recency is preserved.
func TestShardedRingDropsPerStripe(t *testing.T) {
	const perShard = 4
	j := NewJournalShards(perShard*4, 4)
	// Overfill one node's stripe; other nodes' events must survive.
	busy := j.shard("busy-node")
	quietName := ""
	for i := 0; i < 32; i++ {
		name := fmt.Sprintf("quiet-%02d", i)
		if j.shard(name) != busy {
			quietName = name
			break
		}
	}
	if quietName == "" {
		t.Fatal("could not find a node name on another stripe")
	}
	j.append(Event{Node: quietName, Component: "t", Name: "keep", TS: 0})
	for i := 0; i < perShard*3; i++ {
		j.append(Event{Node: "busy-node", Component: "t", Name: "flood", TS: time.Duration(i)})
	}
	if j.Dropped() == 0 {
		t.Error("flooded stripe did not drop")
	}
	found := false
	for _, e := range j.Events() {
		if e.Node == quietName {
			found = true
		}
	}
	if !found {
		t.Error("quiet node's event was evicted by another stripe's flood")
	}
	if got := j.Len(); got > perShard*4 {
		t.Errorf("Len() = %d exceeds total capacity %d", got, perShard*4)
	}
}
