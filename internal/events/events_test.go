package events

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
)

func TestScopeNestingAndParents(t *testing.T) {
	j := NewJournal(0)
	sc := j.NewScope("gateway", "POST /invoke", 0, A("function", "f"))
	sc.Begin("core", "invoke", 10)
	sc.Instant("msgbus", "produce", 20, A("topic", "t"))
	sc.End(30)
	sc.Close(40)

	evs := j.Events()
	if len(evs) != 5 {
		t.Fatalf("want 5 events, got %d", len(evs))
	}
	root, inner, inst, endInner, endRoot := evs[0], evs[1], evs[2], evs[3], evs[4]
	if root.Kind != KindBegin || root.Parent != 0 || root.Component != "gateway" {
		t.Fatalf("bad root: %+v", root)
	}
	if inner.Parent != root.Span {
		t.Fatalf("inner parent = %d, want %d", inner.Parent, root.Span)
	}
	if inst.Kind != KindInstant || inst.Parent != inner.Span {
		t.Fatalf("instant parent = %d, want %d", inst.Parent, inner.Span)
	}
	if endInner.Kind != KindEnd || endInner.Span != inner.Span {
		t.Fatalf("bad inner end: %+v", endInner)
	}
	if endRoot.Span != root.Span {
		t.Fatalf("bad root end: %+v", endRoot)
	}
	for i, e := range evs {
		if e.Trace != root.Trace {
			t.Fatalf("event %d trace %d != %d", i, e.Trace, root.Trace)
		}
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d seq %d", i, e.Seq)
		}
	}
}

func TestScopeCloseEndsAllOpenSpans(t *testing.T) {
	j := NewJournal(0)
	sc := j.NewScope("c", "root", 0)
	sc.Begin("c", "a", 1)
	sc.Begin("c", "b", 2)
	sc.Close(3, A("error", "boom"))
	if sc.OpenSpans() != 0 {
		t.Fatalf("open spans = %d after Close", sc.OpenSpans())
	}
	ends := 0
	for _, e := range j.Events() {
		if e.Kind == KindEnd {
			ends++
		}
	}
	if ends != 3 {
		t.Fatalf("want 3 end events, got %d", ends)
	}
	last := j.Events()[len(j.Events())-1]
	if len(last.Attrs) != 1 || last.Attrs[0].Key != "error" {
		t.Fatalf("Close attrs went to %+v", last)
	}
}

func TestEndWithNothingOpenIsNoop(t *testing.T) {
	j := NewJournal(0)
	sc := j.NewScope("c", "root", 0)
	sc.Close(1)
	before := j.Len()
	sc.End(2) // nothing open — must not panic or record
	if j.Len() != before {
		t.Fatalf("End on empty stack recorded an event")
	}
}

func TestCausalLink(t *testing.T) {
	j := NewJournal(0)
	prod := j.NewScope("core", "invoke", 0)
	ref := prod.Instant("msgbus", "produce", 5)
	cons := j.NewScope("core", "invoke", 0)
	cons.InstantLinked("msgbus", "consume", 7, ref)

	var linkEv *Event
	for i := range j.Events() {
		e := j.Events()[i]
		if e.Name == "consume" {
			linkEv = &e
		}
	}
	if linkEv == nil {
		t.Fatal("no consume event")
	}
	if linkEv.Link != ref {
		t.Fatalf("link = %+v, want %+v", linkEv.Link, ref)
	}
	if linkEv.Trace == ref.Trace {
		t.Fatal("test should cross traces")
	}
}

func TestRingDropsOldest(t *testing.T) {
	// A single flat ring pins the exact global-FIFO drop semantics;
	// per-node shards approximate it per stripe (see shard_test.go).
	j := NewJournalShards(4, 1)
	reg := metrics.NewRegistry()
	j.Instrument(reg)
	for i := 0; i < 7; i++ {
		j.Instant("c", "e", time.Duration(i))
	}
	if j.Len() != 4 {
		t.Fatalf("len = %d, want 4", j.Len())
	}
	if j.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", j.Dropped())
	}
	evs := j.Events()
	if evs[0].Seq != 4 || evs[3].Seq != 7 {
		t.Fatalf("ring kept seqs %d..%d, want 4..7", evs[0].Seq, evs[3].Seq)
	}
	snap := reg.Snapshot()
	found := map[string]int64{}
	for _, c := range snap.Counters {
		found[c.Name] = c.Value
	}
	if found["events_recorded_total"] != 7 || found["events_dropped_total"] != 3 {
		t.Fatalf("counters = %v", found)
	}
}

func TestNilJournalAndScopeAreSafe(t *testing.T) {
	var j *Journal
	if j.NewScope("c", "n", 0) != nil {
		t.Fatal("nil journal must yield nil scope")
	}
	j.Instant("c", "n", 0)
	j.Instrument(nil)
	if j.Len() != 0 || j.Events() != nil || j.Trace(1) != nil {
		t.Fatal("nil journal must be empty")
	}
	var s *Scope
	s.Begin("c", "n", 0)
	s.End(0)
	s.Instant("c", "n", 0)
	s.InstantLinked("c", "n", 0, Ref{})
	s.Close(0)
	s.SetNode("n")
	s.SetVM("v")
	if s.TraceID() != 0 || !s.Current().IsZero() || s.OpenSpans() != 0 {
		t.Fatal("nil scope must be inert")
	}
}

func TestTraceFilter(t *testing.T) {
	j := NewJournal(0)
	a := j.NewScope("c", "a", 0)
	b := j.NewScope("c", "b", 0)
	a.Close(1)
	b.Close(2)
	ta := j.Trace(a.TraceID())
	if len(ta) != 2 {
		t.Fatalf("trace a has %d events, want 2", len(ta))
	}
	for _, e := range ta {
		if e.Trace != a.TraceID() {
			t.Fatalf("foreign event in trace: %+v", e)
		}
	}
}

func TestJournalConcurrentAppend(t *testing.T) {
	j := NewJournal(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := j.NewScope("c", "root", 0)
			for i := 0; i < 100; i++ {
				sc.Instant("c", "tick", time.Duration(i))
			}
			sc.Close(100)
		}()
	}
	wg.Wait()
	if j.Len() != 8*102 {
		t.Fatalf("len = %d, want %d", j.Len(), 8*102)
	}
	seen := map[uint64]bool{}
	for _, e := range j.Events() {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
}

func TestNDJSONDeterministicAndParseable(t *testing.T) {
	build := func() []Event {
		j := NewJournal(0)
		sc := j.NewScope("gateway", "req", 0, A("function", "f"), A("mode", "warm"))
		sc.SetNode("node-00")
		sc.Begin("core", "invoke", 10)
		ref := sc.Instant("msgbus", "produce", 12)
		sc.InstantLinked("msgbus", "consume", 20, ref)
		sc.Close(30)
		return j.Events()
	}
	var a, b bytes.Buffer
	if err := WriteNDJSON(&a, build()); err != nil {
		t.Fatal(err)
	}
	if err := WriteNDJSON(&b, build()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("NDJSON dumps differ across identical builds")
	}
	lines := strings.Split(strings.TrimSpace(a.String()), "\n")
	if len(lines) != 6 {
		t.Fatalf("want 6 lines, got %d", len(lines))
	}
	for _, l := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(l), &m); err != nil {
			t.Fatalf("line %q: %v", l, err)
		}
	}
	if !strings.Contains(a.String(), `"link_span"`) {
		t.Fatal("consume line lost its causal link")
	}
	if !strings.Contains(a.String(), `"node":"node-00"`) {
		t.Fatal("node attribution lost")
	}
}

func TestWriteFormatUnknown(t *testing.T) {
	if err := WriteFormat(&bytes.Buffer{}, nil, "yaml"); err == nil {
		t.Fatal("want error for unknown format")
	}
}
