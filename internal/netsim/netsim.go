// Package netsim simulates the network plumbing Fireworks needs to run
// many microVMs restored from the *same* snapshot (§3.5 of the paper):
// every clone wakes up with identical guest IP and MAC addresses, so each
// clone is placed in its own network namespace with a tap device and an
// iptables-style NAT rule translating a unique external IP to the cloned
// guest IP.
//
// The package detects the exact failure the design prevents: attaching
// two devices with the same address to one namespace is an address
// conflict error.
package netsim

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/faults"
)

// Errors returned by the network simulator.
var (
	ErrAddrConflict = errors.New("netsim: address conflict in namespace")
	ErrNoRoute      = errors.New("netsim: no route to host")
	ErrExhausted    = errors.New("netsim: external IP pool exhausted")
)

// Addr is an IPv4 address in dotted-quad form. Using a string keeps the
// simulation honest about identity without re-implementing net.IP.
type Addr string

// Packet is the unit of simulated traffic.
type Packet struct {
	Src     Addr
	Dst     Addr
	Payload []byte
}

// Tap is a tap device inside a namespace, attached to one guest address.
type Tap struct {
	Name  string
	Guest Addr
	MAC   string
	// Deliver receives packets routed to the guest address. Nil taps
	// drop traffic (guest not listening).
	Deliver func(Packet)
}

// NATRule maps an external (host-visible) address to an internal guest
// address, modeling a DNAT entry in the namespace's iptables.
type NATRule struct {
	External Addr
	Internal Addr
}

// Namespace is one network namespace holding taps and NAT rules.
type Namespace struct {
	name  string
	taps  map[string]*Tap // by device name
	byIP  map[Addr]*Tap
	rules []NATRule
}

// Name returns the namespace name.
func (ns *Namespace) Name() string { return ns.name }

// Router owns all namespaces and the external IP pool of one host.
type Router struct {
	mu         sync.Mutex
	namespaces map[string]*Namespace
	external   map[Addr]*Namespace // external IP -> owning namespace
	nextIP     int
	poolSize   int

	// faults, when attached, injects failures at the netsim.transfer
	// site on every Send (nil-safe).
	faults *faults.Plane
}

// AttachFaults arms the router's fault-injection site.
func (r *Router) AttachFaults(p *faults.Plane) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.faults = p
}

// NewRouter creates a router with an external IP pool of poolSize
// addresses (10.200.x.y).
func NewRouter(poolSize int) *Router {
	return &Router{
		namespaces: make(map[string]*Namespace),
		external:   make(map[Addr]*Namespace),
		poolSize:   poolSize,
	}
}

// CreateNamespace makes a new, empty network namespace.
func (r *Router) CreateNamespace(name string) (*Namespace, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.namespaces[name]; ok {
		return nil, fmt.Errorf("netsim: namespace %q already exists", name)
	}
	ns := &Namespace{
		name: name,
		taps: make(map[string]*Tap),
		byIP: make(map[Addr]*Tap),
	}
	r.namespaces[name] = ns
	return ns, nil
}

// DeleteNamespace removes a namespace and releases its external IPs.
func (r *Router) DeleteNamespace(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	ns, ok := r.namespaces[name]
	if !ok {
		return fmt.Errorf("netsim: namespace %q not found", name)
	}
	for ip, owner := range r.external {
		if owner == ns {
			delete(r.external, ip)
		}
	}
	delete(r.namespaces, name)
	return nil
}

// AttachTap attaches a tap device to the namespace. Two taps with the
// same guest address in one namespace is the clone conflict §3.5 exists
// to avoid, and returns ErrAddrConflict. The same device *name* (tap0) in
// different namespaces is explicitly fine.
func (r *Router) AttachTap(ns *Namespace, tap *Tap) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := ns.taps[tap.Name]; ok {
		return fmt.Errorf("netsim: device %s already exists in namespace %s: %w", tap.Name, ns.name, ErrAddrConflict)
	}
	if _, ok := ns.byIP[tap.Guest]; ok {
		return fmt.Errorf("netsim: guest IP %s already bound in namespace %s: %w", tap.Guest, ns.name, ErrAddrConflict)
	}
	ns.taps[tap.Name] = tap
	ns.byIP[tap.Guest] = tap
	return nil
}

// AllocExternal allocates a unique external IP for the namespace and
// installs a NAT rule external -> guest.
func (r *Router) AllocExternal(ns *Namespace, guest Addr) (Addr, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.external) >= r.poolSize {
		return "", ErrExhausted
	}
	r.nextIP++
	ip := Addr(fmt.Sprintf("10.200.%d.%d", r.nextIP/250, r.nextIP%250+1))
	r.external[ip] = ns
	ns.rules = append(ns.rules, NATRule{External: ip, Internal: guest})
	return ip, nil
}

// Send routes a packet addressed to an external IP: the owning
// namespace's NAT translates the destination to the guest IP and the
// matching tap delivers it. This is the host→guest path of Figure 5.
func (r *Router) Send(pkt Packet) error {
	if err := r.faults.Inject(faults.SiteNetTransfer, nil); err != nil {
		return fmt.Errorf("netsim: send to %s: %w", pkt.Dst, err)
	}
	r.mu.Lock()
	ns, ok := r.external[pkt.Dst]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("netsim: %s: %w", pkt.Dst, ErrNoRoute)
	}
	var internal Addr
	found := false
	for _, rule := range ns.rules {
		if rule.External == pkt.Dst {
			internal = rule.Internal
			found = true
			break
		}
	}
	if !found {
		r.mu.Unlock()
		return fmt.Errorf("netsim: no NAT rule for %s in %s: %w", pkt.Dst, ns.name, ErrNoRoute)
	}
	tap, ok := ns.byIP[internal]
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("netsim: no tap for %s in %s: %w", internal, ns.name, ErrNoRoute)
	}
	translated := pkt
	translated.Dst = internal
	if tap.Deliver != nil {
		tap.Deliver(translated)
	}
	return nil
}

// Reply translates a guest-originated packet's source address back to
// the namespace's external IP (SNAT), the guest→host path of Figure 5.
func (r *Router) Reply(ns *Namespace, pkt Packet) (Packet, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, rule := range ns.rules {
		if rule.Internal == pkt.Src {
			out := pkt
			out.Src = rule.External
			return out, nil
		}
	}
	return Packet{}, fmt.Errorf("netsim: no SNAT rule for %s in %s: %w", pkt.Src, ns.name, ErrNoRoute)
}

// NamespaceCount returns the number of live namespaces.
func (r *Router) NamespaceCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.namespaces)
}
