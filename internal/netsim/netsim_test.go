package netsim

import (
	"errors"
	"fmt"
	"testing"
)

func TestCloneIsolationViaNamespaces(t *testing.T) {
	// The §3.5 scenario: two microVMs restored from the same snapshot
	// have identical guest IPs and tap names; separate namespaces make
	// that legal, and NAT routes distinct external IPs to each.
	r := NewRouter(16)
	const guestIP = Addr("192.168.0.2")

	var got1, got2 []Packet
	ns1, err := r.CreateNamespace("vm1")
	if err != nil {
		t.Fatal(err)
	}
	ns2, err := r.CreateNamespace("vm2")
	if err != nil {
		t.Fatal(err)
	}
	tap1 := &Tap{Name: "tap0", Guest: guestIP, Deliver: func(p Packet) { got1 = append(got1, p) }}
	tap2 := &Tap{Name: "tap0", Guest: guestIP, Deliver: func(p Packet) { got2 = append(got2, p) }}
	if err := r.AttachTap(ns1, tap1); err != nil {
		t.Fatal(err)
	}
	if err := r.AttachTap(ns2, tap2); err != nil {
		t.Fatalf("same tap name + guest IP in a different namespace must be fine: %v", err)
	}
	ext1, err := r.AllocExternal(ns1, guestIP)
	if err != nil {
		t.Fatal(err)
	}
	ext2, err := r.AllocExternal(ns2, guestIP)
	if err != nil {
		t.Fatal(err)
	}
	if ext1 == ext2 {
		t.Fatal("external IPs collide")
	}

	if err := r.Send(Packet{Src: "10.0.0.1", Dst: ext1, Payload: []byte("one")}); err != nil {
		t.Fatal(err)
	}
	if err := r.Send(Packet{Src: "10.0.0.1", Dst: ext2, Payload: []byte("two")}); err != nil {
		t.Fatal(err)
	}
	if len(got1) != 1 || len(got2) != 1 {
		t.Fatalf("delivery counts: %d, %d", len(got1), len(got2))
	}
	// DNAT translated the destination to the (identical) guest IP.
	if got1[0].Dst != guestIP || got2[0].Dst != guestIP {
		t.Fatalf("DNAT results: %v, %v", got1[0].Dst, got2[0].Dst)
	}
	if string(got1[0].Payload) != "one" || string(got2[0].Payload) != "two" {
		t.Fatal("payloads crossed namespaces")
	}
}

func TestAddrConflictInOneNamespace(t *testing.T) {
	r := NewRouter(4)
	ns, _ := r.CreateNamespace("vm1")
	if err := r.AttachTap(ns, &Tap{Name: "tap0", Guest: "192.168.0.2"}); err != nil {
		t.Fatal(err)
	}
	err := r.AttachTap(ns, &Tap{Name: "tap1", Guest: "192.168.0.2"})
	if !errors.Is(err, ErrAddrConflict) {
		t.Fatalf("duplicate guest IP: err = %v", err)
	}
	err = r.AttachTap(ns, &Tap{Name: "tap0", Guest: "192.168.0.9"})
	if !errors.Is(err, ErrAddrConflict) {
		t.Fatalf("duplicate device name: err = %v", err)
	}
}

func TestSNATReply(t *testing.T) {
	r := NewRouter(4)
	ns, _ := r.CreateNamespace("vm1")
	guest := Addr("192.168.0.2")
	if err := r.AttachTap(ns, &Tap{Name: "tap0", Guest: guest}); err != nil {
		t.Fatal(err)
	}
	ext, _ := r.AllocExternal(ns, guest)
	out, err := r.Reply(ns, Packet{Src: guest, Dst: "10.0.0.1", Payload: []byte("pong")})
	if err != nil {
		t.Fatal(err)
	}
	if out.Src != ext {
		t.Fatalf("SNAT src = %v, want %v", out.Src, ext)
	}
	if _, err := r.Reply(ns, Packet{Src: "1.2.3.4"}); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("reply without rule: %v", err)
	}
}

func TestNoRoute(t *testing.T) {
	r := NewRouter(4)
	err := r.Send(Packet{Dst: "10.200.0.1"})
	if !errors.Is(err, ErrNoRoute) {
		t.Fatalf("err = %v", err)
	}
}

func TestPoolExhaustion(t *testing.T) {
	r := NewRouter(2)
	for i := 0; i < 2; i++ {
		ns, _ := r.CreateNamespace(fmt.Sprintf("vm%d", i))
		if _, err := r.AllocExternal(ns, "192.168.0.2"); err != nil {
			t.Fatal(err)
		}
	}
	ns, _ := r.CreateNamespace("vm-extra")
	if _, err := r.AllocExternal(ns, "192.168.0.2"); !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v", err)
	}
}

func TestDeleteNamespaceReleasesIPs(t *testing.T) {
	r := NewRouter(1)
	ns, _ := r.CreateNamespace("vm1")
	if _, err := r.AllocExternal(ns, "192.168.0.2"); err != nil {
		t.Fatal(err)
	}
	if err := r.DeleteNamespace("vm1"); err != nil {
		t.Fatal(err)
	}
	if r.NamespaceCount() != 0 {
		t.Fatal("namespace still counted")
	}
	ns2, _ := r.CreateNamespace("vm2")
	if _, err := r.AllocExternal(ns2, "192.168.0.2"); err != nil {
		t.Fatalf("pool not released: %v", err)
	}
	if err := r.DeleteNamespace("vm-missing"); err == nil {
		t.Fatal("deleting unknown namespace succeeded")
	}
}

func TestDuplicateNamespace(t *testing.T) {
	r := NewRouter(4)
	if _, err := r.CreateNamespace("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.CreateNamespace("x"); err == nil {
		t.Fatal("duplicate namespace created")
	}
}

func TestManyNamespacesUniqueExternals(t *testing.T) {
	r := NewRouter(600)
	seen := make(map[Addr]bool)
	for i := 0; i < 600; i++ {
		ns, err := r.CreateNamespace(fmt.Sprintf("vm%d", i))
		if err != nil {
			t.Fatal(err)
		}
		ext, err := r.AllocExternal(ns, "192.168.0.2")
		if err != nil {
			t.Fatal(err)
		}
		if seen[ext] {
			t.Fatalf("duplicate external IP %v at vm %d", ext, i)
		}
		seen[ext] = true
	}
}
