package trace

import (
	"strings"
	"testing"
	"time"
)

func TestSpanNesting(t *testing.T) {
	var b Breakdown
	root := b.BeginSpan("invoke", PhaseOthers, 0)
	restore := b.BeginSpan("restore", PhaseStartup, 1*time.Millisecond)
	netns := b.BeginSpan("netns", PhaseStartup, 2*time.Millisecond)
	b.EndSpan(3 * time.Millisecond) // netns
	b.EndSpan(12 * time.Millisecond)
	exec := b.BeginSpan("exec", PhaseExec, 12*time.Millisecond)
	b.EndSpan(20 * time.Millisecond)
	b.EndSpan(21 * time.Millisecond)

	roots := b.Spans()
	if len(roots) != 1 || roots[0] != root {
		t.Fatalf("roots = %v", roots)
	}
	if got := root.Children(); len(got) != 2 || got[0] != restore || got[1] != exec {
		t.Fatalf("root children = %v", got)
	}
	if got := restore.Children(); len(got) != 1 || got[0] != netns {
		t.Fatalf("restore children = %v", got)
	}
	if restore.Duration() != 11*time.Millisecond {
		t.Fatalf("restore duration = %v", restore.Duration())
	}
	if root.Duration() != 21*time.Millisecond {
		t.Fatalf("root duration = %v", root.Duration())
	}
}

func TestSpansDoNotChargePhases(t *testing.T) {
	var b Breakdown
	b.BeginSpan("restore", PhaseStartup, 0)
	b.EndSpan(10 * time.Millisecond)
	if b.Total() != 0 || b.Startup() != 0 {
		t.Fatalf("spans charged time: total=%v", b.Total())
	}
	b.Add(PhaseStartup, "restore", 10*time.Millisecond)
	if b.Startup() != 10*time.Millisecond {
		t.Fatalf("startup = %v", b.Startup())
	}
}

func TestOpenSpanDurationAndRender(t *testing.T) {
	var b Breakdown
	s := b.BeginSpan("open", PhaseExec, 5*time.Millisecond)
	if s.Duration() != 0 {
		t.Fatalf("open span duration = %v", s.Duration())
	}
	out := b.RenderSpans()
	if !strings.Contains(out, "open [exec] 5ms..?") {
		t.Fatalf("render = %q", out)
	}
}

func TestRenderSpansIndentation(t *testing.T) {
	var b Breakdown
	b.BeginSpan("outer", PhaseStartup, 0)
	b.BeginSpan("inner", PhaseStartup, time.Millisecond)
	b.EndSpan(2 * time.Millisecond)
	b.EndSpan(4 * time.Millisecond)
	want := "outer [start-up] 0s..4ms (4ms)\n  inner [start-up] 1ms..2ms (1ms)\n"
	if got := b.RenderSpans(); got != want {
		t.Fatalf("render = %q, want %q", got, want)
	}
}

func TestEndSpanPanics(t *testing.T) {
	t.Run("no-open", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		var b Breakdown
		b.EndSpan(0)
	})
	t.Run("ends-before-start", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		var b Breakdown
		b.BeginSpan("s", PhaseExec, 10*time.Millisecond)
		b.EndSpan(5 * time.Millisecond)
	})
}

func TestCloneAndMergeCopySpans(t *testing.T) {
	var b Breakdown
	b.BeginSpan("a", PhaseExec, 0)
	b.EndSpan(time.Millisecond)

	c := b.Clone()
	if len(c.Spans()) != 1 || c.Spans()[0] == b.Spans()[0] {
		t.Fatal("clone did not deep-copy spans")
	}
	if c.Spans()[0].Name != "a" || c.Spans()[0].Duration() != time.Millisecond {
		t.Fatalf("cloned span = %+v", c.Spans()[0])
	}

	var m Breakdown
	m.Merge(&b)
	if len(m.Spans()) != 1 || m.Spans()[0] == b.Spans()[0] {
		t.Fatal("merge did not deep-copy spans")
	}
}
