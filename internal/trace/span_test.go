package trace

import (
	"strings"
	"testing"
	"time"
)

func TestSpanNesting(t *testing.T) {
	var b Breakdown
	root := b.BeginSpan("invoke", PhaseOthers, 0)
	restore := b.BeginSpan("restore", PhaseStartup, 1*time.Millisecond)
	netns := b.BeginSpan("netns", PhaseStartup, 2*time.Millisecond)
	b.EndSpan(3 * time.Millisecond) // netns
	b.EndSpan(12 * time.Millisecond)
	exec := b.BeginSpan("exec", PhaseExec, 12*time.Millisecond)
	b.EndSpan(20 * time.Millisecond)
	b.EndSpan(21 * time.Millisecond)

	roots := b.Spans()
	if len(roots) != 1 || roots[0] != root {
		t.Fatalf("roots = %v", roots)
	}
	if got := root.Children(); len(got) != 2 || got[0] != restore || got[1] != exec {
		t.Fatalf("root children = %v", got)
	}
	if got := restore.Children(); len(got) != 1 || got[0] != netns {
		t.Fatalf("restore children = %v", got)
	}
	if restore.Duration() != 11*time.Millisecond {
		t.Fatalf("restore duration = %v", restore.Duration())
	}
	if root.Duration() != 21*time.Millisecond {
		t.Fatalf("root duration = %v", root.Duration())
	}
}

func TestSpansDoNotChargePhases(t *testing.T) {
	var b Breakdown
	b.BeginSpan("restore", PhaseStartup, 0)
	b.EndSpan(10 * time.Millisecond)
	if b.Total() != 0 || b.Startup() != 0 {
		t.Fatalf("spans charged time: total=%v", b.Total())
	}
	b.Add(PhaseStartup, "restore", 10*time.Millisecond)
	if b.Startup() != 10*time.Millisecond {
		t.Fatalf("startup = %v", b.Startup())
	}
}

func TestOpenSpanDurationAndRender(t *testing.T) {
	var b Breakdown
	s := b.BeginSpan("open", PhaseExec, 5*time.Millisecond)
	if s.Duration() != 0 {
		t.Fatalf("open span duration = %v", s.Duration())
	}
	out := b.RenderSpans()
	if !strings.Contains(out, "open [exec] 5ms..?") {
		t.Fatalf("render = %q", out)
	}
}

func TestRenderSpansIndentation(t *testing.T) {
	var b Breakdown
	b.BeginSpan("outer", PhaseStartup, 0)
	b.BeginSpan("inner", PhaseStartup, time.Millisecond)
	b.EndSpan(2 * time.Millisecond)
	b.EndSpan(4 * time.Millisecond)
	want := "outer [start-up] 0s..4ms (4ms)\n  inner [start-up] 1ms..2ms (1ms)\n"
	if got := b.RenderSpans(); got != want {
		t.Fatalf("render = %q, want %q", got, want)
	}
}

func TestEndSpanPanics(t *testing.T) {
	t.Run("no-open", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		var b Breakdown
		b.EndSpan(0)
	})
	t.Run("ends-before-start", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		var b Breakdown
		b.BeginSpan("s", PhaseExec, 10*time.Millisecond)
		b.EndSpan(5 * time.Millisecond)
	})
}

func TestCloneAndMergeCopySpans(t *testing.T) {
	var b Breakdown
	b.BeginSpan("a", PhaseExec, 0)
	b.EndSpan(time.Millisecond)

	c := b.Clone()
	if len(c.Spans()) != 1 || c.Spans()[0] == b.Spans()[0] {
		t.Fatal("clone did not deep-copy spans")
	}
	if c.Spans()[0].Name != "a" || c.Spans()[0].Duration() != time.Millisecond {
		t.Fatalf("cloned span = %+v", c.Spans()[0])
	}

	var m Breakdown
	m.Merge(&b)
	if len(m.Spans()) != 1 || m.Spans()[0] == b.Spans()[0] {
		t.Fatal("merge did not deep-copy spans")
	}
}

func TestCloneWithOpenSpans(t *testing.T) {
	var b Breakdown
	b.BeginSpan("outer", PhaseStartup, 0)
	b.BeginSpan("inner", PhaseStartup, time.Millisecond)

	c := b.Clone()
	// The clone holds a deep copy of the open tree; the spans stay open
	// in the copy.
	if len(c.Spans()) != 1 || c.Spans()[0].End != -1 {
		t.Fatalf("cloned root = %+v", c.Spans()[0])
	}
	inner := c.Spans()[0].Children()
	if len(inner) != 1 || inner[0].End != -1 {
		t.Fatalf("cloned children = %v", inner)
	}

	// Ending the originals must not close the clone's copies — and the
	// clone has no open-span stack, so EndSpan on it panics rather than
	// silently closing a span it never began.
	b.EndSpan(2 * time.Millisecond)
	b.EndSpan(3 * time.Millisecond)
	if c.Spans()[0].End != -1 || inner[0].End != -1 {
		t.Fatal("ending original spans closed the clone's copies")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("EndSpan on a clone with no open stack did not panic")
		}
	}()
	c.EndSpan(4 * time.Millisecond)
}

func TestMergeWithOpenSpans(t *testing.T) {
	var donor Breakdown
	donor.BeginSpan("still-open", PhaseExec, time.Millisecond)

	var b Breakdown
	b.BeginSpan("mine", PhaseStartup, 0)
	b.Merge(&donor)

	// The merged root arrives open, appended after b's own roots, and
	// stays independent of the donor.
	roots := b.Spans()
	if len(roots) != 2 || roots[1].Name != "still-open" || roots[1].End != -1 {
		t.Fatalf("merged roots = %v", roots)
	}
	if roots[1] == donor.Spans()[0] {
		t.Fatal("merge aliased the donor's open span")
	}
	donor.EndSpan(5 * time.Millisecond)
	if roots[1].End != -1 {
		t.Fatal("closing the donor span closed the merged copy")
	}
	// b's own open stack is untouched by the merge: the next EndSpan
	// closes "mine", not the merged root.
	if closed := b.EndSpan(7 * time.Millisecond); closed.Name != "mine" {
		t.Fatalf("EndSpan closed %q, want mine", closed.Name)
	}
}

func TestSpanIDSurvivesCloneAndMerge(t *testing.T) {
	var b Breakdown
	s := b.BeginSpan("exec", PhaseExec, 0)
	s.ID = 42
	b.EndSpan(time.Millisecond)

	if got := b.Clone().Spans()[0].ID; got != 42 {
		t.Fatalf("cloned span ID = %d", got)
	}
	var m Breakdown
	m.Merge(&b)
	if got := m.Spans()[0].ID; got != 42 {
		t.Fatalf("merged span ID = %d", got)
	}
}

func TestRenderSpansGolden(t *testing.T) {
	var b Breakdown
	b.BeginSpan("startup", PhaseStartup, 0)
	b.BeginSpan("vm-restore", PhaseStartup, time.Millisecond)
	b.EndSpan(12 * time.Millisecond)
	b.BeginSpan("netns-setup", PhaseStartup, 12*time.Millisecond)
	b.EndSpan(13 * time.Millisecond)
	b.EndSpan(14 * time.Millisecond)
	b.BeginSpan("exec", PhaseExec, 14*time.Millisecond)
	// exec left open: renders with end "?" and no duration.

	want := "startup [start-up] 0s..14ms (14ms)\n" +
		"  vm-restore [start-up] 1ms..12ms (11ms)\n" +
		"  netns-setup [start-up] 12ms..13ms (1ms)\n" +
		"exec [exec] 14ms..?\n"
	if got := b.RenderSpans(); got != want {
		t.Fatalf("render = %q, want %q", got, want)
	}
}
