package trace

import (
	"fmt"
	"strings"
	"time"
)

// Span is one nested, labeled interval of an invocation on its virtual
// clock. Spans extend the flat phase accounting of Breakdown with
// structure: a restore span can contain the network-namespace and
// guest-revive spans it is made of, exactly the way the paper's
// Figure 6 decomposes start-up.
//
// Spans are observational only: beginning or ending a span never
// charges time to a phase (that stays the job of Add), so a breakdown
// with spans reports the same totals as one without.
type Span struct {
	Name  string
	Phase Phase
	// Start and End are virtual-clock offsets. End is -1 while the
	// span is open.
	Start time.Duration
	End   time.Duration
	// ID, when non-zero, is the journal SpanID of the matching
	// internal/events span, keeping the per-invocation breakdown view
	// and the fleet-wide journal view joinable.
	ID uint64

	children []*Span
}

// Duration returns the span's length, or the zero duration while it is
// still open.
func (s *Span) Duration() time.Duration {
	if s.End < 0 {
		return 0
	}
	return s.End - s.Start
}

// Children returns the nested spans in creation order. The returned
// slice is owned by the span and must not be modified.
func (s *Span) Children() []*Span { return s.children }

// spanArenaChunk sizes the breakdown's span arena: one allocation
// covers a typical invocation's full span tree (7 pipeline stages plus
// nested startup spans).
const spanArenaChunk = 16

// newSpan carves a span out of the breakdown's arena, allocating a
// fresh chunk when the current one is exhausted. Handed-out pointers
// stay valid because the chunk's backing array is never moved — the
// arena slice only advances through it.
func (b *Breakdown) newSpan() *Span {
	if len(b.arena) == 0 {
		b.arena = make([]Span, spanArenaChunk)
	}
	s := &b.arena[0]
	b.arena = b.arena[1:]
	return s
}

// BeginSpan opens a span at virtual time `at`, nested under the
// innermost open span (or at the root when none is open). Like the
// rest of Breakdown it is not safe for concurrent use.
func (b *Breakdown) BeginSpan(name string, p Phase, at time.Duration) *Span {
	s := b.newSpan()
	*s = Span{Name: name, Phase: p, Start: at, End: -1}
	if n := len(b.open); n > 0 {
		parent := b.open[n-1]
		parent.children = append(parent.children, s)
	} else {
		b.spans = append(b.spans, s)
	}
	b.open = append(b.open, s)
	return s
}

// EndSpan closes the innermost open span at virtual time `at` and
// returns it. Ending with no open span, or ending before the span
// started, panics: both indicate a broken instrumentation site.
func (b *Breakdown) EndSpan(at time.Duration) *Span {
	n := len(b.open)
	if n == 0 {
		panic("trace: EndSpan with no open span")
	}
	s := b.open[n-1]
	if at < s.Start {
		panic(fmt.Sprintf("trace: span %q ends at %v before start %v", s.Name, at, s.Start))
	}
	s.End = at
	b.open = b.open[:n-1]
	return s
}

// Spans returns the root spans in creation order. The returned slice
// is owned by the Breakdown and must not be modified.
func (b *Breakdown) Spans() []*Span { return b.spans }

// RenderSpans renders the span tree with two-space indentation, one
// span per line:
//
//	restore [start-up] 0s..12ms (12ms)
//	  netns [start-up] 1ms..2ms (1ms)
//
// Open spans render with end "?".
func (b *Breakdown) RenderSpans() string {
	var sb strings.Builder
	for _, s := range b.spans {
		renderSpan(&sb, s, 0)
	}
	return sb.String()
}

func renderSpan(sb *strings.Builder, s *Span, depth int) {
	sb.WriteString(strings.Repeat("  ", depth))
	end := "?"
	dur := ""
	if s.End >= 0 {
		end = s.End.String()
		dur = fmt.Sprintf(" (%v)", s.Duration())
	}
	fmt.Fprintf(sb, "%s [%s] %v..%s%s\n", s.Name, s.Phase, s.Start, end, dur)
	for _, c := range s.children {
		renderSpan(sb, c, depth+1)
	}
}

// cloneSpan deep-copies a span tree.
func cloneSpan(s *Span) *Span {
	c := &Span{Name: s.Name, Phase: s.Phase, Start: s.Start, End: s.End, ID: s.ID}
	for _, child := range s.children {
		c.children = append(c.children, cloneSpan(child))
	}
	return c
}
