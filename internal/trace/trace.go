// Package trace records the latency breakdown of a simulated serverless
// invocation. The paper's figures decompose end-to-end latency into three
// phases — start-up, function execution, and everything else (network,
// disk, queueing) — and this package is the common currency that every
// platform implementation uses to report those phases.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Phase identifies one component of an invocation's end-to-end latency.
type Phase string

// The three phases reported by Figures 6, 7, and 9 in the paper.
const (
	PhaseStartup Phase = "start-up" // sandbox/VM/runtime initialization, snapshot load
	PhaseExec    Phase = "exec"     // user function execution (incl. in-run JIT)
	PhaseOthers  Phase = "others"   // network, disk I/O, queueing, parameter fetch
)

// Breakdown accumulates virtual time per phase for one invocation.
// The zero value is ready to use. Breakdown is not safe for concurrent
// use; each invocation owns its own.
//
// The three standard phases live in fixed slots (no per-invocation
// map allocation on the hot path); phases outside the standard three
// fall back to a lazily allocated map.
type Breakdown struct {
	durs    [3]time.Duration // PhaseStartup, PhaseExec, PhaseOthers
	present [3]bool          // whether the slot was ever charged (even 0)
	extra   map[Phase]time.Duration
	events  []Event
	// spans are the root spans of the invocation's span tree; open is
	// the stack of spans begun but not yet ended (see span.go).
	spans []*Span
	open  []*Span
	// arena allocates spans in chunks so an invocation's ~dozen spans
	// cost one allocation instead of one each (see span.go).
	arena []Span
}

// slot maps a standard phase to its fixed index, or -1.
func slot(p Phase) int {
	switch p {
	case PhaseStartup:
		return 0
	case PhaseExec:
		return 1
	case PhaseOthers:
		return 2
	}
	return -1
}

// forEachPhase visits every charged phase in sorted-name order:
// exec, others, start-up slot among any extra phases.
func (b *Breakdown) forEachPhase(fn func(p Phase, d time.Duration)) {
	phases := make([]Phase, 0, 3+len(b.extra))
	for i, p := range [3]Phase{PhaseStartup, PhaseExec, PhaseOthers} {
		if b.present[i] {
			phases = append(phases, p)
		}
	}
	for p := range b.extra {
		phases = append(phases, p)
	}
	sort.Slice(phases, func(i, j int) bool { return phases[i] < phases[j] })
	for _, p := range phases {
		fn(p, b.Get(p))
	}
}

// Event is a single timestamped accounting entry, useful for debugging a
// simulated invocation ("what exactly did the cold start pay for?").
type Event struct {
	Phase Phase
	Label string
	Cost  time.Duration
}

// Add charges cost to the given phase with a human-readable label.
func (b *Breakdown) Add(p Phase, label string, cost time.Duration) {
	if cost < 0 {
		panic(fmt.Sprintf("trace: negative cost %v for %s/%s", cost, p, label))
	}
	if i := slot(p); i >= 0 {
		b.durs[i] += cost
		b.present[i] = true
	} else {
		if b.extra == nil {
			b.extra = make(map[Phase]time.Duration)
		}
		b.extra[p] += cost
	}
	b.events = append(b.events, Event{Phase: p, Label: label, Cost: cost})
}

// Get returns the accumulated time for one phase.
func (b *Breakdown) Get(p Phase) time.Duration {
	if i := slot(p); i >= 0 {
		return b.durs[i]
	}
	return b.extra[p]
}

// Startup, Exec, and Others are convenience accessors for the three
// standard phases.
func (b *Breakdown) Startup() time.Duration { return b.Get(PhaseStartup) }
func (b *Breakdown) Exec() time.Duration    { return b.Get(PhaseExec) }
func (b *Breakdown) Others() time.Duration  { return b.Get(PhaseOthers) }

// Total returns the end-to-end latency: the sum over all phases.
func (b *Breakdown) Total() time.Duration {
	t := b.durs[0] + b.durs[1] + b.durs[2]
	for _, d := range b.extra {
		t += d
	}
	return t
}

// Events returns the accounting log in insertion order. The returned
// slice is owned by the Breakdown and must not be modified.
func (b *Breakdown) Events() []Event { return b.events }

// Merge adds every phase of other into b. It is used when an invocation
// spans a chain of functions and the chain reports one combined breakdown.
// The other breakdown's root spans are appended to b's span tree.
func (b *Breakdown) Merge(other *Breakdown) {
	if other == nil {
		return
	}
	other.forEachPhase(func(p Phase, d time.Duration) {
		b.Add(p, "merged", d)
	})
	for _, s := range other.spans {
		b.spans = append(b.spans, cloneSpan(s))
	}
}

// Clone returns an independent copy of the breakdown. Spans still open
// at clone time remain open only in the original; the clone holds an
// independent deep copy of the span tree.
func (b *Breakdown) Clone() *Breakdown {
	c := &Breakdown{durs: b.durs, present: b.present}
	if len(b.extra) > 0 {
		c.extra = make(map[Phase]time.Duration, len(b.extra))
		for p, d := range b.extra {
			c.extra[p] = d
		}
	}
	c.events = append(c.events, b.events...)
	for _, s := range b.spans {
		c.spans = append(c.spans, cloneSpan(s))
	}
	return c
}

// String renders the breakdown compactly, phases sorted by name, e.g.
// "exec=1.2ms others=300µs start-up=12ms total=13.5ms".
func (b *Breakdown) String() string {
	var sb strings.Builder
	b.forEachPhase(func(p Phase, d time.Duration) {
		fmt.Fprintf(&sb, "%s=%v ", p, d)
	})
	fmt.Fprintf(&sb, "total=%v", b.Total())
	return sb.String()
}
