package trace

import (
	"strings"
	"testing"
	"time"
)

func TestZeroValueUsable(t *testing.T) {
	var b Breakdown
	if b.Total() != 0 || b.Startup() != 0 {
		t.Fatal("zero breakdown not empty")
	}
	b.Add(PhaseExec, "run", time.Millisecond)
	if b.Exec() != time.Millisecond {
		t.Fatalf("Exec = %v", b.Exec())
	}
}

func TestAccumulation(t *testing.T) {
	var b Breakdown
	b.Add(PhaseStartup, "boot", 10*time.Millisecond)
	b.Add(PhaseStartup, "load", 5*time.Millisecond)
	b.Add(PhaseOthers, "net", 2*time.Millisecond)
	if b.Startup() != 15*time.Millisecond {
		t.Fatalf("Startup = %v", b.Startup())
	}
	if b.Total() != 17*time.Millisecond {
		t.Fatalf("Total = %v", b.Total())
	}
	if len(b.Events()) != 3 {
		t.Fatalf("events = %d", len(b.Events()))
	}
}

func TestNegativeCostPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for negative cost")
		}
	}()
	var b Breakdown
	b.Add(PhaseExec, "bad", -time.Millisecond)
}

func TestMerge(t *testing.T) {
	var a, b Breakdown
	a.Add(PhaseExec, "x", time.Millisecond)
	b.Add(PhaseExec, "y", 2*time.Millisecond)
	b.Add(PhaseOthers, "z", time.Millisecond)
	a.Merge(&b)
	if a.Exec() != 3*time.Millisecond || a.Others() != time.Millisecond {
		t.Fatalf("merged: %s", a.String())
	}
	a.Merge(nil) // must not panic
}

func TestClone(t *testing.T) {
	var a Breakdown
	a.Add(PhaseExec, "x", time.Millisecond)
	c := a.Clone()
	c.Add(PhaseExec, "more", time.Millisecond)
	if a.Exec() != time.Millisecond {
		t.Fatal("clone mutation leaked to original")
	}
	if c.Exec() != 2*time.Millisecond {
		t.Fatal("clone did not accumulate")
	}
}

func TestString(t *testing.T) {
	var b Breakdown
	b.Add(PhaseStartup, "boot", 12*time.Millisecond)
	b.Add(PhaseExec, "run", 3*time.Millisecond)
	s := b.String()
	for _, want := range []string{"start-up=12ms", "exec=3ms", "total=15ms"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
