package annotate

import (
	"strings"
	"testing"

	"repro/internal/lang"
)

const userSrc = `
// A simple serverless function.
func helper(x) {
  return x * 2;
}

func main(params) {
  return helper(params.n);
}
`

func TestAnnotateAddsJITAndDrivers(t *testing.T) {
	res, err := Annotate(userSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AnnotatedFuncs) != 2 {
		t.Fatalf("annotated %v", res.AnnotatedFuncs)
	}
	prog, err := lang.Parse(res.Source)
	if err != nil {
		t.Fatalf("annotated source does not parse: %v", err)
	}
	for _, name := range []string{"helper", "main"} {
		fd := prog.Function(name)
		if fd == nil || !fd.HasAnnotation("jit") {
			t.Errorf("%s missing @jit", name)
		}
	}
	for _, name := range []string{"__fireworks_jit", "__fireworks_snapshot", "__fireworks_continue", "__fireworks_main"} {
		if prog.Function(name) == nil {
			t.Errorf("driver %s missing", name)
		}
	}
	// The generated drivers themselves must not be @jit-annotated.
	if prog.Function("__fireworks_main").HasAnnotation("jit") {
		t.Error("driver annotated")
	}
}

func TestAnnotatePreservesUserLines(t *testing.T) {
	res, err := Annotate(userSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{"// A simple serverless function.", "return x * 2;"} {
		if !strings.Contains(res.Source, line) {
			t.Errorf("user line %q lost", line)
		}
	}
}

func TestAnnotateRespectsExistingAnnotation(t *testing.T) {
	src := "@jit(cache=true)\nfunc main(params) { return 1; }"
	res, err := Annotate(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AnnotatedFuncs) != 0 {
		t.Fatalf("re-annotated: %v", res.AnnotatedFuncs)
	}
	if strings.Count(res.Source, "@jit") != 1 {
		t.Fatalf("duplicate @jit:\n%s", res.Source)
	}
}

func TestAnnotateCustomEntry(t *testing.T) {
	src := `func handler(req) { return req; }`
	res, err := Annotate(src, Options{Entry: "handler"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Source, "handler(__fireworks_default_params())") {
		t.Fatal("driver does not call custom entry")
	}
}

func TestAnnotateErrors(t *testing.T) {
	cases := []struct {
		name, src, entry, sub string
	}{
		{"syntax", "func main(", "", "user source"},
		{"noEntry", "func other(p) { return p; }", "", `entry function "main" not found`},
		{"badArity", "func main(a, b) { return a; }", "", "exactly one params argument"},
		{"reserved", "func __fireworks_jit() {} func main(p) { return p; }", "", "reserved function"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Annotate(tc.src, Options{Entry: tc.entry})
			if err == nil || !strings.Contains(err.Error(), tc.sub) {
				t.Fatalf("err = %v, want %q", err, tc.sub)
			}
		})
	}
}

func TestAnnotateIndentedFunctions(t *testing.T) {
	// A decorator inserted before an indented declaration keeps the
	// indentation so column-sensitive readers stay happy.
	src := "func main(params) {\n  func nested(x) { return x; }\n  return nested(params);\n}"
	res, err := Annotate(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Only the top-level main is annotated (nested decls are not
	// module functions).
	if len(res.AnnotatedFuncs) != 1 || res.AnnotatedFuncs[0] != "main" {
		t.Fatalf("annotated %v", res.AnnotatedFuncs)
	}
}
