// Package annotate implements Fireworks' automatic source code
// annotator (§3.2 of the paper). Given a user-provided serverless
// function, it produces the instrumented source the platform actually
// installs:
//
//  1. every top-level function gains a @jit(cache=true) decorator, so
//     the runtime's JIT (Numba for Python; V8's equivalent hooks for
//     Node.js) is allowed to compile it;
//  2. a __fireworks_jit() driver is appended that calls the entry point
//     with default parameters, forcing JIT compilation of the whole
//     call graph during the install phase;
//  3. a __fireworks_snapshot() helper is appended that asks the host
//     (over the hypervisor API bridge) to take the VM snapshot;
//  4. a __fireworks_main() program entry is appended that runs the two
//     steps above and then — this is the line execution resumes at
//     after every snapshot restore — fetches the real invocation
//     parameters from the per-instance message queue and calls the
//     original entry point.
//
// The host-bridge functions (__fireworks_default_params,
// __fireworks_snapshot_request, __fireworks_fetch_params) are natives
// installed into the guest runtime by the Fireworks framework.
package annotate

import (
	"fmt"
	"strings"

	"repro/internal/lang"
)

// Options configures the annotator.
type Options struct {
	// Entry is the serverless function's entry point; "main" if empty.
	Entry string
}

// Result is the annotated source plus what the annotator did.
type Result struct {
	Source         string
	Entry          string
	AnnotatedFuncs []string // functions that received a @jit decorator
}

// Annotate transforms user source per the Fireworks install procedure.
// It fails if the source does not parse or lacks the entry function.
func Annotate(src string, opts Options) (*Result, error) {
	entry := opts.Entry
	if entry == "" {
		entry = "main"
	}
	prog, err := lang.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("annotate: user source: %w", err)
	}
	entryFn := prog.Function(entry)
	if entryFn == nil {
		return nil, fmt.Errorf("annotate: entry function %q not found", entry)
	}
	if len(entryFn.Params) != 1 {
		return nil, fmt.Errorf("annotate: entry %q must take exactly one params argument, has %d",
			entry, len(entryFn.Params))
	}
	for _, fn := range prog.Functions() {
		if strings.HasPrefix(fn.Name, "__fireworks_") {
			return nil, fmt.Errorf("annotate: user source defines reserved function %q", fn.Name)
		}
	}

	// Insert @jit(cache=true) before every un-annotated top-level
	// function declaration, line-based so the user's source text is
	// otherwise preserved byte for byte.
	needJit := make(map[int]bool) // line number of the `func` keyword
	var annotated []string
	for _, fn := range prog.Functions() {
		if fn.HasAnnotation("jit") {
			continue
		}
		var line int
		fmt.Sscanf(fn.Pos(), "%d", &line)
		needJit[line] = true
		annotated = append(annotated, fn.Name)
	}
	lines := strings.Split(src, "\n")
	var out strings.Builder
	for i, text := range lines {
		if needJit[i+1] {
			indent := text[:len(text)-len(strings.TrimLeft(text, " \t"))]
			out.WriteString(indent)
			out.WriteString("@jit(cache=true)\n")
		}
		out.WriteString(text)
		out.WriteByte('\n')
	}

	out.WriteString(driverSource(entry))
	annotatedSrc := out.String()

	// The annotated source must still parse and must now expose the
	// Fireworks entry points.
	check, err := lang.Parse(annotatedSrc)
	if err != nil {
		return nil, fmt.Errorf("annotate: generated source does not parse: %w", err)
	}
	for _, required := range []string{"__fireworks_jit", "__fireworks_snapshot", "__fireworks_continue", "__fireworks_main", entry} {
		if check.Function(required) == nil {
			return nil, fmt.Errorf("annotate: generated source lacks %q", required)
		}
	}
	for _, fn := range check.Functions() {
		if !strings.HasPrefix(fn.Name, "__fireworks_") && !fn.HasAnnotation("jit") {
			return nil, fmt.Errorf("annotate: function %q missed its @jit annotation", fn.Name)
		}
	}
	return &Result{Source: annotatedSrc, Entry: entry, AnnotatedFuncs: annotated}, nil
}

// driverSource generates the appended Fireworks driver, a FaaSLang
// rendition of Figure 3 in the paper.
func driverSource(entry string) string {
	return fmt.Sprintf(`
// ---- added by the Fireworks code annotator ----

// Trigger JIT compilation of all user functions by running the entry
// point once with default parameters.
func __fireworks_jit() {
  %[1]s(__fireworks_default_params());
}

// Ask the host to create a VM snapshot via the hypervisor API.
func __fireworks_snapshot() {
  __fireworks_snapshot_request();
}

// The post-snapshot continuation: a restored VM resumes here. It first
// reads its parameters from the per-instance queue (identified via
// MMDS), then runs the original entry point.
func __fireworks_continue() {
  let __fw_params = __fireworks_fetch_params();
  return %[1]s(__fw_params);
}

// This is where program execution starts the first time. Execution of
// every restored snapshot resumes right after __fireworks_snapshot()
// returns, i.e. inside __fireworks_continue().
func __fireworks_main() {
  __fireworks_jit();
  __fireworks_snapshot();
  return __fireworks_continue();
}
`, entry)
}
