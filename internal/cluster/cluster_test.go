package cluster

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/runtime"
	"repro/internal/workloads"
)

func fireworksCluster(t *testing.T, n int, policy Policy, cfg platform.EnvConfig) *Cluster {
	t.Helper()
	c := New(n, policy, cfg, func(env *platform.Env) platform.Platform {
		return core.New(env, core.Options{})
	})
	w := workloads.NetLatency(runtime.LangNode)
	if err := c.Install(w.Function); err != nil {
		t.Fatal(err)
	}
	return c
}

func invokeName() string { return workloads.NetLatency(runtime.LangNode).Name }

func TestInstallEverywhere(t *testing.T) {
	c := fireworksCluster(t, 3, RoundRobin, platform.EnvConfig{})
	for _, n := range c.Nodes() {
		if !n.Env.Snaps.Has(invokeName()) {
			t.Errorf("%s missing snapshot", n.Name)
		}
	}
}

func TestRoundRobinBalances(t *testing.T) {
	c := fireworksCluster(t, 4, RoundRobin, platform.EnvConfig{})
	params := platform.MustParams(nil)
	for i := 0; i < 40; i++ {
		if _, _, err := c.Invoke(invokeName(), params, platform.InvokeOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range c.Stats() {
		if s.Invocations != 10 {
			t.Errorf("%s served %d, want 10", s.Name, s.Invocations)
		}
	}
	if c.TotalInvocations() != 40 {
		t.Fatalf("total = %d", c.TotalInvocations())
	}
}

func TestLeastMemoryAvoidsLoadedNode(t *testing.T) {
	c := fireworksCluster(t, 3, LeastMemory, platform.EnvConfig{})
	// Preload node 0 with a big private allocation.
	heavy := c.Nodes()[0]
	heavy.Env.Mem.NewSpace("ballast").AllocPrivate("anon", 1<<20) // 4 GiB in pages
	params := platform.MustParams(nil)
	for i := 0; i < 12; i++ {
		_, node, err := c.Invoke(invokeName(), params, platform.InvokeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if node == heavy {
			t.Fatalf("invocation %d placed on the loaded node", i)
		}
	}
}

func TestSwappingNodesAreSkipped(t *testing.T) {
	// Tiny hosts: a single ballast allocation pushes a node past its
	// swap threshold.
	cfg := platform.EnvConfig{MemBytes: 8 << 30, Swappiness: 0.6}
	c := fireworksCluster(t, 2, RoundRobin, cfg)
	drowned := c.Nodes()[1]
	drowned.Env.Mem.NewSpace("ballast").AllocPrivate("anon", (6<<30)/4096)
	if !drowned.Env.Mem.Swapping() {
		t.Fatal("ballast did not push node into swapping")
	}
	params := platform.MustParams(nil)
	for i := 0; i < 6; i++ {
		_, node, err := c.Invoke(invokeName(), params, platform.InvokeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if node == drowned {
			t.Fatal("placed work on a swapping node")
		}
	}
	// Drown the other node too: the cluster reports itself full.
	c.Nodes()[0].Env.Mem.NewSpace("ballast").AllocPrivate("anon", (6<<30)/4096)
	_, _, err := c.Invoke(invokeName(), params, platform.InvokeOptions{})
	if !errors.Is(err, ErrClusterFull) {
		t.Fatalf("err = %v, want ErrClusterFull", err)
	}
}

func TestLeastInflightUnderConcurrency(t *testing.T) {
	c := fireworksCluster(t, 3, LeastInflight, platform.EnvConfig{})
	params := platform.MustParams(nil)
	var wg sync.WaitGroup
	errs := make(chan error, 60)
	for i := 0; i < 60; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := c.Invoke(invokeName(), params, platform.InvokeOptions{}); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if c.TotalInvocations() != 60 {
		t.Fatalf("total = %d", c.TotalInvocations())
	}
	// No node should have been starved completely.
	for _, s := range c.Stats() {
		if s.Invocations == 0 {
			t.Errorf("%s served nothing", s.Name)
		}
	}
}

func TestRemoveEverywhere(t *testing.T) {
	c := fireworksCluster(t, 2, RoundRobin, platform.EnvConfig{})
	if err := c.Remove(invokeName()); err != nil {
		t.Fatal(err)
	}
	for _, n := range c.Nodes() {
		if n.Env.Snaps.Has(invokeName()) {
			t.Errorf("%s still has the snapshot", n.Name)
		}
	}
	if _, _, err := c.Invoke(invokeName(), platform.MustParams(nil), platform.InvokeOptions{}); err == nil {
		t.Fatal("invoke after remove succeeded")
	}
}

func TestPolicyNames(t *testing.T) {
	if RoundRobin.String() != "round-robin" || LeastMemory.String() != "least-memory" ||
		LeastInflight.String() != "least-inflight" {
		t.Fatal("policy names")
	}
}
