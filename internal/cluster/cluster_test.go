package cluster

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/runtime"
	"repro/internal/workloads"
)

func fireworksCluster(t *testing.T, n int, policy Policy, cfg platform.EnvConfig) *Cluster {
	t.Helper()
	c := New(n, policy, cfg, func(env *platform.Env) platform.Platform {
		return core.New(env, core.Options{})
	})
	w := workloads.NetLatency(runtime.LangNode)
	if err := c.Install(w.Function); err != nil {
		t.Fatal(err)
	}
	return c
}

func invokeName() string { return workloads.NetLatency(runtime.LangNode).Name }

func TestInstallEverywhere(t *testing.T) {
	c := fireworksCluster(t, 3, RoundRobin, platform.EnvConfig{})
	for _, n := range c.Nodes() {
		if !n.Env.Snaps.Has(invokeName()) {
			t.Errorf("%s missing snapshot", n.Name)
		}
	}
}

func TestRoundRobinBalances(t *testing.T) {
	c := fireworksCluster(t, 4, RoundRobin, platform.EnvConfig{})
	params := platform.MustParams(nil)
	for i := 0; i < 40; i++ {
		if _, _, err := c.Invoke(invokeName(), params, platform.InvokeOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range c.Stats() {
		if s.Invocations != 10 {
			t.Errorf("%s served %d, want 10", s.Name, s.Invocations)
		}
	}
	if c.TotalInvocations() != 40 {
		t.Fatalf("total = %d", c.TotalInvocations())
	}
}

func TestLeastMemoryAvoidsLoadedNode(t *testing.T) {
	c := fireworksCluster(t, 3, LeastMemory, platform.EnvConfig{})
	// Preload node 0 with a big private allocation.
	heavy := c.Nodes()[0]
	heavy.Env.Mem.NewSpace("ballast").AllocPrivate("anon", 1<<20) // 4 GiB in pages
	params := platform.MustParams(nil)
	for i := 0; i < 12; i++ {
		_, node, err := c.Invoke(invokeName(), params, platform.InvokeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if node == heavy {
			t.Fatalf("invocation %d placed on the loaded node", i)
		}
	}
}

func TestSwappingNodesAreSkipped(t *testing.T) {
	// Tiny hosts: a single ballast allocation pushes a node past its
	// swap threshold.
	cfg := platform.EnvConfig{MemBytes: 8 << 30, Swappiness: 0.6}
	c := fireworksCluster(t, 2, RoundRobin, cfg)
	drowned := c.Nodes()[1]
	drowned.Env.Mem.NewSpace("ballast").AllocPrivate("anon", (6<<30)/4096)
	if !drowned.Env.Mem.Swapping() {
		t.Fatal("ballast did not push node into swapping")
	}
	params := platform.MustParams(nil)
	for i := 0; i < 6; i++ {
		_, node, err := c.Invoke(invokeName(), params, platform.InvokeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if node == drowned {
			t.Fatal("placed work on a swapping node")
		}
	}
	// Drown the other node too: the cluster reports itself full.
	c.Nodes()[0].Env.Mem.NewSpace("ballast").AllocPrivate("anon", (6<<30)/4096)
	_, _, err := c.Invoke(invokeName(), params, platform.InvokeOptions{})
	if !errors.Is(err, ErrClusterFull) {
		t.Fatalf("err = %v, want ErrClusterFull", err)
	}
}

func TestLeastInflightUnderConcurrency(t *testing.T) {
	c := fireworksCluster(t, 3, LeastInflight, platform.EnvConfig{})
	params := platform.MustParams(nil)
	var wg sync.WaitGroup
	errs := make(chan error, 60)
	for i := 0; i < 60; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := c.Invoke(invokeName(), params, platform.InvokeOptions{}); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if c.TotalInvocations() != 60 {
		t.Fatalf("total = %d", c.TotalInvocations())
	}
	// No node should have been starved completely.
	for _, s := range c.Stats() {
		if s.Invocations == 0 {
			t.Errorf("%s served nothing", s.Name)
		}
	}
}

// invokeConcurrently fires 60 parallel invocations and requires every
// one to succeed, the exact total to be counted, and no node to have
// been starved — the regression surface for the placement race where
// every racing pick read the same stale counts.
func invokeConcurrently(t *testing.T, c *Cluster) {
	t.Helper()
	params := platform.MustParams(nil)
	var wg sync.WaitGroup
	errs := make(chan error, 60)
	for i := 0; i < 60; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := c.Invoke(invokeName(), params, platform.InvokeOptions{}); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if c.TotalInvocations() != 60 {
		t.Fatalf("total = %d, want 60", c.TotalInvocations())
	}
	for _, s := range c.Stats() {
		if s.Invocations == 0 {
			t.Errorf("%s served nothing", s.Name)
		}
	}
}

func TestRoundRobinUnderConcurrency(t *testing.T) {
	c := fireworksCluster(t, 3, RoundRobin, platform.EnvConfig{})
	invokeConcurrently(t, c)
}

func TestLeastMemoryUnderConcurrency(t *testing.T) {
	c := fireworksCluster(t, 3, LeastMemory, platform.EnvConfig{})
	invokeConcurrently(t, c)
}

func TestClusterSharedMetrics(t *testing.T) {
	c := fireworksCluster(t, 2, RoundRobin, platform.EnvConfig{})
	params := platform.MustParams(nil)
	for i := 0; i < 4; i++ {
		if _, _, err := c.Invoke(invokeName(), params, platform.InvokeOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	snap := c.Metrics().Snapshot()
	counters := make(map[string]int64)
	for _, cs := range snap.Counters {
		counters[cs.Name] = cs.Value
	}
	// Placements and per-node invocations come from the cluster layer.
	if got := counters[`cluster_placements_total{policy="round-robin"}`]; got != 4 {
		t.Errorf("placements = %d, want 4", got)
	}
	for _, node := range []string{"node-00", "node-01"} {
		if got := counters[`cluster_node_invocations_total{node="`+node+`"}`]; got != 2 {
			t.Errorf("%s invocations = %d, want 2", node, got)
		}
	}
	// Host-level metrics aggregate fleet-wide through the shared
	// registry: both nodes' installs and restores land in one place.
	if got := counters[`vmm_snapshot_restores_total`]; got != 4 {
		t.Errorf("restores = %d, want 4", got)
	}
	if counters[`fireworks_install_total`] != 2 {
		t.Errorf("installs = %d, want 2", counters[`fireworks_install_total`])
	}
	found := false
	for _, h := range snap.Histograms {
		if h.Name == "vmm_snapshot_restore_duration" && h.Count == 4 {
			found = true
		}
	}
	if !found {
		t.Error("missing fleet-wide restore latency histogram with 4 samples")
	}
}

func TestRejectionCounted(t *testing.T) {
	cfg := platform.EnvConfig{MemBytes: 8 << 30, Swappiness: 0.6}
	c := fireworksCluster(t, 1, RoundRobin, cfg)
	c.Nodes()[0].Env.Mem.NewSpace("ballast").AllocPrivate("anon", (6<<30)/4096)
	_, _, err := c.Invoke(invokeName(), platform.MustParams(nil), platform.InvokeOptions{})
	if !errors.Is(err, ErrClusterFull) {
		t.Fatalf("err = %v, want ErrClusterFull", err)
	}
	for _, cs := range c.Metrics().Snapshot().Counters {
		if cs.Name == "cluster_rejections_total" {
			if cs.Value != 1 {
				t.Fatalf("rejections = %d, want 1", cs.Value)
			}
			return
		}
	}
	t.Fatal("cluster_rejections_total not in snapshot")
}

func TestRemoveEverywhere(t *testing.T) {
	c := fireworksCluster(t, 2, RoundRobin, platform.EnvConfig{})
	if err := c.Remove(invokeName()); err != nil {
		t.Fatal(err)
	}
	for _, n := range c.Nodes() {
		if n.Env.Snaps.Has(invokeName()) {
			t.Errorf("%s still has the snapshot", n.Name)
		}
	}
	if _, _, err := c.Invoke(invokeName(), platform.MustParams(nil), platform.InvokeOptions{}); err == nil {
		t.Fatal("invoke after remove succeeded")
	}
}

func TestPolicyNames(t *testing.T) {
	if RoundRobin.String() != "round-robin" || LeastMemory.String() != "least-memory" ||
		LeastInflight.String() != "least-inflight" {
		t.Fatal("policy names")
	}
}
