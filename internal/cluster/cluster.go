// Package cluster adds the controller tier of Figure 1 above single
// hosts: a fleet of backend servers, each with its own memory, network,
// hypervisor, and Fireworks framework, behind a placement policy. The
// paper evaluates a single machine (§5.1, following prior work); this
// package is the natural multi-host extension — API-gateway requests are
// routed to a backend chosen round-robin, by least memory pressure, or
// by least in-flight load, and hosts that have started swapping are
// avoided entirely.
//
// Function snapshots are installed on every node, which also models the
// §6 remark that snapshot images can live in remote storage and be
// materialized per host.
package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/lang"
	"repro/internal/metrics"
	"repro/internal/platform"
)

// Policy selects how invocations are placed on nodes.
type Policy int

// Placement policies.
const (
	// RoundRobin cycles through non-swapping nodes.
	RoundRobin Policy = iota
	// LeastMemory picks the node with the lowest memory usage.
	LeastMemory
	// LeastInflight picks the node with the fewest in-flight
	// invocations.
	LeastInflight
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case LeastMemory:
		return "least-memory"
	case LeastInflight:
		return "least-inflight"
	default:
		return "round-robin"
	}
}

// ErrClusterFull is returned when every node is under memory pressure.
var ErrClusterFull = errors.New("cluster: all nodes swapping")

// Node is one backend server.
type Node struct {
	Name     string
	Env      *platform.Env
	Platform platform.Platform

	inflight    atomic.Int64
	invocations atomic.Int64

	invokeCnt *metrics.Counter
	inflightG *metrics.Gauge
}

// Inflight returns the node's current in-flight invocation count.
func (n *Node) Inflight() int64 { return n.inflight.Load() }

// Invocations returns the node's lifetime invocation count.
func (n *Node) Invocations() int64 { return n.invocations.Load() }

// Cluster is a set of backend nodes behind one placement policy.
type Cluster struct {
	policy  Policy
	nodes   []*Node
	metrics *metrics.Registry

	placements *metrics.Counter
	rejections *metrics.Counter

	mu sync.Mutex
	rr int
}

// New builds a cluster of n nodes. mk constructs each node's platform
// from its private host environment (e.g. a Fireworks framework).
// Every node reports into one shared metrics registry (envCfg.Metrics,
// or a fresh one), so host-level quantities — restore latencies, CoW
// faults, queue dwell — aggregate fleet-wide in a single dump.
func New(n int, policy Policy, envCfg platform.EnvConfig,
	mk func(env *platform.Env) platform.Platform) *Cluster {
	reg := envCfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
		envCfg.Metrics = reg
	}
	c := &Cluster{
		policy:     policy,
		metrics:    reg,
		placements: reg.Counter(metrics.Name("cluster_placements_total", "policy", policy.String())),
		rejections: reg.Counter("cluster_rejections_total"),
	}
	for i := 0; i < n; i++ {
		env := platform.NewEnv(envCfg)
		name := fmt.Sprintf("node-%02d", i)
		c.nodes = append(c.nodes, &Node{
			Name:      name,
			Env:       env,
			Platform:  mk(env),
			invokeCnt: reg.Counter(metrics.Name("cluster_node_invocations_total", "node", name)),
			inflightG: reg.Gauge(metrics.Name("cluster_node_inflight", "node", name)),
		})
	}
	return c
}

// Metrics returns the cluster's shared registry.
func (c *Cluster) Metrics() *metrics.Registry { return c.metrics }

// Nodes returns the cluster's nodes.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Policy returns the placement policy.
func (c *Cluster) Policy() Policy { return c.policy }

// Install deploys a function on every node (each node materializes its
// own snapshot). The first error aborts and is returned.
func (c *Cluster) Install(fn platform.Function) error {
	for _, node := range c.nodes {
		if _, err := node.Platform.Install(fn); err != nil {
			return fmt.Errorf("cluster: %s: %w", node.Name, err)
		}
	}
	return nil
}

// Remove undeploys a function everywhere.
func (c *Cluster) Remove(name string) error {
	for _, node := range c.nodes {
		if err := node.Platform.Remove(name); err != nil {
			return fmt.Errorf("cluster: %s: %w", node.Name, err)
		}
	}
	return nil
}

// pick selects a node per the policy, skipping nodes that are swapping,
// and reserves one in-flight slot on it. Selection and reservation
// happen atomically under c.mu: a concurrent pick sees every earlier
// reservation, so a burst of simultaneous invocations spreads across
// the fleet instead of all reading the same stale counts and piling
// onto one node. The caller releases the slot when the invocation
// completes.
func (c *Cluster) pick() (*Node, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	candidates := make([]*Node, 0, len(c.nodes))
	for _, n := range c.nodes {
		if !n.Env.Mem.Swapping() {
			candidates = append(candidates, n)
		}
	}
	if len(candidates) == 0 {
		c.rejections.Inc()
		return nil, ErrClusterFull
	}
	// Every policy scans from a rotating offset so exact ties spread
	// across the fleet instead of always resolving to the first node
	// (fresh equal nodes would otherwise starve the rest).
	start := c.rr % len(candidates)
	c.rr++
	best := candidates[start]
	for i := 1; i < len(candidates); i++ {
		n := candidates[(start+i)%len(candidates)]
		switch c.policy {
		case LeastMemory:
			// Memory usage only moves once an invocation actually runs,
			// so in-flight reservations tie-break equal usage.
			used, bestUsed := n.Env.Mem.Used(), best.Env.Mem.Used()
			if used < bestUsed || (used == bestUsed && n.Inflight() < best.Inflight()) {
				best = n
			}
		case LeastInflight:
			if n.Inflight() < best.Inflight() {
				best = n
			}
		}
	}
	best.inflight.Add(1)
	best.inflightG.Add(1)
	c.placements.Inc()
	return best, nil
}

// release returns a node's reserved in-flight slot.
func (c *Cluster) release(n *Node) {
	n.inflight.Add(-1)
	n.inflightG.Add(-1)
}

// Invoke routes one invocation to a node and runs it there, returning
// the invocation and the chosen node. The in-flight slot pick reserved
// is held for the duration of the invocation.
func (c *Cluster) Invoke(name string, params lang.Value, opts platform.InvokeOptions) (*platform.Invocation, *Node, error) {
	node, err := c.pick()
	if err != nil {
		return nil, nil, err
	}
	defer c.release(node)
	inv, err := node.Platform.Invoke(name, params, opts)
	if err != nil {
		return inv, node, fmt.Errorf("cluster: %s: %w", node.Name, err)
	}
	node.invocations.Add(1)
	node.invokeCnt.Inc()
	return inv, node, nil
}

// NodeStats is a point-in-time view of one node.
type NodeStats struct {
	Name        string
	MemUsed     uint64
	Swapping    bool
	MicroVMs    int
	Invocations int64
}

// Stats snapshots every node.
func (c *Cluster) Stats() []NodeStats {
	out := make([]NodeStats, 0, len(c.nodes))
	for _, n := range c.nodes {
		out = append(out, NodeStats{
			Name:        n.Name,
			MemUsed:     n.Env.Mem.Used(),
			Swapping:    n.Env.Mem.Swapping(),
			MicroVMs:    n.Env.HV.VMCount(),
			Invocations: n.Invocations(),
		})
	}
	return out
}

// ExpireIdle runs every node's idle-guest reaper at workload-timeline
// position now, returning the fleet-wide count of terminated guests.
func (c *Cluster) ExpireIdle(now time.Duration) int {
	total := 0
	for _, n := range c.nodes {
		total += n.Platform.ExpireIdle(now)
	}
	return total
}

// WarmCount sums the idle warm guests pooled for a function across the
// fleet.
func (c *Cluster) WarmCount(name string) int {
	total := 0
	for _, n := range c.nodes {
		total += n.Platform.WarmCount(name)
	}
	return total
}

// TotalInvocations sums lifetime invocations across nodes.
func (c *Cluster) TotalInvocations() int64 {
	var total int64
	for _, n := range c.nodes {
		total += n.Invocations()
	}
	return total
}
