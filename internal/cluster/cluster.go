// Package cluster adds the controller tier of Figure 1 above single
// hosts: a fleet of backend servers, each with its own memory, network,
// hypervisor, and Fireworks framework, behind a placement policy. The
// paper evaluates a single machine (§5.1, following prior work); this
// package is the natural multi-host extension — API-gateway requests are
// routed to a backend chosen round-robin, by least memory pressure, or
// by least in-flight load, and hosts that have started swapping are
// avoided entirely.
//
// Function snapshots are installed on every node, which also models the
// §6 remark that snapshot images can live in remote storage and be
// materialized per host.
package cluster

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/events"
	"repro/internal/faults"
	"repro/internal/lang"
	"repro/internal/metrics"
	"repro/internal/platform"
)

// Health is a node's availability state. Healthy nodes take traffic
// normally; Probation nodes (repeated transient failures) are only
// picked when no healthy candidate exists; Down nodes (crashed) take
// no traffic until their recovery window elapses.
type Health int32

// Node health states. The numeric values are what the node_state
// gauge reports (platform.HealthHealthy/Probation/Down by contract).
const (
	Healthy   Health = platform.HealthHealthy
	Probation Health = platform.HealthProbation
	Down      Health = platform.HealthDown
)

// String names the health state. It delegates to the shared
// platform-level naming so gauge consumers (GET /healthz, the SLO
// watchdog's fleet probe) and this type can never drift apart.
func (h Health) String() string { return platform.HealthName(int64(h)) }

// Policy selects how invocations are placed on nodes.
type Policy int

// Placement policies.
const (
	// RoundRobin cycles through non-swapping nodes.
	RoundRobin Policy = iota
	// LeastMemory picks the node with the lowest memory usage.
	LeastMemory
	// LeastInflight picks the node with the fewest in-flight
	// invocations.
	LeastInflight
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case LeastMemory:
		return "least-memory"
	case LeastInflight:
		return "least-inflight"
	default:
		return "round-robin"
	}
}

// ErrClusterFull is returned when every node is under memory pressure.
var ErrClusterFull = errors.New("cluster: all nodes swapping")

// ErrNoHealthyNode is returned when placement finds nodes with memory
// to spare but every one of them is down or already failed this
// request.
var ErrNoHealthyNode = errors.New("cluster: no healthy node available")

// probeTicks is how often placement canaries a probation node when
// healthy nodes are also available.
const probeTicks = 4

// Node is one backend server.
type Node struct {
	Name     string
	Env      *platform.Env
	Platform platform.Platform

	inflight    atomic.Int64
	invocations atomic.Int64

	// health is written under the cluster mutex but stored atomically
	// so accessors read it lock-free.
	health atomic.Int32
	// consecutive transient failures and the recovery deadline (in
	// placement ticks) are guarded by the cluster mutex.
	consecutive int
	recoverAt   uint64

	invokeCnt *metrics.Counter
	inflightG *metrics.Gauge
	healthG   *metrics.Gauge
}

// Inflight returns the node's current in-flight invocation count.
func (n *Node) Inflight() int64 { return n.inflight.Load() }

// Invocations returns the node's lifetime invocation count.
func (n *Node) Invocations() int64 { return n.invocations.Load() }

// Health returns the node's availability state.
func (n *Node) Health() Health { return Health(n.health.Load()) }

// setHealth transitions the node's state and mirrors it to the
// node_state gauge. Callers hold the cluster mutex.
func (n *Node) setHealth(h Health) {
	n.health.Store(int32(h))
	n.healthG.Set(int64(h))
}

// FailoverPolicy tunes cluster-level resilience to transient node
// failures (see SetFailover). The zero value disables failover.
type FailoverPolicy struct {
	// MaxFailovers is how many additional placements one request may
	// try after a transient failure; 0 disables failover entirely.
	MaxFailovers int
	// ProbationThreshold is how many consecutive transient failures
	// put a node on probation (default 3).
	ProbationThreshold int
	// DownTicks is how many placement ticks a crashed node stays down
	// before re-entering service on probation (default 25). Ticks
	// advance on every placement, including failed ones, so recovery
	// cannot deadlock.
	DownTicks int
}

// Cluster is a set of backend nodes behind one placement policy.
type Cluster struct {
	policy  Policy
	nodes   []*Node
	metrics *metrics.Registry
	// journal is the shared event journal every node records into, so a
	// request's trace survives failover hops across hosts.
	journal *events.Journal
	// faults is the shared fault plane armed on every node's Env (nil
	// when the cluster runs fault-free); the cluster.node site draws
	// once per placement and can crash the chosen node.
	faults *faults.Plane

	placements *metrics.Counter
	rejections *metrics.Counter
	failovers  *metrics.Counter
	crashes    *metrics.Counter

	mu       sync.Mutex
	rr       int
	ticks    uint64
	failover FailoverPolicy
}

// New builds a cluster of n nodes. mk constructs each node's platform
// from its private host environment (e.g. a Fireworks framework).
// Every node reports into one shared metrics registry (envCfg.Metrics,
// or a fresh one), so host-level quantities — restore latencies, CoW
// faults, queue dwell — aggregate fleet-wide in a single dump.
func New(n int, policy Policy, envCfg platform.EnvConfig,
	mk func(env *platform.Env) platform.Platform) *Cluster {
	reg := envCfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
		envCfg.Metrics = reg
	}
	journal := envCfg.Events
	if journal == nil {
		journal = events.NewJournal(0)
		envCfg.Events = journal
	}
	c := &Cluster{
		policy:     policy,
		metrics:    reg,
		journal:    journal,
		faults:     envCfg.Faults,
		placements: reg.Counter(metrics.Name("cluster_placements_total", "policy", policy.String())),
		rejections: reg.Counter("cluster_rejections_total"),
		failovers:  reg.Counter("failovers_total"),
		crashes:    reg.Counter("cluster_node_crashes_total"),
		failover:   FailoverPolicy{ProbationThreshold: 3, DownTicks: 25},
	}
	for i := 0; i < n; i++ {
		env := platform.NewEnv(envCfg)
		name := fmt.Sprintf("node-%02d", i)
		c.nodes = append(c.nodes, &Node{
			Name:      name,
			Env:       env,
			Platform:  mk(env),
			invokeCnt: reg.Counter(metrics.Name("cluster_node_invocations_total", "node", name)),
			inflightG: reg.Gauge(metrics.Name("cluster_node_inflight", "node", name)),
			healthG:   reg.Gauge(metrics.Name("node_state", "node", name)),
		})
	}
	return c
}

// SetFailover configures cluster-level failover: how many re-placements
// one request gets after a transient failure, and the health-state
// thresholds. Zero-valued fields keep their defaults (probation after
// 3 consecutive transient failures, 25-tick crash recovery) except
// MaxFailovers, which stays as given — SetFailover(FailoverPolicy{})
// turns failover off while keeping crash bookkeeping.
func (c *Cluster) SetFailover(p FailoverPolicy) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p.ProbationThreshold <= 0 {
		p.ProbationThreshold = 3
	}
	if p.DownTicks <= 0 {
		p.DownTicks = 25
	}
	c.failover = p
}

// Metrics returns the cluster's shared registry.
func (c *Cluster) Metrics() *metrics.Registry { return c.metrics }

// Journal returns the cluster's shared event journal.
func (c *Cluster) Journal() *events.Journal { return c.journal }

// Nodes returns the cluster's nodes.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Policy returns the placement policy.
func (c *Cluster) Policy() Policy { return c.policy }

// Install deploys a function on every node (each node materializes its
// own snapshot). The first error aborts and is returned.
func (c *Cluster) Install(fn platform.Function) error {
	_, err := c.InstallReported(fn)
	return err
}

// InstallReported is Install returning the first node's install report
// (every node materializes an equivalent snapshot, so one report is
// representative of the fleet).
func (c *Cluster) InstallReported(fn platform.Function) (*platform.InstallReport, error) {
	var rep *platform.InstallReport
	for _, node := range c.nodes {
		r, err := node.Platform.Install(fn)
		if err != nil {
			return nil, fmt.Errorf("cluster: %s: %w", node.Name, err)
		}
		if rep == nil {
			rep = r
		}
	}
	return rep, nil
}

// Remove undeploys a function everywhere.
func (c *Cluster) Remove(name string) error {
	for _, node := range c.nodes {
		if err := node.Platform.Remove(name); err != nil {
			return fmt.Errorf("cluster: %s: %w", node.Name, err)
		}
	}
	return nil
}

// pick selects a node per the policy, skipping nodes that are swapping,
// and reserves one in-flight slot on it. Selection and reservation
// happen atomically under c.mu: a concurrent pick sees every earlier
// reservation, so a burst of simultaneous invocations spreads across
// the fleet instead of all reading the same stale counts and piling
// onto one node. The caller releases the slot when the invocation
// completes.
func (c *Cluster) pick(exclude map[*Node]bool, sc *events.Scope, now time.Duration) (*Node, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Ticks advance on every placement attempt — successful or not —
	// so crashed nodes always make progress toward recovery.
	c.ticks++
	for _, n := range c.nodes {
		if n.Health() == Down && c.ticks >= n.recoverAt {
			n.consecutive = 0
			n.setHealth(Probation)
		}
	}
	for {
		best, err := c.selectLocked(exclude)
		if err != nil {
			return nil, err
		}
		// One cluster.node draw per placement: a crash fault takes the
		// chosen node out of the fleet and placement retries on the
		// survivors.
		if ferr := c.faults.InjectTraced(faults.SiteClusterNode, nil, sc, now); ferr != nil {
			c.crashes.Inc()
			best.setHealth(Down)
			best.recoverAt = c.ticks + uint64(c.failover.DownTicks)
			sc.Instant("cluster", "node-crash", now, events.A("node", best.Name))
			continue
		}
		best.inflight.Add(1)
		best.inflightG.Add(1)
		c.placements.Inc()
		return best, nil
	}
}

// selectLocked applies the placement policy to the eligible nodes:
// not swapping, not down, not already tried by this request. Healthy
// nodes are preferred; probation nodes serve only when no healthy
// candidate remains. Callers hold c.mu.
func (c *Cluster) selectLocked(exclude map[*Node]bool) (*Node, error) {
	healthy := make([]*Node, 0, len(c.nodes))
	probation := make([]*Node, 0)
	swappingOnly := true
	for _, n := range c.nodes {
		if n.Env.Mem.Swapping() {
			continue
		}
		swappingOnly = false
		if n.Health() == Down || exclude[n] {
			continue
		}
		if n.Health() == Probation {
			probation = append(probation, n)
		} else {
			healthy = append(healthy, n)
		}
	}
	candidates := healthy
	// Probation nodes serve when nothing healthy remains, and every
	// probeTicks-th placement routes to them deliberately — canary
	// traffic, without which a probation node behind healthy peers
	// would never see a request and never redeem itself.
	if len(probation) > 0 && (len(candidates) == 0 || c.ticks%probeTicks == 0) {
		candidates = probation
	}
	if len(candidates) == 0 {
		c.rejections.Inc()
		if swappingOnly && len(c.nodes) > 0 {
			return nil, ErrClusterFull
		}
		return nil, ErrNoHealthyNode
	}
	// Every policy scans from a rotating offset so exact ties spread
	// across the fleet instead of always resolving to the first node
	// (fresh equal nodes would otherwise starve the rest).
	start := c.rr % len(candidates)
	c.rr++
	best := candidates[start]
	for i := 1; i < len(candidates); i++ {
		n := candidates[(start+i)%len(candidates)]
		switch c.policy {
		case LeastMemory:
			// Memory usage only moves once an invocation actually runs,
			// so in-flight reservations tie-break equal usage.
			used, bestUsed := n.Env.Mem.Used(), best.Env.Mem.Used()
			if used < bestUsed || (used == bestUsed && n.Inflight() < best.Inflight()) {
				best = n
			}
		case LeastInflight:
			if n.Inflight() < best.Inflight() {
				best = n
			}
		}
	}
	return best, nil
}

// recordFailure notes a transient failure on a node; enough of them in
// a row demote the node to probation.
func (c *Cluster) recordFailure(n *Node) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n.consecutive++
	if n.consecutive >= c.failover.ProbationThreshold && n.Health() == Healthy {
		n.setHealth(Probation)
	}
}

// recordSuccess clears a node's failure streak and lifts probation.
func (c *Cluster) recordSuccess(n *Node) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n.consecutive = 0
	if n.Health() == Probation {
		n.setHealth(Healthy)
	}
}

// release returns a node's reserved in-flight slot.
func (c *Cluster) release(n *Node) {
	n.inflight.Add(-1)
	n.inflightG.Add(-1)
}

// Invoke routes one invocation to a node and runs it there, returning
// the invocation and the node that served it. The in-flight slot pick
// reserved is held for the duration of the invocation. When failover
// is enabled (SetFailover) a transiently failed invocation is re-placed
// on a node that has not yet failed this request, up to MaxFailovers
// extra placements; permanent errors (unknown function, bad params)
// never fail over — they would fail identically everywhere.
func (c *Cluster) Invoke(name string, params lang.Value, opts platform.InvokeOptions) (*platform.Invocation, *Node, error) {
	c.mu.Lock()
	maxFailovers := c.failover.MaxFailovers
	c.mu.Unlock()
	// Every request gets one trace: either nested under the caller's
	// scope (an API-gateway span) or rooted here. Placement, failover
	// hops, and node crashes all land in it; each attempt's invocation
	// clock restarts at zero, which the exporters normalize.
	sc := opts.Trace
	if sc == nil {
		sc = c.journal.NewScope("cluster", "request", 0, events.A("function", name))
	} else {
		sc.Begin("cluster", "request", 0, events.A("function", name))
	}
	opts.Trace = sc
	var now time.Duration
	finish := func(inv *platform.Invocation, node *Node, ferr error) {
		if inv != nil {
			now = inv.Clock.Now()
		}
		attrs := make([]events.Attr, 0, 2)
		if node != nil {
			attrs = append(attrs, events.A("node", node.Name))
		}
		if ferr != nil {
			attrs = append(attrs, events.A("error", ferr.Error()))
		}
		sc.End(now, attrs...)
	}
	var exclude map[*Node]bool
	var lastPlace events.Ref
	for attempt := 0; ; attempt++ {
		node, err := c.pick(exclude, sc, now)
		if err != nil {
			finish(nil, nil, err)
			return nil, nil, err
		}
		lastPlace = sc.Instant("cluster", "place", now,
			events.A("node", node.Name),
			events.A("policy", c.policy.String()),
			events.A("attempt", strconv.Itoa(attempt+1)))
		sc.SetNode(node.Name)
		inv, err := node.Platform.Invoke(name, params, opts)
		c.release(node)
		if err == nil {
			c.recordSuccess(node)
			node.invocations.Add(1)
			node.invokeCnt.Inc()
			finish(inv, node, nil)
			return inv, node, nil
		}
		if !faults.IsTransient(err) {
			werr := fmt.Errorf("cluster: %s: %w", node.Name, err)
			finish(inv, node, werr)
			return inv, node, werr
		}
		c.recordFailure(node)
		if inv != nil {
			now = inv.Clock.Now()
		}
		if attempt >= maxFailovers {
			werr := fmt.Errorf("cluster: %s: %w", node.Name, err)
			finish(inv, node, werr)
			return inv, node, werr
		}
		c.failovers.Inc()
		// The failover instant links back to the failed placement so the
		// re-placement is causally joined to the attempt it replaces.
		sc.InstantLinked("cluster", "failover", now, lastPlace,
			events.A("from", node.Name), events.A("error", err.Error()))
		if exclude == nil {
			exclude = make(map[*Node]bool, len(c.nodes))
		}
		exclude[node] = true
	}
}

// NodeStats is a point-in-time view of one node.
type NodeStats struct {
	Name        string
	MemUsed     uint64
	Swapping    bool
	Health      Health
	MicroVMs    int
	Invocations int64
}

// Stats snapshots every node.
func (c *Cluster) Stats() []NodeStats {
	out := make([]NodeStats, 0, len(c.nodes))
	for _, n := range c.nodes {
		out = append(out, NodeStats{
			Name:        n.Name,
			MemUsed:     n.Env.Mem.Used(),
			Swapping:    n.Env.Mem.Swapping(),
			Health:      n.Health(),
			MicroVMs:    n.Env.HV.VMCount(),
			Invocations: n.Invocations(),
		})
	}
	return out
}

// ExpireIdle runs every node's idle-guest reaper at workload-timeline
// position now, returning the fleet-wide count of terminated guests.
func (c *Cluster) ExpireIdle(now time.Duration) int {
	total := 0
	for _, n := range c.nodes {
		total += n.Platform.ExpireIdle(now)
	}
	return total
}

// WarmCount sums the idle warm guests pooled for a function across the
// fleet.
func (c *Cluster) WarmCount(name string) int {
	total := 0
	for _, n := range c.nodes {
		total += n.Platform.WarmCount(name)
	}
	return total
}

// TotalInvocations sums lifetime invocations across nodes.
func (c *Cluster) TotalInvocations() int64 {
	var total int64
	for _, n := range c.nodes {
		total += n.Invocations()
	}
	return total
}
