package cluster

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/runtime"
	"repro/internal/workloads"
)

// resilientCluster builds a faulted cluster whose nodes retry and
// whose controller fails over. Profiles stay disarmed so the install
// phase runs clean; tests script faults explicitly or arm profiles
// after install.
func resilientCluster(t *testing.T, n int, plane *faults.Plane, retry faults.RetryPolicy, failover FailoverPolicy) *Cluster {
	t.Helper()
	c := New(n, RoundRobin, platform.EnvConfig{Faults: plane}, func(env *platform.Env) platform.Platform {
		return core.New(env, core.Options{Retry: retry})
	})
	c.SetFailover(failover)
	w := workloads.NetLatency(runtime.LangNode)
	if err := c.Install(w.Function); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFailoverMasksNodeFailure(t *testing.T) {
	plane := faults.NewPlane(3)
	// No per-node retries: every injected fault fails its invocation,
	// so masking must come from the controller's re-placement.
	c := resilientCluster(t, 3, plane, faults.RetryPolicy{}, FailoverPolicy{MaxFailovers: 2})
	params := platform.MustParams(nil)
	// Three consecutive restore faults: the first placement's pipeline
	// fails, the failover's fails too, the third succeeds elsewhere.
	plane.Enqueue(faults.SiteVMMRestore, faults.KindError, faults.KindError)
	inv, node, err := c.Invoke(invokeName(), params, platform.InvokeOptions{})
	if err != nil {
		t.Fatalf("failover did not mask node failures: %v", err)
	}
	if inv == nil || node == nil {
		t.Fatal("no invocation or node returned")
	}
	if got := c.Metrics().Counter("failovers_total").Value(); got != 2 {
		t.Fatalf("failovers_total = %d, want 2", got)
	}
}

func TestPermanentErrorDoesNotFailOver(t *testing.T) {
	plane := faults.NewPlane(3)
	c := resilientCluster(t, 3, plane, faults.RetryPolicy{}, FailoverPolicy{MaxFailovers: 2})
	_, _, err := c.Invoke("ghost", platform.MustParams(nil), platform.InvokeOptions{})
	if err == nil {
		t.Fatal("invoke of uninstalled function succeeded")
	}
	if got := c.Metrics().Counter("failovers_total").Value(); got != 0 {
		t.Fatalf("failovers_total = %d for a permanent error", got)
	}
}

func TestCrashedNodeRecoversAfterDownTicks(t *testing.T) {
	plane := faults.NewPlane(3)
	c := resilientCluster(t, 2, plane, faults.RetryPolicy{}, FailoverPolicy{MaxFailovers: 1, DownTicks: 4})
	params := platform.MustParams(nil)
	// The next placement draw crashes the chosen node.
	plane.Enqueue(faults.SiteClusterNode, faults.KindCrash)
	if _, _, err := c.Invoke(invokeName(), params, platform.InvokeOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := c.Metrics().Counter("cluster_node_crashes_total").Value(); got != 1 {
		t.Fatalf("crashes = %d, want 1", got)
	}
	downs := 0
	for _, n := range c.Nodes() {
		if n.Health() == Down {
			downs++
		}
	}
	if downs != 1 {
		t.Fatalf("%d nodes down, want 1", downs)
	}
	// Enough placements tick the crashed node back into service (on
	// probation), and a success there restores it to Healthy.
	for i := 0; i < 10; i++ {
		if _, _, err := c.Invoke(invokeName(), params, platform.InvokeOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range c.Nodes() {
		if n.Health() != Healthy {
			t.Fatalf("%s still %s after recovery window", n.Name, n.Health())
		}
	}
}

func TestRepeatedTransientFailuresPutNodeOnProbation(t *testing.T) {
	plane := faults.NewPlane(3)
	// Single node: every transient failure lands on it; no failover
	// budget so each Invoke fails once.
	c := resilientCluster(t, 1, plane, faults.RetryPolicy{}, FailoverPolicy{ProbationThreshold: 3})
	params := platform.MustParams(nil)
	node := c.Nodes()[0]
	for i := 0; i < 3; i++ {
		plane.Enqueue(faults.SiteVMMRestore, faults.KindError)
		if _, _, err := c.Invoke(invokeName(), params, platform.InvokeOptions{}); err == nil {
			t.Fatal("injected failure masked with no retries and no failover")
		}
	}
	if node.Health() != Probation {
		t.Fatalf("node %s after 3 consecutive transient failures, want probation", node.Health())
	}
	// Probation nodes still serve when they are all there is; success
	// lifts the probation.
	if _, _, err := c.Invoke(invokeName(), params, platform.InvokeOptions{}); err != nil {
		t.Fatal(err)
	}
	if node.Health() != Healthy {
		t.Fatalf("node %s after success, want healthy", node.Health())
	}
	if got := c.Metrics().Gauge(metrics.Name("node_state", "node", "node-00")).Value(); got != int64(Healthy) {
		t.Fatalf("node_state gauge = %d, want %d", got, Healthy)
	}
}

func TestAllNodesDownSurfacesNoHealthyNode(t *testing.T) {
	plane := faults.NewPlane(3)
	c := resilientCluster(t, 2, plane, faults.RetryPolicy{}, FailoverPolicy{MaxFailovers: 0, DownTicks: 1000})
	plane.Enqueue(faults.SiteClusterNode, faults.KindCrash, faults.KindCrash)
	_, _, err := c.Invoke(invokeName(), platform.MustParams(nil), platform.InvokeOptions{})
	if !errors.Is(err, ErrNoHealthyNode) {
		t.Fatalf("err = %v, want ErrNoHealthyNode", err)
	}
}

// TestRemoveRacesInvokeAndInstall drives Remove concurrently with
// Invoke and Install traffic under the race detector: the cluster must
// stay internally consistent (no torn state, no deadlock), whatever
// interleaving wins.
func TestRemoveRacesInvokeAndInstall(t *testing.T) {
	plane := faults.NewPlane(11)
	c := resilientCluster(t, 3, plane, faults.DefaultRetryPolicy(), FailoverPolicy{MaxFailovers: 2})
	w := workloads.NetLatency(runtime.LangNode)
	params := platform.MustParams(nil)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				// A racing Remove makes "no function" legal; anything
				// else must still be a clean, classified error.
				_, _, _ = c.Invoke(w.Name, params, platform.InvokeOptions{})
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			_ = c.Remove(w.Name)
			_ = c.Install(w.Function)
		}
	}()
	wg.Wait()
	// Converge: one final install must leave every node serving again.
	_ = c.Remove(w.Name)
	if err := c.Install(w.Function); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Invoke(w.Name, params, platform.InvokeOptions{}); err != nil {
		t.Fatal(err)
	}
}

// TestExpireIdleDuringFailover runs the idle reaper concurrently with
// invocations that are actively failing over between warm-pooled
// nodes.
func TestExpireIdleDuringFailover(t *testing.T) {
	plane := faults.NewPlane(17)
	c := New(3, RoundRobin, platform.EnvConfig{Faults: plane}, func(env *platform.Env) platform.Platform {
		return core.New(env, core.Options{
			WarmPool:      true,
			PoolKeepAlive: 1,
			Retry:         faults.DefaultRetryPolicy(),
		})
	})
	c.SetFailover(FailoverPolicy{MaxFailovers: 2})
	w := workloads.NetLatency(runtime.LangNode)
	if err := c.Install(w.Function); err != nil {
		t.Fatal(err)
	}
	params := platform.MustParams(nil)
	// Everything from here on can fail and be retried/failed over.
	plane.SetProfile(faults.SiteVMMRestore, faults.Profile{ErrorRate: 0.3})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				_, _, _ = c.Invoke(w.Name, params, platform.InvokeOptions{})
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			c.ExpireIdle(1 << 40)
		}
	}()
	wg.Wait()
	// Drain the pools; no VM may leak whatever interleavings happened.
	c.ExpireIdle(1 << 40)
	for _, n := range c.Nodes() {
		if pool := n.Platform.WarmCount(w.Name); pool != 0 {
			t.Fatalf("%s still pools %d guests after final reap", n.Name, pool)
		}
	}
}
