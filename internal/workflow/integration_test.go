package workflow_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/couchdb"
	"repro/internal/platform"
	"repro/internal/workflow"
	"repro/internal/workloads"
)

// installAlexa deploys the Alexa suite plus the workflow step
// functions on a platform (leaves before chain heads, as priming
// exercises the real chain).
func installAlexa(t *testing.T, p platform.Platform) {
	t.Helper()
	apps := append(workloads.AlexaSkills(), workloads.WorkflowFunctions()...)
	for i := len(apps) - 1; i >= 0; i-- {
		if _, err := p.Install(apps[i].Function); err != nil {
			t.Fatalf("install %s: %v", apps[i].Name, err)
		}
	}
}

// TestDeclarativeAlexaOnCore runs the declarative Alexa workflow on
// the real Fireworks stack and asserts the acceptance criterion: the
// whole run — workflow span, step spans, and the platform's invoke
// pipeline stages — lands in ONE journal trace.
func TestDeclarativeAlexaOnCore(t *testing.T) {
	env := platform.NewEnv(platform.EnvConfig{})
	fw := core.New(env, core.Options{})
	installAlexa(t, fw)

	eng := workflow.New(env.Bus, env.Events, env.Metrics, fw, workflow.Options{})
	if err := eng.Register(workloads.AlexaWorkflow()); err != nil {
		t.Fatalf("Register: %v", err)
	}

	// Journal position before the run: everything after belongs to it.
	before := len(env.Events.Events())

	run, err := eng.Run("alexa",
		map[string]any{"text": "remind me to water the plants", "action": "add", "id": "w1",
			"item": "water plants", "place": "balcony", "url": "https://cal.example/w1"},
		10*time.Millisecond)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if run.Status != workflow.RunCompleted {
		t.Fatalf("run status %q, want completed", run.Status)
	}
	states := map[string]string{}
	for _, st := range run.Steps(eng) {
		states[st.ID] = st.Status
	}
	if states["intent"] != workflow.StepCompleted || states["reminder"] != workflow.StepCompleted {
		t.Fatalf("states %v: want intent and reminder completed", states)
	}
	if states["fact"] != workflow.StepSkipped || states["smarthome"] != workflow.StepSkipped {
		t.Fatalf("states %v: want fact and smarthome skipped (conditional branch)", states)
	}

	// Single end-to-end trace: every event the run emitted — from the
	// workflow layer down through msgbus and the core invoke pipeline —
	// carries the run's trace ID.
	evs := env.Events.Events()[before:]
	if len(evs) == 0 {
		t.Fatal("run emitted no events")
	}
	seen := map[string]bool{}
	for _, e := range evs {
		if e.Trace != run.TraceID() {
			t.Fatalf("event %s/%s (seq %d) has trace %v, want the run trace %v",
				e.Component, e.Name, e.Seq, e.Trace, run.TraceID())
		}
		seen[e.Component+"/"+e.Name] = true
	}
	for _, want := range []string{
		"workflow/step",         // engine step span
		"msgbus/produce-batch",  // step enqueue
		"msgbus/consume-batch",  // traced step poll
		"core/invoke",           // platform pipeline root
		"core/restore-or-reuse", // pipeline stage
		"core/execute",          // pipeline stage
		"workflow/step-skipped", // pruned branches
	} {
		if !seen[want] {
			t.Fatalf("run trace is missing %s (have %v)", want, seen)
		}
	}
	// And the reminder actually hit the database.
	db, err := env.Couch.DB("reminders")
	if err != nil {
		t.Fatalf("reminders DB: %v", err)
	}
	if _, err := db.Get("reminder-w1"); err != nil {
		t.Fatalf("reminder document not stored: %v", err)
	}
}

// TestDeclarativeWageChainsOnCore runs the declarative ingestion chain
// and the change-feed-triggered analysis chain end to end on core.
func TestDeclarativeWageChainsOnCore(t *testing.T) {
	env := platform.NewEnv(platform.EnvConfig{})
	fw := core.New(env, core.Options{})
	apps := append(workloads.DataAnalysis(), workloads.WorkflowFunctions()...)
	for i := len(apps) - 1; i >= 0; i-- {
		if _, err := fw.Install(apps[i].Function); err != nil {
			t.Fatalf("install %s: %v", apps[i].Name, err)
		}
	}

	eng := workflow.New(env.Bus, env.Events, env.Metrics, fw, workflow.Options{})
	if err := eng.Register(workloads.WageInsertWorkflow()); err != nil {
		t.Fatalf("Register ingest: %v", err)
	}
	if err := eng.Register(workloads.WageAnalysisWorkflow()); err != nil {
		t.Fatalf("Register analysis: %v", err)
	}
	// The dashed Figure 8(b) edge: every wage write triggers the
	// analysis chain.
	wages, err := env.Couch.DB("wages")
	if err != nil {
		t.Fatalf("wages DB: %v", err)
	}
	eng.AddChangeFeed(wages, "wage-analysis", nil,
		func(c couchdb.Change) map[string]any {
			return map[string]any{"trigger": "db-change", "doc": c.ID}
		})

	run, err := eng.Run("wage-ingest",
		map[string]any{"name": "ada", "id": "e1", "role": "Engineer", "base": int64(64000)},
		time.Millisecond)
	if err != nil {
		t.Fatalf("Run ingest: %v", err)
	}
	if run.Status != workflow.RunCompleted {
		t.Fatalf("ingest status %q, want completed", run.Status)
	}
	// The persist step's db_put queued an analysis firing.
	if eng.PendingTriggers() == 0 {
		t.Fatal("persist did not queue a change-feed firing")
	}
	triggered := eng.Drain(run.Invocation.Clock.Now())
	if len(triggered) != 1 || triggered[0].Status != workflow.RunCompleted {
		t.Fatalf("triggered analysis runs: %v", triggered)
	}
	stats, err := env.Couch.DB("wage-stats")
	if err != nil {
		t.Fatalf("wage-stats DB: %v", err)
	}
	doc, err := stats.Get("stats-latest")
	if err != nil {
		t.Fatalf("stats document not stored: %v", err)
	}
	// Two wage documents: install-time priming upserts wage-p0, the
	// workflow inserted wage-e1.
	if doc["employees"] != int64(2) && doc["employees"] != float64(2) {
		t.Fatalf("stats employees = %v, want 2", doc["employees"])
	}
}
