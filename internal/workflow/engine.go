package workflow

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/events"
	"repro/internal/faults"
	"repro/internal/lang"
	"repro/internal/metrics"
	"repro/internal/msgbus"
	"repro/internal/platform"
	"repro/internal/runtime"
	"repro/internal/vclock"
)

// Invoker executes one deployed function. core.Framework, the
// OpenWhisk model, and any other platform.Platform satisfy it
// directly; cluster callers wrap Cluster.Invoke to drop the node
// return.
type Invoker interface {
	Invoke(name string, params lang.Value, opts platform.InvokeOptions) (*platform.Invocation, error)
}

// Options tunes an Engine.
type Options struct {
	// Retry is the per-step retry policy (a step's own Retry field
	// overrides it). The zero policy fails fast on the first error.
	Retry faults.RetryPolicy
	// StepBatch caps how many step messages one bus poll returns
	// (default 16).
	StepBatch int
}

// Step delivery states. Completed, Skipped, and Dead are terminal;
// Dead steps come back to Pending only through ReplayDLQ.
const (
	StepPending   = "pending"
	StepCompleted = "completed"
	StepSkipped   = "skipped"
	StepDead      = "dead"
)

// Run outcomes.
const (
	// RunCompleted: every step reached completed or skipped.
	RunCompleted = "completed"
	// RunStalled: at least one step is dead (or blocked behind a dead
	// ancestor); ReplayDLQ can resume the run.
	RunStalled = "stalled"
)

// StepState is the delivery record of one step within one run.
type StepState struct {
	ID       string `json:"id"`
	Function string `json:"function"`
	Status   string `json:"status"`
	Attempts int    `json:"attempts"`
	Error    string `json:"error,omitempty"`

	output   any
	enqueued bool
}

// Run is one execution of a workflow. All steps share the run's
// invocation (one virtual clock, one latency breakdown, one trace).
type Run struct {
	ID         string
	Workflow   string
	Status     string
	StartedAt  time.Duration
	Input      map[string]any
	Invocation *platform.Invocation

	steps   map[string]*StepState
	results map[string]any
	sc      *events.Scope
	done    bool
}

// TraceID returns the run's current journal trace (replayed runs get a
// fresh trace per resume).
func (r *Run) TraceID() events.TraceID { return r.sc.TraceID() }

// Result returns a completed step's recorded output. Read it after
// Run/Drain/Tick returns — the engine mutates results only while
// driving the run.
func (r *Run) Result(step string) (any, bool) {
	v, ok := r.results[step]
	return v, ok
}

// Steps returns the per-step states in the workflow's topological
// order.
func (r *Run) Steps(e *Engine) []*StepState {
	e.mu.Lock()
	defer e.mu.Unlock()
	wf := e.workflows[r.Workflow]
	if wf == nil {
		return nil
	}
	out := make([]*StepState, 0, len(wf.order))
	for _, id := range wf.order {
		out = append(out, r.steps[id])
	}
	return out
}

// DLQRecord is one dead-lettered step as stored on the workflow's
// dead-letter topic.
type DLQRecord struct {
	Run      string `json:"run"`
	Step     string `json:"step"`
	Function string `json:"function"`
	Attempts int    `json:"attempts"`
	Error    string `json:"error"`
	Offset   int64  `json:"offset"`
}

// stepMsg is the wire format of one step delivery on the steps topic.
type stepMsg struct {
	Run  string `json:"run"`
	Step string `json:"step"`
}

// registered is a workflow plus its engine-side delivery state.
type registered struct {
	spec       *Spec
	order      []string // topological
	stepsTopic string
	dlqTopic   string
	retriers   map[string]*faults.Retrier
	offset     int64 // committed consume position on stepsTopic
	dlqOffset  int64 // replay position on dlqTopic
	dlqDepth   *metrics.Gauge
	runs       *metrics.Counter
}

// Engine executes registered workflows over the message bus with
// at-least-once step delivery. All entry points (Register, Run, Tick,
// Drain, ReplayDLQ) serialize on one mutex: the simulation is
// deterministic, so there is exactly one delivery order per seed.
type Engine struct {
	bus     *msgbus.Broker
	journal *events.Journal
	reg     *metrics.Registry
	inv     Invoker
	opts    Options

	mu        sync.Mutex
	workflows map[string]*registered
	names     []string // registration order
	runs      map[string]*Run
	runSeq    int

	busRetrier *faults.Retrier

	stepsStarted   *metrics.Counter
	stepsCompleted *metrics.Counter
	stepsRetried   *metrics.Counter
	stepsDead      *metrics.Counter
	stepsSkipped   *metrics.Counter
	duplicates     *metrics.Counter
	dlqRedelivered *metrics.Counter
	runDuration    *metrics.Histogram

	// Trigger state. pendingMu is separate from mu because CouchDB
	// change subscriptions fire synchronously inside db_put — i.e.
	// mid-step, while mu is held by the drive loop.
	pendingMu sync.Mutex
	pending   []firing
	crons     []*cronTrigger
	cronSeq   int
	triggers  map[string]*metrics.Counter
}

// New builds a workflow engine on the given bus, journal, registry,
// and function invoker. Any of journal/reg may be nil (events and
// metrics are dropped); bus and inv must be set.
func New(bus *msgbus.Broker, journal *events.Journal, reg *metrics.Registry, inv Invoker, opts Options) *Engine {
	if opts.StepBatch <= 0 {
		opts.StepBatch = 16
	}
	return &Engine{
		bus:            bus,
		journal:        journal,
		reg:            reg,
		inv:            inv,
		opts:           opts,
		workflows:      make(map[string]*registered),
		runs:           make(map[string]*Run),
		busRetrier:     faults.NewRetrier(opts.Retry, reg),
		stepsStarted:   reg.Counter(metrics.Name("workflow_steps_started_total")),
		stepsCompleted: reg.Counter(metrics.Name("workflow_steps_completed_total")),
		stepsRetried:   reg.Counter(metrics.Name("workflow_steps_retried_total")),
		stepsDead:      reg.Counter(metrics.Name("workflow_steps_dead_total")),
		stepsSkipped:   reg.Counter(metrics.Name("workflow_steps_skipped_total")),
		duplicates:     reg.Counter(metrics.Name("workflow_duplicate_deliveries_total")),
		dlqRedelivered: reg.Counter(metrics.Name("workflow_dlq_redelivered_total")),
		runDuration:    reg.Histogram("workflow_run_duration"),
		triggers:       make(map[string]*metrics.Counter),
	}
}

// Register validates the spec and provisions its delivery topics
// (wf-<name>-steps, wf-<name>-dlq) and per-step retriers.
func (e *Engine) Register(spec *Spec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.workflows[spec.Name]; dup {
		return fmt.Errorf("workflow %q: already registered", spec.Name)
	}
	wf := &registered{
		spec:       spec,
		stepsTopic: "wf-" + spec.Name + "-steps",
		dlqTopic:   "wf-" + spec.Name + "-dlq",
		retriers:   make(map[string]*faults.Retrier, len(spec.Steps)),
		dlqDepth:   e.reg.Gauge(metrics.Name("workflow_dlq_depth", "workflow", spec.Name)),
		runs:       e.reg.Counter(metrics.Name("workflow_runs_total", "workflow", spec.Name)),
	}
	wf.order, _ = spec.topoOrder()
	if err := e.bus.CreateTopic(wf.stepsTopic, 1); err != nil {
		return fmt.Errorf("workflow %q: %w", spec.Name, err)
	}
	if err := e.bus.CreateTopic(wf.dlqTopic, 1); err != nil {
		return fmt.Errorf("workflow %q: %w", spec.Name, err)
	}
	for i := range spec.Steps {
		st := &spec.Steps[i]
		policy := e.opts.Retry
		if st.Retry != nil {
			policy = *st.Retry
		}
		wf.retriers[st.ID] = faults.NewRetrier(policy, e.reg)
	}
	e.workflows[spec.Name] = wf
	e.names = append(e.names, spec.Name)
	return nil
}

// Workflows lists registered workflow names in registration order.
func (e *Engine) Workflows() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]string(nil), e.names...)
}

// Spec returns a registered workflow's spec (nil if unknown).
func (e *Engine) Spec(name string) *Spec {
	e.mu.Lock()
	defer e.mu.Unlock()
	if wf := e.workflows[name]; wf != nil {
		return wf.spec
	}
	return nil
}

// Run executes one workflow to quiescence at virtual time `at` and
// returns the finished run (status RunCompleted or RunStalled).
func (e *Engine) Run(name string, input map[string]any, at time.Duration) (*Run, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.runLocked(name, input, at)
}

func (e *Engine) runLocked(name string, input map[string]any, at time.Duration) (*Run, error) {
	wf := e.workflows[name]
	if wf == nil {
		return nil, fmt.Errorf("workflow %q: not registered", name)
	}
	e.runSeq++
	runID := fmt.Sprintf("r%06d", e.runSeq)
	inv := platform.NewInvocation("workflow:" + name)
	inv.Clock = vclock.NewAt(at)
	sc := e.journal.NewScope("workflow", "run", at,
		events.A("workflow", name), events.A("run", runID))
	inv.Trace = sc
	run := &Run{
		ID:         runID,
		Workflow:   name,
		StartedAt:  at,
		Input:      input,
		Invocation: inv,
		steps:      make(map[string]*StepState, len(wf.spec.Steps)),
		results:    make(map[string]any, len(wf.spec.Steps)),
		sc:         sc,
	}
	for i := range wf.spec.Steps {
		st := &wf.spec.Steps[i]
		run.steps[st.ID] = &StepState{ID: st.ID, Function: st.Function, Status: StepPending}
	}
	e.runs[runID] = run
	wf.runs.Inc()
	if err := e.enqueueReady(wf, run); err != nil {
		run.Status = RunStalled
		run.sc.Close(inv.Clock.Now(), events.A("status", RunStalled), events.A("error", err.Error()))
		run.done = true
		return run, err
	}
	e.drive(wf)
	e.finalize(wf, run)
	return run, nil
}

// enqueueReady produces a step-delivery message for every pending step
// whose dependencies are all terminal-OK (completed or skipped) and
// that has not been enqueued yet.
func (e *Engine) enqueueReady(wf *registered, run *Run) error {
	var recs []msgbus.BatchRecord
	for _, id := range wf.order {
		st := run.steps[id]
		if st.enqueued || st.Status != StepPending {
			continue
		}
		if !e.ready(wf, run, id) {
			continue
		}
		body, _ := json.Marshal(stepMsg{Run: run.ID, Step: id})
		recs = append(recs, msgbus.BatchRecord{Key: run.ID, Value: body})
		st.enqueued = true
	}
	if len(recs) == 0 {
		return nil
	}
	clock := run.Invocation.Clock
	return e.busRetrier.DoTraced(clock, run.sc, "wf-enqueue", func() error {
		_, err := e.bus.ProduceBatchTracedAt(wf.stepsTopic, recs, clock.Now(), run.sc)
		return err
	})
}

// ready reports whether every dependency of step id is terminal-OK.
func (e *Engine) ready(wf *registered, run *Run, id string) bool {
	st := wf.spec.step(id)
	for _, dep := range st.After {
		switch run.steps[dep].Status {
		case StepCompleted, StepSkipped:
		default:
			return false
		}
	}
	return true
}

// drive is the step-delivery loop: poll the workflow's steps topic
// through the traced batch-consume path, execute each delivered step,
// and keep polling until a read comes back empty (quiescence). The
// committed offset advances one message at a time — a mid-batch crash
// model would redeliver the tail, which is exactly the at-least-once
// contract the duplicate counter guards.
func (e *Engine) drive(wf *registered) {
	for {
		var msgs []msgbus.Message
		// Poll under the scope of the run that produced the head
		// message where possible; fall back to a journal-less poll
		// position when the topic is empty.
		clock, sc := e.pollContext(wf)
		err := e.busRetrier.DoTraced(clock, sc, "wf-poll", func() error {
			var cerr error
			msgs, cerr = e.bus.ConsumeFromTracedAt(wf.stepsTopic, 0, wf.offset, e.opts.StepBatch, clock.Now(), sc)
			return cerr
		})
		if err != nil || len(msgs) == 0 {
			return
		}
		for _, m := range msgs {
			wf.offset = m.Offset + 1
			var sm stepMsg
			if json.Unmarshal(m.Value, &sm) != nil {
				continue
			}
			run := e.runs[sm.Run]
			if run == nil {
				continue
			}
			e.deliver(wf, run, sm.Step)
		}
	}
}

// pollContext picks the clock and scope a poll is attributed to: the
// run that produced the next undelivered message, so consume-batch
// events land in the trace of the work they deliver.
func (e *Engine) pollContext(wf *registered) (*vclock.Clock, *events.Scope) {
	m, err := e.bus.ConsumeAt(wf.stepsTopic, 0, wf.offset)
	if err == nil {
		var sm stepMsg
		if json.Unmarshal(m.Value, &sm) == nil {
			if run := e.runs[sm.Run]; run != nil {
				return run.Invocation.Clock, run.sc
			}
		}
	}
	return vclock.New(), nil
}

// deliver executes one delivered step to a terminal state and enqueues
// any dependents it unblocks.
func (e *Engine) deliver(wf *registered, run *Run, stepID string) {
	st := run.steps[stepID]
	spec := wf.spec.step(stepID)
	if st == nil || spec == nil {
		return
	}
	if st.Status != StepPending {
		// Redelivery of an already-terminal step: the at-least-once
		// contract in action. Count it and drop it.
		e.duplicates.Inc()
		return
	}
	clock := run.Invocation.Clock
	now := clock.Now()

	// Branch pruning: a When condition that does not hold — or a step
	// whose every dependency was itself skipped — skips without
	// invoking anything. Skipped is terminal-OK so fan-in joins after
	// a pruned branch still fire.
	skip := false
	if len(spec.After) > 0 {
		allSkipped := true
		for _, dep := range spec.After {
			if run.steps[dep].Status != StepSkipped {
				allSkipped = false
			}
		}
		skip = allSkipped
	}
	if !skip && spec.When != nil && !spec.When.holds(run.results) {
		skip = true
	}
	if skip {
		st.Status = StepSkipped
		e.stepsSkipped.Inc()
		run.sc.Instant("workflow", "step-skipped", now,
			events.A("step", stepID), events.A("run", run.ID))
		e.enqueueReady(wf, run)
		return
	}

	params, perr := e.stepParams(spec, run)
	if perr != nil {
		e.deadLetter(wf, run, st, perr)
		return
	}

	e.stepsStarted.Inc()
	run.sc.Begin("workflow", "step", now,
		events.A("step", stepID),
		events.A("function", spec.Function),
		events.A("run", run.ID))
	attempts := 0
	var out *platform.Invocation
	err := wf.retriers[stepID].DoTraced(clock, run.sc, "step:"+stepID, func() error {
		attempts++
		var ierr error
		out, ierr = e.inv.Invoke(spec.Function, params, platform.InvokeOptions{
			Parent: run.Invocation,
			At:     clock.Now(),
		})
		return ierr
	})
	st.Attempts += attempts
	if attempts > 1 {
		e.stepsRetried.Add(int64(attempts - 1))
	}
	if err != nil {
		run.sc.End(clock.Now(), events.A("status", "failed"), events.A("error", err.Error()))
		e.deadLetter(wf, run, st, err)
		return
	}
	if res, cerr := runtime.ToGo(out.Result); cerr == nil {
		run.results[stepID] = res
		st.output = res
	}
	st.Status = StepCompleted
	st.Error = ""
	e.stepsCompleted.Inc()
	run.sc.End(clock.Now(), events.A("status", StepCompleted))
	e.enqueueReady(wf, run)
}

// stepParams resolves a step's input mapping into function parameters.
func (e *Engine) stepParams(spec *Step, run *Run) (lang.Value, error) {
	in, err := resolveInput(spec, run.Input, run.results)
	if err != nil {
		return nil, err
	}
	return platform.ParamsValue(in)
}

// deadLetter routes a permanently failed step to the workflow's
// dead-letter topic.
func (e *Engine) deadLetter(wf *registered, run *Run, st *StepState, cause error) {
	clock := run.Invocation.Clock
	st.Status = StepDead
	st.Error = cause.Error()
	rec := DLQRecord{
		Run:      run.ID,
		Step:     st.ID,
		Function: st.Function,
		Attempts: st.Attempts,
		Error:    cause.Error(),
	}
	body, _ := json.Marshal(rec)
	perr := e.busRetrier.DoTraced(clock, run.sc, "wf-dlq", func() error {
		_, _, err := e.bus.ProduceTracedAt(wf.dlqTopic, run.ID, body, clock.Now(), run.sc)
		return err
	})
	e.stepsDead.Inc()
	wf.dlqDepth.Add(1)
	attrs := []events.Attr{
		events.A("step", st.ID),
		events.A("run", run.ID),
		events.A("error", cause.Error()),
	}
	if perr != nil {
		attrs = append(attrs, events.A("dlq_error", perr.Error()))
	}
	run.sc.Instant("workflow", "step-dead", clock.Now(), attrs...)
}

// finalize closes a run once the delivery loop has gone quiet: every
// step either reached a terminal state or is blocked behind a dead
// ancestor.
func (e *Engine) finalize(wf *registered, run *Run) {
	if run.done {
		return
	}
	status := RunCompleted
	var completed, skipped, dead, pending int
	for _, id := range wf.order {
		switch run.steps[id].Status {
		case StepCompleted:
			completed++
		case StepSkipped:
			skipped++
		case StepDead:
			dead++
			status = RunStalled
		default:
			pending++
			status = RunStalled
		}
	}
	run.Status = status
	run.done = true
	now := run.Invocation.Clock.Now()
	e.runDuration.ObserveDurationExemplar(run.Invocation.Total(),
		uint64(run.sc.TraceID()), now)
	// The terminal workflow:done event carries the per-run step tally,
	// so a DAG critical path closes on one event instead of scanning
	// for the last step.
	run.sc.Instant("workflow", "done", now,
		events.A("run", run.ID),
		events.A("status", status),
		events.A("steps_total", strconv.Itoa(len(wf.order))),
		events.A("steps_completed", strconv.Itoa(completed)),
		events.A("steps_skipped", strconv.Itoa(skipped)),
		events.A("steps_dead", strconv.Itoa(dead)),
		events.A("steps_pending", strconv.Itoa(pending)))
	run.sc.Close(now, events.A("status", status))
}

// Runs returns all runs in start order.
func (e *Engine) Runs() []*Run {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*Run, 0, len(e.runs))
	for _, r := range e.runs {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// GetRun returns a run by ID (nil if unknown).
func (e *Engine) GetRun(id string) *Run {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.runs[id]
}

// DLQ lists every record currently parked on the workflow's
// dead-letter topic that has not been redelivered yet.
func (e *Engine) DLQ(name string) ([]DLQRecord, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	wf := e.workflows[name]
	if wf == nil {
		return nil, fmt.Errorf("workflow %q: not registered", name)
	}
	return e.dlqRecords(wf)
}

func (e *Engine) dlqRecords(wf *registered) ([]DLQRecord, error) {
	var out []DLQRecord
	off := wf.dlqOffset
	for {
		msgs, err := e.bus.ConsumeFrom(wf.dlqTopic, 0, off, 64)
		if err != nil {
			return nil, err
		}
		if len(msgs) == 0 {
			return out, nil
		}
		for _, m := range msgs {
			var rec DLQRecord
			if json.Unmarshal(m.Value, &rec) == nil {
				rec.Offset = m.Offset
				out = append(out, rec)
			}
			off = m.Offset + 1
		}
	}
}

// ReplayDLQ redelivers every parked dead-letter record at virtual time
// `at`: each dead step is reset to pending, re-enqueued on the steps
// topic, and its run driven back toward completion under a fresh
// dlq-replay trace. Returns the affected runs in replay order.
func (e *Engine) ReplayDLQ(name string, at time.Duration) ([]*Run, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	wf := e.workflows[name]
	if wf == nil {
		return nil, fmt.Errorf("workflow %q: not registered", name)
	}
	recs, err := e.dlqRecords(wf)
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, nil
	}
	var out []*Run
	seen := make(map[string]bool)
	for _, rec := range recs {
		run := e.runs[rec.Run]
		if run == nil {
			continue
		}
		st := run.steps[rec.Step]
		if st == nil || st.Status != StepDead {
			continue
		}
		if !seen[run.ID] {
			seen[run.ID] = true
			out = append(out, run)
			// Resume the run on a fresh trace rooted at the replay:
			// the original trace closed when the run stalled.
			sc := e.journal.NewScope("workflow", "dlq-replay", at,
				events.A("workflow", name), events.A("run", run.ID))
			run.sc = sc
			run.Invocation.Trace = sc
			run.Invocation.Clock.AdvanceTo(at)
			run.done = false
		}
		st.Status = StepPending
		st.Error = ""
		st.enqueued = false
	}
	redelivered := int64(len(recs))
	wf.dlqOffset += redelivered
	wf.dlqDepth.Add(-redelivered)
	e.dlqRedelivered.Add(redelivered)
	for _, run := range out {
		if err := e.enqueueReady(wf, run); err != nil {
			return out, err
		}
	}
	e.drive(wf)
	for _, run := range out {
		e.finalize(wf, run)
	}
	return out, nil
}
