package workflow_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/events"
	"repro/internal/faults"
	"repro/internal/lang"
	"repro/internal/metrics"
	"repro/internal/msgbus"
	"repro/internal/platform"
	"repro/internal/runtime"
	"repro/internal/workflow"
)

// fakeInvoker is a scripted function backend honoring the platform's
// chained-invocation contract: with opts.Parent set, the call shares
// the parent's clock and breakdown, exactly as core.Framework does.
type fakeInvoker struct {
	handlers map[string]func(params map[string]any) (any, error)
	calls    []string
	params   map[string][]map[string]any
	cost     time.Duration
}

func newFakeInvoker() *fakeInvoker {
	return &fakeInvoker{
		handlers: make(map[string]func(map[string]any) (any, error)),
		params:   make(map[string][]map[string]any),
		cost:     time.Millisecond,
	}
}

func (f *fakeInvoker) handle(name string, fn func(map[string]any) (any, error)) {
	f.handlers[name] = fn
}

func (f *fakeInvoker) Invoke(name string, params lang.Value, opts platform.InvokeOptions) (*platform.Invocation, error) {
	inv := opts.Parent
	if inv == nil {
		inv = platform.NewInvocation(name)
	}
	inv.Clock.Advance(f.cost)
	var in map[string]any
	if gv, err := runtime.ToGo(params); err == nil {
		in, _ = gv.(map[string]any)
	}
	f.calls = append(f.calls, name)
	f.params[name] = append(f.params[name], in)
	h := f.handlers[name]
	if h == nil {
		return inv, fmt.Errorf("fake: unknown function %q", name)
	}
	res, err := h(in)
	if err != nil {
		return inv, err
	}
	v, cerr := runtime.FromGo(res)
	if cerr != nil {
		return inv, cerr
	}
	inv.Result = v
	return inv, nil
}

// harness bundles one engine with its substrate.
type harness struct {
	bus     *msgbus.Broker
	journal *events.Journal
	reg     *metrics.Registry
	inv     *fakeInvoker
	eng     *workflow.Engine
}

func newHarness(t *testing.T, opts workflow.Options) *harness {
	t.Helper()
	h := &harness{
		bus:     msgbus.NewBroker(),
		journal: events.NewJournal(0),
		reg:     metrics.NewRegistry(),
		inv:     newFakeInvoker(),
	}
	h.bus.Instrument(h.reg)
	h.eng = workflow.New(h.bus, h.journal, h.reg, h.inv, opts)
	return h
}

func (h *harness) counter(name string) int64 {
	return h.reg.Counter(name).Value()
}

func TestSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		spec workflow.Spec
		want string
	}{
		{"no name", workflow.Spec{Steps: []workflow.Step{{ID: "a", Function: "f"}}}, "needs a name"},
		{"no steps", workflow.Spec{Name: "w"}, "at least one step"},
		{"dup id", workflow.Spec{Name: "w", Steps: []workflow.Step{
			{ID: "a", Function: "f"}, {ID: "a", Function: "g"}}}, "duplicate step id"},
		{"unknown dep", workflow.Spec{Name: "w", Steps: []workflow.Step{
			{ID: "a", Function: "f", After: []string{"zz"}}}}, "unknown step"},
		{"condition outside after", workflow.Spec{Name: "w", Steps: []workflow.Step{
			{ID: "a", Function: "f"},
			{ID: "b", Function: "g", When: &workflow.Condition{Step: "a", Equals: "1"}}}},
			"not in its after list"},
		{"cycle", workflow.Spec{Name: "w", Steps: []workflow.Step{
			{ID: "a", Function: "f", After: []string{"b"}},
			{ID: "b", Function: "g", After: []string{"a"}}}}, "cycle"},
	}
	for _, tc := range cases {
		err := tc.spec.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

func TestParseSpec(t *testing.T) {
	js := `{
	  "name": "demo",
	  "steps": [
	    {"id": "a", "function": "fn-a"},
	    {"id": "b", "function": "fn-b", "after": ["a"],
	     "when": {"step": "a", "key": "kind", "equals": "x"},
	     "input": {"v": "$steps.a.kind"}},
	    {"id": "c", "function": "fn-c", "after": ["a"], "input_from": "$steps.a"}
	  ]
	}`
	spec, err := workflow.ParseSpec([]byte(js))
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if spec.Name != "demo" || len(spec.Steps) != 3 {
		t.Fatalf("parsed %q with %d steps", spec.Name, len(spec.Steps))
	}
	if spec.Steps[1].When == nil || spec.Steps[1].When.Equals != "x" {
		t.Fatalf("when clause lost: %+v", spec.Steps[1])
	}
	if spec.Steps[2].InputFrom != "$steps.a" {
		t.Fatalf("input_from lost: %+v", spec.Steps[2])
	}
	if _, err := workflow.ParseSpec([]byte(`{"name": "bad"}`)); err == nil {
		t.Fatal("ParseSpec accepted a spec without steps")
	}
}

func TestChainInputMappingAndTrace(t *testing.T) {
	h := newHarness(t, workflow.Options{})
	h.inv.handle("validate", func(in map[string]any) (any, error) {
		return map[string]any{"doc": in["payload"], "ok": true}, nil
	})
	h.inv.handle("persist", func(in map[string]any) (any, error) {
		if in["ok"] != true {
			return nil, fmt.Errorf("persist got %v", in)
		}
		return map[string]any{"rev": "1-a"}, nil
	})
	h.inv.handle("notify", func(in map[string]any) (any, error) {
		return map[string]any{"sent": in["rev"]}, nil
	})
	spec := &workflow.Spec{Name: "ingest", Steps: []workflow.Step{
		{ID: "validate", Function: "validate", Input: map[string]any{"payload": "$input.payload"}},
		{ID: "persist", Function: "persist", After: []string{"validate"}, InputFrom: "$steps.validate"},
		{ID: "notify", Function: "notify", After: []string{"persist"},
			Input: map[string]any{"rev": "$steps.persist.rev", "tag": "done"}},
	}}
	if err := h.eng.Register(spec); err != nil {
		t.Fatalf("Register: %v", err)
	}
	run, err := h.eng.Run("ingest", map[string]any{"payload": "w-1"}, 5*time.Millisecond)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if run.Status != workflow.RunCompleted {
		t.Fatalf("run status %q, want completed", run.Status)
	}
	if got := h.inv.calls; strings.Join(got, ",") != "validate,persist,notify" {
		t.Fatalf("call order %v", got)
	}
	if p := h.inv.params["validate"][0]; p["payload"] != "w-1" {
		t.Fatalf("$input.payload resolved to %v", p["payload"])
	}
	if p := h.inv.params["persist"][0]; p["doc"] != "w-1" || p["ok"] != true {
		t.Fatalf("input_from gave persist %v", p)
	}
	if p := h.inv.params["notify"][0]; p["rev"] != "1-a" || p["tag"] != "done" {
		t.Fatalf("mixed literal/ref input gave notify %v", p)
	}
	if got := h.counter("workflow_steps_completed_total"); got != 3 {
		t.Fatalf("steps_completed = %d, want 3", got)
	}
	if got := h.counter("workflow_steps_started_total"); got != 3 {
		t.Fatalf("steps_started = %d, want 3", got)
	}

	// The whole run — workflow span, step spans, produce/consume batch
	// events — must share ONE trace.
	evs := h.journal.Trace(run.TraceID())
	if len(evs) == 0 {
		t.Fatal("run trace is empty")
	}
	names := make(map[string]int)
	for _, e := range evs {
		names[e.Component+"/"+e.Name]++
	}
	if names["workflow/step"] != 3 {
		t.Fatalf("trace has %d workflow/step begin events, want 3 (%v)", names["workflow/step"], names)
	}
	if names["msgbus/consume-batch"] == 0 || names["msgbus/produce-batch"] == 0 {
		t.Fatalf("trace missing bus batch events: %v", names)
	}
	for _, e := range h.journal.Events() {
		if e.Trace != run.TraceID() {
			t.Fatalf("event %s/%s escaped the run trace", e.Component, e.Name)
		}
	}
}

func TestFanOutFanInAndBranches(t *testing.T) {
	h := newHarness(t, workflow.Options{})
	for _, name := range []string{"split", "left", "right", "join", "cold"} {
		name := name
		h.inv.handle(name, func(in map[string]any) (any, error) {
			return map[string]any{"from": name, "kind": "warm"}, nil
		})
	}
	spec := &workflow.Spec{Name: "diamond", Steps: []workflow.Step{
		{ID: "split", Function: "split"},
		{ID: "left", Function: "left", After: []string{"split"}},
		{ID: "right", Function: "right", After: []string{"split"}},
		// Conditional branch that must NOT run: split reports warm.
		{ID: "cold", Function: "cold", After: []string{"split"},
			When: &workflow.Condition{Step: "split", Key: "kind", Equals: "cold"}},
		{ID: "join", Function: "join", After: []string{"left", "right", "cold"},
			Input: map[string]any{"l": "$steps.left.from", "r": "$steps.right.from"}},
	}}
	if err := h.eng.Register(spec); err != nil {
		t.Fatalf("Register: %v", err)
	}
	run, err := h.eng.Run("diamond", nil, 0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if run.Status != workflow.RunCompleted {
		t.Fatalf("run status %q, want completed", run.Status)
	}
	states := map[string]string{}
	for _, st := range run.Steps(h.eng) {
		states[st.ID] = st.Status
	}
	want := map[string]string{
		"split": "completed", "left": "completed", "right": "completed",
		"cold": "skipped", "join": "completed",
	}
	for id, s := range want {
		if states[id] != s {
			t.Fatalf("step %s status %q, want %q (all: %v)", id, states[id], s, states)
		}
	}
	// The join fired after the skipped branch and saw both fan-out
	// results.
	if p := h.inv.params["join"][0]; p["l"] != "left" || p["r"] != "right" {
		t.Fatalf("join params %v", p)
	}
	if got := h.counter("workflow_steps_skipped_total"); got != 1 {
		t.Fatalf("steps_skipped = %d, want 1", got)
	}
	if h.counter("workflow_steps_dead_total") != 0 {
		t.Fatal("no step should have died")
	}
}

func TestSkipCascade(t *testing.T) {
	h := newHarness(t, workflow.Options{})
	h.inv.handle("head", func(in map[string]any) (any, error) {
		return map[string]any{"go": "no"}, nil
	})
	h.inv.handle("gated", func(in map[string]any) (any, error) { return "ran", nil })
	h.inv.handle("tail", func(in map[string]any) (any, error) { return "ran", nil })
	spec := &workflow.Spec{Name: "cascade", Steps: []workflow.Step{
		{ID: "head", Function: "head"},
		{ID: "gated", Function: "gated", After: []string{"head"},
			When: &workflow.Condition{Step: "head", Key: "go", Equals: "yes"}},
		{ID: "tail", Function: "tail", After: []string{"gated"}},
	}}
	if err := h.eng.Register(spec); err != nil {
		t.Fatalf("Register: %v", err)
	}
	run, err := h.eng.Run("cascade", nil, 0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if run.Status != workflow.RunCompleted {
		t.Fatalf("run status %q, want completed (skips are terminal-OK)", run.Status)
	}
	for _, st := range run.Steps(h.eng) {
		if st.ID != "head" && st.Status != workflow.StepSkipped {
			t.Fatalf("step %s status %q, want skipped", st.ID, st.Status)
		}
	}
	if len(h.inv.params["gated"])+len(h.inv.params["tail"]) != 0 {
		t.Fatal("skipped steps were invoked")
	}
}

func TestRetryThenComplete(t *testing.T) {
	h := newHarness(t, workflow.Options{Retry: faults.RetryPolicy{
		MaxAttempts: 3,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  4 * time.Millisecond,
		Multiplier:  2,
	}})
	tries := 0
	h.inv.handle("flaky", func(in map[string]any) (any, error) {
		tries++
		if tries < 3 {
			return nil, fmt.Errorf("transient: %w", faults.ErrInjected)
		}
		return "ok", nil
	})
	spec := &workflow.Spec{Name: "w", Steps: []workflow.Step{{ID: "s", Function: "flaky"}}}
	if err := h.eng.Register(spec); err != nil {
		t.Fatalf("Register: %v", err)
	}
	run, err := h.eng.Run("w", nil, 0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if run.Status != workflow.RunCompleted {
		t.Fatalf("run status %q after retries, want completed", run.Status)
	}
	if got := h.counter("workflow_steps_retried_total"); got != 2 {
		t.Fatalf("steps_retried = %d, want 2", got)
	}
	if st := run.Steps(h.eng)[0]; st.Attempts != 3 {
		t.Fatalf("step attempts = %d, want 3", st.Attempts)
	}
}

func TestFanInWithDeadBranchAndReplay(t *testing.T) {
	h := newHarness(t, workflow.Options{Retry: faults.RetryPolicy{
		MaxAttempts: 2,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  2 * time.Millisecond,
		Multiplier:  2,
	}})
	broken := true
	h.inv.handle("split", func(in map[string]any) (any, error) { return "ok", nil })
	h.inv.handle("good", func(in map[string]any) (any, error) { return "ok", nil })
	h.inv.handle("bad", func(in map[string]any) (any, error) {
		if broken {
			// A permanent error: retries exhaust, the step dead-letters.
			return nil, fmt.Errorf("transient: %w", faults.ErrInjected)
		}
		return "fixed", nil
	})
	h.inv.handle("join", func(in map[string]any) (any, error) { return "joined", nil })
	spec := &workflow.Spec{Name: "frag", Steps: []workflow.Step{
		{ID: "split", Function: "split"},
		{ID: "good", Function: "good", After: []string{"split"}},
		{ID: "bad", Function: "bad", After: []string{"split"}},
		{ID: "join", Function: "join", After: []string{"good", "bad"}},
	}}
	if err := h.eng.Register(spec); err != nil {
		t.Fatalf("Register: %v", err)
	}
	run, err := h.eng.Run("frag", nil, 0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if run.Status != workflow.RunStalled {
		t.Fatalf("run status %q, want stalled (dead branch blocks the join)", run.Status)
	}
	states := map[string]string{}
	for _, st := range run.Steps(h.eng) {
		states[st.ID] = st.Status
	}
	if states["bad"] != workflow.StepDead || states["join"] != workflow.StepPending {
		t.Fatalf("states %v: want bad=dead, join=pending", states)
	}
	recs, err := h.eng.DLQ("frag")
	if err != nil || len(recs) != 1 {
		t.Fatalf("DLQ = %v, %v; want one record", recs, err)
	}
	if recs[0].Step != "bad" || recs[0].Attempts != 2 {
		t.Fatalf("DLQ record %+v", recs[0])
	}
	if got := h.reg.Gauge(metrics.Name("workflow_dlq_depth", "workflow", "frag")).Value(); got != 1 {
		t.Fatalf("dlq_depth = %d, want 1", got)
	}

	// Deploy the fix, replay the dead letters: the run resumes and the
	// blocked join completes.
	broken = false
	resumed, err := h.eng.ReplayDLQ("frag", 50*time.Millisecond)
	if err != nil {
		t.Fatalf("ReplayDLQ: %v", err)
	}
	if len(resumed) != 1 || resumed[0].ID != run.ID {
		t.Fatalf("resumed %v, want the stalled run", resumed)
	}
	if run.Status != workflow.RunCompleted {
		t.Fatalf("run status %q after replay, want completed", run.Status)
	}
	for _, st := range run.Steps(h.eng) {
		if st.Status != workflow.StepCompleted {
			t.Fatalf("step %s status %q after replay", st.ID, st.Status)
		}
	}
	if got := h.reg.Gauge(metrics.Name("workflow_dlq_depth", "workflow", "frag")).Value(); got != 0 {
		t.Fatalf("dlq_depth = %d after replay, want 0", got)
	}
	if got := h.counter("workflow_dlq_redelivered_total"); got != 1 {
		t.Fatalf("dlq_redelivered = %d, want 1", got)
	}
	// Replaying an empty DLQ is a no-op.
	if again, err := h.eng.ReplayDLQ("frag", time.Second); err != nil || len(again) != 0 {
		t.Fatalf("second replay = %v, %v; want empty", again, err)
	}
}

func TestDuplicateDeliveryIsCounted(t *testing.T) {
	h := newHarness(t, workflow.Options{})
	h.inv.handle("f", func(in map[string]any) (any, error) { return "ok", nil })
	spec := &workflow.Spec{Name: "dup", Steps: []workflow.Step{{ID: "a", Function: "f"}}}
	if err := h.eng.Register(spec); err != nil {
		t.Fatalf("Register: %v", err)
	}
	run, err := h.eng.Run("dup", nil, 0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Simulate an at-least-once redelivery: the broker replays the
	// first run's step message; the next drive loop must drop it as a
	// duplicate, not re-execute it.
	body, _ := json.Marshal(map[string]string{"run": run.ID, "step": "a"})
	if _, _, err := h.bus.ProduceTracedAt("wf-dup-steps", run.ID, body, time.Millisecond, nil); err != nil {
		t.Fatalf("produce duplicate: %v", err)
	}
	if _, err := h.eng.Run("dup", nil, 2*time.Millisecond); err != nil {
		t.Fatalf("second run: %v", err)
	}
	if got := h.counter("workflow_duplicate_deliveries_total"); got != 1 {
		t.Fatalf("duplicate_deliveries = %d, want 1", got)
	}
	if got := h.counter("workflow_steps_started_total"); got != 2 {
		t.Fatalf("steps_started = %d, want 2 (duplicate must not re-execute)", got)
	}
}

// dlqScenario runs a fixed multi-run scenario under a seeded fault
// plane and returns the DLQ contents plus the full journal dump —
// the determinism witnesses.
func dlqScenario(t *testing.T, seed uint64) (string, []byte) {
	t.Helper()
	h := newHarness(t, workflow.Options{Retry: faults.RetryPolicy{
		MaxAttempts: 2,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  2 * time.Millisecond,
		Multiplier:  2,
		Seed:        seed,
	}})
	plane := faults.NewPlane(seed)
	plane.SetProfile(faults.SiteBusProduce, faults.Profile{ErrorRate: 0.2})
	plane.SetProfile(faults.SiteBusConsume, faults.Profile{ErrorRate: 0.2})
	h.bus.AttachFaults(plane)
	h.inv.handle("work", func(in map[string]any) (any, error) { return "ok", nil })
	poisoned := 0
	h.inv.handle("poison", func(in map[string]any) (any, error) {
		poisoned++
		return nil, fmt.Errorf("poison pill %d: %w", poisoned, faults.ErrInjected)
	})
	spec := &workflow.Spec{Name: "storm", Steps: []workflow.Step{
		{ID: "a", Function: "work"},
		{ID: "b", Function: "poison", After: []string{"a"}},
		{ID: "c", Function: "work", After: []string{"a"}},
	}}
	if err := h.eng.Register(spec); err != nil {
		t.Fatalf("Register: %v", err)
	}
	for i := 0; i < 6; i++ {
		// Under a 20% bus fault rate an enqueue can exhaust its retries
		// and stall the run — that is part of the deterministic
		// schedule, not a test failure.
		h.eng.Run("storm", map[string]any{"i": i}, time.Duration(i)*10*time.Millisecond)
	}
	recs, err := h.eng.DLQ("storm")
	if err != nil {
		t.Fatalf("DLQ: %v", err)
	}
	if len(recs) == 0 {
		t.Fatal("fault storm produced no dead letters")
	}
	dump, _ := json.Marshal(recs)
	var nd bytes.Buffer
	if err := events.WriteNDJSON(&nd, h.journal.Events()); err != nil {
		t.Fatalf("WriteNDJSON: %v", err)
	}
	return string(dump), nd.Bytes()
}

func TestDLQRedeliveryDeterminism(t *testing.T) {
	d1, n1 := dlqScenario(t, 42)
	d2, n2 := dlqScenario(t, 42)
	if d1 != d2 {
		t.Fatalf("same seed produced different DLQ contents:\n%s\nvs\n%s", d1, d2)
	}
	if !bytes.Equal(n1, n2) {
		t.Fatal("same seed produced different event journals")
	}
	// The seed drives the bus fault schedule: a different seed must
	// yield a different retry/fault event history. (DLQ *contents* can
	// legitimately coincide — the poison step fails identically — so
	// the journal is the cross-seed witness.)
	_, n3 := dlqScenario(t, 43)
	if bytes.Equal(n1, n3) {
		t.Fatal("different seeds produced identical event journals (suspicious)")
	}
}

func TestRunErrors(t *testing.T) {
	h := newHarness(t, workflow.Options{})
	if _, err := h.eng.Run("ghost", nil, 0); err == nil {
		t.Fatal("running an unregistered workflow succeeded")
	}
	if _, err := h.eng.DLQ("ghost"); err == nil {
		t.Fatal("DLQ of an unregistered workflow succeeded")
	}
	if _, err := h.eng.ReplayDLQ("ghost", 0); err == nil {
		t.Fatal("replay of an unregistered workflow succeeded")
	}
	spec := &workflow.Spec{Name: "w", Steps: []workflow.Step{{ID: "a", Function: "f"}}}
	if err := h.eng.Register(spec); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := h.eng.Register(spec); err == nil {
		t.Fatal("double registration succeeded")
	}
	// Unknown function: fail-fast policy dead-letters the step.
	run, err := h.eng.Run("w", nil, 0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if run.Status != workflow.RunStalled {
		t.Fatalf("run status %q, want stalled", run.Status)
	}
	if errors.Is(err, nil) && h.counter("workflow_steps_dead_total") != 1 {
		t.Fatal("unknown function did not dead-letter")
	}
}

func TestDoneEventCarriesStepCounts(t *testing.T) {
	h := newHarness(t, workflow.Options{})
	h.inv.handle("head", func(in map[string]any) (any, error) {
		return map[string]any{"go": "no"}, nil
	})
	h.inv.handle("gated", func(in map[string]any) (any, error) { return "ran", nil })
	spec := &workflow.Spec{Name: "counted", Steps: []workflow.Step{
		{ID: "head", Function: "head"},
		{ID: "gated", Function: "gated", After: []string{"head"},
			When: &workflow.Condition{Step: "head", Key: "go", Equals: "yes"}},
	}}
	if err := h.eng.Register(spec); err != nil {
		t.Fatalf("Register: %v", err)
	}
	run, err := h.eng.Run("counted", nil, 0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	// The run's trace must end with a terminal workflow:done instant
	// carrying the per-run step counts, so consumers (the insight
	// engine, DAG dashboards) can close the run without scanning for
	// the last step event.
	var done *events.Event
	for _, ev := range h.journal.Trace(run.TraceID()) {
		if ev.Kind == events.KindInstant && ev.Component == "workflow" && ev.Name == "done" {
			ev := ev
			done = &ev
		}
	}
	if done == nil {
		t.Fatal("no workflow:done instant in the run trace")
	}
	attrs := map[string]string{}
	for _, a := range done.Attrs {
		attrs[a.Key] = a.Value
	}
	want := map[string]string{
		"status":          string(workflow.RunCompleted),
		"steps_total":     "2",
		"steps_completed": "1",
		"steps_skipped":   "1",
		"steps_dead":      "0",
		"steps_pending":   "0",
	}
	for k, v := range want {
		if attrs[k] != v {
			t.Errorf("done attr %s = %q, want %q (attrs: %v)", k, attrs[k], v, attrs)
		}
	}
	if attrs["run"] != run.ID {
		t.Errorf("done attr run = %q, want %q", attrs["run"], run.ID)
	}
	// It must be the trace's final event.
	trace := h.journal.Trace(run.TraceID())
	last := trace[len(trace)-1]
	if !(last.Kind == events.KindInstant && last.Name == "done") &&
		!(last.Kind == events.KindEnd) {
		t.Errorf("trace ends with %v %s:%s, want the done instant (or the root close)", last.Kind, last.Component, last.Name)
	}
}
