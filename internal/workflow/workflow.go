// Package workflow is the function-composition layer over the
// simulated platform: a deterministic, virtual-clock engine that
// executes DAGs of deployed functions — sequential chains, fan-out /
// fan-in joins, and conditional branches on step output — with
// at-least-once step delivery over the message bus (internal/msgbus),
// per-step retries (faults.Retrier), and retry-exhausted steps routed
// to a per-workflow dead-letter topic that supports replayable
// redelivery.
//
// A workflow run is one end-to-end request: every step executes as a
// chained child invocation of the run's parent invocation, so the run
// accumulates a single latency breakdown on one virtual clock and the
// whole DAG renders as one Perfetto trace (workflow run span → step
// spans → the platform's invoke-stage spans), exactly like the paper's
// Figure 9 application chains.
//
// Runs start three ways: directly (Engine.Run), from cron-style timer
// triggers on the virtual clock (AddCron + Tick), or from CouchDB
// change-feed triggers (AddChangeFeed + Drain) — the dashed
// "database-triggered chain" of Figure 8(b) as a first-class source.
package workflow

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/faults"
)

// Condition gates a step on another step's output.
type Condition struct {
	// Step is the producing step inspected; it must be one of the
	// gated step's After dependencies.
	Step string `json:"step"`
	// Key selects a field of the producing step's result map; empty
	// compares the whole result.
	Key string `json:"key,omitempty"`
	// Equals is the string form of the required value (results are
	// compared via their canonical string rendering).
	Equals string `json:"equals"`
}

// Step is one node of a workflow DAG.
type Step struct {
	// ID names the step inside its workflow.
	ID string `json:"id"`
	// Function is the deployed function the step invokes.
	Function string `json:"function"`
	// After lists step IDs that must reach a terminal state before
	// this step is enqueued (empty = a root step).
	After []string `json:"after,omitempty"`
	// When, if set, skips the step unless the referenced step's output
	// matches. A skipped step is terminal: dependents still run (a
	// branch join), unless every one of their parents skipped.
	When *Condition `json:"when,omitempty"`
	// Input maps the step's parameters. String values starting with
	// "$input" or "$steps.<id>" are resolved against the run input and
	// prior step outputs ("$input.key", "$steps.validate",
	// "$steps.intent.intent"); everything else passes through
	// literally, recursively for nested maps and lists. A nil Input
	// passes the run input verbatim.
	Input map[string]any `json:"input,omitempty"`
	// InputFrom, when set, replaces the whole parameter map with one
	// resolved reference ("$steps.validate", "$input") that must
	// evaluate to a map — the step receives a prior step's document
	// as-is, the way an imperative chain passes its result along.
	// Takes precedence over Input.
	InputFrom string `json:"input_from,omitempty"`
	// Retry overrides the engine's per-step retry policy for this step
	// (programmatic specs only; not part of the JSON format).
	Retry *faults.RetryPolicy `json:"-"`
}

// Spec is a declarative workflow: a named DAG of steps.
type Spec struct {
	Name  string `json:"name"`
	Steps []Step `json:"steps"`
}

// ParseSpec decodes and validates a JSON workflow spec (the shape
// POST /workflows accepts; see docs/workflows.md).
func ParseSpec(data []byte) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("workflow: spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks the spec is a well-formed DAG: named, non-empty,
// unique step IDs, dependencies that exist, conditions that reference
// a dependency, and no cycles.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("workflow: spec needs a name")
	}
	if len(s.Steps) == 0 {
		return fmt.Errorf("workflow %q: needs at least one step", s.Name)
	}
	byID := make(map[string]*Step, len(s.Steps))
	for i := range s.Steps {
		st := &s.Steps[i]
		if st.ID == "" {
			return fmt.Errorf("workflow %q: step %d needs an id", s.Name, i)
		}
		if st.Function == "" {
			return fmt.Errorf("workflow %q: step %q needs a function", s.Name, st.ID)
		}
		if _, dup := byID[st.ID]; dup {
			return fmt.Errorf("workflow %q: duplicate step id %q", s.Name, st.ID)
		}
		byID[st.ID] = st
	}
	for i := range s.Steps {
		st := &s.Steps[i]
		for _, dep := range st.After {
			if _, ok := byID[dep]; !ok {
				return fmt.Errorf("workflow %q: step %q depends on unknown step %q", s.Name, st.ID, dep)
			}
		}
		if st.When != nil {
			found := false
			for _, dep := range st.After {
				if dep == st.When.Step {
					found = true
				}
			}
			if !found {
				return fmt.Errorf("workflow %q: step %q condition references %q, which is not in its after list",
					s.Name, st.ID, st.When.Step)
			}
		}
	}
	if _, err := s.topoOrder(); err != nil {
		return err
	}
	return nil
}

// topoOrder returns step IDs in a deterministic topological order
// (spec order among ready steps), or an error naming a cycle member.
func (s *Spec) topoOrder() ([]string, error) {
	indeg := make(map[string]int, len(s.Steps))
	for i := range s.Steps {
		indeg[s.Steps[i].ID] = len(s.Steps[i].After)
	}
	var order []string
	done := make(map[string]bool, len(s.Steps))
	for len(order) < len(s.Steps) {
		progressed := false
		for i := range s.Steps {
			st := &s.Steps[i]
			if done[st.ID] || indeg[st.ID] != 0 {
				continue
			}
			done[st.ID] = true
			order = append(order, st.ID)
			for j := range s.Steps {
				for _, dep := range s.Steps[j].After {
					if dep == st.ID {
						indeg[s.Steps[j].ID]--
					}
				}
			}
			progressed = true
		}
		if !progressed {
			var stuck []string
			for i := range s.Steps {
				if !done[s.Steps[i].ID] {
					stuck = append(stuck, s.Steps[i].ID)
				}
			}
			return nil, fmt.Errorf("workflow %q: dependency cycle through %s", s.Name, strings.Join(stuck, ", "))
		}
	}
	return order, nil
}

// step returns the step with the given ID (nil when absent).
func (s *Spec) step(id string) *Step {
	for i := range s.Steps {
		if s.Steps[i].ID == id {
			return &s.Steps[i]
		}
	}
	return nil
}

// resolveInput materializes a step's parameter map against the run
// input and completed step outputs.
func resolveInput(st *Step, input map[string]any, results map[string]any) (map[string]any, error) {
	if st.InputFrom != "" {
		rv, err := resolveValue(st.InputFrom, input, results)
		if err != nil {
			return nil, fmt.Errorf("workflow: step %q input_from: %w", st.ID, err)
		}
		m, ok := rv.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("workflow: step %q input_from %q: resolved to %T, want a map", st.ID, st.InputFrom, rv)
		}
		return m, nil
	}
	if st.Input == nil {
		if input == nil {
			return map[string]any{}, nil
		}
		return input, nil
	}
	out := make(map[string]any, len(st.Input))
	for k, v := range st.Input {
		rv, err := resolveValue(v, input, results)
		if err != nil {
			return nil, fmt.Errorf("workflow: step %q input %q: %w", st.ID, k, err)
		}
		out[k] = rv
	}
	return out, nil
}

// resolveValue substitutes one "$input..." / "$steps..." reference (or
// recurses through nested containers); literals pass through.
func resolveValue(v any, input map[string]any, results map[string]any) (any, error) {
	switch v := v.(type) {
	case string:
		if !strings.HasPrefix(v, "$") {
			return v, nil
		}
		parts := strings.Split(v, ".")
		switch parts[0] {
		case "$input":
			switch len(parts) {
			case 1:
				return input, nil
			case 2:
				return input[parts[1]], nil
			}
			return nil, fmt.Errorf("reference %q nests too deep (one key max)", v)
		case "$steps":
			if len(parts) < 2 || len(parts) > 3 {
				return nil, fmt.Errorf("reference %q must be $steps.<id> or $steps.<id>.<key>", v)
			}
			res, ok := results[parts[1]]
			if !ok {
				return nil, fmt.Errorf("reference %q: step has no recorded output", v)
			}
			if len(parts) == 2 {
				return res, nil
			}
			m, ok := res.(map[string]any)
			if !ok {
				return nil, fmt.Errorf("reference %q: step output is not a map", v)
			}
			return m[parts[2]], nil
		}
		return nil, fmt.Errorf("unknown reference root %q (want $input or $steps)", parts[0])
	case map[string]any:
		out := make(map[string]any, len(v))
		for k, item := range v {
			rv, err := resolveValue(item, input, results)
			if err != nil {
				return nil, err
			}
			out[k] = rv
		}
		return out, nil
	case []any:
		out := make([]any, len(v))
		for i, item := range v {
			rv, err := resolveValue(item, input, results)
			if err != nil {
				return nil, err
			}
			out[i] = rv
		}
		return out, nil
	default:
		return v, nil
	}
}

// conditionValue renders a condition operand for comparison.
func conditionValue(v any) string {
	switch v := v.(type) {
	case nil:
		return "null"
	case float64:
		// Integral floats print without the trailing ".0" JSON round
		// trips would otherwise introduce.
		if v == float64(int64(v)) {
			return fmt.Sprintf("%d", int64(v))
		}
		return fmt.Sprintf("%v", v)
	default:
		return fmt.Sprintf("%v", v)
	}
}

// holds evaluates a condition against the producing step's output.
func (c *Condition) holds(results map[string]any) bool {
	res, ok := results[c.Step]
	if !ok {
		return false
	}
	v := res
	if c.Key != "" {
		m, ok := res.(map[string]any)
		if !ok {
			return false
		}
		v = m[c.Key]
	}
	return conditionValue(v) == c.Equals
}
