package workflow

import (
	"sort"
	"time"

	"repro/internal/couchdb"
	"repro/internal/metrics"
)

// Trigger source labels (the workflow_triggers_fired_total label
// values).
const (
	SourceCron       = "cron"
	SourceChangeFeed = "changefeed"
)

// firing is one pending trigger activation awaiting Drain.
type firing struct {
	workflow string
	source   string
	input    map[string]any
}

// cronTrigger fires a workflow on a fixed virtual-clock period.
type cronTrigger struct {
	id       int
	workflow string
	every    time.Duration
	next     time.Duration
	input    map[string]any
}

// AddCron schedules a workflow to run every `every` of virtual time,
// first at `offset`. Fire times are drift-free: the k-th firing is at
// exactly offset + k*every regardless of how unevenly Tick is called.
func (e *Engine) AddCron(workflow string, every, offset time.Duration, input map[string]any) {
	e.pendingMu.Lock()
	defer e.pendingMu.Unlock()
	e.cronSeq++
	e.crons = append(e.crons, &cronTrigger{
		id:       e.cronSeq,
		workflow: workflow,
		every:    every,
		next:     offset,
		input:    input,
	})
}

// Tick fires every cron trigger due at or before virtual time `now`.
// Each firing runs at its exact scheduled time (not at `now`), in
// (scheduled time, registration order) order, so delivery is
// deterministic however coarsely the caller advances the clock. The
// finished runs are returned in firing order.
func (e *Engine) Tick(now time.Duration) []*Run {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []*Run
	for {
		e.pendingMu.Lock()
		var due *cronTrigger
		for _, c := range e.crons {
			if c.next > now {
				continue
			}
			if due == nil || c.next < due.next || (c.next == due.next && c.id < due.id) {
				due = c
			}
		}
		if due != nil {
			due.next += due.every
		}
		e.pendingMu.Unlock()
		if due == nil {
			return out
		}
		e.triggerCounter(SourceCron).Inc()
		run, err := e.runLocked(due.workflow, due.input, due.next-due.every)
		if err == nil {
			out = append(out, run)
		}
	}
}

// NextCron returns the earliest scheduled cron fire time (and false
// when no cron is registered).
func (e *Engine) NextCron() (time.Duration, bool) {
	e.pendingMu.Lock()
	defer e.pendingMu.Unlock()
	var best time.Duration
	found := false
	for _, c := range e.crons {
		if !found || c.next < best {
			best, found = c.next, true
		}
	}
	return best, found
}

// AddChangeFeed subscribes a workflow to a CouchDB database's change
// feed. Each change passing `filter` (nil = all changes) queues one
// firing with `input(change)` as run input (nil input builds
// {"id", "seq", "deleted"} from the change). Queued firings run on the
// next Drain — change callbacks fire synchronously inside database
// writes, possibly mid-step, so activation is deferred rather than
// reentrant.
func (e *Engine) AddChangeFeed(db *couchdb.Database, workflow string, filter func(couchdb.Change) bool, input func(couchdb.Change) map[string]any) {
	db.Subscribe(func(ch couchdb.Change) {
		if filter != nil && !filter(ch) {
			return
		}
		var in map[string]any
		if input != nil {
			in = input(ch)
		} else {
			in = map[string]any{
				"id":      ch.ID,
				"seq":     int64(ch.Seq),
				"deleted": ch.Deleted,
			}
		}
		e.pendingMu.Lock()
		e.pending = append(e.pending, firing{workflow: workflow, source: SourceChangeFeed, input: in})
		e.pendingMu.Unlock()
	})
}

// Drain runs every queued change-feed firing at virtual time `at`,
// looping until the queue is empty (a triggered run may itself write
// to a watched database and queue more firings). Returns the finished
// runs in firing order.
func (e *Engine) Drain(at time.Duration) []*Run {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []*Run
	for {
		e.pendingMu.Lock()
		batch := e.pending
		e.pending = nil
		e.pendingMu.Unlock()
		if len(batch) == 0 {
			return out
		}
		for _, f := range batch {
			e.triggerCounter(f.source).Inc()
			run, err := e.runLocked(f.workflow, f.input, at)
			if err == nil {
				out = append(out, run)
			}
		}
	}
}

// PendingTriggers reports how many change-feed firings await Drain.
func (e *Engine) PendingTriggers() int {
	e.pendingMu.Lock()
	defer e.pendingMu.Unlock()
	return len(e.pending)
}

// triggerCounter returns the per-source firing counter, cached so the
// labeled name is composed once.
func (e *Engine) triggerCounter(source string) *metrics.Counter {
	c := e.triggers[source]
	if c == nil {
		c = e.reg.Counter(metrics.Name("workflow_triggers_fired_total", "source", source))
		e.triggers[source] = c
	}
	return c
}

// cronSchedule returns all cron next-fire times in ascending order
// (diagnostics).
func (e *Engine) cronSchedule() []time.Duration {
	e.pendingMu.Lock()
	defer e.pendingMu.Unlock()
	out := make([]time.Duration, 0, len(e.crons))
	for _, c := range e.crons {
		out = append(out, c.next)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
