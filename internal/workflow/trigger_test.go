package workflow_test

import (
	"testing"
	"time"

	"repro/internal/couchdb"
	"repro/internal/timeseries"
	"repro/internal/workflow"
)

// TestCronDriftAcrossSamplerWindows drives a cron trigger with
// deliberately uneven Tick cadence while a timeseries.Sampler windows
// the same virtual timeline, and asserts zero drift: the k-th firing
// happens at exactly offset + k*every no matter how coarsely the owner
// advances the clock, and the sampled run-counter series reconstructs
// the exact schedule.
func TestCronDriftAcrossSamplerWindows(t *testing.T) {
	h := newHarness(t, workflow.Options{})
	h.inv.handle("beat", func(in map[string]any) (any, error) { return "tick", nil })
	spec := &workflow.Spec{Name: "heartbeat", Steps: []workflow.Step{{ID: "b", Function: "beat"}}}
	if err := h.eng.Register(spec); err != nil {
		t.Fatalf("Register: %v", err)
	}
	const (
		every  = 10 * time.Millisecond
		offset = 3 * time.Millisecond
	)
	h.eng.AddCron("heartbeat", every, offset, map[string]any{"source": "cron"})

	sampler := timeseries.NewSampler(h.reg, 0)
	sampler.SetFilter(func(name string) bool {
		return name == `workflow_runs_total{workflow="heartbeat"}`
	})

	// Uneven tick cadence: short, long (spanning three fire times),
	// idle, long again. Sampler windows land between ticks.
	var fired []*workflow.Run
	ticks := []time.Duration{
		7 * time.Millisecond,
		29 * time.Millisecond,
		31 * time.Millisecond,
		60 * time.Millisecond,
	}
	for _, now := range ticks {
		fired = append(fired, h.eng.Tick(now)...)
		sampler.Sample(now)
	}

	want := []time.Duration{3, 13, 23, 33, 43, 53}
	for i := range want {
		want[i] *= time.Millisecond
	}
	if len(fired) != len(want) {
		t.Fatalf("fired %d runs, want %d", len(fired), len(want))
	}
	for i, run := range fired {
		if run.StartedAt != want[i] {
			t.Fatalf("firing %d at %v, want %v (drift)", i, run.StartedAt, want[i])
		}
		if run.Status != workflow.RunCompleted {
			t.Fatalf("firing %d status %q", i, run.Status)
		}
	}
	if next, ok := h.eng.NextCron(); !ok || next != 63*time.Millisecond {
		t.Fatalf("next cron at %v, want 63ms", next)
	}

	// The sampled series must reconstruct the schedule: cumulative
	// firings at each window boundary.
	var snap timeseries.SeriesSnapshot
	found := false
	for _, s := range sampler.Snapshot() {
		if s.Name == `workflow_runs_total{workflow="heartbeat"}` {
			snap, found = s, true
		}
	}
	if !found {
		t.Fatalf("sampler recorded no heartbeat run series (have %v)", sampler.Names())
	}
	wantCum := []float64{1, 3, 3, 6}
	if len(snap.Points) != len(wantCum) {
		t.Fatalf("series has %d points, want %d", len(snap.Points), len(wantCum))
	}
	for i, p := range snap.Points {
		if p.TS != ticks[i] || p.Value != wantCum[i] {
			t.Fatalf("window %d: sampled (%v, %v), want (%v, %v)", i, p.TS, p.Value, ticks[i], wantCum[i])
		}
	}
	if got := h.counter(`workflow_triggers_fired_total{source="cron"}`); got != 6 {
		t.Fatalf("cron triggers fired = %d, want 6", got)
	}
}

// TestCronTieBreak: two crons due at the same instant fire in
// registration order.
func TestCronTieBreak(t *testing.T) {
	h := newHarness(t, workflow.Options{})
	h.inv.handle("f", func(in map[string]any) (any, error) { return "ok", nil })
	for _, name := range []string{"first", "second"} {
		spec := &workflow.Spec{Name: name, Steps: []workflow.Step{{ID: "s", Function: "f"}}}
		if err := h.eng.Register(spec); err != nil {
			t.Fatalf("Register: %v", err)
		}
	}
	h.eng.AddCron("first", 10*time.Millisecond, 5*time.Millisecond, nil)
	h.eng.AddCron("second", 10*time.Millisecond, 5*time.Millisecond, nil)
	fired := h.eng.Tick(5 * time.Millisecond)
	if len(fired) != 2 || fired[0].Workflow != "first" || fired[1].Workflow != "second" {
		order := make([]string, len(fired))
		for i, r := range fired {
			order[i] = r.Workflow
		}
		t.Fatalf("tie fired in order %v, want [first second]", order)
	}
}

func TestChangeFeedTrigger(t *testing.T) {
	h := newHarness(t, workflow.Options{})
	var analyzed []map[string]any
	h.inv.handle("analyze", func(in map[string]any) (any, error) {
		analyzed = append(analyzed, in)
		return "done", nil
	})
	spec := &workflow.Spec{Name: "analysis", Steps: []workflow.Step{{ID: "a", Function: "analyze"}}}
	if err := h.eng.Register(spec); err != nil {
		t.Fatalf("Register: %v", err)
	}
	couch := couchdb.NewServer()
	db := couch.CreateDB("wages")
	h.eng.AddChangeFeed(db, "analysis",
		func(c couchdb.Change) bool { return !c.Deleted },
		nil)

	if _, err := db.Put(couchdb.Document{"_id": "wage-1", "base": int64(100)}); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if _, err := db.Put(couchdb.Document{"_id": "wage-2", "base": int64(200)}); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if got := h.eng.PendingTriggers(); got != 2 {
		t.Fatalf("pending triggers = %d, want 2 (activation must defer to Drain)", got)
	}
	if len(analyzed) != 0 {
		t.Fatal("change feed ran the workflow synchronously inside Put")
	}

	runs := h.eng.Drain(40 * time.Millisecond)
	if len(runs) != 2 {
		t.Fatalf("Drain produced %d runs, want 2", len(runs))
	}
	for i, run := range runs {
		if run.Status != workflow.RunCompleted {
			t.Fatalf("triggered run %d status %q", i, run.Status)
		}
		if run.StartedAt != 40*time.Millisecond {
			t.Fatalf("triggered run %d started at %v", i, run.StartedAt)
		}
	}
	// Default input carries the change metadata.
	if analyzed[0]["id"] != "wage-1" || analyzed[1]["id"] != "wage-2" {
		t.Fatalf("trigger inputs %v", analyzed)
	}
	if h.eng.PendingTriggers() != 0 {
		t.Fatal("Drain left pending triggers")
	}
	if got := h.counter(`workflow_triggers_fired_total{source="changefeed"}`); got != 2 {
		t.Fatalf("changefeed triggers fired = %d, want 2", got)
	}

	// The filter drops deletions.
	doc, _ := db.Get("wage-1")
	if err := db.Delete("wage-1", doc.Rev()); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if got := h.eng.PendingTriggers(); got != 0 {
		t.Fatalf("deletion queued a firing despite the filter (pending=%d)", got)
	}

	// Custom input functions shape the run input.
	h.eng.AddChangeFeed(db, "analysis",
		func(c couchdb.Change) bool { return c.ID == "wage-9" },
		func(c couchdb.Change) map[string]any {
			return map[string]any{"trigger": "db-change", "doc": c.ID}
		})
	if _, err := db.Put(couchdb.Document{"_id": "wage-9", "base": int64(1)}); err != nil {
		t.Fatalf("Put: %v", err)
	}
	runs = h.eng.Drain(50 * time.Millisecond)
	// The first (unfiltered) subscription also fires for wage-9.
	if len(runs) != 2 {
		t.Fatalf("Drain produced %d runs, want 2", len(runs))
	}
	last := analyzed[len(analyzed)-1]
	if last["trigger"] != "db-change" && analyzed[len(analyzed)-2]["trigger"] != "db-change" {
		t.Fatalf("custom input missing: %v", analyzed)
	}
}
