package runtime

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/lang"
)

// installBuiltins binds FaaSLang's standard library into the VM globals.
// These are the language-level builtins every runtime personality
// provides; host-bridge natives (file I/O, HTTP, queues, databases) are
// installed separately by the sandbox via InstallNatives.
func (r *Runtime) installBuiltins() {
	g := r.VM.Globals
	reg := func(name string, arity int, fn func(args []lang.Value) (lang.Value, error)) {
		g[name] = &lang.Native{Name: name, Arity: arity, Fn: fn}
	}

	reg("print", -1, func(args []lang.Value) (lang.Value, error) {
		parts := make([]string, len(args))
		for i, a := range args {
			parts[i] = lang.Format(a)
		}
		fmt.Fprintln(&r.Stdout, strings.Join(parts, " "))
		return nil, nil
	})

	reg("len", 1, func(args []lang.Value) (lang.Value, error) {
		switch v := args[0].(type) {
		case string:
			return int64(len(v)), nil
		case *lang.List:
			return int64(len(v.Items)), nil
		case *lang.Map:
			return int64(len(v.Items)), nil
		default:
			return nil, fmt.Errorf("len: unsupported type %s", lang.TypeOf(v))
		}
	})

	reg("str", 1, func(args []lang.Value) (lang.Value, error) {
		return lang.Format(args[0]), nil
	})

	reg("int", 1, func(args []lang.Value) (lang.Value, error) {
		switch v := args[0].(type) {
		case int64:
			return v, nil
		case float64:
			return int64(v), nil
		case string:
			n, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("int: cannot parse %q", v)
			}
			return n, nil
		case bool:
			if v {
				return int64(1), nil
			}
			return int64(0), nil
		default:
			return nil, fmt.Errorf("int: unsupported type %s", lang.TypeOf(v))
		}
	})

	reg("float", 1, func(args []lang.Value) (lang.Value, error) {
		switch v := args[0].(type) {
		case int64:
			return float64(v), nil
		case float64:
			return v, nil
		case string:
			f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
			if err != nil {
				return nil, fmt.Errorf("float: cannot parse %q", v)
			}
			return f, nil
		default:
			return nil, fmt.Errorf("float: unsupported type %s", lang.TypeOf(v))
		}
	})

	reg("type", 1, func(args []lang.Value) (lang.Value, error) {
		return lang.TypeOf(args[0]).String(), nil
	})

	reg("push", 2, func(args []lang.Value) (lang.Value, error) {
		l, ok := args[0].(*lang.List)
		if !ok {
			return nil, fmt.Errorf("push: first arg must be list, got %s", lang.TypeOf(args[0]))
		}
		l.Items = append(l.Items, args[1])
		return l, nil
	})

	reg("pop", 1, func(args []lang.Value) (lang.Value, error) {
		l, ok := args[0].(*lang.List)
		if !ok {
			return nil, fmt.Errorf("pop: first arg must be list, got %s", lang.TypeOf(args[0]))
		}
		if len(l.Items) == 0 {
			return nil, fmt.Errorf("pop: empty list")
		}
		v := l.Items[len(l.Items)-1]
		l.Items = l.Items[:len(l.Items)-1]
		return v, nil
	})

	reg("keys", 1, func(args []lang.Value) (lang.Value, error) {
		m, ok := args[0].(*lang.Map)
		if !ok {
			return nil, fmt.Errorf("keys: arg must be map, got %s", lang.TypeOf(args[0]))
		}
		out := &lang.List{}
		for _, k := range m.SortedKeys() {
			out.Items = append(out.Items, k)
		}
		return out, nil
	})

	reg("has", 2, func(args []lang.Value) (lang.Value, error) {
		m, ok := args[0].(*lang.Map)
		if !ok {
			return nil, fmt.Errorf("has: first arg must be map, got %s", lang.TypeOf(args[0]))
		}
		k, ok := args[1].(string)
		if !ok {
			return nil, fmt.Errorf("has: key must be string")
		}
		_, present := m.Items[k]
		return present, nil
	})

	reg("remove", 2, func(args []lang.Value) (lang.Value, error) {
		m, ok := args[0].(*lang.Map)
		if !ok {
			return nil, fmt.Errorf("remove: first arg must be map, got %s", lang.TypeOf(args[0]))
		}
		k, ok := args[1].(string)
		if !ok {
			return nil, fmt.Errorf("remove: key must be string")
		}
		delete(m.Items, k)
		return nil, nil
	})

	reg("range", 1, func(args []lang.Value) (lang.Value, error) {
		n, ok := args[0].(int64)
		if !ok {
			return nil, fmt.Errorf("range: arg must be int, got %s", lang.TypeOf(args[0]))
		}
		if n < 0 || n > 50_000_000 {
			return nil, fmt.Errorf("range: %d out of supported range", n)
		}
		items := make([]lang.Value, n)
		for i := int64(0); i < n; i++ {
			items[i] = i
		}
		return &lang.List{Items: items}, nil
	})

	reg("join", 2, func(args []lang.Value) (lang.Value, error) {
		l, ok := args[0].(*lang.List)
		if !ok {
			return nil, fmt.Errorf("join: first arg must be list")
		}
		sep, ok := args[1].(string)
		if !ok {
			return nil, fmt.Errorf("join: separator must be string")
		}
		parts := make([]string, len(l.Items))
		for i, v := range l.Items {
			parts[i] = lang.Format(v)
		}
		return strings.Join(parts, sep), nil
	})

	reg("split", 2, func(args []lang.Value) (lang.Value, error) {
		s, ok := args[0].(string)
		if !ok {
			return nil, fmt.Errorf("split: first arg must be string")
		}
		sep, ok := args[1].(string)
		if !ok {
			return nil, fmt.Errorf("split: separator must be string")
		}
		out := &lang.List{}
		for _, part := range strings.Split(s, sep) {
			out.Items = append(out.Items, part)
		}
		return out, nil
	})

	reg("substr", 3, func(args []lang.Value) (lang.Value, error) {
		s, ok := args[0].(string)
		if !ok {
			return nil, fmt.Errorf("substr: first arg must be string")
		}
		start, ok1 := args[1].(int64)
		length, ok2 := args[2].(int64)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("substr: start and length must be ints")
		}
		if start < 0 {
			start = 0
		}
		if start > int64(len(s)) {
			start = int64(len(s))
		}
		end := start + length
		if end > int64(len(s)) {
			end = int64(len(s))
		}
		if end < start {
			end = start
		}
		return s[start:end], nil
	})

	reg("contains", 2, func(args []lang.Value) (lang.Value, error) {
		switch c := args[0].(type) {
		case string:
			sub, ok := args[1].(string)
			if !ok {
				return nil, fmt.Errorf("contains: needle must be string")
			}
			return strings.Contains(c, sub), nil
		case *lang.List:
			for _, item := range c.Items {
				if lang.Equal(item, args[1]) {
					return true, nil
				}
			}
			return false, nil
		default:
			return nil, fmt.Errorf("contains: unsupported type %s", lang.TypeOf(c))
		}
	})

	reg("upper", 1, func(args []lang.Value) (lang.Value, error) {
		s, ok := args[0].(string)
		if !ok {
			return nil, fmt.Errorf("upper: arg must be string")
		}
		return strings.ToUpper(s), nil
	})

	reg("lower", 1, func(args []lang.Value) (lang.Value, error) {
		s, ok := args[0].(string)
		if !ok {
			return nil, fmt.Errorf("lower: arg must be string")
		}
		return strings.ToLower(s), nil
	})

	reg("trim", 1, func(args []lang.Value) (lang.Value, error) {
		s, ok := args[0].(string)
		if !ok {
			return nil, fmt.Errorf("trim: arg must be string")
		}
		return strings.TrimSpace(s), nil
	})

	reg("repeat", 2, func(args []lang.Value) (lang.Value, error) {
		s, ok := args[0].(string)
		if !ok {
			return nil, fmt.Errorf("repeat: first arg must be string")
		}
		n, ok := args[1].(int64)
		if !ok || n < 0 {
			return nil, fmt.Errorf("repeat: count must be a non-negative int")
		}
		if int64(len(s))*n > 64<<20 {
			return nil, fmt.Errorf("repeat: result too large")
		}
		return strings.Repeat(s, int(n)), nil
	})

	reg("abs", 1, func(args []lang.Value) (lang.Value, error) {
		switch v := args[0].(type) {
		case int64:
			if v < 0 {
				return -v, nil
			}
			return v, nil
		case float64:
			return math.Abs(v), nil
		default:
			return nil, fmt.Errorf("abs: unsupported type %s", lang.TypeOf(v))
		}
	})

	reg("min", 2, numPair("min", func(a, b float64) float64 { return math.Min(a, b) }))
	reg("max", 2, numPair("max", func(a, b float64) float64 { return math.Max(a, b) }))

	reg("floor", 1, func(args []lang.Value) (lang.Value, error) {
		switch v := args[0].(type) {
		case int64:
			return v, nil
		case float64:
			return int64(math.Floor(v)), nil
		default:
			return nil, fmt.Errorf("floor: unsupported type %s", lang.TypeOf(v))
		}
	})

	reg("sqrt", 1, func(args []lang.Value) (lang.Value, error) {
		switch v := args[0].(type) {
		case int64:
			return math.Sqrt(float64(v)), nil
		case float64:
			return math.Sqrt(v), nil
		default:
			return nil, fmt.Errorf("sqrt: unsupported type %s", lang.TypeOf(v))
		}
	})

	reg("json_encode", 1, func(args []lang.Value) (lang.Value, error) {
		goVal, err := ToGo(args[0])
		if err != nil {
			return nil, fmt.Errorf("json_encode: %w", err)
		}
		data, err := json.Marshal(goVal)
		if err != nil {
			return nil, fmt.Errorf("json_encode: %w", err)
		}
		return string(data), nil
	})

	reg("json_decode", 1, func(args []lang.Value) (lang.Value, error) {
		s, ok := args[0].(string)
		if !ok {
			return nil, fmt.Errorf("json_decode: arg must be string")
		}
		return DecodeJSON([]byte(s))
	})

	reg("now_ms", 0, func(args []lang.Value) (lang.Value, error) {
		return r.Clock.Now().Milliseconds(), nil
	})
}

func numPair(name string, fn func(a, b float64) float64) func(args []lang.Value) (lang.Value, error) {
	return func(args []lang.Value) (lang.Value, error) {
		af, aInt, err := asFloat(name, args[0])
		if err != nil {
			return nil, err
		}
		bf, bInt, err := asFloat(name, args[1])
		if err != nil {
			return nil, err
		}
		res := fn(af, bf)
		if aInt && bInt {
			return int64(res), nil
		}
		return res, nil
	}
}

func asFloat(name string, v lang.Value) (float64, bool, error) {
	switch v := v.(type) {
	case int64:
		return float64(v), true, nil
	case float64:
		return v, false, nil
	default:
		return 0, false, fmt.Errorf("%s: unsupported type %s", name, lang.TypeOf(v))
	}
}

// ToGo converts a FaaSLang value into plain Go data (for JSON encoding
// and host interop).
func ToGo(v lang.Value) (any, error) {
	switch v := v.(type) {
	case nil, bool, int64, float64, string:
		return v, nil
	case *lang.List:
		out := make([]any, len(v.Items))
		for i, item := range v.Items {
			g, err := ToGo(item)
			if err != nil {
				return nil, err
			}
			out[i] = g
		}
		return out, nil
	case *lang.Map:
		out := make(map[string]any, len(v.Items))
		for k, item := range v.Items {
			g, err := ToGo(item)
			if err != nil {
				return nil, err
			}
			out[k] = g
		}
		return out, nil
	default:
		return nil, fmt.Errorf("cannot convert %s to host data", lang.TypeOf(v))
	}
}

// FromGo converts plain Go data (JSON-shaped) into FaaSLang values.
func FromGo(v any) (lang.Value, error) {
	switch v := v.(type) {
	case nil, bool, int64, float64, string:
		return v, nil
	case int:
		return int64(v), nil
	case json.Number:
		if n, err := v.Int64(); err == nil {
			return n, nil
		}
		f, err := v.Float64()
		if err != nil {
			return nil, err
		}
		return f, nil
	case []any:
		out := &lang.List{Items: make([]lang.Value, len(v))}
		for i, item := range v {
			fv, err := FromGo(item)
			if err != nil {
				return nil, err
			}
			out.Items[i] = fv
		}
		return out, nil
	case map[string]any:
		out := lang.NewMap()
		for k, item := range v {
			fv, err := FromGo(item)
			if err != nil {
				return nil, err
			}
			out.Items[k] = fv
		}
		return out, nil
	default:
		return nil, fmt.Errorf("cannot convert %T to FaaSLang value", v)
	}
}

// DecodeJSON parses JSON bytes into FaaSLang values, preserving integers
// as int64.
func DecodeJSON(data []byte) (lang.Value, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.UseNumber()
	var raw any
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("json_decode: %w", err)
	}
	return FromGo(raw)
}

// EncodeJSON renders a FaaSLang value as JSON bytes.
func EncodeJSON(v lang.Value) ([]byte, error) {
	goVal, err := ToGo(v)
	if err != nil {
		return nil, err
	}
	return json.Marshal(goVal)
}
