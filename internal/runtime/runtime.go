// Package runtime implements the simulated language runtimes that run
// inside guests: a "nodejs" personality (auto-tiering JIT, V8-style) and
// a "python" personality (pure interpreter unless functions carry the
// @jit Numba annotation). A Runtime owns a FaaSLang VM, a JIT engine
// configured with the language's tier-up policy, and a calibrated cost
// model; every instruction executed and every compile charges virtual
// time to the runtime's clock.
package runtime

import (
	"bytes"
	"fmt"
	"time"

	"repro/internal/lang"
	"repro/internal/lang/bytecode"
	"repro/internal/lang/jit"
	"repro/internal/lang/vm"
	"repro/internal/vclock"
)

// Runtime is one guest's language runtime instance.
type Runtime struct {
	Lang   Lang
	Model  CostModel
	VM     *vm.VM
	Engine *jit.Engine
	Clock  *vclock.Clock

	// Stdout collects guest print output.
	Stdout bytes.Buffer

	module      *bytecode.Module
	booted      bool
	moduleBytes uint64
}

// meter charges per-op virtual time according to the cost model. It
// reads the runtime's current clock on every charge, because a warm
// sandbox serves many invocations and each invocation brings its own
// clock (see SetClock).
type meter struct {
	rt *Runtime
}

// Charge implements vm.CostMeter.
func (m *meter) Charge(tier vm.Tier, cat bytecode.Category, n int) {
	var per time.Duration
	if tier == vm.TierJIT {
		per = m.rt.Model.JITCost[cat]
	} else {
		per = m.rt.Model.InterpCost[cat]
	}
	m.rt.Clock.Advance(per * time.Duration(n))
}

// New creates a runtime of the given language charging time to clock.
// The runtime is not booted yet; call Boot.
func New(l Lang, clock *vclock.Clock) *Runtime {
	model := ModelFor(l)
	r := &Runtime{Lang: l, Model: model, Clock: clock}
	r.VM = vm.New(&meter{rt: r})
	r.Engine = jit.NewEngine(jit.Config{
		CallThreshold: model.CallThreshold,
		LoopThreshold: model.LoopThreshold,
		AnnotatedOnly: model.AnnotatedOnly,
		OnCompile: func(fn *bytecode.Function, instrs int) {
			r.Clock.Advance(r.Model.CompilePerInstr * time.Duration(instrs))
		},
		OnDeopt: func(fn *bytecode.Function) {
			r.Clock.Advance(r.Model.DeoptPenalty)
		},
	})
	r.VM.JIT = r.Engine
	r.installBuiltins()
	return r
}

// SetClock redirects all further charges to a new clock. Warm sandboxes
// call this at the start of each invocation.
func (r *Runtime) SetClock(clock *vclock.Clock) { r.Clock = clock }

// Boot charges the runtime's process start cost. It must be called once
// before loading a module.
func (r *Runtime) Boot() {
	if r.booted {
		return
	}
	r.Clock.Advance(r.Model.RuntimeBoot)
	r.booted = true
}

// Booted reports whether Boot has run.
func (r *Runtime) Booted() bool { return r.booted }

// BootWarmProcess marks the runtime booted without charging the process
// start cost — the V8-isolate model, where one long-running warm
// process hosts many isolates and only isolate creation is paid.
func (r *Runtime) BootWarmProcess() { r.booted = true }

// InstallNatives binds host-provided native functions (sandbox I/O, the
// Fireworks snapshot/parameter bridge, database clients) into the guest
// globals. Later bindings of the same name win.
func (r *Runtime) InstallNatives(natives map[string]*lang.Native) {
	for name, fn := range natives {
		r.VM.Globals[name] = fn
	}
}

// LoadModule parses, compiles, and executes the top level of a FaaSLang
// module, charging module-load time proportional to code size.
func (r *Runtime) LoadModule(src string) error {
	if !r.booted {
		return fmt.Errorf("runtime: LoadModule before Boot")
	}
	mod, err := bytecode.CompileSource(src)
	if err != nil {
		return fmt.Errorf("runtime: load: %w", err)
	}
	r.Clock.Advance(r.Model.ModuleLoadPerInstr * time.Duration(mod.TotalInstructions()))
	if _, err := r.VM.RunModule(mod); err != nil {
		return fmt.Errorf("runtime: module init: %w", err)
	}
	r.module = mod
	r.moduleBytes = uint64(mod.TotalInstructions()) * 40 // bytecode + AST footprint
	return nil
}

// Module returns the loaded module, or nil.
func (r *Runtime) Module() *bytecode.Module { return r.module }

// Call invokes a global function by name.
func (r *Runtime) Call(name string, args ...lang.Value) (lang.Value, error) {
	fn, ok := r.VM.Globals[name]
	if !ok {
		return nil, fmt.Errorf("runtime: no function %q", name)
	}
	return r.VM.CallValue(fn, args)
}

// HasGlobal reports whether a global with the given name is defined.
func (r *Runtime) HasGlobal(name string) bool {
	_, ok := r.VM.Globals[name]
	return ok
}

// ForceJITAll compiles every function of the loaded module that the
// language's policy allows (all of them for Node, @jit-annotated ones
// for Python/Numba), charging compilation time. This is what the
// generated __fireworks_jit() driver triggers during the install phase.
// It returns the number of functions compiled.
func (r *Runtime) ForceJITAll() int {
	if r.module == nil {
		return 0
	}
	n := 0
	for _, fn := range r.module.Functions {
		if r.Model.AnnotatedOnly && !fn.HasAnnotation("jit") {
			continue
		}
		before := r.Engine.Compiles()
		// Compile with guards from the current profile (a priming call
		// may have established one).
		r.Engine.Compile(fn, r.VM.Profile(fn))
		if r.Engine.Compiles() > before {
			n++
		}
	}
	return n
}

// JITCodeBytes returns the resident machine-code size including the
// language's duplication factor and per-function module overhead
// (Numba's MCJIT modules; ~zero beyond raw code for V8).
func (r *Runtime) JITCodeBytes() uint64 {
	dup := r.Model.JITCodeDuplication
	if dup < 1 {
		dup = 1
	}
	return uint64(r.Engine.CodeSize())*uint64(dup) +
		uint64(r.Engine.Compiles())*r.Model.JITModuleOverheadBytes
}

// SnapshotTemplate is the language-level guest state captured inside a
// VM snapshot: the globals (natives excluded — the host re-binds them on
// restore, just as a resumed clone re-reads MMDS), the JIT engine whose
// code cache holds the post-JIT machine code, and the loaded module.
type SnapshotTemplate struct {
	Lang        Lang
	Globals     map[string]lang.Value
	Engine      *jit.Engine
	Module      *bytecode.Module
	ModuleBytes uint64
}

// SnapshotTemplate captures the runtime's current state for inclusion in
// a VM snapshot. Mutable containers are deep-copied so later execution
// in the source VM cannot alter the snapshot.
func (r *Runtime) SnapshotTemplate() (*SnapshotTemplate, error) {
	globals, err := lang.DeepCopyGlobals(r.VM.Globals, true)
	if err != nil {
		return nil, fmt.Errorf("runtime: snapshot template: %w", err)
	}
	return &SnapshotTemplate{
		Lang:        r.Lang,
		Globals:     globals,
		Engine:      r.Engine,
		Module:      r.module,
		ModuleBytes: r.moduleBytes,
	}, nil
}

// NewFromSnapshot reconstitutes a runtime from a snapshot template at
// the resume point: already booted, module loaded, JITted code in the
// code cache — with zero virtual time charged, because restoring a
// memory snapshot pays only the restore cost (charged by the
// hypervisor), not boot/load/JIT costs. Each restored runtime gets its
// own copy-on-write view of the globals and its own engine sharing the
// template's compiled code.
func NewFromSnapshot(t *SnapshotTemplate, clock *vclock.Clock) (*Runtime, error) {
	model := ModelFor(t.Lang)
	r := &Runtime{Lang: t.Lang, Model: model, Clock: clock, booted: true,
		module: t.Module, moduleBytes: t.ModuleBytes}
	r.VM = vm.New(&meter{rt: r})
	r.Engine = t.Engine.CloneWithCache(jit.Config{
		CallThreshold: model.CallThreshold,
		LoopThreshold: model.LoopThreshold,
		AnnotatedOnly: model.AnnotatedOnly,
		OnCompile: func(fn *bytecode.Function, instrs int) {
			r.Clock.Advance(r.Model.CompilePerInstr * time.Duration(instrs))
		},
		OnDeopt: func(fn *bytecode.Function) {
			r.Clock.Advance(r.Model.DeoptPenalty)
		},
	})
	r.VM.JIT = r.Engine
	r.installBuiltins()
	globals, err := lang.DeepCopyGlobals(t.Globals, false)
	if err != nil {
		return nil, fmt.Errorf("runtime: restore: %w", err)
	}
	for k, v := range globals {
		r.VM.Globals[k] = v
	}
	return r, nil
}

// FootprintBytes describes the runtime's memory regions for the guest
// memory model.
type FootprintBytes struct {
	RuntimeImage uint64
	Libraries    uint64
	ModuleCode   uint64
	JITCode      uint64
}

// Footprint returns the current memory footprint components. Library
// weight includes the JIT toolchain (numba/llvmlite) once the JIT has
// actually compiled something.
func (r *Runtime) Footprint() FootprintBytes {
	libs := r.Model.LibraryBytes
	if r.Engine.Compiles() > 0 {
		libs += r.Model.JITLibraryExtraBytes
	}
	return FootprintBytes{
		RuntimeImage: r.Model.RuntimeImageBytes,
		Libraries:    libs,
		ModuleCode:   r.moduleBytes,
		JITCode:      r.JITCodeBytes(),
	}
}
