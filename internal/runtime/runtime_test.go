package runtime

import (
	"strings"
	"testing"
	"time"

	"repro/internal/lang"
	"repro/internal/vclock"
)

const testModule = `
func square(x) { return x * x; }
func main(params) {
  let total = 0;
  let i = 0;
  while (i < 100) {
    total = total + square(i);
    i = i + 1;
  }
  print("total", total);
  return total;
}
`

func bootAndLoad(t *testing.T, l Lang, src string) (*Runtime, *vclock.Clock) {
	t.Helper()
	clock := vclock.New()
	rt := New(l, clock)
	rt.Boot()
	if err := rt.LoadModule(src); err != nil {
		t.Fatal(err)
	}
	return rt, clock
}

func TestBootChargesOnce(t *testing.T) {
	clock := vclock.New()
	rt := New(LangNode, clock)
	if rt.Booted() {
		t.Fatal("booted before Boot")
	}
	rt.Boot()
	boot := clock.Now()
	if boot != rt.Model.RuntimeBoot {
		t.Fatalf("boot cost = %v", boot)
	}
	rt.Boot() // idempotent
	if clock.Now() != boot {
		t.Fatal("double boot charged twice")
	}
}

func TestLoadBeforeBootFails(t *testing.T) {
	rt := New(LangNode, vclock.New())
	if err := rt.LoadModule("func main(p) { return 0; }"); err == nil {
		t.Fatal("load before boot succeeded")
	}
}

func TestCallAndStdout(t *testing.T) {
	rt, _ := bootAndLoad(t, LangNode, testModule)
	got, err := rt.Call("main", lang.NewMap())
	if err != nil {
		t.Fatal(err)
	}
	if got != int64(328350) {
		t.Fatalf("main = %v", got)
	}
	if !strings.Contains(rt.Stdout.String(), "total 328350") {
		t.Fatalf("stdout = %q", rt.Stdout.String())
	}
	if _, err := rt.Call("missing"); err == nil {
		t.Fatal("call of missing global succeeded")
	}
	if !rt.HasGlobal("square") || rt.HasGlobal("nope") {
		t.Fatal("HasGlobal wrong")
	}
}

func TestExecutionChargesClock(t *testing.T) {
	rt, clock := bootAndLoad(t, LangPython, testModule)
	before := clock.Now()
	rt.Call("main", lang.NewMap())
	if clock.Now() == before {
		t.Fatal("execution free of charge")
	}
}

func TestPythonInterpSlowerThanNode(t *testing.T) {
	nodeRT, nodeClock := bootAndLoad(t, LangNode, testModule)
	pyRT, pyClock := bootAndLoad(t, LangPython, testModule)
	nm := nodeClock.Now()
	nodeRT.Call("main", lang.NewMap())
	nodeCost := nodeClock.Now() - nm
	pm := pyClock.Now()
	pyRT.Call("main", lang.NewMap())
	pyCost := pyClock.Now() - pm
	if pyCost <= nodeCost {
		t.Fatalf("python %v not slower than node %v", pyCost, nodeCost)
	}
}

func TestNodeTiersUpNaturally(t *testing.T) {
	rt, _ := bootAndLoad(t, LangNode, testModule)
	for i := 0; i < 10; i++ {
		rt.Call("main", lang.NewMap())
	}
	if rt.Engine.Compiles() == 0 {
		t.Fatal("hot node code never tiered up")
	}
}

func TestPythonNeverTiersWithoutAnnotation(t *testing.T) {
	rt, _ := bootAndLoad(t, LangPython, testModule)
	for i := 0; i < 20; i++ {
		rt.Call("main", lang.NewMap())
	}
	if rt.Engine.Compiles() != 0 {
		t.Fatal("un-annotated python compiled")
	}
}

func TestPythonNumbaCompilesAnnotated(t *testing.T) {
	src := `
@jit(cache=true)
func kernel(x) { return x * 3; }
func main(params) { return kernel(14); }
`
	rt, _ := bootAndLoad(t, LangPython, src)
	got, err := rt.Call("main", lang.NewMap())
	if err != nil || got != int64(42) {
		t.Fatalf("main = %v, %v", got, err)
	}
	names := rt.Engine.CompiledFunctions()
	if len(names) != 1 || names[0] != "kernel" {
		t.Fatalf("compiled = %v", names)
	}
}

func TestForceJITAll(t *testing.T) {
	rt, clock := bootAndLoad(t, LangNode, testModule)
	before := clock.Now()
	n := rt.ForceJITAll()
	if n != 2 {
		t.Fatalf("compiled %d functions, want 2", n)
	}
	if clock.Now() == before {
		t.Fatal("compilation free of charge")
	}
	if rt.ForceJITAll() != 0 {
		t.Fatal("recompiled already-compiled functions")
	}
	// Python + annotations: only annotated functions compile.
	pySrc := "@jit(cache=true)\nfunc a() { return 1; }\nfunc b() { return 2; }\nfunc main(p) { return a() + b(); }"
	py, _ := bootAndLoad(t, LangPython, pySrc)
	if n := py.ForceJITAll(); n != 1 {
		t.Fatalf("python compiled %d, want 1 (annotated only)", n)
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	rt, _ := bootAndLoad(t, LangNode, testModule+"\nlet counter = 10;\n")
	rt.ForceJITAll()
	tmpl, err := rt.SnapshotTemplate()
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the source runtime after the snapshot must not affect
	// the template.
	rt.VM.Globals["counter"] = int64(999)

	clock := vclock.New()
	restored, err := NewFromSnapshot(tmpl, clock)
	if err != nil {
		t.Fatal(err)
	}
	if clock.Now() != 0 {
		t.Fatalf("restore charged %v; boot/load/JIT must be free", clock.Now())
	}
	if !restored.Booted() {
		t.Fatal("restored runtime not booted")
	}
	if restored.VM.Globals["counter"] != int64(10) {
		t.Fatalf("counter = %v, want snapshot-time 10", restored.VM.Globals["counter"])
	}
	// The restored runtime reuses the JITted code: calling main charges
	// at JIT-tier cost and produces the right result.
	got, err := restored.Call("main", lang.NewMap())
	if err != nil || got != int64(328350) {
		t.Fatalf("restored main = %v, %v", got, err)
	}
	if restored.Engine.Compiles() != rt.Engine.Compiles() {
		t.Fatal("code cache not carried over")
	}
	// Independent globals: mutation in the restored guest stays there.
	restored.VM.Globals["counter"] = int64(1)
	tmpl2, _ := rt.SnapshotTemplate()
	if tmpl2.Globals["counter"] != int64(999) {
		t.Fatal("template depends on restored guest state")
	}
}

func TestRestoredExecutionIsFast(t *testing.T) {
	// The post-JIT property: a restored python runtime executes at
	// Numba speed with zero compile charge at invoke time.
	src := `
func work(n) {
  let total = 0;
  let i = 0;
  while (i < n) { total = total + i * i; i = i + 1; }
  return total;
}
func main(params) { return work(5000); }
`
	// The annotated variant is what the Fireworks code annotator ships.
	annotated := "@jit(cache=true)\n" + strings.Replace(src, "func main", "@jit(cache=true)\nfunc main", 1)

	interp, interpClock := bootAndLoad(t, LangPython, src)
	m1 := interpClock.Now()
	interp.Call("main", lang.NewMap())
	interpCost := interpClock.Now() - m1

	jitted, _ := bootAndLoad(t, LangPython, annotated)
	jitted.ForceJITAll()
	tmpl, _ := jitted.SnapshotTemplate()
	clock := vclock.New()
	restored, _ := NewFromSnapshot(tmpl, clock)
	m2 := clock.Now()
	restored.Call("main", lang.NewMap())
	jitCost := clock.Now() - m2

	ratio := float64(interpCost) / float64(jitCost)
	if ratio < 10 {
		t.Fatalf("restored exec speedup = %.1fx, want >10x", ratio)
	}
}

func TestFootprintAndJITCodeBytes(t *testing.T) {
	rt, _ := bootAndLoad(t, LangPython, "@jit(cache=true)\nfunc k(x) { return x; }\nfunc main(p) { return k(1); }")
	before := rt.Footprint()
	if before.JITCode != 0 {
		t.Fatalf("JIT code before compile = %d", before.JITCode)
	}
	if before.Libraries != rt.Model.LibraryBytes {
		t.Fatal("JIT library extra charged before compile")
	}
	rt.Call("main", lang.NewMap()) // numba compiles k on first call
	after := rt.Footprint()
	if after.JITCode < rt.Model.JITModuleOverheadBytes {
		t.Fatalf("JIT code = %d, want >= module overhead", after.JITCode)
	}
	if after.Libraries != rt.Model.LibraryBytes+rt.Model.JITLibraryExtraBytes {
		t.Fatal("numba libraries not added after compile")
	}
}

func TestSetClockRedirectsCharges(t *testing.T) {
	rt, installClock := bootAndLoad(t, LangNode, testModule)
	invokeClock := vclock.New()
	rt.SetClock(invokeClock)
	before := installClock.Now()
	rt.Call("main", lang.NewMap())
	if installClock.Now() != before {
		t.Fatal("execution charged the old clock")
	}
	if invokeClock.Now() == 0 {
		t.Fatal("execution charged nothing to the new clock")
	}
}

func TestDeoptChargesPenalty(t *testing.T) {
	src := `func poly(x) { return x + x; } func main(p) { return poly(2); }`
	rt, clock := bootAndLoad(t, LangNode, src)
	for i := 0; i < 6; i++ {
		rt.Call("main", lang.NewMap()) // monomorphic int profile; tiers up
	}
	if rt.Engine.Compiles() == 0 {
		t.Fatal("never compiled")
	}
	before := clock.Now()
	if _, err := rt.Call("poly", "s"); err != nil {
		t.Fatal(err)
	}
	cost := clock.Now() - before
	if cost < rt.Model.DeoptPenalty {
		t.Fatalf("deopt call cost %v < penalty %v", cost, rt.Model.DeoptPenalty)
	}
	if rt.Engine.Deopts() != 1 {
		t.Fatalf("deopts = %d", rt.Engine.Deopts())
	}
}

func TestModuleLoadCostScalesWithSize(t *testing.T) {
	small := vclock.New()
	rtS := New(LangNode, small)
	rtS.Boot()
	base := small.Now()
	rtS.LoadModule("func main(p) { return 1; }")
	smallLoad := small.Now() - base

	big := vclock.New()
	rtB := New(LangNode, big)
	rtB.Boot()
	base = big.Now()
	var sb strings.Builder
	sb.WriteString("func main(p) { let x = 0;")
	for i := 0; i < 200; i++ {
		sb.WriteString(" x = x + 1;")
	}
	sb.WriteString(" return x; }")
	rtB.LoadModule(sb.String())
	bigLoad := big.Now() - base
	if bigLoad <= smallLoad {
		t.Fatalf("load cost not size-dependent: %v vs %v", smallLoad, bigLoad)
	}
}

func TestJSONHelpers(t *testing.T) {
	m := lang.NewMap()
	m.Set("n", int64(3))
	m.Set("f", 1.5)
	m.Set("l", lang.NewList("a", int64(2)))
	data, err := EncodeJSON(m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if !lang.Equal(m, back) {
		t.Fatalf("round trip: %s -> %s", lang.Format(m), lang.Format(back))
	}
	// Integers survive as int64, not float64.
	if lang.TypeOf(back.(*lang.Map).Get("n")) != lang.TInt {
		t.Fatal("int decoded as float")
	}
	if _, err := DecodeJSON([]byte("{broken")); err == nil {
		t.Fatal("bad JSON decoded")
	}
}

func TestModelForPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	ModelFor(Lang("cobol"))
}

func TestCostModelShapes(t *testing.T) {
	node, py := ModelFor(LangNode), ModelFor(LangPython)
	// Python's interpreter is slower than Node's in every category.
	for cat, nodeCost := range node.InterpCost {
		if py.InterpCost[cat] <= nodeCost {
			t.Errorf("python interp %v not slower than node for cat %d", py.InterpCost[cat], cat)
		}
	}
	// Numba compiles much slower than V8.
	if py.CompilePerInstr <= node.CompilePerInstr {
		t.Error("numba compile not slower than V8")
	}
	if !py.AnnotatedOnly || node.AnnotatedOnly {
		t.Error("annotation policies swapped")
	}
	if py.JITCodeDuplication <= 1 || node.JITCodeDuplication != 1 {
		t.Error("duplication factors wrong")
	}
	_ = time.Nanosecond
}
