package runtime

import (
	"time"

	"repro/internal/lang/bytecode"
)

// CostModel calibrates one language runtime's virtual-time behaviour.
// All values are documented against the measurements the paper reports;
// EXPERIMENTS.md records how the resulting figures compare.
//
// The per-op costs make the *ratios* between execution tiers come out of
// really executing the workload: a benchmark's latency is
// (ops executed in tier T, category C) x Cost[T][C] summed over the run,
// so a loop-heavy numeric workload sees the full interpreter/JIT gap
// while an I/O workload's execution time is dominated by the sandbox I/O
// costs instead — exactly the behaviour Figures 6, 7, and 11 show.
type CostModel struct {
	// InterpCost and JITCost are per-bytecode-op costs by category.
	InterpCost map[bytecode.Category]time.Duration
	JITCost    map[bytecode.Category]time.Duration

	// CompilePerInstr is the JIT compilation cost per bytecode
	// instruction; DeoptPenalty is charged on each guard bailout.
	CompilePerInstr time.Duration
	DeoptPenalty    time.Duration

	// Tier-up policy (mirrors jit.Config).
	CallThreshold int64
	LoopThreshold int64
	AnnotatedOnly bool

	// RuntimeBoot is the cost of starting the language runtime process
	// (node / python binary start to REPL-ready). ModuleLoadPerInstr
	// models parsing+loading the application per bytecode instruction,
	// and PackageInstall the npm/pip step paid once at function
	// install time.
	RuntimeBoot        time.Duration
	ModuleLoadPerInstr time.Duration
	PackageInstall     time.Duration

	// Memory footprint model (bytes).
	RuntimeImageBytes  uint64 // runtime text+data after boot
	LibraryBytes       uint64 // loaded packages/modules
	HeapPerInvokeBytes uint64 // heap dirtied by one invocation
	// JITLibraryExtraBytes is additional library weight pulled in only
	// when the JIT is actually used (numba + llvmlite for Python; zero
	// for Node, whose JIT is part of V8).
	JITLibraryExtraBytes uint64
	// JITCodeDuplication multiplies resident JIT code size. 1 for V8
	// (code objects are shared); >1 for Numba, which duplicates JITted
	// functions across LLVM MCJIT modules (paper §5.5.2, [35]).
	JITCodeDuplication int
	// JITModuleOverheadBytes is per-compiled-function resident overhead
	// of the JIT's module machinery (LLVM MCJIT modules for Numba). It
	// is also re-dirtied on every snapshot resume (MCJIT re-linking),
	// which is why the paper sees no post-JIT memory win for Python.
	JITModuleOverheadBytes uint64
}

// Lang selects a runtime personality.
type Lang string

// Supported runtime personalities.
const (
	LangNode   Lang = "nodejs"
	LangPython Lang = "python"
)

// ModelFor returns the calibrated cost model for a language.
//
// Calibration notes (targets from the paper):
//   - Node.js V8 tiers up quickly, so warm compute benchmarks only gain
//     25-38% from post-JIT snapshots (Fig. 6a) -> modest interp/JIT gap
//     and aggressive tier-up thresholds.
//   - CPython never JITs; Numba-compiled code is 15-80x faster on
//     numeric kernels (Fig. 7a-b) -> large interp/JIT gap, AnnotatedOnly
//     compilation on first call.
//   - Numba compilation is slow (~100ms+ per function), which is why the
//     paper pays it at install time; V8 compiles in microseconds.
//   - npm install dominates Node install time (paper §5.1).
func ModelFor(l Lang) CostModel {
	switch l {
	case LangNode:
		return CostModel{
			InterpCost: map[bytecode.Category]time.Duration{
				bytecode.CatArith: 14 * time.Nanosecond,
				bytecode.CatIndex: 22 * time.Nanosecond,
				bytecode.CatCall:  90 * time.Nanosecond,
				bytecode.CatOther: 9 * time.Nanosecond,
			},
			JITCost: map[bytecode.Category]time.Duration{
				bytecode.CatArith: 4 * time.Nanosecond,
				bytecode.CatIndex: 7 * time.Nanosecond,
				bytecode.CatCall:  35 * time.Nanosecond,
				bytecode.CatOther: 3 * time.Nanosecond,
			},
			CompilePerInstr:        2 * time.Microsecond,
			DeoptPenalty:           25 * time.Microsecond,
			CallThreshold:          4,
			LoopThreshold:          128,
			AnnotatedOnly:          false,
			RuntimeBoot:            260 * time.Millisecond,
			ModuleLoadPerInstr:     300 * time.Nanosecond,
			PackageInstall:         3200 * time.Millisecond,
			RuntimeImageBytes:      64 << 20,
			LibraryBytes:           46 << 20,
			HeapPerInvokeBytes:     9 << 20,
			JITLibraryExtraBytes:   0, // V8 is the runtime; no extra JIT libs
			JITCodeDuplication:     1,
			JITModuleOverheadBytes: 0, // V8 code objects are compact and shared
		}
	case LangPython:
		return CostModel{
			InterpCost: map[bytecode.Category]time.Duration{
				bytecode.CatArith: 110 * time.Nanosecond,
				bytecode.CatIndex: 230 * time.Nanosecond,
				bytecode.CatCall:  550 * time.Nanosecond,
				bytecode.CatOther: 55 * time.Nanosecond,
			},
			JITCost: map[bytecode.Category]time.Duration{
				bytecode.CatArith: 3 * time.Nanosecond,
				bytecode.CatIndex: 1 * time.Nanosecond,
				bytecode.CatCall:  40 * time.Nanosecond,
				bytecode.CatOther: 2 * time.Nanosecond,
			},
			CompilePerInstr:        45 * time.Microsecond,
			DeoptPenalty:           60 * time.Microsecond,
			CallThreshold:          1, // Numba compiles annotated funcs on first call
			LoopThreshold:          0,
			AnnotatedOnly:          true,
			RuntimeBoot:            130 * time.Millisecond,
			ModuleLoadPerInstr:     500 * time.Nanosecond,
			PackageInstall:         2100 * time.Millisecond,
			RuntimeImageBytes:      42 << 20,
			LibraryBytes:           24 << 20, // plain CPython stdlib
			HeapPerInvokeBytes:     7 << 20,
			JITLibraryExtraBytes:   34 << 20, // numba + llvmlite, JIT users only
			JITCodeDuplication:     28,       // LLVM MCJIT module duplication
			JITModuleOverheadBytes: 24 << 20, // per-function MCJIT module weight
		}
	default:
		panic("runtime: unknown language " + string(l))
	}
}
