package runtime

import (
	"strings"
	"testing"

	"repro/internal/lang"
	"repro/internal/vclock"
)

// evalBuiltin runs `return <expr>;` inside a fresh Node runtime.
func evalBuiltin(t *testing.T, expr string) (lang.Value, error) {
	t.Helper()
	rt := New(LangNode, vclock.New())
	rt.Boot()
	if err := rt.LoadModule("func probe(a, b) { return " + expr + "; }"); err != nil {
		t.Fatalf("load %q: %v", expr, err)
	}
	return rt.Call("probe", lang.NewList(int64(1), int64(2), int64(3)), "  padded  ")
}

func TestBuiltinHappyPaths(t *testing.T) {
	cases := []struct {
		expr string
		want lang.Value
	}{
		{`len("abcd")`, int64(4)},
		{`len(a)`, int64(3)},
		{`len({"x": 1})`, int64(1)},
		{`str(42)`, "42"},
		{`str(null)`, "null"},
		{`int("17")`, int64(17)},
		{`int(" 17 ")`, int64(17)},
		{`int(3.9)`, int64(3)},
		{`int(true)`, int64(1)},
		{`int(false)`, int64(0)},
		{`float("2.5")`, 2.5},
		{`float(2)`, 2.0},
		{`type(1)`, "int"},
		{`type(1.5)`, "float"},
		{`type("s")`, "string"},
		{`type(null)`, "null"},
		{`type([])`, "list"},
		{`type({})`, "map"},
		{`len(push([1], 2))`, int64(2)},
		{`pop([1, 9])`, int64(9)},
		{`join(keys({"b": 1, "a": 2}), ",")`, "a,b"},
		{`has({"k": 1}, "k")`, true},
		{`has({"k": 1}, "z")`, false},
		{`len(range(5))`, int64(5)},
		{`join([1, 2, 3], "-")`, "1-2-3"},
		{`len(split("a,b,c", ","))`, int64(3)},
		{`substr("hello", 1, 3)`, "ell"},
		{`substr("hello", 3, 99)`, "lo"},
		{`substr("hello", -2, 2)`, "he"},
		{`contains("hello", "ell")`, true},
		{`contains([1, 2], 2)`, true},
		{`contains([1, 2], 9)`, false},
		{`upper("aBc")`, "ABC"},
		{`lower("AbC")`, "abc"},
		{`trim(b)`, "padded"},
		{`repeat("ab", 3)`, "ababab"},
		{`abs(-4)`, int64(4)},
		{`abs(-2.5)`, 2.5},
		{`min(3, 7)`, int64(3)},
		{`max(3, 7.5)`, 7.5},
		{`min(2.5, 3)`, 2.5},
		{`floor(3.8)`, int64(3)},
		{`floor(4)`, int64(4)},
		{`sqrt(16)`, 4.0},
		{`json_encode({"a": 1})`, `{"a":1}`},
		{`json_decode("[1, 2]")[1]`, int64(2)},
	}
	for _, tc := range cases {
		got, err := evalBuiltin(t, tc.expr)
		if err != nil {
			t.Errorf("%s: %v", tc.expr, err)
			continue
		}
		if !lang.Equal(got, tc.want) {
			t.Errorf("%s = %v (%T), want %v", tc.expr, got, got, tc.want)
		}
	}
}

func TestBuiltinErrorPaths(t *testing.T) {
	cases := []struct {
		expr, sub string
	}{
		{`len(1)`, "len: unsupported"},
		{`int("nope")`, "cannot parse"},
		{`int([])`, "int: unsupported"},
		{`float("x")`, "cannot parse"},
		{`float([])`, "float: unsupported"},
		{`push(1, 2)`, "must be list"},
		{`pop([])`, "empty list"},
		{`pop("s")`, "must be list"},
		{`keys([1])`, "must be map"},
		{`has([1], "k")`, "must be map"},
		{`has({}, 1)`, "key must be string"},
		{`remove([1], "k")`, "must be map"},
		{`range(-1)`, "out of supported range"},
		{`range("x")`, "must be int"},
		{`join("s", ",")`, "must be list"},
		{`join([1], 2)`, "must be string"},
		{`split(1, ",")`, "must be string"},
		{`split("a", 2)`, "must be string"},
		{`substr(1, 0, 1)`, "must be string"},
		{`substr("s", "a", 1)`, "must be ints"},
		{`contains(1, 2)`, "unsupported"},
		{`contains("s", 1)`, "needle must be string"},
		{`upper(1)`, "must be string"},
		{`lower(1)`, "must be string"},
		{`trim(1)`, "must be string"},
		{`repeat(1, 2)`, "must be string"},
		{`repeat("x", -1)`, "non-negative"},
		{`abs("x")`, "unsupported"},
		{`min("a", 1)`, "unsupported"},
		{`floor("x")`, "unsupported"},
		{`sqrt("x")`, "unsupported"},
		{`json_decode(1)`, "must be string"},
		{`json_decode("{bad")`, "json_decode"},
	}
	for _, tc := range cases {
		_, err := evalBuiltin(t, tc.expr)
		if err == nil || !strings.Contains(err.Error(), tc.sub) {
			t.Errorf("%s: err = %v, want substring %q", tc.expr, err, tc.sub)
		}
	}
}

func TestRemoveBuiltinMutates(t *testing.T) {
	rt := New(LangNode, vclock.New())
	rt.Boot()
	if err := rt.LoadModule(`
func f() {
  let m = {"a": 1, "b": 2};
  remove(m, "a");
  remove(m, "ghost");
  return m;
}`); err != nil {
		t.Fatal(err)
	}
	got, err := rt.Call("f")
	if err != nil {
		t.Fatal(err)
	}
	m := got.(*lang.Map)
	if len(m.Items) != 1 || m.Get("b") != int64(2) {
		t.Fatalf("m = %v", lang.Format(m))
	}
}

func TestRepeatSizeGuard(t *testing.T) {
	_, err := evalBuiltin(t, `repeat("xxxxxxxxxx", 100000000)`)
	if err == nil || !strings.Contains(err.Error(), "too large") {
		t.Fatalf("err = %v", err)
	}
}

func TestNowMsTracksClock(t *testing.T) {
	clock := vclock.New()
	rt := New(LangNode, clock)
	rt.Boot()
	if err := rt.LoadModule(`func f() { return now_ms(); }`); err != nil {
		t.Fatal(err)
	}
	got, err := rt.Call("f")
	if err != nil {
		t.Fatal(err)
	}
	// Boot + module load elapsed on the virtual clock.
	if got.(int64) <= 0 || got.(int64) != clock.Now().Milliseconds() {
		t.Fatalf("now_ms = %v, clock = %v", got, clock.Now())
	}
}

func TestPrintFormatsLikeFormat(t *testing.T) {
	rt := New(LangNode, vclock.New())
	rt.Boot()
	if err := rt.LoadModule(`func f() { print("x", 1, [2], {"k": null}); }`); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Call("f"); err != nil {
		t.Fatal(err)
	}
	want := "x 1 [2] {\"k\": null}\n"
	if rt.Stdout.String() != want {
		t.Fatalf("stdout = %q, want %q", rt.Stdout.String(), want)
	}
}

func TestToGoRejectsFunctions(t *testing.T) {
	if _, err := ToGo(&lang.Native{Name: "f"}); err == nil {
		t.Fatal("native converted to host data")
	}
	v, err := ToGo(lang.NewList(int64(1), "a", true, nil))
	if err != nil {
		t.Fatal(err)
	}
	items := v.([]any)
	if items[0] != int64(1) || items[1] != "a" || items[2] != true || items[3] != nil {
		t.Fatalf("items = %v", items)
	}
}

func TestFromGoVariants(t *testing.T) {
	v, err := FromGo(map[string]any{"n": 3, "f": 1.5, "l": []any{int64(1)}})
	if err != nil {
		t.Fatal(err)
	}
	m := v.(*lang.Map)
	if m.Get("n") != int64(3) || m.Get("f") != 1.5 {
		t.Fatalf("m = %v", lang.Format(m))
	}
	if _, err := FromGo(struct{}{}); err == nil {
		t.Fatal("struct converted")
	}
}
