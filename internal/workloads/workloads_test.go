package workloads

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/couchdb"
	"repro/internal/lang"
	"repro/internal/platform"
	"repro/internal/runtime"
)

func TestAllWorkloadsValidate(t *testing.T) {
	all := All()
	if len(all) != 16 { // 4 FaaSdom x 2 langs + 4 Alexa + 4 data analysis
		t.Fatalf("workloads = %d", len(all))
	}
	for _, w := range all {
		fn := w.Function
		if err := platform.Validate(&fn); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
		if w.Description == "" || w.Suite == "" {
			t.Errorf("%s: missing metadata", w.Name)
		}
	}
}

func TestFaaSdomNaming(t *testing.T) {
	node := FaaSdom(runtime.LangNode)
	py := FaaSdom(runtime.LangPython)
	if node[0].Name != "faas-fact-nodejs" || py[0].Name != "faas-fact-python" {
		t.Fatalf("names: %s / %s", node[0].Name, py[0].Name)
	}
	if node[0].Source != py[0].Source {
		t.Fatal("same benchmark differs across languages")
	}
}

// runOnOpenWhisk executes a workload end-to-end on the container
// baseline and returns the invocation.
func runOnOpenWhisk(t *testing.T, w Workload, params map[string]any) *platform.Invocation {
	t.Helper()
	env := platform.NewEnv(platform.EnvConfig{})
	p := platform.NewOpenWhisk(env)
	if _, err := p.Install(w.Function); err != nil {
		t.Fatal(err)
	}
	inv, err := p.Invoke(w.Name, platform.MustParams(params), platform.InvokeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return inv
}

func TestFactComputesFactors(t *testing.T) {
	// 2^5 * 3 = 96: factorize yields [2,2,2,2,2,3] = 6 factors; with
	// rounds=1 the total is 6.
	inv := runOnOpenWhisk(t, Fact(runtime.LangNode), map[string]any{"n": 96, "rounds": 1})
	if inv.Result != int64(6) {
		t.Fatalf("fact(96) factors = %v, want 6", inv.Result)
	}
	if !strings.Contains(inv.Response.Body, "factored 1 ints, 6 factors") {
		t.Fatalf("body = %q", inv.Response.Body)
	}
}

func TestMatrixMultChecksum(t *testing.T) {
	// Verify the FaaSLang matrix result against a Go reference for a
	// small n.
	const n = 5
	build := func(seed int64) [][]int64 {
		m := make([][]int64, n)
		for i := range m {
			m[i] = make([]int64, n)
			for j := range m[i] {
				m[i][j] = (int64(i)*31 + int64(j)*17 + seed) % 97
			}
		}
		return m
	}
	a, b := build(3), build(7)
	var c00, cNN int64
	for k := 0; k < n; k++ {
		c00 += a[0][k] * b[k][0]
		cNN += a[n-1][k] * b[k][n-1]
	}
	want := c00 + cNN

	inv := runOnOpenWhisk(t, MatrixMult(runtime.LangNode), map[string]any{"n": n})
	if inv.Result != want {
		t.Fatalf("matrix check = %v, want %d", inv.Result, want)
	}
}

func TestDiskIOReadsBackWrites(t *testing.T) {
	inv := runOnOpenWhisk(t, DiskIO(runtime.LangNode), map[string]any{"iterations": 8})
	if inv.Result != int64(8*10240) {
		t.Fatalf("bytes = %v", inv.Result)
	}
}

func TestNetLatencyBody(t *testing.T) {
	inv := runOnOpenWhisk(t, NetLatency(runtime.LangNode), nil)
	if inv.Response == nil || inv.Response.Status != 200 {
		t.Fatalf("response: %+v", inv.Response)
	}
	if len(inv.Response.Body) != 79 {
		t.Fatalf("body length = %d, want 79 (paper's tiny response)", len(inv.Response.Body))
	}
}

// installApp installs a chain app on Fireworks (callees before callers).
func installApp(t *testing.T, fw *core.Framework, ws []Workload) {
	t.Helper()
	for i := len(ws) - 1; i >= 0; i-- {
		if _, err := fw.Install(ws[i].Function); err != nil {
			t.Fatalf("install %s: %v", ws[i].Name, err)
		}
	}
}

func TestAlexaIntentDispatch(t *testing.T) {
	env := platform.NewEnv(platform.EnvConfig{})
	fw := core.New(env, core.Options{})
	installApp(t, fw, AlexaSkills())

	cases := []struct {
		text   string
		intent string
	}{
		{"tell me a fun fact", "fact"},
		{"remind me to call the dentist", "reminder"},
		{"turn on the lights at home", "smarthome"},
	}
	for _, tc := range cases {
		inv, err := fw.Invoke(NameAlexaFrontend,
			platform.MustParams(map[string]any{"text": tc.text, "action": "status",
				"id": "t1", "item": "x", "place": "y", "url": "z"}),
			platform.InvokeOptions{})
		if err != nil {
			t.Fatalf("%q: %v", tc.text, err)
		}
		m := inv.Result.(*lang.Map)
		if m.Get("intent") != tc.intent {
			t.Errorf("%q classified as %v, want %s", tc.text, m.Get("intent"), tc.intent)
		}
	}
}

func TestAlexaReminderPersistsToCouch(t *testing.T) {
	env := platform.NewEnv(platform.EnvConfig{})
	fw := core.New(env, core.Options{})
	installApp(t, fw, AlexaSkills())
	_, err := fw.Invoke(NameAlexaReminder,
		platform.MustParams(map[string]any{"action": "add", "id": "r1", "item": "dentist",
			"place": "clinic", "url": "https://cal/r1"}),
		platform.InvokeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	db, err := env.Couch.DB("reminders")
	if err != nil {
		t.Fatal(err)
	}
	doc, err := db.Get("reminder-r1")
	if err != nil {
		t.Fatal(err)
	}
	if doc["item"] != "dentist" || doc["place"] != "clinic" {
		t.Fatalf("doc = %v", doc)
	}
	// Listing counts both the priming reminder and r1.
	inv, err := fw.Invoke(NameAlexaReminder,
		platform.MustParams(map[string]any{"action": "list"}), platform.InvokeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(inv.Result.(string), "reminders") {
		t.Fatalf("list result = %v", inv.Result)
	}
}

func TestSmartHomeToggle(t *testing.T) {
	env := platform.NewEnv(platform.EnvConfig{})
	fw := core.New(env, core.Options{})
	installApp(t, fw, AlexaSkills())
	inv, err := fw.Invoke(NameAlexaSmartHome,
		platform.MustParams(map[string]any{"action": "toggle", "device": "light"}),
		platform.InvokeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(inv.Result.(string), "light=on") {
		t.Fatalf("status = %v", inv.Result)
	}
	inv2, _ := fw.Invoke(NameAlexaSmartHome,
		platform.MustParams(map[string]any{"action": "toggle", "device": "light"}),
		platform.InvokeOptions{})
	if !strings.Contains(inv2.Result.(string), "light=off") {
		t.Fatalf("second toggle = %v", inv2.Result)
	}
}

func TestDataAnalysisEndToEnd(t *testing.T) {
	env := platform.NewEnv(platform.EnvConfig{})
	fw := core.New(env, core.Options{})
	installApp(t, fw, DataAnalysis())

	// Insert three employees through the chain.
	people := []map[string]any{
		{"name": "ada", "id": "e1", "role": "Engineer", "base": 60000},
		{"name": "grace", "id": "e2", "role": "Manager", "base": 100000},
		{"name": "alan", "id": "e3", "role": "Engineer", "base": 40000},
	}
	for _, p := range people {
		inv, err := fw.Invoke(NameWageInsert, platform.MustParams(p), platform.InvokeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if inv.Response.Status != 200 {
			t.Fatalf("insert response: %+v", inv.Response)
		}
	}
	// Invalid record is rejected with a 400.
	bad, err := fw.Invoke(NameWageInsert,
		platform.MustParams(map[string]any{"name": "x", "id": "e9", "role": "r", "base": -5}),
		platform.InvokeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if bad.Response.Status != 400 {
		t.Fatalf("invalid record status = %d", bad.Response.Status)
	}

	// Run the triggered analysis chain.
	if _, err := fw.Invoke(NameWageAnalyze, platform.MustParams(map[string]any{"trigger": "t"}),
		platform.InvokeOptions{}); err != nil {
		t.Fatal(err)
	}
	statsDB, err := env.Couch.DB("wage-stats")
	if err != nil {
		t.Fatal(err)
	}
	doc, err := statsDB.Get("stats-latest")
	if err != nil {
		t.Fatal(err)
	}
	// 3 real employees + the priming record.
	employees := doc["employees"]
	if employees != int64(4) && employees != float64(4) {
		t.Fatalf("employees = %v (%T)", employees, employees)
	}
	byRole, ok := doc["by_role"].(map[string]any)
	if !ok {
		t.Fatalf("by_role = %T", doc["by_role"])
	}
	if _, ok := byRole["engineer"]; !ok {
		t.Fatalf("roles = %v", byRole)
	}

	// Verify the tax/bonus arithmetic for one employee against Go.
	// ada: base 60000, engineer bonus 15000 -> gross 75000.
	// tax: (75000-50000)*0.30 + 50000*0.15 = 7500 + 7500 = 15000.
	// net = 60000.
	eng := byRole["engineer"].(map[string]any)
	count := toInt(eng["count"])
	if count != 3 { // ada, alan, priming record
		t.Fatalf("engineer count = %d", count)
	}
}

func toInt(v any) int64 {
	switch v := v.(type) {
	case int64:
		return v
	case float64:
		return int64(v)
	default:
		return -1
	}
}

// TestDBTriggeredChain wires the CouchDB change feed to the analysis
// chain exactly as Figure 8(b) draws it: inserting a wage triggers the
// analysis automatically.
func TestDBTriggeredChain(t *testing.T) {
	env := platform.NewEnv(platform.EnvConfig{})
	fw := core.New(env, core.Options{})
	installApp(t, fw, DataAnalysis())

	// The Cloud trigger: on every wage insert, run the analysis chain.
	triggered := 0
	env.Couch.CreateDB("wages").Subscribe(func(c couchdb.Change) {
		if c.Deleted || !strings.HasPrefix(c.ID, "wage-e") {
			return
		}
		triggered++
		if _, err := fw.Invoke(NameWageAnalyze,
			platform.MustParams(map[string]any{"trigger": c.ID}),
			platform.InvokeOptions{}); err != nil {
			t.Errorf("triggered analysis: %v", err)
		}
	})

	if _, err := fw.Invoke(NameWageInsert,
		platform.MustParams(map[string]any{"name": "ada", "id": "e1", "role": "Engineer", "base": 60000}),
		platform.InvokeOptions{}); err != nil {
		t.Fatal(err)
	}
	if triggered != 1 {
		t.Fatalf("trigger fired %d times, want 1", triggered)
	}
	statsDB, err := env.Couch.DB("wage-stats")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := statsDB.Get("stats-latest"); err != nil {
		t.Fatalf("triggered chain produced no stats: %v", err)
	}
}
