package workloads

import (
	"repro/internal/platform"
	"repro/internal/runtime"
	"repro/internal/workflow"
)

// Workflow step function names: the single-responsibility pieces the
// declarative DAGs compose. The hand-wired chain heads
// (alexa-frontend, wage-insert, wage-analyze) stay deployed for
// comparison benchmarks; these split their dispatch/validation/
// analysis stages out of the imperative invoke() chains so the
// workflow engine owns the composition instead.
const (
	NameAlexaIntent  = "alexa-intent"
	NameWageValidate = "wage-validate"
	NameWageStats    = "wage-stats"
)

// alexaIntentSource is the classifier stage of the Alexa frontend
// (same tokenizer and intent scoring as alexaFrontendSource) without
// the imperative dispatch: it only names the intent, and the workflow
// DAG's conditional branches route to the matching skill.
const alexaIntentSource = `
// Alexa intent classifier: voice analysis without dispatch.
func tokenize(text) {
  let words = split(lower(text), " ");
  let out = [];
  for (w in words) {
    let t = trim(w);
    if (len(t) > 0) { push(out, t); }
  }
  return out;
}

func scoreIntent(tokens, keywords) {
  let score = 0;
  for (t in tokens) {
    for (k in keywords) {
      if (t == k) { score = score + 2; }
      if (contains(t, k)) { score = score + 1; }
    }
  }
  return score;
}

func main(params) {
  let text = params.text;
  if (text == null) { text = "tell me a fact"; }
  let tokens = tokenize(text);
  let factScore = scoreIntent(tokens, ["fact", "tell", "know", "trivia"]);
  let remindScore = scoreIntent(tokens, ["remind", "reminder", "schedule", "calendar", "appointment"]);
  let homeScore = scoreIntent(tokens, ["light", "lights", "door", "tv", "home", "turn", "lock", "status"]);
  let intent = "fact";
  if (remindScore >= factScore && remindScore >= homeScore && remindScore > 0) {
    intent = "reminder";
  } else {
    if (homeScore >= factScore && homeScore > 0) {
      intent = "smarthome";
    }
  }
  return {"intent": intent, "text": text};
}
`

// wageValidateSource is wage-insert's validation stage without the
// chained invoke("wage-persist"): it returns the normalized document
// and lets the workflow DAG hand it to the persist step.
const wageValidateSource = `
// Data analysis: validate and normalize one wage record.
func validRecord(params) {
  if (params.name == null) { return false; }
  if (params.id == null) { return false; }
  if (params.role == null) { return false; }
  if (params.base == null) { return false; }
  if (params.base < 0) { return false; }
  return true;
}

func main(params) {
  if (!validRecord(params)) {
    http_respond(400, "invalid wage record");
    return null;
  }
  let doc = {
    "_id": "wage-" + params.id,
    "type": "wage",
    "name": params.name,
    "id": params.id,
    "role": lower(params.role),
    "base": params.base
  };
  http_respond(200, "validated " + doc["_id"]);
  return doc;
}
`

// wageStatsSource is wage-analyze's statistics stage without the
// chained invoke("wage-report"): same bonus/tax model, but the stats
// document is returned for the DAG to route onward.
const wageStatsSource = `
// Data analysis: calculate bonuses and taxes, make statistics.
func bonusFor(role, base) {
  if (role == "manager") { return base / 5; }
  if (role == "engineer") { return base / 4; }
  return base / 10;
}

func taxFor(gross) {
  // Progressive brackets.
  let tax = 0;
  if (gross > 100000) {
    tax = tax + (gross - 100000) * 40 / 100;
    gross = 100000;
  }
  if (gross > 50000) {
    tax = tax + (gross - 50000) * 30 / 100;
    gross = 50000;
  }
  tax = tax + gross * 15 / 100;
  return tax;
}

func main(params) {
  let wages = db_find("wages", {"type": "wage"});
  let byRole = {};
  let totalNet = 0;
  for (doc in wages) {
    let bonus = bonusFor(doc.role, doc.base);
    let gross = doc.base + bonus;
    let tax = taxFor(gross);
    let net = gross - tax;
    totalNet = totalNet + net;
    if (byRole[doc.role] == null) {
      byRole[doc.role] = {"count": 0, "net": 0};
    }
    byRole[doc.role]["count"] = byRole[doc.role]["count"] + 1;
    byRole[doc.role]["net"] = byRole[doc.role]["net"] + net;
  }
  return {
    "_id": "stats-latest",
    "type": "stats",
    "employees": len(wages),
    "total_net": totalNet,
    "by_role": byRole
  };
}
`

// WorkflowFunctions returns the step functions the declarative DAGs
// compose. Deploy them alongside AlexaSkills()/DataAnalysis() — the
// DAG leaves (alexa-fact, wage-persist, …) come from those suites.
func WorkflowFunctions() []Workload {
	lang := runtime.LangNode
	return []Workload{
		{Function: platform.Function{Name: NameAlexaIntent, Source: alexaIntentSource, Lang: lang,
			DefaultParams:    map[string]any{"text": "tell me a fact"},
			DirtyBytesPerRun: 1 << 20},
			Description: "Alexa intent classifier (workflow step)", Suite: "ServerlessBench"},
		{Function: platform.Function{Name: NameWageValidate, Source: wageValidateSource, Lang: lang,
			DefaultParams: map[string]any{"name": "prime", "id": "p0", "role": "engineer",
				"base": 52000},
			DirtyBytesPerRun: 1 << 20},
			Description: "Validate wage input (workflow step)", Suite: "ServerlessBench"},
		{Function: platform.Function{Name: NameWageStats, Source: wageStatsSource, Lang: lang,
			DefaultParams:    map[string]any{"trigger": "prime"},
			DirtyBytesPerRun: 2 << 20},
			Description: "Wage statistics (workflow step)", Suite: "ServerlessBench"},
	}
}

// AlexaWorkflow is the declarative form of the Figure 8(a) Alexa
// chain: classify the utterance, then take exactly one conditional
// branch to the matching skill.
func AlexaWorkflow() *workflow.Spec {
	return &workflow.Spec{
		Name: "alexa",
		Steps: []workflow.Step{
			{ID: "intent", Function: NameAlexaIntent},
			{ID: "fact", Function: NameAlexaFact, After: []string{"intent"},
				When:  &workflow.Condition{Step: "intent", Key: "intent", Equals: "fact"},
				Input: map[string]any{"query": "$input.text"}},
			{ID: "reminder", Function: NameAlexaReminder, After: []string{"intent"},
				When: &workflow.Condition{Step: "intent", Key: "intent", Equals: "reminder"}},
			{ID: "smarthome", Function: NameAlexaSmartHome, After: []string{"intent"},
				When: &workflow.Condition{Step: "intent", Key: "intent", Equals: "smarthome"}},
		},
	}
}

// WageInsertWorkflow is the declarative form of the Figure 8(b)
// insertion chain: validate/normalize, then persist the normalized
// document.
func WageInsertWorkflow() *workflow.Spec {
	return &workflow.Spec{
		Name: "wage-ingest",
		Steps: []workflow.Step{
			{ID: "validate", Function: NameWageValidate},
			{ID: "persist", Function: NameWagePersist, After: []string{"validate"},
				InputFrom: "$steps.validate"},
		},
	}
}

// WageAnalysisWorkflow is the declarative form of the Figure 8(b)
// database-triggered analysis chain: compute statistics over all
// stored wages, then store the report. Register it with a change-feed
// trigger on the "wages" database to reproduce the dashed
// trigger-on-update edge.
func WageAnalysisWorkflow() *workflow.Spec {
	return &workflow.Spec{
		Name: "wage-analysis",
		Steps: []workflow.Step{
			{ID: "stats", Function: NameWageStats},
			{ID: "report", Function: NameWageReport, After: []string{"stats"},
				InputFrom: "$steps.stats"},
		},
	}
}
