// Package workloads defines the serverless applications the paper
// evaluates (Table 2): the four FaaSdom microbenchmarks in both Node.js
// and Python runtime personalities, and the two ServerlessBench
// real-world applications (Alexa Skills and data analysis), all written
// in FaaSLang so the identical code runs on every platform.
package workloads

import (
	"fmt"

	"repro/internal/platform"
	"repro/internal/runtime"
)

// Workload couples a deployable function with its Table 2 metadata.
type Workload struct {
	platform.Function
	Description string
	Suite       string
}

// factSource is FaaSdom's faas-fact: repeated integer factorization, the
// compute-intensive benchmark of Figures 6(a)/7(a).
const factSource = `
// faas-fact: integer factorization (FaaSdom).
func factorize(n) {
  let factors = [];
  let d = 2;
  while (d * d <= n) {
    while (n % d == 0) {
      push(factors, d);
      n = n / d;
    }
    d = d + 1;
  }
  if (n > 1) { push(factors, n); }
  return factors;
}

func main(params) {
  let rounds = params.rounds;
  if (rounds == null) { rounds = 80; }
  let base = params.n;
  if (base == null) { base = 9999991; }
  let total = 0;
  let i = 0;
  while (i < rounds) {
    let f = factorize(base + i);
    total = total + len(f);
    i = i + 1;
  }
  http_respond(200, "factored " + rounds + " ints, " + total + " factors");
  return total;
}
`

// matrixSource is FaaSdom's faas-matrix-mult: dense matrix
// multiplication, the index-heavy numeric kernel where Numba's gain
// peaks (Figure 7(b)).
const matrixSource = `
// faas-matrix-mult: multiplication of large matrices (FaaSdom).
func build(n, seed) {
  let m = [];
  let i = 0;
  while (i < n) {
    let row = [];
    let j = 0;
    while (j < n) {
      push(row, (i * 31 + j * 17 + seed) % 97);
      j = j + 1;
    }
    push(m, row);
    i = i + 1;
  }
  return m;
}

func matmul(a, b, n) {
  let c = [];
  let i = 0;
  while (i < n) {
    let row = [];
    let j = 0;
    while (j < n) {
      let sum = 0;
      let k = 0;
      while (k < n) {
        sum = sum + a[i][k] * b[k][j];
        k = k + 1;
      }
      push(row, sum);
      j = j + 1;
    }
    push(c, row);
    i = i + 1;
  }
  return c;
}

func main(params) {
  let n = params.n;
  if (n == null) { n = 64; }
  let a = build(n, 3);
  let b = build(n, 7);
  let c = matmul(a, b, n);
  let check = c[0][0] + c[n - 1][n - 1];
  http_respond(200, "matrix " + n + "x" + n + " check=" + check);
  return check;
}
`

// diskioSource is FaaSdom's faas-diskio: 10 KiB file reads and writes,
// 100 times (Figures 6(c)/7(c)).
const diskioSource = `
// faas-diskio: disk I/O performance measurement (FaaSdom).
func main(params) {
  let iterations = params.iterations;
  if (iterations == null) { iterations = 100; }
  let block = repeat("x", 10240);
  let bytes = 0;
  let i = 0;
  while (i < iterations) {
    let path = "/tmp/faas-io-" + (i % 4);
    file_write(path, block);
    let data = file_read(path);
    bytes = bytes + len(data);
    i = i + 1;
  }
  http_respond(200, "diskio bytes=" + bytes);
  return bytes;
}
`

// netlatencySource is FaaSdom's faas-netlatency: respond immediately
// with a small HTTP message (79-byte body, 500-byte header), isolating
// platform start-up and network cost (Figures 6(d)/7(d)).
const netlatencySource = `
// faas-netlatency: immediate small HTTP response (FaaSdom).
func main(params) {
  // 79-byte body as in the paper's description.
  let body = "{\"status\":\"ok\",\"service\":\"faas-netlatency\",\"note\":\"immediate 79B response!!!!\"}";
  http_respond(200, body);
  return "ok";
}
`

// FaaSdom benchmark names.
const (
	NameFact       = "faas-fact"
	NameMatrixMult = "faas-matrix-mult"
	NameDiskIO     = "faas-diskio"
	NameNetLatency = "faas-netlatency"
)

// Fact returns faas-fact for a language.
func Fact(lang runtime.Lang) Workload {
	return Workload{
		Function: platform.Function{
			Name:             qualified(NameFact, lang),
			Source:           factSource,
			Lang:             lang,
			DefaultParams:    map[string]any{"n": 9999991, "rounds": 80},
			DirtyBytesPerRun: 2 << 20,
		},
		Description: "Integer factorization",
		Suite:       "FaaSdom",
	}
}

// MatrixMult returns faas-matrix-mult for a language.
func MatrixMult(lang runtime.Lang) Workload {
	return Workload{
		Function: platform.Function{
			Name:             qualified(NameMatrixMult, lang),
			Source:           matrixSource,
			Lang:             lang,
			DefaultParams:    map[string]any{"n": 64},
			DirtyBytesPerRun: 6 << 20,
		},
		Description: "Multiplication of large matrices",
		Suite:       "FaaSdom",
	}
}

// DiskIO returns faas-diskio for a language.
func DiskIO(lang runtime.Lang) Workload {
	return Workload{
		Function: platform.Function{
			Name:             qualified(NameDiskIO, lang),
			Source:           diskioSource,
			Lang:             lang,
			DefaultParams:    map[string]any{"iterations": 100},
			DirtyBytesPerRun: 1 << 20,
		},
		Description: "Disk I/O performance measurement",
		Suite:       "FaaSdom",
	}
}

// NetLatency returns faas-netlatency for a language.
func NetLatency(lang runtime.Lang) Workload {
	return Workload{
		Function: platform.Function{
			Name:             qualified(NameNetLatency, lang),
			Source:           netlatencySource,
			Lang:             lang,
			DefaultParams:    map[string]any{},
			DirtyBytesPerRun: 512 << 10,
		},
		Description: "Network latency test that immediately responds upon invocation",
		Suite:       "FaaSdom",
	}
}

// FaaSdom returns the four microbenchmarks for a language, in the
// paper's figure order.
func FaaSdom(lang runtime.Lang) []Workload {
	return []Workload{Fact(lang), MatrixMult(lang), DiskIO(lang), NetLatency(lang)}
}

// qualified appends the language to a benchmark name, matching the
// paper's faas-fact-nodejs / faas-fact-python naming.
func qualified(name string, lang runtime.Lang) string {
	return fmt.Sprintf("%s-%s", name, lang)
}
