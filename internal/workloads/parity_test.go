package workloads

import (
	"testing"

	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/platform"
	"repro/internal/runtime"
)

// TestCrossPlatformParity runs every FaaSdom workload on all four
// platforms and requires bit-identical results: the execution substrate
// (container vs gVisor vs microVM vs snapshot resume, interpreter vs
// JITted code) must never change what a function computes.
func TestCrossPlatformParity(t *testing.T) {
	lightParams := map[string]map[string]any{
		NameFact + "-nodejs":       {"n": 5040, "rounds": 3},
		NameFact + "-python":       {"n": 5040, "rounds": 3},
		NameMatrixMult + "-nodejs": {"n": 10},
		NameMatrixMult + "-python": {"n": 10},
		NameDiskIO + "-nodejs":     {"iterations": 5},
		NameDiskIO + "-python":     {"iterations": 5},
		NameNetLatency + "-nodejs": nil,
		NameNetLatency + "-python": nil,
	}
	platforms := []struct {
		name string
		mk   func(env *platform.Env) platform.Platform
	}{
		{"openwhisk", platform.NewOpenWhisk},
		{"gvisor", platform.NewGVisor},
		{"firecracker", func(env *platform.Env) platform.Platform {
			return platform.NewFirecracker(env, platform.FCNoSnapshot)
		}},
		{"fireworks", func(env *platform.Env) platform.Platform {
			return core.New(env, core.Options{})
		}},
	}
	for _, lang_ := range []runtime.Lang{runtime.LangNode, runtime.LangPython} {
		for _, w := range FaaSdom(lang_) {
			params := platform.MustParams(lightParams[w.Name])
			var reference lang.Value
			var referencePlatform string
			for _, pf := range platforms {
				env := platform.NewEnv(platform.EnvConfig{})
				p := pf.mk(env)
				if _, err := p.Install(w.Function); err != nil {
					t.Fatalf("%s install %s: %v", pf.name, w.Name, err)
				}
				inv, err := p.Invoke(w.Name, params, platform.InvokeOptions{})
				if err != nil {
					t.Fatalf("%s invoke %s: %v", pf.name, w.Name, err)
				}
				if reference == nil {
					reference = inv.Result
					referencePlatform = pf.name
					continue
				}
				if !lang.Equal(inv.Result, reference) {
					t.Errorf("%s: %s computed %v but %s computed %v",
						w.Name, pf.name, inv.Result, referencePlatform, reference)
				}
				// And a second (warm / resumed) invocation agrees too.
				again, err := p.Invoke(w.Name, params, platform.InvokeOptions{})
				if err != nil {
					t.Fatalf("%s re-invoke %s: %v", pf.name, w.Name, err)
				}
				if !lang.Equal(again.Result, reference) {
					t.Errorf("%s: %s warm run computed %v, want %v",
						w.Name, pf.name, again.Result, reference)
				}
			}
		}
	}
}
