package workloads

import (
	"repro/internal/platform"
	"repro/internal/runtime"
)

// ServerlessBench application function names (Figure 8).
const (
	NameAlexaFrontend  = "alexa-frontend"
	NameAlexaFact      = "alexa-fact"
	NameAlexaReminder  = "alexa-reminder"
	NameAlexaSmartHome = "alexa-smarthome"

	NameWageInsert  = "wage-insert"
	NameWagePersist = "wage-persist"
	NameWageAnalyze = "wage-analyze"
	NameWageReport  = "wage-report"
)

// alexaFrontendSource performs the voice-analysis step: tokenize the
// user's utterance, score intent keywords, and dispatch to the matching
// skill function (Figure 8(a)).
const alexaFrontendSource = `
// Alexa Skills frontend: intent analysis and skill dispatch.
func tokenize(text) {
  let words = split(lower(text), " ");
  let out = [];
  for (w in words) {
    let t = trim(w);
    if (len(t) > 0) { push(out, t); }
  }
  return out;
}

func scoreIntent(tokens, keywords) {
  let score = 0;
  for (t in tokens) {
    for (k in keywords) {
      if (t == k) { score = score + 2; }
      if (contains(t, k)) { score = score + 1; }
    }
  }
  return score;
}

func classify(text) {
  let tokens = tokenize(text);
  let factScore = scoreIntent(tokens, ["fact", "tell", "know", "trivia"]);
  let remindScore = scoreIntent(tokens, ["remind", "reminder", "schedule", "calendar", "appointment"]);
  let homeScore = scoreIntent(tokens, ["light", "lights", "door", "tv", "home", "turn", "lock", "status"]);
  if (remindScore >= factScore && remindScore >= homeScore && remindScore > 0) {
    return "reminder";
  }
  if (homeScore >= factScore && homeScore > 0) {
    return "smarthome";
  }
  return "fact";
}

func main(params) {
  let text = params.text;
  if (text == null) { text = "tell me a fact"; }
  let intent = classify(text);
  let reply = null;
  if (intent == "fact") {
    reply = invoke("alexa-fact", {"query": text});
  } else {
    if (intent == "reminder") {
      reply = invoke("alexa-reminder", params);
    } else {
      reply = invoke("alexa-smarthome", params);
    }
  }
  let out = {"intent": intent, "reply": reply};
  http_respond(200, json_encode(out));
  return out;
}
`

// alexaFactSource answers simple common-sense questions.
const alexaFactSource = `
// Alexa fact skill: answer simple common sense.
func pick(query, facts) {
  let h = 0;
  let i = 0;
  while (i < len(query)) {
    // Cheap string hash over the utterance.
    h = (h * 31 + len(substr(query, i, 1)) + i) % 1000003;
    i = i + 1;
  }
  return facts[h % len(facts)];
}

func main(params) {
  let query = params.query;
  if (query == null) { query = "a fact"; }
  let facts = [
    "A year on Mercury is just 88 days long.",
    "Octopuses have three hearts.",
    "Honey never spoils.",
    "Bananas are berries, but strawberries are not.",
    "The Eiffel Tower grows about 15 cm in summer."
  ];
  return pick(query, facts);
}
`

// alexaReminderSource stores and searches schedule entries in CouchDB;
// reminder documents carry item, place, and URL fields as §5.3
// describes.
const alexaReminderSource = `
// Alexa reminder skill: search or enter a schedule into CouchDB.
func main(params) {
  let action = params.action;
  if (action == null) { action = "list"; }
  if (action == "add") {
    let doc = {
      "_id": "reminder-" + params.id,
      "type": "reminder",
      "item": params.item,
      "place": params.place,
      "url": params.url
    };
    // Upsert: repeated adds of the same id update the schedule entry.
    let existing = db_get("reminders", doc["_id"]);
    if (existing != null) { doc["_rev"] = existing["_rev"]; }
    let stored = db_put("reminders", doc);
    return "saved reminder " + stored["_id"];
  }
  let found = db_find("reminders", {"type": "reminder"});
  let items = [];
  for (doc in found) {
    push(items, doc["item"]);
  }
  return "you have " + len(items) + " reminders: " + join(items, ", ");
}
`

// alexaSmartHomeSource reports and toggles device on/off status.
const alexaSmartHomeSource = `
// Alexa smart home skill: notify the on/off status of each device.
func deviceDoc(name) {
  let doc = db_get("smarthome", "device-" + name);
  if (doc == null) {
    doc = {"_id": "device-" + name, "name": name, "state": "off"};
    doc = db_put("smarthome", doc);
  }
  return doc;
}

func main(params) {
  let devices = ["light", "door", "tv"];
  let action = params.action;
  if (action == "toggle") {
    let target = deviceDoc(params.device);
    if (target.state == "on") {
      target["state"] = "off";
    } else {
      target["state"] = "on";
    }
    db_put("smarthome", target);
  }
  let status = [];
  for (d in devices) {
    let doc = deviceDoc(d);
    push(status, doc.name + "=" + doc.state);
  }
  return join(status, " ");
}
`

// wageInsertSource validates and reformats incoming wage records, then
// chains to the persistence function (Figure 8(b), data insertion).
const wageInsertSource = `
// Data analysis: validate wage input, normalize it, chain to persist.
func validRecord(params) {
  if (params.name == null) { return false; }
  if (params.id == null) { return false; }
  if (params.role == null) { return false; }
  if (params.base == null) { return false; }
  if (params.base < 0) { return false; }
  return true;
}

func main(params) {
  if (!validRecord(params)) {
    http_respond(400, "invalid wage record");
    return null;
  }
  let doc = {
    "_id": "wage-" + params.id,
    "type": "wage",
    "name": params.name,
    "id": params.id,
    "role": lower(params.role),
    "base": params.base
  };
  let stored = invoke("wage-persist", doc);
  http_respond(200, "inserted " + stored["_id"]);
  return stored;
}
`

// wagePersistSource writes the normalized record to CouchDB.
const wagePersistSource = `
// Data analysis: persist one wage document into CouchDB (upsert:
// repeated submissions for an employee update the record).
func main(params) {
  let existing = db_get("wages", params["_id"]);
  if (existing != null) { params["_rev"] = existing["_rev"]; }
  return db_put("wages", params);
}
`

// wageAnalyzeSource computes bonuses, taxes, and per-role statistics
// over all stored wages, then chains to the report writer (the dashed
// analysis chain of Figure 8(b), triggered on database update).
const wageAnalyzeSource = `
// Data analysis: calculate bonuses and taxes, make statistics.
func bonusFor(role, base) {
  if (role == "manager") { return base / 5; }
  if (role == "engineer") { return base / 4; }
  return base / 10;
}

func taxFor(gross) {
  // Progressive brackets.
  let tax = 0;
  if (gross > 100000) {
    tax = tax + (gross - 100000) * 40 / 100;
    gross = 100000;
  }
  if (gross > 50000) {
    tax = tax + (gross - 50000) * 30 / 100;
    gross = 50000;
  }
  tax = tax + gross * 15 / 100;
  return tax;
}

func main(params) {
  let wages = db_find("wages", {"type": "wage"});
  let byRole = {};
  let totalNet = 0;
  for (doc in wages) {
    let bonus = bonusFor(doc.role, doc.base);
    let gross = doc.base + bonus;
    let tax = taxFor(gross);
    let net = gross - tax;
    totalNet = totalNet + net;
    if (byRole[doc.role] == null) {
      byRole[doc.role] = {"count": 0, "net": 0};
    }
    byRole[doc.role]["count"] = byRole[doc.role]["count"] + 1;
    byRole[doc.role]["net"] = byRole[doc.role]["net"] + net;
  }
  let stats = {
    "_id": "stats-latest",
    "type": "stats",
    "employees": len(wages),
    "total_net": totalNet,
    "by_role": byRole
  };
  return invoke("wage-report", stats);
}
`

// wageReportSource stores the analysis result back into CouchDB.
const wageReportSource = `
// Data analysis: store the computed statistics.
func main(params) {
  let existing = db_get("wage-stats", params["_id"]);
  if (existing != null) {
    params["_rev"] = existing["_rev"];
  }
  let stored = db_put("wage-stats", params);
  return "stats for " + params.employees + " employees stored as " + stored["_rev"];
}
`

// AlexaSkills returns the Alexa Skills application: a frontend chained
// to three skill functions, all Node.js as in ServerlessBench.
func AlexaSkills() []Workload {
	lang := runtime.LangNode
	return []Workload{
		{Function: platform.Function{Name: NameAlexaFrontend, Source: alexaFrontendSource, Lang: lang,
			DefaultParams:    map[string]any{"text": "tell me a fact"},
			DirtyBytesPerRun: 2 << 20},
			Description: "Apps run through Alexa AI device (frontend)", Suite: "ServerlessBench"},
		{Function: platform.Function{Name: NameAlexaFact, Source: alexaFactSource, Lang: lang,
			DefaultParams:    map[string]any{"query": "tell me a fact"},
			DirtyBytesPerRun: 1 << 20},
			Description: "Alexa fact skill", Suite: "ServerlessBench"},
		{Function: platform.Function{Name: NameAlexaReminder, Source: alexaReminderSource, Lang: lang,
			DefaultParams: map[string]any{"action": "add", "id": "prime", "item": "standup",
				"place": "office", "url": "https://cal.example/standup"},
			DirtyBytesPerRun: 1 << 20},
			Description: "Alexa reminder skill (CouchDB)", Suite: "ServerlessBench"},
		{Function: platform.Function{Name: NameAlexaSmartHome, Source: alexaSmartHomeSource, Lang: lang,
			DefaultParams:    map[string]any{"action": "status"},
			DirtyBytesPerRun: 1 << 20},
			Description: "Alexa smart home skill", Suite: "ServerlessBench"},
	}
}

// DataAnalysis returns the wage data-analysis application: the
// insertion chain and the (database-triggered) analysis chain.
func DataAnalysis() []Workload {
	lang := runtime.LangNode
	return []Workload{
		{Function: platform.Function{Name: NameWageInsert, Source: wageInsertSource, Lang: lang,
			DefaultParams: map[string]any{"name": "prime", "id": "p0", "role": "engineer",
				"base": 52000},
			DirtyBytesPerRun: 1 << 20},
			Description: "Validate and normalize wage input", Suite: "ServerlessBench"},
		{Function: platform.Function{Name: NameWagePersist, Source: wagePersistSource, Lang: lang,
			// Matches the document wage-insert's priming produces, so
			// repeated priming upserts one record instead of two.
			DefaultParams: map[string]any{"_id": "wage-p0", "type": "wage", "name": "prime",
				"id": "p0", "role": "engineer", "base": 52000},
			DirtyBytesPerRun: 1 << 20},
			Description: "Persist wage document to CouchDB", Suite: "ServerlessBench"},
		{Function: platform.Function{Name: NameWageAnalyze, Source: wageAnalyzeSource, Lang: lang,
			DefaultParams:    map[string]any{"trigger": "prime"},
			DirtyBytesPerRun: 2 << 20},
			Description: "Analyze wages: bonuses, taxes, statistics", Suite: "ServerlessBench"},
		{Function: platform.Function{Name: NameWageReport, Source: wageReportSource, Lang: lang,
			DefaultParams: map[string]any{"_id": "stats-latest", "type": "stats", "employees": 0,
				"total_net": 0, "by_role": map[string]any{}},
			DirtyBytesPerRun: 1 << 20},
			Description: "Store analysis statistics", Suite: "ServerlessBench"},
	}
}

// All returns every workload of Table 2 (FaaSdom in both languages plus
// the two real-world applications).
func All() []Workload {
	var out []Workload
	out = append(out, FaaSdom(runtime.LangNode)...)
	out = append(out, FaaSdom(runtime.LangPython)...)
	out = append(out, AlexaSkills()...)
	out = append(out, DataAnalysis()...)
	return out
}
