package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/platform"
	"repro/internal/runtime"
	"repro/internal/workloads"
)

// fireworksSustainedDirtyBytes models the additional guest memory a
// long-running microVM dirties while the consolidation experiment keeps
// it alive (guest page cache, slab, logging). Calibrated so the maximum
// consolidation ratio lands at the paper's 565 vs 337 microVMs.
const fireworksSustainedDirtyBytes = 120<<20 + 448<<10

// fig10MaxVMs caps the consolidation loops defensively.
const fig10MaxVMs = 1200

// lightFactParams keeps per-invocation execution trivial: Figure 10
// measures memory, not latency.
var lightFactParams = map[string]any{"n": 101, "rounds": 1}

// RunFig10 reproduces §5.4: launch microVMs running faas-fact until
// swapping starts (host 128 GiB, vm.swappiness=60 ⇒ 76.8 GiB
// threshold), for Fireworks (shared post-JIT snapshot) and Firecracker
// (independent VMs).
func RunFig10() (*Result, error) {
	res := &Result{ID: "fig10"}
	w := workloads.Fact(runtime.LangNode)

	series := Table{
		ID:     "fig10",
		Title:  "Figure 10: host memory usage vs number of microVMs (faas-fact, Node.js)",
		Header: []string{"#microVMs", "Firecracker used (GiB)", "Fireworks used (GiB)"},
	}

	// --- Fireworks: every VM resumes the same snapshot (CoW). ---
	fwEnv := newEnv()
	fw := core.New(fwEnv, core.Options{RetainInstances: true})
	if _, err := fw.Install(w.Function); err != nil {
		return nil, err
	}
	params := platform.MustParams(lightFactParams)
	fwUsage := make(map[int]float64)
	fwMax := 0
	for i := 1; i <= fig10MaxVMs; i++ {
		inv, err := fw.Invoke(w.Name, params, platform.InvokeOptions{})
		if err != nil {
			return nil, fmt.Errorf("fig10 fireworks vm %d: %w", i, err)
		}
		_ = inv
		instances := fw.Instances(w.Name)
		instances[len(instances)-1].SustainDirty(fireworksSustainedDirtyBytes)
		fwUsage[i] = gib(fwEnv.Mem.Used())
		if fwEnv.Mem.Swapping() {
			fwMax = i
			break
		}
	}
	if fwMax == 0 {
		return nil, fmt.Errorf("fig10: fireworks never hit the swap threshold in %d VMs", fig10MaxVMs)
	}

	// --- Firecracker: every VM is an independent cold boot. ---
	fcEnv := newEnv()
	fc := platform.NewFirecracker(fcEnv, platform.FCNoSnapshot)
	if _, err := fc.Install(w.Function); err != nil {
		return nil, err
	}
	fcUsage := make(map[int]float64)
	fcMax := 0
	for i := 1; i <= fig10MaxVMs; i++ {
		if _, err := fc.Invoke(w.Name, params, platform.InvokeOptions{Mode: platform.ModeCold}); err != nil {
			return nil, fmt.Errorf("fig10 firecracker vm %d: %w", i, err)
		}
		fcUsage[i] = gib(fcEnv.Mem.Used())
		if fcEnv.Mem.Swapping() {
			fcMax = i
			break
		}
	}
	if fcMax == 0 {
		return nil, fmt.Errorf("fig10: firecracker never hit the swap threshold in %d VMs", fig10MaxVMs)
	}

	for i := 50; i <= fwMax; i += 50 {
		fcCell := "(swapping)"
		if u, ok := fcUsage[i]; ok {
			fcCell = fmt.Sprintf("%.1f", u)
		}
		series.Rows = append(series.Rows, []string{
			fmt.Sprintf("%d", i), fcCell, fmt.Sprintf("%.1f", fwUsage[i]),
		})
	}
	series.Rows = append(series.Rows, []string{
		"max before swap",
		fmt.Sprintf("%d VMs", fcMax),
		fmt.Sprintf("%d VMs", fwMax),
	})
	series.Notes = append(series.Notes,
		"host 128 GiB, vm.swappiness=60 => swap threshold 76.8 GiB (paper §5.4)")
	res.Tables = append(res.Tables, series)

	ratio := float64(fwMax) / float64(fcMax)
	res.Checks = append(res.Checks,
		Check{
			Name:     "max microVMs before swapping (Firecracker)",
			Expected: "337",
			Measured: fmt.Sprintf("%d", fcMax),
			Pass:     fcMax >= 300 && fcMax <= 380,
		},
		Check{
			Name:     "max microVMs before swapping (Fireworks)",
			Expected: "565",
			Measured: fmt.Sprintf("%d", fwMax),
			Pass:     fwMax >= 520 && fwMax <= 620,
		},
		ratioCheck("consolidation ratio (Fireworks/Firecracker)", 1.67, ratio, 0.15),
	)
	return res, nil
}

func gib(bytes uint64) float64 { return float64(bytes) / (1 << 30) }

// fig12VMs is the paper's §5.5.2 configuration: 10 concurrent microVMs
// running the same benchmark.
const fig12VMs = 10

// RunFig12 reproduces the memory factor analysis: per-microVM PSS under
// (1) baseline Firecracker, (2) +VM-level OS snapshot, (3) +post-JIT
// snapshot (Fireworks), for every FaaSdom benchmark and language.
func RunFig12() (*Result, error) {
	res := &Result{ID: "fig12"}
	t := Table{
		ID:    "fig12",
		Title: "Figure 12: per-microVM PSS with 10 concurrent microVMs",
		Header: []string{"Benchmark", "Baseline (MiB)", "+OS snapshot (MiB)",
			"+post-JIT (MiB)", "OS saving", "post-JIT extra saving"},
	}

	var nodeBestOS, nodeBestPJ, pyBestOS float64
	var pyWorstPJ = 1.0
	for _, lang := range []runtime.Lang{runtime.LangNode, runtime.LangPython} {
		for _, w := range workloads.FaaSdom(lang) {
			base, err := fcAvgPSS(w, platform.FCNoSnapshot)
			if err != nil {
				return nil, err
			}
			osSnap, err := fcAvgPSS(w, platform.FCOSSnapshot)
			if err != nil {
				return nil, err
			}
			postJIT, err := fwAvgPSS(w)
			if err != nil {
				return nil, err
			}
			osSave := 1 - osSnap/base
			pjSave := 1 - postJIT/osSnap
			t.Rows = append(t.Rows, []string{
				w.Name, fmt.Sprintf("%.0f", base/(1<<20)), fmt.Sprintf("%.0f", osSnap/(1<<20)),
				fmt.Sprintf("%.0f", postJIT/(1<<20)),
				fmt.Sprintf("%.0f%%", osSave*100), fmt.Sprintf("%.0f%%", pjSave*100),
			})
			if lang == runtime.LangNode {
				if osSave > nodeBestOS {
					nodeBestOS = osSave
				}
				if pjSave > nodeBestPJ {
					nodeBestPJ = pjSave
				}
			} else {
				if osSave > pyBestOS {
					pyBestOS = osSave
				}
				if pjSave < pyWorstPJ {
					pyWorstPJ = pjSave
				}
			}
		}
	}
	res.Tables = append(res.Tables, t)
	res.Checks = append(res.Checks,
		Check{
			Name:     "OS snapshot memory saving (best case)",
			Expected: "up to 73%",
			Measured: fmt.Sprintf("%.0f%%", max2(nodeBestOS, pyBestOS)*100),
			Pass:     max2(nodeBestOS, pyBestOS) >= 0.35,
		},
		Check{
			Name:     "post-JIT extra saving, Node.js (best case)",
			Expected: "up to 74%",
			Measured: fmt.Sprintf("%.0f%%", nodeBestPJ*100),
			Pass:     nodeBestPJ >= 0.5,
		},
		Check{
			Name:     "post-JIT extra saving, Python (small/none)",
			Expected: "no significant improvement",
			Measured: fmt.Sprintf("%.0f%%", pyWorstPJ*100),
			Pass:     pyWorstPJ <= 0.35,
		},
	)
	return res, nil
}

func max2(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// fcAvgPSS runs 10 VMs of a workload on a Firecracker baseline and
// returns the average per-VM PSS in bytes.
func fcAvgPSS(w workloads.Workload, mode platform.FirecrackerMode) (float64, error) {
	env := newEnv()
	p := platform.NewFirecracker(env, mode)
	if _, err := p.Install(w.Function); err != nil {
		return 0, err
	}
	params := platform.MustParams(lightParamsFor(w))
	for i := 0; i < fig12VMs; i++ {
		if _, err := p.Invoke(w.Name, params, platform.InvokeOptions{Mode: platform.ModeCold}); err != nil {
			return 0, err
		}
	}
	reporter, ok := p.(MemoryReporter)
	if !ok {
		return 0, fmt.Errorf("fig12: %s does not report memory", p.PlatformName())
	}
	return avgPSS(reporter.Spaces(w.Name))
}

// fwAvgPSS runs 10 retained Fireworks instances and returns average
// per-VM PSS.
func fwAvgPSS(w workloads.Workload) (float64, error) {
	env := newEnv()
	fw := core.New(env, core.Options{RetainInstances: true})
	if _, err := fw.Install(w.Function); err != nil {
		return 0, err
	}
	params := platform.MustParams(lightParamsFor(w))
	for i := 0; i < fig12VMs; i++ {
		if _, err := fw.Invoke(w.Name, params, platform.InvokeOptions{}); err != nil {
			return 0, err
		}
	}
	return avgPSS(fw.Spaces(w.Name))
}

func avgPSS(spaces []*mem.Space) (float64, error) {
	if len(spaces) == 0 {
		return 0, fmt.Errorf("fig12: no live sandboxes to measure")
	}
	var sum float64
	for _, s := range spaces {
		sum += s.PSS()
	}
	return sum / float64(len(spaces)), nil
}

// lightParamsFor shrinks compute-heavy inputs: the memory experiments
// do not need long executions.
func lightParamsFor(w workloads.Workload) map[string]any {
	switch {
	case w.Name == workloads.NameFact+"-nodejs" || w.Name == workloads.NameFact+"-python":
		return lightFactParams
	case w.Name == workloads.NameMatrixMult+"-nodejs" || w.Name == workloads.NameMatrixMult+"-python":
		return map[string]any{"n": 8}
	case w.Name == workloads.NameDiskIO+"-nodejs" || w.Name == workloads.NameDiskIO+"-python":
		return map[string]any{"iterations": 4}
	default:
		return w.DefaultParams
	}
}
