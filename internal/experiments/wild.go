package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/runtime"
	"repro/internal/stats"
	"repro/internal/tracegen"
	"repro/internal/workloads"
)

// Trace-driven extension experiment: the paper's §2 motivation argues
// that warm pools cannot help the ~81.4% of functions invoked less than
// once a minute (Shahrad et al. [48]) — the sandbox either idles in
// memory past its keep-alive or the next request pays a full cold
// start. RunWild replays a production-shaped trace against (a) an
// OpenWhisk-style platform with a 10-minute keep-alive and (b)
// Fireworks, and reports cold-start rates, start-up latency, and the
// memory held by idle warm sandboxes.

// wildKeepAlive is the container keep-alive window (AWS Lambda and
// OpenWhisk both default to ~10 minutes).
const wildKeepAlive = 10 * time.Minute

// wildConfig shapes the replayed trace: 120 functions over one hour.
var wildConfig = tracegen.Config{
	Functions: 120,
	Duration:  time.Hour,
	Seed:      2022, // EuroSys '22
}

// RunWild replays the trace. Registered as experiment id "wild".
func RunWild() (*Result, error) {
	res := &Result{ID: "wild"}
	trace := tracegen.Generate(wildConfig)
	ts := trace.Summarize()

	// Every function is the tiny netlatency handler: the experiment is
	// about start-up behaviour, not execution.
	source := workloads.NetLatency(runtime.LangNode).Source

	type classAgg struct {
		invocations int
		colds       int
		startup     time.Duration
	}
	type outcome struct {
		perClass map[tracegen.Class]*classAgg
		// residentByteMinutes integrates idle warm-sandbox memory over
		// the trace (bytes x minutes).
		residentByteMinutes float64
		snapshotDiskBytes   uint64
	}

	newOutcome := func() *outcome {
		return &outcome{perClass: map[tracegen.Class]*classAgg{
			tracegen.ClassPopular: {}, tracegen.ClassRare: {},
		}}
	}

	// --- OpenWhisk with a first-class keep-alive policy ---
	// The platform itself decides cold vs warm from the request's
	// timeline position, expiring idle containers and releasing their
	// memory; resident memory is *measured* from the host, not modeled.
	owEnv := newEnv()
	ow := platform.NewOpenWhiskKeepAlive(owEnv, wildKeepAlive)
	for _, f := range trace.Functions {
		if _, err := ow.Install(platform.Function{Name: f.Name, Source: source, Lang: runtime.LangNode}); err != nil {
			return nil, err
		}
	}
	owOut := newOutcome()
	params := platform.MustParams(nil)
	const sampleStep = 30 * time.Second
	eventIdx := 0
	for tick := sampleStep; tick <= wildConfig.Duration; tick += sampleStep {
		for eventIdx < len(trace.Events) && trace.Events[eventIdx].At <= tick {
			ev := trace.Events[eventIdx]
			eventIdx++
			inv, err := ow.Invoke(ev.Function, params, platform.InvokeOptions{At: ev.At})
			if err != nil {
				return nil, fmt.Errorf("wild openwhisk %s: %w", ev.Function, err)
			}
			agg := owOut.perClass[trace.ClassOf(ev.Function)]
			agg.invocations++
			if inv.Mode == platform.ModeCold {
				agg.colds++
			}
			agg.startup += inv.Breakdown.Startup()
		}
		// Background reaper, then a time-weighted memory sample.
		ow.ExpireIdle(tick)
		owOut.residentByteMinutes += float64(owEnv.Mem.Used()) * sampleStep.Minutes()
	}

	// --- Fireworks ---
	fwEnv := newEnv()
	fw := core.New(fwEnv, core.Options{})
	for _, f := range trace.Functions {
		if _, err := fw.Install(platform.Function{Name: f.Name, Source: source, Lang: runtime.LangNode}); err != nil {
			return nil, err
		}
	}
	fwOut := newOutcome()
	fwOut.snapshotDiskBytes = fwEnv.Snaps.UsedBytes()
	for _, ev := range trace.Events {
		inv, err := fw.Invoke(ev.Function, params, platform.InvokeOptions{})
		if err != nil {
			return nil, fmt.Errorf("wild fireworks %s: %w", ev.Function, err)
		}
		agg := fwOut.perClass[trace.ClassOf(ev.Function)]
		agg.invocations++
		agg.startup += inv.Breakdown.Startup()
		// No cold/warm distinction and no resident idle memory: the VM
		// is gone after the invocation; only the disk snapshot remains.
	}

	// --- Render ---
	t := Table{
		ID:    "wild",
		Title: "Extension (§2 motivation): 1-hour Serverless-in-the-Wild trace, 120 functions",
		Header: []string{"Platform", "Class", "Invocations", "Cold starts",
			"Cold %", "Mean start-up"},
		Notes: []string{
			fmt.Sprintf("trace: %d functions (%d popular / %d rare), %d invocations; keep-alive %v",
				ts.Functions, ts.PopularFuncs, ts.RareFuncs, ts.Events, wildKeepAlive),
			fmt.Sprintf("functions invoked >1/min: %.1f%% (paper's [48] reports 18.6%%)",
				ts.CalledMoreThanOncePerMin*100),
		},
	}
	addRows := func(name string, out *outcome) {
		for _, class := range []tracegen.Class{tracegen.ClassPopular, tracegen.ClassRare} {
			agg := out.perClass[class]
			if agg.invocations == 0 {
				continue
			}
			coldPct := 100 * float64(agg.colds) / float64(agg.invocations)
			t.Rows = append(t.Rows, []string{name, string(class),
				fmt.Sprintf("%d", agg.invocations), fmt.Sprintf("%d", agg.colds),
				fmt.Sprintf("%.1f%%", coldPct),
				fmtDur(agg.startup / time.Duration(agg.invocations))})
		}
	}
	addRows("openwhisk", owOut)
	addRows("fireworks", fwOut)
	res.Tables = append(res.Tables, t)

	memTable := Table{
		ID:     "wild-mem",
		Title:  "Idle resources held between invocations",
		Header: []string{"Platform", "Avg idle warm-pool memory", "Snapshot disk"},
	}
	owAvgResident := owOut.residentByteMinutes / wildConfig.Duration.Minutes()
	memTable.Rows = append(memTable.Rows,
		[]string{"openwhisk", stats.FormatBytes(uint64(owAvgResident)), "0 B"},
		[]string{"fireworks", "0 B", stats.FormatBytes(fwOut.snapshotDiskBytes)},
	)
	res.Tables = append(res.Tables, memTable)

	// --- Checks ---
	owRare := owOut.perClass[tracegen.ClassRare]
	owPopular := owOut.perClass[tracegen.ClassPopular]
	fwAll := fwOut.perClass[tracegen.ClassPopular].startup + fwOut.perClass[tracegen.ClassRare].startup
	fwCount := fwOut.perClass[tracegen.ClassPopular].invocations + fwOut.perClass[tracegen.ClassRare].invocations
	fwMean := fwAll / time.Duration(fwCount)
	owRareMean := owRare.startup / time.Duration(owRare.invocations)
	rareColdPct := float64(owRare.colds) / float64(owRare.invocations)
	popColdPct := float64(owPopular.colds) / float64(owPopular.invocations)

	res.Checks = append(res.Checks,
		Check{
			Name:     "rare functions mostly cold-start despite keep-alive",
			Expected: "warm pools ineffective for the 81.4% class (§2)",
			Measured: fmt.Sprintf("%.0f%% cold", rareColdPct*100),
			Pass:     rareColdPct > 0.5,
		},
		Check{
			Name:     "popular functions stay warm",
			Expected: "keep-alive works for the 18.6% class",
			Measured: fmt.Sprintf("%.1f%% cold", popColdPct*100),
			Pass:     popColdPct < 0.05,
		},
		Check{
			Name:     "Fireworks start-up vs OpenWhisk on rare functions",
			Expected: "snapshot resume beats cold starts outright",
			Measured: stats.FormatSpeedup(stats.Speedup(owRareMean, fwMean)),
			Pass:     owRareMean > 10*fwMean,
		},
		Check{
			Name:     "idle memory traded for disk",
			Expected: "warm pools hold GiBs of RAM; Fireworks holds none",
			Measured: fmt.Sprintf("%s RAM vs %s disk", stats.FormatBytes(uint64(owAvgResident)), stats.FormatBytes(fwOut.snapshotDiskBytes)),
			Pass:     owAvgResident > 1<<30 && fwOut.snapshotDiskBytes > 0,
		},
	)
	return res, nil
}
