package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/runtime"
	"repro/internal/sandbox"
	"repro/internal/vmm"
	"repro/internal/workloads"
)

// RunTable1 regenerates the design-comparison matrix.
func RunTable1() (*Result, error) {
	t := Table{
		ID:     "table1",
		Title:  "Table 1: Design comparison of serverless platforms",
		Header: []string{"Serverless Platform", "Isolation", "Performance", "Memory Efficiency"},
	}
	for _, row := range sandbox.Table1() {
		t.Rows = append(t.Rows, []string{row.Platform, row.Isolation, row.Performance, row.MemoryEfficiency})
	}
	return &Result{ID: "table1", Tables: []Table{t}}, nil
}

// RunTable2 regenerates the tested-applications table from the workload
// registry.
func RunTable2() (*Result, error) {
	t := Table{
		ID:     "table2",
		Title:  "Table 2: Tested serverless applications",
		Header: []string{"Application Name", "Description", "Language"},
	}
	seen := make(map[string]bool)
	for _, w := range workloads.All() {
		key := w.Suite + "/" + w.Description
		if seen[key] {
			continue // one row per app; languages merged below
		}
		seen[key] = true
		langs := "Node.js"
		if w.Suite == "FaaSdom" {
			langs = "Node.js, Python"
		}
		t.Rows = append(t.Rows, []string{w.Suite + ": " + baseName(w.Name), w.Description, langs})
	}
	return &Result{ID: "table2", Tables: []Table{t}}, nil
}

func baseName(name string) string {
	for _, suffix := range []string{"-nodejs", "-python"} {
		if len(name) > len(suffix) && name[len(name)-len(suffix):] == suffix {
			return name[:len(name)-len(suffix)]
		}
	}
	return name
}

// RunSnapshotTime measures the §5.1 post-JIT snapshot creation times:
// the snapshot serialization itself must land in the paper's 0.36-0.47 s
// (Node.js) and 0.38-0.44 s (Python) bands; the full install adds
// package installation and JIT priming.
func RunSnapshotTime() (*Result, error) {
	t := Table{
		ID:    "snaptime",
		Title: "§5.1: Post-JIT snapshot creation time (install phase)",
		Header: []string{"Function", "Language", "Snapshot size", "Snapshot time",
			"Full install (incl. npm/pip + JIT)"},
	}
	res := &Result{ID: "snaptime", Tables: nil}
	var nodeMin, nodeMax, pyMin, pyMax time.Duration
	for _, lang := range []runtime.Lang{runtime.LangNode, runtime.LangPython} {
		for _, w := range workloads.FaaSdom(lang) {
			env := newEnv()
			fw := core.New(env, core.Options{})
			report, err := fw.Install(w.Function)
			if err != nil {
				return nil, fmt.Errorf("snaptime %s: %w", w.Name, err)
			}
			snapTime := vmm.CostSnapshotBase + time.Duration(report.SnapshotBytes)*vmm.CostSnapshotPerByte
			t.Rows = append(t.Rows, []string{
				w.Name, string(lang),
				fmt.Sprintf("%.0f MiB", float64(report.SnapshotBytes)/(1<<20)),
				fmtDur(snapTime), fmtDur(report.Duration),
			})
			if lang == runtime.LangNode {
				if nodeMin == 0 || snapTime < nodeMin {
					nodeMin = snapTime
				}
				if snapTime > nodeMax {
					nodeMax = snapTime
				}
			} else {
				if pyMin == 0 || snapTime < pyMin {
					pyMin = snapTime
				}
				if snapTime > pyMax {
					pyMax = snapTime
				}
			}
		}
	}
	res.Tables = append(res.Tables, t)
	res.Checks = append(res.Checks,
		Check{
			Name:     "Node.js snapshot time band",
			Expected: "0.36-0.47 s",
			Measured: fmt.Sprintf("%s-%s", fmtDur(nodeMin), fmtDur(nodeMax)),
			Pass:     nodeMin >= 300*time.Millisecond && nodeMax <= 550*time.Millisecond,
		},
		Check{
			Name:     "Python snapshot time band",
			Expected: "0.38-0.44 s",
			Measured: fmt.Sprintf("%s-%s", fmtDur(pyMin), fmtDur(pyMax)),
			Pass:     pyMin >= 300*time.Millisecond && pyMax <= 550*time.Millisecond,
		},
	)
	return res, nil
}
