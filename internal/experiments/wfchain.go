package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/couchdb"
	"repro/internal/events"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/runtime"
	"repro/internal/workflow"
	"repro/internal/workloads"
)

// Wfchain experiment: the workflow engine under the chaos storm. The
// declarative Alexa DAG fires on a cron trigger, the wage-analysis DAG
// on a change-feed trigger, and a fan-out/fan-in pipeline carries a
// poisoned branch whose function does not exist. The experiment
// verifies the engine's delivery contract end to end:
//
//   - at-least-once: every healthy run completes despite injected bus
//     and data-path faults (per-step retries absorb them);
//   - dead-letter: the poisoned step — and only the poisoned step —
//     exhausts its retries and parks on the workflow's DLQ topic,
//     stalling exactly its own runs;
//   - replayable redelivery: deploying the missing function and
//     replaying the DLQ completes every stalled run and drains the
//     queue;
//   - determinism: a fixed seed reproduces the metrics dump and the
//     event journal byte for byte, recovery phase included.

const (
	// wfchainSeed pins the fault schedule for the workflow storm.
	wfchainSeed = 31
	// wfchainRate matches the chaos experiment's ~1% per-operation rate.
	wfchainRate = 0.01
	// wfchainCronEvery/Offset schedule the Alexa heartbeat; the storm
	// window below yields a deterministic firing count.
	wfchainCronEvery  = 5 * time.Millisecond
	wfchainCronOffset = time.Millisecond
)

// wfchainMissing is the poisoned branch's callee. It is NOT deployed
// during the storm — the step fails permanently and dead-letters — and
// is installed only for the recovery phase.
var wfchainMissing = platform.Function{
	Name:             "wf-missing",
	Source:           `func main(params) { return {"recovered": true, "text": params.text}; }`,
	Lang:             runtime.LangNode,
	DefaultParams:    map[string]any{"text": "prime"},
	DirtyBytesPerRun: 1 << 20,
}

// wfchainPipeline is the fan-out/fan-in DAG with the poisoned branch:
// intent fans out to a healthy skill and the missing function, and the
// join needs both — so every run stalls until the DLQ is replayed.
func wfchainPipeline() *workflow.Spec {
	return &workflow.Spec{
		Name: "pipeline",
		Steps: []workflow.Step{
			{ID: "head", Function: workloads.NameAlexaIntent},
			{ID: "healthy", Function: workloads.NameAlexaFact, After: []string{"head"},
				Input: map[string]any{"query": "$input.text"}},
			{ID: "poison", Function: wfchainMissing.Name, After: []string{"head"}},
			{ID: "join", Function: workloads.NameAlexaIntent, After: []string{"healthy", "poison"}},
		},
	}
}

// wfchainOutcome is what one seeded storm (plus recovery) produced.
type wfchainOutcome struct {
	// healthy/poisoned run counts at the end of the storm, before
	// recovery. stalledOther counts non-pipeline runs that failed to
	// complete — the at-least-once check requires zero.
	healthyRuns  int
	poisonedRuns int
	stalledOther int
	cronFired    int64
	feedFired    int64
	injected     int64
	// DLQ state observed between storm and recovery.
	parked   []workflow.DLQRecord
	dlqDepth int64
	// recovery results.
	recovered   int
	depthAfter  int64
	redelivered int64
	// determinism witnesses + Perfetto artifact.
	dump   string
	ndjson []byte
	chrome []byte
}

// runWfchainOnce replays the seeded workflow storm once.
func runWfchainOnce(seed uint64) (*wfchainOutcome, error) {
	plane := faults.NewPlane(seed)
	env := platform.NewEnv(platform.EnvConfig{Faults: plane})
	fw := core.New(env, core.Options{Retry: faults.DefaultRetryPolicy()})

	// Install fault-free (same methodology as chaos: the storm targets
	// the data path, not the one-time deploy), then arm the plane.
	apps := append(append(workloads.AlexaSkills(), workloads.DataAnalysis()...), workloads.WorkflowFunctions()...)
	for i := len(apps) - 1; i >= 0; i-- {
		if _, err := fw.Install(apps[i].Function); err != nil {
			return nil, fmt.Errorf("wfchain: install %s: %w", apps[i].Name, err)
		}
	}

	eng := workflow.New(env.Bus, env.Events, env.Metrics, fw, workflow.Options{Retry: faults.DefaultRetryPolicy()})
	for _, spec := range []*workflow.Spec{
		workloads.AlexaWorkflow(),
		workloads.WageInsertWorkflow(),
		workloads.WageAnalysisWorkflow(),
		wfchainPipeline(),
	} {
		if err := eng.Register(spec); err != nil {
			return nil, fmt.Errorf("wfchain: register %s: %w", spec.Name, err)
		}
	}
	eng.AddCron("alexa", wfchainCronEvery, wfchainCronOffset,
		map[string]any{"text": "remind me to check the storm", "action": "list"})
	eng.AddChangeFeed(env.Couch.CreateDB("wages"), "wage-analysis",
		func(c couchdb.Change) bool { return !c.Deleted && strings.HasPrefix(c.ID, "wage-e") },
		func(c couchdb.Change) map[string]any { return map[string]any{"trigger": c.ID} })

	plane.ApplyDefaultPlan(wfchainRate)

	// The storm: wage ingests arrive every 7 ms; each Tick first fires
	// any cron heartbeats that came due, each Drain runs the analysis
	// chains the ingest's database write triggered, and every other
	// ingest is chased by a poisoned pipeline run. Run errors are part
	// of the deterministic schedule (enqueue retries can exhaust), so
	// they are tolerated — the status accounting below is the judge.
	out := &wfchainOutcome{}
	var now time.Duration
	for i, rec := range wageRecords {
		now = time.Duration(i+1) * 7 * time.Millisecond
		eng.Tick(now)
		_, _ = eng.Run("wage-ingest", rec, now)
		eng.Drain(now)
		if i%2 == 0 {
			_, _ = eng.Run("pipeline", map[string]any{"text": "poisoned request"}, now)
		}
	}
	now += wfchainCronEvery
	eng.Tick(now)

	for _, r := range eng.Runs() {
		if r.Workflow == "pipeline" {
			out.poisonedRuns++
			continue
		}
		out.healthyRuns++
		if r.Status != workflow.RunCompleted {
			out.stalledOther++
		}
	}
	parked, err := eng.DLQ("pipeline")
	if err != nil {
		return nil, err
	}
	out.parked = parked

	reg := env.Metrics
	out.cronFired = reg.Counter(metrics.Name("workflow_triggers_fired_total", "source", workflow.SourceCron)).Value()
	out.feedFired = reg.Counter(metrics.Name("workflow_triggers_fired_total", "source", workflow.SourceChangeFeed)).Value()
	out.dlqDepth = reg.Gauge(metrics.Name("workflow_dlq_depth", "workflow", "pipeline")).Value()

	// Recovery, under the same armed storm: deploy the missing function
	// and replay the dead letters. Every stalled pipeline run must
	// resume from its parked step and complete.
	if _, err := fw.Install(wfchainMissing); err != nil {
		return nil, fmt.Errorf("wfchain: install recovery function: %w", err)
	}
	replayed, err := eng.ReplayDLQ("pipeline", now+wfchainCronEvery)
	if err != nil {
		return nil, fmt.Errorf("wfchain: replay DLQ: %w", err)
	}
	for _, r := range replayed {
		if r.Status == workflow.RunCompleted {
			out.recovered++
		}
	}
	out.depthAfter = reg.Gauge(metrics.Name("workflow_dlq_depth", "workflow", "pipeline")).Value()
	out.redelivered = reg.Counter("workflow_dlq_redelivered_total").Value()
	for _, cs := range reg.Snapshot().Counters {
		if strings.HasPrefix(cs.Name, "faults_injected_total{") {
			out.injected += cs.Value
		}
	}

	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		return nil, err
	}
	out.dump = sb.String()
	evs := env.Events.Events()
	var nd, ch bytes.Buffer
	if err := events.WriteNDJSON(&nd, evs); err != nil {
		return nil, err
	}
	if err := events.WriteChromeTrace(&ch, evs); err != nil {
		return nil, err
	}
	out.ndjson = nd.Bytes()
	out.chrome = ch.Bytes()
	return out, nil
}

// RunWfchain is registered as experiment id "wfchain".
func RunWfchain() (*Result, error) {
	storm, err := runWfchainOnce(wfchainSeed)
	if err != nil {
		return nil, err
	}
	replay, err := runWfchainOnce(wfchainSeed)
	if err != nil {
		return nil, err
	}
	reproducible := storm.dump == replay.dump
	traceReproducible := bytes.Equal(storm.ndjson, replay.ndjson)

	res := &Result{ID: "wfchain"}
	res.Tables = append(res.Tables, Table{
		ID:     "wfchain",
		Title:  fmt.Sprintf("Workflow chains under the chaos storm (seed %d, %.0f%% fault rate)", wfchainSeed, wfchainRate*100),
		Header: []string{"phase", "healthy runs", "poisoned runs", "cron fires", "feed fires", "faults", "DLQ depth"},
		Rows: [][]string{
			{"storm", fmt.Sprintf("%d", storm.healthyRuns), fmt.Sprintf("%d", storm.poisonedRuns),
				fmt.Sprintf("%d", storm.cronFired), fmt.Sprintf("%d", storm.feedFired),
				fmt.Sprintf("%d", storm.injected), fmt.Sprintf("%d", storm.dlqDepth)},
			{"after DLQ replay", fmt.Sprintf("%d", storm.healthyRuns+storm.recovered), "0",
				"-", "-", "-", fmt.Sprintf("%d", storm.depthAfter)},
		},
		Notes: []string{
			"poisoned pipeline runs fan out to a function that is not deployed until recovery",
			"healthy runs = cron-fired Alexa + wage ingests + change-feed-fired analyses",
		},
	})

	poisonOnly := len(storm.parked) == storm.poisonedRuns && storm.poisonedRuns > 0
	for _, rec := range storm.parked {
		if rec.Step != "poison" || rec.Function != wfchainMissing.Name {
			poisonOnly = false
		}
	}
	res.Checks = append(res.Checks,
		Check{
			Name:     "at-least-once: healthy runs complete under faults",
			Expected: "0 stalled, faults > 0",
			Measured: fmt.Sprintf("%d/%d stalled (%d faults injected)", storm.stalledOther, storm.healthyRuns, storm.injected),
			Pass:     storm.stalledOther == 0 && storm.healthyRuns > 0 && storm.injected > 0,
		},
		Check{
			Name:     "both trigger sources fired",
			Expected: "cron and change-feed runs",
			Measured: fmt.Sprintf("%d cron, %d change-feed", storm.cronFired, storm.feedFired),
			Pass:     storm.cronFired > 0 && storm.feedFired > 0,
		},
		Check{
			Name:     "DLQ parks exactly the poisoned steps",
			Expected: "one record per poisoned run, step=poison",
			Measured: fmt.Sprintf("%d records / %d poisoned runs (depth %d)", len(storm.parked), storm.poisonedRuns, storm.dlqDepth),
			Pass:     poisonOnly && storm.dlqDepth == int64(len(storm.parked)),
		},
		Check{
			Name:     "DLQ replay completes every stalled run",
			Expected: "all recovered, depth 0",
			Measured: fmt.Sprintf("%d/%d recovered, depth %d, redelivered %d", storm.recovered, storm.poisonedRuns, storm.depthAfter, storm.redelivered),
			Pass:     storm.recovered == storm.poisonedRuns && storm.depthAfter == 0 && storm.redelivered == int64(len(storm.parked)),
		},
		Check{
			Name:     "fixed seed reproduces the metrics dump",
			Expected: "byte-identical",
			Measured: map[bool]string{true: "identical", false: "DIVERGED"}[reproducible],
			Pass:     reproducible,
		},
		Check{
			Name:     "fixed seed reproduces the event journal",
			Expected: "byte-identical NDJSON",
			Measured: map[bool]string{true: "identical", false: "DIVERGED"}[traceReproducible],
			Pass:     traceReproducible,
		},
	)
	res.Artifacts = append(res.Artifacts,
		Artifact{Name: "wfchain-trace.json", Contents: storm.chrome},
		Artifact{Name: "wfchain-trace.ndjson", Contents: storm.ndjson},
	)
	return res, nil
}
