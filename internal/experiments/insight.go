package experiments

import (
	"bytes"
	"fmt"

	"repro/internal/events"
	"repro/internal/insight"
)

// Insight experiment: replay the chaos storm (same seed, resilient
// configuration) and run the insight engine over its causal journal.
// The storm is the ideal stress test for an analytics layer: every
// trace carries a real span tree, ~1% of operations fault with known
// kinds and sites, and the whole run is deterministic on the virtual
// clock. The experiment verifies that
//
//   - critical-path blame concentrates on the stage enclosing each
//     injected latency spike (the blame table names the culprit);
//   - the slowest-K report agrees with per-trace re-analysis straight
//     from the journal (no drift between the batch and single-trace
//     paths);
//   - every histogram exemplar captured during the storm resolves back
//     to a real trace in the journal;
//   - a fixed seed reproduces the insight report and the service-graph
//     DOT byte for byte.

// insightSlowestK is the depth of the slowest-traces report checked
// against per-trace re-analysis.
const insightSlowestK = 5

// RunInsight is registered as experiment id "insight".
func RunInsight() (*Result, error) {
	storm, err := runChaosOnce(chaosSeed, true)
	if err != nil {
		return nil, err
	}
	replay, err := runChaosOnce(chaosSeed, true)
	if err != nil {
		return nil, err
	}

	evs := storm.journal.Events()
	rep := insight.Analyze(evs)
	insight.CountReport(storm.reg, "experiment")

	var repJSON, repDOT, repMermaid bytes.Buffer
	if err := rep.WriteJSON(&repJSON); err != nil {
		return nil, err
	}
	if err := rep.Graph.WriteDOT(&repDOT); err != nil {
		return nil, err
	}
	if err := rep.Graph.WriteMermaid(&repMermaid); err != nil {
		return nil, err
	}
	replayRep := insight.Analyze(replay.journal.Events())
	var replayJSON, replayDOT bytes.Buffer
	if err := replayRep.WriteJSON(&replayJSON); err != nil {
		return nil, err
	}
	if err := replayRep.Graph.WriteDOT(&replayDOT); err != nil {
		return nil, err
	}
	jsonStable := bytes.Equal(repJSON.Bytes(), replayJSON.Bytes())
	dotStable := bytes.Equal(repDOT.Bytes(), replayDOT.Bytes())

	// Blame attribution: walk the journal for latency-spike fault
	// instants, map each to the site of its enclosing span, and demand
	// that the trace's top blame row is a faulted site. A 1.5 s default
	// spike dwarfs every healthy stage, so anything else means the
	// critical-path accounting leaks time to the wrong span.
	type spanKey struct {
		trace events.TraceID
		span  events.SpanID
	}
	spanSite := map[spanKey]string{}
	spiked := map[events.TraceID]map[string]bool{}
	for _, e := range evs {
		switch e.Kind {
		case events.KindBegin:
			spanSite[spanKey{e.Trace, e.Span}] = e.Component + ":" + e.Name
		case events.KindInstant:
			if e.Component != "faults" {
				continue
			}
			latency := false
			for _, a := range e.Attrs {
				if a.Key == "kind" && a.Value == "latency" {
					latency = true
				}
			}
			if !latency {
				continue
			}
			site := spanSite[spanKey{e.Trace, e.Parent}]
			if site == "" {
				continue
			}
			if spiked[e.Trace] == nil {
				spiked[e.Trace] = map[string]bool{}
			}
			spiked[e.Trace][site] = true
		}
	}
	spikedTraces, blamedFirst := 0, 0
	for _, ti := range rep.Traces {
		sites := spiked[ti.Trace]
		if len(sites) == 0 {
			continue
		}
		spikedTraces++
		if len(ti.Blame) > 0 && (ti.Blame[0].Faults > 0 || sites[ti.Blame[0].Site]) {
			blamedFirst++
		}
	}

	// Slowest-K: the batch report's ranking must agree with analyzing
	// each trace alone from the journal.
	top := rep.Slowest(insightSlowestK)
	slowestAgree := len(top) > 0
	for _, ti := range top {
		single, ok := insight.AnalyzeTrace(storm.journal.Trace(ti.Trace))
		if !ok || single.Total != ti.Total || len(single.Path) != len(ti.Path) ||
			len(single.Blame) != len(ti.Blame) {
			slowestAgree = false
			break
		}
	}

	// Exemplars: every trace a histogram pinned during the storm must
	// still resolve to events in the journal.
	exemplars, resolved, exemplarHists := 0, 0, 0
	for _, h := range storm.reg.Snapshot().Histograms {
		if len(h.Exemplars) == 0 {
			continue
		}
		exemplarHists++
		for _, ex := range h.Exemplars {
			exemplars++
			if len(storm.journal.Trace(events.TraceID(ex.Trace))) > 0 {
				resolved++
			}
		}
	}

	res := &Result{ID: "insight"}
	var slowRows [][]string
	for _, ti := range top {
		blame := "-"
		if len(ti.Blame) > 0 {
			blame = fmt.Sprintf("%s (%d.%d%%)", ti.Blame[0].Site,
				ti.Blame[0].ShareMilli/10, ti.Blame[0].ShareMilli%10)
		}
		slowRows = append(slowRows, []string{
			fmt.Sprintf("%d", uint64(ti.Trace)),
			ti.Root,
			fmtDur(ti.Total),
			fmt.Sprintf("%d", ti.Spans),
			fmt.Sprintf("%d", ti.Faults),
			blame,
		})
	}
	res.Tables = append(res.Tables, Table{
		ID:     "insight-slowest",
		Title:  fmt.Sprintf("Insight: slowest %d of %d traces under the chaos storm (seed %d)", len(top), rep.TraceCount, chaosSeed),
		Header: []string{"trace", "root", "total", "spans", "faults", "top blame (self share)"},
		Rows:   slowRows,
		Notes: []string{
			fmt.Sprintf("%d events analyzed; service graph: %d nodes, %d edges", rep.EventCount, len(rep.Graph.Nodes), len(rep.Graph.Edges)),
			"share is the site's self time over the trace total",
		},
	})
	res.Checks = append(res.Checks,
		Check{
			Name:     "blame ranks the spiked site first",
			Expected: "all latency-spiked traces",
			Measured: fmt.Sprintf("%d/%d traces", blamedFirst, spikedTraces),
			Pass:     spikedTraces > 0 && blamedFirst == spikedTraces,
		},
		Check{
			Name:     "slowest-K agrees with per-trace analysis",
			Expected: fmt.Sprintf("%d traces re-derived from the journal", insightSlowestK),
			Measured: map[bool]string{true: "identical totals, paths, blame", false: "DIVERGED"}[slowestAgree],
			Pass:     slowestAgree,
		},
		Check{
			Name:     "histogram exemplars resolve to journal traces",
			Expected: "every exemplar",
			Measured: fmt.Sprintf("%d/%d exemplars across %d histograms", resolved, exemplars, exemplarHists),
			Pass:     exemplars > 0 && resolved == exemplars,
		},
		Check{
			Name:     "fixed seed reproduces the insight report",
			Expected: "byte-identical JSON",
			Measured: map[bool]string{true: "identical", false: "DIVERGED"}[jsonStable],
			Pass:     jsonStable,
		},
		Check{
			Name:     "fixed seed reproduces the service graph",
			Expected: "byte-identical DOT",
			Measured: map[bool]string{true: "identical", false: "DIVERGED"}[dotStable],
			Pass:     dotStable,
		},
	)
	res.Artifacts = append(res.Artifacts,
		Artifact{Name: "insight-report.json", Contents: repJSON.Bytes()},
		Artifact{Name: "insight-servicegraph.dot", Contents: repDOT.Bytes()},
		Artifact{Name: "insight-servicegraph.mmd", Contents: repMermaid.Bytes()},
	)
	return res, nil
}
