package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/runtime"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Ablation experiments for the design choices DESIGN.md calls out:
// REAP-style working-set prefetch on the restore path (§7 of the paper
// positions REAP as complementary), and the snapshot-store replacement
// policy for the disk-space concern of §6.

// RunAblationREAP measures the Fireworks invoke path with demand paging
// vs REAP-style prefetch. Registered as "reap".
func RunAblationREAP() (*Result, error) {
	res := &Result{ID: "reap"}
	t := Table{
		ID:    "reap",
		Title: "Ablation: snapshot restore — demand paging vs REAP-style prefetch",
		Header: []string{"Benchmark", "Start-up (demand)", "Start-up (REAP)",
			"Restore speedup", "End-to-end speedup"},
	}
	var worstStartup, bestStartup float64
	for _, w := range workloads.FaaSdom(runtime.LangNode) {
		measure := func(reap bool) (*platform.Invocation, error) {
			env := newEnv()
			fw := core.New(env, core.Options{REAPPrefetch: reap})
			if _, err := fw.Install(w.Function); err != nil {
				return nil, err
			}
			return fw.Invoke(w.Name, platform.MustParams(w.DefaultParams), platform.InvokeOptions{})
		}
		demand, err := measure(false)
		if err != nil {
			return nil, err
		}
		reap, err := measure(true)
		if err != nil {
			return nil, err
		}
		startupSpeedup := stats.Speedup(demand.Breakdown.Startup(), reap.Breakdown.Startup())
		if worstStartup == 0 || startupSpeedup < worstStartup {
			worstStartup = startupSpeedup
		}
		if startupSpeedup > bestStartup {
			bestStartup = startupSpeedup
		}
		t.Rows = append(t.Rows, []string{
			w.Name,
			fmtDur(demand.Breakdown.Startup()), fmtDur(reap.Breakdown.Startup()),
			stats.FormatSpeedup(startupSpeedup),
			stats.FormatSpeedup(stats.Speedup(demand.Breakdown.Total(), reap.Breakdown.Total())),
		})
	}
	res.Tables = append(res.Tables, t)
	res.Checks = append(res.Checks,
		Check{
			Name:     "REAP prefetch shortens every restore",
			Expected: "REAP [54] is complementary to post-JIT snapshots (§7)",
			Measured: fmt.Sprintf("%.2fx-%.2fx start-up", worstStartup, bestStartup),
			Pass:     worstStartup > 1.05,
		},
	)
	return res, nil
}

// RunAblationSnapBudget exercises the §6 disk-space mitigation: a
// bounded snapshot store with LRU replacement under more functions than
// fit, comparing a skewed access pattern (popular functions keep their
// snapshots resident) with a worst-case round-robin scan. Registered as
// "snapbudget".
func RunAblationSnapBudget() (*Result, error) {
	res := &Result{ID: "snapbudget"}
	const (
		nFunctions = 12
		// The budget holds the whole popular set (6 functions) plus one
		// scratch slot, so a well-behaved policy keeps every popular
		// image resident while rare functions churn through the spare.
		budgetFns  = 7
		popularFns = 6
	)
	source := workloads.NetLatency(runtime.LangNode).Source

	type outcome struct {
		invocations int
		misses      int // invocation needed a reinstall first
		evictions   int
		latency     time.Duration
	}

	run := func(pattern []int, remote bool) (*outcome, error) {
		// ~224 MiB per image; budget sized for budgetFns of them.
		env := platform.NewEnv(platform.EnvConfig{
			SnapshotDiskBudget:    uint64(budgetFns) * 240 << 20,
			RemoteSnapshotStorage: remote,
		})
		fw := core.New(env, core.Options{})
		names := make([]string, nFunctions)
		for i := range names {
			names[i] = fmt.Sprintf("fn-%02d", i)
			if _, err := fw.Install(platform.Function{Name: names[i], Source: source, Lang: runtime.LangNode}); err != nil {
				return nil, err
			}
		}
		out := &outcome{}
		params := platform.MustParams(nil)
		for _, idx := range pattern {
			name := names[idx]
			// With remote storage configured, a local eviction is
			// handled inside Invoke (a remote fetch charged to the
			// request); without it, the miss surfaces as an error and
			// the function must be reinstalled (§6's naive fallback).
			inv, err := fw.Invoke(name, params, platform.InvokeOptions{})
			if err != nil {
				out.misses++
				report, rerr := fw.RegenerateSnapshot(name)
				if rerr != nil {
					return nil, rerr
				}
				out.latency += report.Duration
				inv, err = fw.Invoke(name, params, platform.InvokeOptions{})
				if err != nil {
					return nil, err
				}
			} else if remote && inv.Breakdown.Startup() > 100*time.Millisecond {
				// Remote fetches show up as long start-ups; count them
				// as (cheap) misses for the comparison.
				out.misses++
			}
			out.invocations++
			out.latency += inv.Breakdown.Total()
		}
		out.evictions = env.Snaps.Evictions()
		return out, nil
	}

	// Skewed: 90% of invocations hit the first popularFns functions.
	var skewed, scan []int
	for i := 0; i < 240; i++ {
		if i%10 == 9 {
			skewed = append(skewed, popularFns+(i/10)%(nFunctions-popularFns))
		} else {
			skewed = append(skewed, i%popularFns)
		}
		scan = append(scan, i%nFunctions)
	}
	skewedOut, err := run(skewed, false)
	if err != nil {
		return nil, err
	}
	scanOut, err := run(scan, false)
	if err != nil {
		return nil, err
	}
	scanRemoteOut, err := run(scan, true)
	if err != nil {
		return nil, err
	}

	t := Table{
		ID: "snapbudget",
		Title: fmt.Sprintf("Ablation: bounded snapshot store (LRU), %d functions, budget for ~%d images",
			nFunctions, budgetFns),
		Header: []string{"Access pattern", "Invocations", "Snapshot misses",
			"Miss rate", "Evictions", "Mean latency (incl. reinstalls)"},
	}
	for _, row := range []struct {
		name string
		o    *outcome
	}{
		{"skewed 90/10", skewedOut},
		{"round-robin scan (reinstall on miss)", scanOut},
		{"round-robin scan (remote storage)", scanRemoteOut},
	} {
		t.Rows = append(t.Rows, []string{
			row.name,
			fmt.Sprintf("%d", row.o.invocations),
			fmt.Sprintf("%d", row.o.misses),
			fmt.Sprintf("%.1f%%", 100*float64(row.o.misses)/float64(row.o.invocations)),
			fmt.Sprintf("%d", row.o.evictions),
			fmtDur(row.o.latency / time.Duration(row.o.invocations)),
		})
	}
	res.Tables = append(res.Tables, t)

	skewedRate := float64(skewedOut.misses) / float64(skewedOut.invocations)
	scanRate := float64(scanOut.misses) / float64(scanOut.invocations)
	scanMean := scanOut.latency / time.Duration(scanOut.invocations)
	remoteMean := scanRemoteOut.latency / time.Duration(scanRemoteOut.invocations)
	res.Checks = append(res.Checks,
		Check{
			Name:     "LRU keeps frequently accessed snapshots resident",
			Expected: "\"keeps frequently accessed functions' snapshots\" (§6)",
			Measured: fmt.Sprintf("skewed %.1f%% vs scan %.1f%% miss rate", 100*skewedRate, 100*scanRate),
			Pass:     skewedRate < 0.15 && scanRate > skewedRate,
		},
		Check{
			Name:     "remote storage turns misses into fetches",
			Expected: "remote storage mitigates disk pressure (§6)",
			Measured: fmt.Sprintf("scan mean latency %v (reinstall) vs %v (remote)", fmtDur(scanMean), fmtDur(remoteMean)),
			Pass:     remoteMean < scanMean/5,
		},
	)
	return res, nil
}
