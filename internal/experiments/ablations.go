package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/runtime"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Ablation experiments for the design choices DESIGN.md calls out:
// REAP-style working-set prefetch on the restore path (§7 of the paper
// positions REAP as complementary), and the snapshot-store replacement
// policy for the disk-space concern of §6.

// RunAblationREAP measures the Fireworks invoke path with demand paging
// vs REAP-style record-and-replay prefetch, plus the Fig-10-style
// capacity gain the content-addressed chunk store extracts from
// base-image dedup. Registered as "reap".
func RunAblationREAP() (*Result, error) {
	res := &Result{ID: "reap"}
	t := Table{
		ID:    "reap",
		Title: "Ablation: snapshot restore — demand paging vs REAP-style record-and-replay",
		Header: []string{"Benchmark", "1st start-up (record)", "2nd start-up (demand)",
			"2nd start-up (replay)", "Restore speedup", "End-to-end speedup"},
	}
	var worstStartup, bestStartup float64
	for _, w := range workloads.FaaSdom(runtime.LangNode) {
		// Two invocations per configuration: the first restore always
		// demand-pages (with REAP on it also records the working set);
		// from the second restore on, REAP replays the record.
		measure := func(reap bool) (first, second *platform.Invocation, err error) {
			env := newEnv()
			fw := core.New(env, core.Options{REAPPrefetch: reap})
			if _, err = fw.Install(w.Function); err != nil {
				return nil, nil, err
			}
			params := platform.MustParams(w.DefaultParams)
			if first, err = fw.Invoke(w.Name, params, platform.InvokeOptions{}); err != nil {
				return nil, nil, err
			}
			second, err = fw.Invoke(w.Name, params, platform.InvokeOptions{})
			return first, second, err
		}
		_, demand, err := measure(false)
		if err != nil {
			return nil, err
		}
		recorded, replayed, err := measure(true)
		if err != nil {
			return nil, err
		}
		startupSpeedup := stats.Speedup(demand.Breakdown.Startup(), replayed.Breakdown.Startup())
		if worstStartup == 0 || startupSpeedup < worstStartup {
			worstStartup = startupSpeedup
		}
		if startupSpeedup > bestStartup {
			bestStartup = startupSpeedup
		}
		t.Rows = append(t.Rows, []string{
			w.Name,
			fmtDur(recorded.Breakdown.Startup()),
			fmtDur(demand.Breakdown.Startup()), fmtDur(replayed.Breakdown.Startup()),
			stats.FormatSpeedup(startupSpeedup),
			stats.FormatSpeedup(stats.Speedup(demand.Breakdown.Total(), replayed.Breakdown.Total())),
		})
	}
	res.Tables = append(res.Tables, t)
	res.Checks = append(res.Checks,
		Check{
			Name:     "REAP replay shortens every recorded restore",
			Expected: "REAP [54] is complementary to post-JIT snapshots (§7)",
			Measured: fmt.Sprintf("%.2fx-%.2fx start-up", worstStartup, bestStartup),
			Pass:     worstStartup > 1.05,
		},
	)

	// Fig-10-style capacity: install the whole FaaSdom suite into one
	// store. A flat store keeps a private copy of the kernel, runtime,
	// and library pages inside every image; the chunked store dedups
	// them against the shared base image, so the same disk footprint
	// holds many more functions.
	capEnv := newEnv()
	capFw := core.New(capEnv, core.Options{})
	suite := workloads.FaaSdom(runtime.LangNode)
	for _, w := range suite {
		if _, err := capFw.Install(w.Function); err != nil {
			return nil, err
		}
	}
	logical := capEnv.Snaps.LogicalBytes()
	used := capEnv.Snaps.UsedBytes()
	dedupRatio := float64(logical) / float64(used)
	first, err := capEnv.Snaps.Get(suite[0].Name)
	if err != nil {
		return nil, err
	}
	// How many flat images would fit in the bytes the chunked store
	// actually spent keeping the entire suite resident?
	flatImage := first.TotalBytes()
	flatFit := int(used / flatImage)
	deduped := capEnv.Metrics.Counter("snapshot_chunks_deduped_total").Value()
	res.Tables = append(res.Tables, Table{
		ID:    "reap-dedup",
		Title: "Content-addressed store: capacity from base-image dedup (Fig 10 shape, disk)",
		Header: []string{"Resident images", "Flat bytes", "Dedup bytes", "Dedup ratio",
			"Chunks deduped", "Flat images in same footprint"},
		Rows: [][]string{{
			fmt.Sprintf("%d functions + shared base", len(suite)),
			fmt.Sprintf("%.0f MiB", float64(logical)/(1<<20)),
			fmt.Sprintf("%.0f MiB", float64(used)/(1<<20)),
			fmt.Sprintf("%.1fx", dedupRatio),
			fmt.Sprintf("%d", deduped),
			fmt.Sprintf("%d", flatFit),
		}},
		Notes: []string{"flat bytes = sum of full image manifests; dedup bytes = unique chunk pool"},
	})
	res.Checks = append(res.Checks,
		Check{
			Name:     "chunk dedup grows snapshot capacity",
			Expected: "more images resident than flat storage fits (Fig 10 shape)",
			Measured: fmt.Sprintf("%d resident vs %d flat in %.0f MiB (%.1fx dedup)", len(suite), flatFit, float64(used)/(1<<20), dedupRatio),
			Pass:     len(suite) > flatFit && dedupRatio > 2 && deduped > 0,
		},
	)
	return res, nil
}

// RunAblationSnapBudget exercises the §6 disk-space mitigation: a
// bounded snapshot store with LRU replacement under more functions than
// fit, comparing a skewed access pattern (popular functions keep their
// snapshots resident) with a worst-case round-robin scan. Registered as
// "snapbudget".
func RunAblationSnapBudget() (*Result, error) {
	res := &Result{ID: "snapbudget"}
	const (
		nFunctions = 12
		// The budget holds the whole popular set (6 functions) plus one
		// scratch slot, so a well-behaved policy keeps every popular
		// image resident while rare functions churn through the spare.
		budgetFns  = 7
		popularFns = 6
	)
	source := workloads.NetLatency(runtime.LangNode).Source

	// Probe the store geometry first: with content-addressed chunking
	// every image shares one base, so the budget must be sized from the
	// measured base + per-function delta, not from flat image sizes.
	probeEnv := newEnv()
	probeFw := core.New(probeEnv, core.Options{})
	if _, err := probeFw.Install(platform.Function{Name: "probe-0", Source: source, Lang: runtime.LangNode}); err != nil {
		return nil, err
	}
	baseSnap, err := probeEnv.Snaps.Get(core.BaseImageName(runtime.LangNode))
	if err != nil {
		return nil, err
	}
	baseBytes := baseSnap.Manifest().UniqueBytes()
	delta := probeEnv.Snaps.UsedBytes() - baseBytes
	// Base + budgetFns deltas, with half a delta of slack so LRU always
	// has exactly one spare slot to churn through.
	budget := baseBytes + uint64(budgetFns)*delta + delta/2

	type outcome struct {
		invocations int
		misses      int // invocation needed a reinstall or a remote fetch
		evictions   int
		latency     time.Duration
	}

	run := func(pattern []int, remote bool) (*outcome, error) {
		env := platform.NewEnv(platform.EnvConfig{
			SnapshotDiskBudget:    budget,
			RemoteSnapshotStorage: remote,
		})
		fw := core.New(env, core.Options{})
		names := make([]string, nFunctions)
		for i := range names {
			names[i] = fmt.Sprintf("fn-%02d", i)
			if _, err := fw.Install(platform.Function{Name: names[i], Source: source, Lang: runtime.LangNode}); err != nil {
				return nil, err
			}
		}
		out := &outcome{}
		params := platform.MustParams(nil)
		for _, idx := range pattern {
			name := names[idx]
			// With remote storage configured, a local eviction is
			// handled inside Invoke (a remote fetch charged to the
			// request); without it, the miss surfaces as an error and
			// the function must be reinstalled (§6's naive fallback).
			fetchesBefore := 0
			if remote {
				fetchesBefore = env.RemoteSnaps.Fetches()
			}
			inv, err := fw.Invoke(name, params, platform.InvokeOptions{})
			if err != nil {
				out.misses++
				report, rerr := fw.RegenerateSnapshot(name)
				if rerr != nil {
					return nil, rerr
				}
				out.latency += report.Duration
				inv, err = fw.Invoke(name, params, platform.InvokeOptions{})
				if err != nil {
					return nil, err
				}
			} else if remote && env.RemoteSnaps.Fetches() > fetchesBefore {
				// The invoke recovered the image from remote storage;
				// count it as a (cheap) miss for the comparison.
				out.misses++
			}
			out.invocations++
			out.latency += inv.Breakdown.Total()
		}
		out.evictions = env.Snaps.Evictions()
		return out, nil
	}

	// Skewed: 90% of invocations hit the first popularFns functions.
	var skewed, scan []int
	for i := 0; i < 240; i++ {
		if i%10 == 9 {
			skewed = append(skewed, popularFns+(i/10)%(nFunctions-popularFns))
		} else {
			skewed = append(skewed, i%popularFns)
		}
		scan = append(scan, i%nFunctions)
	}
	skewedOut, err := run(skewed, false)
	if err != nil {
		return nil, err
	}
	scanOut, err := run(scan, false)
	if err != nil {
		return nil, err
	}
	scanRemoteOut, err := run(scan, true)
	if err != nil {
		return nil, err
	}

	t := Table{
		ID: "snapbudget",
		Title: fmt.Sprintf("Ablation: bounded snapshot store (LRU), %d functions, budget for base + %d deltas",
			nFunctions, budgetFns),
		Header: []string{"Access pattern", "Invocations", "Snapshot misses",
			"Miss rate", "Evictions", "Mean latency (incl. reinstalls)"},
	}
	for _, row := range []struct {
		name string
		o    *outcome
	}{
		{"skewed 90/10", skewedOut},
		{"round-robin scan (reinstall on miss)", scanOut},
		{"round-robin scan (remote storage)", scanRemoteOut},
	} {
		t.Rows = append(t.Rows, []string{
			row.name,
			fmt.Sprintf("%d", row.o.invocations),
			fmt.Sprintf("%d", row.o.misses),
			fmt.Sprintf("%.1f%%", 100*float64(row.o.misses)/float64(row.o.invocations)),
			fmt.Sprintf("%d", row.o.evictions),
			fmtDur(row.o.latency / time.Duration(row.o.invocations)),
		})
	}
	res.Tables = append(res.Tables, t)

	skewedRate := float64(skewedOut.misses) / float64(skewedOut.invocations)
	scanRate := float64(scanOut.misses) / float64(scanOut.invocations)
	scanMean := scanOut.latency / time.Duration(scanOut.invocations)
	remoteMean := scanRemoteOut.latency / time.Duration(scanRemoteOut.invocations)
	res.Checks = append(res.Checks,
		Check{
			Name:     "LRU keeps frequently accessed snapshots resident",
			Expected: "\"keeps frequently accessed functions' snapshots\" (§6)",
			Measured: fmt.Sprintf("skewed %.1f%% vs scan %.1f%% miss rate", 100*skewedRate, 100*scanRate),
			Pass:     skewedRate < 0.15 && scanRate > skewedRate,
		},
		Check{
			Name:     "remote storage turns misses into fetches",
			Expected: "remote storage mitigates disk pressure (§6)",
			Measured: fmt.Sprintf("scan mean latency %v (reinstall) vs %v (remote)", fmtDur(scanMean), fmtDur(remoteMean)),
			Pass:     remoteMean < scanMean/5,
		},
	)
	return res, nil
}
