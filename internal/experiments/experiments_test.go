package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	want := []string{"table1", "table2", "snaptime", "fig6", "fig7", "fig9", "fig10", "fig11", "fig12",
		"wild", "reap", "snapbudget", "deopt", "scale", "chaos", "wfchain", "insight", "memtl", "telem"}
	if len(all) != len(want) {
		t.Fatalf("experiments = %d, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Errorf("experiment %d = %s, want %s", i, all[i].ID, id)
		}
		if all[i].Title == "" || all[i].Run == nil {
			t.Errorf("%s incomplete", id)
		}
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("fig10")
	if err != nil || e.ID != "fig10" {
		t.Fatalf("ByID: %v %v", e, err)
	}
	if _, err := ByID("fig99"); err == nil || !strings.Contains(err.Error(), "unknown id") {
		t.Fatalf("err = %v", err)
	}
}

func TestTable1(t *testing.T) {
	res, err := RunTable1()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 1 || len(res.Tables[0].Rows) != 6 {
		t.Fatalf("table1 shape: %+v", res.Tables)
	}
	out := res.Render()
	for _, want := range []string{"Fireworks", "Extreme (snapshot+JIT)", "OpenWhisk"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestTable2(t *testing.T) {
	res, err := RunTable2()
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Tables[0].Rows
	if len(rows) < 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	out := res.Render()
	for _, want := range []string{"faas-fact", "Node.js, Python", "Alexa"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestSnapshotTimeBands(t *testing.T) {
	res, err := RunSnapshotTime()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables[0].Rows) != 8 {
		t.Fatalf("rows = %d", len(res.Tables[0].Rows))
	}
	for _, c := range res.Checks {
		if !c.Pass {
			t.Errorf("check failed: %+v", c)
		}
	}
}

// TestFig6ShapeChecks runs the full Node.js latency grid and requires
// every paper-shape check to pass.
func TestFig6ShapeChecks(t *testing.T) {
	if testing.Short() {
		t.Skip("full latency grid in -short mode")
	}
	res, err := RunFig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 5 { // a-d + geomean
		t.Fatalf("tables = %d", len(res.Tables))
	}
	for _, c := range res.Checks {
		if !c.Pass {
			t.Errorf("fig6 check failed: %s (paper %s, measured %s)", c.Name, c.Expected, c.Measured)
		}
	}
}

func TestFig7ShapeChecks(t *testing.T) {
	if testing.Short() {
		t.Skip("full latency grid in -short mode")
	}
	res, err := RunFig7()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Checks {
		if !c.Pass {
			t.Errorf("fig7 check failed: %s (paper %s, measured %s)", c.Name, c.Expected, c.Measured)
		}
	}
}

func TestFig9ShapeChecks(t *testing.T) {
	res, err := RunFig9()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Checks {
		if !c.Pass {
			t.Errorf("fig9 check failed: %s (paper %s, measured %s)", c.Name, c.Expected, c.Measured)
		}
	}
}

func TestFig10Consolidation(t *testing.T) {
	if testing.Short() {
		t.Skip("consolidation sweep in -short mode")
	}
	res, err := RunFig10()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Checks {
		if !c.Pass {
			t.Errorf("fig10 check failed: %s (paper %s, measured %s)", c.Name, c.Expected, c.Measured)
		}
	}
}

func TestFig11FactorChecks(t *testing.T) {
	if testing.Short() {
		t.Skip("factor analysis in -short mode")
	}
	res, err := RunFig11()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables[0].Rows) != 8 {
		t.Fatalf("rows = %d", len(res.Tables[0].Rows))
	}
	for _, c := range res.Checks {
		if !c.Pass {
			t.Errorf("fig11 check failed: %s (paper %s, measured %s)", c.Name, c.Expected, c.Measured)
		}
	}
}

func TestFig12MemoryChecks(t *testing.T) {
	if testing.Short() {
		t.Skip("memory factor analysis in -short mode")
	}
	res, err := RunFig12()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Checks {
		if !c.Pass {
			t.Errorf("fig12 check failed: %s (paper %s, measured %s)", c.Name, c.Expected, c.Measured)
		}
	}
}

func TestExtensionExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("extension experiments in -short mode")
	}
	for _, id := range []string{"wild", "reap", "snapbudget", "deopt"} {
		t.Run(id, func(t *testing.T) {
			exp, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			res, err := exp.Run()
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range res.Checks {
				if !c.Pass {
					t.Errorf("%s check failed: %s (expected %s, measured %s)",
						id, c.Name, c.Expected, c.Measured)
				}
			}
		})
	}
}

func TestMemTimelineChecks(t *testing.T) {
	if testing.Short() {
		t.Skip("memory timeline experiment in -short mode")
	}
	res, err := RunMemTimeline()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Checks {
		if !c.Pass {
			t.Errorf("memtl check failed: %s (expected %s, measured %s)",
				c.Name, c.Expected, c.Measured)
		}
	}
	if len(res.Artifacts) != 2 {
		t.Fatalf("memtl artifacts = %d, want 2 timeline CSVs", len(res.Artifacts))
	}
	for _, a := range res.Artifacts {
		csv := string(a.Contents)
		if !strings.HasPrefix(csv, "ts_ns,") {
			t.Errorf("artifact %s is not a timeline CSV:\n%.120s", a.Name, csv)
		}
		if !strings.Contains(csv, "mem_used_bytes") {
			t.Errorf("artifact %s has no mem_used_bytes series", a.Name)
		}
	}
}

func TestRenderAlignsColumns(t *testing.T) {
	tbl := Table{
		Title:  "T",
		Header: []string{"a", "long-header"},
		Rows:   [][]string{{"wide-cell-content", "x"}},
		Notes:  []string{"a note"},
	}
	out := renderTable(&tbl)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, row, note
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[4], "note: a note") {
		t.Fatalf("note missing: %q", lines[4])
	}
}

func TestFmtDur(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{1500 * time.Millisecond, "1.50s"},
		{12 * time.Millisecond, "12.00ms"},
		{480 * time.Microsecond, "480µs"},
	}
	for _, tc := range cases {
		if got := fmtDur(tc.d); got != tc.want {
			t.Errorf("fmtDur(%v) = %q, want %q", tc.d, got, tc.want)
		}
	}
}

func TestCheckHelpers(t *testing.T) {
	c := ratioCheck("x", 2.0, 2.1, 0.1)
	if !c.Pass {
		t.Fatal("in-tolerance ratio failed")
	}
	c = ratioCheck("x", 2.0, 3.0, 0.1)
	if c.Pass {
		t.Fatal("out-of-tolerance ratio passed")
	}
	if !atLeastCheck("x", 2, 2.5, "claim").Pass || atLeastCheck("x", 2, 1.5, "claim").Pass {
		t.Fatal("atLeastCheck wrong")
	}
}
