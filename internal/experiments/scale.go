package experiments

import (
	"errors"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/runtime"
	"repro/internal/workloads"
)

// Multi-host extension experiment: the paper's evaluation is a single
// machine (its own related work targets fleet-scale serverless).
// RunScale repeats the Figure 10 consolidation methodology across a
// cluster of smaller hosts and checks that swap-aware least-memory
// placement scales total capacity linearly with node count — the
// elastic-provisioning property Figure 1's controller tier promises.

// scaleHostBytes keeps per-node sweeps short (16 GiB nodes ≈ 70
// Fireworks microVMs each).
const scaleHostBytes = 16 << 30

// scaleSustainedDirty matches the Fig. 10 long-running dirty model.
const scaleSustainedDirty = fireworksSustainedDirtyBytes

// RunScale is registered as experiment id "scale".
func RunScale() (*Result, error) {
	res := &Result{ID: "scale"}
	w := workloads.Fact(runtime.LangNode)
	params := platform.MustParams(lightFactParams)

	capacityOf := func(nodes int) (int, error) {
		c := cluster.New(nodes, cluster.LeastMemory,
			platform.EnvConfig{MemBytes: scaleHostBytes},
			func(env *platform.Env) platform.Platform {
				return core.New(env, core.Options{RetainInstances: true})
			})
		if err := c.Install(w.Function); err != nil {
			return 0, err
		}
		launched := 0
		for launched < nodes*fig10MaxVMs {
			inv, node, err := c.Invoke(w.Name, params, platform.InvokeOptions{})
			if err != nil {
				if errors.Is(err, cluster.ErrClusterFull) {
					break
				}
				return 0, err
			}
			_ = inv
			fw := node.Platform.(*core.Framework)
			instances := fw.Instances(w.Name)
			instances[len(instances)-1].SustainDirty(scaleSustainedDirty)
			launched++
		}
		return launched, nil
	}

	t := Table{
		ID:     "scale",
		Title:  "Extension: cluster consolidation capacity (16 GiB nodes, least-memory placement)",
		Header: []string{"Nodes", "Max microVMs before cluster-full", "Per-node", "Scaling vs 1 node"},
	}
	capacities := make(map[int]int)
	nodeCounts := []int{1, 2, 4}
	for _, n := range nodeCounts {
		capVMs, err := capacityOf(n)
		if err != nil {
			return nil, err
		}
		capacities[n] = capVMs
		scaling := float64(capVMs) / float64(capacities[1])
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n), fmt.Sprintf("%d", capVMs),
			fmt.Sprintf("%.1f", float64(capVMs)/float64(n)),
			fmt.Sprintf("%.2fx", scaling),
		})
	}
	res.Tables = append(res.Tables, t)

	lin4 := float64(capacities[4]) / float64(capacities[1])
	res.Checks = append(res.Checks,
		Check{
			Name:     "capacity scales linearly with nodes",
			Expected: "4 nodes ≈ 4x one node",
			Measured: fmt.Sprintf("%.2fx", lin4),
			Pass:     lin4 > 3.7 && lin4 < 4.3,
		},
		Check{
			Name:     "swap-aware placement fills every node",
			Expected: "no node left idle",
			Measured: fmt.Sprintf("%d VMs on 4 nodes", capacities[4]),
			Pass:     capacities[4] >= 4*(capacities[1]-2),
		},
	)
	return res, nil
}
