package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/couchdb"
	"repro/internal/platform"
	"repro/internal/stats"
	"repro/internal/workflow"
	"repro/internal/workloads"
)

// alexaRequests is the §5.3 request sequence: ask for a simple fact,
// check the schedule through reminder, check appliances through smart
// home. The argument shapes differ from the install-time priming input,
// so this sequence exercises JIT de-optimization (§6).
var alexaRequests = []map[string]any{
	{"text": "alexa tell me a fun fact"},
	{"text": "remind me to review the schedule", "action": "add", "id": "rev1",
		"item": "review schedule", "place": "office", "url": "https://cal.example/rev1"},
	{"text": "what is the status of the lights and the door at home", "action": "status"},
}

// wageRecords is the data-analysis input: employee wage submissions.
var wageRecords = []map[string]any{
	{"name": "ada", "id": "e1", "role": "Engineer", "base": 72000},
	{"name": "grace", "id": "e2", "role": "Manager", "base": 95000},
	{"name": "alan", "id": "e3", "role": "Engineer", "base": 68000},
	{"name": "edsger", "id": "e4", "role": "Analyst", "base": 54000},
	{"name": "barbara", "id": "e5", "role": "Manager", "base": 120000},
}

// appResult is one platform's aggregate over an application sequence.
type appResult struct {
	startup time.Duration
	exec    time.Duration
	others  time.Duration
}

// installAll deploys a list of workloads in dependency order (callees
// before callers: AlexaSkills/DataAnalysis list callers first).
func installAll(p platform.Platform, ws []workloads.Workload) error {
	for i := len(ws) - 1; i >= 0; i-- {
		if _, err := p.Install(ws[i].Function); err != nil {
			return fmt.Errorf("install %s on %s: %w", ws[i].Name, p.PlatformName(), err)
		}
	}
	return nil
}

// runSequence invokes entry once per request and accumulates the phase
// totals. Cold starts happen naturally on the first request of each
// chain element (matching how the paper drives the apps end-to-end).
func runSequence(p platform.Platform, entry string, requests []map[string]any) (appResult, error) {
	var agg appResult
	for _, req := range requests {
		inv, err := p.Invoke(entry, platform.MustParams(req), platform.InvokeOptions{})
		if err != nil {
			return agg, fmt.Errorf("%s on %s: %w", entry, p.PlatformName(), err)
		}
		agg.startup += inv.Breakdown.Startup()
		agg.exec += inv.Breakdown.Exec()
		agg.others += inv.Breakdown.Others()
	}
	return agg, nil
}

// RunFig9 regenerates the real-world application comparison (Fireworks
// vs OpenWhisk — the only two platforms able to run function chains).
func RunFig9() (*Result, error) {
	res := &Result{ID: "fig9"}

	type config struct {
		name string
		mk   func() (*platform.Env, platform.Platform)
	}
	configs := []config{
		{"fireworks", func() (*platform.Env, platform.Platform) {
			env := newEnv()
			return env, core.New(env, core.Options{})
		}},
		{"openwhisk", func() (*platform.Env, platform.Platform) {
			env := newEnv()
			return env, platform.NewOpenWhisk(env)
		}},
	}

	// --- Figure 9(a): Alexa Skills ---
	alexa := Table{
		ID:     "fig9a",
		Title:  "Figure 9(a): Alexa Skills (fact + reminder + smart home sequence)",
		Header: []string{"Platform", "Pass", "Start-up", "Exec", "Others", "Total"},
		Notes: []string{"pass 1 hits cold containers on OpenWhisk; pass 2 is fully warm.",
			"Fireworks has no cold/warm distinction (always snapshot resume)."},
	}
	alexaResults := make(map[string]appResult) // warm pass, used for checks
	for _, cfg := range configs {
		_, p := cfg.mk()
		if err := installAll(p, workloads.AlexaSkills()); err != nil {
			return nil, err
		}
		for pass := 1; pass <= 2; pass++ {
			agg, err := runSequence(p, workloads.NameAlexaFrontend, alexaRequests)
			if err != nil {
				return nil, err
			}
			if pass == 2 {
				alexaResults[cfg.name] = agg
			}
			alexa.Rows = append(alexa.Rows, []string{cfg.name, fmt.Sprintf("%d", pass),
				fmtDur(agg.startup), fmtDur(agg.exec), fmtDur(agg.others),
				fmtDur(agg.startup + agg.exec + agg.others)})
		}
	}
	res.Tables = append(res.Tables, alexa)

	// --- Figure 9(b): data analysis ---
	da := Table{
		ID:     "fig9b",
		Title:  "Figure 9(b): Data analysis (wage insertion chain + triggered analysis chain)",
		Header: []string{"Platform", "Step", "Start-up", "Exec", "Others", "Total"},
	}
	type daResult struct{ insert, analyze appResult }
	daResults := make(map[string]daResult)
	for _, cfg := range configs {
		env, p := cfg.mk()
		if err := installAll(p, workloads.DataAnalysis()); err != nil {
			return nil, err
		}
		// The analysis chain is triggered by the database update (the
		// dashed box of Figure 8(b)): a change-feed trigger on the wages
		// database, filtered to the last insert so exactly one triggered
		// run is measured. Enqueuing a firing is free, so the insert
		// rows are unperturbed.
		eng := workflow.New(env.Bus, env.Events, env.Metrics, p, workflow.Options{})
		if err := eng.Register(&workflow.Spec{Name: "wage-analysis-chain", Steps: []workflow.Step{
			{ID: "analyze", Function: workloads.NameWageAnalyze,
				Input: map[string]any{"trigger": "db-change"}},
		}}); err != nil {
			return nil, err
		}
		eng.AddChangeFeed(env.Couch.CreateDB("wages"), "wage-analysis-chain",
			func(c couchdb.Change) bool { return c.ID == "wage-e5" }, nil)
		insert, err := runSequence(p, workloads.NameWageInsert, wageRecords)
		if err != nil {
			return nil, err
		}
		runs := eng.Drain(0)
		if len(runs) != 1 || runs[0].Status != workflow.RunCompleted {
			return nil, fmt.Errorf("fig9b on %s: change-feed trigger produced %d runs", cfg.name, len(runs))
		}
		bd := runs[0].Invocation.Breakdown
		analyze := appResult{startup: bd.Startup(), exec: bd.Exec(), others: bd.Others()}
		daResults[cfg.name] = daResult{insert: insert, analyze: analyze}
		for _, step := range []struct {
			label string
			r     appResult
		}{{"insert", insert}, {"analyze", analyze}} {
			da.Rows = append(da.Rows, []string{cfg.name, step.label,
				fmtDur(step.r.startup), fmtDur(step.r.exec), fmtDur(step.r.others),
				fmtDur(step.r.startup + step.r.exec + step.r.others)})
		}
	}
	res.Tables = append(res.Tables, da)

	fwA, owA := alexaResults["fireworks"], alexaResults["openwhisk"]
	fwD, owD := daResults["fireworks"], daResults["openwhisk"]
	res.Checks = append(res.Checks,
		// The paper's ratios fall between our cold-pass and warm-pass
		// numbers (its methodology does not pin the container state);
		// checks use the conservative warm pass for Alexa and the
		// mixed first pass for data analysis.
		atLeastCheck("Alexa: start-up vs OpenWhisk (warm pass)", 3,
			stats.Speedup(owA.startup, fwA.startup), "12.5x"),
		atLeastCheck("Alexa: exec vs OpenWhisk (warm pass)", 1.2,
			stats.Speedup(owA.exec, fwA.exec), "2.4x"),
		atLeastCheck("Data insert: start-up vs OpenWhisk", 8,
			stats.Speedup(owD.insert.startup, fwD.insert.startup), "25.6x"),
		atLeastCheck("Data insert: exec vs OpenWhisk", 1.5,
			stats.Speedup(owD.insert.exec, fwD.insert.exec), "11.8x"),
		atLeastCheck("Data analyze: start-up vs OpenWhisk", 8,
			stats.Speedup(owD.analyze.startup, fwD.analyze.startup), "27x"),
		atLeastCheck("Data analyze: exec vs OpenWhisk", 1.2,
			stats.Speedup(owD.analyze.exec, fwD.analyze.exec), "4.9x"),
	)
	return res, nil
}
