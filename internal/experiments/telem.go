package experiments

import (
	"bytes"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/faults"
	"repro/internal/insight"
	"repro/internal/lang"
	"repro/internal/msgbus"
	"repro/internal/platform"
	"repro/internal/runtime"
	"repro/internal/telemetry"
	"repro/internal/timeseries"
	"repro/internal/vclock"
	"repro/internal/workflow"
	"repro/internal/workloads"
)

// Telemetry-plane experiment: replay the chaos storm in exposed mode
// (no retries, so real failures and a firing SLO alert are part of the
// schedule) twice — once at full journal fidelity, once with the
// tail-based trace sampler armed — and verify the plane's contract:
//
//   - the sampled journal export shrinks by at least 5x in bytes;
//   - every trace that carried an error, absorbed an injected fault,
//     or dead-lettered a workflow step survives sampling (100%
//     retention of the interesting tail), and every SLO alert's causal
//     link still resolves through the sampled journal;
//   - the sampled NDJSON export and the insight report built over it
//     are byte-identical across journal shard layouts and across
//     same-seed replays — sampling must not cost determinism.

const (
	// telemSeed reuses the chaos storm's fault schedule.
	telemSeed        = 22
	telemRate        = 0.01
	telemNodes       = 3
	telemInvocations = 300
	// telemKeepRate is the probabilistic keep fraction for boring
	// traces; the always-keep policies ride above it.
	telemKeepRate = 0.05
	// telemSampleSeed drives the probabilistic keep decisions.
	telemSampleSeed = 7
	// telemJournalCap is generous enough that no arm ever evicts: the
	// byte reduction must come from sampling, not from ring overflow.
	telemJournalCap = 1 << 17
)

// telemOutcome is what one storm arm produced.
type telemOutcome struct {
	requests int
	failures int
	// ndjson is the post-flush journal export; insightJSON the full
	// insight report over the same events (coverage-annotated when
	// sampled).
	ndjson      []byte
	insightJSON []byte
	stats       telemetry.Stats
	journal     *events.Journal
	alerts      []timeseries.Alert
	// errorTraces/faultTraces/dlqTraces classify the journal's traces
	// by what the sampling policies must preserve.
	errorTraces map[events.TraceID]bool
	faultTraces map[events.TraceID]bool
	dlqTraces   map[events.TraceID]bool
}

// telemInvoker adapts the cluster to the workflow engine (steps place
// like any other invocation).
type telemInvoker struct{ c *cluster.Cluster }

func (ti telemInvoker) Invoke(name string, params lang.Value, opts platform.InvokeOptions) (*platform.Invocation, error) {
	inv, _, err := ti.c.Invoke(name, params, opts)
	return inv, err
}

// telemPipeline is a two-step workflow whose second step calls a
// function that is never installed: the run stalls, the step
// dead-letters, and the journal gets a workflow/step-dead instant —
// the DLQ always-keep policy's trigger.
func telemPipeline() *workflow.Spec {
	return &workflow.Spec{
		Name: "telem-pipeline",
		Steps: []workflow.Step{
			{ID: "head", Function: workloads.Fact(runtime.LangNode).Name},
			{ID: "poison", Function: "telem-missing", After: []string{"head"}},
		},
	}
}

// runTelemOnce replays the seeded storm against one journal layout,
// with or without the tail sampler armed.
func runTelemOnce(shards int, sampled bool) (*telemOutcome, error) {
	plane := faults.NewPlane(telemSeed)
	cfg := platform.EnvConfig{
		Faults: plane,
		Events: events.NewJournalShards(telemJournalCap, shards),
	}
	// Exposed mode: no retries, no failover — the storm's failures are
	// real, so the journal has an interesting tail to preserve.
	c := cluster.New(telemNodes, cluster.RoundRobin, cfg, func(env *platform.Env) platform.Platform {
		return core.New(env, core.Options{})
	})
	c.SetFailover(cluster.FailoverPolicy{MaxFailovers: 0})

	wa := workloads.Fact(runtime.LangNode)
	wb := workloads.MatrixMult(runtime.LangNode)
	for _, w := range []workloads.Workload{wa, wb} {
		if err := c.Install(w.Function); err != nil {
			return nil, err
		}
	}

	var tail *telemetry.TailSampler
	if sampled {
		tail = telemetry.New(telemetry.Config{Seed: telemSampleSeed, KeepRate: telemKeepRate})
		tail.Attach(c.Journal(), c.Metrics())
	}
	plane.ApplyDefaultPlan(telemRate)

	eng := workflow.New(msgbus.NewBroker(), c.Journal(), c.Metrics(), telemInvoker{c}, workflow.Options{})
	if err := eng.Register(telemPipeline()); err != nil {
		return nil, err
	}

	out := &telemOutcome{journal: c.Journal()}
	sampler := timeseries.NewSampler(c.Metrics(), timeseries.DefaultCapacity)
	sampler.SetRollups(timeseries.DefaultRollups())
	sampler.AddProbe("telem_requests_total", func() float64 { return float64(out.requests) })
	sampler.AddProbe("telem_failures_total", func() float64 { return float64(out.failures) })
	wd := timeseries.NewWatchdog(sampler, c.Journal(), c.Metrics())
	wd.AddRule(timeseries.Rule{
		Name:      "invoke-success-rate",
		Ratio:     &timeseries.RatioSource{Num: "telem_failures_total", Den: "telem_requests_total", Complement: true, MinDen: 50},
		Op:        timeseries.AtLeast,
		Threshold: 0.99,
	})
	timeline := vclock.New()
	sampler.Sample(0)

	paramsA := platform.MustParams(map[string]any{"n": 101, "rounds": 2})
	paramsB := platform.MustParams(map[string]any{"n": 4})
	for i := 0; i < telemInvocations; i++ {
		name, params := wa.Name, paramsA
		if i%2 == 1 {
			name, params = wb.Name, paramsB
		}
		inv, _, err := c.Invoke(name, params, platform.InvokeOptions{})
		step := time.Microsecond
		out.requests++
		if err != nil {
			out.failures++
		} else {
			step = inv.Breakdown.Total()
		}
		now := timeline.Advance(step)
		sampler.Sample(now)
		wd.Evaluate(now)
		tail.Flush(now)
	}
	// One poisoned workflow run dead-letters its second step; errors are
	// expected (that is the point), the DLQ instant is the witness.
	_, _ = eng.Run("telem-pipeline", map[string]any{"n": 3, "rounds": 1}, timeline.Now())
	tail.FlushAll()
	out.alerts = wd.Alerts()
	out.stats = tail.Stats()

	evs := c.Journal().Events()
	out.errorTraces = make(map[events.TraceID]bool)
	out.faultTraces = make(map[events.TraceID]bool)
	out.dlqTraces = make(map[events.TraceID]bool)
	for _, e := range evs {
		if e.Trace == 0 {
			continue
		}
		for _, a := range e.Attrs {
			if a.Key == "error" {
				out.errorTraces[e.Trace] = true
			}
		}
		if e.Kind == events.KindInstant && e.Component == "faults" {
			out.faultTraces[e.Trace] = true
		}
		if e.Kind == events.KindInstant && e.Component == "workflow" && e.Name == "step-dead" {
			out.dlqTraces[e.Trace] = true
		}
	}

	var nd bytes.Buffer
	if err := events.WriteNDJSON(&nd, evs); err != nil {
		return nil, err
	}
	out.ndjson = nd.Bytes()
	rep := insight.Analyze(evs)
	if sampled {
		rep.AnnotateCoverage(int(out.stats.KeptTraces), int(out.stats.DecidedTraces))
	}
	var ij bytes.Buffer
	if err := rep.WriteJSON(&ij); err != nil {
		return nil, err
	}
	out.insightJSON = ij.Bytes()
	return out, nil
}

// retained counts how many of the given traces still resolve through
// the sampled journal.
func retained(traces map[events.TraceID]bool, j *events.Journal) (kept, total int) {
	for id := range traces {
		total++
		if len(j.Trace(id)) > 0 {
			kept++
		}
	}
	return kept, total
}

// RunTelem is registered as experiment id "telem".
func RunTelem() (*Result, error) {
	full, err := runTelemOnce(1, false)
	if err != nil {
		return nil, err
	}
	sampledA, err := runTelemOnce(1, true)
	if err != nil {
		return nil, err
	}
	sampledB, err := runTelemOnce(16, true)
	if err != nil {
		return nil, err
	}
	replay, err := runTelemOnce(1, true)
	if err != nil {
		return nil, err
	}

	reduction := 0.0
	if len(sampledA.ndjson) > 0 {
		reduction = float64(len(full.ndjson)) / float64(len(sampledA.ndjson))
	}
	errKept, errTotal := retained(full.errorTraces, sampledA.journal)
	faultKept, faultTotal := retained(full.faultTraces, sampledA.journal)
	dlqKept, dlqTotal := retained(full.dlqTraces, sampledA.journal)

	alertLinksResolve := len(sampledA.alerts) > 0
	for _, a := range sampledA.alerts {
		if a.Link.Trace == 0 || len(sampledA.journal.Trace(a.Link.Trace)) == 0 {
			alertLinksResolve = false
		}
	}
	layoutInvariant := bytes.Equal(sampledA.ndjson, sampledB.ndjson) &&
		bytes.Equal(sampledA.insightJSON, sampledB.insightJSON)
	reproducible := bytes.Equal(sampledA.ndjson, replay.ndjson) &&
		bytes.Equal(sampledA.insightJSON, replay.insightJSON)

	res := &Result{ID: "telem"}
	row := func(mode string, o *telemOutcome) []string {
		return []string{
			mode,
			fmt.Sprintf("%d", o.requests),
			fmt.Sprintf("%d", o.failures),
			fmt.Sprintf("%d", o.journal.Len()),
			fmt.Sprintf("%d", len(o.ndjson)),
			fmt.Sprintf("%d/%d", o.stats.KeptTraces, o.stats.DecidedTraces),
			fmt.Sprintf("%d", o.stats.DroppedBytes),
		}
	}
	res.Tables = append(res.Tables, Table{
		ID:     "telem",
		Title:  fmt.Sprintf("Telemetry plane: tail sampling over the exposed storm (seed %d, %d invocations, keep rate %.0f%%)", telemSeed, telemInvocations, telemKeepRate*100),
		Header: []string{"mode", "requests", "failed", "journal events", "export bytes", "traces kept", "bytes dropped"},
		Rows: [][]string{
			row("full fidelity", full),
			row("tail-sampled", sampledA),
		},
		Notes: []string{
			"same seed, same storm: the arms differ only in the sampler",
			"errors, injected faults, DLQ runs, and latency outliers are always kept; the rest keep probabilistically",
		},
	})
	res.Checks = append(res.Checks,
		Check{
			Name:     "journal export shrinks at least 5x",
			Expected: ">= 5.0x fewer bytes",
			Measured: fmt.Sprintf("%.1fx (%d -> %d bytes)", reduction, len(full.ndjson), len(sampledA.ndjson)),
			Pass:     reduction >= 5.0,
		},
		Check{
			Name:     "every error trace survives sampling",
			Expected: "100% retention",
			Measured: fmt.Sprintf("%d/%d", errKept, errTotal),
			Pass:     errTotal > 0 && errKept == errTotal,
		},
		Check{
			Name:     "every fault-carrying trace survives sampling",
			Expected: "100% retention",
			Measured: fmt.Sprintf("%d/%d", faultKept, faultTotal),
			Pass:     faultTotal > 0 && faultKept == faultTotal,
		},
		Check{
			Name:     "every workflow DLQ trace survives sampling",
			Expected: "100% retention",
			Measured: fmt.Sprintf("%d/%d", dlqKept, dlqTotal),
			Pass:     dlqTotal > 0 && dlqKept == dlqTotal,
		},
		Check{
			Name:     "SLO alert links resolve through the sampled journal",
			Expected: "every alert's trace resolvable",
			Measured: fmt.Sprintf("%d alerts", len(sampledA.alerts)),
			Pass:     alertLinksResolve,
		},
		Check{
			Name:     "sampled exports are shard-layout invariant",
			Expected: "byte-identical across 1 and 16 stripes",
			Measured: map[bool]string{true: "identical", false: "DIVERGED"}[layoutInvariant],
			Pass:     layoutInvariant,
		},
		Check{
			Name:     "fixed seed reproduces the sampled exports",
			Expected: "byte-identical NDJSON + insight JSON",
			Measured: map[bool]string{true: "identical", false: "DIVERGED"}[reproducible],
			Pass:     reproducible,
		},
		Check{
			Name:     "insight report annotates its coverage",
			Expected: `"coverage" with kept/total`,
			Measured: fmt.Sprintf("kept %d of %d traces", sampledA.stats.KeptTraces, sampledA.stats.DecidedTraces),
			Pass:     bytes.Contains(sampledA.insightJSON, []byte(`"coverage"`)) && sampledA.stats.DecidedTraces > sampledA.stats.KeptTraces,
		},
	)
	res.Artifacts = append(res.Artifacts,
		Artifact{Name: "telem-sampled.ndjson", Contents: sampledA.ndjson},
		Artifact{Name: "telem-insight.json", Contents: sampledA.insightJSON},
	)
	return res, nil
}
