package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/runtime"
	"repro/internal/stats"
)

// §6 ablation: de-optimization of JITted code. The snapshot's machine
// code is specialized (with type guards) for the argument types seen
// during install-time priming; an invocation with differently typed
// arguments trips the guards and falls back to the interpreter for that
// call. The paper argues this worst case still wins overall ("our
// evaluation results always show a performance improvement"); this
// experiment quantifies it.

// deoptSource computes over params.n whose type varies per request: the
// priming input is an int, adversarial requests send the number as a
// string, changing compute("..."), the hot function's argument type.
const deoptSource = `
func compute(n) {
  // Accept int or numeric string — a typical dynamic-language handler.
  let v = int(n);
  let total = 0;
  let i = 0;
  while (i < 40000) {
    total = total + (v + i) % 97;
    i = i + 1;
  }
  return total;
}

func main(params) {
  return compute(params.n);
}
`

// RunDeopt is registered as experiment id "deopt".
func RunDeopt() (*Result, error) {
	res := &Result{ID: "deopt"}

	env := newEnv()
	fw := core.New(env, core.Options{})
	if _, err := fw.Install(platform.Function{
		Name:          "poly",
		Source:        deoptSource,
		Lang:          runtime.LangNode,
		DefaultParams: map[string]any{"n": 12345}, // primes + JITs with an int
	}); err != nil {
		return nil, err
	}

	measure := func(params map[string]any) (time.Duration, time.Duration, error) {
		inv, err := fw.Invoke("poly", platform.MustParams(params), platform.InvokeOptions{})
		if err != nil {
			return 0, 0, err
		}
		return inv.Breakdown.Exec(), inv.Breakdown.Total(), nil
	}

	matchedExec, matchedTotal, err := measure(map[string]any{"n": 54321})
	if err != nil {
		return nil, err
	}
	// The adversarial request: same value, delivered as a string — the
	// entry type guard on main/compute fails and the call de-optimizes.
	deoptExec, deoptTotal, err := measure(map[string]any{"n": "54321"})
	if err != nil {
		return nil, err
	}

	// Baseline: the same adversarial request on a cold OpenWhisk
	// container (what the platform comparison looks like even in the
	// JIT's worst case).
	owEnv := newEnv()
	ow := platform.NewOpenWhisk(owEnv)
	if _, err := ow.Install(platform.Function{Name: "poly", Source: deoptSource, Lang: runtime.LangNode}); err != nil {
		return nil, err
	}
	owInv, err := ow.Invoke("poly", platform.MustParams(map[string]any{"n": "54321"}),
		platform.InvokeOptions{Mode: platform.ModeCold})
	if err != nil {
		return nil, err
	}

	t := Table{
		ID:     "deopt",
		Title:  "Ablation (§6): de-optimization when argument types differ from the priming profile",
		Header: []string{"Request", "Exec", "End-to-end"},
		Notes: []string{
			"snapshot primed and JITted with integer params; the string request trips the type guards",
		},
	}
	t.Rows = append(t.Rows,
		[]string{"fireworks, matching types (JITted)", fmtDur(matchedExec), fmtDur(matchedTotal)},
		[]string{"fireworks, mismatched types (deopt)", fmtDur(deoptExec), fmtDur(deoptTotal)},
		[]string{"openwhisk cold, mismatched types", fmtDur(owInv.Breakdown.Exec()), fmtDur(owInv.Breakdown.Total())},
	)
	res.Tables = append(res.Tables, t)

	res.Checks = append(res.Checks,
		Check{
			Name:     "guard failure slows the de-optimized call",
			Expected: "performance may decrease temporarily (§6)",
			Measured: fmt.Sprintf("%.1fx slower exec than JITted", float64(deoptExec)/float64(matchedExec)),
			Pass:     deoptExec > matchedExec,
		},
		Check{
			Name:     "Fireworks still wins end-to-end under deopt",
			Expected: "results always show a performance improvement (§6)",
			Measured: stats.FormatSpeedup(stats.Speedup(owInv.Breakdown.Total(), deoptTotal)),
			Pass:     deoptTotal < owInv.Breakdown.Total(),
		},
	)
	return res, nil
}
