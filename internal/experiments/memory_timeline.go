package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/platform"
	"repro/internal/runtime"
	"repro/internal/timeseries"
	"repro/internal/vclock"
	"repro/internal/workloads"
)

// Memory-timeline experiment ("memtl"): the Fig-10 consolidation run
// replayed on a scaled-down host with the telemetry layer attached —
// after every launched microVM the sampler snapshots the memory
// surface (used/shared/private bytes, CoW faults, PSS sum, sharing
// efficiency) at the run's virtual time, producing the memory-vs-VMs
// timeline as a CSV artifact instead of a single endpoint number.
// Because telemetry is a pure function of the workload, running the
// same pass twice must export byte-identical CSV — the experiment's
// determinism witness.

const (
	// memtlHostBytes scales §5.4's 128 GiB testbed down 32x so the
	// timeline run stays fast under the plain test suite; the swappiness
	// (0.6) and the per-VM methodology are unchanged.
	memtlHostBytes = 4 << 30
	memtlMaxVMs    = 120
)

// memtlKeep filters the sampler to the memory-telemetry surface.
func memtlKeep(name string) bool {
	return strings.HasPrefix(name, "mem_") || name == "vmm_live_vms"
}

// memtlOutcome is one consolidation pass with telemetry attached.
type memtlOutcome struct {
	vms    int
	csv    string
	report mem.HostReport
}

// memtlPass launches VMs of the Fact workload until the host starts
// swapping, sampling the memory series after each one. fireworks=true
// resumes every VM from the shared post-JIT snapshot (and sustains the
// Fig-10 dirty load); false cold-boots independent Firecracker VMs.
func memtlPass(fireworks bool) (*memtlOutcome, error) {
	env := platform.NewEnv(platform.EnvConfig{MemBytes: memtlHostBytes, Swappiness: 0.6})
	w := workloads.Fact(runtime.LangNode)
	var p platform.Platform
	var fw *core.Framework
	if fireworks {
		fw = core.New(env, core.Options{RetainInstances: true})
		p = fw
	} else {
		p = platform.NewFirecracker(env, platform.FCNoSnapshot)
	}
	if _, err := p.Install(w.Function); err != nil {
		return nil, err
	}

	sampler := timeseries.NewSampler(env.Metrics, timeseries.DefaultCapacity)
	sampler.SetFilter(memtlKeep)
	sampler.AddProbe("mem_pss_sum_bytes", func() float64 { return env.Mem.Report().PSSSumBytes })
	sampler.AddProbe("mem_sharing_efficiency", func() float64 {
		rep := env.Mem.Report()
		if rep.UsedBytes == 0 {
			return 1
		}
		return rep.SharingEfficiency
	})
	timeline := vclock.New()
	sampler.Sample(0)

	params := platform.MustParams(lightFactParams)
	opts := platform.InvokeOptions{}
	if !fireworks {
		opts.Mode = platform.ModeCold
	}
	out := &memtlOutcome{}
	for i := 1; i <= memtlMaxVMs; i++ {
		inv, err := p.Invoke(w.Name, params, opts)
		if err != nil {
			return nil, fmt.Errorf("memtl vm %d: %w", i, err)
		}
		if fireworks {
			instances := fw.Instances(w.Name)
			instances[len(instances)-1].SustainDirty(fireworksSustainedDirtyBytes)
		}
		sampler.Sample(timeline.Advance(inv.Breakdown.Total()))
		if env.Mem.Swapping() {
			out.vms = i
			break
		}
	}
	if out.vms == 0 {
		return nil, fmt.Errorf("memtl: never hit the swap threshold in %d VMs", memtlMaxVMs)
	}
	out.report = env.Mem.Report()
	var sb strings.Builder
	if err := sampler.WriteCSV(&sb); err != nil {
		return nil, err
	}
	out.csv = sb.String()
	return out, nil
}

// RunMemTimeline is registered as experiment id "memtl".
func RunMemTimeline() (*Result, error) {
	fwPass, err := memtlPass(true)
	if err != nil {
		return nil, err
	}
	fcPass, err := memtlPass(false)
	if err != nil {
		return nil, err
	}
	// Determinism: telemetry is a pure function of the workload, so the
	// same pass exports the same bytes.
	replay, err := memtlPass(true)
	if err != nil {
		return nil, err
	}
	identical := fwPass.csv == replay.csv

	res := &Result{ID: "memtl"}
	row := func(mode string, o *memtlOutcome) []string {
		return []string{
			mode,
			fmt.Sprintf("%d", o.vms),
			fmt.Sprintf("%.2f", gib(o.report.UsedBytes)),
			fmt.Sprintf("%.2f", o.report.PSSSumBytes/(1<<30)),
			fmt.Sprintf("%.2fx", o.report.SharingEfficiency),
			map[bool]string{true: "yes", false: "NO"}[o.report.PSSPageExact],
		}
	}
	res.Tables = append(res.Tables, Table{
		ID:     "memtl",
		Title:  fmt.Sprintf("Memory timeline: consolidation to swap on a %d GiB host (Fig-10 methodology)", memtlHostBytes>>30),
		Header: []string{"mode", "VMs at swap", "used (GiB)", "PSS sum (GiB)", "sharing", "page-exact"},
		Rows: [][]string{
			row("fireworks (shared snapshot)", fwPass),
			row("firecracker (independent)", fcPass),
		},
		Notes: []string{
			"one telemetry sample per launched VM on the run's virtual timeline (CSV artifacts)",
			"sharing = fleet RSS over host resident bytes; PSS sum must equal resident bytes page-exactly",
		},
	})
	res.Checks = append(res.Checks,
		Check{
			Name:     "same seed exports byte-identical timeline CSV",
			Expected: "byte-identical",
			Measured: map[bool]string{true: "identical", false: "DIVERGED"}[identical],
			Pass:     identical,
		},
		Check{
			Name:     "PSS sum matches host accounting page-exactly",
			Expected: "sum(PSS)/page == resident pages",
			Measured: fmt.Sprintf("fireworks %v, firecracker %v", fwPass.report.PSSPageExact, fcPass.report.PSSPageExact),
			Pass:     fwPass.report.PSSPageExact && fcPass.report.PSSPageExact,
		},
		atLeastCheck("snapshot sharing efficiency at the swap point",
			1.2, fwPass.report.SharingEfficiency, "VMs map more than the host holds"),
		ratioCheck("consolidation ratio (Fireworks/Firecracker)",
			1.67, float64(fwPass.vms)/float64(fcPass.vms), 0.35),
	)
	res.Artifacts = append(res.Artifacts,
		Artifact{Name: "memory-timeline-fireworks.csv", Contents: []byte(fwPass.csv)},
		Artifact{Name: "memory-timeline-firecracker.csv", Contents: []byte(fcPass.csv)},
	)
	return res, nil
}
