// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) on the simulated stack. Each experiment returns
// rendered tables plus shape checks — the paper's reported claim next to
// the measured value — which EXPERIMENTS.md records.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/mem"
	"repro/internal/platform"
)

// Table is one rendered result table.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Check compares a paper claim against the measured value.
type Check struct {
	Name     string
	Expected string
	Measured string
	Pass     bool
}

// Artifact is a file an experiment emits alongside its tables — e.g. a
// Chrome trace of the run, loadable in Perfetto. fwbench writes each
// one next to its report.
type Artifact struct {
	Name     string
	Contents []byte
}

// Result is the output of one experiment.
type Result struct {
	ID        string
	Tables    []Table
	Checks    []Check
	Artifacts []Artifact
}

// MemoryReporter is implemented by platforms that expose the address
// spaces of their live sandboxes (for PSS measurements).
type MemoryReporter interface {
	Spaces(name string) []*mem.Space
}

// Experiment is a runnable reproduction of one table/figure.
type Experiment struct {
	ID    string
	Title string
	Run   func() (*Result, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Table 1: design comparison of serverless platforms", RunTable1},
		{"table2", "Table 2: tested serverless applications", RunTable2},
		{"snaptime", "§5.1: post-JIT snapshot creation time", RunSnapshotTime},
		{"fig6", "Figure 6: Node.js FaaSdom latency breakdown", RunFig6},
		{"fig7", "Figure 7: Python FaaSdom latency breakdown", RunFig7},
		{"fig9", "Figure 9: real-world applications (Alexa, data analysis)", RunFig9},
		{"fig10", "Figure 10: memory usage vs number of microVMs", RunFig10},
		{"fig11", "Figure 11: performance impact of Fireworks optimizations", RunFig11},
		{"fig12", "Figure 12: memory impact of Fireworks optimizations", RunFig12},
		// Extensions beyond the paper's figures (see DESIGN.md §5).
		{"wild", "Extension: warm pools vs snapshots on a Serverless-in-the-Wild trace (§2)", RunWild},
		{"reap", "Ablation: REAP-style record-and-replay restore prefetch + dedup capacity (§7)", RunAblationREAP},
		{"snapbudget", "Ablation: bounded snapshot store with LRU replacement + remote storage (§6)", RunAblationSnapBudget},
		{"deopt", "Ablation: de-optimization under mismatched argument types (§6)", RunDeopt},
		{"scale", "Extension: cluster-wide consolidation capacity scaling", RunScale},
		{"chaos", "Extension: deterministic fault injection with retry + failover policies", RunChaos},
		{"wfchain", "Extension: workflow DAGs, triggers, and DLQ replay under the chaos storm", RunWfchain},
		{"insight", "Extension: critical-path blame, service graph, and exemplars over the chaos journal", RunInsight},
		{"memtl", "Extension: memory timeline with PSS conservation and sharing lineage (Fig-10 methodology)", RunMemTimeline},
		{"telem", "Extension: tail-based trace sampling with 100% error retention and layout-invariant exports", RunTelem},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (have %s)", id, strings.Join(ids, ", "))
}

// Render pretty-prints a result as aligned ASCII tables.
func (r *Result) Render() string {
	var sb strings.Builder
	for _, t := range r.Tables {
		sb.WriteString(renderTable(&t))
		sb.WriteByte('\n')
	}
	if len(r.Checks) > 0 {
		sb.WriteString("Shape checks (paper vs measured):\n")
		for _, c := range r.Checks {
			status := "ok  "
			if !c.Pass {
				status = "WARN"
			}
			fmt.Fprintf(&sb, "  [%s] %-42s paper: %-28s measured: %s\n", status, c.Name, c.Expected, c.Measured)
		}
	}
	if len(r.Artifacts) > 0 {
		sb.WriteString("Artifacts:\n")
		for _, a := range r.Artifacts {
			fmt.Fprintf(&sb, "  %s (%d bytes)\n", a.Name, len(a.Contents))
		}
	}
	return sb.String()
}

func renderTable(t *Table) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	var rule []string
	for _, w := range widths {
		rule = append(rule, strings.Repeat("-", w))
	}
	writeRow(rule)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// fmtDur renders a duration rounded for table display.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%.0fµs", float64(d.Nanoseconds())/1000)
	}
}

// ratioCheck builds a Check comparing a measured ratio to an expected
// one within tolerance (relative).
func ratioCheck(name string, expected, measured, tolerance float64) Check {
	pass := measured >= expected*(1-tolerance) && measured <= expected*(1+tolerance)
	return Check{
		Name:     name,
		Expected: fmt.Sprintf("%.1fx", expected),
		Measured: fmt.Sprintf("%.1fx", measured),
		Pass:     pass,
	}
}

// atLeastCheck passes when measured >= floor.
func atLeastCheck(name string, floorVal, measured float64, paperClaim string) Check {
	return Check{
		Name:     name,
		Expected: paperClaim,
		Measured: fmt.Sprintf("%.1fx", measured),
		Pass:     measured >= floorVal,
	}
}

// newEnv builds a fresh host environment for one measurement so warm
// pools and databases never leak across configurations.
func newEnv() *platform.Env {
	return platform.NewEnv(platform.EnvConfig{})
}
