package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/runtime"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// cell is one bar of a latency-breakdown figure.
type cell struct {
	platform string
	mode     string // "c", "w", or "both"
	startup  time.Duration
	exec     time.Duration
	others   time.Duration
}

func (c cell) total() time.Duration { return c.startup + c.exec + c.others }

func cellFrom(platformName, mode string, inv *platform.Invocation) cell {
	return cell{
		platform: platformName,
		mode:     mode,
		startup:  inv.Breakdown.Startup(),
		exec:     inv.Breakdown.Exec(),
		others:   inv.Breakdown.Others(),
	}
}

// measureGrid runs one workload on every platform in both start modes
// (Fireworks has no cold/warm distinction), each on a fresh host
// environment so pools never leak between configurations.
func measureGrid(w workloads.Workload) ([]cell, error) {
	baselines := []struct {
		name string
		mk   func(env *platform.Env) platform.Platform
	}{
		{"openwhisk", platform.NewOpenWhisk},
		{"gvisor", platform.NewGVisor},
		{"firecracker", func(env *platform.Env) platform.Platform {
			return platform.NewFirecracker(env, platform.FCNoSnapshot)
		}},
	}
	params := platform.MustParams(w.DefaultParams)
	var cells []cell
	for _, b := range baselines {
		env := newEnv()
		p := b.mk(env)
		if _, err := p.Install(w.Function); err != nil {
			return nil, fmt.Errorf("%s install %s: %w", b.name, w.Name, err)
		}
		coldInv, err := p.Invoke(w.Name, params, platform.InvokeOptions{Mode: platform.ModeCold})
		if err != nil {
			return nil, fmt.Errorf("%s cold %s: %w", b.name, w.Name, err)
		}
		cells = append(cells, cellFrom(b.name, "c", coldInv))
		warmInv, err := p.Invoke(w.Name, params, platform.InvokeOptions{Mode: platform.ModeWarm})
		if err != nil {
			return nil, fmt.Errorf("%s warm %s: %w", b.name, w.Name, err)
		}
		cells = append(cells, cellFrom(b.name, "w", warmInv))
	}

	env := newEnv()
	fw := core.New(env, core.Options{})
	if _, err := fw.Install(w.Function); err != nil {
		return nil, fmt.Errorf("fireworks install %s: %w", w.Name, err)
	}
	inv, err := fw.Invoke(w.Name, params, platform.InvokeOptions{})
	if err != nil {
		return nil, fmt.Errorf("fireworks %s: %w", w.Name, err)
	}
	cells = append(cells, cellFrom("fireworks", "both", inv))
	return cells, nil
}

func gridTable(id, title string, cells []cell) Table {
	t := Table{
		ID:     id,
		Title:  title,
		Header: []string{"Platform", "Mode", "Start-up", "Exec", "Others", "Total"},
	}
	for _, c := range cells {
		t.Rows = append(t.Rows, []string{
			c.platform, c.mode, fmtDur(c.startup), fmtDur(c.exec), fmtDur(c.others), fmtDur(c.total()),
		})
	}
	return t
}

// find returns the cell for a platform+mode.
func find(cells []cell, platformName, mode string) cell {
	for _, c := range cells {
		if c.platform == platformName && c.mode == mode {
			return c
		}
	}
	return cell{}
}

// runLatencyFigure is the shared body of Figures 6 and 7.
func runLatencyFigure(id string, lang runtime.Lang) (*Result, error) {
	res := &Result{ID: id}
	suite := workloads.FaaSdom(lang)
	letters := []string{"a", "b", "c", "d"}
	grids := make(map[string][]cell, len(suite))
	perPlatformTotals := make(map[string][]time.Duration)

	for i, w := range suite {
		cells, err := measureGrid(w)
		if err != nil {
			return nil, err
		}
		grids[w.Name] = cells
		res.Tables = append(res.Tables, gridTable(
			fmt.Sprintf("%s%s", id, letters[i]),
			fmt.Sprintf("Figure %s(%s): %s latency breakdown", id[3:], letters[i], w.Name),
			cells))
		for _, c := range cells {
			key := c.platform + "-" + c.mode
			perPlatformTotals[key] = append(perPlatformTotals[key], c.total())
		}
	}

	// (e): geometric mean across the four benchmarks.
	geo := Table{
		ID:     id + "e",
		Title:  fmt.Sprintf("Figure %s(e): geometric mean of the four benchmarks", id[3:]),
		Header: []string{"Platform", "Mode", "Geomean total"},
	}
	order := []struct{ plat, mode string }{
		{"openwhisk", "c"}, {"openwhisk", "w"},
		{"gvisor", "c"}, {"gvisor", "w"},
		{"firecracker", "c"}, {"firecracker", "w"},
		{"fireworks", "both"},
	}
	geoTotals := make(map[string]time.Duration)
	for _, o := range order {
		key := o.plat + "-" + o.mode
		g := stats.GeoMeanDurations(perPlatformTotals[key])
		geoTotals[key] = g
		geo.Rows = append(geo.Rows, []string{o.plat, o.mode, fmtDur(g)})
	}
	res.Tables = append(res.Tables, geo)

	// Shape checks.
	fact := grids[workloads.FaaSdom(lang)[0].Name]
	disk := grids[workloads.FaaSdom(lang)[2].Name]
	net := grids[workloads.FaaSdom(lang)[3].Name]
	fw := find(fact, "fireworks", "both")
	fcCold := find(fact, "firecracker", "c")

	coldStartup := stats.Speedup(fcCold.startup, fw.startup)
	warmWorst := time.Duration(0)
	for _, p := range []string{"openwhisk", "gvisor", "firecracker"} {
		if s := find(fact, p, "w").startup; s > warmWorst {
			warmWorst = s
		}
	}
	warmStartup := stats.Speedup(warmWorst, fw.startup)
	geoVsCold := stats.Speedup(geoTotals["firecracker-c"], geoTotals["fireworks-both"])
	worstWarmGeo := geoTotals["openwhisk-w"]
	for _, key := range []string{"gvisor-w", "firecracker-w"} {
		if geoTotals[key] > worstWarmGeo {
			worstWarmGeo = geoTotals[key]
		}
	}
	geoVsWarm := stats.Speedup(worstWarmGeo, geoTotals["fireworks-both"])

	if lang == runtime.LangNode {
		res.Checks = append(res.Checks,
			atLeastCheck("fact: cold start-up vs Firecracker", 80, coldStartup, "up to 133x"),
			ratioCheck("fact: warm start-up vs slowest warm", 3.8, warmStartup, 0.5),
			atLeastCheck("fact: exec vs cold (JIT in snapshot)", 1.15,
				stats.Speedup(fcCold.exec, fw.exec), "up to 38% faster"),
			atLeastCheck("diskio: exec vs gVisor", 4,
				stats.Speedup(find(disk, "gvisor", "c").exec, find(disk, "fireworks", "both").exec),
				"up to 9.2x"),
			atLeastCheck("netlatency: cold start-up vs slowest cold", 20,
				stats.Speedup(find(net, "firecracker", "c").startup, find(net, "fireworks", "both").startup),
				"up to 25x"),
			atLeastCheck("geomean: total vs Firecracker cold", 5, geoVsCold, "up to 8.6x (vs others)"),
			atLeastCheck("geomean: total vs slowest warm", 2, geoVsWarm, "faster than every warm start"),
		)
	} else {
		mat := grids[workloads.FaaSdom(lang)[1].Name]
		res.Checks = append(res.Checks,
			atLeastCheck("fact: cold start-up vs Firecracker", 50, coldStartup, "59.8x"),
			ratioCheck("fact: warm start-up vs slowest warm", 4.4, warmStartup, 0.6),
			atLeastCheck("fact: exec vs cold (Numba in snapshot)", 10,
				stats.Speedup(fcCold.exec, fw.exec), "20x faster"),
			atLeastCheck("matrix: exec vs cold", 40,
				stats.Speedup(find(mat, "firecracker", "c").exec, find(mat, "fireworks", "both").exec),
				"up to 80x"),
			atLeastCheck("geomean: total vs Firecracker cold", 8, geoVsCold, "up to 19x (vs others)"),
			atLeastCheck("geomean: total vs slowest warm", 4, geoVsWarm, "2.2x higher gain than Node.js"),
		)
	}
	return res, nil
}

// RunFig6 regenerates the Node.js FaaSdom latency figures.
func RunFig6() (*Result, error) { return runLatencyFigure("fig6", runtime.LangNode) }

// RunFig7 regenerates the Python FaaSdom latency figures.
func RunFig7() (*Result, error) { return runLatencyFigure("fig7", runtime.LangPython) }
