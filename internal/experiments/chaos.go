package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/runtime"
	"repro/internal/timeseries"
	"repro/internal/vclock"
	"repro/internal/workloads"
)

// Chaos experiment: the paper's evaluation assumes every restore, queue
// fetch, and snapshot transfer succeeds. RunChaos measures what the
// platform does when they don't — the same seeded fault schedule is
// replayed against two configurations of a three-node cluster:
//
//   - resilient: per-stage retries (exponential backoff, per-attempt
//     deadlines) plus controller-level failover re-placement;
//   - exposed: the identical fault plane with every policy disabled,
//     the paper's fail-fast baseline.
//
// Because the plane, retry jitter, and workload are all deterministic
// on the virtual clock, a fixed seed reproduces the run — including
// the metrics dump — byte for byte. The experiment verifies that too.

const (
	// chaosSeed pins the fault schedule; change it and you get a
	// different (but equally reproducible) storm.
	chaosSeed = 22
	// chaosRate is the ~1% per-operation fault rate of the ISSUE's
	// acceptance bar.
	chaosRate  = 0.01
	chaosNodes = 3
	// chaosInvocations is the request count per configuration — large
	// enough that a 1% rate injects a meaningful number of faults.
	chaosInvocations = 300
)

// chaosBudget sizes each node's snapshot store to hold the shared base
// image plus exactly one of the two function deltas — one byte short of
// both — so alternating functions keep evicting each other's delta and
// the storm continuously exercises the eviction + remote-fetch path.
// Everything runs on the virtual clock, so the probe is deterministic.
func chaosBudget() (uint64, error) {
	env := platform.NewEnv(platform.EnvConfig{})
	fw := core.New(env, core.Options{})
	for _, w := range []workloads.Workload{workloads.Fact(runtime.LangNode), workloads.MatrixMult(runtime.LangNode)} {
		if _, err := fw.Install(w.Function); err != nil {
			return 0, err
		}
	}
	return env.Snaps.UsedBytes() - 1, nil
}

// chaosOutcome is what one configuration's storm produced.
type chaosOutcome struct {
	successes int
	failures  int
	retries   int64
	failovers int64
	crashes   int64
	injected  int64
	dump      string
	// ndjson is the run's full event journal (the determinism witness);
	// chrome is the same journal as Perfetto-loadable trace JSON.
	ndjson []byte
	chrome []byte
	// alerts is what the SLO watchdog fired during the storm; journal
	// keeps the run's event journal alive so each alert's causal link
	// can be resolved back to the trace that broke the SLO.
	alerts  []timeseries.Alert
	journal *events.Journal
	// reg keeps the storm's metrics registry alive so the insight
	// experiment can walk histogram exemplars back into the journal.
	reg *metrics.Registry
}

func (o *chaosOutcome) successRate() float64 {
	total := o.successes + o.failures
	if total == 0 {
		return 0
	}
	return float64(o.successes) / float64(total)
}

// runChaosOnce replays the seeded storm against one configuration.
func runChaosOnce(seed uint64, resilient bool) (*chaosOutcome, error) {
	plane := faults.NewPlane(seed)
	budget, err := chaosBudget()
	if err != nil {
		return nil, err
	}
	cfg := platform.EnvConfig{
		SnapshotDiskBudget:    budget,
		RemoteSnapshotStorage: true,
		Faults:                plane,
	}
	retry := faults.RetryPolicy{}
	if resilient {
		retry = faults.DefaultRetryPolicy()
	}
	c := cluster.New(chaosNodes, cluster.RoundRobin, cfg, func(env *platform.Env) platform.Platform {
		return core.New(env, core.Options{Retry: retry})
	})
	if resilient {
		c.SetFailover(cluster.FailoverPolicy{MaxFailovers: 2})
	} else {
		c.SetFailover(cluster.FailoverPolicy{MaxFailovers: 0})
	}

	// Install fault-free: the storm targets the data path, not the
	// one-time deploy. Profiles arm only after both functions are in.
	wa := workloads.Fact(runtime.LangNode)
	wb := workloads.MatrixMult(runtime.LangNode)
	for _, w := range []workloads.Workload{wa, wb} {
		if err := c.Install(w.Function); err != nil {
			return nil, err
		}
	}
	plane.ApplyDefaultPlan(chaosRate)

	// The SLO watchdog rides along on the storm's virtual timeline: one
	// sample per request, and the invoke-success-rate rule is evaluated
	// at every sample. MinDen keeps it from firing before the storm has
	// produced a statistically meaningful denominator.
	out := &chaosOutcome{journal: c.Journal()}
	sampler := timeseries.NewSampler(c.Metrics(), timeseries.DefaultCapacity)
	sampler.AddProbe("chaos_requests_total", func() float64 { return float64(out.successes + out.failures) })
	sampler.AddProbe("chaos_failures_total", func() float64 { return float64(out.failures) })
	wd := timeseries.NewWatchdog(sampler, c.Journal(), c.Metrics())
	wd.AddRule(timeseries.Rule{
		Name:      "invoke-success-rate",
		Ratio:     &timeseries.RatioSource{Num: "chaos_failures_total", Den: "chaos_requests_total", Complement: true, MinDen: 50},
		Op:        timeseries.AtLeast,
		Threshold: 0.99,
	})
	timeline := vclock.New()
	sampler.Sample(0)

	paramsA := platform.MustParams(map[string]any{"n": 101, "rounds": 2})
	paramsB := platform.MustParams(map[string]any{"n": 4})
	for i := 0; i < chaosInvocations; i++ {
		name, params := wa.Name, paramsA
		if i%2 == 1 {
			name, params = wb.Name, paramsB
		}
		inv, _, err := c.Invoke(name, params, platform.InvokeOptions{})
		step := time.Microsecond // failures still move the timeline
		if err != nil {
			out.failures++
		} else {
			out.successes++
			step = inv.Breakdown.Total()
		}
		now := timeline.Advance(step)
		sampler.Sample(now)
		wd.Evaluate(now)
	}
	out.alerts = wd.Alerts()

	reg := c.Metrics()
	out.reg = reg
	out.retries = reg.Counter("retries_total").Value()
	out.failovers = reg.Counter("failovers_total").Value()
	out.crashes = reg.Counter("cluster_node_crashes_total").Value()
	for _, cs := range reg.Snapshot().Counters {
		if strings.HasPrefix(cs.Name, "faults_injected_total{") {
			out.injected += cs.Value
		}
	}
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		return nil, err
	}
	out.dump = sb.String()
	evs := c.Journal().Events()
	var nd, ch bytes.Buffer
	if err := events.WriteNDJSON(&nd, evs); err != nil {
		return nil, err
	}
	if err := events.WriteChromeTrace(&ch, evs); err != nil {
		return nil, err
	}
	out.ndjson = nd.Bytes()
	out.chrome = ch.Bytes()
	return out, nil
}

// RunChaos is registered as experiment id "chaos".
func RunChaos() (*Result, error) {
	resilient, err := runChaosOnce(chaosSeed, true)
	if err != nil {
		return nil, err
	}
	exposed, err := runChaosOnce(chaosSeed, false)
	if err != nil {
		return nil, err
	}
	// Determinism: the same seed and configuration must reproduce the
	// whole run — checked on the full metrics dump, the most sensitive
	// artifact (every counter, gauge, bucket, and quantile).
	replay, err := runChaosOnce(chaosSeed, true)
	if err != nil {
		return nil, err
	}
	reproducible := resilient.dump == replay.dump
	traceReproducible := bytes.Equal(resilient.ndjson, replay.ndjson)

	res := &Result{ID: "chaos"}
	row := func(mode string, o *chaosOutcome) []string {
		return []string{
			mode,
			fmt.Sprintf("%d", o.successes+o.failures),
			fmt.Sprintf("%d", o.injected),
			fmt.Sprintf("%d", o.successes),
			fmt.Sprintf("%d", o.failures),
			fmt.Sprintf("%.1f%%", o.successRate()*100),
			fmt.Sprintf("%d", o.retries),
			fmt.Sprintf("%d", o.failovers),
			fmt.Sprintf("%d", o.crashes),
		}
	}
	res.Tables = append(res.Tables, Table{
		ID:     "chaos",
		Title:  fmt.Sprintf("Chaos: %d invocations at %.0f%% fault rate (seed %d, %d nodes)", chaosInvocations, chaosRate*100, chaosSeed, chaosNodes),
		Header: []string{"mode", "requests", "faults", "ok", "failed", "success", "retries", "failovers", "crashes"},
		Rows: [][]string{
			row("resilient (retry+failover)", resilient),
			row("exposed (policies off)", exposed),
		},
		Notes: []string{
			"same seed, same fault schedule: the two modes differ only in policy",
			"latency-spike faults succeed slowly, so they fail nothing in exposed mode either",
		},
	})
	res.Checks = append(res.Checks,
		Check{
			Name:     "resilient success rate with faults injected",
			Expected: ">= 99%",
			Measured: fmt.Sprintf("%.1f%% (%d faults injected)", resilient.successRate()*100, resilient.injected),
			Pass:     resilient.successRate() >= 0.99 && resilient.injected > 0,
		},
		Check{
			Name:     "policies off degrades measurably",
			Expected: "success < resilient",
			Measured: fmt.Sprintf("%.1f%% vs %.1f%%", exposed.successRate()*100, resilient.successRate()*100),
			Pass:     exposed.successRate() < resilient.successRate(),
		},
		Check{
			Name:     "fixed seed reproduces the metrics dump",
			Expected: "byte-identical",
			Measured: map[bool]string{true: "identical", false: "DIVERGED"}[reproducible],
			Pass:     reproducible,
		},
		Check{
			Name:     "fixed seed reproduces the event journal",
			Expected: "byte-identical NDJSON",
			Measured: map[bool]string{true: "identical", false: "DIVERGED"}[traceReproducible],
			Pass:     traceReproducible,
		},
	)

	// SLO watchdog: the exposed storm must breach the 99% success SLO
	// and the alert must carry a causal link into the journal that
	// resolves to the trace of a failing request; the resilient storm
	// holds the SLO, so the same rule must stay quiet there.
	linkResolves := false
	alertDetail := "no alert fired"
	if len(exposed.alerts) > 0 {
		a := exposed.alerts[0]
		linked := exposed.journal.Trace(a.Link.Trace)
		linkResolves = a.Link.Trace != 0 && len(linked) > 0
		alertDetail = fmt.Sprintf("%s at %v (value %.3f, link trace %d: %d events)",
			a.Rule, a.At, a.Value, uint64(a.Link.Trace), len(linked))
	}
	res.Checks = append(res.Checks,
		Check{
			Name:     "SLO watchdog fires under the exposed storm",
			Expected: "invoke-success-rate alert",
			Measured: alertDetail,
			Pass:     len(exposed.alerts) > 0 && exposed.alerts[0].Rule == "invoke-success-rate",
		},
		Check{
			Name:     "alert causally links to a failing trace",
			Expected: "link resolves via the journal",
			Measured: alertDetail,
			Pass:     linkResolves,
		},
		Check{
			Name:     "watchdog stays quiet on the resilient storm",
			Expected: "no alerts",
			Measured: fmt.Sprintf("%d alerts", len(resilient.alerts)),
			Pass:     len(resilient.alerts) == 0,
		},
	)
	res.Artifacts = append(res.Artifacts,
		Artifact{Name: "chaos-trace.json", Contents: resilient.chrome},
		Artifact{Name: "chaos-trace.ndjson", Contents: resilient.ndjson},
	)
	return res, nil
}
