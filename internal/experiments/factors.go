package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/runtime"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// RunFig11 reproduces the §5.5.1 performance factor analysis: starting
// from the Firecracker baseline (no snapshot), add (1) a VM-level OS
// snapshot, then (2) the post-JIT snapshot (= Fireworks), and report
// the end-to-end speedup each factor contributes, per benchmark and
// language.
func RunFig11() (*Result, error) {
	res := &Result{ID: "fig11"}
	t := Table{
		ID:    "fig11",
		Title: "Figure 11: performance impact of Fireworks optimizations (end-to-end, cold path)",
		Header: []string{"Benchmark", "Baseline", "+OS snapshot", "+post-JIT",
			"OS snap speedup", "post-JIT speedup (cumulative)"},
	}

	type meas struct {
		base, osSnap, postJIT time.Duration
	}
	all := make(map[string]meas)
	for _, lang := range []runtime.Lang{runtime.LangNode, runtime.LangPython} {
		for _, w := range workloads.FaaSdom(lang) {
			m := meas{}
			var err error
			if m.base, err = coldTotal(platform.NewFirecracker(newEnv(), platform.FCNoSnapshot), w); err != nil {
				return nil, err
			}
			if m.osSnap, err = coldTotal(platform.NewFirecracker(newEnv(), platform.FCOSSnapshot), w); err != nil {
				return nil, err
			}
			fwEnv := newEnv()
			fw := core.New(fwEnv, core.Options{})
			if _, err := fw.Install(w.Function); err != nil {
				return nil, err
			}
			inv, err := fw.Invoke(w.Name, platform.MustParams(w.DefaultParams), platform.InvokeOptions{})
			if err != nil {
				return nil, err
			}
			m.postJIT = inv.Breakdown.Total()
			all[w.Name] = m
			t.Rows = append(t.Rows, []string{
				w.Name, fmtDur(m.base), fmtDur(m.osSnap), fmtDur(m.postJIT),
				stats.FormatSpeedup(stats.Speedup(m.base, m.osSnap)),
				stats.FormatSpeedup(stats.Speedup(m.base, m.postJIT)),
			})
		}
	}
	res.Tables = append(res.Tables, t)

	factNode := all[workloads.NameFact+"-nodejs"]
	netNode := all[workloads.NameNetLatency+"-nodejs"]
	netPy := all[workloads.NameNetLatency+"-python"]
	factPy := all[workloads.NameFact+"-python"]
	matrixPy := all[workloads.NameMatrixMult+"-python"]

	osNetBest := max2(stats.Speedup(netNode.base, netNode.osSnap), stats.Speedup(netPy.base, netPy.osSnap))
	res.Checks = append(res.Checks,
		// The paper reports 2.3x; this stack measures higher because the
		// baseline's cold path pays the full kernel boot while the
		// OS-snapshot restore is page-cache hot (see EXPERIMENTS.md).
		atLeastCheck("OS snapshot: Node.js compute speedup",
			2.3, stats.Speedup(factNode.base, factNode.osSnap), "2.3x"),
		atLeastCheck("OS snapshot: netlatency speedup (best of langs)",
			3, osNetBest, "up to 6.1x"),
		atLeastCheck("post-JIT on top of OS snapshot: Python fact",
			2, stats.Speedup(factPy.osSnap, factPy.postJIT), "large (Numba)"),
		atLeastCheck("post-JIT on top of OS snapshot: Python matrix",
			3, stats.Speedup(matrixPy.osSnap, matrixPy.postJIT), "large (Numba)"),
		atLeastCheck("post-JIT on top of OS snapshot: Node netlatency",
			1.2, stats.Speedup(netNode.osSnap, netNode.postJIT), "significant (late JIT)"),
	)
	return res, nil
}

// coldTotal installs and cold-invokes a workload, returning end-to-end
// latency.
func coldTotal(p platform.Platform, w workloads.Workload) (time.Duration, error) {
	if _, err := p.Install(w.Function); err != nil {
		return 0, fmt.Errorf("fig11 install %s on %s: %w", w.Name, p.PlatformName(), err)
	}
	inv, err := p.Invoke(w.Name, platform.MustParams(w.DefaultParams),
		platform.InvokeOptions{Mode: platform.ModeCold})
	if err != nil {
		return 0, fmt.Errorf("fig11 invoke %s on %s: %w", w.Name, p.PlatformName(), err)
	}
	return inv.Breakdown.Total(), nil
}
