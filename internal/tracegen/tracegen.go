// Package tracegen generates synthetic serverless invocation traces
// shaped like the production workload characterization the paper builds
// its motivation on (Shahrad et al., "Serverless in the Wild", USENIX
// ATC 2020 — reference [48]): function popularity is heavily skewed,
// with only ~18.6% of functions invoked more than once a minute and the
// remaining ~81.4% invoked rarely — the population for which warm pools
// waste memory without hiding cold starts (§2 of the Fireworks paper).
//
// Arrivals are Poisson per function (exponential inter-arrival times)
// from a seeded deterministic source, so a trace is a pure function of
// its Config.
package tracegen

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/vclock"
)

// Config shapes a trace.
type Config struct {
	// Functions is the number of distinct functions (default 100).
	Functions int
	// Duration is the trace length in virtual time (default 1 hour).
	Duration time.Duration
	// Seed makes the trace reproducible (default 1).
	Seed uint64
	// PopularFraction is the share of functions in the popular class
	// (default 0.186, the ATC'20 measurement).
	PopularFraction float64
	// PopularRatePerMin is the popular class's mean invocation rate
	// (default 2.0/min — comfortably above once a minute).
	PopularRatePerMin float64
	// RareMeanInterval is the rare class's mean time between
	// invocations (default 25 min — well below once a minute).
	RareMeanInterval time.Duration
}

func (c *Config) applyDefaults() {
	if c.Functions == 0 {
		c.Functions = 100
	}
	if c.Duration == 0 {
		c.Duration = time.Hour
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.PopularFraction == 0 {
		c.PopularFraction = 0.186
	}
	if c.PopularRatePerMin == 0 {
		c.PopularRatePerMin = 2.0
	}
	if c.RareMeanInterval == 0 {
		c.RareMeanInterval = 25 * time.Minute
	}
}

// Class labels a function's popularity class.
type Class string

// Popularity classes.
const (
	ClassPopular Class = "popular"
	ClassRare    Class = "rare"
)

// FunctionSpec describes one synthetic function in the trace.
type FunctionSpec struct {
	Name  string
	Class Class
	// MeanInterval is the mean inter-arrival time of its invocations.
	MeanInterval time.Duration
}

// Event is one invocation in the trace timeline.
type Event struct {
	At       time.Duration
	Function string
}

// Trace is a generated workload.
type Trace struct {
	Config    Config
	Functions []FunctionSpec
	Events    []Event
}

// Generate builds a deterministic trace from cfg.
func Generate(cfg Config) *Trace {
	cfg.applyDefaults()
	rng := vclock.NewRand(cfg.Seed)
	nPopular := int(math.Round(float64(cfg.Functions) * cfg.PopularFraction))
	if nPopular < 1 {
		nPopular = 1
	}
	if nPopular > cfg.Functions {
		nPopular = cfg.Functions
	}

	tr := &Trace{Config: cfg}
	popularInterval := time.Duration(float64(time.Minute) / cfg.PopularRatePerMin)
	for i := 0; i < cfg.Functions; i++ {
		spec := FunctionSpec{Name: fmt.Sprintf("fn-%03d", i)}
		if i < nPopular {
			spec.Class = ClassPopular
			spec.MeanInterval = popularInterval
		} else {
			spec.Class = ClassRare
			spec.MeanInterval = cfg.RareMeanInterval
		}
		tr.Functions = append(tr.Functions, spec)

		// Poisson arrivals: exponential inter-arrival times with the
		// class's mean. The first arrival is offset by one draw so
		// functions do not all fire at t=0.
		at := expDraw(rng, spec.MeanInterval)
		for at < cfg.Duration {
			tr.Events = append(tr.Events, Event{At: at, Function: spec.Name})
			at += expDraw(rng, spec.MeanInterval)
		}
	}
	sort.SliceStable(tr.Events, func(i, j int) bool { return tr.Events[i].At < tr.Events[j].At })
	return tr
}

// expDraw samples an exponential inter-arrival with the given mean.
func expDraw(rng *vclock.Rand, mean time.Duration) time.Duration {
	u := rng.Float64()
	// Guard the log: Float64 returns [0,1), so 1-u is in (0,1].
	return time.Duration(-math.Log(1-u) * float64(mean))
}

// CountByFunction returns invocation counts per function.
func (t *Trace) CountByFunction() map[string]int {
	out := make(map[string]int, len(t.Functions))
	for _, e := range t.Events {
		out[e.Function]++
	}
	return out
}

// ClassOf returns the class of a function in this trace.
func (t *Trace) ClassOf(name string) Class {
	for _, f := range t.Functions {
		if f.Name == name {
			return f.Class
		}
	}
	return ""
}

// Stats summarizes a trace.
type Stats struct {
	Functions    int
	PopularFuncs int
	RareFuncs    int
	Events       int
	// CalledMoreThanOncePerMin is the fraction of functions whose
	// realized rate exceeds 1/min — the paper's 18.6% statistic.
	CalledMoreThanOncePerMin float64
}

// Summarize computes trace statistics.
func (t *Trace) Summarize() Stats {
	counts := t.CountByFunction()
	s := Stats{Functions: len(t.Functions), Events: len(t.Events)}
	minutes := t.Config.Duration.Minutes()
	frequent := 0
	for _, f := range t.Functions {
		switch f.Class {
		case ClassPopular:
			s.PopularFuncs++
		case ClassRare:
			s.RareFuncs++
		}
		if float64(counts[f.Name])/minutes > 1 {
			frequent++
		}
	}
	if s.Functions > 0 {
		s.CalledMoreThanOncePerMin = float64(frequent) / float64(s.Functions)
	}
	return s
}
