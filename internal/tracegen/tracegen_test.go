package tracegen

import (
	"math"
	"testing"
	"time"
)

func TestDeterminism(t *testing.T) {
	a := Generate(Config{Seed: 7})
	b := Generate(Config{Seed: 7})
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
	c := Generate(Config{Seed: 8})
	if len(c.Events) == len(a.Events) {
		same := true
		for i := range c.Events {
			if c.Events[i] != a.Events[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestEventsSortedAndBounded(t *testing.T) {
	tr := Generate(Config{Functions: 50, Duration: 30 * time.Minute, Seed: 3})
	var prev time.Duration
	for _, e := range tr.Events {
		if e.At < prev {
			t.Fatal("events not sorted")
		}
		if e.At >= tr.Config.Duration {
			t.Fatalf("event at %v beyond duration %v", e.At, tr.Config.Duration)
		}
		prev = e.At
	}
}

func TestPopularitySplit(t *testing.T) {
	tr := Generate(Config{Functions: 1000, Duration: time.Hour, Seed: 5})
	s := tr.Summarize()
	if s.PopularFuncs != 186 {
		t.Fatalf("popular funcs = %d, want 186 (18.6%% of 1000)", s.PopularFuncs)
	}
	if s.RareFuncs != 814 {
		t.Fatalf("rare funcs = %d", s.RareFuncs)
	}
	// The realized >1/min fraction should land near the configured
	// popular fraction (popular rate 2/min is safely above; rare rate
	// far below).
	if math.Abs(s.CalledMoreThanOncePerMin-0.186) > 0.05 {
		t.Fatalf("frequent fraction = %.3f, want ~0.186", s.CalledMoreThanOncePerMin)
	}
}

func TestRatesApproximatelyCorrect(t *testing.T) {
	tr := Generate(Config{Functions: 200, Duration: 4 * time.Hour, Seed: 11})
	counts := tr.CountByFunction()
	var popTotal, rareTotal, popN, rareN float64
	for _, f := range tr.Functions {
		if f.Class == ClassPopular {
			popTotal += float64(counts[f.Name])
			popN++
		} else {
			rareTotal += float64(counts[f.Name])
			rareN++
		}
	}
	popMean := popTotal / popN    // expect ~2/min * 240min = 480
	rareMean := rareTotal / rareN // expect 240/25 = 9.6
	if popMean < 400 || popMean > 560 {
		t.Fatalf("popular mean invocations = %.1f, want ~480", popMean)
	}
	if rareMean < 6 || rareMean > 14 {
		t.Fatalf("rare mean invocations = %.1f, want ~9.6", rareMean)
	}
}

func TestClassOf(t *testing.T) {
	tr := Generate(Config{Functions: 10, Duration: 10 * time.Minute, Seed: 2})
	if tr.ClassOf("fn-000") != ClassPopular {
		t.Fatal("fn-000 should be popular")
	}
	if tr.ClassOf("fn-009") != ClassRare {
		t.Fatal("fn-009 should be rare")
	}
	if tr.ClassOf("ghost") != "" {
		t.Fatal("unknown function classed")
	}
}

func TestDefaults(t *testing.T) {
	tr := Generate(Config{})
	if tr.Config.Functions != 100 || tr.Config.Duration != time.Hour {
		t.Fatalf("defaults not applied: %+v", tr.Config)
	}
	if len(tr.Events) == 0 {
		t.Fatal("empty trace")
	}
}
