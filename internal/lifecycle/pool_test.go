package lifecycle

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
)

type fakeGuest struct {
	id int
	// inUse flags the guest as held by an acquirer; the concurrency
	// test uses it to prove no guest is ever handed out twice.
	inUse   atomic.Bool
	evicted atomic.Bool
}

func TestPoolAcquireReleaseLIFO(t *testing.T) {
	p := NewPool(PoolConfig[*fakeGuest]{})
	if _, ok := p.Acquire("fn", 0); ok {
		t.Fatal("empty pool produced a guest")
	}
	a, b := &fakeGuest{id: 1}, &fakeGuest{id: 2}
	p.Release("fn", a, 0)
	p.Release("fn", b, 0)
	if got := p.Count("fn"); got != 2 {
		t.Fatalf("Count = %d, want 2", got)
	}
	g, ok := p.Acquire("fn", 0)
	if !ok || g.id != 2 {
		t.Fatalf("Acquire = %v, %v; want guest 2 (most recently released)", g, ok)
	}
	g, ok = p.Acquire("fn", 0)
	if !ok || g.id != 1 {
		t.Fatalf("Acquire = %v, %v; want guest 1", g, ok)
	}
	if _, ok := p.Acquire("fn", 0); ok {
		t.Fatal("drained pool produced a guest")
	}
}

func TestPoolKeysAreIndependent(t *testing.T) {
	p := NewPool(PoolConfig[*fakeGuest]{})
	p.Release("a", &fakeGuest{id: 1}, 0)
	if _, ok := p.Acquire("b", 0); ok {
		t.Fatal("guest leaked across keys")
	}
	if _, ok := p.Acquire("a", 0); !ok {
		t.Fatal("guest lost from its own key")
	}
}

func TestPoolTTLExpiryOnAcquire(t *testing.T) {
	p := NewPool(PoolConfig[*fakeGuest]{
		TTL:     time.Minute,
		OnEvict: func(g *fakeGuest) { g.evicted.Store(true) },
	})
	stale := &fakeGuest{id: 1}
	fresh := &fakeGuest{id: 2}
	p.Release("fn", stale, 0)
	p.Release("fn", fresh, 90*time.Second)

	// At t=100s the guest released at t=0 lapsed (TTL 60s) but the one
	// released at t=90s is still live.
	g, ok := p.Acquire("fn", 100*time.Second)
	if !ok || g.id != 2 {
		t.Fatalf("Acquire = %v, %v; want the fresh guest", g, ok)
	}
	if _, ok := p.Acquire("fn", 100*time.Second); ok {
		t.Fatal("stale guest was reused")
	}
	if !stale.evicted.Load() {
		t.Fatal("stale guest never evicted")
	}
	if fresh.evicted.Load() {
		t.Fatal("fresh guest wrongly evicted")
	}
}

func TestPoolExpireIdleReapsInBackground(t *testing.T) {
	p := NewPool(PoolConfig[*fakeGuest]{
		TTL:     time.Minute,
		OnEvict: func(g *fakeGuest) { g.evicted.Store(true) },
	})
	guests := []*fakeGuest{{id: 1}, {id: 2}, {id: 3}}
	p.Release("a", guests[0], 0)
	p.Release("a", guests[1], 30*time.Second)
	p.Release("b", guests[2], 0)

	if n := p.ExpireIdle(45 * time.Second); n != 0 {
		t.Fatalf("ExpireIdle(45s) = %d, want 0", n)
	}
	if n := p.ExpireIdle(70 * time.Second); n != 2 {
		t.Fatalf("ExpireIdle(70s) = %d, want 2 (both released at t=0)", n)
	}
	if !guests[0].evicted.Load() || !guests[2].evicted.Load() {
		t.Fatal("expired guests not evicted")
	}
	if p.Count("a") != 1 || p.Count("b") != 0 {
		t.Fatalf("Count(a)=%d Count(b)=%d after reap", p.Count("a"), p.Count("b"))
	}
}

func TestPoolZeroTTLNeverExpires(t *testing.T) {
	p := NewPool(PoolConfig[*fakeGuest]{})
	p.Release("fn", &fakeGuest{id: 1}, 0)
	if n := p.ExpireIdle(time.Hour); n != 0 {
		t.Fatalf("ExpireIdle = %d with TTL 0", n)
	}
	if _, ok := p.Acquire("fn", time.Hour); !ok {
		t.Fatal("guest expired despite TTL 0")
	}
}

func TestPoolCapacityRejectsAtomically(t *testing.T) {
	var rejected atomic.Int64
	p := NewPool(PoolConfig[*fakeGuest]{
		Capacity: 2,
		OnEvict:  func(g *fakeGuest) { rejected.Add(1); g.evicted.Store(true) },
	})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p.Release("fn", &fakeGuest{id: i}, 0)
		}(i)
	}
	wg.Wait()
	if got := p.Count("fn"); got != 2 {
		t.Fatalf("Count = %d, want exactly the capacity 2", got)
	}
	if got := rejected.Load(); got != 14 {
		t.Fatalf("rejected = %d, want 14", got)
	}
}

func TestPoolConcurrentAcquireNeverDoubleIssues(t *testing.T) {
	p := NewPool(PoolConfig[*fakeGuest]{})
	const guests, workers, rounds = 4, 16, 200
	for i := 0; i < guests; i++ {
		p.Release("fn", &fakeGuest{id: i}, 0)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				g, ok := p.Acquire("fn", 0)
				if !ok {
					continue
				}
				if g.inUse.Swap(true) {
					t.Error("guest handed to two holders at once")
					return
				}
				g.inUse.Store(false)
				p.Release("fn", g, 0)
			}
		}()
	}
	wg.Wait()
	if got := p.Count("fn"); got != guests {
		t.Fatalf("Count = %d, want %d after all holders released", got, guests)
	}
}

func TestPoolDrainKeySkipsOnEvict(t *testing.T) {
	var evicted atomic.Int64
	p := NewPool(PoolConfig[*fakeGuest]{OnEvict: func(g *fakeGuest) { evicted.Add(1) }})
	p.Release("fn", &fakeGuest{id: 1}, 0)
	p.Release("fn", &fakeGuest{id: 2}, 0)
	drained := p.DrainKey("fn")
	if len(drained) != 2 {
		t.Fatalf("DrainKey returned %d guests, want 2", len(drained))
	}
	if evicted.Load() != 0 {
		t.Fatal("DrainKey ran OnEvict; caller owns teardown")
	}
	if p.Count("fn") != 0 {
		t.Fatal("guests survived DrainKey")
	}
}

func TestPoolGuestsReturnsCopy(t *testing.T) {
	p := NewPool(PoolConfig[*fakeGuest]{})
	p.Release("fn", &fakeGuest{id: 1}, 0)
	gs := p.Guests("fn")
	if len(gs) != 1 || gs[0].id != 1 {
		t.Fatalf("Guests = %v", gs)
	}
	if p.Count("fn") != 1 {
		t.Fatal("Guests consumed the pool")
	}
}

func TestPoolInstrumentCountsHitsMissesExpiriesRejections(t *testing.T) {
	reg := metrics.NewRegistry()
	p := NewPool(PoolConfig[*fakeGuest]{TTL: time.Minute, Capacity: 1})
	p.Instrument(reg, "testplat")

	p.Acquire("fn", 0)                    // miss
	p.Release("fn", &fakeGuest{id: 1}, 0) // size 1
	p.Release("fn", &fakeGuest{id: 2}, 0) // rejected (capacity 1)
	p.Acquire("fn", 0)                    // hit, size 0
	p.Release("fn", &fakeGuest{id: 3}, 0) // size 1
	p.ExpireIdle(2 * time.Minute)         // expired, size 0
	p.Release("fn", &fakeGuest{id: 4}, 3*time.Minute)

	get := func(name string) int64 {
		return reg.Counter(metrics.Name(name, "platform", "testplat")).Value()
	}
	if got := get("lifecycle_pool_hits_total"); got != 1 {
		t.Errorf("hits = %d, want 1", got)
	}
	if got := get("lifecycle_pool_misses_total"); got != 1 {
		t.Errorf("misses = %d, want 1", got)
	}
	if got := get("lifecycle_pool_expired_total"); got != 1 {
		t.Errorf("expired = %d, want 1", got)
	}
	if got := get("lifecycle_pool_rejected_total"); got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}
	size := reg.Gauge(metrics.Name("lifecycle_pool_size", "platform", "testplat"))
	if got := size.Value(); got != 1 {
		t.Errorf("size gauge = %d, want 1", got)
	}
}
