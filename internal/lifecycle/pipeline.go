package lifecycle

// Cleanup is a LIFO stack of teardown functions accumulated while an
// invocation makes progress: each pipeline stage registers the undo for
// the resources it just claimed (delete the topic, stop the VM, unpin
// the snapshot), and a failure anywhere unwinds the whole stack exactly
// once, in reverse order. A successful run disarms the stack instead,
// leaving the resources to the invocation's release stage.
//
// Cleanup is not safe for concurrent use; each pipeline run owns its
// own.
type Cleanup struct {
	fns     []func()
	settled bool
}

// Defer pushes a teardown function onto the stack.
func (c *Cleanup) Defer(fn func()) { c.fns = append(c.fns, fn) }

// Unwind runs every deferred teardown in LIFO order. It runs at most
// once: later calls (and calls after Disarm) are no-ops, so a teardown
// can never fire twice.
func (c *Cleanup) Unwind() {
	if c.settled {
		return
	}
	c.settled = true
	for i := len(c.fns) - 1; i >= 0; i-- {
		c.fns[i]()
	}
	c.fns = nil
}

// Disarm drops the stack without running it — the success path, where
// the claimed resources outlive the pipeline.
func (c *Cleanup) Disarm() {
	c.settled = true
	c.fns = nil
}

// Pipeline runs named stages in order, sharing one Cleanup stack. The
// first stage error stops the run, unwinds the stack, and is returned
// verbatim — the runner never wraps stage errors, so error text the
// callers (and their tests) match on survives the refactor.
//
// A Pipeline is built and run once per invocation; it is not safe for
// concurrent use.
type Pipeline struct {
	stages []pipelineStage
	failed string
}

type pipelineStage struct {
	name string
	run  func(cl *Cleanup) error
}

// NewPipeline returns an empty pipeline.
func NewPipeline() *Pipeline { return &Pipeline{} }

// Stage appends a named stage and returns the pipeline for chaining.
func (p *Pipeline) Stage(name string, run func(cl *Cleanup) error) *Pipeline {
	p.stages = append(p.stages, pipelineStage{name: name, run: run})
	return p
}

// Run executes the stages in order. On the first error the cleanup
// stack unwinds and the error is returned unchanged; on success the
// stack is disarmed.
func (p *Pipeline) Run() error {
	cl := &Cleanup{}
	for _, s := range p.stages {
		if err := s.run(cl); err != nil {
			p.failed = s.name
			cl.Unwind()
			return err
		}
	}
	cl.Disarm()
	return nil
}

// Failed names the stage whose error stopped the last Run, or "" when
// every stage succeeded — for labeled failure metrics.
func (p *Pipeline) Failed() string { return p.failed }
