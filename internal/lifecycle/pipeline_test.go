package lifecycle

import (
	"errors"
	"testing"
)

func TestPipelineRunsStagesInOrder(t *testing.T) {
	var order []string
	err := NewPipeline().
		Stage("one", func(cl *Cleanup) error { order = append(order, "one"); return nil }).
		Stage("two", func(cl *Cleanup) error { order = append(order, "two"); return nil }).
		Stage("three", func(cl *Cleanup) error { order = append(order, "three"); return nil }).
		Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != "one" || order[1] != "two" || order[2] != "three" {
		t.Fatalf("stage order = %v", order)
	}
}

func TestPipelineFailureUnwindsLIFOAndSkipsLaterStages(t *testing.T) {
	boom := errors.New("boom")
	var events []string
	p := NewPipeline().
		Stage("claim-a", func(cl *Cleanup) error {
			cl.Defer(func() { events = append(events, "undo-a") })
			return nil
		}).
		Stage("claim-b", func(cl *Cleanup) error {
			cl.Defer(func() { events = append(events, "undo-b") })
			return nil
		}).
		Stage("fail", func(cl *Cleanup) error { return boom }).
		Stage("never", func(cl *Cleanup) error {
			events = append(events, "never")
			return nil
		})
	err := p.Run()
	if !errors.Is(err, boom) {
		t.Fatalf("Run = %v, want the stage error unchanged", err)
	}
	if err.Error() != "boom" {
		t.Fatalf("error text %q was wrapped", err.Error())
	}
	if p.Failed() != "fail" {
		t.Fatalf("Failed = %q, want %q", p.Failed(), "fail")
	}
	want := []string{"undo-b", "undo-a"}
	if len(events) != 2 || events[0] != want[0] || events[1] != want[1] {
		t.Fatalf("events = %v, want %v (LIFO, later stages skipped)", events, want)
	}
}

func TestPipelineSuccessDisarmsCleanup(t *testing.T) {
	ran := false
	err := NewPipeline().
		Stage("claim", func(cl *Cleanup) error {
			cl.Defer(func() { ran = true })
			return nil
		}).
		Run()
	if err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("cleanup ran on the success path")
	}
}

func TestCleanupUnwindRunsExactlyOnce(t *testing.T) {
	count := 0
	cl := &Cleanup{}
	cl.Defer(func() { count++ })
	cl.Unwind()
	cl.Unwind()
	if count != 1 {
		t.Fatalf("teardown ran %d times, want 1", count)
	}
}

func TestCleanupDisarmBlocksUnwind(t *testing.T) {
	count := 0
	cl := &Cleanup{}
	cl.Defer(func() { count++ })
	cl.Disarm()
	cl.Unwind()
	if count != 0 {
		t.Fatalf("teardown ran %d times after Disarm", count)
	}
}

func TestPipelineStageErrorMidStackUnwindsOwnDefers(t *testing.T) {
	// A stage that registers its own undo and then fails: the undo it
	// just registered must also run.
	boom := errors.New("mid-stage failure")
	var events []string
	err := NewPipeline().
		Stage("partial", func(cl *Cleanup) error {
			cl.Defer(func() { events = append(events, "undo-partial") })
			return boom
		}).
		Run()
	if !errors.Is(err, boom) {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0] != "undo-partial" {
		t.Fatalf("events = %v", events)
	}
}
