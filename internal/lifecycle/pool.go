// Package lifecycle is the shared guest-lifecycle layer behind every
// platform in the evaluation: one generic warm pool (keep-alive TTL on
// the virtual workload timeline, per-function capacity, atomic
// acquire/release) and one staged invocation pipeline with a cleanup
// stack that unwinds partial work exactly once on failure.
//
// Before this package, containers, firecracker, and isolate each kept a
// private `warm map[string][]*guest` with hand-rolled acquire/release
// and expiry, and the Fireworks Invoke carried five copies of its
// error-teardown sequence. Ustiugov et al. (ASPLOS'21) show restore
// cost is dominated by working-set re-faulting that reuse avoids, and
// Tan et al. (EuroSys'21) show keep-alive policy dominates effective
// cold-start rates — both argue for a first-class lifecycle layer
// rather than four divergent copies.
package lifecycle

import (
	"sync"
	"time"

	"repro/internal/metrics"
)

// PoolConfig sizes a Pool.
type PoolConfig[G any] struct {
	// TTL bounds how long an idle guest stays pooled on the workload
	// timeline (the `now`/`at` arguments of Acquire, Release, and
	// ExpireIdle). Zero keeps guests forever — the right model for
	// untimed measurements.
	TTL time.Duration
	// Capacity bounds the number of idle guests pooled per key; a
	// Release beyond it evicts the guest instead. Zero is unbounded.
	Capacity int
	// OnEvict tears down a guest the pool decided to drop (expired,
	// over capacity). It is called without the pool lock held and must
	// not be nil if guests own external resources.
	OnEvict func(g G)
}

// Pool is a concurrency-safe warm pool of idle guests keyed by function
// name. Selection and removal happen atomically under one lock —
// mirroring the cluster placer's reserve-under-lock pattern — so two
// concurrent Acquires can never hand out the same guest, and a
// concurrent Release is never lost.
type Pool[G any] struct {
	cfg PoolConfig[G]

	mu   sync.Mutex
	idle map[string][]poolEntry[G]

	// Observability (nil-safe; see Instrument).
	size     *metrics.Gauge
	hits     *metrics.Counter
	misses   *metrics.Counter
	expired  *metrics.Counter
	rejected *metrics.Counter
}

type poolEntry[G any] struct {
	guest G
	// releasedAt is the workload-timeline position when the guest went
	// idle (keep-alive bookkeeping).
	releasedAt time.Duration
}

// NewPool returns an empty pool.
func NewPool[G any](cfg PoolConfig[G]) *Pool[G] {
	return &Pool[G]{cfg: cfg, idle: make(map[string][]poolEntry[G])}
}

// Instrument attaches the pool to a metrics registry, labeling every
// instrument with the owning platform: pool occupancy, acquire
// hits/misses (hit rate = hits / (hits+misses)), keep-alive expiries,
// and capacity rejections.
func (p *Pool[G]) Instrument(reg *metrics.Registry, platformName string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.size = reg.Gauge(metrics.Name("lifecycle_pool_size", "platform", platformName))
	p.hits = reg.Counter(metrics.Name("lifecycle_pool_hits_total", "platform", platformName))
	p.misses = reg.Counter(metrics.Name("lifecycle_pool_misses_total", "platform", platformName))
	p.expired = reg.Counter(metrics.Name("lifecycle_pool_expired_total", "platform", platformName))
	p.rejected = reg.Counter(metrics.Name("lifecycle_pool_rejected_total", "platform", platformName))
}

// expiredLocked reports whether an entry's keep-alive lapsed before
// timeline position now; caller holds the lock.
func (p *Pool[G]) expiredLocked(e poolEntry[G], now time.Duration) bool {
	return p.cfg.TTL > 0 && now > e.releasedAt+p.cfg.TTL
}

// Acquire pops the most recently released guest for key that is still
// inside its keep-alive at timeline position now. Guests whose TTL
// lapsed while pooled are evicted instead of reused (their OnEvict runs
// outside the lock). The second result reports whether a guest was
// found.
func (p *Pool[G]) Acquire(key string, now time.Duration) (G, bool) {
	var victims []G
	var guest G
	found := false

	p.mu.Lock()
	pool := p.idle[key]
	for len(pool) > 0 {
		candidate := pool[len(pool)-1]
		pool = pool[:len(pool)-1]
		if p.expiredLocked(candidate, now) {
			victims = append(victims, candidate.guest)
			p.expired.Inc()
			p.size.Add(-1)
			continue
		}
		guest = candidate.guest
		found = true
		p.size.Add(-1)
		break
	}
	p.idle[key] = pool
	if found {
		p.hits.Inc()
	} else {
		p.misses.Inc()
	}
	p.mu.Unlock()

	p.evict(victims)
	return guest, found
}

// Release returns an idle guest to the pool at timeline position now.
// When the per-key capacity is already full the guest is evicted
// instead and Release reports false. The capacity check and the append
// are one atomic step, so concurrent releases can never overshoot the
// bound.
func (p *Pool[G]) Release(key string, g G, now time.Duration) bool {
	p.mu.Lock()
	if p.cfg.Capacity > 0 && len(p.idle[key]) >= p.cfg.Capacity {
		p.rejected.Inc()
		p.mu.Unlock()
		p.evict([]G{g})
		return false
	}
	p.idle[key] = append(p.idle[key], poolEntry[G]{guest: g, releasedAt: now})
	p.size.Add(1)
	p.mu.Unlock()
	return true
}

// ExpireIdle evicts every pooled guest idle past the keep-alive at
// timeline position now and returns how many were reaped. (Acquire
// also expires lazily; this is the background reaper that reclaims
// resources for functions that are never called again.)
func (p *Pool[G]) ExpireIdle(now time.Duration) int {
	var victims []G
	p.mu.Lock()
	if p.cfg.TTL > 0 {
		for key, pool := range p.idle {
			kept := pool[:0]
			for _, e := range pool {
				if p.expiredLocked(e, now) {
					victims = append(victims, e.guest)
					p.expired.Inc()
					p.size.Add(-1)
				} else {
					kept = append(kept, e)
				}
			}
			p.idle[key] = kept
		}
	}
	p.mu.Unlock()

	p.evict(victims)
	return len(victims)
}

// Count returns the number of idle guests pooled for key.
func (p *Pool[G]) Count(key string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.idle[key])
}

// Guests returns a copy of the idle guests pooled for key, oldest
// first — for memory reporting, not for taking ownership.
func (p *Pool[G]) Guests(key string) []G {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]G, 0, len(p.idle[key]))
	for _, e := range p.idle[key] {
		out = append(out, e.guest)
	}
	return out
}

// DrainKey removes and returns every idle guest pooled for key without
// running OnEvict: the caller takes ownership of teardown (Remove paths
// need error-returning shutdown the OnEvict signature cannot express).
func (p *Pool[G]) DrainKey(key string) []G {
	p.mu.Lock()
	pool := p.idle[key]
	delete(p.idle, key)
	out := make([]G, 0, len(pool))
	for _, e := range pool {
		out = append(out, e.guest)
		p.size.Add(-1)
	}
	p.mu.Unlock()
	return out
}

// evict runs OnEvict for each victim outside the pool lock (teardown
// may be slow or re-enter the pool's owner).
func (p *Pool[G]) evict(victims []G) {
	if p.cfg.OnEvict == nil {
		return
	}
	for _, g := range victims {
		p.cfg.OnEvict(g)
	}
}
