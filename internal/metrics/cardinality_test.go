package metrics

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func TestCardinalityBudgetRedirectsToOverflow(t *testing.T) {
	r := NewRegistry()
	r.SetCardinalityLimit(3)
	for i := 0; i < 10; i++ {
		r.Counter(Name("invokes_total", "fn", fmt.Sprintf("fn-%02d", i))).Inc()
	}
	// The first 3 label values got their own series; the other 7 share
	// the overflow series.
	of := r.Counter(OverflowName("invokes_total"))
	if of.Value() != 7 {
		t.Fatalf("overflow series = %d, want 7", of.Value())
	}
	for i := 0; i < 3; i++ {
		c := r.Counter(Name("invokes_total", "fn", fmt.Sprintf("fn-%02d", i)))
		if c.Value() != 1 {
			t.Fatalf("admitted series fn-%02d = %d, want 1", i, c.Value())
		}
	}
	// A redirected name resolves to the shared instrument, including
	// via the read index on repeat lookup.
	if r.Counter(Name("invokes_total", "fn", "fn-09")) != of {
		t.Fatal("redirected name does not alias the overflow series")
	}
	got := r.Counter(Name("telemetry_cardinality_overflow_total", "family", "invokes_total")).Value()
	if got != 7 {
		t.Fatalf("telemetry_cardinality_overflow_total{family} = %d, want 7", got)
	}
}

func TestCardinalityUnlabeledAndOverflowExempt(t *testing.T) {
	r := NewRegistry()
	r.SetCardinalityLimit(1)
	// Unlabeled names are never governed.
	for _, name := range []string{"a_total", "b_total", "c_total"} {
		r.Counter(name).Inc()
	}
	for _, name := range []string{"a_total", "b_total", "c_total"} {
		if r.Counter(name).Value() != 1 {
			t.Fatalf("unlabeled %s was governed", name)
		}
	}
	// The governor's own accounting family never redirects itself even
	// at limit 1.
	r.Counter(Name("x_total", "k", "1"))
	r.Counter(Name("x_total", "k", "2"))
	r.Counter(Name("x_total", "k", "3"))
	snap := r.Snapshot()
	overflowRows := 0
	for _, c := range snap.Counters {
		if strings.HasPrefix(c.Name, "telemetry_cardinality_overflow_total{") {
			overflowRows++
		}
	}
	if overflowRows != 1 {
		t.Fatalf("overflow accounting rows = %d, want 1", overflowRows)
	}
}

func TestFamilyLimitOverridesDefault(t *testing.T) {
	r := NewRegistry()
	r.SetCardinalityLimit(1)
	r.SetFamilyLimit("wide_total", 0) // lifted: unbounded
	r.SetFamilyLimit("narrow_total", 2)
	for i := 0; i < 5; i++ {
		r.Counter(Name("wide_total", "i", fmt.Sprintf("%d", i))).Inc()
		r.Counter(Name("narrow_total", "i", fmt.Sprintf("%d", i))).Inc()
	}
	if v := r.Counter(OverflowName("wide_total")).Value(); v != 0 {
		t.Fatalf("lifted family overflowed: %d", v)
	}
	if v := r.Counter(OverflowName("narrow_total")).Value(); v != 3 {
		t.Fatalf("narrow family overflow = %d, want 3", v)
	}
}

func TestCardinalityGaugesAndHistograms(t *testing.T) {
	r := NewRegistry()
	r.SetCardinalityLimit(2)
	for i := 0; i < 5; i++ {
		r.Gauge(Name("depth", "q", fmt.Sprintf("%d", i))).Set(int64(i))
		r.Histogram(Name("lat", "q", fmt.Sprintf("%d", i))).Observe(1)
	}
	og := r.Gauge(OverflowName("depth"))
	if r.Gauge(Name("depth", "q", "4")) != og {
		t.Fatal("gauge not redirected")
	}
	oh := r.Histogram(OverflowName("lat"))
	if oh.Count() != 3 {
		t.Fatalf("overflow histogram count = %d, want 3", oh.Count())
	}
	if r.Histogram(Name("lat", "q", "3")) != oh {
		t.Fatal("histogram not redirected")
	}
}

// Aliased names must not duplicate rows in exports: the dump stays
// sorted and each live series appears once.
func TestSnapshotDeduplicatesAliases(t *testing.T) {
	r := NewRegistry()
	r.SetCardinalityLimit(1)
	for i := 0; i < 4; i++ {
		r.Counter(Name("dup_total", "i", fmt.Sprintf("%d", i))).Inc()
	}
	snap := r.Snapshot()
	seen := map[string]int{}
	for _, c := range snap.Counters {
		seen[c.Name]++
		if seen[c.Name] > 1 {
			t.Fatalf("duplicate export row %s", c.Name)
		}
	}
	if seen[OverflowName("dup_total")] != 1 {
		t.Fatal("overflow series missing from export")
	}
	var buf bytes.Buffer
	if err := snap.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), OverflowName("dup_total")); got != 1 {
		t.Fatalf("overflow series rendered %d times", got)
	}
}

func TestCardinalityAuditTopK(t *testing.T) {
	r := NewRegistry()
	r.SetCardinalityLimit(4)
	for i := 0; i < 6; i++ {
		r.Counter(Name("big_total", "i", fmt.Sprintf("%d", i))).Inc()
	}
	r.Counter(Name("small_total", "i", "0")).Inc()
	r.Counter("plain_total").Inc()

	rep := r.CardinalityAudit(1)
	if len(rep.Families) != 1 {
		t.Fatalf("TopK(1) returned %d families", len(rep.Families))
	}
	top := rep.Families[0]
	// big_total: 4 admitted + 1 overflow = 5 live series.
	if top.Family != "big_total" || top.Series != 5 || top.OverflowedNames != 2 || top.Limit != 4 {
		t.Fatalf("top family = %+v", top)
	}
	if rep.TotalSeries == 0 {
		t.Fatal("total series not counted")
	}
	full := r.CardinalityAudit(0)
	if len(full.Families) < 4 {
		t.Fatalf("full audit has %d families", len(full.Families))
	}
	for i := 1; i < len(full.Families); i++ {
		a, b := full.Families[i-1], full.Families[i]
		if a.Series < b.Series || (a.Series == b.Series && a.Family > b.Family) {
			t.Fatalf("audit not ordered: %+v before %+v", a, b)
		}
	}
	var buf bytes.Buffer
	if err := r.WriteCardinalityJSON(&buf, 3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"family": "big_total"`) {
		t.Fatalf("audit JSON missing top family:\n%s", buf.String())
	}
}

func TestCardinalityDisabledByDefault(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 100; i++ {
		r.Counter(Name("free_total", "i", fmt.Sprintf("%d", i))).Inc()
	}
	if v := r.Counter(OverflowName("free_total")).Value(); v != 0 {
		t.Fatalf("ungoverned registry overflowed: %d", v)
	}
}
