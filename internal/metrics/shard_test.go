package metrics

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/vclock"
)

// TestShardedNoLostUpdates hammers counters, gauges, and histograms
// from many goroutines — through the name-resolution path, so shard
// routing and the copy-on-write read index are both exercised — while
// another goroutine keeps exporting snapshots. Every update must land.
// Run under -race this also proves the lookup fast path is clean.
func TestShardedNoLostUpdates(t *testing.T) {
	reg := NewRegistry()
	const (
		goroutines = 8
		names      = 16
		perG       = 2000
	)
	counterNames := make([]string, names)
	for i := range counterNames {
		counterNames[i] = Name("test_ops_total", "node", fmt.Sprintf("n%02d", i))
	}

	stop := make(chan struct{})
	var exporterDone sync.WaitGroup
	exporterDone.Add(1)
	go func() {
		defer exporterDone.Done()
		for {
			select {
			case <-stop:
				return
			default:
				snap := reg.Snapshot()
				var buf bytes.Buffer
				if err := snap.WriteText(&buf); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				name := counterNames[(g+i)%names]
				reg.Counter(name).Inc()
				reg.Gauge(name).Add(1)
				reg.Histogram(name).ObserveDuration(time.Duration(i))
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	exporterDone.Wait()

	var totalC, totalG int64
	var totalH uint64
	for _, name := range counterNames {
		totalC += reg.Counter(name).Value()
		totalG += reg.Gauge(name).Value()
		totalH += reg.Histogram(name).Count()
	}
	want := int64(goroutines * perG)
	if totalC != want {
		t.Errorf("counter updates lost: %d, want %d", totalC, want)
	}
	if totalG != want {
		t.Errorf("gauge updates lost: %d, want %d", totalG, want)
	}
	if totalH != uint64(want) {
		t.Errorf("histogram observations lost: %d, want %d", totalH, want)
	}
}

// TestShardedConcurrentCreates races many goroutines creating the SAME
// instruments; every goroutine must get the same pointer back and the
// export must list each name exactly once.
func TestShardedConcurrentCreates(t *testing.T) {
	reg := NewRegistry()
	const goroutines = 8
	ptrs := make([]*Counter, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c := reg.Counter(fmt.Sprintf("race_counter_%02d", i))
				if i == 0 {
					ptrs[g] = c
				}
				c.Inc()
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if ptrs[g] != ptrs[0] {
			t.Fatalf("goroutine %d got a different *Counter for the same name", g)
		}
	}
	snap := reg.Snapshot()
	seen := map[string]int{}
	for _, c := range snap.Counters {
		seen[c.Name]++
	}
	for name, n := range seen {
		if n != 1 {
			t.Errorf("counter %s exported %d times", name, n)
		}
	}
	if got := reg.Counter("race_counter_00").Value(); got != goroutines {
		t.Errorf("race_counter_00 = %d, want %d", got, goroutines)
	}
}

// seedWorkload drives a fixed, deterministic workload into a registry.
func seedWorkload(reg *Registry) {
	clk := vclock.New()
	reg.SetClock(clk)
	for i := 0; i < 500; i++ {
		node := fmt.Sprintf("node-%02d", i%7)
		reg.Counter(Name("invocations_total", "node", node)).Inc()
		reg.Gauge(Name("queue_depth", "node", node)).Set(int64(i % 13))
		reg.Histogram(Name("invoke_latency", "node", node)).
			ObserveDuration(time.Duration(i*i) * time.Microsecond)
		clk.Advance(time.Millisecond)
	}
	reg.Counter("plain_counter").Add(42)
	reg.HistogramWith("bytes_hist", "bytes", []float64{10, 100, 1000}).Observe(55)
}

// TestGoldenExportShardInvariance is the golden determinism test: the
// same seeded workload exported from a single-stripe registry and from
// the default sharded registry must produce byte-identical text and
// JSON dumps. Shard count must never leak into an artifact.
func TestGoldenExportShardInvariance(t *testing.T) {
	flat := NewRegistryShards(1)
	sharded := NewRegistry()
	if flat.Shards() != 1 || sharded.Shards() != DefaultShards {
		t.Fatalf("shard counts: flat %d, sharded %d", flat.Shards(), sharded.Shards())
	}
	seedWorkload(flat)
	seedWorkload(sharded)

	for _, format := range []string{"text", "json"} {
		var fb, sb bytes.Buffer
		if err := flat.Snapshot().WriteFormat(&fb, format); err != nil {
			t.Fatal(err)
		}
		if err := sharded.Snapshot().WriteFormat(&sb, format); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(fb.Bytes(), sb.Bytes()) {
			t.Errorf("%s export differs between 1 and %d shards:\n--- flat ---\n%s\n--- sharded ---\n%s",
				format, DefaultShards, fb.String(), sb.String())
		}
	}
}

// TestShardDistribution sanity-checks the FNV routing: per-node
// labeled names must not all land on one stripe.
func TestShardDistribution(t *testing.T) {
	reg := NewRegistry()
	stripes := map[*regShard]int{}
	for i := 0; i < 64; i++ {
		name := Name("invocations_total", "node", fmt.Sprintf("node-%02d", i))
		stripes[reg.shard(name)]++
	}
	if len(stripes) < DefaultShards/4 {
		t.Errorf("64 node-labeled names landed on only %d of %d stripes", len(stripes), DefaultShards)
	}
}
