package metrics

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/vclock"
)

// goldenRegistry builds a deterministic registry exercising all three
// instrument kinds.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.SetClock(vclock.NewAt(1500 * time.Millisecond))
	r.Counter("mem_cow_faults_total").Add(4)
	r.Counter(Name("cluster_node_invocations_total", "node", "node-00")).Add(7)
	r.Gauge("msgbus_queue_depth").Set(2)
	h := r.HistogramWith("snapshot_restore_duration", UnitDuration, []float64{
		float64(10 * time.Millisecond), float64(100 * time.Millisecond),
	})
	h.ObserveDuration(12 * time.Millisecond)
	h.ObserveDuration(14 * time.Millisecond)
	h.ObserveDuration(250 * time.Millisecond)
	b := r.HistogramWith("queue_batch_size", "", []float64{1, 8})
	b.Observe(1)
	b.Observe(5)
	return r
}

// goldenText is the expected stable text rendering; a change here is a
// breaking change to the exporter format and must be called out in
// docs/observability.md.
const goldenText = `# fireworks metrics snapshot (virtual time 1.5s)
counter cluster_node_invocations_total{node="node-00"} 7
counter mem_cow_faults_total 4
gauge msgbus_queue_depth 2
histogram queue_batch_size count=2 sum=6 min=1 p50=3 p90=4.6 p99=4.96 p99.9=4.996 max=5
  bucket le=1 1
  bucket le=8 2
  bucket le=+Inf 2
histogram snapshot_restore_duration count=3 sum=276ms min=12ms p50=14ms p90=202.8ms p99=245.28ms p99.9=249.528ms max=250ms
  bucket le=10ms 0
  bucket le=100ms 2
  bucket le=+Inf 3
`

func TestTextExportGolden(t *testing.T) {
	var sb strings.Builder
	if err := goldenRegistry().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != goldenText {
		t.Fatalf("text export drifted from golden.\n--- got ---\n%s--- want ---\n%s", sb.String(), goldenText)
	}
}

func TestTextExportIsStable(t *testing.T) {
	var a, b strings.Builder
	r := goldenRegistry()
	if err := r.WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("two renderings of the same registry differ")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	snap := goldenRegistry().Snapshot()
	var sb strings.Builder
	if err := snap.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal([]byte(sb.String()), &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(snap, back) {
		t.Fatalf("round trip drifted.\n got: %+v\nwant: %+v", back, snap)
	}
}

func TestJSONContainsLabeledNames(t *testing.T) {
	var sb strings.Builder
	if err := goldenRegistry().WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`"virtual_time_ns": 1500000000`,
		`cluster_node_invocations_total{node=\"node-00\"}`,
		`"unit": "ns"`,
		`"le": null`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON missing %q:\n%s", want, out)
		}
	}
}
