package metrics

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The metric inventory in docs/observability.md is load-bearing: it is
// the contract operators read. These tests extract every metric name
// registered in code and fail when one is missing from the doc table —
// and flag doc rows whose metric no longer exists in code.

// registrationPatterns match instrument registrations:
//
//	reg.Counter("name")                      reg.HistogramWith("name", ...)
//	reg.Counter(metrics.Name("base", ...))   reg.Gauge(Name("base", ...))
var registrationPatterns = []*regexp.Regexp{
	regexp.MustCompile(`(?:Counter|Gauge|Histogram|HistogramWith)\(\s*(?:metrics\.)?Name\(\s*"([a-z0-9_]+)"`),
	regexp.MustCompile(`(?:Counter|Gauge|Histogram|HistogramWith)\(\s*"([a-z0-9_]+)"`),
}

// docNamePattern matches one backticked metric name in an inventory
// row's first cell: a base name with an optional label set.
var docNamePattern = regexp.MustCompile("`([a-z0-9_]+)(?:\\{[a-z0-9_, ]*\\})?`")

// repoRoot walks up from the test's working directory to go.mod.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}

// registeredNames extracts every metric base name registered by
// non-test Go sources under internal/ and cmd/.
func registeredNames(t *testing.T, root string) map[string]bool {
	t.Helper()
	names := map[string]bool{}
	for _, top := range []string{"internal", "cmd"} {
		err := filepath.WalkDir(filepath.Join(root, top), func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			src, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			for _, re := range registrationPatterns {
				for _, m := range re.FindAllSubmatch(src, -1) {
					names[string(m[1])] = true
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(names) == 0 {
		t.Fatal("no metric registrations found — extraction regexes drifted from code style")
	}
	return names
}

// documentedNames extracts every metric base name from the inventory
// table of docs/observability.md.
func documentedNames(t *testing.T, root string) map[string]bool {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join(root, "docs", "observability.md"))
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	inTable := false
	for _, line := range strings.Split(string(raw), "\n") {
		switch {
		case strings.HasPrefix(line, "## Metric inventory"):
			inTable = true
			continue
		case inTable && strings.HasPrefix(line, "## "):
			inTable = false
		}
		if !inTable || !strings.HasPrefix(line, "|") {
			continue
		}
		cells := strings.Split(line, "|")
		if len(cells) < 2 {
			continue
		}
		for _, m := range docNamePattern.FindAllStringSubmatch(cells[1], -1) {
			names[m[1]] = true
		}
	}
	if len(names) == 0 {
		t.Fatal("no metric names found in docs/observability.md inventory table")
	}
	return names
}

// TestMetricInventoryComplete fails when code registers a metric the
// doc inventory does not list.
func TestMetricInventoryComplete(t *testing.T) {
	root := repoRoot(t)
	registered := registeredNames(t, root)
	documented := documentedNames(t, root)
	for name := range registered {
		if !documented[name] {
			t.Errorf("metric %q is registered in code but missing from docs/observability.md", name)
		}
	}
}

// TestMetricInventoryNotStale fails when the doc inventory lists a
// metric no code registers anymore.
func TestMetricInventoryNotStale(t *testing.T) {
	root := repoRoot(t)
	registered := registeredNames(t, root)
	documented := documentedNames(t, root)
	for name := range documented {
		if !registered[name] {
			t.Errorf("docs/observability.md lists %q but no code registers it (stale row)", name)
		}
	}
}
