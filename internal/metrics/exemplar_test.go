package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"
)

func TestObserveExemplarCapturesPerBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h")
	h.ObserveDurationExemplar(50*time.Microsecond, 11, 1*time.Second)
	h.ObserveDurationExemplar(2*time.Second, 22, 2*time.Second)

	exs := h.Exemplars()
	if exs == nil {
		t.Fatal("Exemplars() = nil after captures")
	}
	if got := len(exs); got != len(DefaultLatencyBuckets())+1 {
		t.Fatalf("exemplar slots = %d, want %d", got, len(DefaultLatencyBuckets())+1)
	}
	if exs[0].Trace != 11 || exs[0].Value != float64(50*time.Microsecond) {
		t.Errorf("bucket 0 exemplar = %+v, want trace 11", exs[0])
	}
	var found *Exemplar
	for i := range exs {
		if exs[i].Trace == 22 {
			found = &exs[i]
		}
	}
	if found == nil {
		t.Fatal("no exemplar captured for trace 22")
	}
	if found.TS != 2*time.Second {
		t.Errorf("trace 22 exemplar TS = %v, want 2s", found.TS)
	}
}

func TestObserveExemplarLastWriterWins(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h")
	h.ObserveDurationExemplar(50*time.Microsecond, 1, 5*time.Second)
	// Earlier virtual time must not displace the resident exemplar.
	h.ObserveDurationExemplar(60*time.Microsecond, 2, 1*time.Second)
	if ex := h.Exemplars()[0]; ex.Trace != 1 {
		t.Errorf("earlier-TS observation displaced exemplar: %+v", ex)
	}
	// Equal virtual time: the later call wins (deterministic tie-break
	// for sequential same-tick observations).
	h.ObserveDurationExemplar(70*time.Microsecond, 3, 5*time.Second)
	if ex := h.Exemplars()[0]; ex.Trace != 3 {
		t.Errorf("same-TS later observation did not win: %+v", ex)
	}
	// Later virtual time replaces.
	h.ObserveDurationExemplar(80*time.Microsecond, 4, 6*time.Second)
	if ex := h.Exemplars()[0]; ex.Trace != 4 {
		t.Errorf("later-TS observation did not replace: %+v", ex)
	}
}

func TestObserveExemplarZeroTraceDegradesToObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h")
	h.ObserveExemplar(123, 0, time.Second)
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1", h.Count())
	}
	if h.Exemplars() != nil {
		t.Errorf("zero trace allocated exemplar slots: %+v", h.Exemplars())
	}
	var nilH *Histogram
	nilH.ObserveExemplar(1, 2, 3) // must not panic
	if nilH.Exemplars() != nil {
		t.Error("nil histogram returned exemplars")
	}
}

func TestExemplarSnapshotJSONAndTextStability(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	h.ObserveDurationExemplar(time.Hour, 77, 3*time.Second) // +Inf bucket
	h.ObserveDuration(time.Millisecond)                     // no exemplar

	snap := r.Snapshot()
	hs := snap.Histograms[0]
	if len(hs.Exemplars) != 1 {
		t.Fatalf("exemplar rows = %d, want 1", len(hs.Exemplars))
	}
	ex := hs.Exemplars[0]
	if !math.IsInf(ex.UpperBound, 1) || ex.Trace != 77 || ex.TS != 3*time.Second {
		t.Errorf("exemplar row = %+v", ex)
	}

	// JSON round-trips, +Inf encoded as null.
	data, err := json.Marshal(hs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"exemplars":[{"le":null,"trace":77`)) {
		t.Errorf("JSON missing exemplar row: %s", data)
	}
	var back HistSnapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Exemplars) != 1 || !math.IsInf(back.Exemplars[0].UpperBound, 1) || back.Exemplars[0].Trace != 77 {
		t.Errorf("exemplar did not round-trip: %+v", back.Exemplars)
	}

	// The text format must not mention exemplars (golden dumps).
	var buf bytes.Buffer
	if err := snap.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "exemplar") {
		t.Errorf("text format leaked exemplars:\n%s", buf.String())
	}

	// A histogram without captures exports no exemplars key at all.
	r2 := NewRegistry()
	r2.Histogram("lat").ObserveDuration(time.Millisecond)
	data2, err := json.Marshal(r2.Snapshot().Histograms[0])
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data2, []byte("exemplars")) {
		t.Errorf("exemplar-free histogram exported exemplars key: %s", data2)
	}
}
