package metrics

import (
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/stats"
	"repro/internal/vclock"
)

func TestCounterSemantics(t *testing.T) {
	cases := []struct {
		name string
		ops  func(c *Counter)
		want int64
	}{
		{"zero", func(c *Counter) {}, 0},
		{"inc", func(c *Counter) { c.Inc(); c.Inc() }, 2},
		{"add", func(c *Counter) { c.Add(5); c.Add(0); c.Inc() }, 6},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRegistry()
			c := r.Counter("c")
			tc.ops(c)
			if got := c.Value(); got != tc.want {
				t.Fatalf("value = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestCounterNeverDecreases(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	NewRegistry().Counter("c").Add(-1)
}

func TestGaugeSemantics(t *testing.T) {
	cases := []struct {
		name string
		ops  func(g *Gauge)
		want int64
	}{
		{"zero", func(g *Gauge) {}, 0},
		{"set", func(g *Gauge) { g.Set(42) }, 42},
		{"add-sub", func(g *Gauge) { g.Add(10); g.Add(-4) }, 6},
		{"set-then-add", func(g *Gauge) { g.Set(100); g.Add(-100) }, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRegistry()
			g := r.Gauge("g")
			tc.ops(g)
			if got := g.Value(); got != tc.want {
				t.Fatalf("value = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramWith("h", "", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 2, 10, 11, 1000} {
		h.Observe(v)
	}
	snap := h.snapshot()
	// Cumulative: le=1 -> {0.5, 1}; le=10 -> +{2, 10}; le=100 -> +{11};
	// +Inf -> +{1000}.
	wantCum := []uint64{2, 4, 5, 6}
	if len(snap.Buckets) != len(wantCum) {
		t.Fatalf("buckets = %d, want %d", len(snap.Buckets), len(wantCum))
	}
	for i, want := range wantCum {
		if snap.Buckets[i].Count != want {
			t.Errorf("bucket %d = %d, want %d", i, snap.Buckets[i].Count, want)
		}
	}
	if !math.IsInf(snap.Buckets[3].UpperBound, 1) {
		t.Error("last bucket bound is not +Inf")
	}
	if snap.Count != 6 || snap.Sum != 1024.5 || snap.Min != 0.5 || snap.Max != 1000 {
		t.Fatalf("summary = %+v", snap)
	}
}

func TestHistogramPercentilesMatchStats(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	var raw []float64
	rnd := vclock.NewRand(7)
	for i := 0; i < 1000; i++ {
		v := float64(rnd.Intn(int(5 * time.Second)))
		raw = append(raw, v)
		h.Observe(v)
	}
	for _, p := range []float64{0, 25, 50, 90, 99, 100} {
		want := stats.Percentile(raw, p)
		if got := h.Percentile(p); got != want {
			t.Errorf("p%g = %g, want %g", p, got, want)
		}
	}
}

func TestHistogramSampleWindowWraps(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramWith("h", "", []float64{1e12})
	for i := 0; i < maxSamples+100; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != maxSamples+100 {
		t.Fatalf("count = %d", h.Count())
	}
	// Samples 0..99 were overwritten; the window minimum is 100.
	if got := h.Percentile(0); got != 100 {
		t.Fatalf("window min = %g, want 100", got)
	}
}

func TestRegistryConcurrentWriters(t *testing.T) {
	r := NewRegistry()
	const writers = 16
	const perWriter = 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Counter("shared_total").Inc()
				r.Gauge("depth").Add(1)
				r.Gauge("depth").Add(-1)
				r.Histogram("lat").ObserveDuration(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared_total").Value(); got != writers*perWriter {
		t.Fatalf("counter = %d, want %d", got, writers*perWriter)
	}
	if got := r.Gauge("depth").Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
	if got := r.Histogram("lat").Count(); got != writers*perWriter {
		t.Fatalf("histogram count = %d, want %d", got, writers*perWriter)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x")
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(-1)
	h.Observe(4)
	h.ObserveDuration(time.Second)
	r.SetClock(vclock.New())
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Percentile(50) != 0 {
		t.Fatal("nil instruments recorded something")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Fatal("nil registry produced a non-empty snapshot")
	}
}

func TestNameLabels(t *testing.T) {
	cases := []struct {
		base string
		kv   []string
		want string
	}{
		{"plain", nil, "plain"},
		{"m", []string{"node", "node-01"}, `m{node="node-01"}`},
		{"m", []string{"b", "2", "a", "1"}, `m{a="1",b="2"}`},
	}
	for _, tc := range cases {
		if got := Name(tc.base, tc.kv...); got != tc.want {
			t.Errorf("Name(%q, %v) = %q, want %q", tc.base, tc.kv, got, tc.want)
		}
	}
}

func TestRegistryReturnsSameInstrument(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Error("counter identity")
	}
	if r.Gauge("a") != r.Gauge("a") {
		t.Error("gauge identity")
	}
	if r.Histogram("a") != r.Histogram("a") {
		t.Error("histogram identity")
	}
}

func TestSnapshotVirtualTime(t *testing.T) {
	r := NewRegistry()
	clock := vclock.NewAt(42 * time.Millisecond)
	r.SetClock(clock)
	if got := r.Snapshot().VirtualTimeNS; got != int64(42*time.Millisecond) {
		t.Fatalf("virtual time = %d", got)
	}
}
