package metrics

import (
	"encoding/json"
	"io"
	"sort"
	"strings"
	"sync"
)

// Cardinality governor: per-family budgets on labeled series.
//
// A "family" is everything before the '{' of a labeled name —
// cluster_node_invocations_total{node="node-01"} belongs to family
// cluster_node_invocations_total. Metric families whose labels carry
// unbounded values (per-function, per-trace, per-tenant) grow one
// series per value forever; at wild-storm scale that is the registry's
// own memory leak. With a budget set, a family at its limit aliases
// every further new name onto one shared overflow series —
// family{series="__overflow__"} — so recording still works (the
// overflow series aggregates the long tail) and the hot path still
// resolves through the frozen read index, while the registry's series
// count stays bounded. Each redirected name increments
// telemetry_cardinality_overflow_total{family}.
//
// Determinism: admission is first-come-first-served, so the set of
// admitted series is a pure function of a sequential workload — the
// same caveat internal/faults documents for concurrent ones.

// OverflowSeries is the label value marking a family's shared
// overflow series.
const OverflowSeries = "__overflow__"

// overflowCounterFamily is the governor's own accounting family; it is
// exempt from governance (it must never redirect itself).
const overflowCounterFamily = "telemetry_cardinality_overflow_total"

// cardinality holds the governor's state; zero value = disabled.
type cardinality struct {
	mu         sync.Mutex
	defLimit   int
	famLimit   map[string]int
	famCount   map[string]int   // admitted labeled series per family
	overflowed map[string]int64 // redirected (aliased) names per family
}

// OverflowName returns the shared overflow series name of a family.
func OverflowName(family string) string {
	return Name(family, "series", OverflowSeries)
}

// SetCardinalityLimit sets the default per-family budget for labeled
// series: once a family has limit distinct admitted series, further new
// names alias onto its overflow series. 0 disables the default
// (families stay unbounded unless SetFamilyLimit says otherwise).
// Already-created series are never retired.
func (r *Registry) SetCardinalityLimit(limit int) {
	if r == nil {
		return
	}
	r.card.mu.Lock()
	r.card.defLimit = limit
	r.card.mu.Unlock()
}

// SetFamilyLimit overrides the budget for one family: 0 lifts the
// budget (unbounded), positive bounds it.
func (r *Registry) SetFamilyLimit(family string, limit int) {
	if r == nil {
		return
	}
	r.card.mu.Lock()
	if r.card.famLimit == nil {
		r.card.famLimit = make(map[string]int)
	}
	r.card.famLimit[family] = limit
	r.card.mu.Unlock()
}

// admitSeries decides whether a new series name may be created or must
// redirect to its family's overflow series. Unlabeled names and the
// governor's own instruments are always admitted. Called with the
// owning shard lock held; takes only the leaf card.mu.
func (r *Registry) admitSeries(name string) (family string, redirect bool) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return "", false
	}
	family = name[:i]
	if family == overflowCounterFamily || strings.HasSuffix(name, `{series="`+OverflowSeries+`"}`) {
		return family, false
	}
	c := &r.card
	c.mu.Lock()
	defer c.mu.Unlock()
	limit, ok := c.famLimit[family]
	if !ok {
		limit = c.defLimit
	}
	if limit <= 0 {
		return family, false
	}
	if c.famCount[family] >= limit {
		return family, true
	}
	if c.famCount == nil {
		c.famCount = make(map[string]int)
	}
	c.famCount[family]++
	return family, false
}

// noteOverflow accounts one redirected name: the audit ledger plus the
// exported telemetry_cardinality_overflow_total{family} counter.
func (r *Registry) noteOverflow(family string) {
	c := &r.card
	c.mu.Lock()
	if c.overflowed == nil {
		c.overflowed = make(map[string]int64)
	}
	c.overflowed[family]++
	c.mu.Unlock()
	r.Counter(Name("telemetry_cardinality_overflow_total", "family", family)).Inc()
}

// FamilyCardinality is one family's row in the registry audit.
type FamilyCardinality struct {
	Family string `json:"family"`
	// Series counts distinct live series of the family (aliases dedup
	// onto their shared overflow series).
	Series int `json:"series"`
	// Limit is the family's resolved budget (0 = unbounded).
	Limit int `json:"limit,omitempty"`
	// OverflowedNames counts distinct names redirected onto the
	// family's overflow series.
	OverflowedNames int64 `json:"overflowed_names,omitempty"`
}

// CardinalityReport is the registry audit: the TopK families by live
// series count, ordered largest first (ties by name), plus the
// registry-wide total.
type CardinalityReport struct {
	TotalSeries int                 `json:"total_series"`
	Families    []FamilyCardinality `json:"families"`
}

// CardinalityAudit walks the registry and reports the k largest
// families by series count (every family when k <= 0). Unlabeled
// metrics count as single-series families of their own name.
func (r *Registry) CardinalityAudit(k int) CardinalityReport {
	var rep CardinalityReport
	if r == nil {
		return rep
	}
	counts := make(map[string]int)
	seenC := make(map[*Counter]bool)
	seenG := make(map[*Gauge]bool)
	seenH := make(map[*Histogram]bool)
	bump := func(name string) {
		fam, _, _ := strings.Cut(name, "{")
		counts[fam]++
		rep.TotalSeries++
	}
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		for _, c := range s.counters {
			if !seenC[c] {
				seenC[c] = true
				bump(c.name)
			}
		}
		for _, g := range s.gauges {
			if !seenG[g] {
				seenG[g] = true
				bump(g.name)
			}
		}
		for _, h := range s.histograms {
			if !seenH[h] {
				seenH[h] = true
				bump(h.name)
			}
		}
		s.mu.RUnlock()
	}
	c := &r.card
	c.mu.Lock()
	for fam, n := range counts {
		limit, ok := c.famLimit[fam]
		if !ok {
			limit = c.defLimit
		}
		if limit < 0 {
			limit = 0
		}
		rep.Families = append(rep.Families, FamilyCardinality{
			Family: fam, Series: n, Limit: limit, OverflowedNames: c.overflowed[fam],
		})
	}
	c.mu.Unlock()
	sort.Slice(rep.Families, func(i, j int) bool {
		a, b := rep.Families[i], rep.Families[j]
		if a.Series != b.Series {
			return a.Series > b.Series
		}
		return a.Family < b.Family
	})
	if k > 0 && len(rep.Families) > k {
		rep.Families = rep.Families[:k]
	}
	return rep
}

// WriteCardinalityJSON renders the audit as indented JSON — the
// /telemetry endpoint's cardinality section.
func (r *Registry) WriteCardinalityJSON(w io.Writer, k int) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.CardinalityAudit(k))
}
