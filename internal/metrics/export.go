package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"repro/internal/stats"
)

// Snapshot is a point-in-time, export-ready view of a registry. All
// slices are sorted by metric name so the text rendering and the JSON
// encoding are byte-stable for a given simulated workload.
type Snapshot struct {
	// VirtualTimeNS is the registry clock's position when the snapshot
	// was taken (0 without a clock).
	VirtualTimeNS int64             `json:"virtual_time_ns"`
	Counters      []CounterSnapshot `json:"counters"`
	Gauges        []GaugeSnapshot   `json:"gauges"`
	Histograms    []HistSnapshot    `json:"histograms"`
}

// CounterSnapshot is one exported counter.
type CounterSnapshot struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnapshot is one exported gauge.
type GaugeSnapshot struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// BucketSnapshot is one histogram bucket: the count of observations at
// or below UpperBound. The overflow bucket has UpperBound +Inf,
// encoded in JSON as null.
type BucketSnapshot struct {
	UpperBound float64 `json:"le"`
	Count      uint64  `json:"count"`
}

// MarshalJSON encodes +Inf as null (JSON has no Inf literal).
func (b BucketSnapshot) MarshalJSON() ([]byte, error) {
	if math.IsInf(b.UpperBound, 1) {
		return []byte(fmt.Sprintf(`{"le":null,"count":%d}`, b.Count)), nil
	}
	return []byte(fmt.Sprintf(`{"le":%s,"count":%d}`, jsonFloat(b.UpperBound), b.Count)), nil
}

// UnmarshalJSON decodes null back to +Inf.
func (b *BucketSnapshot) UnmarshalJSON(data []byte) error {
	var raw struct {
		LE    *float64 `json:"le"`
		Count uint64   `json:"count"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	if raw.LE == nil {
		b.UpperBound = math.Inf(1)
	} else {
		b.UpperBound = *raw.LE
	}
	b.Count = raw.Count
	return nil
}

// ExemplarSnapshot is one captured bucket exemplar: the trace that
// most recently (on the virtual clock) observed into the bucket with
// upper bound LE. Only populated buckets export a row. Exemplars are
// JSON-only — the text format predates them and its byte-stable golden
// dumps must not change.
type ExemplarSnapshot struct {
	UpperBound float64       `json:"le"`
	Trace      uint64        `json:"trace"`
	Value      float64       `json:"value"`
	TS         time.Duration `json:"ts_ns"`
}

// MarshalJSON encodes +Inf as null, mirroring BucketSnapshot.
func (e ExemplarSnapshot) MarshalJSON() ([]byte, error) {
	le := "null"
	if !math.IsInf(e.UpperBound, 1) {
		le = jsonFloat(e.UpperBound)
	}
	return []byte(fmt.Sprintf(`{"le":%s,"trace":%d,"value":%s,"ts_ns":%d}`,
		le, e.Trace, jsonFloat(e.Value), int64(e.TS))), nil
}

// UnmarshalJSON decodes null back to +Inf.
func (e *ExemplarSnapshot) UnmarshalJSON(data []byte) error {
	var raw struct {
		LE    *float64 `json:"le"`
		Trace uint64   `json:"trace"`
		Value float64  `json:"value"`
		TS    int64    `json:"ts_ns"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	if raw.LE == nil {
		e.UpperBound = math.Inf(1)
	} else {
		e.UpperBound = *raw.LE
	}
	e.Trace = raw.Trace
	e.Value = raw.Value
	e.TS = time.Duration(raw.TS)
	return nil
}

// HistSnapshot is one exported histogram with pre-computed quantiles.
type HistSnapshot struct {
	Name      string             `json:"name"`
	Unit      string             `json:"unit,omitempty"`
	Count     uint64             `json:"count"`
	Sum       float64            `json:"sum"`
	Min       float64            `json:"min"`
	Max       float64            `json:"max"`
	P50       float64            `json:"p50"`
	P90       float64            `json:"p90"`
	P99       float64            `json:"p99"`
	P999      float64            `json:"p999"`
	Buckets   []BucketSnapshot   `json:"buckets"`
	Exemplars []ExemplarSnapshot `json:"exemplars,omitempty"`
}

// Snapshot captures the current state of every instrument. It is safe
// to call concurrently with recording. A nil registry yields an empty
// snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	snap := Snapshot{VirtualTimeNS: int64(r.snapshotTime())}
	// Gather instruments stripe by stripe; the sort below merges the
	// shards deterministically, so shard count never shows in the dump.
	// Redirected names alias the same instrument under several map
	// keys (see cardinality.go) — the seen sets export each shared
	// overflow series exactly once.
	var counters []*Counter
	var gauges []*Gauge
	var hists []*Histogram
	seenC := make(map[*Counter]bool)
	seenG := make(map[*Gauge]bool)
	seenH := make(map[*Histogram]bool)
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		for _, c := range s.counters {
			if !seenC[c] {
				seenC[c] = true
				counters = append(counters, c)
			}
		}
		for _, g := range s.gauges {
			if !seenG[g] {
				seenG[g] = true
				gauges = append(gauges, g)
			}
		}
		for _, h := range s.histograms {
			if !seenH[h] {
				seenH[h] = true
				hists = append(hists, h)
			}
		}
		s.mu.RUnlock()
	}

	for _, c := range counters {
		snap.Counters = append(snap.Counters, CounterSnapshot{Name: c.name, Value: c.Value()})
	}
	for _, g := range gauges {
		snap.Gauges = append(snap.Gauges, GaugeSnapshot{Name: g.name, Value: g.Value()})
	}
	for _, h := range hists {
		snap.Histograms = append(snap.Histograms, h.snapshot())
	}
	sort.Slice(snap.Counters, func(i, j int) bool { return snap.Counters[i].Name < snap.Counters[j].Name })
	sort.Slice(snap.Gauges, func(i, j int) bool { return snap.Gauges[i].Name < snap.Gauges[j].Name })
	sort.Slice(snap.Histograms, func(i, j int) bool { return snap.Histograms[i].Name < snap.Histograms[j].Name })
	return snap
}

func (h *Histogram) snapshot() HistSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	hs := HistSnapshot{
		Name:  h.name,
		Unit:  h.unit,
		Count: h.count,
		Sum:   h.sum,
		Min:   h.min,
		Max:   h.max,
	}
	if h.count > 0 {
		hs.P50 = stats.Percentile(h.samples, 50)
		hs.P90 = stats.Percentile(h.samples, 90)
		hs.P99 = stats.Percentile(h.samples, 99)
		hs.P999 = stats.Percentile(h.samples, 99.9)
	}
	cum := uint64(0)
	for i, n := range h.counts {
		cum += n
		bound := math.Inf(1)
		if i < len(h.bounds) {
			bound = h.bounds[i]
		}
		hs.Buckets = append(hs.Buckets, BucketSnapshot{UpperBound: bound, Count: cum})
	}
	for i, ex := range h.exemplars {
		if ex.Trace == 0 {
			continue
		}
		bound := math.Inf(1)
		if i < len(h.bounds) {
			bound = h.bounds[i]
		}
		hs.Exemplars = append(hs.Exemplars, ExemplarSnapshot{
			UpperBound: bound, Trace: ex.Trace, Value: ex.Value, TS: ex.TS,
		})
	}
	return hs
}

// WriteText renders the snapshot in the stable, line-oriented text
// format documented in docs/observability.md. Duration-unit histogram
// values are rendered as time.Durations.
func (s Snapshot) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# fireworks metrics snapshot (virtual time %v)\n",
		time.Duration(s.VirtualTimeNS)); err != nil {
		return err
	}
	for _, c := range s.Counters {
		if _, err := fmt.Fprintf(w, "counter %s %d\n", c.Name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if _, err := fmt.Fprintf(w, "gauge %s %d\n", g.Name, g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		fv := func(v float64) string { return formatValue(v, h.Unit) }
		if _, err := fmt.Fprintf(w, "histogram %s count=%d sum=%s min=%s p50=%s p90=%s p99=%s p99.9=%s max=%s\n",
			h.Name, h.Count, fv(h.Sum), fv(h.Min), fv(h.P50), fv(h.P90), fv(h.P99), fv(h.P999), fv(h.Max)); err != nil {
			return err
		}
		for _, b := range h.Buckets {
			le := "+Inf"
			if !math.IsInf(b.UpperBound, 1) {
				le = formatValue(b.UpperBound, h.Unit)
			}
			if _, err := fmt.Fprintf(w, "  bucket le=%s %d\n", le, b.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteJSON renders the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteFormat renders the snapshot in a named format: "text" or
// "json". Every CLI dump flag funnels through this one switch so the
// accepted names and the error text stay identical across commands.
func (s Snapshot) WriteFormat(w io.Writer, format string) error {
	switch format {
	case "text":
		return s.WriteText(w)
	case "json":
		return s.WriteJSON(w)
	default:
		return fmt.Errorf("unknown -metrics format %q (want text or json)", format)
	}
}

// WriteText snapshots the registry and renders it as text.
func (r *Registry) WriteText(w io.Writer) error { return r.Snapshot().WriteText(w) }

// WriteJSON snapshots the registry and renders it as JSON.
func (r *Registry) WriteJSON(w io.Writer) error { return r.Snapshot().WriteJSON(w) }

// WriteFormat snapshots the registry and renders it in a named format.
func (r *Registry) WriteFormat(w io.Writer, format string) error {
	return r.Snapshot().WriteFormat(w, format)
}

// formatValue renders one histogram value under a unit: duration-unit
// values as time.Duration, everything else as a compact float.
func formatValue(v float64, unit string) string {
	if unit == UnitDuration {
		return time.Duration(int64(math.Round(v))).String()
	}
	return jsonFloat(v)
}

// jsonFloat renders a float compactly: integers without a decimal
// point, everything else with %g.
func jsonFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
